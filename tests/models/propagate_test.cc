#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/normalize.h"
#include "src/models/scalable_gnn.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace nai::models {
namespace {

TEST(PropagateTest, DepthZeroIsInput) {
  const graph::Graph g = graph::PathGraph(4);
  const graph::Csr adj = graph::NormalizedAdjacency(g, 0.5f);
  const tensor::Matrix x = nai::testing::RandomMatrix(4, 3, 1);
  const auto stack = PropagateStack(adj, x, 0);
  ASSERT_EQ(stack.size(), 1u);
  nai::testing::ExpectMatrixNear(stack[0], x, 0.0f);
}

TEST(PropagateTest, EachLevelIsOneHop) {
  const graph::Graph g = graph::CycleGraph(6);
  const graph::Csr adj = graph::NormalizedAdjacency(g, 0.5f);
  const tensor::Matrix x = nai::testing::RandomMatrix(6, 2, 2);
  const auto stack = PropagateStack(adj, x, 3);
  ASSERT_EQ(stack.size(), 4u);
  tensor::Matrix cur = x;
  for (int t = 1; t <= 3; ++t) {
    cur = graph::SpMM(adj, cur);
    nai::testing::ExpectMatrixNear(stack[t], cur, 1e-5f);
  }
}

TEST(PropagateTest, SmoothingReducesNeighborDifferences) {
  // Propagation is a smoothing operator: the total variation across edges
  // decreases monotonically in expectation on a connected graph.
  graph::GeneratorConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_edges = 1500;
  cfg.feature_dim = 4;
  cfg.seed = 5;
  const graph::SyntheticDataset ds = graph::GenerateDataset(cfg);
  const graph::Csr adj = graph::NormalizedAdjacency(ds.graph, 0.5f);
  const auto stack = PropagateStack(adj, ds.features, 4);

  auto edge_variation = [&](const tensor::Matrix& x) {
    double tv = 0.0;
    for (std::int32_t v = 0; v < ds.graph.num_nodes(); ++v) {
      for (const auto* it = ds.graph.neighbors_begin(v);
           it != ds.graph.neighbors_end(v); ++it) {
        if (*it < v) continue;
        for (std::size_t j = 0; j < x.cols(); ++j) {
          const double d = x.at(v, j) - x.at(*it, j);
          tv += d * d;
        }
      }
    }
    return tv;
  };

  double prev = edge_variation(stack[0]);
  for (int t = 1; t <= 4; ++t) {
    const double cur = edge_variation(stack[t]);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(PropagateTest, PropagationImprovesClassSignal) {
  // On a homophilous graph with noisy features, one-hop averaging moves
  // nodes toward their class centroid: intra-class variance shrinks faster
  // than inter-class separation.
  graph::GeneratorConfig cfg;
  cfg.num_nodes = 600;
  cfg.num_edges = 4000;
  cfg.num_classes = 4;
  cfg.feature_dim = 8;
  cfg.homophily = 0.85f;
  cfg.feature_noise = 3.0f;
  cfg.seed = 7;
  const graph::SyntheticDataset ds = graph::GenerateDataset(cfg);
  const graph::Csr adj = graph::NormalizedAdjacency(ds.graph, 0.5f);
  const auto stack = PropagateStack(adj, ds.features, 2);

  auto fisher = [&](const tensor::Matrix& x) {
    // Ratio of between-class to within-class scatter (trace form).
    tensor::Matrix centroids(cfg.num_classes, cfg.feature_dim);
    std::vector<int> counts(cfg.num_classes, 0);
    for (std::int64_t i = 0; i < cfg.num_nodes; ++i) {
      float* c = centroids.row(ds.labels[i]);
      for (std::int32_t j = 0; j < cfg.feature_dim; ++j) c[j] += x.at(i, j);
      ++counts[ds.labels[i]];
    }
    for (std::int32_t k = 0; k < cfg.num_classes; ++k) {
      for (std::int32_t j = 0; j < cfg.feature_dim; ++j) {
        centroids.at(k, j) /= counts[k];
      }
    }
    double within = 0.0, between = 0.0;
    tensor::Matrix global(1, cfg.feature_dim);
    for (std::int32_t k = 0; k < cfg.num_classes; ++k) {
      for (std::int32_t j = 0; j < cfg.feature_dim; ++j) {
        global.at(0, j) += centroids.at(k, j) / cfg.num_classes;
      }
    }
    for (std::int64_t i = 0; i < cfg.num_nodes; ++i) {
      const float* c = centroids.row(ds.labels[i]);
      for (std::int32_t j = 0; j < cfg.feature_dim; ++j) {
        const double d = x.at(i, j) - c[j];
        within += d * d;
      }
    }
    for (std::int32_t k = 0; k < cfg.num_classes; ++k) {
      for (std::int32_t j = 0; j < cfg.feature_dim; ++j) {
        const double d = centroids.at(k, j) - global.at(0, j);
        between += counts[k] * d * d;
      }
    }
    return between / within;
  };

  EXPECT_GT(fisher(stack[1]), fisher(stack[0]) * 1.5);
}

TEST(PropagateTest, ConstantFeaturesAreStationaryOnRegularGraph) {
  // On a regular graph every d̃_i is equal, so Â (any γ) has the constant
  // vector as a fixed point: propagation must leave it untouched.
  const graph::Graph g = graph::CycleGraph(8);
  const graph::Csr adj = graph::NormalizedAdjacency(g, 0.5f);
  tensor::Matrix x(8, 2);
  x.Fill(3.25f);
  const auto stack = PropagateStack(adj, x, 3);
  for (const auto& level : stack) {
    nai::testing::ExpectMatrixNear(level, x, 1e-5f);
  }
}

TEST(PropagateTest, PropagationIsLinear) {
  // SpMM is linear: propagating x + y equals propagating each and adding.
  const graph::Graph g = graph::GridGraph(3, 4);
  const graph::Csr adj = graph::NormalizedAdjacency(g, 0.5f);
  const tensor::Matrix x = nai::testing::RandomMatrix(12, 3, 21);
  const tensor::Matrix y = nai::testing::RandomMatrix(12, 3, 22);
  tensor::Matrix sum(12, 3);
  for (std::size_t i = 0; i < sum.size(); ++i) {
    sum.data()[i] = x.data()[i] + y.data()[i];
  }
  const auto sx = PropagateStack(adj, x, 2);
  const auto sy = PropagateStack(adj, y, 2);
  const auto ssum = PropagateStack(adj, sum, 2);
  for (int t = 0; t <= 2; ++t) {
    tensor::Matrix combined(12, 3);
    for (std::size_t i = 0; i < combined.size(); ++i) {
      combined.data()[i] = sx[t].data()[i] + sy[t].data()[i];
    }
    nai::testing::ExpectMatrixNear(ssum[t], combined, 1e-4f);
  }
}

}  // namespace
}  // namespace nai::models
