#include <memory>

#include "gtest/gtest.h"
#include "src/models/scalable_gnn.h"
#include "src/nn/adam.h"
#include "src/nn/loss.h"
#include "tests/test_util.h"

namespace nai::models {
namespace {

using nai::testing::RandomMatrix;

class HeadsTest : public ::testing::TestWithParam<ModelKind> {
 protected:
  ModelConfig Config(int depth = 2) {
    ModelConfig cfg;
    cfg.kind = GetParam();
    cfg.depth = depth;
    cfg.feature_dim = 6;
    cfg.num_classes = 3;
    cfg.hidden_dims = {8};
    cfg.dropout = 0.0f;
    return cfg;
  }

  std::vector<tensor::Matrix> MakeViews(int depth, std::size_t rows,
                                        std::uint64_t seed) {
    std::vector<tensor::Matrix> views;
    for (int t = 0; t <= depth; ++t) {
      views.push_back(RandomMatrix(rows, 6, seed + t));
    }
    return views;
  }
};

TEST_P(HeadsTest, ForwardShape) {
  tensor::Rng rng(1);
  const ModelConfig cfg = Config();
  auto head = MakeHead(cfg, 2, rng);
  const auto views = MakeViews(2, 5, 100);
  FeatureViews ptrs;
  for (const auto& v : views) ptrs.push_back(&v);
  const tensor::Matrix logits = head->Forward(ptrs, false, nullptr);
  EXPECT_EQ(logits.rows(), 5u);
  EXPECT_EQ(logits.cols(), 3u);
  EXPECT_EQ(head->expected_views(), 3u);
  EXPECT_EQ(head->num_classes(), 3u);
}

TEST_P(HeadsTest, MacsPositiveAndScaleWithRows) {
  tensor::Rng rng(2);
  auto head = MakeHead(Config(), 2, rng);
  const std::int64_t m1 = head->ForwardMacs(10);
  const std::int64_t m2 = head->ForwardMacs(20);
  EXPECT_GT(m1, 0);
  EXPECT_EQ(m2, 2 * m1);
}

TEST_P(HeadsTest, TrainsOnSeparableViews) {
  // Train the head on a dataset where the depth-0 view separates classes;
  // all families can use it (SGC uses the deepest view, so plant the signal
  // in every view to be family-agnostic).
  tensor::Rng rng(3);
  const ModelConfig cfg = Config(1);
  auto head = MakeHead(cfg, 1, rng);

  const std::size_t n = 60;
  std::vector<std::int32_t> labels(n);
  std::vector<tensor::Matrix> views(2, tensor::Matrix(n, 6));
  tensor::Rng data_rng(4);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<std::int32_t>(i % 3);
    for (auto& v : views) {
      for (std::size_t j = 0; j < 6; ++j) {
        v.at(i, j) = 0.3f * data_rng.NextGaussian();
      }
      v.at(i, labels[i]) += 3.0f;  // class-aligned coordinate
    }
  }
  FeatureViews ptrs;
  for (const auto& v : views) ptrs.push_back(&v);

  nn::Adam adam({.learning_rate = 0.05f});
  std::vector<nn::Parameter*> params;
  head->CollectParameters(params);
  adam.Register(params);

  float loss = 0.0f;
  for (int epoch = 0; epoch < 150; ++epoch) {
    adam.ZeroGrad();
    const tensor::Matrix logits = head->Forward(ptrs, true, &rng);
    const nn::LossResult r = nn::SoftmaxCrossEntropy(logits, labels);
    loss = r.loss;
    head->Backward(r.grad_logits);
    adam.Step();
  }
  EXPECT_LT(loss, 0.1f);
  EXPECT_GT(nn::Accuracy(head->Forward(ptrs, false, nullptr), labels), 0.95f);
}

TEST_P(HeadsTest, ReduceShape) {
  tensor::Rng rng(5);
  const ModelConfig cfg = Config();
  auto head = MakeHead(cfg, 2, rng);
  const auto views = MakeViews(2, 4, 200);
  FeatureViews ptrs;
  for (const auto& v : views) ptrs.push_back(&v);
  const tensor::Matrix reduced = head->Reduce(ptrs);
  EXPECT_EQ(reduced.rows(), 4u);
  const std::size_t expected_cols =
      GetParam() == ModelKind::kSign ? 18u : 6u;
  EXPECT_EQ(reduced.cols(), expected_cols);
  // Reduce feeds the head's own MLP: its width must match.
  EXPECT_EQ(head->classifier_mlp().in_dim(), reduced.cols());
}

TEST_P(HeadsTest, ReducePlusMlpMatchesForwardEval) {
  tensor::Rng rng(6);
  auto head = MakeHead(Config(), 2, rng);
  const auto views = MakeViews(2, 7, 300);
  FeatureViews ptrs;
  for (const auto& v : views) ptrs.push_back(&v);
  const tensor::Matrix direct = head->Forward(ptrs, false, nullptr);
  const tensor::Matrix reduced = head->Reduce(ptrs);
  // Forward on the same MLP parameters: recompute via a const-free copy.
  nn::Mlp mlp_copy = head->classifier_mlp();
  const tensor::Matrix via_reduce = mlp_copy.Forward(reduced, false);
  nai::testing::ExpectMatrixNear(direct, via_reduce, 1e-5f);
}

TEST_P(HeadsTest, SameSeedSameInitialization) {
  const ModelConfig cfg = Config();
  tensor::Rng rng_a(42);
  tensor::Rng rng_b(42);
  auto a = MakeHead(cfg, 2, rng_a);
  auto b = MakeHead(cfg, 2, rng_b);
  const auto views = MakeViews(2, 5, 400);
  FeatureViews ptrs;
  for (const auto& v : views) ptrs.push_back(&v);
  nai::testing::ExpectMatrixNear(a->Forward(ptrs, false, nullptr),
                                 b->Forward(ptrs, false, nullptr), 0.0f);
}

TEST_P(HeadsTest, SingleRowForward) {
  tensor::Rng rng(8);
  auto head = MakeHead(Config(), 2, rng);
  const auto views = MakeViews(2, 1, 500);
  FeatureViews ptrs;
  for (const auto& v : views) ptrs.push_back(&v);
  const tensor::Matrix logits = head->Forward(ptrs, false, nullptr);
  EXPECT_EQ(logits.rows(), 1u);
  EXPECT_EQ(logits.cols(), 3u);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, HeadsTest,
                         ::testing::Values(ModelKind::kSgc, ModelKind::kSign,
                                           ModelKind::kS2gc,
                                           ModelKind::kGamlp),
                         [](const auto& info) {
                           return ModelKindName(info.param);
                         });

TEST(ModelKindTest, Names) {
  EXPECT_EQ(ModelKindName(ModelKind::kSgc), "SGC");
  EXPECT_EQ(ModelKindName(ModelKind::kSign), "SIGN");
  EXPECT_EQ(ModelKindName(ModelKind::kS2gc), "S2GC");
  EXPECT_EQ(ModelKindName(ModelKind::kGamlp), "GAMLP");
}

}  // namespace
}  // namespace nai::models
