#ifndef NAI_TESTS_TENSOR_KERNEL_SHAPES_H_
#define NAI_TESTS_TENSOR_KERNEL_SHAPES_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace nai::testing {

/// One GEMM problem: out(m, n) from a(m, k) and b(k, n) (or b(n, k) for the
/// transposed-B kernel). Shared by the kernel parity suite and the kernel
/// benches so both sweep the same dispatch-relevant sizes.
struct GemmShape {
  std::size_t m, k, n;
};

/// The parity sweep. Dimensions are chosen around every vector-width
/// boundary the compiled kernels care about: below one lane group (1, 2,
/// 7), exactly one 8-wide group (8), one past it (9), around the 16-wide
/// double-pumped axpy body (15..17), around the 4-row register block times
/// 8-wide tiles (63..65 in all roles), plus empty matrices in each role and
/// two skinny/wide serving-style shapes (a few rows against a large hidden
/// or output dimension, the 1000x4096 flavor scaled to test runtime).
inline std::vector<GemmShape> ParityShapes() {
  std::vector<GemmShape> shapes;
  const std::size_t dims[] = {1, 2, 7, 8, 9, 15, 16, 17};
  for (const std::size_t m : dims) {
    for (const std::size_t k : dims) {
      for (const std::size_t n : dims) {
        // Full cross product of the small dims is 512 shapes; keep every
        // boundary pairing but prune the interior by requiring at least
        // one dimension to sit on a lane-group edge.
        if (m % 8 == 0 || n % 8 == 0 || k % 8 == 0 || m == 1 || n == 1 ||
            k == 1 || m == n || n == k) {
          shapes.push_back({m, k, n});
        }
      }
    }
  }
  // The register-block boundary (4 rows x 8 cols) in every role.
  shapes.push_back({63, 64, 65});
  shapes.push_back({64, 65, 63});
  shapes.push_back({65, 63, 64});
  // Empty matrices: each dimension zero in turn.
  shapes.push_back({0, 8, 8});
  shapes.push_back({8, 0, 8});
  shapes.push_back({8, 8, 0});
  shapes.push_back({0, 0, 0});
  // Wide serving shapes (the 1000x4096 flavor, scaled for test runtime):
  // few rows, large reduction or output dimension.
  shapes.push_back({3, 1000, 33});
  shapes.push_back({2, 17, 1000});
  shapes.push_back({1, 8, 4096});
  return shapes;
}

/// Deterministic value stream for filling operands: a mix of ordinary
/// magnitudes, exact zeros (to exercise the matmul zero-skip contract),
/// negative zeros and denormals. Plain LCG so the fixture has no
/// dependencies and the same (seed, index) always yields the same float.
class KernelValueStream {
 public:
  explicit KernelValueStream(std::uint64_t seed) : state_(seed * 2862933555777941757ULL + 3037000493ULL) {}

  float Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint32_t bits = static_cast<std::uint32_t>(state_ >> 33);
    switch (bits % 16) {
      case 0:
        return 0.0f;  // exact zero: the matmul_rows zero-skip path
      case 1:
        return -0.0f;
      case 2:
        return std::numeric_limits<float>::denorm_min() *
               static_cast<float>(1 + bits % 7);
      default:
        break;
    }
    // Uniform in [-4, 4) with a spread of exponents.
    const float u =
        static_cast<float>(bits % 65536) / 65536.0f * 8.0f - 4.0f;
    return (bits % 3 == 0) ? u * 1e-3f : u;
  }

  std::int8_t NextInt8() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint32_t bits = static_cast<std::uint32_t>(state_ >> 33);
    if (bits % 11 == 0) return 0;  // gemm_s8 x-zero skip path
    return static_cast<std::int8_t>(static_cast<int>(bits % 255) - 127);
  }

 private:
  std::uint64_t state_;
};

/// Fills `v` (already sized) from the stream. `poison` plants a NaN and an
/// infinity at deterministic positions so special values flow through the
/// fixed-order arithmetic identically at every SIMD level.
inline void FillFloats(KernelValueStream& stream, std::vector<float>& v,
                       bool poison = false) {
  for (float& x : v) x = stream.Next();
  if (poison && v.size() >= 2) {
    v[v.size() / 3] = std::numeric_limits<float>::quiet_NaN();
    v[(2 * v.size()) / 3] = -std::numeric_limits<float>::infinity();
  }
}

inline void FillInt8(KernelValueStream& stream, std::vector<std::int8_t>& v) {
  for (std::int8_t& x : v) x = stream.NextInt8();
}

}  // namespace nai::testing

#endif  // NAI_TESTS_TENSOR_KERNEL_SHAPES_H_
