// Deterministic-seed regression tests for src/tensor/random.cc.
//
// The Rng is self-contained (xoshiro256** + splitmix64, no <random>
// distribution objects), so identical seeds must produce bit-identical
// streams on every platform and standard library. The golden values below
// pin the exact sequences; if they ever change, every "deterministic given
// the seed" guarantee in the library (weight init, graph generation,
// dropout, Gumbel noise) silently breaks, and numerical tests start
// flaking across platforms.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "src/tensor/matrix.h"
#include "src/tensor/random.h"

namespace nai::tensor {
namespace {

TEST(RandomDeterminismTest, GoldenUint64Sequence) {
  Rng rng(42);
  const std::uint64_t expected[] = {
      1546998764402558742ULL, 6990951692964543102ULL,
      12544586762248559009ULL, 17057574109182124193ULL};
  for (const std::uint64_t want : expected) {
    EXPECT_EQ(rng.NextUint64(), want);
  }
}

TEST(RandomDeterminismTest, GoldenFloatSequence) {
  Rng rng(42);
  const float expected[] = {0.0838629603f, 0.378980219f, 0.680043399f,
                            0.924692929f};
  for (const float want : expected) {
    EXPECT_FLOAT_EQ(rng.NextFloat(), want);
  }
}

TEST(RandomDeterminismTest, GoldenDoubleSequence) {
  Rng rng(7);
  const double expected[] = {0.7005764821796896, 0.27875122947378428,
                             0.83962746187641979};
  for (const double want : expected) {
    EXPECT_DOUBLE_EQ(rng.NextDouble(), want);
  }
}

TEST(RandomDeterminismTest, GoldenGaussianSequence) {
  Rng rng(7);
  const float expected[] = {-0.151572585f, 0.829897225f, 0.587099552f};
  for (const float want : expected) {
    EXPECT_FLOAT_EQ(rng.NextGaussian(), want);
  }
}

TEST(RandomDeterminismTest, GoldenBoundedSequence) {
  Rng rng(123);
  const std::uint64_t expected[] = {7, 8, 7, 0, 4, 4, 5, 5};
  for (const std::uint64_t want : expected) {
    EXPECT_EQ(rng.NextBounded(10), want);
  }
}

TEST(RandomDeterminismTest, GoldenSampleWithoutReplacement) {
  Rng rng(99);
  const std::vector<std::int32_t> got = SampleWithoutReplacement(20, 5, rng);
  const std::vector<std::int32_t> want = {8, 1, 17, 16, 0};
  EXPECT_EQ(got, want);
}

TEST(RandomDeterminismTest, SameSeedSameStream) {
  Rng a(0xDEADBEEF);
  Rng b(0xDEADBEEF);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextUint64(), b.NextUint64()) << "diverged at draw " << i;
  }
}

TEST(RandomDeterminismTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RandomDeterminismTest, FillGaussianReproducible) {
  Matrix m1(8, 8), m2(8, 8);
  Rng r1(31337), r2(31337);
  FillGaussian(m1, 0.7f, r1);
  FillGaussian(m2, 0.7f, r2);
  for (std::size_t i = 0; i < m1.size(); ++i) {
    ASSERT_EQ(m1.data()[i], m2.data()[i]);
  }
}

TEST(RandomDeterminismTest, FillGlorotReproducibleAndBounded) {
  Matrix m1(16, 24), m2(16, 24);
  Rng r1(5), r2(5);
  FillGlorot(m1, r1);
  FillGlorot(m2, r2);
  const float bound = std::sqrt(6.0f / (16 + 24));
  for (std::size_t i = 0; i < m1.size(); ++i) {
    ASSERT_EQ(m1.data()[i], m2.data()[i]);
    ASSERT_LE(std::fabs(m1.data()[i]), bound);
  }
}

TEST(RandomDeterminismTest, ShuffleReproduciblePermutation) {
  std::vector<std::int32_t> v1(100), v2(100);
  std::iota(v1.begin(), v1.end(), 0);
  std::iota(v2.begin(), v2.end(), 0);
  Rng r1(404), r2(404);
  r1.Shuffle(v1);
  r2.Shuffle(v2);
  EXPECT_EQ(v1, v2);
  std::vector<std::int32_t> sorted = v1;
  std::sort(sorted.begin(), sorted.end());
  for (std::int32_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RandomDeterminismTest, BoundedStaysInRange) {
  Rng rng(2024);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RandomDeterminismTest, UnitIntervalStaysInRange) {
  Rng rng(555);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.NextFloat();
    ASSERT_GE(f, 0.0f);
    ASSERT_LT(f, 1.0f);
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace nai::tensor
