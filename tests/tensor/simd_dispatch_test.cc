// Property tests for the NAI_SIMD dispatch surface: strict token parsing
// (whole-token, case-sensitive — the NAI_SCALE / NAI_THREADS discipline),
// resolution semantics (unset/invalid/unsupported always fall back to the
// best supported level, never an error), the supported-level enumeration
// the parity suite sweeps, and the test-only level pin.

#include "src/tensor/simd.h"

#include <stdexcept>
#include <string>

#include "gtest/gtest.h"

namespace nai::tensor::simd {
namespace {

TEST(SimdDispatchTest, ParseLevelAcceptsExactTokensOnly) {
  EXPECT_EQ(ParseLevel("scalar"), Level::kScalar);
  EXPECT_EQ(ParseLevel("avx2"), Level::kAvx2);
  EXPECT_EQ(ParseLevel("neon"), Level::kNeon);

  // Whole-token, case-sensitive rejection: anything that is not exactly a
  // level name parses to nullopt. Trailing garbage, case variants and
  // whitespace must not silently select a level.
  const char* rejected[] = {"",       " ",       "SCALAR", "Scalar",
                            "AVX2",   "Avx2",    "NEON",   " avx2",
                            "avx2 ",  "avx2\n",  "avx",    "avx512",
                            "sse",    "best",    "auto",   "scalar,avx2",
                            "0",      "1",       "scalarx"};
  for (const char* token : rejected) {
    EXPECT_FALSE(ParseLevel(token).has_value())
        << "token '" << token << "' must be rejected";
  }
}

TEST(SimdDispatchTest, LevelNameRoundTripsThroughParse) {
  for (const Level level : {Level::kScalar, Level::kAvx2, Level::kNeon}) {
    EXPECT_EQ(ParseLevel(LevelName(level)), level);
  }
}

TEST(SimdDispatchTest, ResolveLevelFallsBackNeverThrows) {
  // Unset -> auto-detection.
  EXPECT_EQ(ResolveLevel(nullptr), BestSupportedLevel());
  // Invalid tokens -> auto-detection (serving must come up on any host; a
  // typo in NAI_SIMD must not take the deployment down).
  EXPECT_EQ(ResolveLevel(""), BestSupportedLevel());
  EXPECT_EQ(ResolveLevel("fastest"), BestSupportedLevel());
  EXPECT_EQ(ResolveLevel("AVX2"), BestSupportedLevel());
  // Valid and supported -> honored.
  EXPECT_EQ(ResolveLevel("scalar"), Level::kScalar);
  EXPECT_EQ(ResolveLevel(LevelName(BestSupportedLevel())),
            BestSupportedLevel());
  // Valid but unsupported on this host -> auto-detection, not an error.
  for (const Level level : {Level::kAvx2, Level::kNeon}) {
    if (!LevelSupported(level)) {
      EXPECT_EQ(ResolveLevel(LevelName(level)), BestSupportedLevel());
    }
  }
}

TEST(SimdDispatchTest, SupportedLevelsStartScalarAndContainBest) {
  const std::vector<Level> levels = SupportedLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), Level::kScalar);
  bool has_best = false;
  for (const Level level : levels) {
    EXPECT_TRUE(LevelSupported(level));
    EXPECT_TRUE(LevelCompiled(level));
    if (level == BestSupportedLevel()) has_best = true;
  }
  EXPECT_TRUE(has_best);
  // Exactly one binary's worth of vector ISAs: a build carries scalar plus
  // at most one of AVX2/NEON, so the sweep has one or two entries.
  EXPECT_LE(levels.size(), 2u);
}

TEST(SimdDispatchTest, ScalarAlwaysCompiledAndSupported) {
  EXPECT_TRUE(LevelCompiled(Level::kScalar));
  EXPECT_TRUE(LevelSupported(Level::kScalar));
  // The two vector ISAs are mutually exclusive per target.
  EXPECT_FALSE(LevelCompiled(Level::kAvx2) && LevelCompiled(Level::kNeon));
}

TEST(SimdDispatchTest, KernelsThrowForUncompiledLevels) {
  for (const Level level : {Level::kAvx2, Level::kNeon}) {
    if (!LevelCompiled(level)) {
      EXPECT_THROW(Kernels(level), std::invalid_argument);
    }
    if (!LevelSupported(level)) {
      EXPECT_THROW(SetActiveLevelForTesting(level), std::invalid_argument);
    }
  }
  // Kernel tables of compiled levels are fully populated.
  for (const Level level : SupportedLevels()) {
    const KernelSet& ks = Kernels(level);
    EXPECT_NE(ks.axpy, nullptr);
    EXPECT_NE(ks.matmul_rows, nullptr);
    EXPECT_NE(ks.matmul_tb_rows, nullptr);
    EXPECT_NE(ks.gemm_s8, nullptr);
  }
}

TEST(SimdDispatchTest, SetActiveLevelForTestingRetargetsActiveKernels) {
  const Level best = BestSupportedLevel();
  for (const Level level : SupportedLevels()) {
    SetActiveLevelForTesting(level);
    EXPECT_EQ(ActiveLevel(), level);
    EXPECT_EQ(&ActiveKernels(), &Kernels(level));
  }
  SetActiveLevelForTesting(best);
  EXPECT_EQ(ActiveLevel(), best);
}

}  // namespace
}  // namespace nai::tensor::simd
