#include "src/tensor/ops.h"

#include <atomic>
#include <cmath>
#include <numeric>

#include "gtest/gtest.h"
#include "src/tensor/random.h"
#include "tests/test_util.h"

namespace nai::tensor {
namespace {

using nai::testing::ExpectMatrixNear;
using nai::testing::RandomMatrix;

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < a.cols(); ++p) {
        acc += a.at(i, p) * b.at(p, j);
      }
      out.at(i, j) = acc;
    }
  }
  return out;
}

TEST(OpsTest, MatMulSmallKnown) {
  Matrix a{{1.0f, 2.0f}, {3.0f, 4.0f}};
  Matrix b{{5.0f, 6.0f}, {7.0f, 8.0f}};
  Matrix c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

// Property sweep: MatMul and the transpose variants agree with the naive
// reference over a range of shapes.
class MatMulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  const Matrix a = RandomMatrix(m, k, 1234 + m * 100 + k * 10 + n);
  const Matrix b = RandomMatrix(k, n, 4321 + m + k + n);
  ExpectMatrixNear(MatMul(a, b), NaiveMatMul(a, b), 1e-3f);
}

TEST_P(MatMulShapes, TransposeBMatchesNaive) {
  const auto [m, k, n] = GetParam();
  const Matrix a = RandomMatrix(m, k, 99 + m);
  const Matrix bt = RandomMatrix(n, k, 77 + n);  // holds b^T
  // Build b from bt to feed naive.
  Matrix b(k, n);
  for (std::size_t i = 0; i < b.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) b.at(i, j) = bt.at(j, i);
  }
  ExpectMatrixNear(MatMulTransposeB(a, bt), NaiveMatMul(a, b), 1e-3f);
}

TEST_P(MatMulShapes, TransposeAMatchesNaive) {
  const auto [m, k, n] = GetParam();
  const Matrix at = RandomMatrix(k, m, 55 + k);  // holds a^T
  const Matrix b = RandomMatrix(k, n, 66 + n);
  Matrix a(m, k);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) a.at(i, j) = at.at(j, i);
  }
  ExpectMatrixNear(MatMulTransposeA(at, b), NaiveMatMul(a, b), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 2),
                      std::make_tuple(8, 8, 8), std::make_tuple(17, 3, 9),
                      std::make_tuple(64, 32, 16),
                      std::make_tuple(100, 1, 100)));

// Serial-vs-parallel bit-exactness: the pool-backed MatMul family must
// produce bit-identical results for every thread count, because chunking
// never changes the per-output-row summation order.
TEST(OpsTest, MatMulBitExactAcrossThreadCounts) {
  const Matrix a = RandomMatrix(67, 48, 11);
  const Matrix b = RandomMatrix(48, 33, 12);
  const Matrix bt = RandomMatrix(33, 48, 13);
  const Matrix at = RandomMatrix(48, 67, 14);
  runtime::ThreadPool::SetDefaultThreads(1);
  const Matrix serial = MatMul(a, b);
  const Matrix serial_tb = MatMulTransposeB(a, bt);
  const Matrix serial_ta = MatMulTransposeA(at, b);
  for (const int threads : {2, 8}) {
    runtime::ThreadPool::SetDefaultThreads(threads);
    const Matrix par = MatMul(a, b);
    const Matrix par_tb = MatMulTransposeB(a, bt);
    const Matrix par_ta = MatMulTransposeA(at, b);
    ASSERT_EQ(par.rows(), serial.rows());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(par.data()[i], serial.data()[i]) << "threads=" << threads;
    }
    for (std::size_t i = 0; i < serial_tb.size(); ++i) {
      ASSERT_EQ(par_tb.data()[i], serial_tb.data()[i]);
    }
    for (std::size_t i = 0; i < serial_ta.size(); ++i) {
      ASSERT_EQ(par_ta.data()[i], serial_ta.data()[i]);
    }
  }
  runtime::ThreadPool::SetDefaultThreads(0);
}

TEST(OpsTest, SoftmaxAndRowDistanceBitExactAcrossThreadCounts) {
  const Matrix m = RandomMatrix(200, 24, 21);
  const Matrix m2 = RandomMatrix(200, 24, 22);
  runtime::ThreadPool::SetDefaultThreads(1);
  const Matrix soft = SoftmaxRows(m, 1.3f);
  const Matrix logsoft = LogSoftmaxRows(m);
  const std::vector<float> dist = RowL2Distance(m, m2);
  for (const int threads : {2, 8}) {
    runtime::ThreadPool::SetDefaultThreads(threads);
    const Matrix soft_p = SoftmaxRows(m, 1.3f);
    const Matrix logsoft_p = LogSoftmaxRows(m);
    for (std::size_t i = 0; i < soft.size(); ++i) {
      ASSERT_EQ(soft_p.data()[i], soft.data()[i]);
      ASSERT_EQ(logsoft_p.data()[i], logsoft.data()[i]);
    }
    EXPECT_EQ(RowL2Distance(m, m2), dist);
  }
  runtime::ThreadPool::SetDefaultThreads(0);
}

TEST(OpsTest, AddAxpyScaleSubtract) {
  Matrix a{{1.0f, 2.0f}};
  Matrix b{{10.0f, 20.0f}};
  AddInPlace(a, b);
  EXPECT_FLOAT_EQ(a.at(0, 1), 22.0f);
  Axpy(a, 0.5f, b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 16.0f);
  ScaleInPlace(a, 2.0f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 32.0f);
  Matrix d = Subtract(a, b);
  EXPECT_FLOAT_EQ(d.at(0, 0), 22.0f);
}

TEST(OpsTest, AddRowBias) {
  Matrix m(2, 3);
  Matrix bias{{1.0f, 2.0f, 3.0f}};
  AddRowBias(m, bias);
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.at(1, 2), 3.0f);
}

TEST(OpsTest, ReluForwardBackward) {
  Matrix z{{-1.0f, 0.0f, 2.0f}};
  Matrix m = z;
  ReluInPlace(m);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m.at(0, 2), 2.0f);
  Matrix g{{5.0f, 5.0f, 5.0f}};
  ReluBackwardInPlace(z, g);
  EXPECT_FLOAT_EQ(g.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(g.at(0, 1), 0.0f);  // z == 0 kills the gradient too
  EXPECT_FLOAT_EQ(g.at(0, 2), 5.0f);
}

TEST(OpsTest, SigmoidValues) {
  Matrix m{{0.0f, 100.0f, -100.0f}};
  SigmoidInPlace(m);
  EXPECT_NEAR(m.at(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(m.at(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(m.at(0, 2), 0.0f, 1e-6f);
}

// Property: softmax rows are distributions for any temperature.
class SoftmaxProperty : public ::testing::TestWithParam<float> {};

TEST_P(SoftmaxProperty, RowsSumToOne) {
  const float temp = GetParam();
  const Matrix m = RandomMatrix(13, 9, 2024, 5.0f);
  const Matrix s = SoftmaxRows(m, temp);
  for (std::size_t i = 0; i < s.rows(); ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < s.cols(); ++j) {
      EXPECT_GE(s.at(i, j), 0.0f);
      sum += s.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST_P(SoftmaxProperty, LogSoftmaxConsistent) {
  const float temp = GetParam();
  if (temp != 1.0f) GTEST_SKIP() << "log-softmax has no temperature arg";
  const Matrix m = RandomMatrix(7, 5, 11, 3.0f);
  const Matrix s = SoftmaxRows(m);
  const Matrix ls = LogSoftmaxRows(m);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      EXPECT_NEAR(std::log(s.at(i, j)), ls.at(i, j), 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Temperatures, SoftmaxProperty,
                         ::testing::Values(0.5f, 1.0f, 2.0f, 10.0f));

TEST(OpsTest, SoftmaxNumericallyStableAtLargeLogits) {
  Matrix m{{1000.0f, 1000.0f, -1000.0f}};
  const Matrix s = SoftmaxRows(m);
  EXPECT_NEAR(s.at(0, 0), 0.5f, 1e-5f);
  EXPECT_NEAR(s.at(0, 2), 0.0f, 1e-5f);
  EXPECT_FALSE(std::isnan(s.at(0, 0)));
}

TEST(OpsTest, ArgmaxRows) {
  Matrix m{{0.0f, 3.0f, 1.0f}, {9.0f, 1.0f, 2.0f}};
  const auto idx = ArgmaxRows(m);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(OpsTest, ConcatCols) {
  Matrix a{{1.0f}, {2.0f}};
  Matrix b{{3.0f, 4.0f}, {5.0f, 6.0f}};
  const Matrix c = ConcatCols({&a, &b});
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_FLOAT_EQ(c.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(c.at(1, 2), 6.0f);
}

TEST(OpsTest, MeanOfMatrices) {
  Matrix a{{2.0f}};
  Matrix b{{4.0f}};
  Matrix c{{6.0f}};
  const Matrix m = Mean({&a, &b, &c});
  EXPECT_FLOAT_EQ(m.at(0, 0), 4.0f);
}

TEST(OpsTest, RowL2DistanceAndNorms) {
  Matrix a{{0.0f, 0.0f}, {1.0f, 1.0f}};
  Matrix b{{3.0f, 4.0f}, {1.0f, 1.0f}};
  const auto d = RowL2Distance(a, b);
  EXPECT_NEAR(d[0], 5.0f, 1e-6f);
  EXPECT_NEAR(d[1], 0.0f, 1e-6f);
  const auto n = RowL2Norms(b);
  EXPECT_NEAR(n[0], 5.0f, 1e-6f);
}

TEST(OpsTest, NormalizeRows) {
  Matrix m{{3.0f, 4.0f}, {0.0f, 0.0f}};
  NormalizeRowsInPlace(m);
  EXPECT_NEAR(m.at(0, 0), 0.6f, 1e-6f);
  EXPECT_NEAR(m.at(1, 0), 0.0f, 1e-6f);  // zero row untouched
}

TEST(OpsTest, ColumnSums) {
  Matrix m{{1.0f, 2.0f}, {3.0f, 4.0f}};
  const Matrix s = ColumnSums(m);
  EXPECT_FLOAT_EQ(s.at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(s.at(0, 1), 6.0f);
}

TEST(OpsTest, FrobeniusNorm) {
  Matrix m{{3.0f, 4.0f}};
  EXPECT_NEAR(FrobeniusNorm(m), 5.0f, 1e-6f);
}

TEST(OpsTest, DropoutZeroRateIsIdentity) {
  Matrix m = RandomMatrix(4, 4, 3);
  const Matrix before = m;
  Matrix mask;
  DropoutInPlace(m, 0.0f, mask, [] { return 0.5f; });
  ExpectMatrixNear(m, before, 0.0f);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    EXPECT_FLOAT_EQ(mask.data()[i], 1.0f);
  }
}

TEST(OpsTest, DropoutDropsAndRescales) {
  Matrix m(1, 4);
  m.Fill(2.0f);
  Matrix mask;
  Rng rng(5);
  DropoutInPlace(m, 0.5f, mask, [&rng] { return rng.NextFloat(); });
  for (std::size_t i = 0; i < m.size(); ++i) {
    // Survivors are rescaled by 2x, dropped are exactly 0.
    EXPECT_TRUE(m.data()[i] == 0.0f || m.data()[i] == 4.0f);
    EXPECT_FLOAT_EQ(m.data()[i], 2.0f * mask.data()[i]);
  }
}

TEST(OpsTest, DropoutExpectationPreserved) {
  // E[dropout(x)] == x: check the empirical mean over many entries.
  Matrix m(100, 100);
  m.Fill(1.0f);
  Matrix mask;
  Rng rng(7);
  DropoutInPlace(m, 0.3f, mask, [&rng] { return rng.NextFloat(); });
  const double mean =
      std::accumulate(m.data(), m.data() + m.size(), 0.0) / m.size();
  EXPECT_NEAR(mean, 1.0, 0.05);
}

}  // namespace
}  // namespace nai::tensor
