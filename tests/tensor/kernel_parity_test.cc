// Kernel-parity harness: every compiled-and-supported SIMD level must
// reproduce the scalar reference kernels byte-for-byte on floats (the
// dispatch contract of src/tensor/simd.h — fixed per-element summation
// order, separate mul/add rounding, the matmul_rows zero-skip) and exactly
// on int8/int32. The sweep runs every shape in tests/tensor/kernel_shapes.h
// — lane-group boundaries, register-block boundaries, empty matrices, wide
// serving shapes — with unaligned operand bases, planted denormals, NaNs
// and infinities. On a scalar-only host the per-level loops degenerate to
// scalar-vs-scalar and the suite still passes (and still checks the
// dispatched entry points).

#include "src/tensor/simd.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/graph/csr.h"
#include "src/tensor/matrix.h"
#include "src/tensor/ops.h"
#include "src/runtime/thread_pool.h"
#include "tests/tensor/kernel_shapes.h"

namespace nai::tensor::simd {
namespace {

using nai::testing::FillFloats;
using nai::testing::FillInt8;
using nai::testing::GemmShape;
using nai::testing::KernelValueStream;
using nai::testing::ParityShapes;

/// Restores the auto-detected dispatch level when a test returns (parity
/// tests pin levels; nothing after them should inherit the pin).
struct ActiveLevelGuard {
  ~ActiveLevelGuard() { SetActiveLevelForTesting(BestSupportedLevel()); }
};

std::string ShapeLabel(const GemmShape& s, Level level) {
  return "m=" + std::to_string(s.m) + " k=" + std::to_string(s.k) +
         " n=" + std::to_string(s.n) + " level=" + LevelName(level);
}

/// Bit patterns of a float buffer. Comparing these vectors is bitwise
/// equality for every non-NaN value (including signed zeros, denormals and
/// infinities, which ordinary float == would conflate or miss). NaNs are
/// canonicalized to one quiet pattern first: when two NaNs meet in an add
/// (a propagated NaN accumulator plus a fresh inf*0 indefinite), IEEE 754
/// leaves *which* payload survives unspecified, and the scalar reference's
/// choice is literally the compiler's register allocation for `acc += x` —
/// so the dispatch contract is NaN-for-NaN positional agreement, not NaN
/// payload equality (see the simd.h KernelSet comment).
std::vector<std::uint32_t> Bits(const std::vector<float>& v) {
  std::vector<std::uint32_t> out(v.size());
  if (!v.empty()) std::memcpy(out.data(), v.data(), v.size() * sizeof(float));
  for (std::uint32_t& b : out) {
    if ((b & 0x7F800000u) == 0x7F800000u && (b & 0x007FFFFFu) != 0) {
      b = 0x7FC00000u;
    }
  }
  return out;
}

std::vector<std::uint32_t> Bits(const Matrix& m) {
  return Bits(std::vector<float>(m.data(), m.data() + m.size()));
}

/// An operand buffer whose payload starts one float past an aligned
/// allocation base, so vector kernels cannot rely on any alignment.
struct Unaligned {
  explicit Unaligned(std::size_t n) : storage(n + 1) {}
  float* data() { return storage.data() + 1; }
  const float* data() const { return storage.data() + 1; }
  std::size_t size() const { return storage.size() - 1; }
  std::vector<float> payload() const {
    return std::vector<float>(storage.begin() + 1, storage.end());
  }
  std::vector<float> storage;
};

TEST(KernelParityTest, AxpyMatchesScalarBitwise) {
  const std::size_t lengths[] = {0,  1,  2,  7,   8,   9,    15,  16,
                                 17, 31, 32, 33,  63,  64,   65,  100,
                                 127, 128, 1000, 4096};
  for (const bool poison : {false, true}) {
    for (const std::size_t n : lengths) {
      KernelValueStream stream(11 + n + (poison ? 1000 : 0));
      Unaligned src(n), dst_init(n);
      std::vector<float> sv(n), dv(n);
      FillFloats(stream, sv, poison);
      FillFloats(stream, dv);
      std::copy(sv.begin(), sv.end(), src.data());
      std::copy(dv.begin(), dv.end(), dst_init.data());
      const float weights[] = {0.0f, 1.0f, -0.75f, 1e-38f,
                               std::numeric_limits<float>::quiet_NaN()};
      for (const float w : weights) {
        if (std::isnan(w) && !poison) continue;
        Unaligned ref(n);
        std::copy(dv.begin(), dv.end(), ref.data());
        Kernels(Level::kScalar).axpy(w, src.data(), ref.data(), n);
        for (const Level level : SupportedLevels()) {
          Unaligned out(n);
          std::copy(dv.begin(), dv.end(), out.data());
          Kernels(level).axpy(w, src.data(), out.data(), n);
          EXPECT_EQ(Bits(out.payload()), Bits(ref.payload()))
              << "axpy n=" << n << " w=" << w << " poison=" << poison
              << " level=" << LevelName(level);
        }
      }
    }
  }
}

TEST(KernelParityTest, MatMulRowsMatchesScalarBitwise) {
  for (const bool poison : {false, true}) {
    for (const GemmShape& s : ParityShapes()) {
      KernelValueStream stream(17 + s.m * 31 + s.k * 7 + s.n +
                               (poison ? 5000 : 0));
      Unaligned a(s.m * s.k), b(s.k * s.n);
      std::vector<float> av(a.size()), bv(b.size()), init(s.m * s.n);
      FillFloats(stream, av);
      // Poison only b: the zero-skip contract says a[i][p] == 0 must also
      // skip 0 * NaN, so planting NaN/Inf in b (opposite the stream's
      // exact zeros in a) exercises exactly that path.
      FillFloats(stream, bv, poison);
      FillFloats(stream, init);
      std::copy(av.begin(), av.end(), a.data());
      std::copy(bv.begin(), bv.end(), b.data());

      Unaligned ref(s.m * s.n);
      std::copy(init.begin(), init.end(), ref.data());
      Kernels(Level::kScalar)
          .matmul_rows(a.data(), b.data(), ref.data(), 0, s.m, s.k, s.n);
      for (const Level level : SupportedLevels()) {
        Unaligned out(s.m * s.n);
        std::copy(init.begin(), init.end(), out.data());
        // Split the row range unevenly to cover the r0 > 0 entry as the
        // threaded ParallelFor would.
        const std::size_t mid = s.m / 3;
        const KernelSet& ks = Kernels(level);
        ks.matmul_rows(a.data(), b.data(), out.data(), 0, mid, s.k, s.n);
        ks.matmul_rows(a.data(), b.data(), out.data(), mid, s.m, s.k, s.n);
        EXPECT_EQ(Bits(out.payload()), Bits(ref.payload()))
            << ShapeLabel(s, level) << " poison=" << poison;
      }
    }
  }
}

TEST(KernelParityTest, MatMulTransposeBRowsMatchesScalarBitwise) {
  for (const bool poison : {false, true}) {
    for (const GemmShape& s : ParityShapes()) {
      KernelValueStream stream(29 + s.m * 13 + s.k * 3 + s.n +
                               (poison ? 7000 : 0));
      Unaligned a(s.m * s.k), b(s.n * s.k);  // b is (n x k): out = a * b^T
      std::vector<float> av(a.size()), bv(b.size());
      FillFloats(stream, av, poison);
      FillFloats(stream, bv);
      std::copy(av.begin(), av.end(), a.data());
      std::copy(bv.begin(), bv.end(), b.data());

      Unaligned ref(s.m * s.n);
      Kernels(Level::kScalar)
          .matmul_tb_rows(a.data(), b.data(), ref.data(), 0, s.m, s.k, s.n);
      for (const Level level : SupportedLevels()) {
        Unaligned out(s.m * s.n);
        const std::size_t mid = (2 * s.m) / 3;
        const KernelSet& ks = Kernels(level);
        ks.matmul_tb_rows(a.data(), b.data(), out.data(), 0, mid, s.k, s.n);
        ks.matmul_tb_rows(a.data(), b.data(), out.data(), mid, s.m, s.k,
                          s.n);
        EXPECT_EQ(Bits(out.payload()), Bits(ref.payload()))
            << ShapeLabel(s, level) << " poison=" << poison;
      }
    }
  }
}

TEST(KernelParityTest, GemmS8ExactAcrossLevels) {
  // Integer kernel: every level must produce *identical* int32 accumulators
  // (not merely close — there is no rounding in int8 x int8 -> int32).
  for (const GemmShape& s : ParityShapes()) {
    KernelValueStream stream(43 + s.k * 5 + s.n);
    std::vector<std::int8_t> x(s.k), w(s.k * s.n);
    FillInt8(stream, x);
    FillInt8(stream, w);
    std::vector<std::int32_t> init(s.n);
    for (std::size_t j = 0; j < s.n; ++j) {
      init[j] = static_cast<std::int32_t>(j * 97) - 300;
    }
    std::vector<std::int32_t> ref = init;
    Kernels(Level::kScalar).gemm_s8(x.data(), w.data(), ref.data(), s.k, s.n);
    for (const Level level : SupportedLevels()) {
      std::vector<std::int32_t> acc = init;
      Kernels(level).gemm_s8(x.data(), w.data(), acc.data(), s.k, s.n);
      EXPECT_EQ(acc, ref) << ShapeLabel(s, level);
    }
    // Saturation extreme: all-(-127) operands over the full reduction must
    // accumulate without overflow at every level (k * 127^2 fits int32 for
    // every sweep shape).
    std::fill(x.begin(), x.end(), static_cast<std::int8_t>(-127));
    std::fill(w.begin(), w.end(), static_cast<std::int8_t>(-127));
    ref.assign(s.n, 0);
    Kernels(Level::kScalar).gemm_s8(x.data(), w.data(), ref.data(), s.k, s.n);
    for (const Level level : SupportedLevels()) {
      std::vector<std::int32_t> acc(s.n, 0);
      Kernels(level).gemm_s8(x.data(), w.data(), acc.data(), s.k, s.n);
      EXPECT_EQ(acc, ref) << ShapeLabel(s, level) << " saturation";
      if (s.k > 0 && s.n > 0) {
        EXPECT_EQ(acc[0], static_cast<std::int32_t>(s.k) * 127 * 127);
      }
    }
  }
}

TEST(KernelParityTest, GemmS8WithinToleranceOfFloatReference) {
  // The int8 path's declared contract vs *float* arithmetic: symmetric
  // absmax/127 per-tensor quantization bounds each product's error, so the
  // dequantized accumulator lands within k * (ax*aw) * (2/127 + 1/127^2)
  // of the float dot product (each factor off by at most scale/2 ignoring
  // rounding direction; we test the conservative full-step bound).
  for (const GemmShape& s : ParityShapes()) {
    if (s.k == 0 || s.n == 0) continue;
    KernelValueStream stream(71 + s.k * 11 + s.n);
    std::vector<float> x(s.k), w(s.k * s.n);
    FillFloats(stream, x);
    FillFloats(stream, w);
    float ax = 0.0f, aw = 0.0f;
    for (const float v : x) ax = std::max(ax, std::fabs(v));
    for (const float v : w) aw = std::max(aw, std::fabs(v));
    if (ax == 0.0f || aw == 0.0f) continue;
    const float sx = ax / 127.0f, sw = aw / 127.0f;
    std::vector<std::int8_t> xq(s.k), wq(s.k * s.n);
    auto quant = [](float v, float scale) {
      const long q = std::lround(v / scale);
      return static_cast<std::int8_t>(std::min(127L, std::max(-127L, q)));
    };
    for (std::size_t p = 0; p < s.k; ++p) xq[p] = quant(x[p], sx);
    for (std::size_t i = 0; i < w.size(); ++i) wq[i] = quant(w[i], sw);

    const double bound = static_cast<double>(s.k) * ax * aw *
                         (2.0 / 127.0 + 1.0 / (127.0 * 127.0));
    for (const Level level : SupportedLevels()) {
      std::vector<std::int32_t> acc(s.n, 0);
      Kernels(level).gemm_s8(xq.data(), wq.data(), acc.data(), s.k, s.n);
      for (std::size_t j = 0; j < s.n; ++j) {
        double exact = 0.0;
        for (std::size_t p = 0; p < s.k; ++p) {
          exact += static_cast<double>(x[p]) * static_cast<double>(w[p * s.n + j]);
        }
        const double dequant = static_cast<double>(acc[j]) * sx * sw;
        EXPECT_LE(std::fabs(dequant - exact), bound)
            << ShapeLabel(s, level) << " col=" << j;
      }
    }
  }
}

TEST(KernelParityTest, DispatchedMatMulBitExactAcrossLevels) {
  // The public entry points (tensor::MatMul / MatMulTransposeB) under the
  // test pin: every supported level must reproduce the scalar-pinned
  // product byte-for-byte, single- and multi-threaded.
  ActiveLevelGuard guard;
  for (const GemmShape& s : ParityShapes()) {
    KernelValueStream stream(101 + s.m + s.k + s.n);
    Matrix a(s.m, s.k), b(s.k, s.n), bt(s.n, s.k);
    for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = stream.Next();
    for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = stream.Next();
    for (std::size_t i = 0; i < bt.size(); ++i) bt.data()[i] = stream.Next();

    SetActiveLevelForTesting(Level::kScalar);
    runtime::ThreadPool::SetDefaultThreads(1);
    const Matrix ref = MatMul(a, b);
    const Matrix ref_tb = MatMulTransposeB(a, bt);
    for (const Level level : SupportedLevels()) {
      SetActiveLevelForTesting(level);
      for (const int threads : {1, 8}) {
        runtime::ThreadPool::SetDefaultThreads(threads);
        const Matrix out = MatMul(a, b);
        const Matrix out_tb = MatMulTransposeB(a, bt);
        const std::string label = ShapeLabel(s, level) +
                                  " threads=" + std::to_string(threads);
        ASSERT_EQ(out.rows(), ref.rows());
        ASSERT_EQ(out.cols(), ref.cols());
        EXPECT_EQ(Bits(out), Bits(ref)) << "MatMul " << label;
        EXPECT_EQ(Bits(out_tb), Bits(ref_tb))
            << "MatMulTransposeB " << label;
      }
    }
  }
  runtime::ThreadPool::SetDefaultThreads(0);
}

TEST(KernelParityTest, DispatchedSpMMBitExactAcrossLevels) {
  // graph::SpMM routes its accumulation through the dispatched axpy. A
  // CSR with empty rows, single-entry rows and dense-ish rows over feature
  // widths straddling lane boundaries must be byte-identical at every
  // level (empty rows stay exactly zero).
  ActiveLevelGuard guard;
  constexpr std::int64_t kNodes = 37;
  std::vector<graph::Triplet> trips;
  KernelValueStream stream(131);
  for (std::int32_t r = 0; r < kNodes; ++r) {
    if (r % 5 == 3) continue;  // empty rows
    const int deg = 1 + (r * 7) % 6;
    for (int d = 0; d < deg; ++d) {
      trips.push_back({r, static_cast<std::int32_t>((r * 13 + d * 5) % kNodes),
                       stream.Next()});
    }
  }
  const graph::Csr csr = graph::CsrFromTriplets(kNodes, kNodes, trips);
  for (const std::size_t f : {1u, 7u, 8u, 9u, 16u, 33u}) {
    Matrix dense(kNodes, f);
    for (std::size_t i = 0; i < dense.size(); ++i) {
      dense.data()[i] = stream.Next();
    }
    SetActiveLevelForTesting(Level::kScalar);
    runtime::ThreadPool::SetDefaultThreads(1);
    const Matrix ref = graph::SpMM(csr, dense);
    for (std::int64_t r = 0; r < kNodes; ++r) {
      if (r % 5 == 3) {
        for (std::size_t c = 0; c < f; ++c) EXPECT_EQ(ref.at(r, c), 0.0f);
      }
    }
    for (const Level level : SupportedLevels()) {
      SetActiveLevelForTesting(level);
      for (const int threads : {1, 8}) {
        runtime::ThreadPool::SetDefaultThreads(threads);
        const Matrix out = graph::SpMM(csr, dense);
        EXPECT_EQ(Bits(out), Bits(ref))
            << "SpMM f=" << f << " level=" << LevelName(level)
            << " threads=" << threads;
      }
    }
  }
  runtime::ThreadPool::SetDefaultThreads(0);
}

}  // namespace
}  // namespace nai::tensor::simd
