#include "src/tensor/matrix.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace nai::tensor {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m.data()[i], 0.0f);
  }
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1.0f, 2.0f}, {3.0f, 4.0f}, {5.0f, 6.0f}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.at(0, 0), 1.0f);
  EXPECT_EQ(m.at(2, 1), 6.0f);
}

TEST(MatrixTest, RowMajorLayout) {
  Matrix m{{1.0f, 2.0f, 3.0f}, {4.0f, 5.0f, 6.0f}};
  EXPECT_EQ(m.row(1)[0], 4.0f);
  EXPECT_EQ(m.row(1)[2], 6.0f);
  EXPECT_EQ(m.data()[3], 4.0f);  // row 1 starts at offset cols
}

TEST(MatrixTest, FillAndResize) {
  Matrix m(2, 2);
  m.Fill(7.5f);
  EXPECT_EQ(m.at(1, 1), 7.5f);
  m.Resize(3, 5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_EQ(m.at(2, 4), 0.0f);  // resize zero-initializes
}

TEST(MatrixTest, RowCopy) {
  Matrix m{{1.0f, 2.0f}, {3.0f, 4.0f}};
  Matrix r = m.RowCopy(1);
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 2u);
  EXPECT_EQ(r.at(0, 0), 3.0f);
  EXPECT_EQ(r.at(0, 1), 4.0f);
}

TEST(MatrixTest, GatherRows) {
  Matrix m{{0.0f, 1.0f}, {10.0f, 11.0f}, {20.0f, 21.0f}};
  Matrix g = m.GatherRows({2, 0, 2});
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.at(0, 0), 20.0f);
  EXPECT_EQ(g.at(1, 1), 1.0f);
  EXPECT_EQ(g.at(2, 0), 20.0f);
}

TEST(MatrixTest, GatherRowsEmpty) {
  Matrix m{{1.0f, 2.0f}};
  Matrix g = m.GatherRows({});
  EXPECT_EQ(g.rows(), 0u);
  EXPECT_EQ(g.cols(), 2u);
}

TEST(MatrixTest, SetRow) {
  Matrix m(2, 3);
  const float src[3] = {1.0f, 2.0f, 3.0f};
  m.SetRow(1, src);
  EXPECT_EQ(m.at(1, 2), 3.0f);
  EXPECT_EQ(m.at(0, 0), 0.0f);
}

TEST(MatrixTest, RowSquaredNorm) {
  Matrix m{{3.0f, 4.0f}, {0.0f, 0.0f}};
  EXPECT_FLOAT_EQ(m.RowSquaredNorm(0), 25.0f);
  EXPECT_FLOAT_EQ(m.RowSquaredNorm(1), 0.0f);
}

TEST(MatrixTest, CountDifferences) {
  Matrix a{{1.0f, 2.0f}, {3.0f, 4.0f}};
  Matrix b = a;
  EXPECT_EQ(a.CountDifferences(b, 1e-6f), 0u);
  b.at(0, 1) += 0.5f;
  EXPECT_EQ(a.CountDifferences(b, 1e-6f), 1u);
  Matrix c(1, 2);
  EXPECT_EQ(a.CountDifferences(c, 1e-6f), a.size());
}

TEST(MatrixTest, ShapeString) {
  Matrix m(5, 7);
  EXPECT_EQ(m.ShapeString(), "[5 x 7]");
}

TEST(MatrixTest, CopyAndMove) {
  Matrix a{{1.0f, 2.0f}};
  Matrix b = a;          // copy
  Matrix c = std::move(a);
  EXPECT_EQ(b.at(0, 1), 2.0f);
  EXPECT_EQ(c.at(0, 1), 2.0f);
}

TEST(MatrixTest, SameShape) {
  Matrix a(3, 4), b(3, 4), c(4, 3);
  EXPECT_TRUE(a.SameShape(b));
  EXPECT_FALSE(a.SameShape(c));
  EXPECT_TRUE(Matrix().SameShape(Matrix()));
}

TEST(MatrixTest, CallOperatorAliasesAt) {
  Matrix m(2, 3);
  m(1, 2) = 9.5f;
  EXPECT_FLOAT_EQ(m.at(1, 2), 9.5f);
  const Matrix& cm = m;
  EXPECT_FLOAT_EQ(cm(1, 2), 9.5f);
}

TEST(MatrixTest, ResizeClearsOldContents) {
  Matrix m(2, 2);
  m.Fill(7.0f);
  m.Resize(3, 3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_FLOAT_EQ(m.data()[i], 0.0f);
  }
}

}  // namespace
}  // namespace nai::tensor
