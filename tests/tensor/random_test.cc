#include "src/tensor/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "gtest/gtest.h"

namespace nai::tensor {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SeedZeroIsUsable) {
  Rng rng(0);
  // A raw xoshiro with all-zero state would return 0 forever; the splitmix
  // seeding must prevent that.
  std::set<std::uint64_t> values;
  for (int i = 0; i < 16; ++i) values.insert(rng.NextUint64());
  EXPECT_GT(values.size(), 10u);
}

TEST(RngTest, FloatInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.NextFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(RngTest, BoundedWithinRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  // bound 1 always returns 0
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const float g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(RngTest, GumbelMoments) {
  // Gumbel(0,1): mean = Euler-Mascheroni (~0.5772), var = pi^2/6 (~1.645).
  Rng rng(15);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const float g = rng.NextGumbel();
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5772, 0.02);
  EXPECT_NEAR(var, 1.6449, 0.1);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(17);
  std::vector<std::int32_t> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<std::int32_t> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);  // same multiset
}

TEST(RandomFillTest, GlorotWithinLimit) {
  Matrix m(30, 50);
  Rng rng(19);
  FillGlorot(m, rng);
  const float limit = std::sqrt(6.0f / (30 + 50));
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), limit);
  }
  // Not all zero.
  float maxabs = 0.0f;
  for (std::size_t i = 0; i < m.size(); ++i) {
    maxabs = std::max(maxabs, std::fabs(m.data()[i]));
  }
  EXPECT_GT(maxabs, limit * 0.5f);
}

TEST(RandomFillTest, GaussianStddev) {
  Matrix m(100, 100);
  Rng rng(21);
  FillGaussian(m, 2.0f, rng);
  double sumsq = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    sumsq += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  EXPECT_NEAR(std::sqrt(sumsq / m.size()), 2.0, 0.1);
}

TEST(SampleWithoutReplacementTest, DistinctAndInRange) {
  Rng rng(23);
  const auto s = SampleWithoutReplacement(1000, 100, rng);
  EXPECT_EQ(s.size(), 100u);
  std::set<std::int32_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 100u);
  for (const auto v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1000);
  }
}

TEST(SampleWithoutReplacementTest, FullPopulation) {
  Rng rng(25);
  const auto s = SampleWithoutReplacement(10, 10, rng);
  std::set<std::int32_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 10u);
}

}  // namespace
}  // namespace nai::tensor
