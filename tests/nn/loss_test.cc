#include "src/nn/loss.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace nai::nn {
namespace {

using nai::testing::GradientRelativeError;
using nai::testing::NumericalGradient;
using nai::testing::RandomMatrix;

TEST(LossTest, CrossEntropyUniformLogits) {
  tensor::Matrix logits(2, 4);  // all zeros -> uniform softmax
  const LossResult r = SoftmaxCrossEntropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0f), 1e-5f);
}

TEST(LossTest, CrossEntropyPerfectPrediction) {
  tensor::Matrix logits{{100.0f, 0.0f}, {0.0f, 100.0f}};
  const LossResult r = SoftmaxCrossEntropy(logits, {0, 1});
  EXPECT_NEAR(r.loss, 0.0f, 1e-5f);
  // Gradient vanishes at the optimum.
  for (std::size_t i = 0; i < r.grad_logits.size(); ++i) {
    EXPECT_NEAR(r.grad_logits.data()[i], 0.0f, 1e-5f);
  }
}

TEST(LossTest, CrossEntropyGradientCheck) {
  tensor::Matrix logits = RandomMatrix(6, 5, 42);
  const std::vector<std::int32_t> labels = {0, 1, 2, 3, 4, 0};
  const LossResult r = SoftmaxCrossEntropy(logits, labels);
  const tensor::Matrix num = NumericalGradient(
      logits, [&] { return SoftmaxCrossEntropy(logits, labels).loss; });
  EXPECT_LT(GradientRelativeError(r.grad_logits, num), 0.02f);
}

TEST(LossTest, SoftTargetMatchesHardAtDelta) {
  // Soft-target CE with a one-hot target and T=1 equals hard-label CE.
  tensor::Matrix logits = RandomMatrix(3, 4, 7);
  const std::vector<std::int32_t> labels = {2, 0, 3};
  tensor::Matrix targets(3, 4);
  for (std::size_t i = 0; i < 3; ++i) targets.at(i, labels[i]) = 1.0f;
  const LossResult hard = SoftmaxCrossEntropy(logits, labels);
  const LossResult soft = SoftTargetCrossEntropy(logits, targets, 1.0f);
  EXPECT_NEAR(hard.loss, soft.loss, 1e-5f);
  nai::testing::ExpectMatrixNear(hard.grad_logits, soft.grad_logits, 1e-5f);
}

class SoftTargetTemp : public ::testing::TestWithParam<float> {};

TEST_P(SoftTargetTemp, GradientCheck) {
  const float T = GetParam();
  tensor::Matrix logits = RandomMatrix(4, 3, 11);
  const tensor::Matrix targets =
      tensor::SoftmaxRows(RandomMatrix(4, 3, 12), 1.0f);
  const LossResult r = SoftTargetCrossEntropy(logits, targets, T);
  const tensor::Matrix num = NumericalGradient(logits, [&] {
    return SoftTargetCrossEntropy(logits, targets, T).loss;
  });
  EXPECT_LT(GradientRelativeError(r.grad_logits, num), 0.02f);
}

INSTANTIATE_TEST_SUITE_P(Temperatures, SoftTargetTemp,
                         ::testing::Values(0.5f, 1.0f, 1.5f, 2.0f, 4.0f));

TEST(LossTest, SoftTargetMinimizedWhenMatching) {
  // The loss is minimized (equals target entropy) when softmax(z/T) = target.
  tensor::Matrix logits{{2.0f, 1.0f, 0.0f}};
  const tensor::Matrix target = tensor::SoftmaxRows(logits, 1.0f);
  const float at_match =
      SoftTargetCrossEntropy(logits, target, 1.0f).loss;
  tensor::Matrix other{{0.0f, 1.0f, 2.0f}};
  const float elsewhere = SoftTargetCrossEntropy(other, target, 1.0f).loss;
  EXPECT_LT(at_match, elsewhere);
}

TEST(LossTest, CrossEntropyOnProbabilities) {
  tensor::Matrix probs{{0.5f, 0.5f}, {0.9f, 0.1f}};
  const LossResult r = CrossEntropyOnProbabilities(probs, {0, 0});
  EXPECT_NEAR(r.loss, 0.5f * (-std::log(0.5f) - std::log(0.9f)), 1e-5f);
  // Gradient: -1/(N p) on the label entries only.
  EXPECT_NEAR(r.grad_logits.at(0, 0), -0.5f / 0.5f, 1e-4f);
  EXPECT_NEAR(r.grad_logits.at(1, 0), -0.5f / 0.9f, 1e-4f);
  EXPECT_EQ(r.grad_logits.at(0, 1), 0.0f);
}

TEST(LossTest, CrossEntropyOnProbabilitiesClampsZero) {
  tensor::Matrix probs{{0.0f, 1.0f}};
  const LossResult r = CrossEntropyOnProbabilities(probs, {0});
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_TRUE(std::isfinite(r.grad_logits.at(0, 0)));
}

TEST(LossTest, Accuracy) {
  tensor::Matrix logits{{1.0f, 0.0f}, {0.0f, 1.0f}, {1.0f, 0.0f}};
  EXPECT_FLOAT_EQ(Accuracy(logits, {0, 1, 1}), 2.0f / 3.0f);
  EXPECT_FLOAT_EQ(Accuracy(tensor::Matrix(0, 2), {}), 0.0f);
}

TEST(LossTest, CrossEntropyInvariantToLogitShift) {
  // Softmax is shift-invariant per row: adding a constant to a row's logits
  // must not change the loss or its gradient.
  const tensor::Matrix logits = RandomMatrix(4, 5, 60);
  tensor::Matrix shifted = logits;
  for (std::size_t i = 0; i < shifted.rows(); ++i) {
    for (std::size_t j = 0; j < shifted.cols(); ++j) {
      shifted.at(i, j) += 7.5f;
    }
  }
  const std::vector<std::int32_t> labels = {0, 2, 4, 1};
  const LossResult a = SoftmaxCrossEntropy(logits, labels);
  const LossResult b = SoftmaxCrossEntropy(shifted, labels);
  EXPECT_NEAR(a.loss, b.loss, 1e-4f);
  nai::testing::ExpectMatrixNear(a.grad_logits, b.grad_logits, 1e-5f);
}

TEST(LossTest, GradientRowsSumToZero) {
  // (softmax - onehot) sums to zero per row, scaled by 1/N.
  const tensor::Matrix logits = RandomMatrix(6, 3, 61);
  const LossResult r = SoftmaxCrossEntropy(logits, {0, 1, 2, 0, 1, 2});
  for (std::size_t i = 0; i < 6; ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < 3; ++j) sum += r.grad_logits.at(i, j);
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
}

}  // namespace
}  // namespace nai::nn
