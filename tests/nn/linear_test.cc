#include "src/nn/linear.h"

#include "gtest/gtest.h"
#include "src/nn/loss.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace nai::nn {
namespace {

using nai::testing::GradientRelativeError;
using nai::testing::NumericalGradient;
using nai::testing::RandomMatrix;

TEST(LinearTest, ForwardShapeAndBias) {
  tensor::Rng rng(1);
  Linear layer(4, 3, rng);
  layer.bias().value.Fill(0.5f);
  tensor::Matrix x(2, 4);  // zeros
  const tensor::Matrix y = layer.Forward(x, false);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 3u);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(y.at(0, j), 0.5f);
}

TEST(LinearTest, ForwardMatchesManual) {
  tensor::Rng rng(2);
  Linear layer(2, 2, rng);
  layer.weight().value = tensor::Matrix{{1.0f, 2.0f}, {3.0f, 4.0f}};
  layer.bias().value = tensor::Matrix{{10.0f, 20.0f}};
  tensor::Matrix x{{1.0f, 1.0f}};
  const tensor::Matrix y = layer.Forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 14.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 26.0f);
}

TEST(LinearTest, GradientCheckWeight) {
  tensor::Rng rng(3);
  Linear layer(5, 4, rng);
  const tensor::Matrix x = RandomMatrix(7, 5, 10);
  const std::vector<std::int32_t> labels = {0, 1, 2, 3, 0, 1, 2};

  auto loss_fn = [&] {
    const tensor::Matrix logits = layer.Forward(x, false);
    return SoftmaxCrossEntropy(logits, labels).loss;
  };

  layer.weight().ZeroGrad();
  layer.bias().ZeroGrad();
  const tensor::Matrix logits = layer.Forward(x, true);
  const LossResult loss = SoftmaxCrossEntropy(logits, labels);
  layer.Backward(loss.grad_logits);

  const tensor::Matrix num_w = NumericalGradient(layer.weight().value, loss_fn);
  EXPECT_LT(GradientRelativeError(layer.weight().grad, num_w), 0.02f);
  const tensor::Matrix num_b = NumericalGradient(layer.bias().value, loss_fn);
  EXPECT_LT(GradientRelativeError(layer.bias().grad, num_b), 0.02f);
}

TEST(LinearTest, BackwardReturnsInputGradient) {
  // Check dL/dX against numerical differentiation through a fixed layer.
  tensor::Rng rng(4);
  Linear layer(3, 2, rng);
  tensor::Matrix x = RandomMatrix(4, 3, 11);
  const std::vector<std::int32_t> labels = {0, 1, 0, 1};

  auto loss_fn = [&] {
    const tensor::Matrix logits = layer.Forward(x, false);
    return SoftmaxCrossEntropy(logits, labels).loss;
  };

  layer.weight().ZeroGrad();
  layer.bias().ZeroGrad();
  const tensor::Matrix logits = layer.Forward(x, true);
  const LossResult loss = SoftmaxCrossEntropy(logits, labels);
  const tensor::Matrix grad_x = layer.Backward(loss.grad_logits);

  const tensor::Matrix num_x = NumericalGradient(x, loss_fn);
  EXPECT_LT(GradientRelativeError(grad_x, num_x), 0.02f);
}

TEST(LinearTest, GradientsAccumulate) {
  tensor::Rng rng(5);
  Linear layer(2, 2, rng);
  const tensor::Matrix x = RandomMatrix(3, 2, 12);
  const tensor::Matrix g = RandomMatrix(3, 2, 13);
  layer.Forward(x, true);
  layer.Backward(g);
  const tensor::Matrix once = layer.weight().grad;
  layer.Forward(x, true);
  layer.Backward(g);
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(layer.weight().grad.data()[i], 2.0f * once.data()[i], 1e-4f);
  }
}

TEST(LinearTest, ForwardMacs) {
  tensor::Rng rng(6);
  Linear layer(10, 20, rng);
  EXPECT_EQ(layer.ForwardMacs(5), 5 * 10 * 20);
}

TEST(LinearTest, CollectParameters) {
  tensor::Rng rng(7);
  Linear layer(2, 3, rng);
  std::vector<Parameter*> params;
  layer.CollectParameters(params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->value.rows(), 2u);
  EXPECT_EQ(params[1]->value.cols(), 3u);
}

TEST(LinearTest, SameSeedSameInitialization) {
  tensor::Rng rng_a(123);
  tensor::Rng rng_b(123);
  Linear a(6, 4, rng_a);
  Linear b(6, 4, rng_b);
  const tensor::Matrix x = RandomMatrix(3, 6, 50);
  EXPECT_EQ(a.Forward(x, false).CountDifferences(b.Forward(x, false), 0.0f),
            0u);
}

TEST(LinearTest, EmptyBatchForward) {
  tensor::Rng rng(51);
  Linear layer(4, 3, rng);
  tensor::Matrix x(0, 4);
  const tensor::Matrix y = layer.Forward(x, false);
  EXPECT_EQ(y.rows(), 0u);
  EXPECT_EQ(y.cols(), 3u);
  EXPECT_EQ(layer.ForwardMacs(0), 0);
}

}  // namespace
}  // namespace nai::nn
