#include "src/nn/adam.h"

#include <cmath>

#include "gtest/gtest.h"

namespace nai::nn {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  // f(w) = 0.5 * ||w - target||^2, grad = w - target.
  Parameter p;
  p.Resize(1, 3);
  p.value = tensor::Matrix{{5.0f, -2.0f, 0.5f}};
  const tensor::Matrix target{{1.0f, 1.0f, 1.0f}};

  Adam adam({.learning_rate = 0.1f});
  adam.Register({&p});
  for (int i = 0; i < 500; ++i) {
    adam.ZeroGrad();
    for (std::size_t j = 0; j < 3; ++j) {
      p.grad.at(0, j) = p.value.at(0, j) - target.at(0, j);
    }
    adam.Step();
  }
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(p.value.at(0, j), 1.0f, 1e-2f);
  }
}

TEST(AdamTest, FirstStepSizeIsLearningRate) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  Parameter p;
  p.Resize(1, 1);
  p.value.at(0, 0) = 0.0f;
  Adam adam({.learning_rate = 0.01f});
  adam.Register({&p});
  p.grad.at(0, 0) = 123.0f;
  adam.Step();
  EXPECT_NEAR(p.value.at(0, 0), -0.01f, 1e-4f);
}

TEST(AdamTest, ZeroGradClearsAll) {
  Parameter a, b;
  a.Resize(2, 2);
  b.Resize(1, 4);
  Adam adam({});
  adam.Register({&a, &b});
  a.grad.Fill(3.0f);
  b.grad.Fill(-1.0f);
  adam.ZeroGrad();
  for (std::size_t i = 0; i < a.grad.size(); ++i) {
    EXPECT_EQ(a.grad.data()[i], 0.0f);
  }
  for (std::size_t i = 0; i < b.grad.size(); ++i) {
    EXPECT_EQ(b.grad.data()[i], 0.0f);
  }
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Parameter p;
  p.Resize(1, 1);
  p.value.at(0, 0) = 10.0f;
  Adam adam({.learning_rate = 0.1f, .weight_decay = 1.0f});
  adam.Register({&p});
  // Zero loss gradient: only decay drives the update.
  for (int i = 0; i < 100; ++i) {
    adam.ZeroGrad();
    adam.Step();
  }
  EXPECT_LT(std::fabs(p.value.at(0, 0)), 10.0f * 0.5f);
}

TEST(AdamTest, StepCountAdvances) {
  Parameter p;
  p.Resize(1, 1);
  Adam adam({});
  adam.Register({&p});
  EXPECT_EQ(adam.step_count(), 0);
  adam.Step();
  adam.Step();
  EXPECT_EQ(adam.step_count(), 2);
}

TEST(AdamTest, IdenticalParametersGetIdenticalUpdates) {
  // Adam is deterministic and per-parameter: two parameters with the same
  // values and gradients must stay bit-identical through many steps.
  Parameter a, b;
  a.Resize(2, 2);
  b.Resize(2, 2);
  a.value.Fill(1.5f);
  b.value.Fill(1.5f);
  Adam adam({.learning_rate = 0.05f});
  adam.Register({&a, &b});
  for (int i = 0; i < 10; ++i) {
    adam.ZeroGrad();
    a.grad.Fill(0.3f * static_cast<float>(i + 1));
    b.grad.Fill(0.3f * static_cast<float>(i + 1));
    adam.Step();
  }
  for (std::size_t i = 0; i < a.value.size(); ++i) {
    EXPECT_EQ(a.value.data()[i], b.value.data()[i]);
  }
}

}  // namespace
}  // namespace nai::nn
