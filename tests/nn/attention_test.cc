#include "src/nn/attention.h"

#include "gtest/gtest.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace nai::nn {
namespace {

using nai::testing::GradientRelativeError;
using nai::testing::NumericalGradient;
using nai::testing::RandomMatrix;

TEST(AttentionTest, OutputIsConvexCombination) {
  tensor::Rng rng(1);
  VectorAttention att(3, 4, rng);
  const tensor::Matrix v0 = RandomMatrix(5, 4, 2);
  const tensor::Matrix v1 = RandomMatrix(5, 4, 3);
  const tensor::Matrix v2 = RandomMatrix(5, 4, 4);
  tensor::Matrix w;
  const tensor::Matrix out = att.Forward({&v0, &v1, &v2}, false, &w);
  EXPECT_EQ(out.rows(), 5u);
  EXPECT_EQ(out.cols(), 4u);
  for (std::size_t i = 0; i < 5; ++i) {
    float sum = 0.0f;
    for (std::size_t l = 0; l < 3; ++l) {
      EXPECT_GE(w.at(i, l), 0.0f);
      sum += w.at(i, l);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    // Each output coordinate lies inside the convex hull of the views.
    for (std::size_t j = 0; j < 4; ++j) {
      const float lo =
          std::min({v0.at(i, j), v1.at(i, j), v2.at(i, j)});
      const float hi =
          std::max({v0.at(i, j), v1.at(i, j), v2.at(i, j)});
      EXPECT_GE(out.at(i, j), lo - 1e-4f);
      EXPECT_LE(out.at(i, j), hi + 1e-4f);
    }
  }
}

TEST(AttentionTest, IdenticalViewsGiveThatView) {
  tensor::Rng rng(5);
  VectorAttention att(2, 3, rng);
  const tensor::Matrix v = RandomMatrix(4, 3, 6);
  const tensor::Matrix out = att.Forward({&v, &v}, false);
  nai::testing::ExpectMatrixNear(out, v, 1e-5f);
}

TEST(AttentionTest, ReferenceGradientCheck) {
  tensor::Rng rng(7);
  VectorAttention att(3, 4, rng);
  const tensor::Matrix v0 = RandomMatrix(4, 4, 8);
  const tensor::Matrix v1 = RandomMatrix(4, 4, 9);
  const tensor::Matrix v2 = RandomMatrix(4, 4, 10);
  const tensor::Matrix grad_out = RandomMatrix(4, 4, 11);

  auto scalar = [&] {
    const tensor::Matrix out = att.Forward({&v0, &v1, &v2}, false);
    float acc = 0.0f;
    for (std::size_t i = 0; i < out.size(); ++i) {
      acc += out.data()[i] * grad_out.data()[i];
    }
    return acc;
  };

  att.reference().ZeroGrad();
  att.Forward({&v0, &v1, &v2}, true);
  att.Backward(grad_out, nullptr);
  const tensor::Matrix numeric = NumericalGradient(att.reference().value,
                                                   scalar);
  EXPECT_LT(GradientRelativeError(att.reference().grad, numeric), 0.03f);
}

TEST(AttentionTest, ViewGradientCheck) {
  tensor::Rng rng(12);
  VectorAttention att(2, 3, rng);
  tensor::Matrix v0 = RandomMatrix(3, 3, 13);
  const tensor::Matrix v1 = RandomMatrix(3, 3, 14);
  const tensor::Matrix grad_out = RandomMatrix(3, 3, 15);

  auto scalar = [&] {
    const tensor::Matrix out = att.Forward({&v0, &v1}, false);
    float acc = 0.0f;
    for (std::size_t i = 0; i < out.size(); ++i) {
      acc += out.data()[i] * grad_out.data()[i];
    }
    return acc;
  };

  att.Forward({&v0, &v1}, true);
  std::vector<tensor::Matrix> grad_views;
  att.Backward(grad_out, &grad_views);
  ASSERT_EQ(grad_views.size(), 2u);
  const tensor::Matrix numeric = NumericalGradient(v0, scalar);
  EXPECT_LT(GradientRelativeError(grad_views[0], numeric), 0.03f);
}

TEST(AttentionTest, CollectParameters) {
  tensor::Rng rng(16);
  VectorAttention att(4, 8, rng);
  std::vector<Parameter*> params;
  att.CollectParameters(params);
  ASSERT_EQ(params.size(), 1u);
  EXPECT_EQ(params[0]->value.rows(), 4u);
  EXPECT_EQ(params[0]->value.cols(), 8u);
}

TEST(AttentionTest, SingleViewIsIdentity) {
  // With one view the softmax over views is trivially 1, so the attention
  // must pass the view through unchanged regardless of the reference.
  tensor::Rng rng(20);
  VectorAttention att(1, 5, rng);
  const tensor::Matrix v = RandomMatrix(6, 5, 21);
  tensor::Matrix w;
  const tensor::Matrix out = att.Forward({&v}, false, &w);
  nai::testing::ExpectMatrixNear(out, v, 1e-6f);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(w.at(i, 0), 1.0f);
  }
}

}  // namespace
}  // namespace nai::nn
