#include "src/nn/mlp.h"

#include "gtest/gtest.h"
#include "src/nn/adam.h"
#include "src/nn/loss.h"
#include "tests/test_util.h"

namespace nai::nn {
namespace {

using nai::testing::GradientRelativeError;
using nai::testing::NumericalGradient;
using nai::testing::RandomMatrix;

TEST(MlpTest, NoHiddenIsLinear) {
  tensor::Rng rng(1);
  Mlp mlp(4, {}, 3, 0.0f, rng);
  EXPECT_EQ(mlp.num_layers(), 1u);
  EXPECT_EQ(mlp.in_dim(), 4u);
  EXPECT_EQ(mlp.out_dim(), 3u);
}

TEST(MlpTest, HiddenLayersShape) {
  tensor::Rng rng(2);
  Mlp mlp(8, {16, 12}, 5, 0.0f, rng);
  EXPECT_EQ(mlp.num_layers(), 3u);
  const tensor::Matrix y = mlp.Forward(RandomMatrix(6, 8, 3), false);
  EXPECT_EQ(y.rows(), 6u);
  EXPECT_EQ(y.cols(), 5u);
}

TEST(MlpTest, GradientCheckDeep) {
  tensor::Rng rng(3);
  Mlp mlp(4, {6}, 3, 0.0f, rng);
  const tensor::Matrix x = RandomMatrix(5, 4, 21);
  const std::vector<std::int32_t> labels = {0, 1, 2, 0, 1};

  auto loss_fn = [&] {
    return SoftmaxCrossEntropy(mlp.Forward(x, false), labels).loss;
  };

  std::vector<Parameter*> params;
  mlp.CollectParameters(params);
  for (auto* p : params) p->ZeroGrad();
  const tensor::Matrix logits = mlp.Forward(x, true);
  mlp.Backward(SoftmaxCrossEntropy(logits, labels).grad_logits);

  for (auto* p : params) {
    const tensor::Matrix num = NumericalGradient(p->value, loss_fn);
    EXPECT_LT(GradientRelativeError(p->grad, num), 0.03f);
  }
}

TEST(MlpTest, InputGradientCheck) {
  tensor::Rng rng(4);
  Mlp mlp(3, {5}, 2, 0.0f, rng);
  tensor::Matrix x = RandomMatrix(4, 3, 22);
  const std::vector<std::int32_t> labels = {0, 1, 1, 0};

  auto loss_fn = [&] {
    return SoftmaxCrossEntropy(mlp.Forward(x, false), labels).loss;
  };
  std::vector<Parameter*> params;
  mlp.CollectParameters(params);
  for (auto* p : params) p->ZeroGrad();
  const tensor::Matrix logits = mlp.Forward(x, true);
  const tensor::Matrix grad_x =
      mlp.Backward(SoftmaxCrossEntropy(logits, labels).grad_logits);
  const tensor::Matrix num = NumericalGradient(x, loss_fn);
  EXPECT_LT(GradientRelativeError(grad_x, num), 0.03f);
}

TEST(MlpTest, TrainsToFitSmallDataset) {
  // A 2-layer MLP must drive training loss near zero on a tiny separable set.
  tensor::Rng rng(5);
  Mlp mlp(2, {16}, 2, 0.0f, rng);
  tensor::Matrix x{{1.0f, 0.0f}, {0.9f, 0.1f}, {0.0f, 1.0f}, {0.1f, 0.9f}};
  const std::vector<std::int32_t> labels = {0, 0, 1, 1};

  Adam adam({.learning_rate = 0.05f});
  std::vector<Parameter*> params;
  mlp.CollectParameters(params);
  adam.Register(params);

  float loss = 0.0f;
  for (int epoch = 0; epoch < 200; ++epoch) {
    adam.ZeroGrad();
    const tensor::Matrix logits = mlp.Forward(x, true);
    const LossResult r = SoftmaxCrossEntropy(logits, labels);
    loss = r.loss;
    mlp.Backward(r.grad_logits);
    adam.Step();
  }
  EXPECT_LT(loss, 0.05f);
  EXPECT_FLOAT_EQ(Accuracy(mlp.Forward(x, false), labels), 1.0f);
}

TEST(MlpTest, DropoutOnlyInTrainMode) {
  tensor::Rng rng(6);
  Mlp mlp(4, {32}, 2, 0.5f, rng);
  const tensor::Matrix x = RandomMatrix(3, 4, 30);
  const tensor::Matrix a = mlp.Forward(x, false);
  const tensor::Matrix b = mlp.Forward(x, false);
  // Eval mode is deterministic.
  EXPECT_EQ(a.CountDifferences(b, 0.0f), 0u);
  // Train mode with dropout produces different activations across calls.
  tensor::Rng drop_rng(7);
  const tensor::Matrix c = mlp.Forward(x, true, &drop_rng);
  const tensor::Matrix d = mlp.Forward(x, true, &drop_rng);
  EXPECT_GT(c.CountDifferences(d, 1e-6f), 0u);
}

TEST(MlpTest, ForwardMacsAndParamCount) {
  tensor::Rng rng(8);
  Mlp mlp(10, {20}, 5, 0.0f, rng);
  EXPECT_EQ(mlp.ForwardMacs(3), 3 * (10 * 20 + 20 * 5));
  EXPECT_EQ(mlp.NumParameters(), 10 * 20 + 20 + 20 * 5 + 5);
}

TEST(MlpTest, CopyParametersFrom) {
  tensor::Rng rng(9);
  Mlp a(4, {8}, 2, 0.0f, rng);
  Mlp b(4, {8}, 2, 0.0f, rng);
  const tensor::Matrix x = RandomMatrix(3, 4, 31);
  EXPECT_GT(a.Forward(x, false).CountDifferences(b.Forward(x, false), 1e-6f),
            0u);
  b.CopyParametersFrom(a);
  EXPECT_EQ(a.Forward(x, false).CountDifferences(b.Forward(x, false), 0.0f),
            0u);
}

TEST(MlpTest, SameSeedSameInitialization) {
  tensor::Rng rng_a(77);
  tensor::Rng rng_b(77);
  Mlp a(5, {12}, 3, 0.0f, rng_a);
  Mlp b(5, {12}, 3, 0.0f, rng_b);
  const tensor::Matrix x = RandomMatrix(4, 5, 32);
  EXPECT_EQ(a.Forward(x, false).CountDifferences(b.Forward(x, false), 0.0f),
            0u);
}

TEST(MlpTest, LayerAccessorsConsistent) {
  tensor::Rng rng(78);
  Mlp mlp(7, {9, 11}, 2, 0.0f, rng);
  ASSERT_EQ(mlp.num_layers(), 3u);
  EXPECT_EQ(mlp.layer(0).in_dim(), 7u);
  EXPECT_EQ(mlp.layer(0).out_dim(), 9u);
  EXPECT_EQ(mlp.layer(1).in_dim(), 9u);
  EXPECT_EQ(mlp.layer(1).out_dim(), 11u);
  EXPECT_EQ(mlp.layer(2).in_dim(), 11u);
  EXPECT_EQ(mlp.layer(2).out_dim(), 2u);
}

}  // namespace
}  // namespace nai::nn
