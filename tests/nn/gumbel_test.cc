#include "src/nn/gumbel.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace nai::nn {
namespace {

using nai::testing::GradientRelativeError;
using nai::testing::NumericalGradient;
using nai::testing::RandomMatrix;

TEST(GumbelTest, HardIsOneHot) {
  tensor::Rng rng(1);
  const tensor::Matrix logits = RandomMatrix(10, 4, 2);
  const GumbelSample s = GumbelSoftmax(logits, 1.0f, rng);
  for (std::size_t i = 0; i < 10; ++i) {
    float sum = 0.0f;
    int ones = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      sum += s.hard.at(i, j);
      if (s.hard.at(i, j) == 1.0f) ++ones;
    }
    EXPECT_FLOAT_EQ(sum, 1.0f);
    EXPECT_EQ(ones, 1);
  }
}

TEST(GumbelTest, SoftIsDistribution) {
  tensor::Rng rng(3);
  const tensor::Matrix logits = RandomMatrix(8, 3, 4);
  const GumbelSample s = GumbelSoftmax(logits, 0.7f, rng);
  for (std::size_t i = 0; i < 8; ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_GE(s.soft.at(i, j), 0.0f);
      sum += s.soft.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(GumbelTest, HardMatchesSoftArgmax) {
  tensor::Rng rng(5);
  const tensor::Matrix logits = RandomMatrix(20, 5, 6);
  const GumbelSample s = GumbelSoftmax(logits, 1.0f, rng);
  const auto soft_arg = tensor::ArgmaxRows(s.soft);
  const auto hard_arg = tensor::ArgmaxRows(s.hard);
  EXPECT_EQ(soft_arg, hard_arg);
}

TEST(GumbelTest, DeterministicModeIgnoresNoise) {
  tensor::Rng rng_a(7), rng_b(999);
  const tensor::Matrix logits = RandomMatrix(5, 3, 8);
  const GumbelSample a = GumbelSoftmax(logits, 1.0f, rng_a, true);
  const GumbelSample b = GumbelSoftmax(logits, 1.0f, rng_b, true);
  EXPECT_EQ(a.soft.CountDifferences(b.soft, 0.0f), 0u);
  // Deterministic soft equals plain softmax.
  nai::testing::ExpectMatrixNear(a.soft, tensor::SoftmaxRows(logits, 1.0f),
                                 1e-6f);
}

TEST(GumbelTest, SamplingFollowsLogits) {
  // With logits strongly favoring column 0, most hard samples pick it.
  tensor::Matrix logits(200, 2);
  for (std::size_t i = 0; i < 200; ++i) logits.at(i, 0) = 4.0f;
  tensor::Rng rng(9);
  const GumbelSample s = GumbelSoftmax(logits, 1.0f, rng);
  int picked = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    if (s.hard.at(i, 0) == 1.0f) ++picked;
  }
  EXPECT_GT(picked, 170);  // P(pick 0) = sigmoid(4) ~ 0.982
}

TEST(GumbelTest, LowTemperatureSharpens) {
  tensor::Rng rng_a(11), rng_b(11);
  const tensor::Matrix logits = RandomMatrix(10, 4, 12);
  const GumbelSample hot = GumbelSoftmax(logits, 5.0f, rng_a);
  const GumbelSample cold = GumbelSoftmax(logits, 0.1f, rng_b);
  // Max prob of the cold sample exceeds the hot one on average.
  float hot_max = 0.0f, cold_max = 0.0f;
  for (std::size_t i = 0; i < 10; ++i) {
    float hm = 0.0f, cm = 0.0f;
    for (std::size_t j = 0; j < 4; ++j) {
      hm = std::max(hm, hot.soft.at(i, j));
      cm = std::max(cm, cold.soft.at(i, j));
    }
    hot_max += hm;
    cold_max += cm;
  }
  EXPECT_GT(cold_max, hot_max);
}

TEST(GumbelTest, BackwardGradientCheck) {
  // Verify GumbelSoftmaxBackward against numerical differentiation of the
  // deterministic relaxation (noise off so the function is differentiable
  // w.r.t. the logits).
  tensor::Matrix logits = RandomMatrix(3, 4, 13);
  const float tau = 0.8f;
  const tensor::Matrix grad_soft = RandomMatrix(3, 4, 14);

  auto scalar = [&] {
    tensor::Rng rng(0);
    const GumbelSample s = GumbelSoftmax(logits, tau, rng, true);
    float acc = 0.0f;
    for (std::size_t i = 0; i < s.soft.size(); ++i) {
      acc += s.soft.data()[i] * grad_soft.data()[i];
    }
    return acc;
  };

  tensor::Rng rng(0);
  const GumbelSample s = GumbelSoftmax(logits, tau, rng, true);
  const tensor::Matrix analytic = GumbelSoftmaxBackward(s.soft, grad_soft, tau);
  const tensor::Matrix numeric = NumericalGradient(logits, scalar);
  EXPECT_LT(GradientRelativeError(analytic, numeric), 0.03f);
}

TEST(GumbelTest, HighTemperatureFlattensTowardUniform) {
  // As tau -> infinity the relaxed sample approaches the uniform
  // distribution no matter how peaked the logits are.
  tensor::Rng rng(40);
  tensor::Matrix logits(1, 4);
  logits.at(0, 0) = 10.0f;  // strongly favors class 0
  const GumbelSample hot = GumbelSoftmax(logits, 1000.0f, rng, true);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(hot.soft.at(0, j), 0.25f, 0.01f);
  }
}

}  // namespace
}  // namespace nai::nn
