#ifndef NAI_TESTS_TEST_UTIL_H_
#define NAI_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "src/tensor/matrix.h"
#include "src/tensor/random.h"

namespace nai::testing {

/// Asserts two matrices are elementwise close.
inline void ExpectMatrixNear(const tensor::Matrix& a, const tensor::Matrix& b,
                             float tol) {
  ASSERT_EQ(a.rows(), b.rows()) << a.ShapeString() << " vs " << b.ShapeString();
  ASSERT_EQ(a.cols(), b.cols()) << a.ShapeString() << " vs " << b.ShapeString();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a.at(i, j), b.at(i, j), tol)
          << "mismatch at (" << i << ", " << j << ")";
    }
  }
}

/// Central-difference numerical gradient of a scalar function w.r.t. one
/// parameter matrix. `loss_fn` must be deterministic.
inline tensor::Matrix NumericalGradient(
    tensor::Matrix& param, const std::function<float()>& loss_fn,
    float eps = 1e-3f) {
  tensor::Matrix grad(param.rows(), param.cols());
  for (std::size_t i = 0; i < param.size(); ++i) {
    const float saved = param.data()[i];
    param.data()[i] = saved + eps;
    const float up = loss_fn();
    param.data()[i] = saved - eps;
    const float down = loss_fn();
    param.data()[i] = saved;
    grad.data()[i] = (up - down) / (2.0f * eps);
  }
  return grad;
}

/// Relative error between analytic and numerical gradients, using the
/// standard max(|a|,|n|) denominator with an absolute floor.
inline float GradientRelativeError(const tensor::Matrix& analytic,
                                   const tensor::Matrix& numerical) {
  float worst = 0.0f;
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    const float a = analytic.data()[i];
    const float n = numerical.data()[i];
    const float denom = std::max({std::fabs(a), std::fabs(n), 1e-3f});
    worst = std::max(worst, std::fabs(a - n) / denom);
  }
  return worst;
}

/// A fixed-seed random matrix.
inline tensor::Matrix RandomMatrix(std::size_t rows, std::size_t cols,
                                   std::uint64_t seed, float stddev = 1.0f) {
  tensor::Matrix m(rows, cols);
  tensor::Rng rng(seed);
  tensor::FillGaussian(m, stddev, rng);
  return m;
}

}  // namespace nai::testing

#endif  // NAI_TESTS_TEST_UTIL_H_
