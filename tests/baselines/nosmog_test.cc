#include "src/baselines/nosmog.h"

#include "gtest/gtest.h"
#include "src/graph/partition.h"
#include "tests/core/core_fixtures.h"

namespace nai::baselines {
namespace {

using nai::testing::MakeSmallWorld;

TEST(NosmogTest, TrainAndInferInductive) {
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 400);
  const graph::InductiveSplit split =
      graph::MakeInductiveSplit(w.data.graph, 0.7, 0.8, 0.1, 5);

  // Teacher logits on train-graph rows: reuse the transductive classifier
  // restricted to train nodes (adequate as a distillation signal in tests).
  const tensor::Matrix teacher_all = w.classifiers->Logits(2, w.all_feats);
  const tensor::Matrix teacher = teacher_all.GatherRows(split.train_nodes);
  const tensor::Matrix train_feats =
      w.data.features.GatherRows(split.train_nodes);
  std::vector<std::int32_t> train_labels;
  for (const auto g : split.train_nodes) {
    train_labels.push_back(w.data.labels[g]);
  }

  NosmogConfig cfg;
  cfg.hidden_dims = {32};
  cfg.epochs = 120;
  cfg.position_dim = 8;
  Nosmog nosmog(w.config.feature_dim, w.config.num_classes, cfg);
  nosmog.Train(split.train_graph, train_feats, teacher, train_labels,
               split.labeled_local);
  EXPECT_EQ(nosmog.train_positions().rows(), split.train_nodes.size());
  EXPECT_EQ(nosmog.train_positions().cols(), 8u);

  const NosmogResult r = nosmog.Infer(w.data.graph, w.data.features,
                                      split.train_nodes, split.test_nodes);
  EXPECT_EQ(r.predictions.size(), split.test_nodes.size());
  // Position aggregation for unseen nodes is real FP work.
  EXPECT_GT(r.cost.fp_macs, 0);
  EXPECT_GT(r.cost.total_macs, r.cost.fp_macs);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < split.test_nodes.size(); ++i) {
    if (r.predictions[i] == w.data.labels[split.test_nodes[i]]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / split.test_nodes.size(), 0.4);
}

TEST(NosmogTest, TrainNodeQueriesReuseStoredPositions) {
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 200);
  const graph::InductiveSplit split =
      graph::MakeInductiveSplit(w.data.graph, 0.8, 0.8, 0.1, 7);
  const tensor::Matrix teacher =
      w.classifiers->Logits(2, w.all_feats).GatherRows(split.train_nodes);
  const tensor::Matrix train_feats =
      w.data.features.GatherRows(split.train_nodes);
  std::vector<std::int32_t> train_labels;
  for (const auto g : split.train_nodes) {
    train_labels.push_back(w.data.labels[g]);
  }
  NosmogConfig cfg;
  cfg.hidden_dims = {16};
  cfg.epochs = 10;
  Nosmog nosmog(w.config.feature_dim, w.config.num_classes, cfg);
  nosmog.Train(split.train_graph, train_feats, teacher, train_labels,
               split.labeled_local);

  // Querying only train nodes costs no aggregation MACs.
  const NosmogResult r = nosmog.Infer(w.data.graph, w.data.features,
                                      split.train_nodes, split.train_nodes);
  EXPECT_EQ(r.cost.fp_macs, 0);
}

TEST(NosmogTest, SameSeedIsDeterministic) {
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 200);
  const graph::InductiveSplit split =
      graph::MakeInductiveSplit(w.data.graph, 0.8, 0.8, 0.1, 7);
  const tensor::Matrix teacher =
      w.classifiers->Logits(2, w.all_feats).GatherRows(split.train_nodes);
  const tensor::Matrix train_feats =
      w.data.features.GatherRows(split.train_nodes);
  std::vector<std::int32_t> train_labels;
  for (const auto g : split.train_nodes) {
    train_labels.push_back(w.data.labels[g]);
  }
  auto train_once = [&] {
    NosmogConfig cfg;
    cfg.hidden_dims = {16};
    cfg.epochs = 5;
    cfg.position_dim = 8;
    cfg.seed = 31;
    Nosmog nosmog(w.config.feature_dim, w.config.num_classes, cfg);
    nosmog.Train(split.train_graph, train_feats, teacher, train_labels,
                 split.labeled_local);
    return nosmog
        .Infer(w.data.graph, w.data.features, split.train_nodes,
               split.test_nodes)
        .predictions;
  };
  EXPECT_EQ(train_once(), train_once());
}

}  // namespace
}  // namespace nai::baselines
