#include "src/baselines/glnn.h"

#include "gtest/gtest.h"
#include "src/nn/loss.h"
#include "tests/core/core_fixtures.h"

namespace nai::baselines {
namespace {

using nai::testing::MakeSmallWorld;

TEST(GlnnTest, NoPropagationCost) {
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 200);
  GlnnConfig cfg;
  cfg.hidden_dims = {32};
  cfg.epochs = 10;
  Glnn glnn(w.config.feature_dim, w.config.num_classes, cfg);
  glnn.Train(w.data.features, w.classifiers->Logits(2, w.all_feats),
             w.data.labels, w.all_nodes);
  const GlnnResult r = glnn.Infer(w.data.features);
  EXPECT_EQ(r.cost.fp_macs, 0);
  EXPECT_EQ(r.cost.fp_time_ms, 0.0);
  EXPECT_GT(r.cost.total_macs, 0);
  EXPECT_EQ(r.predictions.size(), 200u);
}

TEST(GlnnTest, DistillationLearnsTeacherBehavior) {
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 400);
  GlnnConfig cfg;
  cfg.hidden_dims = {64};
  cfg.epochs = 200;
  cfg.learning_rate = 0.01f;
  cfg.lambda = 0.5f;
  Glnn glnn(w.config.feature_dim, w.config.num_classes, cfg);
  const tensor::Matrix teacher = w.classifiers->Logits(2, w.all_feats);
  glnn.Train(w.data.features, teacher, w.data.labels, w.all_nodes);

  const GlnnResult r = glnn.Infer(w.data.features);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < r.predictions.size(); ++i) {
    if (r.predictions[i] == w.data.labels[i]) ++correct;
  }
  // Trains on these exact nodes: must beat 4-class chance clearly.
  EXPECT_GT(static_cast<double>(correct) / r.predictions.size(), 0.5);
}

TEST(GlnnTest, MacsMatchMlpSize) {
  GlnnConfig cfg;
  cfg.hidden_dims = {50};
  Glnn glnn(10, 5, cfg);
  tensor::Matrix x(8, 10);
  const GlnnResult r = glnn.Infer(x);
  EXPECT_EQ(r.cost.total_macs, 8 * (10 * 50 + 50 * 5));
}

TEST(GlnnTest, SameSeedIsDeterministic) {
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 150);
  const tensor::Matrix teacher = w.classifiers->Logits(2, w.all_feats);
  auto train_once = [&] {
    GlnnConfig cfg;
    cfg.hidden_dims = {16};
    cfg.epochs = 5;
    cfg.seed = 77;
    Glnn glnn(w.config.feature_dim, w.config.num_classes, cfg);
    glnn.Train(w.data.features, teacher, w.data.labels, w.all_nodes);
    return glnn.Infer(w.data.features).predictions;
  };
  EXPECT_EQ(train_once(), train_once());
}

TEST(GlnnTest, EmptyFeatureBatch) {
  GlnnConfig cfg;
  cfg.hidden_dims = {8};
  Glnn glnn(6, 3, cfg);
  tensor::Matrix empty(0, 6);
  const GlnnResult r = glnn.Infer(empty);
  EXPECT_TRUE(r.predictions.empty());
  EXPECT_EQ(r.cost.total_macs, 0);
}

}  // namespace
}  // namespace nai::baselines
