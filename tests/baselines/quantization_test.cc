#include "src/baselines/quantization.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/tensor/ops.h"
#include "tests/core/core_fixtures.h"
#include "tests/test_util.h"

namespace nai::baselines {
namespace {

using nai::testing::MakeSmallWorld;
using nai::testing::RandomMatrix;

TEST(QuantizedLinearTest, ApproximatesFloatLayer) {
  tensor::Rng rng(1);
  nn::Linear layer(16, 8, rng);
  const QuantizedLinear qlayer(layer);
  const tensor::Matrix x = RandomMatrix(10, 16, 2);
  const tensor::Matrix fy = layer.Forward(x, false);
  const tensor::Matrix qy = qlayer.Forward(x);
  ASSERT_EQ(fy.rows(), qy.rows());
  // INT8 symmetric quantization: relative error a few percent.
  float max_err = 0.0f, max_abs = 0.0f;
  for (std::size_t i = 0; i < fy.size(); ++i) {
    max_err = std::max(max_err, std::fabs(fy.data()[i] - qy.data()[i]));
    max_abs = std::max(max_abs, std::fabs(fy.data()[i]));
  }
  EXPECT_LT(max_err, 0.05f * max_abs + 0.05f);
}

TEST(QuantizedLinearTest, MacsAndDims) {
  tensor::Rng rng(3);
  nn::Linear layer(5, 7, rng);
  const QuantizedLinear q(layer);
  EXPECT_EQ(q.in_dim(), 5u);
  EXPECT_EQ(q.out_dim(), 7u);
  EXPECT_EQ(q.ForwardMacs(2), 2 * 5 * 7);
  EXPECT_GT(q.weight_scale(), 0.0f);
}

TEST(QuantizedMlpTest, AgreesWithFloatArgmaxMostly) {
  tensor::Rng rng(4);
  nn::Mlp mlp(12, {24}, 5, 0.0f, rng);
  const QuantizedMlp q(mlp);
  const tensor::Matrix x = RandomMatrix(200, 12, 5);
  const auto fpred = tensor::ArgmaxRows(mlp.Forward(x, false));
  const auto qpred = tensor::ArgmaxRows(q.Forward(x));
  std::size_t agree = 0;
  for (std::size_t i = 0; i < fpred.size(); ++i) {
    if (fpred[i] == qpred[i]) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / fpred.size(), 0.95);
}

TEST(QuantizedInferTest, MatchesVanillaAccuracyClosely) {
  auto w = MakeSmallWorld(3, models::ModelKind::kSgc, 300);
  const QuantizedMlp qmlp(w.classifiers->head(3).classifier_mlp());
  const QuantizedInferResult r = QuantizedScalableInfer(
      w.data.graph, w.data.features, w.config.gamma, 3,
      w.classifiers->head(3), qmlp, w.all_nodes, 100);
  ASSERT_EQ(r.predictions.size(), 300u);

  // Compare against the float transductive predictions.
  const tensor::Matrix logits = w.classifiers->Logits(3, w.all_feats);
  const auto fpred = tensor::ArgmaxRows(logits);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    if (fpred[i] == r.predictions[i]) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / 300.0, 0.9);
  // Quantization does not reduce propagation work.
  EXPECT_GT(r.cost.fp_macs, 0);
}

TEST(QuantizedMlpTest, ForwardMacsSumOverLayers) {
  tensor::Rng rng(9);
  nn::Mlp mlp(10, {20, 30}, 4, 0.0f, rng);
  const QuantizedMlp q(mlp);
  // 10->20, 20->30, 30->4, per row.
  EXPECT_EQ(q.ForwardMacs(3), 3 * (10 * 20 + 20 * 30 + 30 * 4));
}

TEST(QuantizedLinearTest, ZeroWeightsStayZero) {
  // An all-zero layer has absmax 0; quantization must not divide by zero
  // and the output must be exactly the (float) bias.
  tensor::Rng rng(2);
  nn::Linear layer(4, 3, rng);
  layer.weight().value.Fill(0.0f);
  const QuantizedLinear q(layer);
  const tensor::Matrix x = RandomMatrix(6, 4, 11);
  const tensor::Matrix y = q.Forward(x);
  for (std::size_t i = 0; i < y.rows(); ++i) {
    for (std::size_t j = 0; j < y.cols(); ++j) {
      EXPECT_FLOAT_EQ(y.at(i, j), layer.bias().value.at(0, j));
    }
  }
}

}  // namespace
}  // namespace nai::baselines
