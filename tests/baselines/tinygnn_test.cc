#include "src/baselines/tinygnn.h"

#include "gtest/gtest.h"
#include "tests/core/core_fixtures.h"

namespace nai::baselines {
namespace {

using nai::testing::MakeSmallWorld;

TEST(TinyGnnTest, TrainAndInfer) {
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 300);
  TinyGnnConfig cfg;
  cfg.attention_dim = 8;
  cfg.hidden_dims = {16};
  cfg.epochs = 60;
  cfg.learning_rate = 0.01f;
  TinyGnn tiny(w.config.feature_dim, w.config.num_classes, cfg);
  tiny.Train(w.data.graph, w.data.features,
             w.classifiers->Logits(2, w.all_feats), w.data.labels,
             w.all_nodes);

  const TinyGnnResult r =
      tiny.Infer(w.data.graph, w.data.features, w.all_nodes);
  EXPECT_EQ(r.predictions.size(), 300u);
  EXPECT_GT(r.cost.fp_macs, 0);
  EXPECT_GT(r.cost.total_macs, r.cost.fp_macs);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    if (r.predictions[i] == w.data.labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / 300.0, 0.5);
}

TEST(TinyGnnTest, AttentionMacsScaleWithFeatureDim) {
  // The peer-aware module projects every supporting node three times:
  // doubling the attention dim should roughly double the FP MACs.
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 200);
  auto run = [&](std::size_t d) {
    TinyGnnConfig cfg;
    cfg.attention_dim = d;
    cfg.hidden_dims = {8};
    cfg.epochs = 1;
    TinyGnn tiny(w.config.feature_dim, w.config.num_classes, cfg);
    tiny.Train(w.data.graph, w.data.features,
               w.classifiers->Logits(2, w.all_feats), w.data.labels,
               w.all_nodes);
    return tiny.Infer(w.data.graph, w.data.features, w.all_nodes).cost
        .fp_macs;
  };
  const std::int64_t small = run(4);
  const std::int64_t large = run(8);
  EXPECT_GT(large, small * 3 / 2);
}

TEST(TinyGnnTest, SubsetQueryTouchesOnlyOneHop) {
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 300);
  TinyGnnConfig cfg;
  cfg.attention_dim = 4;
  cfg.hidden_dims = {8};
  cfg.epochs = 1;
  TinyGnn tiny(w.config.feature_dim, w.config.num_classes, cfg);
  tiny.Train(w.data.graph, w.data.features,
             w.classifiers->Logits(2, w.all_feats), w.data.labels,
             w.all_nodes);
  const TinyGnnResult one = tiny.Infer(w.data.graph, w.data.features, {0});
  const TinyGnnResult all =
      tiny.Infer(w.data.graph, w.data.features, w.all_nodes);
  EXPECT_EQ(one.predictions.size(), 1u);
  EXPECT_LT(one.cost.fp_macs, all.cost.fp_macs / 10);
  // Consistency: the same node gets the same prediction either way.
  EXPECT_EQ(one.predictions[0], all.predictions[0]);
}

TEST(TinyGnnTest, EmptyQueryReturnsEmpty) {
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 100);
  TinyGnnConfig cfg;
  cfg.attention_dim = 4;
  cfg.hidden_dims = {8};
  cfg.epochs = 1;
  TinyGnn tiny(w.config.feature_dim, w.config.num_classes, cfg);
  tiny.Train(w.data.graph, w.data.features,
             w.classifiers->Logits(2, w.all_feats), w.data.labels,
             w.all_nodes);
  const TinyGnnResult r = tiny.Infer(w.data.graph, w.data.features, {});
  EXPECT_TRUE(r.predictions.empty());
  EXPECT_EQ(r.cost.fp_macs, 0);
}

}  // namespace
}  // namespace nai::baselines
