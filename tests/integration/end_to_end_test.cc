// Integration tests: the full harness path on a shrunken dataset — train
// the pipeline (propagation + Inception Distillation + gates), deploy the
// engine over the full graph, and check the paper's headline claims hold
// qualitatively: NAI ~matches vanilla accuracy with far less propagation
// work, and beats the topology-blind MLP baselines on unseen nodes.

#include "gtest/gtest.h"
#include "src/eval/harness.h"

namespace nai::eval {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec = ArxivSim(0.08);  // ~1200 nodes
    spec.gen.num_classes = 8;
    ds_ = new PreparedDataset(Prepare(spec));

    PipelineConfig cfg;
    cfg.depth = 4;
    cfg.distill.base_epochs = 80;
    cfg.distill.single_epochs = 60;
    cfg.distill.multi_epochs = 40;
    cfg.gate.epochs = 40;
    pipeline_ = new TrainedPipeline(TrainPipeline(*ds_, cfg));
    engine_ = MakeEngine(*pipeline_, *ds_).release();
  }

  static void TearDownTestSuite() {
    delete engine_;
    delete pipeline_;
    delete ds_;
  }

  static PreparedDataset* ds_;
  static TrainedPipeline* pipeline_;
  static core::NaiEngine* engine_;
};

PreparedDataset* EndToEndTest::ds_ = nullptr;
TrainedPipeline* EndToEndTest::pipeline_ = nullptr;
core::NaiEngine* EndToEndTest::engine_ = nullptr;

TEST_F(EndToEndTest, VanillaBeatsChanceOnUnseenNodes) {
  const MethodResult vanilla =
      RunVanilla(*engine_, *ds_, ds_->split.test_nodes, 200, "SGC");
  EXPECT_GT(vanilla.row.accuracy, 0.4f);  // 8 classes -> chance 0.125
}

TEST_F(EndToEndTest, NapdTracksVanillaAccuracyWithLessWork) {
  const MethodResult vanilla =
      RunVanilla(*engine_, *ds_, ds_->split.test_nodes, 200, "SGC");
  const auto settings =
      MakeDefaultSettings(*pipeline_, *ds_, core::NapKind::kDistance);
  core::InferenceConfig cfg = settings[2].config;  // accuracy-first setting
  cfg.batch_size = 200;
  const MethodResult nai =
      RunNai(*engine_, *ds_, ds_->split.test_nodes, cfg, "NAId");
  EXPECT_GT(nai.row.accuracy, vanilla.row.accuracy - 0.05f);
  EXPECT_LT(nai.stats.propagation_macs,
            vanilla.stats.propagation_macs);
}

TEST_F(EndToEndTest, GateInferenceWorks) {
  ASSERT_NE(pipeline_->gates, nullptr);
  const auto settings =
      MakeDefaultSettings(*pipeline_, *ds_, core::NapKind::kGate);
  // The balanced setting: its window [t_min, t_max) actually contains gate
  // decision hops (the speed-first gate setting pins t_min == t_max == 2).
  core::InferenceConfig cfg = settings[1].config;
  cfg.batch_size = 200;
  const MethodResult nai =
      RunNai(*engine_, *ds_, ds_->split.test_nodes, cfg, "NAIg");
  EXPECT_GT(nai.row.accuracy, 0.3f);
  EXPECT_GT(nai.stats.nap_macs, 0);
}

TEST_F(EndToEndTest, BaselinesRun) {
  const auto glnn = RunGlnn(*pipeline_, *ds_, ds_->split.test_nodes, 4);
  EXPECT_GT(glnn.row.accuracy, 0.15f);
  EXPECT_EQ(glnn.row.fp_mmacs_per_node, 0.0);

  const auto nosmog = RunNosmog(*pipeline_, *ds_, ds_->split.test_nodes);
  EXPECT_GT(nosmog.row.accuracy, 0.15f);

  const auto tiny = RunTinyGnn(*pipeline_, *ds_, ds_->split.test_nodes);
  EXPECT_GT(tiny.row.accuracy, 0.15f);

  const auto quant =
      RunQuantized(*pipeline_, *ds_, ds_->split.test_nodes, 200);
  EXPECT_GT(quant.row.accuracy, 0.3f);
}

TEST_F(EndToEndTest, QuantizationTracksVanillaAccuracy) {
  const MethodResult vanilla =
      RunVanilla(*engine_, *ds_, ds_->split.test_nodes, 200, "SGC");
  const auto quant =
      RunQuantized(*pipeline_, *ds_, ds_->split.test_nodes, 200);
  EXPECT_NEAR(quant.row.accuracy, vanilla.row.accuracy, 0.03f);
}

TEST_F(EndToEndTest, SettingsTradeOffDepthForAccuracy) {
  const auto settings =
      MakeDefaultSettings(*pipeline_, *ds_, core::NapKind::kDistance);
  ASSERT_EQ(settings.size(), 3u);
  std::vector<MethodResult> results;
  for (const auto& s : settings) {
    core::InferenceConfig cfg = s.config;
    cfg.batch_size = 200;
    results.push_back(
        RunNai(*engine_, *ds_, ds_->split.test_nodes, cfg, s.name));
  }
  // Speed-first uses strictly less propagation than accuracy-first.
  EXPECT_LT(results[0].stats.propagation_macs,
            results[2].stats.propagation_macs);
  // Average exit depth is monotone across the settings.
  EXPECT_LE(results[0].stats.average_depth(),
            results[2].stats.average_depth());
}

TEST_F(EndToEndTest, ValidationSelectionWorkflow) {
  // The paper's deployment story: pick the setting by validation accuracy
  // under a latency budget. Just exercise the workflow.
  const auto settings =
      MakeDefaultSettings(*pipeline_, *ds_, core::NapKind::kDistance);
  float best_acc = 0.0f;
  for (const auto& s : settings) {
    core::InferenceConfig cfg = s.config;
    cfg.batch_size = 200;
    const MethodResult r =
        RunNai(*engine_, *ds_, ds_->split.val_nodes, cfg, s.name);
    best_acc = std::max(best_acc, r.row.accuracy);
  }
  EXPECT_GT(best_acc, 0.4f);
}

}  // namespace
}  // namespace nai::eval
