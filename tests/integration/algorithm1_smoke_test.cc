// Smoke test for the full Algorithm-1 pipeline on a small synthetic world:
// generate graph -> precompute (normalized adjacency, propagated stack,
// stationary state, trained classifier bank) -> NAPd online inference ->
// sanity-check the cost/behaviour counters. Fast enough for every CI run;
// the heavyweight accuracy checks live in end_to_end_test.cc.

#include <cstdint>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/classifier_stack.h"
#include "src/core/distillation.h"
#include "src/core/inference.h"
#include "src/core/stationary.h"
#include "src/graph/generators.h"
#include "src/graph/normalize.h"
#include "src/models/scalable_gnn.h"

namespace nai {
namespace {

constexpr std::int64_t kNumNodes = 200;
constexpr int kDepth = 3;

struct Pipeline {
  graph::SyntheticDataset data;
  std::unique_ptr<core::StationaryState> stationary;
  std::unique_ptr<core::ClassifierStack> classifiers;
  std::vector<std::int32_t> all_nodes;
};

Pipeline BuildPipeline() {
  Pipeline p;

  // Step 1: generate a degree-heterogeneous homophilous graph.
  graph::GeneratorConfig gcfg;
  gcfg.num_nodes = kNumNodes;
  gcfg.num_edges = kNumNodes * 5;
  gcfg.num_classes = 3;
  gcfg.feature_dim = 10;
  gcfg.homophily = 0.85f;
  gcfg.seed = 2024;
  p.data = graph::GenerateDataset(gcfg);

  // Step 2: offline precomputation — propagated feature stack X^(0..k),
  // stationary state X^(inf), and a trained per-depth classifier bank.
  models::ModelConfig mcfg;
  mcfg.kind = models::ModelKind::kSgc;
  mcfg.depth = kDepth;
  mcfg.gamma = 0.5f;
  mcfg.feature_dim = gcfg.feature_dim;
  mcfg.num_classes = gcfg.num_classes;
  mcfg.hidden_dims = {16};
  mcfg.dropout = 0.0f;

  const graph::Csr norm_adj =
      graph::NormalizedAdjacency(p.data.graph, mcfg.gamma);
  p.stationary = std::make_unique<core::StationaryState>(
      p.data.graph, p.data.features, mcfg.gamma);
  p.classifiers = std::make_unique<core::ClassifierStack>(mcfg, 11);

  for (std::int64_t i = 0; i < kNumNodes; ++i) {
    p.all_nodes.push_back(static_cast<std::int32_t>(i));
  }

  core::GatheredStack feats;
  feats.mats = models::PropagateStack(norm_adj, p.data.features, kDepth);
  core::DistillConfig dcfg;
  dcfg.base_epochs = 40;
  dcfg.enable_single = false;
  dcfg.enable_multi = false;
  core::InceptionDistillation distiller(*p.classifiers, dcfg);
  distiller.TrainAll(feats, p.data.labels, p.all_nodes);
  return p;
}

TEST(Algorithm1SmokeTest, NapdPipelineRunsAndStatsAreSane) {
  Pipeline p = BuildPipeline();

  // Step 3: NAPd online inference over every node.
  core::NaiEngine engine(p.data.graph, p.data.features, 0.5f, *p.classifiers,
                         p.stationary.get(), nullptr);
  core::InferenceConfig icfg;
  icfg.nap = core::NapKind::kDistance;
  icfg.relative_distance = true;
  icfg.threshold = 0.5f;
  icfg.t_min = 1;
  icfg.t_max = kDepth;
  icfg.batch_size = 64;
  const core::InferenceResult r = engine.Infer(p.all_nodes, icfg);

  // Step 4: stats sanity.
  ASSERT_EQ(r.predictions.size(), p.all_nodes.size());
  ASSERT_EQ(r.exit_depths.size(), p.all_nodes.size());
  EXPECT_EQ(r.stats.num_nodes, kNumNodes);
  EXPECT_GT(r.stats.propagation_macs, 0);
  EXPECT_GT(r.stats.classification_macs, 0);
  EXPECT_GT(r.stats.total_macs(), r.stats.propagation_macs);

  // Every node exits within [t_min, t_max] and gets a valid class.
  for (std::size_t i = 0; i < r.predictions.size(); ++i) {
    EXPECT_GE(r.exit_depths[i], icfg.t_min);
    EXPECT_LE(r.exit_depths[i], icfg.t_max);
    EXPECT_GE(r.predictions[i], 0);
    EXPECT_LT(r.predictions[i], p.data.num_classes);
  }

  // The per-depth exit histogram covers all queried nodes.
  ASSERT_EQ(r.stats.exits_at_depth.size(), static_cast<std::size_t>(kDepth));
  std::int64_t exited = 0;
  for (const std::int64_t count : r.stats.exits_at_depth) exited += count;
  EXPECT_EQ(exited, kNumNodes);

  const double avg_depth = r.stats.average_depth();
  EXPECT_GE(avg_depth, static_cast<double>(icfg.t_min));
  EXPECT_LE(avg_depth, static_cast<double>(icfg.t_max));
}

TEST(Algorithm1SmokeTest, NapdSavesWorkVersusFixedDepth) {
  Pipeline p = BuildPipeline();
  core::NaiEngine engine(p.data.graph, p.data.features, 0.5f, *p.classifiers,
                         p.stationary.get(), nullptr);

  core::InferenceConfig fixed;
  fixed.nap = core::NapKind::kNone;
  fixed.t_max = kDepth;
  const auto full = engine.Infer(p.all_nodes, fixed);

  core::InferenceConfig napd;
  napd.nap = core::NapKind::kDistance;
  napd.relative_distance = true;
  napd.threshold = 1.0f;  // aggressive early exit
  napd.t_max = kDepth;
  const auto adaptive = engine.Infer(p.all_nodes, napd);

  // With an aggressive threshold some nodes exit before t_max, so online
  // propagation work can only shrink.
  EXPECT_LE(adaptive.stats.propagation_macs, full.stats.propagation_macs);
  EXPECT_LE(adaptive.stats.average_depth(), full.stats.average_depth());
}

}  // namespace
}  // namespace nai
