#include "src/eval/mac_counter.h"

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/normalize.h"

namespace nai::eval {
namespace {

TEST(MacCounterTest, AverageDepth) {
  EXPECT_DOUBLE_EQ(AverageDepth({10, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(AverageDepth({0, 0, 10}), 3.0);
  EXPECT_DOUBLE_EQ(AverageDepth({5, 0, 5}), 2.0);
  EXPECT_DOUBLE_EQ(AverageDepth({}), 0.0);
  EXPECT_DOUBLE_EQ(AverageDepth({0, 0, 0}), 0.0);
}

TEST(MacCounterTest, FixedDepthPropagationMacs) {
  const graph::Graph g = graph::CycleGraph(20);
  const graph::Csr adj = graph::NormalizedAdjacency(g, 0.5f);
  graph::SupportSampler sampler(adj);
  const graph::BatchSupport support = sampler.Sample({0, 10}, 3);
  const std::int64_t f = 8;
  const std::int64_t macs = FixedDepthPropagationMacs(support, 3, f);
  // Manual: hop l computes prefix layer_counts[3-l] rows.
  std::int64_t expected = 0;
  for (int l = 1; l <= 3; ++l) {
    expected += support.sub_adj.row_ptr[support.layer_counts[3 - l]] * f;
  }
  EXPECT_EQ(macs, expected);
  EXPECT_GT(macs, 0);
}

TEST(MacCounterTest, ParamsFromStatsRoundTrip) {
  core::InferenceStats stats;
  stats.num_nodes = 100;
  stats.exits_at_depth = {50, 50};     // q = 1.5
  stats.propagation_macs = 1'500'000;  // = q * m * f with m=10000, f=100
  const core::ComplexityParams p = ParamsFromStats(stats, 100, 2, 2);
  EXPECT_EQ(p.n, 100);
  EXPECT_EQ(p.f, 100);
  EXPECT_EQ(p.p, 2);
  EXPECT_DOUBLE_EQ(p.q, 1.5);
  EXPECT_EQ(p.m, 10000);
}

}  // namespace
}  // namespace nai::eval
