#include "src/eval/mac_counter.h"

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/normalize.h"

namespace nai::eval {
namespace {

TEST(MacCounterTest, AverageDepth) {
  EXPECT_DOUBLE_EQ(AverageDepth({10, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(AverageDepth({0, 0, 10}), 3.0);
  EXPECT_DOUBLE_EQ(AverageDepth({5, 0, 5}), 2.0);
  EXPECT_DOUBLE_EQ(AverageDepth({}), 0.0);
  EXPECT_DOUBLE_EQ(AverageDepth({0, 0, 0}), 0.0);
}

TEST(MacCounterTest, FixedDepthPropagationMacs) {
  const graph::Graph g = graph::CycleGraph(20);
  const graph::Csr adj = graph::NormalizedAdjacency(g, 0.5f);
  graph::SupportSampler sampler(adj);
  const graph::BatchSupport support = sampler.Sample({0, 10}, 3);
  const std::int64_t f = 8;
  const std::int64_t macs = FixedDepthPropagationMacs(support, 3, f);
  // Manual: hop l computes prefix layer_counts[3-l] rows.
  std::int64_t expected = 0;
  for (int l = 1; l <= 3; ++l) {
    expected += support.sub_adj.row_ptr[support.layer_counts[3 - l]] * f;
  }
  EXPECT_EQ(macs, expected);
  EXPECT_GT(macs, 0);
}

TEST(MacCounterTest, ParamsFromStatsRoundTrip) {
  core::InferenceStats stats;
  stats.num_nodes = 100;
  stats.exits_at_depth = {50, 50};     // q = 1.5
  stats.propagation_macs = 1'500'000;  // = q * m * f with m=10000, f=100
  const core::ComplexityParams p = ParamsFromStats(stats, 100, 2, 2);
  EXPECT_EQ(p.n, 100);
  EXPECT_EQ(p.f, 100);
  EXPECT_EQ(p.p, 2);
  EXPECT_DOUBLE_EQ(p.q, 1.5);
  EXPECT_EQ(p.m, 10000);
}

TEST(MacCounterTest, AverageDepthWeighted) {
  // 1*1 + 3*2 + 6*3 over 10 nodes = 2.5.
  EXPECT_DOUBLE_EQ(AverageDepth({1, 3, 6}), 2.5);
}

TEST(MacCounterTest, PropagationMacsMonotoneInDepth) {
  const graph::Graph g = graph::GridGraph(6, 6);
  const graph::Csr adj = graph::NormalizedAdjacency(g, 0.5f);
  graph::SupportSampler sampler(adj);
  std::int64_t prev = 0;
  for (int depth = 1; depth <= 3; ++depth) {
    const graph::BatchSupport support = sampler.Sample({0, 35}, depth);
    const std::int64_t macs = FixedDepthPropagationMacs(support, depth, 4);
    EXPECT_GT(macs, prev) << "depth " << depth;
    prev = macs;
  }
}

TEST(MacCounterTest, PropagationMacsScaleLinearlyInFeatureDim) {
  const graph::Graph g = graph::CycleGraph(30);
  const graph::Csr adj = graph::NormalizedAdjacency(g, 0.5f);
  graph::SupportSampler sampler(adj);
  const graph::BatchSupport support = sampler.Sample({0, 15}, 2);
  const std::int64_t f8 = FixedDepthPropagationMacs(support, 2, 8);
  const std::int64_t f16 = FixedDepthPropagationMacs(support, 2, 16);
  EXPECT_EQ(f16, 2 * f8);
}

}  // namespace
}  // namespace nai::eval
