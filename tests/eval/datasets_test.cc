#include "src/eval/datasets.h"

#include <cstdlib>

#include "gtest/gtest.h"

namespace nai::eval {
namespace {

TEST(DatasetsTest, PresetsHaveExpectedShape) {
  const DatasetSpec flickr = FlickrSim(0.1);
  EXPECT_EQ(flickr.name, "flickr-sim");
  EXPECT_EQ(flickr.gen.num_classes, 7);
  EXPECT_EQ(flickr.default_depth, 7);

  const DatasetSpec arxiv = ArxivSim(0.1);
  EXPECT_EQ(arxiv.gen.num_classes, 20);
  EXPECT_EQ(arxiv.default_depth, 5);

  const DatasetSpec products = ProductsSim(0.1);
  EXPECT_EQ(products.gen.num_classes, 24);
  // Products is the inductive-heavy split: most nodes unseen.
  EXPECT_LT(products.train_fraction, 0.2);
}

TEST(DatasetsTest, ScaleMultipliesSizes) {
  const DatasetSpec big = ArxivSim(1.0);
  const DatasetSpec small = ArxivSim(0.1);
  EXPECT_NEAR(static_cast<double>(small.gen.num_nodes),
              0.1 * big.gen.num_nodes, 1.0);
  EXPECT_NEAR(static_cast<double>(small.gen.num_edges),
              0.1 * big.gen.num_edges, 1.0);
}

TEST(DatasetsTest, PrepareProducesConsistentSplit) {
  const PreparedDataset ds = Prepare(ArxivSim(0.05));
  EXPECT_EQ(ds.name, "arxiv-sim");
  EXPECT_EQ(ds.train_features.rows(), ds.split.train_nodes.size());
  EXPECT_EQ(ds.train_labels.size(), ds.split.train_nodes.size());
  for (std::size_t i = 0; i < ds.split.train_nodes.size(); ++i) {
    EXPECT_EQ(ds.train_labels[i], ds.data.labels[ds.split.train_nodes[i]]);
  }
  EXPECT_GT(ds.split.test_nodes.size(), 0u);
  EXPECT_GT(ds.split.labeled_nodes.size(), 0u);
}

TEST(DatasetsTest, EnvScaleDefaultAndOverride) {
  unsetenv("NAI_SCALE");
  EXPECT_DOUBLE_EQ(EnvScale(), 1.0);
  setenv("NAI_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(EnvScale(), 0.25);
  setenv("NAI_SCALE", "1000", 1);  // clamped
  EXPECT_DOUBLE_EQ(EnvScale(), 100.0);
  unsetenv("NAI_SCALE");
}

TEST(DatasetsTest, ProductsHasHeavierDegreeTail) {
  const PreparedDataset products = Prepare(ProductsSim(0.05));
  const PreparedDataset arxiv = Prepare(ArxivSim(0.05));
  const double products_avg =
      2.0 * products.data.graph.num_edges() / products.data.graph.num_nodes();
  const double arxiv_avg =
      2.0 * arxiv.data.graph.num_edges() / arxiv.data.graph.num_nodes();
  EXPECT_GT(products_avg, arxiv_avg);
}

TEST(DatasetsTest, PrepareIsDeterministic) {
  const PreparedDataset a = Prepare(FlickrSim(0.05));
  const PreparedDataset b = Prepare(FlickrSim(0.05));
  EXPECT_EQ(a.data.graph.num_edges(), b.data.graph.num_edges());
  EXPECT_EQ(a.data.labels, b.data.labels);
  EXPECT_EQ(a.split.train_nodes, b.split.train_nodes);
  EXPECT_EQ(a.split.test_nodes, b.split.test_nodes);
  EXPECT_EQ(a.data.features.CountDifferences(b.data.features, 0.0f), 0u);
}

TEST(DatasetsTest, EnvScaleRejectsGarbage) {
  setenv("NAI_SCALE", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(EnvScale(), 1.0);
  // strtod parses "nan"/"inf" successfully; they must not reach clamp()
  // (NaN comparisons would leak NaN into dataset sizing).
  setenv("NAI_SCALE", "nan", 1);
  EXPECT_DOUBLE_EQ(EnvScale(), 1.0);
  setenv("NAI_SCALE", "inf", 1);
  EXPECT_DOUBLE_EQ(EnvScale(), 1.0);
  unsetenv("NAI_SCALE");
}

}  // namespace
}  // namespace nai::eval
