#include "src/eval/metrics.h"

#include <thread>

#include "gtest/gtest.h"

namespace nai::eval {
namespace {

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double ms = t.ElapsedMs();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 500.0);
  t.Reset();
  EXPECT_LT(t.ElapsedMs(), 15.0);
}

TEST(CostCountersTest, Accumulate) {
  CostCounters a{100, 50, 1.5, 0.5};
  CostCounters b{10, 5, 0.5, 0.25};
  a += b;
  EXPECT_EQ(a.total_macs, 110);
  EXPECT_EQ(a.fp_macs, 55);
  EXPECT_DOUBLE_EQ(a.total_time_ms, 2.0);
  EXPECT_DOUBLE_EQ(a.fp_time_ms, 0.75);
}

TEST(AccuracyOnNodesTest, Basic) {
  const std::vector<std::int32_t> labels = {0, 1, 2, 0, 1};
  const std::vector<std::int32_t> nodes = {0, 2, 4};
  const std::vector<std::int32_t> preds = {0, 2, 0};  // 2 of 3 correct
  EXPECT_FLOAT_EQ(AccuracyOnNodes(preds, labels, nodes), 2.0f / 3.0f);
  EXPECT_FLOAT_EQ(AccuracyOnNodes({}, labels, {}), 0.0f);
}

TEST(MakeRowTest, PerNodeNormalization) {
  CostCounters cost;
  cost.total_macs = 2'000'000;
  cost.fp_macs = 1'000'000;
  cost.total_time_ms = 42.0;
  const EvalRow row = MakeRow("test", 0.5f, cost, 4);
  EXPECT_EQ(row.method, "test");
  EXPECT_DOUBLE_EQ(row.mmacs_per_node, 0.5);
  EXPECT_DOUBLE_EQ(row.fp_mmacs_per_node, 0.25);
  EXPECT_DOUBLE_EQ(row.time_ms, 42.0);
}

TEST(PrintTableTest, DoesNotCrash) {
  CostCounters cost;
  cost.total_macs = 1000;
  PrintTable("smoke", {MakeRow("a", 0.9f, cost, 10)});
}

TEST(AccuracyOnNodesTest, Extremes) {
  const std::vector<std::int32_t> labels = {1, 1, 1};
  const std::vector<std::int32_t> nodes = {0, 1, 2};
  EXPECT_FLOAT_EQ(AccuracyOnNodes({1, 1, 1}, labels, nodes), 1.0f);
  EXPECT_FLOAT_EQ(AccuracyOnNodes({0, 0, 0}, labels, nodes), 0.0f);
}

TEST(MakeRowTest, FpTimePassedThrough) {
  CostCounters cost;
  cost.total_macs = 1'000'000;
  cost.fp_macs = 250'000;
  cost.total_time_ms = 8.0;
  cost.fp_time_ms = 3.0;
  const EvalRow row = MakeRow("napd", 0.75f, cost, 2);
  EXPECT_FLOAT_EQ(row.accuracy, 0.75f);
  EXPECT_DOUBLE_EQ(row.fp_time_ms, 3.0);
  EXPECT_DOUBLE_EQ(row.mmacs_per_node, 0.5);
  EXPECT_DOUBLE_EQ(row.fp_mmacs_per_node, 0.125);
}

TEST(CostCountersTest, DefaultIsZero) {
  const CostCounters c;
  EXPECT_EQ(c.total_macs, 0);
  EXPECT_EQ(c.fp_macs, 0);
  EXPECT_DOUBLE_EQ(c.total_time_ms, 0.0);
  EXPECT_DOUBLE_EQ(c.fp_time_ms, 0.0);
}

}  // namespace
}  // namespace nai::eval
