// Unit tests for the experiment harness on a miniature dataset: pipeline
// training wiring, default-setting construction, and the method runners.

#include "src/eval/harness.h"

#include "gtest/gtest.h"

namespace nai::eval {
namespace {

class HarnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec = ArxivSim(0.05);
    spec.gen.num_classes = 6;
    ds_ = new PreparedDataset(Prepare(spec));
    PipelineConfig cfg;
    cfg.depth = 3;
    cfg.distill.base_epochs = 40;
    cfg.distill.single_epochs = 30;
    cfg.distill.multi_epochs = 20;
    cfg.gate.epochs = 20;
    pipeline_ = new TrainedPipeline(TrainPipeline(*ds_, cfg));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete ds_;
  }
  static PreparedDataset* ds_;
  static TrainedPipeline* pipeline_;
};

PreparedDataset* HarnessTest::ds_ = nullptr;
TrainedPipeline* HarnessTest::pipeline_ = nullptr;

TEST_F(HarnessTest, PipelineShapes) {
  EXPECT_EQ(pipeline_->model_config.depth, 3);
  EXPECT_EQ(pipeline_->classifiers->depth(), 3);
  EXPECT_EQ(pipeline_->train_stack.size(), 4u);  // X^(0..3)
  EXPECT_NE(pipeline_->gates, nullptr);
  EXPECT_NE(pipeline_->full_stationary, nullptr);
  const tensor::Matrix teacher = pipeline_->TeacherLogits();
  EXPECT_EQ(teacher.rows(), ds_->split.train_nodes.size());
  EXPECT_EQ(teacher.cols(), 6u);
}

TEST_F(HarnessTest, DefaultSettingsAreOrdered) {
  const auto settings =
      MakeDefaultSettings(*pipeline_, *ds_, core::NapKind::kDistance);
  ASSERT_EQ(settings.size(), 3u);
  // Speed-first has the shallowest window and the loosest threshold.
  EXPECT_LE(settings[0].config.t_max, settings[1].config.t_max);
  EXPECT_LE(settings[1].config.t_max, settings[2].config.t_max);
  EXPECT_GE(settings[0].config.threshold, settings[1].config.threshold);
  EXPECT_GE(settings[1].config.threshold, settings[2].config.threshold);
  EXPECT_EQ(settings[2].config.t_max, 3);
}

TEST_F(HarnessTest, RunVanillaProducesFullCoverage) {
  auto engine = MakeEngine(*pipeline_, *ds_);
  const MethodResult r =
      RunVanilla(*engine, *ds_, ds_->split.test_nodes, 100, "vanilla");
  EXPECT_EQ(r.predictions.size(), ds_->split.test_nodes.size());
  EXPECT_GT(r.row.mmacs_per_node, 0.0);
  EXPECT_GE(r.row.accuracy, 0.0f);
  // All exits at depth k for the vanilla run.
  EXPECT_EQ(r.stats.exits_at_depth.back(),
            static_cast<std::int64_t>(ds_->split.test_nodes.size()));
}

TEST_F(HarnessTest, RunNaiCostBelowVanilla) {
  auto engine = MakeEngine(*pipeline_, *ds_);
  const MethodResult vanilla =
      RunVanilla(*engine, *ds_, ds_->split.test_nodes, 100, "vanilla");
  const auto settings =
      MakeDefaultSettings(*pipeline_, *ds_, core::NapKind::kDistance);
  core::InferenceConfig cfg = settings[0].config;
  cfg.batch_size = 100;
  const MethodResult nai =
      RunNai(*engine, *ds_, ds_->split.test_nodes, cfg, "nai");
  EXPECT_LT(nai.stats.propagation_macs, vanilla.stats.propagation_macs);
}

TEST_F(HarnessTest, BaselineRunnersProduceRows) {
  const MethodResult glnn =
      RunGlnn(*pipeline_, *ds_, ds_->split.test_nodes, 2);
  EXPECT_EQ(glnn.row.method, "GLNN");
  EXPECT_EQ(glnn.predictions.size(), ds_->split.test_nodes.size());
  const MethodResult quant =
      RunQuantized(*pipeline_, *ds_, ds_->split.test_nodes, 100);
  EXPECT_EQ(quant.row.method, "Quantization");
  EXPECT_GT(quant.row.fp_mmacs_per_node, 0.0);
}

TEST_F(HarnessTest, RunNaiGateProducesFullCoverage) {
  // The NAPg path through the harness: every test node classified, exits
  // within the depth window.
  auto engine = MakeEngine(*pipeline_, *ds_);
  const auto settings =
      MakeDefaultSettings(*pipeline_, *ds_, core::NapKind::kGate);
  core::InferenceConfig cfg = settings[1].config;
  cfg.batch_size = 100;
  const MethodResult r =
      RunNai(*engine, *ds_, ds_->split.test_nodes, cfg, "napg");
  EXPECT_EQ(r.predictions.size(), ds_->split.test_nodes.size());
  std::int64_t exited = 0;
  for (const std::int64_t c : r.stats.exits_at_depth) exited += c;
  EXPECT_EQ(exited, static_cast<std::int64_t>(ds_->split.test_nodes.size()));
}

TEST_F(HarnessTest, MakeQosPolicyTableMirrorsDefaultSettings) {
  const auto settings =
      MakeDefaultSettings(*pipeline_, *ds_, core::NapKind::kDistance);
  const serve::QosPolicyTable table =
      MakeQosPolicyTable(*pipeline_, *ds_, core::NapKind::kDistance,
                         /*speed_deadline_ms=*/15.0,
                         /*accuracy_deadline_ms=*/150.0);
  const serve::QosPolicy& speed =
      table.For(serve::QosClass::kSpeedFirst);
  const serve::QosPolicy& accuracy =
      table.For(serve::QosClass::kAccuracyFirst);
  EXPECT_EQ(speed.config.t_max, settings.front().config.t_max);
  EXPECT_EQ(accuracy.config.t_max, settings.back().config.t_max);
  EXPECT_FLOAT_EQ(speed.config.threshold, settings.front().config.threshold);
  EXPECT_FLOAT_EQ(accuracy.config.threshold,
                  settings.back().config.threshold);
  EXPECT_FLOAT_EQ(speed.default_deadline_ms, 15.0);
  EXPECT_FLOAT_EQ(accuracy.default_deadline_ms, 150.0);
}

TEST_F(HarnessTest, RunServingClosedLoopServesEveryNodeBitExact) {
  auto sharded = MakeShardedEngine(*pipeline_, *ds_, 2);
  const serve::QosPolicyTable table =
      MakeQosPolicyTable(*pipeline_, *ds_, core::NapKind::kDistance);
  const core::InferenceResult ref_speed = sharded->Infer(
      ds_->split.test_nodes, table.For(serve::QosClass::kSpeedFirst).config);
  const core::InferenceResult ref_accuracy = sharded->Infer(
      ds_->split.test_nodes,
      table.For(serve::QosClass::kAccuracyFirst).config);

  serve::ServingEngine server(*sharded, table);
  ServingLoadConfig load;
  load.closed_loop_clients = 4;
  load.speed_first_fraction = 0.5;
  const ServingRunReport report =
      RunServing(server, ds_->split.test_nodes, load);

  ASSERT_EQ(report.predictions.size(), ds_->split.test_nodes.size());
  ASSERT_EQ(report.classes.size(), ds_->split.test_nodes.size());
  for (std::size_t i = 0; i < report.predictions.size(); ++i) {
    const core::InferenceResult& ref =
        report.classes[i] == serve::QosClass::kSpeedFirst ? ref_speed
                                                          : ref_accuracy;
    EXPECT_EQ(report.predictions[i], ref.predictions[i]) << "node " << i;
  }
  EXPECT_EQ(report.stats.completed,
            static_cast<std::int64_t>(ds_->split.test_nodes.size()));
  EXPECT_EQ(report.stats.rejected, 0);  // closed loop never sheds
  EXPECT_GT(report.achieved_qps, 0.0);
  // Both classes actually appeared (seeded mix at 0.5 over 100+ nodes).
  EXPECT_GT(report.stats.per_class[0].count, 0);
  EXPECT_GT(report.stats.per_class[1].count, 0);
}

TEST_F(HarnessTest, RunServingOpenLoopPacesAndReportsOfferedLoad) {
  auto sharded = MakeShardedEngine(*pipeline_, *ds_, 2);
  const serve::QosPolicyTable table =
      MakeQosPolicyTable(*pipeline_, *ds_, core::NapKind::kDistance);
  serve::ServingEngine server(*sharded, table);

  // A modest rate over a small node list keeps the pass under a second
  // while still exercising the Poisson pacing + TrySubmit path.
  const std::vector<std::int32_t> nodes(ds_->split.test_nodes.begin(),
                                        ds_->split.test_nodes.begin() + 50);
  ServingLoadConfig load;
  load.arrival_rate_qps = 500.0;
  load.speed_first_fraction = 1.0;
  const ServingRunReport report = RunServing(server, nodes, load);

  EXPECT_FLOAT_EQ(report.offered_qps, 500.0);
  EXPECT_EQ(report.stats.completed + report.stats.rejected +
                report.stats.dropped,
            static_cast<std::int64_t>(nodes.size()));
  // Poisson pacing means the run takes at least in the order of n/rate.
  EXPECT_GT(report.duration_ms, 10.0);
}

TEST_F(HarnessTest, RunServingSkewedBurstyLoadStaysBitExact) {
  // skew_by_shard phases all arrivals through one shard at a time and the
  // on/off bursts modulate the Poisson clock — neither may change a
  // prediction, and every request is still accounted for.
  auto sharded = MakeShardedEngine(*pipeline_, *ds_, 2);
  const serve::QosPolicyTable table =
      MakeQosPolicyTable(*pipeline_, *ds_, core::NapKind::kDistance);
  const core::InferenceResult ref_speed = sharded->Infer(
      ds_->split.test_nodes, table.For(serve::QosClass::kSpeedFirst).config);
  serve::ServingEngine server(*sharded, table);

  const std::vector<std::int32_t> nodes(ds_->split.test_nodes.begin(),
                                        ds_->split.test_nodes.begin() + 60);
  ServingLoadConfig load;
  load.arrival_rate_qps = 2000.0;
  load.speed_first_fraction = 1.0;
  load.skew_by_shard = true;
  load.burst_on_ms = 5.0;
  load.burst_off_ms = 5.0;
  const ServingRunReport report = RunServing(server, nodes, load);

  EXPECT_EQ(report.stats.completed + report.stats.rejected +
                report.stats.dropped,
            static_cast<std::int64_t>(nodes.size()));
  std::int64_t served = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (report.predictions[i] < 0) continue;  // shed under burst overload
    ++served;
    // predictions[i] still answers nodes[i] (= test_nodes[i]) even though
    // the submission order was shard-sorted.
    EXPECT_EQ(report.predictions[i], ref_speed.predictions[i])
        << "node index " << i;
  }
  EXPECT_EQ(served, report.stats.completed);
  // The off periods at least double the schedule relative to steady
  // arrivals at the same rate (60 requests at 2k q/s ≈ 30ms busy time).
  EXPECT_GT(report.duration_ms, 30.0);
}

TEST_F(HarnessTest, RunServingZipfLoadRepeatsHotNodesBitExact) {
  // Zipf sampling draws nodes with replacement, so hot nodes repeat and
  // report rows become request-aligned: request_indices[t] maps row t back
  // to its node. Every repeated answer must still be bit-exact.
  auto sharded = MakeShardedEngine(*pipeline_, *ds_, 2);
  const serve::QosPolicyTable table =
      MakeQosPolicyTable(*pipeline_, *ds_, core::NapKind::kDistance);
  const core::InferenceResult ref_speed = sharded->Infer(
      ds_->split.test_nodes, table.For(serve::QosClass::kSpeedFirst).config);
  serve::ServingEngine server(*sharded, table);

  const std::vector<std::int32_t> nodes(ds_->split.test_nodes.begin(),
                                        ds_->split.test_nodes.begin() + 60);
  ServingLoadConfig load;
  load.closed_loop_clients = 4;
  load.speed_first_fraction = 1.0;
  load.zipf_alpha = 1.0;
  load.num_requests = 3 * nodes.size();
  const ServingRunReport report = RunServing(server, nodes, load);

  ASSERT_EQ(report.request_indices.size(), load.num_requests);
  ASSERT_EQ(report.predictions.size(), load.num_requests);
  ASSERT_EQ(report.classes.size(), load.num_requests);
  std::vector<std::int64_t> draws(nodes.size(), 0);
  for (std::size_t t = 0; t < load.num_requests; ++t) {
    const std::size_t i = report.request_indices[t];
    ASSERT_LT(i, nodes.size()) << "request " << t;
    ++draws[i];
    EXPECT_EQ(report.predictions[t], ref_speed.predictions[i])
        << "request " << t << " node index " << i;
  }
  EXPECT_EQ(report.stats.completed,
            static_cast<std::int64_t>(load.num_requests));
  // Skew direction: at alpha=1 over 60 nodes the head third of the
  // caller's ordering must out-draw the tail third (expected ~2.9x; even
  // an unlucky seed clears a plain >).
  std::int64_t head = 0;
  std::int64_t tail = 0;
  for (std::size_t i = 0; i < 20; ++i) head += draws[i];
  for (std::size_t i = 40; i < 60; ++i) tail += draws[i];
  EXPECT_GT(head, tail);
}

TEST_F(HarnessTest, RunServingWithoutZipfReportsIdentityIndices) {
  // The request-aligned contract degrades to the historical node-aligned
  // one when Zipf is off: request_indices is the identity, so existing
  // consumers that index reports by node stay valid.
  auto sharded = MakeShardedEngine(*pipeline_, *ds_, 2);
  const serve::QosPolicyTable table =
      MakeQosPolicyTable(*pipeline_, *ds_, core::NapKind::kDistance);
  serve::ServingEngine server(*sharded, table);

  const std::vector<std::int32_t> nodes(ds_->split.test_nodes.begin(),
                                        ds_->split.test_nodes.begin() + 40);
  ServingLoadConfig load;
  load.closed_loop_clients = 4;
  const ServingRunReport report = RunServing(server, nodes, load);

  ASSERT_EQ(report.request_indices.size(), nodes.size());
  for (std::size_t t = 0; t < nodes.size(); ++t) {
    EXPECT_EQ(report.request_indices[t], t);
  }
}

}  // namespace
}  // namespace nai::eval
