// Flag-parsing contract of runtime/flags.h, with the rejection paths the
// bench/example binaries rely on: out-of-range or garbage values must fall
// back to the documented defaults (never crash, never half-parse), and
// every occurrence of a flag must be consumed out of argv so wrapped
// parsers (google-benchmark) see a clean command line.

#include "src/runtime/flags.h"

#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace nai::runtime {
namespace {

/// argv builder: owns mutable copies of the tokens (flags.h writes argv).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) {
    storage_ = std::move(args);
    for (std::string& s : storage_) argv_.push_back(s.data());
    argv_.push_back(nullptr);
    argc_ = static_cast<int>(storage_.size());
  }
  int& argc() { return argc_; }
  char** argv() { return argv_.data(); }
  std::vector<std::string> Remaining() const {
    std::vector<std::string> out;
    for (int i = 0; i < argc_; ++i) out.emplace_back(argv_[i]);
    return out;
  }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> argv_;
  int argc_ = 0;
};

TEST(FlagsTest, QosMixFlagParsesNamesAndPercentages) {
  {
    Argv a({"prog", "--qos", "speed"});
    EXPECT_EQ(QosMixFlag(a.argc(), a.argv()), 100);
  }
  {
    Argv a({"prog", "--qos=accuracy"});
    EXPECT_EQ(QosMixFlag(a.argc(), a.argv()), 0);
  }
  {
    Argv a({"prog", "--qos", "mix"});
    EXPECT_EQ(QosMixFlag(a.argc(), a.argv()), 50);
  }
  {
    Argv a({"prog", "--qos=37"});
    EXPECT_EQ(QosMixFlag(a.argc(), a.argv()), 37);
  }
  {
    Argv a({"prog", "--qos", "0"});
    EXPECT_EQ(QosMixFlag(a.argc(), a.argv()), 0);
  }
  {
    Argv a({"prog", "--qos", "100"});
    EXPECT_EQ(QosMixFlag(a.argc(), a.argv()), 100);
  }
}

TEST(FlagsTest, QosMixFlagRejectsOutOfRangeAndGarbage) {
  for (const char* bad : {"101", "150", "999999999999", "abc", "5x",
                          "speedy", ""}) {
    Argv a({"prog", std::string("--qos=") + bad});
    EXPECT_EQ(QosMixFlag(a.argc(), a.argv(), 50), 50) << "value " << bad;
    // Rejected or not, the flag is consumed.
    EXPECT_EQ(a.argc(), 1) << "value " << bad;
  }
  {
    // A negative value arrives as a separate '-'-prefixed token, which is
    // deliberately not consumed as a value: default wins and the token
    // survives for the wrapped parser to complain about.
    Argv a({"prog", "--qos", "-5"});
    EXPECT_EQ(QosMixFlag(a.argc(), a.argv(), 50), 50);
    EXPECT_EQ(a.Remaining(), (std::vector<std::string>{"prog", "-5"}));
  }
  {
    Argv a({"prog"});  // absent entirely
    EXPECT_EQ(QosMixFlag(a.argc(), a.argv(), 77), 77);
  }
  {
    Argv a({"prog", "--qos"});  // flag with no value at all
    EXPECT_EQ(QosMixFlag(a.argc(), a.argv(), 50), 50);
    EXPECT_EQ(a.argc(), 1);
  }
}

TEST(FlagsTest, ArrivalRateFlagRejectsGarbage) {
  {
    Argv a({"prog", "--arrival-rate", "250"});
    EXPECT_EQ(ArrivalRateFlag(a.argc(), a.argv()), 250);
  }
  for (const char* bad : {"garbage", "1e3", "12qps", "0", ""}) {
    Argv a({"prog", std::string("--arrival-rate=") + bad});
    EXPECT_EQ(ArrivalRateFlag(a.argc(), a.argv()), 0) << "value " << bad;
    EXPECT_EQ(a.argc(), 1) << "value " << bad;
  }
  {
    Argv a({"prog"});
    EXPECT_EQ(ArrivalRateFlag(a.argc(), a.argv()), 0);
  }
}

TEST(FlagsTest, ZipfFlagParsesPositiveFiniteAlpha) {
  {
    Argv a({"prog", "--zipf", "1.2"});
    EXPECT_DOUBLE_EQ(ZipfFlag(a.argc(), a.argv()), 1.2);
    EXPECT_EQ(a.argc(), 1);  // consumed out of argv
  }
  {
    Argv a({"prog", "--zipf=0.8"});
    EXPECT_DOUBLE_EQ(ZipfFlag(a.argc(), a.argv()), 0.8);
    EXPECT_EQ(a.argc(), 1);
  }
}

TEST(FlagsTest, ZipfFlagRejectsGarbageNonPositiveAndNonFinite) {
  // 0.0 is the documented unskewed fallback for every rejection path. Note
  // "0" itself rejects: alpha must be strictly positive to mean skew.
  for (const char* bad : {"garbage", "1.5x", "", "0", "0.0", "inf", "nan"}) {
    Argv a({"prog", std::string("--zipf=") + bad});
    EXPECT_DOUBLE_EQ(ZipfFlag(a.argc(), a.argv()), 0.0) << "value " << bad;
    EXPECT_EQ(a.argc(), 1) << "value " << bad;  // rejected but consumed
  }
  {
    // Negative alpha arrives as a '-'-prefixed token, which is not consumed
    // as a value: unskewed default, token survives for the wrapped parser.
    Argv a({"prog", "--zipf", "-1.0"});
    EXPECT_DOUBLE_EQ(ZipfFlag(a.argc(), a.argv()), 0.0);
    EXPECT_EQ(a.Remaining(), (std::vector<std::string>{"prog", "-1.0"}));
  }
  {
    Argv a({"prog"});  // absent entirely
    EXPECT_DOUBLE_EQ(ZipfFlag(a.argc(), a.argv()), 0.0);
  }
  {
    Argv a({"prog", "--zipf"});  // flag with no value
    EXPECT_DOUBLE_EQ(ZipfFlag(a.argc(), a.argv()), 0.0);
    EXPECT_EQ(a.argc(), 1);
  }
}

TEST(FlagsTest, LastOccurrenceWinsAndAllAreConsumed) {
  Argv a({"prog", "--qos=10", "keep", "--qos", "90", "--arrival-rate=5"});
  EXPECT_EQ(QosMixFlag(a.argc(), a.argv()), 90);
  EXPECT_EQ(ArrivalRateFlag(a.argc(), a.argv()), 5);
  EXPECT_EQ(a.Remaining(), (std::vector<std::string>{"prog", "keep"}));
  EXPECT_EQ(a.argv()[a.argc()], nullptr);  // argv[argc] invariant kept
}

TEST(FlagsTest, ShardsFlagRejectsNonPositive) {
  {
    Argv a({"prog", "--shards=4"});
    EXPECT_EQ(ShardsFlag(a.argc(), a.argv()), 4);
  }
  for (const char* bad : {"0", "x", ""}) {
    Argv a({"prog", std::string("--shards=") + bad});
    EXPECT_EQ(ShardsFlag(a.argc(), a.argv()), 1) << "value " << bad;
  }
}

TEST(FlagsTest, PrefixFlagsDoNotMatch) {
  // "--qos-mix" shares the "--qos" prefix but is a different flag: it must
  // survive untouched and not be mistaken for a value.
  Argv a({"prog", "--qos-mix=10"});
  EXPECT_EQ(QosMixFlag(a.argc(), a.argv(), 50), 50);
  EXPECT_EQ(a.Remaining(), (std::vector<std::string>{"prog", "--qos-mix=10"}));
}

}  // namespace
}  // namespace nai::runtime
