#include "src/runtime/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "src/runtime/exec_context.h"
#include "src/runtime/flags.h"

namespace nai::runtime {
namespace {

TEST(EnvThreadsTest, UnsetMeansNoOverride) {
  unsetenv("NAI_THREADS");
  EXPECT_EQ(ThreadPool::EnvThreads(), 0);
}

TEST(EnvThreadsTest, ValidValueParsed) {
  setenv("NAI_THREADS", "6", 1);
  EXPECT_EQ(ThreadPool::EnvThreads(), 6);
  unsetenv("NAI_THREADS");
}

TEST(EnvThreadsTest, RejectsGarbageAndNonPositive) {
  // Same discipline as NAI_SCALE: garbage and non-positive values are
  // ignored outright, never clamped up to a valid count.
  for (const char* bad : {"not-a-number", "", "-3", "0", "threads", "6abc"}) {
    setenv("NAI_THREADS", bad, 1);
    EXPECT_EQ(ThreadPool::EnvThreads(), 0) << "value: " << bad;
  }
  unsetenv("NAI_THREADS");
}

TEST(EnvThreadsTest, HugeValueClamped) {
  setenv("NAI_THREADS", "99999", 1);
  EXPECT_EQ(ThreadPool::EnvThreads(), 256);
  unsetenv("NAI_THREADS");
}

TEST(EnvThreadsTest, PoolResolvesEnvOverride) {
  setenv("NAI_THREADS", "3", 1);
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 3);
  // Explicit counts beat the environment.
  ThreadPool explicit_pool(2);
  EXPECT_EQ(explicit_pool.num_threads(), 2);
  unsetenv("NAI_THREADS");
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(0, hits.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, CoversNonZeroBeginAndHugeGrain) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(16, 64, ThreadPool::kMinChunkWork,
                   [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), i >= 16 ? 1 : 0);
  }
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NestedCallsRunInline) {
  // A ParallelFor issued from inside a worker must execute inline (whole
  // range, same thread) instead of re-entering the pool — this is what
  // makes inter-batch parallelism compose with kernel parallelism.
  ThreadPool pool(4);
  std::atomic<int> outer_calls{0};
  std::atomic<int> inner_whole_range{0};
  pool.ParallelFor(0, 8, ThreadPool::kMinChunkWork,
                   [&](std::size_t b, std::size_t e) {
    outer_calls.fetch_add(1);
    pool.ParallelFor(0, 100, 1, [&](std::size_t ib, std::size_t ie) {
      if (ib == 0 && ie == 100) inner_whole_range.fetch_add(1);
    });
    (void)b;
    (void)e;
  });
  EXPECT_EQ(outer_calls.load(), 8);
  EXPECT_EQ(inner_whole_range.load(), 8);
}

TEST(ThreadPoolTest, SequentialJobsReuseWorkers) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.ParallelFor(0, 1000, ThreadPool::kMinChunkWork / 100,
                     [&](std::size_t b, std::size_t e) {
      std::size_t local = 0;
      for (std::size_t i = b; i < e; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 1000u * 999u / 2u);
  }
}

// Regression for the old splitting heuristic: kMinChunk = 2048 was compared
// against the row *count* only, so a 1000-row x 4096-wide MatMul ran on one
// thread. The cost-based grain must fan such shapes out.
TEST(ThreadPoolTest, WideMatrixShapesFanOut) {
  const std::size_t rows = 1000;
  const std::size_t row_cost = 4096 * 64;  // k*n of a 1000x4096 * 4096x64
  EXPECT_GT(ThreadPool::PlannedWorkers(rows, row_cost, 8), 1u);
  EXPECT_EQ(ThreadPool::PlannedWorkers(rows, row_cost, 8), 8u);
  // ...while genuinely tiny jobs stay on one thread.
  EXPECT_EQ(ThreadPool::PlannedWorkers(100, 1, 8), 1u);
  EXPECT_EQ(ThreadPool::PlannedWorkers(0, 1, 8), 0u);
}

TEST(ThreadPoolTest, ChunkSizingMatchesGrainCost) {
  ThreadPool pool(2);
  // With a per-item cost of kMinChunkWork/4, chunks must carry at most 4
  // items — observable through the subrange widths handed to fn.
  std::atomic<int> calls{0};
  std::atomic<std::size_t> max_width{0};
  pool.ParallelFor(0, 64, ThreadPool::kMinChunkWork / 4,
                   [&](std::size_t b, std::size_t e) {
    calls.fetch_add(1);
    std::size_t w = e - b;
    std::size_t cur = max_width.load();
    while (w > cur && !max_width.compare_exchange_weak(cur, w)) {
    }
  });
  EXPECT_GT(calls.load(), 1);
  EXPECT_LE(max_width.load(), 4u);
}

TEST(ExecContextTest, DefaultRoutesToDefaultPool) {
  ThreadPool::SetDefaultThreads(2);
  ExecContext ctx;
  EXPECT_EQ(&ctx.pool_or_default(), &ThreadPool::Default());
  EXPECT_EQ(ctx.num_threads(), 2);
  ThreadPool own_pool(3);
  ctx.pool = &own_pool;
  EXPECT_EQ(&ctx.pool_or_default(), &own_pool);
  EXPECT_EQ(ctx.num_threads(), 3);
  ThreadPool::SetDefaultThreads(0);
}

TEST(ScopedDefaultPoolTest, OverridesDefaultOnThisThreadOnly) {
  ThreadPool::SetDefaultThreads(2);
  ThreadPool own(3);
  {
    ScopedDefaultPool scope(own);
    EXPECT_EQ(&ThreadPool::Default(), &own);
    // Default-constructed contexts — the ones kernels deep inside the nn
    // layer see — must resolve to the scoped pool too.
    ExecContext ctx;
    EXPECT_EQ(ctx.num_threads(), 3);
  }
  EXPECT_EQ(ThreadPool::Default().num_threads(), 2);
  ThreadPool::SetDefaultThreads(0);
}

TEST(FlagsTest, ThreadsFlagConsumedAndApplied) {
  char prog[] = "prog";
  char flag[] = "--threads";
  char val[] = "5";
  char other[] = "--keep-me";
  char* argv[] = {prog, flag, val, other, nullptr};
  int argc = 4;
  EXPECT_EQ(ApplyThreadsFlag(argc, argv), 5);
  ASSERT_EQ(argc, 2);  // flag + value removed, unrelated args kept
  EXPECT_EQ(std::string(argv[1]), "--keep-me");
  EXPECT_EQ(ThreadPool::Default().num_threads(), 5);

  char eq_form[] = "--threads=2";
  char* argv2[] = {prog, eq_form, nullptr};
  int argc2 = 2;
  EXPECT_EQ(ApplyThreadsFlag(argc2, argv2), 2);
  EXPECT_EQ(argc2, 1);
  ThreadPool::SetDefaultThreads(0);
}

TEST(FlagsTest, InvalidThreadsValueIgnored) {
  ThreadPool::SetDefaultThreads(2);
  char prog[] = "prog";
  char flag[] = "--threads=banana";
  char* argv[] = {prog, flag, nullptr};
  int argc = 2;
  EXPECT_EQ(ApplyThreadsFlag(argc, argv), 2);  // default pool untouched
  EXPECT_EQ(argc, 1);                          // but the flag is consumed
  ThreadPool::SetDefaultThreads(0);
}

TEST(FlagsTest, SpaceFormDoesNotSwallowFollowingFlag) {
  ThreadPool::SetDefaultThreads(2);
  char prog[] = "prog";
  char flag[] = "--threads";
  char other[] = "--benchmark_filter=BM_X";
  char* argv[] = {prog, flag, other, nullptr};
  int argc = 3;
  EXPECT_EQ(ApplyThreadsFlag(argc, argv), 2);
  ASSERT_EQ(argc, 2);  // bare --threads consumed, the other flag survives
  EXPECT_EQ(std::string(argv[1]), "--benchmark_filter=BM_X");
  EXPECT_EQ(argv[2], nullptr);
  ThreadPool::SetDefaultThreads(0);
}

TEST(FlagsTest, BareTrailingThreadsFlagConsumed) {
  ThreadPool::SetDefaultThreads(2);
  char prog[] = "prog";
  char flag[] = "--threads";
  char* argv[] = {prog, flag, nullptr};
  int argc = 2;
  EXPECT_EQ(ApplyThreadsFlag(argc, argv), 2);
  EXPECT_EQ(argc, 1);  // consumed even without a value
  ThreadPool::SetDefaultThreads(0);
}

TEST(FlagsTest, ShardsFlagParsedAndDefaultsToOne) {
  char prog[] = "prog";
  char flag[] = "--shards=4";
  char* argv[] = {prog, flag, nullptr};
  int argc = 2;
  EXPECT_EQ(ShardsFlag(argc, argv), 4);
  EXPECT_EQ(argc, 1);

  char bad[] = "--shards=-3";
  char* argv2[] = {prog, bad, nullptr};
  argc = 2;
  EXPECT_EQ(ShardsFlag(argc, argv2), 1);  // invalid -> unsharded
  EXPECT_EQ(argc, 1);

  char* argv3[] = {prog, nullptr};
  argc = 1;
  EXPECT_EQ(ShardsFlag(argc, argv3), 1);  // absent -> unsharded
}

TEST(FlagsTest, StringFlagConsumedLastOccurrenceWins) {
  char prog[] = "prog";
  char a[] = "--qos=speed";
  char b[] = "--qos";
  char v[] = "accuracy";
  char other[] = "--keep-me";
  char* argv[] = {prog, a, other, b, v, nullptr};
  int argc = 5;
  const char* parsed = ConsumeStringFlag(argc, argv, "--qos");
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(std::string(parsed), "accuracy");
  ASSERT_EQ(argc, 2);  // every occurrence removed, unrelated args kept
  EXPECT_EQ(std::string(argv[1]), "--keep-me");
  EXPECT_EQ(argv[2], nullptr);
}

TEST(FlagsTest, QosMixFlagNamesNumbersAndGarbage) {
  char prog[] = "prog";
  auto parse = [&](const char* text, int def) {
    std::string owned(text);
    char* argv[] = {prog, owned.data(), nullptr};
    int argc = 2;
    const int got = QosMixFlag(argc, argv, def);
    EXPECT_EQ(argc, 1) << text;  // always consumed
    return got;
  };
  EXPECT_EQ(parse("--qos=speed", 50), 100);
  EXPECT_EQ(parse("--qos=accuracy", 50), 0);
  EXPECT_EQ(parse("--qos=mix", 7), 50);
  EXPECT_EQ(parse("--qos=25", 50), 25);
  EXPECT_EQ(parse("--qos=0", 50), 0);      // 0 is meaningful, not invalid
  EXPECT_EQ(parse("--qos=101", 50), 50);   // out of range -> default
  EXPECT_EQ(parse("--qos=fast", 50), 50);  // garbage -> default
  char* argv[] = {prog, nullptr};
  int argc = 1;
  EXPECT_EQ(QosMixFlag(argc, argv, 33), 33);  // absent -> default
}

TEST(FlagsTest, ArrivalRateFlagDefaultsToClosedLoop) {
  char prog[] = "prog";
  char flag[] = "--arrival-rate=250";
  char* argv[] = {prog, flag, nullptr};
  int argc = 2;
  EXPECT_EQ(ArrivalRateFlag(argc, argv), 250);
  EXPECT_EQ(argc, 1);
  char bad[] = "--arrival-rate=-5";
  char* argv2[] = {prog, bad, nullptr};
  argc = 2;
  EXPECT_EQ(ArrivalRateFlag(argc, argv2), 0);  // invalid -> closed loop
  char* argv3[] = {prog, nullptr};
  argc = 1;
  EXPECT_EQ(ArrivalRateFlag(argc, argv3), 0);  // absent -> closed loop
}

TEST(RunConcurrentlyTest, RunsEveryTaskExactlyOnce) {
  std::vector<int> hits(16, 0);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { ++hits[i]; });
  }
  RunConcurrently(tasks);
  for (const int h : hits) EXPECT_EQ(h, 1);
  RunConcurrently({});  // empty task list is a no-op
}

TEST(RunConcurrentlyTest, RethrowsFirstTaskError) {
  // All tasks run to completion before the lowest-index error is rethrown.
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&] { ++completed; });
  tasks.push_back([] { throw std::runtime_error("shard 1 failed"); });
  tasks.push_back([&] { ++completed; });
  EXPECT_THROW(RunConcurrently(tasks), std::runtime_error);
  EXPECT_EQ(completed.load(), 2);
}

}  // namespace
}  // namespace nai::runtime
