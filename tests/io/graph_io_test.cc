#include "src/io/graph_io.h"

#include <sstream>

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "tests/test_util.h"

namespace nai::io {
namespace {

TEST(GraphIoTest, EdgeListBasic) {
  std::stringstream ss("0 1\n1 2\n# comment\n\n2 3\n");
  const graph::Graph g = ReadEdgeList(ss);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(GraphIoTest, EdgeListExplicitNodeCount) {
  std::stringstream ss("0 1\n");
  const graph::Graph g = ReadEdgeList(ss, 10);
  EXPECT_EQ(g.num_nodes(), 10);
  EXPECT_EQ(g.degree(9), 0);
}

TEST(GraphIoTest, EdgeListRejectsBadInput) {
  {
    std::stringstream ss("0 x\n");
    EXPECT_THROW(ReadEdgeList(ss), std::runtime_error);
  }
  {
    std::stringstream ss("0 5\n");
    EXPECT_THROW(ReadEdgeList(ss, 3), std::runtime_error);
  }
}

TEST(GraphIoTest, EdgeListRoundTrip) {
  graph::GeneratorConfig cfg;
  cfg.num_nodes = 120;
  cfg.num_edges = 500;
  cfg.seed = 3;
  const graph::SyntheticDataset ds = graph::GenerateDataset(cfg);
  std::stringstream ss;
  WriteEdgeList(ss, ds.graph);
  const graph::Graph back = ReadEdgeList(ss, ds.graph.num_nodes());
  EXPECT_EQ(back.num_nodes(), ds.graph.num_nodes());
  EXPECT_EQ(back.num_edges(), ds.graph.num_edges());
  for (std::int32_t v = 0; v < back.num_nodes(); ++v) {
    EXPECT_EQ(back.degree(v), ds.graph.degree(v));
  }
}

TEST(GraphIoTest, EdgeListCollapsesDuplicatesAndSelfLoops) {
  std::stringstream ss("0 1\n1 0\n0 1\n1 1\n");
  const graph::Graph g = ReadEdgeList(ss);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(GraphIoTest, FeaturesRoundTrip) {
  const tensor::Matrix m = nai::testing::RandomMatrix(9, 4, 11);
  std::stringstream ss;
  WriteFeatures(ss, m);
  const tensor::Matrix back = ReadFeatures(ss);
  ASSERT_EQ(back.rows(), 9u);
  ASSERT_EQ(back.cols(), 4u);
  // Text round-trip loses a little precision.
  EXPECT_EQ(m.CountDifferences(back, 1e-4f), 0u);
}

TEST(GraphIoTest, FeaturesRejectRaggedRows) {
  std::stringstream ss("1.0 2.0\n3.0\n");
  EXPECT_THROW(ReadFeatures(ss), std::runtime_error);
}

TEST(GraphIoTest, FeaturesRejectGarbage) {
  std::stringstream ss("1.0 banana\n");
  EXPECT_THROW(ReadFeatures(ss), std::runtime_error);
}

TEST(GraphIoTest, LabelsRoundTrip) {
  const std::vector<std::int32_t> labels = {0, 3, 1, 1, 2};
  std::stringstream ss;
  WriteLabels(ss, labels);
  EXPECT_EQ(ReadLabels(ss), labels);
}

TEST(GraphIoTest, LabelsRejectGarbage) {
  std::stringstream ss("1\ntwo\n");
  EXPECT_THROW(ReadLabels(ss), std::runtime_error);
}

TEST(GraphIoTest, MissingFileThrows) {
  EXPECT_THROW(ReadEdgeListFile("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace nai::io
