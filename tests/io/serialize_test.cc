#include "src/io/serialize.h"

#include <limits>
#include <sstream>

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace nai::io {
namespace {

TEST(SerializeTest, ScalarsRoundTrip) {
  std::stringstream ss;
  WriteU64(ss, 0xdeadbeefcafeULL);
  WriteI32(ss, -42);
  WriteF32(ss, 3.25f);
  WriteString(ss, "hello");
  WriteString(ss, "");
  EXPECT_EQ(ReadU64(ss), 0xdeadbeefcafeULL);
  EXPECT_EQ(ReadI32(ss), -42);
  EXPECT_FLOAT_EQ(ReadF32(ss), 3.25f);
  EXPECT_EQ(ReadString(ss), "hello");
  EXPECT_EQ(ReadString(ss), "");
}

TEST(SerializeTest, MatrixRoundTrip) {
  const tensor::Matrix m = nai::testing::RandomMatrix(7, 5, 42);
  std::stringstream ss;
  WriteMatrix(ss, m);
  const tensor::Matrix back = ReadMatrix(ss);
  EXPECT_EQ(m.CountDifferences(back, 0.0f), 0u);
}

TEST(SerializeTest, EmptyMatrixRoundTrip) {
  tensor::Matrix m;
  std::stringstream ss;
  WriteMatrix(ss, m);
  const tensor::Matrix back = ReadMatrix(ss);
  EXPECT_EQ(back.rows(), 0u);
  EXPECT_EQ(back.cols(), 0u);
}

TEST(SerializeTest, VectorRoundTrip) {
  const std::vector<std::int32_t> v = {5, -1, 0, 1 << 20};
  std::stringstream ss;
  WriteI32Vector(ss, v);
  EXPECT_EQ(ReadI32Vector(ss), v);
}

TEST(SerializeTest, HeaderTagChecked) {
  std::stringstream ss;
  WriteHeader(ss, "kind_a");
  EXPECT_THROW(ReadHeader(ss, "kind_b"), std::runtime_error);
}

TEST(SerializeTest, BadMagicRejected) {
  std::stringstream ss;
  ss << "this is not a NAI artifact at all";
  EXPECT_THROW(ReadHeader(ss, "anything"), std::runtime_error);
}

TEST(SerializeTest, TruncatedStreamThrows) {
  std::stringstream ss;
  WriteMatrix(ss, nai::testing::RandomMatrix(4, 4, 1));
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(ReadMatrix(truncated), std::runtime_error);
}

TEST(SerializeTest, ScalarExtremesRoundTrip) {
  std::stringstream ss;
  WriteU64(ss, 0ULL);
  WriteU64(ss, ~0ULL);
  WriteI32(ss, std::numeric_limits<std::int32_t>::min());
  WriteI32(ss, std::numeric_limits<std::int32_t>::max());
  WriteF32(ss, -0.0f);
  WriteF32(ss, std::numeric_limits<float>::max());
  EXPECT_EQ(ReadU64(ss), 0ULL);
  EXPECT_EQ(ReadU64(ss), ~0ULL);
  EXPECT_EQ(ReadI32(ss), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(ReadI32(ss), std::numeric_limits<std::int32_t>::max());
  EXPECT_FLOAT_EQ(ReadF32(ss), -0.0f);
  EXPECT_FLOAT_EQ(ReadF32(ss), std::numeric_limits<float>::max());
}

TEST(SerializeTest, EmptyVectorRoundTrip) {
  std::stringstream ss;
  WriteI32Vector(ss, {});
  EXPECT_TRUE(ReadI32Vector(ss).empty());
}

TEST(SerializeTest, HeaderAcceptsMatchingTag) {
  std::stringstream ss;
  WriteHeader(ss, "kind_a");
  ReadHeader(ss, "kind_a");  // must not throw
  SUCCEED();
}

}  // namespace
}  // namespace nai::io
