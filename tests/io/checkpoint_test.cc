#include "src/io/checkpoint.h"

#include <sstream>

#include "gtest/gtest.h"
#include "src/core/inference.h"
#include "src/tensor/ops.h"
#include "tests/core/core_fixtures.h"
#include "tests/test_util.h"

namespace nai::io {
namespace {

using nai::testing::MakeSmallWorld;

TEST(CheckpointTest, ClassifierStackRoundTrip) {
  auto w = MakeSmallWorld(3);
  std::stringstream ss;
  SaveClassifierStack(ss, *w.classifiers);

  // A freshly initialized bank predicts differently; after loading it must
  // agree exactly with the trained one.
  core::ClassifierStack fresh(w.config, 999);
  const tensor::Matrix trained_logits = w.classifiers->Logits(3, w.all_feats);
  EXPECT_GT(trained_logits.CountDifferences(fresh.Logits(3, w.all_feats),
                                            1e-6f),
            0u);
  LoadClassifierStack(ss, fresh);
  for (int l = 1; l <= 3; ++l) {
    const tensor::Matrix a = w.classifiers->Logits(l, w.all_feats);
    const tensor::Matrix b = fresh.Logits(l, w.all_feats);
    EXPECT_EQ(a.CountDifferences(b, 0.0f), 0u) << "depth " << l;
  }
}

TEST(CheckpointTest, ClassifierDepthMismatchRejected) {
  auto w = MakeSmallWorld(3);
  std::stringstream ss;
  SaveClassifierStack(ss, *w.classifiers);
  models::ModelConfig other = w.config;
  other.depth = 2;
  core::ClassifierStack shallow(other, 1);
  EXPECT_THROW(LoadClassifierStack(ss, shallow), std::runtime_error);
}

TEST(CheckpointTest, ClassifierShapeMismatchRejected) {
  auto w = MakeSmallWorld(2);
  std::stringstream ss;
  SaveClassifierStack(ss, *w.classifiers);
  models::ModelConfig other = w.config;
  other.hidden_dims = {32};  // different classifier width
  core::ClassifierStack wrong(other, 1);
  EXPECT_THROW(LoadClassifierStack(ss, wrong), std::runtime_error);
}

TEST(CheckpointTest, GateStackRoundTrip) {
  core::GateStack gates(4, 8, 7);
  std::stringstream ss;
  SaveGateStack(ss, gates);
  core::GateStack other(4, 8, 1234);  // different init
  const tensor::Matrix x = nai::testing::RandomMatrix(6, 8, 2);
  const tensor::Matrix xi = nai::testing::RandomMatrix(6, 8, 3);
  EXPECT_GT(gates.Preference(1, x, xi).CountDifferences(
                other.Preference(1, x, xi), 1e-6f),
            0u);
  LoadGateStack(ss, other);
  for (int l = 1; l < 4; ++l) {
    EXPECT_EQ(gates.Preference(l, x, xi).CountDifferences(
                  other.Preference(l, x, xi), 0.0f),
              0u);
  }
}

TEST(CheckpointTest, StationaryStateRoundTrip) {
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 150);
  std::stringstream ss;
  SaveStationaryState(ss, *w.stationary);
  const core::StationaryState loaded =
      LoadStationaryState(ss, w.data.graph);
  EXPECT_FLOAT_EQ(loaded.gamma(), w.stationary->gamma());
  const tensor::Matrix a = w.stationary->RowsForNodes({0, 7, 33});
  const tensor::Matrix b = loaded.RowsForNodes({0, 7, 33});
  EXPECT_EQ(a.CountDifferences(b, 0.0f), 0u);
}

TEST(CheckpointTest, FullDeploymentRoundTrip) {
  // Save everything, reload into fresh objects, and verify the engine
  // produces identical predictions — the "restart the serving process"
  // scenario.
  auto w = MakeSmallWorld(3);
  std::stringstream cls_ss, st_ss;
  SaveClassifierStack(cls_ss, *w.classifiers);
  SaveStationaryState(st_ss, *w.stationary);

  core::ClassifierStack loaded_cls(w.config, 5555);
  LoadClassifierStack(cls_ss, loaded_cls);
  const core::StationaryState loaded_st =
      LoadStationaryState(st_ss, w.data.graph);

  core::NaiEngine original(w.data.graph, w.data.features, w.config.gamma,
                           *w.classifiers, w.stationary.get(), nullptr);
  core::NaiEngine restored(w.data.graph, w.data.features, w.config.gamma,
                           loaded_cls, &loaded_st, nullptr);
  core::InferenceConfig cfg;
  cfg.nap = core::NapKind::kDistance;
  cfg.threshold = 0.3f;
  const auto a = original.Infer(w.all_nodes, cfg);
  const auto b = restored.Infer(w.all_nodes, cfg);
  EXPECT_EQ(a.predictions, b.predictions);
}

TEST(CheckpointTest, WrongArtifactKindRejected) {
  // Loading a gate-stack artifact as a classifier stack must fail on the
  // header tag, not mis-parse.
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 150);
  core::GateStack gates(3, 8, 7);
  std::stringstream ss;
  SaveGateStack(ss, gates);
  core::ClassifierStack fresh(w.config, 1);
  EXPECT_THROW(LoadClassifierStack(ss, fresh), std::runtime_error);
}

}  // namespace
}  // namespace nai::io
