// End-to-end bit-exactness of the mmap storage backend: engines serving an
// mmap-backed snapshot must produce the same bits — predictions, exit
// depths, MAC counters — as engines on the mem-backed snapshot of the same
// graph, unsharded and across shard counts, for every QoS-shaped config
// (speed-first, accuracy-first, INT8 throughput-first), and the delta
// ingestion path must accept an mmap base. Also covers concurrent serving
// off one shared mapping (the TSan stage runs this suite).

#include "src/storage/mmap_store.h"

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/inference.h"
#include "src/core/sharded_inference.h"
#include "src/graph/delta.h"
#include "src/graph/generators.h"
#include "src/graph/shard.h"
#include "src/serve/qos.h"
#include "src/serve/serving_engine.h"

namespace nai::core {
namespace {

constexpr int kDepth = 3;

struct World {
  models::ModelConfig config;
  std::unique_ptr<ClassifierStack> classifiers;
  std::unique_ptr<QuantizedClassifierStack> quantized;
  std::shared_ptr<const graph::GraphSnapshot> mem_snapshot;
  std::shared_ptr<const graph::GraphSnapshot> mmap_snapshot;
  std::string path;
  std::vector<std::int32_t> nodes;

  World() = default;
  // The user-declared destructor would suppress the implicit moves
  // MakeWorld's return needs; a moved-from World unlinks "" harmlessly.
  World(World&&) = default;
  World& operator=(World&&) = default;
  ~World() { ::unlink(path.c_str()); }
};

World MakeWorld(std::int64_t n = 240, std::uint64_t seed = 5) {
  graph::GeneratorConfig gen;
  gen.num_nodes = n;
  gen.num_edges = n * 4;
  gen.feature_dim = 16;
  gen.num_classes = 4;
  gen.seed = seed;
  graph::SyntheticDataset ds = graph::GenerateDataset(gen);

  World w;
  w.config.kind = models::ModelKind::kSgc;
  w.config.depth = kDepth;
  w.config.gamma = 0.5f;
  w.config.feature_dim = ds.features.cols();
  w.config.num_classes = ds.num_classes;
  w.config.hidden_dims = {16};
  // Untrained but seeded: deterministic weights are all bit-exactness
  // comparisons need.
  w.classifiers = std::make_unique<ClassifierStack>(w.config, 99);
  w.quantized = std::make_unique<QuantizedClassifierStack>(*w.classifiers);

  w.mem_snapshot = graph::MakeSnapshot(std::move(ds.graph),
                                       std::move(ds.features), w.config.gamma);
  w.path = "/tmp/nai_mmap_engine_test_" +
           std::to_string(static_cast<long>(::getpid()));
  storage::SaveStore(*w.mem_snapshot->graph_store,
                     *w.mem_snapshot->feature_store, w.path);
  auto store = std::make_shared<storage::MmapStore>(w.path);
  w.mmap_snapshot = graph::MakeSnapshotFromStore(store, store);

  for (std::int32_t v = 0; v < n; ++v) w.nodes.push_back(v);
  return w;
}

/// The three QoS-class-shaped configs every serving deployment runs.
std::vector<InferenceConfig> QosConfigs() {
  InferenceConfig speed;
  speed.nap = NapKind::kDistance;
  speed.threshold = 0.3f;
  speed.t_max = 1;
  InferenceConfig accuracy;
  accuracy.nap = NapKind::kDistance;
  accuracy.threshold = 0.05f;
  accuracy.t_max = 0;  // full depth
  InferenceConfig throughput = speed;
  throughput.int8_classifier = true;
  return {speed, accuracy, throughput};
}

void ExpectResultEq(const InferenceResult& a, const InferenceResult& b) {
  ASSERT_EQ(a.predictions, b.predictions);
  ASSERT_EQ(a.exit_depths, b.exit_depths);
  EXPECT_EQ(a.stats.propagation_macs, b.stats.propagation_macs);
  EXPECT_EQ(a.stats.nap_macs, b.stats.nap_macs);
  EXPECT_EQ(a.stats.stationary_macs, b.stats.stationary_macs);
  EXPECT_EQ(a.stats.classification_macs, b.stats.classification_macs);
  EXPECT_EQ(a.stats.exits_at_depth, b.stats.exits_at_depth);
}

TEST(MmapEngineTest, UnshardedBitExactAcrossBackendsAndQosConfigs) {
  World w = MakeWorld();
  EngineOptions options;
  options.quantized = w.quantized.get();
  NaiEngine mem_engine =
      NaiEngine::FromSnapshot(w.mem_snapshot, *w.classifiers, options);
  NaiEngine mmap_engine =
      NaiEngine::FromSnapshot(w.mmap_snapshot, *w.classifiers, options);
  EXPECT_EQ(w.mmap_snapshot->backend(), storage::StoreBackend::kMmap);

  for (const InferenceConfig& config : QosConfigs()) {
    ExpectResultEq(mmap_engine.Infer(w.nodes, config),
                   mem_engine.Infer(w.nodes, config));
  }
}

TEST(MmapEngineTest, MixedQosQueriesBitExactAcrossBackends) {
  World w = MakeWorld();
  EngineOptions options;
  options.quantized = w.quantized.get();
  NaiEngine mem_engine =
      NaiEngine::FromSnapshot(w.mem_snapshot, *w.classifiers, options);
  NaiEngine mmap_engine =
      NaiEngine::FromSnapshot(w.mmap_snapshot, *w.classifiers, options);

  const std::vector<InferenceConfig> configs = QosConfigs();
  std::vector<ConfiguredQuery> queries;
  for (std::size_t i = 0; i < w.nodes.size(); ++i) {
    queries.push_back({w.nodes[i], &configs[i % configs.size()]});
  }
  ExpectResultEq(mmap_engine.InferMixed(queries),
                 mem_engine.InferMixed(queries));
}

TEST(MmapEngineTest, ShardedBitExactAcrossShardCountsAndBackends) {
  World w = MakeWorld();
  EngineOptions options;
  options.quantized = w.quantized.get();
  NaiEngine reference =
      NaiEngine::FromSnapshot(w.mem_snapshot, *w.classifiers, options);

  for (const int shards : {1, 2, 4}) {
    ShardedNaiEngine sharded(
        w.mmap_snapshot, graph::MakeShards(w.mmap_snapshot->adj(), shards,
                                           kDepth),
        *w.classifiers, nullptr);
    sharded.AttachQuantizedClassifiers(w.quantized.get());
    for (const InferenceConfig& config : QosConfigs()) {
      const InferenceResult got = sharded.Infer(w.nodes, config);
      const InferenceResult want = reference.Infer(w.nodes, config);
      ASSERT_EQ(got.predictions, want.predictions) << shards << " shards";
      ASSERT_EQ(got.exit_depths, want.exit_depths) << shards << " shards";
    }
  }

  // The identity partition — the out-of-core configuration: one shard, no
  // materialized subgraph, the engine reads the mapped store directly.
  ShardedNaiEngine identity(
      w.mmap_snapshot,
      graph::IdentityShards(w.mmap_snapshot->num_nodes(), kDepth),
      *w.classifiers, nullptr);
  identity.AttachQuantizedClassifiers(w.quantized.get());
  for (const InferenceConfig& config : QosConfigs()) {
    const InferenceResult got = identity.Infer(w.nodes, config);
    const InferenceResult want = reference.Infer(w.nodes, config);
    ASSERT_EQ(got.predictions, want.predictions) << "identity shard";
    ASSERT_EQ(got.exit_depths, want.exit_depths) << "identity shard";
  }
}

TEST(MmapEngineTest, SnapshotBuilderIngestsAgainstMmapBase) {
  World w = MakeWorld();
  graph::GraphDelta delta;
  const std::int64_t n = w.mem_snapshot->num_nodes();
  const std::int32_t fresh = delta.AddNode(
      std::vector<float>(w.mem_snapshot->feature_dim(), 0.5f), n);
  delta.AddEdge(fresh, 7);
  delta.AddEdge(3, 150);
  delta.UpdateFeatures(20, std::vector<float>(
                               w.mem_snapshot->feature_dim(), -2.0f));

  // Apply against the mmap base and against the mem base: the two merged
  // snapshots must be bit-identical (both are mem-backed).
  graph::SnapshotBuilder from_mmap(w.mmap_snapshot);
  graph::SnapshotBuilder from_mem(w.mem_snapshot);
  const auto merged_a = from_mmap.Apply(delta);
  const auto merged_b = from_mem.Apply(delta);
  ASSERT_EQ(merged_a->num_nodes(), merged_b->num_nodes());

  NaiEngine engine_a =
      NaiEngine::FromSnapshot(merged_a, *w.classifiers);
  NaiEngine engine_b =
      NaiEngine::FromSnapshot(merged_b, *w.classifiers);
  std::vector<std::int32_t> all(static_cast<std::size_t>(n) + 1);
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<std::int32_t>(i);
  }
  InferenceConfig config;
  config.nap = NapKind::kDistance;
  config.threshold = 0.1f;
  ExpectResultEq(engine_a.Infer(all, config), engine_b.Infer(all, config));
}

TEST(MmapEngineTest, ServingStatsReportStoreResidency) {
  World w = MakeWorld();
  ShardedNaiEngine engine(
      w.mmap_snapshot,
      graph::IdentityShards(w.mmap_snapshot->num_nodes(), kDepth),
      *w.classifiers, nullptr);
  engine.AttachQuantizedClassifiers(w.quantized.get());
  serve::ServingEngine server(engine, serve::DefaultQosPolicyTable(kDepth),
                              {});
  const serve::ServingStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.store_backend, "mmap");
  EXPECT_GT(stats.store_mapped_bytes, 0);
  EXPECT_TRUE(stats.store_residency_exact);
  EXPECT_LE(stats.store_resident_bytes, stats.store_mapped_bytes);

  ShardedNaiEngine mem_engine(
      w.mem_snapshot,
      graph::IdentityShards(w.mem_snapshot->num_nodes(), kDepth),
      *w.classifiers, nullptr);
  mem_engine.AttachQuantizedClassifiers(w.quantized.get());
  serve::ServingEngine mem_server(mem_engine,
                                  serve::DefaultQosPolicyTable(kDepth), {});
  const serve::ServingStatsSnapshot mem_stats = mem_server.Stats();
  EXPECT_EQ(mem_stats.store_backend, "mem");
  EXPECT_GT(mem_stats.store_mapped_bytes, 0);
  EXPECT_FALSE(mem_stats.store_residency_exact);
  EXPECT_EQ(mem_stats.store_resident_bytes, mem_stats.store_mapped_bytes);
}

TEST(MmapEngineTest, ConcurrentShardEnginesShareOneMapping) {
  World w = MakeWorld();
  // Two independent engines over the same snapshot (same MmapStore), each
  // serving from its own thread — the read-share pattern TSan must bless.
  NaiEngine a = NaiEngine::FromSnapshot(w.mmap_snapshot, *w.classifiers);
  NaiEngine b = NaiEngine::FromSnapshot(w.mmap_snapshot, *w.classifiers);
  InferenceConfig config;
  config.nap = NapKind::kDistance;
  config.threshold = 0.1f;
  InferenceResult ra, rb;
  std::thread ta([&] { ra = a.Infer(w.nodes, config); });
  std::thread tb([&] { rb = b.Infer(w.nodes, config); });
  ta.join();
  tb.join();
  ExpectResultEq(ra, rb);
}

}  // namespace
}  // namespace nai::core
