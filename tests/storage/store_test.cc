// Tests of the storage layer: the mmap on-disk layout must round-trip a
// mem store bit-for-bit, reject wrong-magic / truncated / corrupt files,
// account its working set, and the scaled streaming generator must emit
// exactly what an in-RAM build of the same graph would have stored.

#include "src/storage/mmap_store.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/normalize.h"
#include "src/runtime/error.h"
#include "src/storage/mem_store.h"

namespace nai::storage {
namespace {

std::string TempPath(const char* tag) {
  return "/tmp/nai_store_test_" + std::string(tag) + "_" +
         std::to_string(static_cast<long>(::getpid()));
}

/// Removes the file when the test scope ends, pass or fail.
struct PathGuard {
  std::string path;
  ~PathGuard() { ::unlink(path.c_str()); }
};

std::shared_ptr<MemStore> MakeMemStore(std::int64_t n = 200,
                                       std::uint64_t seed = 3) {
  graph::GeneratorConfig cfg;
  cfg.num_nodes = n;
  cfg.num_edges = n * 4;
  cfg.feature_dim = 12;
  cfg.seed = seed;
  graph::SyntheticDataset ds = graph::GenerateDataset(cfg);
  return std::make_shared<MemStore>(std::move(ds.graph),
                                    std::move(ds.features), 0.5f);
}

void ExpectViewEq(graph::CsrView a, graph::CsrView b) {
  ASSERT_EQ(a.rows, b.rows);
  ASSERT_EQ(a.cols, b.cols);
  for (std::int64_t v = 0; v <= a.rows; ++v) {
    ASSERT_EQ(a.row_ptr[v], b.row_ptr[v]) << "row_ptr " << v;
  }
  const std::int64_t nnz = a.row_ptr[a.rows];
  for (std::int64_t p = 0; p < nnz; ++p) {
    ASSERT_EQ(a.col_idx[p], b.col_idx[p]) << "col " << p;
  }
  ASSERT_EQ(a.values == nullptr, b.values == nullptr);
  if (a.values != nullptr) {
    for (std::int64_t p = 0; p < nnz; ++p) {
      ASSERT_EQ(a.values[p], b.values[p]) << "value " << p;
    }
  }
}

TEST(MmapStoreTest, RoundTripIsBitExact) {
  auto mem = MakeMemStore();
  PathGuard file{TempPath("roundtrip")};
  SaveStore(*mem, *mem, file.path);
  MmapStore mapped(file.path);  // verify_data on: full checksum must hold

  EXPECT_EQ(mapped.num_nodes(), mem->num_nodes());
  EXPECT_EQ(mapped.num_edges(), mem->num_edges());
  EXPECT_EQ(mapped.gamma(), mem->gamma());
  EXPECT_EQ(mapped.dim(), mem->dim());
  EXPECT_EQ(mapped.backend(), StoreBackend::kMmap);
  ExpectViewEq(mapped.adj(), mem->adj());
  ExpectViewEq(mapped.norm_adj(), mem->norm_adj());
  for (std::int64_t v = 0; v < mem->num_nodes(); ++v) {
    const float* a = mapped.row(v);
    const float* b = mem->row(v);
    for (std::size_t f = 0; f < mem->dim(); ++f) {
      ASSERT_EQ(a[f], b[f]) << "feature (" << v << ", " << f << ")";
    }
  }
  ASSERT_NE(mapped.stationary_pooled(), nullptr);
  const tensor::Matrix& gs = *mapped.stationary_pooled();
  const tensor::Matrix& ms = *mem->stationary_pooled();
  ASSERT_EQ(gs.cols(), ms.cols());
  for (std::size_t f = 0; f < ms.cols(); ++f) {
    ASSERT_EQ(gs.data()[f], ms.data()[f]) << "stationary " << f;
  }
}

TEST(MmapStoreTest, RejectsMissingWrongMagicAndTruncated) {
  EXPECT_THROW(MmapStore("/tmp/nai_store_test_does_not_exist"), IoError);

  auto mem = MakeMemStore(64);
  PathGuard file{TempPath("reject")};
  SaveStore(*mem, *mem, file.path);

  // Wrong magic: flip the first byte.
  {
    std::FILE* f = std::fopen(file.path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    char c;
    ASSERT_EQ(std::fread(&c, 1, 1, f), 1u);
    c ^= 0x40;
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fwrite(&c, 1, 1, f), 1u);
    std::fclose(f);
    EXPECT_THROW(MmapStore(file.path), IoError);
    // Restore.
    f = std::fopen(file.path.c_str(), "r+b");
    c ^= 0x40;
    ASSERT_EQ(std::fwrite(&c, 1, 1, f), 1u);
    std::fclose(f);
  }
  MmapStore(file.path);  // restored file opens again

  // Truncated: copy all but the last 64 bytes.
  {
    std::FILE* in = std::fopen(file.path.c_str(), "rb");
    ASSERT_NE(in, nullptr);
    std::fseek(in, 0, SEEK_END);
    const long size = std::ftell(in);
    std::fseek(in, 0, SEEK_SET);
    std::vector<char> bytes(static_cast<std::size_t>(size));
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), in), bytes.size());
    std::fclose(in);
    PathGuard trunc{TempPath("truncated")};
    std::FILE* out = std::fopen(trunc.path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size() - 64, out);
    std::fclose(out);
    EXPECT_THROW(MmapStore(trunc.path), IoError);
  }
}

TEST(MmapStoreTest, DataCorruptionCaughtByChecksumOnly) {
  auto mem = MakeMemStore(64);
  PathGuard file{TempPath("corrupt")};
  SaveStore(*mem, *mem, file.path);

  // Flip one bit in the feature section (well past the header).
  {
    std::FILE* f = std::fopen(file.path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, size - 128, SEEK_SET);
    char c;
    ASSERT_EQ(std::fread(&c, 1, 1, f), 1u);
    c ^= 0x01;
    std::fseek(f, size - 128, SEEK_SET);
    ASSERT_EQ(std::fwrite(&c, 1, 1, f), 1u);
    std::fclose(f);
  }
  EXPECT_THROW(MmapStore(file.path), IoError);  // verify_data default on
  MmapStore::Options lazy;
  lazy.verify_data = false;
  MmapStore(file.path, lazy);  // header is intact, so a lazy open succeeds
}

TEST(MmapStoreTest, ResidencyPartitionsTheFileWithoutDoubleCounting) {
  auto mem = MakeMemStore();
  PathGuard file{TempPath("residency")};
  SaveStore(*mem, *mem, file.path);
  MmapStore::Options lazy;
  lazy.verify_data = false;
  MmapStore mapped(file.path, lazy);

  const ResidencyInfo adj = mapped.AdjacencyResidency();
  const ResidencyInfo feat = mapped.FeatureResidency();
  EXPECT_TRUE(adj.exact);
  EXPECT_TRUE(feat.exact);
  EXPECT_GT(adj.mapped_bytes, 0);
  EXPECT_GT(feat.mapped_bytes, 0);
  EXPECT_LE(adj.resident_bytes, adj.mapped_bytes);
  EXPECT_LE(feat.resident_bytes, feat.mapped_bytes);

  // The two sections partition the data region: together they cover the
  // whole file except the (page-rounded) header, with no overlap.
  ResidencyInfo total = adj;
  total += feat;
  const MmapLayout layout =
      MmapLayout::Make(mapped.num_nodes(), 2 * mapped.num_edges(),
                       static_cast<std::int64_t>(mapped.dim()));
  EXPECT_LE(total.mapped_bytes, layout.file_size);
  EXPECT_GE(total.mapped_bytes, layout.file_size - layout.adj_row_ptr_off);

  // In-memory stores: everything is resident by definition, nothing was
  // measured.
  const ResidencyInfo mem_adj = mem->AdjacencyResidency();
  const ResidencyInfo mem_feat = mem->FeatureResidency();
  EXPECT_FALSE(mem_adj.exact);
  EXPECT_FALSE(mem_feat.exact);
  EXPECT_EQ(mem_adj.resident_bytes, mem_adj.mapped_bytes);
  EXPECT_EQ(mem_feat.resident_bytes, mem_feat.mapped_bytes);
  EXPECT_GT(mem_adj.mapped_bytes, 0);
  EXPECT_GT(mem_feat.mapped_bytes, 0);
}

TEST(StoreBackendTest, ParseAndDefaultHonorNaiStore) {
  EXPECT_EQ(ParseBackend("mem"), StoreBackend::kMem);
  EXPECT_EQ(ParseBackend("mmap"), StoreBackend::kMmap);
  EXPECT_THROW(ParseBackend("bogus"), ValidationError);

  const char* saved = std::getenv("NAI_STORE");
  const std::string restore = saved != nullptr ? saved : "";
  ::setenv("NAI_STORE", "mmap", 1);
  EXPECT_EQ(DefaultBackend(), StoreBackend::kMmap);
  ::setenv("NAI_STORE", "mem", 1);
  EXPECT_EQ(DefaultBackend(), StoreBackend::kMem);
  ::unsetenv("NAI_STORE");
  EXPECT_EQ(DefaultBackend(), StoreBackend::kMem);
  if (saved != nullptr) ::setenv("NAI_STORE", restore.c_str(), 1);
}

TEST(GenerateScaledTest, StreamedStoreMatchesFromRamRebuild) {
  graph::ScaledGraphConfig cfg;
  cfg.num_nodes = 500;
  cfg.feature_dim = 8;
  cfg.max_chords = 16;
  cfg.seed = 11;
  PathGuard file{TempPath("scaled")};
  const std::int64_t m = graph::GenerateScaled(cfg, file.path);
  MmapStore mapped(file.path);  // checksum verified
  EXPECT_EQ(mapped.num_nodes(), cfg.num_nodes);
  EXPECT_EQ(mapped.num_edges(), m);
  EXPECT_GE(m, cfg.num_nodes);  // the ring alone is n edges

  // Rebuild the same graph in RAM from the streamed adjacency and compare
  // every derived artifact bit-for-bit.
  const graph::CsrView adj = mapped.adj();
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int64_t u = 0; u < adj.rows; ++u) {
    for (std::int64_t p = adj.row_ptr[u]; p < adj.row_ptr[u + 1]; ++p) {
      if (adj.col_idx[p] > u) {
        edges.emplace_back(static_cast<std::int32_t>(u), adj.col_idx[p]);
      }
    }
  }
  const graph::Graph rebuilt =
      graph::Graph::FromEdges(cfg.num_nodes, edges);
  EXPECT_EQ(rebuilt.num_edges(), m);
  // The store contract hands out the adjacency unweighted; null the raw
  // graph's all-ones weights to compare structure bit-for-bit.
  graph::CsrView rebuilt_adj = rebuilt.adjacency().view();
  rebuilt_adj.values = nullptr;
  ExpectViewEq(mapped.adj(), rebuilt_adj);
  const graph::Csr norm = graph::NormalizedAdjacency(rebuilt, cfg.gamma);
  ExpectViewEq(mapped.norm_adj(), norm.view());

  tensor::Matrix features(cfg.num_nodes, cfg.feature_dim);
  for (std::int64_t v = 0; v < cfg.num_nodes; ++v) {
    std::memcpy(features.row(v), mapped.row(v),
                sizeof(float) * mapped.dim());
  }
  const tensor::Matrix pooled =
      graph::PooledStationaryVector(rebuilt, features, cfg.gamma);
  ASSERT_NE(mapped.stationary_pooled(), nullptr);
  for (std::size_t f = 0; f < pooled.cols(); ++f) {
    ASSERT_EQ(mapped.stationary_pooled()->data()[f], pooled.data()[f])
        << "stationary " << f;
  }
}

TEST(GenerateScaledTest, RejectsInvalidConfigs) {
  graph::ScaledGraphConfig cfg;
  cfg.num_nodes = 4;
  EXPECT_THROW(graph::GenerateScaled(cfg, "/tmp/never_written"),
               ValidationError);
  cfg.num_nodes = 100;
  cfg.feature_dim = 0;
  EXPECT_THROW(graph::GenerateScaled(cfg, "/tmp/never_written"),
               ValidationError);
  cfg.feature_dim = 4;
  cfg.power_law_exponent = 1.0f;
  EXPECT_THROW(graph::GenerateScaled(cfg, "/tmp/never_written"),
               ValidationError);
}

TEST(MmapStoreTest, ConcurrentReadersShareOneMapping) {
  auto mem = MakeMemStore(300);
  PathGuard file{TempPath("concurrent")};
  SaveStore(*mem, *mem, file.path);
  const MmapStore mapped(file.path);

  // Readers touch rows, gathers, views and residency concurrently — the
  // TSan stage runs this suite to prove the store is read-share safe.
  std::vector<std::thread> readers;
  std::vector<double> sums(4, 0.0);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      double acc = 0.0;
      std::vector<std::int32_t> ids;
      for (std::int32_t v = t; v < mapped.num_nodes(); v += 4) {
        acc += mapped.row(v)[0];
        ids.push_back(v);
      }
      const tensor::Matrix gathered = mapped.GatherRows(ids);
      acc += gathered.data()[0];
      const graph::CsrView norm = mapped.norm_adj();
      acc += norm.values[norm.row_ptr[t + 1] - 1];
      const ResidencyInfo r = mapped.AdjacencyResidency();
      acc += static_cast<double>(r.resident_bytes > 0);
      sums[static_cast<std::size_t>(t)] = acc;
    });
  }
  for (std::thread& th : readers) th.join();
  for (int t = 0; t < 4; ++t) {
    std::vector<std::int32_t> ids;
    double acc = 0.0;
    for (std::int32_t v = t; v < mapped.num_nodes(); v += 4) {
      acc += mapped.row(v)[0];
      ids.push_back(v);
    }
    acc += mapped.GatherRows(ids).data()[0];
    const graph::CsrView norm = mapped.norm_adj();
    acc += norm.values[norm.row_ptr[t + 1] - 1];
    acc += 1.0;
    EXPECT_EQ(sums[static_cast<std::size_t>(t)], acc) << "reader " << t;
  }
}

}  // namespace
}  // namespace nai::storage
