// Tests of the delta log and the incremental SnapshotBuilder: every Apply
// must be bit-identical to a from-scratch rebuild of the merged graph
// (MergeFromScratch), validation must reject malformed deltas without
// touching the base, and the copy-vs-recompute accounting must match the
// dirty-row rule (a normalized row is rebuilt iff a degree in it changed).

#include "src/graph/delta.h"

#include <cstdint>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/graph/generators.h"

namespace nai::graph {
namespace {

void ExpectCsrEq(const Csr& a, const Csr& b) {
  ASSERT_EQ(a.rows, b.rows);
  ASSERT_EQ(a.cols, b.cols);
  ASSERT_EQ(a.row_ptr, b.row_ptr);
  ASSERT_EQ(a.col_idx, b.col_idx);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    ASSERT_EQ(a.values[i], b.values[i]) << "value " << i;
  }
}

void ExpectMatrixEq(const tensor::Matrix& a, const tensor::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  const std::size_t n = a.rows() * a.cols();
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

void ExpectSnapshotEq(const GraphSnapshot& a, const GraphSnapshot& b) {
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.gamma, b.gamma);
  ExpectCsrEq(a.graph().adjacency(), b.graph().adjacency());
  ExpectMatrixEq(a.features(), b.features());
  ExpectCsrEq(a.norm_csr(), b.norm_csr());
  ExpectMatrixEq(a.stationary_pooled(), b.stationary_pooled());
}

std::shared_ptr<const GraphSnapshot> MakeBase(std::int64_t num_nodes = 120,
                                              std::uint64_t seed = 7) {
  GeneratorConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.num_edges = num_nodes * 4;
  cfg.feature_dim = 8;
  cfg.seed = seed;
  SyntheticDataset ds = GenerateDataset(cfg);
  return MakeSnapshot(std::move(ds.graph), std::move(ds.features), 0.5f);
}

std::vector<float> Row(std::size_t width, float fill) {
  return std::vector<float>(width, fill);
}

TEST(GraphDeltaTest, EmptyDeltaIsIdentityExceptVersion) {
  auto base = MakeBase();
  SnapshotBuilder builder(base);
  auto next = builder.Apply(GraphDelta{});
  EXPECT_EQ(next->version, base->version + 1);
  ExpectCsrEq(next->graph().adjacency(), base->graph().adjacency());
  ExpectMatrixEq(next->features(), base->features());
  ExpectCsrEq(next->norm_csr(), base->norm_csr());
  ExpectMatrixEq(next->stationary_pooled(), base->stationary_pooled());
  const SnapshotBuildStats& stats = builder.last_stats();
  EXPECT_EQ(stats.new_nodes, 0);
  EXPECT_EQ(stats.new_edges, 0);
  EXPECT_EQ(stats.norm_rows_recomputed, 0);
  EXPECT_EQ(stats.norm_rows_copied, base->graph().num_nodes());
}

TEST(GraphDeltaTest, EdgeInsertMatchesFromScratch) {
  auto base = MakeBase();
  GraphDelta delta;
  delta.AddEdge(3, 90);
  delta.AddEdge(17, 41);
  SnapshotBuilder builder(base);
  auto incremental = builder.Apply(delta);
  auto scratch = MergeFromScratch(*base, {delta});
  ExpectSnapshotEq(*incremental, *scratch);
}

TEST(GraphDeltaTest, NodeInsertAndFeatureUpdateMatchFromScratch) {
  auto base = MakeBase();
  const std::size_t f = base->features().cols();
  const std::int64_t n = base->graph().num_nodes();
  GraphDelta delta;
  const std::int32_t a = delta.AddNode(Row(f, 0.25f), n);
  const std::int32_t b = delta.AddNode(Row(f, -1.5f), n);
  delta.AddEdge(a, 5);
  delta.AddEdge(a, b);  // edge between two new nodes
  delta.UpdateFeatures(12, Row(f, 3.0f));
  // An update may also target a node inserted by the same delta; it wins
  // over the insert row.
  delta.UpdateFeatures(b, Row(f, 9.0f));
  SnapshotBuilder builder(base);
  auto incremental = builder.Apply(delta);
  auto scratch = MergeFromScratch(*base, {delta});
  ExpectSnapshotEq(*incremental, *scratch);
  EXPECT_EQ(incremental->graph().num_nodes(), n + 2);
  EXPECT_EQ(incremental->features().data()[static_cast<std::size_t>(b) * f],
            9.0f);
  EXPECT_TRUE(incremental->graph().HasEdge(a, b));
}

TEST(GraphDeltaTest, ChainedAppliesMatchOneFromScratchMerge) {
  auto base = MakeBase(150, 21);
  const std::size_t f = base->features().cols();
  std::vector<GraphDelta> deltas;
  std::int64_t n = base->graph().num_nodes();
  for (int d = 0; d < 4; ++d) {
    GraphDelta delta;
    const std::int32_t fresh = delta.AddNode(Row(f, 0.1f * (d + 1)), n);
    delta.AddEdge(fresh, d * 7);
    delta.AddEdge(d * 3 + 1, d * 11 + 2);
    delta.UpdateFeatures(d * 5, Row(f, static_cast<float>(d)));
    n += 1;
    deltas.push_back(std::move(delta));
  }
  SnapshotBuilder builder(base);
  std::shared_ptr<const GraphSnapshot> incremental;
  for (const GraphDelta& delta : deltas) incremental = builder.Apply(delta);
  EXPECT_EQ(incremental->version, base->version + deltas.size());
  auto scratch = MergeFromScratch(*base, deltas);
  ExpectSnapshotEq(*incremental, *scratch);
}

TEST(GraphDeltaTest, DropsSelfLoopsDuplicatesAndExistingEdges) {
  auto base = MakeBase();
  // Find one existing edge to re-insert.
  std::int32_t u = 0;
  while (base->graph().degree(u) == 0) ++u;
  const std::int32_t v = *base->graph().neighbors_begin(u);
  GraphDelta delta;
  delta.AddEdge(8, 8);    // self-loop: dropped
  delta.AddEdge(u, v);    // already present: dropped
  delta.AddEdge(v, u);    // same, reversed: dropped
  delta.AddEdge(2, 97);   // kept
  delta.AddEdge(97, 2);   // duplicate of the kept one: dropped
  SnapshotBuilder builder(base);
  auto next = builder.Apply(delta);
  EXPECT_EQ(builder.last_stats().new_edges, 1);
  EXPECT_EQ(next->graph().num_edges(), base->graph().num_edges() + 1);
  ExpectSnapshotEq(*next, *MergeFromScratch(*base, {delta}));
}

TEST(GraphDeltaTest, ValidationThrowsAndLeavesBaseUntouched) {
  auto base = MakeBase();
  const std::size_t f = base->features().cols();
  const std::int32_t n = static_cast<std::int32_t>(base->graph().num_nodes());
  SnapshotBuilder builder(base);

  GraphDelta bad_edge;
  bad_edge.AddEdge(0, n);  // out of range with no node insert
  EXPECT_THROW(builder.Apply(bad_edge), std::invalid_argument);

  GraphDelta bad_width;
  bad_width.AddNode(Row(f + 1, 1.0f), n);
  EXPECT_THROW(builder.Apply(bad_width), std::invalid_argument);

  GraphDelta bad_update;
  bad_update.UpdateFeatures(n + 3, Row(f, 1.0f));
  EXPECT_THROW(builder.Apply(bad_update), std::invalid_argument);

  GraphDelta bad_update_width;
  bad_update_width.UpdateFeatures(0, Row(f - 1, 1.0f));
  EXPECT_THROW(builder.Apply(bad_update_width), std::invalid_argument);

  // The builder's base is unchanged: a valid empty apply still starts from
  // the original snapshot.
  EXPECT_EQ(builder.base().get(), base.get());
  auto next = builder.Apply(GraphDelta{});
  EXPECT_EQ(next->version, base->version + 1);
  ExpectCsrEq(next->norm_csr(), base->norm_csr());
}

TEST(GraphDeltaTest, RecomputesExactlyDirtyRowsOnPathGraph) {
  // Path 0-1-...-19, insert edge {2, 10}: degrees of 2 and 10 change, so
  // the dirty set is {2, 10} plus their merged-graph neighbors
  // {1, 3, 9, 11} — 6 recomputed rows, the rest copied verbatim.
  Graph path = PathGraph(20);
  tensor::Matrix feats(20, 4);
  for (std::size_t i = 0; i < 20 * 4; ++i) {
    feats.data()[i] = static_cast<float>(i) * 0.01f;
  }
  auto base = MakeSnapshot(std::move(path), std::move(feats), 0.5f);
  GraphDelta delta;
  delta.AddEdge(2, 10);
  SnapshotBuilder builder(base);
  auto next = builder.Apply(delta);
  const SnapshotBuildStats& stats = builder.last_stats();
  EXPECT_EQ(stats.norm_rows_recomputed, 6);
  EXPECT_EQ(stats.norm_rows_copied, 14);
  EXPECT_EQ(stats.norm_rows_recomputed + stats.norm_rows_copied,
            next->graph().num_nodes());
  ExpectSnapshotEq(*next, *MergeFromScratch(*base, {delta}));
}

TEST(GraphDeltaTest, StaleNodesCoverTheHorizonNeighborhood) {
  // Path graph, edge inserted at {4, 5}... already exists; use {0, 9} on a
  // 10-path. Touched set {0, 9}; with horizon 2 the stale set is
  // {0, 1, 2} from 0 and {9, 8, 7} from 9 = 6 nodes.
  auto base = MakeSnapshot(PathGraph(10), tensor::Matrix(10, 2), 0.5f);
  GraphDelta delta;
  delta.AddEdge(0, 9);
  SnapshotBuilder builder(base, /*stale_horizon=*/2);
  builder.Apply(delta);
  // BFS runs on the *merged* graph, where 0 and 9 are adjacent: from {0, 9}
  // two hops reach {0,1,2,9,8,7} (the new edge adds no extra nodes).
  EXPECT_EQ(builder.last_stats().stale_nodes, 6);
}

TEST(GraphDeltaTest, NullBaseThrows) {
  EXPECT_THROW(SnapshotBuilder(nullptr), std::invalid_argument);
}

TEST(GraphDeltaTest, MakeSnapshotBuildsVersionZeroArtifacts) {
  auto base = MakeBase();
  EXPECT_EQ(base->version, 0u);
  EXPECT_EQ(base->norm_csr().rows, base->graph().num_nodes());
  EXPECT_EQ(base->stationary_pooled().rows(), 1u);
  EXPECT_EQ(base->stationary_pooled().cols(), base->features().cols());
}

}  // namespace
}  // namespace nai::graph
