#include "src/graph/graph.h"

#include "gtest/gtest.h"
#include "src/graph/generators.h"

namespace nai::graph {
namespace {

TEST(GraphTest, FromEdgesBasic) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, SelfLoopsDropped) {
  const Graph g = Graph::FromEdges(3, {{0, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, DuplicateEdgesCollapse) {
  const Graph g = Graph::FromEdges(3, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
  // Adjacency values stay 1.0 despite duplicates.
  for (const float v : g.adjacency().values) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(GraphTest, NeighborsSorted) {
  const Graph g = Graph::FromEdges(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  std::vector<std::int32_t> nbrs(g.neighbors_begin(2), g.neighbors_end(2));
  EXPECT_EQ(nbrs, (std::vector<std::int32_t>{0, 1, 3, 4}));
}

TEST(GraphTest, AdjacencyIsSymmetric) {
  const Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 3}});
  for (std::int32_t v = 0; v < g.num_nodes(); ++v) {
    for (const auto* it = g.neighbors_begin(v); it != g.neighbors_end(v);
         ++it) {
      EXPECT_TRUE(g.HasEdge(*it, v));
    }
  }
}

TEST(GraphTest, IsolatedNodes) {
  const Graph g = Graph::FromEdges(5, {{0, 1}});
  EXPECT_EQ(g.degree(4), 0);
  EXPECT_EQ(g.neighbors_begin(4), g.neighbors_end(4));
}

TEST(GraphTest, InducedSubgraph) {
  // Path 0-1-2-3; induce on {0, 1, 3}: only edge 0-1 survives.
  const Graph g = PathGraph(4);
  const Graph sub = g.InducedSubgraph({0, 1, 3});
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_edges(), 1);
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_FALSE(sub.HasEdge(1, 2));
}

TEST(GraphTest, ConnectedComponents) {
  const Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}});
  const auto comp = g.ConnectedComponents();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[3]);
}

TEST(GraphTest, ToyGenerators) {
  EXPECT_EQ(PathGraph(5).num_edges(), 4);
  EXPECT_EQ(CycleGraph(5).num_edges(), 5);
  EXPECT_EQ(StarGraph(6).num_edges(), 6);
  EXPECT_EQ(StarGraph(6).degree(0), 6);
  EXPECT_EQ(CompleteGraph(5).num_edges(), 10);
  EXPECT_EQ(GridGraph(3, 4).num_edges(), 3 * 3 + 2 * 4);
  EXPECT_EQ(GridGraph(3, 4).num_nodes(), 12);
}

TEST(GraphTest, CycleIsTwoRegular) {
  const Graph g = CycleGraph(7);
  for (std::int32_t v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2);
}

TEST(GraphTest, DegreeSumIsTwiceEdgeCount) {
  const Graph g = GridGraph(4, 5);
  std::int64_t degree_sum = 0;
  for (std::int32_t v = 0; v < g.num_nodes(); ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

TEST(GraphTest, CompleteGraphHasAllEdges) {
  const Graph g = CompleteGraph(6);
  for (std::int32_t u = 0; u < 6; ++u) {
    EXPECT_EQ(g.degree(u), 5);
    for (std::int32_t v = 0; v < 6; ++v) {
      EXPECT_EQ(g.HasEdge(u, v), u != v);
    }
  }
}

}  // namespace
}  // namespace nai::graph
