#include "src/graph/partition.h"

#include <limits>
#include <set>
#include <stdexcept>

#include "gtest/gtest.h"
#include "src/graph/generators.h"

namespace nai::graph {
namespace {

class PartitionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig cfg;
    cfg.num_nodes = 500;
    cfg.num_edges = 2000;
    cfg.seed = 3;
    ds_ = GenerateDataset(cfg);
  }
  SyntheticDataset ds_;
};

TEST_F(PartitionTest, SizesMatchFractions) {
  const InductiveSplit s = MakeInductiveSplit(ds_.graph, 0.6, 0.5, 0.2, 7);
  EXPECT_EQ(s.train_nodes.size(), 300u);
  EXPECT_EQ(s.test_nodes.size(), 200u);
  EXPECT_EQ(s.labeled_nodes.size(), 150u);
  EXPECT_EQ(s.val_nodes.size(), 60u);
}

TEST_F(PartitionTest, DisjointAndComplete) {
  const InductiveSplit s = MakeInductiveSplit(ds_.graph, 0.7, 0.5, 0.1, 9);
  std::set<std::int32_t> train(s.train_nodes.begin(), s.train_nodes.end());
  std::set<std::int32_t> test(s.test_nodes.begin(), s.test_nodes.end());
  EXPECT_EQ(train.size() + test.size(), 500u);
  for (const auto v : test) EXPECT_FALSE(train.count(v));
}

TEST_F(PartitionTest, LabeledAndValSubsetsOfTrainAndDisjoint) {
  const InductiveSplit s = MakeInductiveSplit(ds_.graph, 0.7, 0.4, 0.3, 11);
  std::set<std::int32_t> train(s.train_nodes.begin(), s.train_nodes.end());
  std::set<std::int32_t> labeled(s.labeled_nodes.begin(),
                                 s.labeled_nodes.end());
  for (const auto v : s.labeled_nodes) EXPECT_TRUE(train.count(v));
  for (const auto v : s.val_nodes) {
    EXPECT_TRUE(train.count(v));
    EXPECT_FALSE(labeled.count(v));
  }
}

TEST_F(PartitionTest, TrainGraphExcludesTestEdges) {
  const InductiveSplit s = MakeInductiveSplit(ds_.graph, 0.5, 0.5, 0.1, 13);
  EXPECT_EQ(s.train_graph.num_nodes(),
            static_cast<std::int64_t>(s.train_nodes.size()));
  // Every edge of the train graph maps to an edge of the full graph between
  // train nodes.
  for (std::int32_t v = 0; v < s.train_graph.num_nodes(); ++v) {
    for (const auto* it = s.train_graph.neighbors_begin(v);
         it != s.train_graph.neighbors_end(v); ++it) {
      EXPECT_TRUE(ds_.graph.HasEdge(s.train_nodes[v], s.train_nodes[*it]));
    }
  }
}

TEST_F(PartitionTest, LocalIndicesConsistent) {
  const InductiveSplit s = MakeInductiveSplit(ds_.graph, 0.6, 0.5, 0.2, 15);
  ASSERT_EQ(s.labeled_local.size(), s.labeled_nodes.size());
  for (std::size_t i = 0; i < s.labeled_local.size(); ++i) {
    EXPECT_EQ(s.train_nodes[s.labeled_local[i]], s.labeled_nodes[i]);
  }
  ASSERT_EQ(s.val_local.size(), s.val_nodes.size());
  for (std::size_t i = 0; i < s.val_local.size(); ++i) {
    EXPECT_EQ(s.train_nodes[s.val_local[i]], s.val_nodes[i]);
  }
}

TEST_F(PartitionTest, DeterministicGivenSeed) {
  const InductiveSplit a = MakeInductiveSplit(ds_.graph, 0.6, 0.5, 0.2, 42);
  const InductiveSplit b = MakeInductiveSplit(ds_.graph, 0.6, 0.5, 0.2, 42);
  EXPECT_EQ(a.train_nodes, b.train_nodes);
  EXPECT_EQ(a.labeled_nodes, b.labeled_nodes);
  EXPECT_EQ(a.val_nodes, b.val_nodes);
}

TEST_F(PartitionTest, DifferentSeedsDiffer) {
  const InductiveSplit a = MakeInductiveSplit(ds_.graph, 0.6, 0.5, 0.2, 1);
  const InductiveSplit b = MakeInductiveSplit(ds_.graph, 0.6, 0.5, 0.2, 2);
  EXPECT_NE(a.train_nodes, b.train_nodes);
}

TEST_F(PartitionTest, AllNodesTrainFraction) {
  // train_fraction = 1 keeps every node (and all edges) in the train graph.
  const InductiveSplit s = MakeInductiveSplit(ds_.graph, 1.0, 0.5, 0.1, 21);
  EXPECT_EQ(s.train_nodes.size(), 500u);
  EXPECT_TRUE(s.test_nodes.empty());
  EXPECT_EQ(s.train_graph.num_edges(), ds_.graph.num_edges());
}

// --- Release-mode hardening: invalid fractions must throw, never read past
// --- the shuffled buffers. These used to be asserts (no-ops under NDEBUG).

TEST_F(PartitionTest, InvalidTrainFractionThrows) {
  EXPECT_THROW(MakeInductiveSplit(ds_.graph, 0.0, 0.5, 0.1, 1),
               std::invalid_argument);
  EXPECT_THROW(MakeInductiveSplit(ds_.graph, -0.3, 0.5, 0.1, 1),
               std::invalid_argument);
  EXPECT_THROW(MakeInductiveSplit(ds_.graph, 1.5, 0.5, 0.1, 1),
               std::invalid_argument);
  EXPECT_THROW(MakeInductiveSplit(
                   ds_.graph, std::numeric_limits<double>::quiet_NaN(), 0.5,
                   0.1, 1),
               std::invalid_argument);
}

TEST_F(PartitionTest, InvalidLabeledOrValFractionThrows) {
  EXPECT_THROW(MakeInductiveSplit(ds_.graph, 0.6, 0.0, 0.1, 1),
               std::invalid_argument);
  EXPECT_THROW(MakeInductiveSplit(ds_.graph, 0.6, 1.2, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW(MakeInductiveSplit(ds_.graph, 0.6, 0.5, -0.1, 1),
               std::invalid_argument);
  // The NDEBUG out-of-range reproducer: labeled + val > 1 used to slice
  // train_shuffled past its end in release builds.
  EXPECT_THROW(MakeInductiveSplit(ds_.graph, 0.6, 0.7, 0.7, 1),
               std::invalid_argument);
  EXPECT_THROW(MakeInductiveSplit(
                   ds_.graph, 0.6, 0.5,
                   std::numeric_limits<double>::quiet_NaN(), 1),
               std::invalid_argument);
}

TEST_F(PartitionTest, EmptyGraphThrows) {
  EXPECT_THROW(MakeInductiveSplit(Graph(), 0.6, 0.5, 0.1, 1),
               std::invalid_argument);
}

// --- Degenerate-split safety: tiny graphs and exact boundaries.

TEST_F(PartitionTest, SingleNodeGraphSplitsSanely) {
  // n = 1: the max(1, ...) floors leave one train node (= the labeled
  // node), no test nodes, no val nodes.
  const Graph g = Graph::FromEdges(1, {});
  const InductiveSplit s = MakeInductiveSplit(g, 0.5, 1.0, 0.0, 7);
  EXPECT_EQ(s.train_nodes, (std::vector<std::int32_t>{0}));
  EXPECT_EQ(s.labeled_nodes, (std::vector<std::int32_t>{0}));
  EXPECT_TRUE(s.test_nodes.empty());
  EXPECT_TRUE(s.val_nodes.empty());
  EXPECT_EQ(s.train_graph.num_nodes(), 1);
  EXPECT_EQ(s.labeled_local, (std::vector<std::int32_t>{0}));
}

TEST_F(PartitionTest, TinyGraphValNeverOverflowsTrain) {
  // n_train = 1 with a large val_fraction: the raw n_val floor could only
  // fit by eating into the labeled node — it must clamp to zero instead.
  const Graph g = Graph::FromEdges(2, {{0, 1}});
  const InductiveSplit s = MakeInductiveSplit(g, 0.5, 0.2, 0.8, 3);
  EXPECT_EQ(s.train_nodes.size(), 1u);
  EXPECT_EQ(s.labeled_nodes.size(), 1u);
  EXPECT_TRUE(s.val_nodes.empty());
  EXPECT_EQ(s.test_nodes.size(), 1u);
}

TEST_F(PartitionTest, LabeledPlusValBoundaryExactlyFillsTrain) {
  // labeled + val == 1: every train node is labeled or validation, and the
  // two sets stay disjoint.
  const InductiveSplit s = MakeInductiveSplit(ds_.graph, 0.6, 0.5, 0.5, 17);
  EXPECT_EQ(s.train_nodes.size(), 300u);
  EXPECT_EQ(s.labeled_nodes.size() + s.val_nodes.size(), 300u);
  std::set<std::int32_t> labeled(s.labeled_nodes.begin(),
                                 s.labeled_nodes.end());
  for (const auto v : s.val_nodes) EXPECT_FALSE(labeled.count(v));
}

TEST_F(PartitionTest, TinyGraphSweepNeverBreaksInvariants) {
  // Property sweep over small n and a fraction grid (including the exact
  // 1.0 boundaries): sizes always partition, subsets never overflow. Run
  // under ASan in scripts/check.sh this doubles as the regression for the
  // release-mode out-of-range read.
  for (std::int64_t n = 1; n <= 7; ++n) {
    std::vector<std::pair<std::int32_t, std::int32_t>> edges;
    for (std::int32_t v = 1; v < n; ++v) edges.push_back({v - 1, v});
    const Graph g = Graph::FromEdges(n, edges);
    for (const double tf : {0.2, 0.5, 0.9, 1.0}) {
      for (const double lf : {0.25, 0.5, 1.0}) {
        for (const double vf : {0.0, 0.25, 0.5}) {
          if (lf + vf > 1.0) continue;  // invalid combos throw; tested above
          const InductiveSplit s = MakeInductiveSplit(g, tf, lf, vf, 11);
          const std::int64_t n_train =
              static_cast<std::int64_t>(s.train_nodes.size());
          EXPECT_GE(n_train, 1);
          EXPECT_EQ(n_train + static_cast<std::int64_t>(s.test_nodes.size()),
                    n);
          EXPECT_GE(s.labeled_nodes.size(), 1u);
          EXPECT_LE(static_cast<std::int64_t>(s.labeled_nodes.size() +
                                              s.val_nodes.size()),
                    n_train);
          EXPECT_EQ(s.train_graph.num_nodes(), n_train);
        }
      }
    }
  }
}

}  // namespace
}  // namespace nai::graph
