#include "src/graph/sampler.h"

#include <set>

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/graph/normalize.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace nai::graph {
namespace {

TEST(SamplerTest, StarHubReachesEverythingInOneHop) {
  const Graph g = StarGraph(9);  // hub 0, leaves 1..9
  const Csr adj = NormalizedAdjacency(g, 0.5f);
  SupportSampler sampler(adj);
  const BatchSupport s = sampler.Sample({0}, 1);
  ASSERT_EQ(s.layer_counts.size(), 2u);
  EXPECT_EQ(s.layer_counts[0], 1);
  EXPECT_EQ(s.layer_counts[1], 10);  // the whole graph
}

TEST(SamplerTest, DepthZeroIsJustTheBatch) {
  const Graph g = PathGraph(5);
  const Csr adj = NormalizedAdjacency(g, 0.5f);
  SupportSampler sampler(adj);
  const BatchSupport s = sampler.Sample({2, 4}, 0);
  EXPECT_EQ(s.num_supporting(), 2);
  EXPECT_EQ(s.batch_size(), 2);
  EXPECT_EQ(s.nodes[0], 2);
  EXPECT_EQ(s.nodes[1], 4);
}

TEST(SamplerTest, LayersGrowByHop) {
  // Path 0-1-2-3-4-5-6, batch {3}: layers 1, 3, 5, 7.
  const Graph g = PathGraph(7);
  const Csr adj = NormalizedAdjacency(g, 0.5f);
  SupportSampler sampler(adj);
  const BatchSupport s = sampler.Sample({3}, 3);
  ASSERT_EQ(s.layer_counts.size(), 4u);
  EXPECT_EQ(s.layer_counts[0], 1);
  EXPECT_EQ(s.layer_counts[1], 3);
  EXPECT_EQ(s.layer_counts[2], 5);
  EXPECT_EQ(s.layer_counts[3], 7);
}

TEST(SamplerTest, PrefixProperty) {
  // Neighbors (incl. self) of every node within t hops lie within t+1 hops,
  // i.e. in the next prefix — the invariant the propagation engine uses.
  GeneratorConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_edges = 1200;
  cfg.seed = 11;
  const SyntheticDataset ds = GenerateDataset(cfg);
  const Csr adj = NormalizedAdjacency(ds.graph, 0.5f);
  SupportSampler sampler(adj);
  const BatchSupport s = sampler.Sample({0, 5, 9}, 3);
  ASSERT_TRUE(s.sub_adj.Validate());
  for (std::size_t t = 0; t + 1 < s.layer_counts.size(); ++t) {
    for (std::int64_t v = 0; v < s.layer_counts[t]; ++v) {
      for (std::int64_t p = s.sub_adj.row_ptr[v];
           p < s.sub_adj.row_ptr[v + 1]; ++p) {
        EXPECT_LT(s.sub_adj.col_idx[p], s.layer_counts[t + 1]);
      }
    }
  }
}

TEST(SamplerTest, SubmatrixRowsCompleteForInnerLayers) {
  // For nodes within depth-1 hops, the induced row must contain every
  // neighbor the full normalized adjacency has (nothing clipped).
  GeneratorConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_edges = 700;
  cfg.seed = 13;
  const SyntheticDataset ds = GenerateDataset(cfg);
  const Csr adj = NormalizedAdjacency(ds.graph, 0.5f);
  SupportSampler sampler(adj);
  const int depth = 3;
  const BatchSupport s = sampler.Sample({1, 2, 3}, depth);
  for (std::int64_t v = 0; v < s.layer_counts[depth - 1]; ++v) {
    const std::int32_t global = s.nodes[v];
    EXPECT_EQ(s.sub_adj.RowNnz(v), adj.RowNnz(global))
        << "row clipped for inner node " << global;
  }
}

TEST(SamplerTest, PropagationOnSubgraphMatchesGlobal) {
  // One hop of SpMM on the induced subgraph equals the global SpMM for all
  // nodes within depth-1 hops.
  GeneratorConfig cfg;
  cfg.num_nodes = 250;
  cfg.num_edges = 900;
  cfg.feature_dim = 8;
  cfg.seed = 17;
  const SyntheticDataset ds = GenerateDataset(cfg);
  const Csr adj = NormalizedAdjacency(ds.graph, 0.5f);
  SupportSampler sampler(adj);
  const int depth = 2;
  const BatchSupport s = sampler.Sample({7, 8}, depth);

  const tensor::Matrix global_x1 = SpMM(adj, ds.features);
  const tensor::Matrix local_x0 = ds.features.GatherRows(s.nodes);
  const tensor::Matrix local_x1 = SpMM(s.sub_adj, local_x0);
  for (std::int64_t v = 0; v < s.layer_counts[depth - 1]; ++v) {
    for (std::size_t j = 0; j < ds.features.cols(); ++j) {
      EXPECT_NEAR(local_x1.at(v, j), global_x1.at(s.nodes[v], j), 1e-4f);
    }
  }
}

TEST(SamplerTest, ScratchResetsAcrossBatches) {
  const Graph g = CycleGraph(10);
  const Csr adj = NormalizedAdjacency(g, 0.5f);
  SupportSampler sampler(adj);
  const BatchSupport a = sampler.Sample({0, 1}, 2);
  const BatchSupport b = sampler.Sample({5}, 2);
  // Second batch must be independent of the first.
  EXPECT_EQ(b.nodes[0], 5);
  std::set<std::int32_t> bset(b.nodes.begin(), b.nodes.end());
  EXPECT_EQ(bset.size(), b.nodes.size());
  EXPECT_TRUE(bset.count(5));
  EXPECT_TRUE(bset.count(4));
  EXPECT_TRUE(bset.count(6));
  EXPECT_TRUE(bset.count(3));
  EXPECT_TRUE(bset.count(7));
  EXPECT_EQ(b.num_supporting(), 5);
  (void)a;
}

TEST(SamplerTest, WholeGraphSaturation) {
  // Once the BFS covers the whole graph, deeper layers stop growing.
  const Graph g = CompleteGraph(12);
  const Csr adj = NormalizedAdjacency(g, 0.5f);
  SupportSampler sampler(adj);
  const BatchSupport s = sampler.Sample({0}, 3);
  EXPECT_EQ(s.layer_counts[1], 12);
  EXPECT_EQ(s.layer_counts[2], 12);
  EXPECT_EQ(s.layer_counts[3], 12);
}

}  // namespace
}  // namespace nai::graph

namespace nai::graph {
namespace {

TEST(SamplerTest, SampleMappedMatchesSample) {
  GeneratorConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_edges = 1100;
  cfg.seed = 19;
  const SyntheticDataset ds = GenerateDataset(cfg);
  const Csr adj = NormalizedAdjacency(ds.graph, 0.5f);
  SupportSampler a(adj), b(adj);
  const BatchSupport full = a.Sample({4, 9, 40}, 3);
  const BatchSupport mapped = b.SampleMapped({4, 9, 40}, 3);
  EXPECT_EQ(full.nodes, mapped.nodes);
  EXPECT_EQ(full.layer_counts, mapped.layer_counts);
  EXPECT_EQ(mapped.sub_adj.nnz(), 0);
  // Mapping is consistent with the node list.
  const auto& g2l = b.global_to_local();
  for (std::size_t i = 0; i < mapped.nodes.size(); ++i) {
    EXPECT_EQ(g2l[mapped.nodes[i]], static_cast<std::int32_t>(i));
  }
}

TEST(SamplerTest, MappedPropagationMatchesSubmatrix) {
  GeneratorConfig cfg;
  cfg.num_nodes = 250;
  cfg.num_edges = 1000;
  cfg.feature_dim = 6;
  cfg.seed = 23;
  const SyntheticDataset ds = GenerateDataset(cfg);
  const Csr adj = NormalizedAdjacency(ds.graph, 0.5f);
  SupportSampler a(adj), b(adj);
  const int depth = 2;
  const BatchSupport full = a.Sample({3, 14}, depth);
  const BatchSupport mapped = b.SampleMapped({3, 14}, depth);

  const tensor::Matrix x0 = ds.features.GatherRows(mapped.nodes);
  const std::int64_t limit = mapped.layer_counts[depth - 1];
  tensor::Matrix via_sub(mapped.nodes.size(), 6);
  SpMMPrefix(full.sub_adj, x0, limit, via_sub);
  tensor::Matrix via_map(mapped.nodes.size(), 6);
  SpMMMappedPrefix(adj, mapped.nodes, b.global_to_local(), x0, limit,
                   via_map);
  for (std::int64_t r = 0; r < limit; ++r) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(via_sub.at(r, j), via_map.at(r, j), 1e-5f);
    }
  }
}

TEST(SamplerTest, MappedResetAcrossBatches) {
  const Graph g = CycleGraph(20);
  const Csr adj = NormalizedAdjacency(g, 0.5f);
  SupportSampler sampler(adj);
  sampler.SampleMapped({0, 1}, 2);
  const BatchSupport second = sampler.SampleMapped({10}, 1);
  const auto& g2l = sampler.global_to_local();
  // Previous batch's entries must be cleared.
  EXPECT_EQ(g2l[0], -1);
  EXPECT_EQ(g2l[1], -1);
  EXPECT_EQ(g2l[10], 0);
  EXPECT_EQ(second.nodes[0], 10);
}

}  // namespace
}  // namespace nai::graph
