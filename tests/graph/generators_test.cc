#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"

namespace nai::graph {
namespace {

GeneratorConfig BaseConfig() {
  GeneratorConfig cfg;
  cfg.num_nodes = 1000;
  cfg.num_edges = 6000;
  cfg.num_classes = 5;
  cfg.feature_dim = 16;
  cfg.seed = 77;
  return cfg;
}

TEST(GeneratorsTest, ShapesAndRanges) {
  const SyntheticDataset ds = GenerateDataset(BaseConfig());
  EXPECT_EQ(ds.graph.num_nodes(), 1000);
  EXPECT_EQ(ds.features.rows(), 1000u);
  EXPECT_EQ(ds.features.cols(), 16u);
  EXPECT_EQ(ds.labels.size(), 1000u);
  EXPECT_EQ(ds.num_classes, 5);
  for (const auto y : ds.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 5);
  }
}

TEST(GeneratorsTest, EdgeCountNearTarget) {
  const SyntheticDataset ds = GenerateDataset(BaseConfig());
  EXPECT_GE(ds.graph.num_edges(), 5400);  // >= 90% of requested
  EXPECT_LE(ds.graph.num_edges(), 6000);
}

TEST(GeneratorsTest, Deterministic) {
  const SyntheticDataset a = GenerateDataset(BaseConfig());
  const SyntheticDataset b = GenerateDataset(BaseConfig());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.features.CountDifferences(b.features, 0.0f), 0u);
}

TEST(GeneratorsTest, SeedChangesOutput) {
  GeneratorConfig cfg = BaseConfig();
  const SyntheticDataset a = GenerateDataset(cfg);
  cfg.seed = 78;
  const SyntheticDataset b = GenerateDataset(cfg);
  EXPECT_NE(a.labels, b.labels);
}

TEST(GeneratorsTest, ClassesBalanced) {
  const SyntheticDataset ds = GenerateDataset(BaseConfig());
  std::vector<int> counts(5, 0);
  for (const auto y : ds.labels) ++counts[y];
  for (const int c : counts) EXPECT_EQ(c, 200);
}

TEST(GeneratorsTest, HomophilyControlsSameClassEdgeFraction) {
  GeneratorConfig cfg = BaseConfig();
  cfg.homophily = 0.9f;
  const SyntheticDataset high = GenerateDataset(cfg);
  cfg.homophily = 0.0f;
  cfg.seed = 79;
  const SyntheticDataset low = GenerateDataset(cfg);

  auto same_class_fraction = [](const SyntheticDataset& ds) {
    std::int64_t same = 0, total = 0;
    for (std::int32_t v = 0; v < ds.graph.num_nodes(); ++v) {
      for (const auto* it = ds.graph.neighbors_begin(v);
           it != ds.graph.neighbors_end(v); ++it) {
        if (*it > v) {
          ++total;
          if (ds.labels[v] == ds.labels[*it]) ++same;
        }
      }
    }
    return static_cast<double>(same) / static_cast<double>(total);
  };

  const double high_frac = same_class_fraction(high);
  const double low_frac = same_class_fraction(low);
  EXPECT_GT(high_frac, 0.8);
  // With homophily 0, same-class edges happen at the chance rate ~1/5.
  EXPECT_LT(low_frac, 0.35);
}

TEST(GeneratorsTest, DegreeHeterogeneity) {
  GeneratorConfig cfg = BaseConfig();
  cfg.power_law_exponent = 2.0f;
  cfg.max_weight_ratio = 200.0f;
  const SyntheticDataset ds = GenerateDataset(cfg);
  std::vector<std::int64_t> degrees;
  for (std::int32_t v = 0; v < ds.graph.num_nodes(); ++v) {
    degrees.push_back(ds.graph.degree(v));
  }
  std::sort(degrees.begin(), degrees.end());
  const std::int64_t median = degrees[degrees.size() / 2];
  const std::int64_t max = degrees.back();
  // Heavy tail: the hub is much larger than the median node.
  EXPECT_GT(max, 5 * std::max<std::int64_t>(median, 1));
}

TEST(GeneratorsTest, FeaturesCarryClassSignal) {
  // A nearest-centroid classifier on raw features beats chance: the class
  // centroids must be recoverable.
  GeneratorConfig cfg = BaseConfig();
  cfg.feature_noise = 1.0f;
  const SyntheticDataset ds = GenerateDataset(cfg);
  // Estimate centroids from the first half, classify the second half.
  const std::int64_t half = ds.graph.num_nodes() / 2;
  tensor::Matrix centroids(cfg.num_classes, cfg.feature_dim);
  std::vector<int> counts(cfg.num_classes, 0);
  for (std::int64_t i = 0; i < half; ++i) {
    const float* x = ds.features.row(i);
    float* c = centroids.row(ds.labels[i]);
    for (std::int32_t j = 0; j < cfg.feature_dim; ++j) c[j] += x[j];
    ++counts[ds.labels[i]];
  }
  for (std::int32_t k = 0; k < cfg.num_classes; ++k) {
    float* c = centroids.row(k);
    for (std::int32_t j = 0; j < cfg.feature_dim; ++j) c[j] /= counts[k];
  }
  std::int64_t correct = 0;
  for (std::int64_t i = half; i < ds.graph.num_nodes(); ++i) {
    const float* x = ds.features.row(i);
    int best = 0;
    float best_d = 1e30f;
    for (std::int32_t k = 0; k < cfg.num_classes; ++k) {
      const float* c = centroids.row(k);
      float d = 0.0f;
      for (std::int32_t j = 0; j < cfg.feature_dim; ++j) {
        d += (x[j] - c[j]) * (x[j] - c[j]);
      }
      if (d < best_d) {
        best_d = d;
        best = k;
      }
    }
    if (best == ds.labels[i]) ++correct;
  }
  const double acc = static_cast<double>(correct) / (ds.graph.num_nodes() - half);
  EXPECT_GT(acc, 0.5);  // 5 classes => chance is 0.2
}

}  // namespace
}  // namespace nai::graph

namespace nai::graph {
namespace {

TEST(GeneratorsTest, LabelNoiseFlipsExpectedFraction) {
  GeneratorConfig clean = BaseConfig();
  GeneratorConfig noisy = BaseConfig();
  noisy.label_noise = 0.3f;
  const SyntheticDataset a = GenerateDataset(clean);
  const SyntheticDataset b = GenerateDataset(noisy);
  // Identical seed: graph and features agree; only labels differ.
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < a.labels.size(); ++i) {
    if (a.labels[i] != b.labels[i]) ++flipped;
  }
  const double fraction = static_cast<double>(flipped) / a.labels.size();
  EXPECT_NEAR(fraction, 0.3, 0.05);
  // Flipped labels stay within the class range.
  for (const auto y : b.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, clean.num_classes);
  }
}

TEST(GeneratorsTest, NumClassesRespected) {
  GeneratorConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_edges = 600;
  cfg.num_classes = 2;
  cfg.seed = 77;
  const SyntheticDataset ds = GenerateDataset(cfg);
  EXPECT_EQ(ds.num_classes, 2);
  for (const auto y : ds.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 2);
  }
}

TEST(GeneratorsTest, LabelNoiseCapsAttainableAccuracy) {
  // No classifier can beat ~(1 - noise) + noise/c on the observed labels;
  // check that even the true labels score in that band.
  GeneratorConfig cfg = BaseConfig();
  cfg.label_noise = 0.4f;
  const SyntheticDataset clean = GenerateDataset(BaseConfig());
  const SyntheticDataset noisy = GenerateDataset(cfg);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < clean.labels.size(); ++i) {
    if (clean.labels[i] == noisy.labels[i]) ++agree;
  }
  const double ceiling = static_cast<double>(agree) / clean.labels.size();
  EXPECT_NEAR(ceiling, 0.6, 0.05);
}

}  // namespace
}  // namespace nai::graph
