// Property tests for the serving-graph partitioner: owned sets partition V,
// halos are exactly the halo_hops-hop neighborhoods, induced structure and
// id maps round-trip, and the BFS-never-leaves-the-shard guarantee holds
// for every owned node.

#include "src/graph/shard.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "gtest/gtest.h"
#include "src/graph/generators.h"

namespace nai::graph {
namespace {

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig cfg;
    cfg.num_nodes = 300;
    cfg.num_edges = 1200;
    cfg.seed = 11;
    ds_ = GenerateDataset(cfg);
  }

  /// Global ids within `hops` of `seeds`, by reference BFS on the full graph.
  std::set<std::int32_t> Neighborhood(const std::vector<std::int32_t>& seeds,
                                      int hops) const {
    std::set<std::int32_t> reached(seeds.begin(), seeds.end());
    std::vector<std::int32_t> frontier(seeds.begin(), seeds.end());
    for (int h = 0; h < hops; ++h) {
      std::vector<std::int32_t> next;
      for (const std::int32_t v : frontier) {
        for (const auto* it = ds_.graph.neighbors_begin(v);
             it != ds_.graph.neighbors_end(v); ++it) {
          if (reached.insert(*it).second) next.push_back(*it);
        }
      }
      frontier = std::move(next);
    }
    return reached;
  }

  SyntheticDataset ds_;
};

TEST_F(ShardTest, OwnedSetsPartitionAllNodes) {
  const ShardedGraph sharded = MakeShards(ds_.graph, 4, 2);
  ASSERT_EQ(sharded.num_shards(), 4u);
  std::set<std::int32_t> seen;
  std::size_t total = 0;
  for (const GraphShard& shard : sharded.shards) {
    total += shard.owned.size();
    seen.insert(shard.owned.begin(), shard.owned.end());
  }
  EXPECT_EQ(total, 300u);
  EXPECT_EQ(seen.size(), 300u);  // no node owned twice
  for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
    for (const std::int32_t v : sharded.shards[s].owned) {
      EXPECT_EQ(sharded.owner[v], static_cast<std::int32_t>(s));
    }
  }
}

TEST_F(ShardTest, DefaultPartitionIsBalancedContiguous) {
  const ShardedGraph sharded = MakeShards(ds_.graph, 7, 1);  // 300 = 7*42 + 6
  std::size_t min_size = 301, max_size = 0;
  std::int32_t expected_start = 0;
  for (const GraphShard& shard : sharded.shards) {
    min_size = std::min(min_size, shard.owned.size());
    max_size = std::max(max_size, shard.owned.size());
    // Contiguous range starting where the previous shard ended.
    EXPECT_EQ(shard.owned.front(), expected_start);
    EXPECT_EQ(shard.owned.back(),
              expected_start + static_cast<std::int32_t>(shard.owned.size()) - 1);
    expected_start += static_cast<std::int32_t>(shard.owned.size());
  }
  EXPECT_EQ(expected_start, 300);
  EXPECT_LE(max_size - min_size, 1u);
}

TEST_F(ShardTest, ShardNodesAreExactlyTheHaloNeighborhood) {
  for (const int halo : {0, 1, 3}) {
    const ShardedGraph sharded = MakeShards(ds_.graph, 3, halo);
    for (const GraphShard& shard : sharded.shards) {
      const std::set<std::int32_t> want = Neighborhood(shard.owned, halo);
      const std::set<std::int32_t> got(shard.nodes.begin(),
                                       shard.nodes.end());
      EXPECT_EQ(got, want) << "halo=" << halo;
      EXPECT_EQ(shard.num_halo(),
                static_cast<std::int64_t>(want.size() - shard.owned.size()));
    }
  }
}

TEST_F(ShardTest, SupportBfsNeverLeavesShard) {
  // The serving guarantee: every owned node's halo_hops-hop neighborhood is
  // inside the shard, so a supporting-set BFS from any routed query (or
  // batch of them) stays local.
  const int halo = 2;
  const ShardedGraph sharded = MakeShards(ds_.graph, 5, halo);
  for (const GraphShard& shard : sharded.shards) {
    for (const std::int32_t v : shard.owned) {
      for (const std::int32_t u : Neighborhood({v}, halo)) {
        EXPECT_TRUE(shard.contains(u))
            << "node " << u << " within " << halo << " hops of owned " << v
            << " missing from shard";
      }
    }
  }
}

TEST_F(ShardTest, GlobalToLocalRoundTripsAndNodesSorted) {
  const ShardedGraph sharded = MakeShards(ds_.graph, 4, 2);
  for (const GraphShard& shard : sharded.shards) {
    EXPECT_TRUE(std::is_sorted(shard.nodes.begin(), shard.nodes.end()));
    EXPECT_TRUE(std::is_sorted(shard.owned.begin(), shard.owned.end()));
    ASSERT_EQ(shard.global_to_local.size(), 300u);
    std::size_t present = 0;
    for (std::int32_t g = 0; g < 300; ++g) {
      const std::int32_t local = shard.global_to_local[g];
      if (local >= 0) {
        ++present;
        ASSERT_LT(static_cast<std::size_t>(local), shard.nodes.size());
        EXPECT_EQ(shard.nodes[local], g);
      }
    }
    EXPECT_EQ(present, shard.nodes.size());
  }
}

TEST_F(ShardTest, InducedGraphMatchesGlobalEdgesAndOwnedDegrees) {
  const ShardedGraph sharded = MakeShards(ds_.graph, 3, 1);
  for (const GraphShard& shard : sharded.shards) {
    ASSERT_EQ(shard.graph.num_nodes(),
              static_cast<std::int64_t>(shard.nodes.size()));
    // Every shard edge exists globally.
    for (std::int32_t v = 0; v < shard.graph.num_nodes(); ++v) {
      for (const auto* it = shard.graph.neighbors_begin(v);
           it != shard.graph.neighbors_end(v); ++it) {
        EXPECT_TRUE(ds_.graph.HasEdge(shard.nodes[v], shard.nodes[*it]));
      }
    }
    // Owned nodes keep their full neighbor lists (halo >= 1), so their
    // shard-local degree equals the global one — what keeps per-shard
    // stationary rows and normalized weights of owned nodes exact.
    for (const std::int32_t g : shard.owned) {
      EXPECT_EQ(shard.graph.degree(shard.global_to_local[g]),
                ds_.graph.degree(g));
    }
  }
}

TEST_F(ShardTest, CustomOwnerVectorRoundRobin) {
  std::vector<std::int32_t> owner(300);
  for (int v = 0; v < 300; ++v) owner[v] = v % 3;
  const ShardedGraph sharded = MakeShards(ds_.graph, owner, 1);
  ASSERT_EQ(sharded.num_shards(), 3u);
  EXPECT_EQ(sharded.owner, owner);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(sharded.shards[s].owned.size(), 100u);
    for (const std::int32_t v : sharded.shards[s].owned) {
      EXPECT_EQ(v % 3, static_cast<std::int32_t>(s));
    }
  }
}

TEST_F(ShardTest, SingleShardOwnsEverythingWithNoHalo) {
  const ShardedGraph sharded = MakeShards(ds_.graph, 1, 3);
  ASSERT_EQ(sharded.num_shards(), 1u);
  EXPECT_EQ(sharded.shards[0].owned.size(), 300u);
  EXPECT_EQ(sharded.shards[0].num_halo(), 0);
  EXPECT_EQ(sharded.shards[0].graph.num_edges(), ds_.graph.num_edges());
}

TEST_F(ShardTest, DeterministicAcrossCalls) {
  const ShardedGraph a = MakeShards(ds_.graph, 4, 2);
  const ShardedGraph b = MakeShards(ds_.graph, 4, 2);
  ASSERT_EQ(a.num_shards(), b.num_shards());
  for (std::size_t s = 0; s < a.num_shards(); ++s) {
    EXPECT_EQ(a.shards[s].owned, b.shards[s].owned);
    EXPECT_EQ(a.shards[s].nodes, b.shards[s].nodes);
  }
}

TEST_F(ShardTest, InvalidArgumentsThrow) {
  EXPECT_THROW(MakeShards(ds_.graph, 0, 1), std::invalid_argument);
  EXPECT_THROW(MakeShards(ds_.graph, -2, 1), std::invalid_argument);
  EXPECT_THROW(MakeShards(ds_.graph, 301, 1), std::invalid_argument);
  EXPECT_THROW(MakeShards(ds_.graph, 2, -1), std::invalid_argument);
  EXPECT_THROW(MakeShards(Graph(), 1, 1), std::invalid_argument);
  std::vector<std::int32_t> short_owner(299, 0);
  EXPECT_THROW(MakeShards(ds_.graph, short_owner, 1), std::invalid_argument);
  std::vector<std::int32_t> negative_owner(300, 0);
  negative_owner[7] = -1;
  EXPECT_THROW(MakeShards(ds_.graph, negative_owner, 1),
               std::invalid_argument);
}

TEST_F(ShardTest, EmptyShardFromCustomOwnerIsAllowed) {
  // Shard 1 owns nothing (ids 0 and 2 only): it must come out empty but
  // well-formed, not crash.
  std::vector<std::int32_t> owner(300);
  for (int v = 0; v < 300; ++v) owner[v] = (v % 2) * 2;
  const ShardedGraph sharded = MakeShards(ds_.graph, owner, 1);
  ASSERT_EQ(sharded.num_shards(), 3u);
  EXPECT_EQ(sharded.shards[1].owned.size(), 0u);
  EXPECT_EQ(sharded.shards[1].nodes.size(), 0u);
  EXPECT_EQ(sharded.shards[1].graph.num_nodes(), 0);
}

}  // namespace
}  // namespace nai::graph
