#include "src/graph/normalize.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/graph/generators.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace nai::graph {
namespace {

TEST(NormalizeTest, SelfLoopsPresent) {
  const Graph g = PathGraph(3);
  const Csr a = NormalizedAdjacency(g, 0.5f);
  EXPECT_TRUE(a.Validate());
  const tensor::Matrix d = ToDense(a);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_GT(d.at(i, i), 0.0f);
}

TEST(NormalizeTest, SymmetricWhenGammaHalf) {
  const Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
                                       {0, 2}});
  const tensor::Matrix d = ToDense(NormalizedAdjacency(g, 0.5f));
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(d.at(i, j), d.at(j, i), 1e-6f);
    }
  }
}

TEST(NormalizeTest, RowStochasticWhenGammaOne) {
  // γ=1: Â = Ã D̃^{-1}? No — Eq. 1 gives D̃^{γ-1} Ã D̃^{-γ} = D̃^0 Ã D̃^{-1},
  // which is column-stochastic; its transpose (γ=0) is row-stochastic.
  const Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const tensor::Matrix d = ToDense(NormalizedAdjacency(g, 0.0f));
  for (std::size_t i = 0; i < 4; ++i) {
    float row_sum = 0.0f;
    for (std::size_t j = 0; j < 4; ++j) row_sum += d.at(i, j);
    EXPECT_NEAR(row_sum, 1.0f, 1e-5f);
  }
}

TEST(NormalizeTest, ColumnStochasticWhenGammaOneExact) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  const tensor::Matrix d = ToDense(NormalizedAdjacency(g, 1.0f));
  for (std::size_t j = 0; j < 4; ++j) {
    float col_sum = 0.0f;
    for (std::size_t i = 0; i < 4; ++i) col_sum += d.at(i, j);
    EXPECT_NEAR(col_sum, 1.0f, 1e-5f);
  }
}

TEST(NormalizeTest, ValuesMatchFormula) {
  // Edge {0,1} on a path of 3: value = (d0+1)^(γ-1) (d1+1)^(-γ).
  const Graph g = PathGraph(3);
  const float gamma = 0.5f;
  const tensor::Matrix d = ToDense(NormalizedAdjacency(g, gamma));
  const float d0 = 2.0f;  // degree 1 + self loop
  const float d1 = 3.0f;  // degree 2 + self loop
  EXPECT_NEAR(d.at(0, 1), std::pow(d0, gamma - 1) * std::pow(d1, -gamma),
              1e-6f);
  EXPECT_NEAR(d.at(0, 0), std::pow(d0, gamma - 1) * std::pow(d0, -gamma),
              1e-6f);
}

TEST(NormalizeTest, SpectralRadiusAtMostOne) {
  // Symmetric normalization has eigenvalues in [-1, 1]; repeated SpMM of a
  // random vector must not blow up.
  GeneratorConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_edges = 800;
  cfg.seed = 5;
  const SyntheticDataset ds = GenerateDataset(cfg);
  const Csr a = NormalizedAdjacency(ds.graph, 0.5f);
  tensor::Matrix v = nai::testing::RandomMatrix(200, 1, 3);
  const float before = tensor::FrobeniusNorm(v);
  for (int i = 0; i < 20; ++i) v = SpMM(a, v);
  EXPECT_LE(tensor::FrobeniusNorm(v), before * 1.01f);
}

TEST(NormalizeTest, SecondEigenvalueBelowOne) {
  GeneratorConfig cfg;
  cfg.num_nodes = 150;
  cfg.num_edges = 900;
  cfg.seed = 6;
  const SyntheticDataset ds = GenerateDataset(cfg);
  const Csr a = NormalizedAdjacency(ds.graph, 0.5f);
  const float l2 = EstimateSecondEigenvalue(a, 60, 7);
  EXPECT_GT(l2, 0.0f);
  EXPECT_LT(l2, 1.0f);
}

TEST(NormalizeTest, DegreesWithSelfLoops) {
  const Graph g = StarGraph(4);
  const auto d = DegreesWithSelfLoops(g);
  EXPECT_FLOAT_EQ(d[0], 5.0f);
  EXPECT_FLOAT_EQ(d[1], 2.0f);
}

TEST(NormalizeTest, SecondEigenvalueDeterministicGivenSeed) {
  const Graph g = GridGraph(5, 5);
  const Csr adj = NormalizedAdjacency(g, 0.5f);
  const float a = EstimateSecondEigenvalue(adj, 40, 17);
  const float b = EstimateSecondEigenvalue(adj, 40, 17);
  EXPECT_FLOAT_EQ(a, b);
}

TEST(NormalizeTest, GammaZeroIsReverseTransition) {
  // γ = 0 gives D̃^(-1) Ã: rows sum to 1 (each row divided by its degree).
  const Graph g = StarGraph(3);
  const Csr adj = NormalizedAdjacency(g, 0.0f);
  const tensor::Matrix dense = ToDense(adj);
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < dense.cols(); ++j) sum += dense.at(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

}  // namespace
}  // namespace nai::graph
