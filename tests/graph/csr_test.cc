#include "src/graph/csr.h"

#include "gtest/gtest.h"
#include "src/tensor/ops.h"
#include "tests/test_util.h"

namespace nai::graph {
namespace {

using nai::testing::ExpectMatrixNear;
using nai::testing::RandomMatrix;

TEST(CsrTest, SpMMIsLinear) {
  // SpMM(A, x + y) == SpMM(A, x) + SpMM(A, y): the engine's incremental
  // propagation paths rely on this.
  const Csr c = CsrFromTriplets(
      4, 4, {{0, 1, 0.5f}, {1, 2, -1.0f}, {2, 0, 2.0f}, {3, 3, 1.0f}});
  const tensor::Matrix x = RandomMatrix(4, 3, 70);
  const tensor::Matrix y = RandomMatrix(4, 3, 71);
  tensor::Matrix sum(4, 3);
  for (std::size_t i = 0; i < sum.size(); ++i) {
    sum.data()[i] = x.data()[i] + y.data()[i];
  }
  const tensor::Matrix ax = SpMM(c, x);
  const tensor::Matrix ay = SpMM(c, y);
  tensor::Matrix expected(4, 3);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected.data()[i] = ax.data()[i] + ay.data()[i];
  }
  ExpectMatrixNear(SpMM(c, sum), expected, 1e-5f);
}

TEST(CsrTest, TransposeOfEmpty) {
  const Csr c = CsrFromTriplets(3, 5, {});
  const Csr t = Transpose(c);
  EXPECT_TRUE(t.Validate());
  EXPECT_EQ(t.rows, 5);
  EXPECT_EQ(t.cols, 3);
  EXPECT_EQ(t.nnz(), 0);
}

Csr SmallCsr() {
  // 3x3: [[0, 1, 0], [2, 0, 3], [0, 0, 4]]
  return CsrFromTriplets(3, 3,
                         {{0, 1, 1.0f}, {1, 0, 2.0f}, {1, 2, 3.0f},
                          {2, 2, 4.0f}});
}

TEST(CsrTest, FromTripletsBasic) {
  const Csr c = SmallCsr();
  EXPECT_TRUE(c.Validate());
  EXPECT_EQ(c.nnz(), 4);
  EXPECT_EQ(c.RowNnz(0), 1);
  EXPECT_EQ(c.RowNnz(1), 2);
  EXPECT_EQ(c.RowNnz(2), 1);
  const tensor::Matrix d = ToDense(c);
  EXPECT_FLOAT_EQ(d.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(d.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(d.at(1, 2), 3.0f);
  EXPECT_FLOAT_EQ(d.at(2, 2), 4.0f);
}

TEST(CsrTest, DuplicateTripletsSum) {
  const Csr c =
      CsrFromTriplets(2, 2, {{0, 0, 1.0f}, {0, 0, 2.5f}, {1, 1, 1.0f}});
  EXPECT_TRUE(c.Validate());
  EXPECT_EQ(c.nnz(), 2);
  EXPECT_FLOAT_EQ(ToDense(c).at(0, 0), 3.5f);
}

TEST(CsrTest, EmptyMatrix) {
  const Csr c = CsrFromTriplets(4, 4, {});
  EXPECT_TRUE(c.Validate());
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_EQ(c.RowNnz(3), 0);
}

TEST(CsrTest, ValidateCatchesBrokenRowPtr) {
  Csr c = SmallCsr();
  c.row_ptr[1] = 99;
  EXPECT_FALSE(c.Validate());
}

TEST(CsrTest, ValidateCatchesOutOfRangeColumn) {
  Csr c = SmallCsr();
  c.col_idx[0] = 5;
  EXPECT_FALSE(c.Validate());
}

TEST(CsrTest, SpMMIdentity) {
  // Identity CSR leaves the dense side unchanged.
  std::vector<Triplet> eye;
  for (std::int32_t i = 0; i < 5; ++i) eye.push_back({i, i, 1.0f});
  const Csr id = CsrFromTriplets(5, 5, eye);
  const tensor::Matrix x = RandomMatrix(5, 3, 42);
  ExpectMatrixNear(SpMM(id, x), x, 1e-6f);
}

TEST(CsrTest, SpMMMatchesDense) {
  const Csr c = SmallCsr();
  const tensor::Matrix x = RandomMatrix(3, 4, 7);
  const tensor::Matrix expected = tensor::MatMul(ToDense(c), x);
  ExpectMatrixNear(SpMM(c, x), expected, 1e-4f);
}

// Property sweep: random sparse matrices match dense multiply.
class SpMMProperty : public ::testing::TestWithParam<int> {};

TEST_P(SpMMProperty, MatchesDense) {
  const int n = GetParam();
  tensor::Rng rng(1000 + n);
  std::vector<Triplet> trips;
  for (int i = 0; i < n * 4; ++i) {
    trips.push_back({static_cast<std::int32_t>(rng.NextBounded(n)),
                     static_cast<std::int32_t>(rng.NextBounded(n)),
                     rng.NextGaussian()});
  }
  const Csr c = CsrFromTriplets(n, n, trips);
  ASSERT_TRUE(c.Validate());
  const tensor::Matrix x = RandomMatrix(n, 6, 2000 + n);
  ExpectMatrixNear(SpMM(c, x), tensor::MatMul(ToDense(c), x), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpMMProperty,
                         ::testing::Values(1, 2, 7, 16, 33, 100));

TEST(CsrTest, SpMMPrefixOnlyTouchesPrefix) {
  const Csr c = SmallCsr();
  const tensor::Matrix x = RandomMatrix(3, 4, 9);
  tensor::Matrix out(3, 4);
  out.Fill(-99.0f);
  SpMMPrefix(c, x, 2, out);
  const tensor::Matrix full = SpMM(c, x);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out.at(0, j), full.at(0, j));
    EXPECT_FLOAT_EQ(out.at(1, j), full.at(1, j));
    EXPECT_FLOAT_EQ(out.at(2, j), -99.0f);  // untouched
  }
}

TEST(CsrTest, SpMMRowsOnlyTouchesListed) {
  const Csr c = SmallCsr();
  const tensor::Matrix x = RandomMatrix(3, 4, 10);
  tensor::Matrix out(3, 4);
  out.Fill(-1.0f);
  SpMMRows(c, x, {2, 0}, out);
  const tensor::Matrix full = SpMM(c, x);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out.at(0, j), full.at(0, j));
    EXPECT_FLOAT_EQ(out.at(1, j), -1.0f);
    EXPECT_FLOAT_EQ(out.at(2, j), full.at(2, j));
  }
}

TEST(CsrTest, TransposeInvolution) {
  const Csr c = SmallCsr();
  const Csr tt = Transpose(Transpose(c));
  EXPECT_TRUE(tt.Validate());
  ExpectMatrixNear(ToDense(tt), ToDense(c), 0.0f);
}

TEST(CsrTest, TransposeMatchesDense) {
  const Csr c = SmallCsr();
  const Csr t = Transpose(c);
  EXPECT_TRUE(t.Validate());
  const tensor::Matrix d = ToDense(c);
  const tensor::Matrix dt = ToDense(t);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(dt.at(j, i), d.at(i, j));
    }
  }
}

TEST(CsrTest, InducedSubmatrix) {
  const Csr c = SmallCsr();
  const std::vector<std::int32_t> ids = {1, 2};
  std::vector<std::int32_t> g2l(3, -1);
  g2l[1] = 0;
  g2l[2] = 1;
  const Csr sub = InducedSubmatrix(c, ids, g2l);
  EXPECT_TRUE(sub.Validate());
  // Dense sub = [[0, 3], [0, 4]]
  const tensor::Matrix d = ToDense(sub);
  EXPECT_FLOAT_EQ(d.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(d.at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(d.at(1, 1), 4.0f);
}

// Serial-vs-parallel bit-exactness across every SpMM variant: chunking the
// row loop must never change the per-row accumulation order, so results are
// bit-identical for any thread count.
TEST(CsrTest, AllSpMMVariantsBitExactAcrossThreadCounts) {
  const std::int64_t n = 257;
  std::vector<Triplet> triplets;
  std::uint32_t state = 12345;
  auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return state;
  };
  for (int e = 0; e < 2500; ++e) {
    Triplet t;
    t.row = static_cast<std::int32_t>(next() % n);
    t.col = static_cast<std::int32_t>(next() % n);
    t.value = static_cast<float>(next() % 1000) / 250.0f - 2.0f;
    triplets.push_back(t);
  }
  const Csr c = CsrFromTriplets(n, n, std::move(triplets));
  const tensor::Matrix dense = RandomMatrix(n, 19, 404);

  // Identity mapping makes the mapped variants exercise the same math.
  std::vector<std::int32_t> nodes(n), g2l(n);
  for (std::int64_t i = 0; i < n; ++i) {
    nodes[i] = static_cast<std::int32_t>(i);
    g2l[i] = static_cast<std::int32_t>(i);
  }
  std::vector<std::int32_t> row_list;
  for (std::int64_t i = 0; i < n; i += 3) {
    row_list.push_back(static_cast<std::int32_t>(i));
  }
  const std::int64_t limit = n - 40;

  auto run_all = [&] {
    std::vector<tensor::Matrix> out;
    out.push_back(SpMM(c, dense));
    tensor::Matrix prefix(n, dense.cols());
    SpMMPrefix(c, dense, limit, prefix);
    out.push_back(std::move(prefix));
    tensor::Matrix rows(n, dense.cols());
    SpMMRows(c, dense, row_list, rows);
    out.push_back(std::move(rows));
    tensor::Matrix mapped_prefix(n, dense.cols());
    SpMMMappedPrefix(c, nodes, g2l, dense, limit, mapped_prefix);
    out.push_back(std::move(mapped_prefix));
    tensor::Matrix mapped_rows(n, dense.cols());
    SpMMMappedRows(c, nodes, g2l, dense, row_list, mapped_rows);
    out.push_back(std::move(mapped_rows));
    return out;
  };

  runtime::ThreadPool::SetDefaultThreads(1);
  const std::vector<tensor::Matrix> serial = run_all();
  for (const int threads : {2, 8}) {
    runtime::ThreadPool::SetDefaultThreads(threads);
    const std::vector<tensor::Matrix> parallel = run_all();
    for (std::size_t v = 0; v < serial.size(); ++v) {
      for (std::size_t i = 0; i < serial[v].size(); ++i) {
        ASSERT_EQ(parallel[v].data()[i], serial[v].data()[i])
            << "variant " << v << " threads " << threads;
      }
    }
  }
  runtime::ThreadPool::SetDefaultThreads(0);
}

TEST(CsrTest, InducedSubmatrixNonMonotoneOrder) {
  const Csr c = SmallCsr();
  const std::vector<std::int32_t> ids = {2, 0, 1};  // permuted
  std::vector<std::int32_t> g2l(3, -1);
  for (std::size_t i = 0; i < ids.size(); ++i) g2l[ids[i]] = i;
  const Csr sub = InducedSubmatrix(c, ids, g2l);
  EXPECT_TRUE(sub.Validate());
  const tensor::Matrix orig = ToDense(c);
  const tensor::Matrix d = ToDense(sub);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(d.at(i, j), orig.at(ids[i], ids[j]));
    }
  }
}

}  // namespace
}  // namespace nai::graph
