// RequestQueue contract: bounded capacity with non-blocking backpressure,
// FIFO order, close semantics (pushes fail, pops drain), and MPMC safety —
// the contention tests run under TSan in scripts/check.sh.

#include "src/serve/request_queue.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace nai::serve {
namespace {

Request MakeRequest(std::int64_t id) {
  Request r;
  r.id = id;
  r.node = static_cast<std::int32_t>(id);
  return r;
}

TEST(RequestQueueTest, ZeroCapacityThrows) {
  EXPECT_THROW(RequestQueue(0), std::invalid_argument);
}

TEST(RequestQueueTest, TryPushBackpressureAtCapacity) {
  RequestQueue q(2);
  EXPECT_TRUE(q.TryPush(MakeRequest(0)));
  EXPECT_TRUE(q.TryPush(MakeRequest(1)));
  EXPECT_EQ(q.size(), 2u);
  // Full: admission control says no, without blocking.
  EXPECT_FALSE(q.TryPush(MakeRequest(2)));
  EXPECT_EQ(q.size(), 2u);

  auto popped = q.TryPop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_TRUE(q.TryPush(MakeRequest(3)));
}

TEST(RequestQueueTest, FifoOrder) {
  RequestQueue q(8);
  for (std::int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.TryPush(MakeRequest(i)));
  }
  for (std::int64_t i = 0; i < 5; ++i) {
    auto r = q.Pop();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->id, i);
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(RequestQueueTest, CloseFailsPushesButDrainsPops) {
  RequestQueue q(4);
  ASSERT_TRUE(q.TryPush(MakeRequest(1)));
  ASSERT_TRUE(q.TryPush(MakeRequest(2)));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.TryPush(MakeRequest(3)));
  EXPECT_FALSE(q.Push(MakeRequest(4)));
  // Everything admitted before the close still comes out...
  EXPECT_EQ(q.Pop()->id, 1);
  EXPECT_EQ(q.Pop()->id, 2);
  // ...and a drained closed queue reports shutdown, not blocking.
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(RequestQueueTest, CloseWakesBlockedPop) {
  RequestQueue q(2);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.Pop().has_value());  // blocks until Close
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(RequestQueueTest, CloseWakesBlockedPush) {
  RequestQueue q(1);
  ASSERT_TRUE(q.TryPush(MakeRequest(0)));
  std::atomic<bool> accepted{true};
  std::thread producer([&] { accepted.store(q.Push(MakeRequest(1))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  producer.join();
  EXPECT_FALSE(accepted.load());
}

TEST(RequestQueueTest, WaitForItemTimesOut) {
  RequestQueue q(2);
  const auto deadline =
      ServeClock::now() + std::chrono::milliseconds(10);
  EXPECT_FALSE(q.WaitForItem(deadline));
  ASSERT_TRUE(q.TryPush(MakeRequest(7)));
  EXPECT_TRUE(q.WaitForItem(ServeClock::now() +
                            std::chrono::milliseconds(10)));
}

TEST(RequestQueueTest, BlockingPushDeliversThroughBackpressure) {
  // A capacity-1 queue forces every producer push to wait for the consumer:
  // the full producer/consumer handshake, single-threaded on each side.
  RequestQueue q(1);
  constexpr std::int64_t kCount = 200;
  std::thread producer([&] {
    for (std::int64_t i = 0; i < kCount; ++i) {
      ASSERT_TRUE(q.Push(MakeRequest(i)));
    }
  });
  std::vector<std::int64_t> seen;
  for (std::int64_t i = 0; i < kCount; ++i) {
    auto r = q.Pop();
    ASSERT_TRUE(r.has_value());
    seen.push_back(r->id);
  }
  producer.join();
  for (std::int64_t i = 0; i < kCount; ++i) EXPECT_EQ(seen[i], i);
}

TEST(RequestQueueTest, MpmcEveryRequestPoppedExactlyOnce) {
  // The TSan centerpiece: several producers and consumers hammer one small
  // queue; every id must come out exactly once, across all consumers.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::int64_t kPerProducer = 250;
  RequestQueue q(8);

  std::vector<std::vector<std::int64_t>> consumed(kConsumers);
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      while (true) {
        auto r = q.Pop();
        if (!r.has_value()) return;  // closed and drained
        consumed[c].push_back(r->id);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(MakeRequest(p * kPerProducer + i)));
      }
    });
  }
  for (std::size_t t = kConsumers; t < threads.size(); ++t) {
    threads[t].join();  // producers first
  }
  q.Close();
  for (int c = 0; c < kConsumers; ++c) threads[c].join();

  std::set<std::int64_t> ids;
  std::size_t total = 0;
  for (const auto& v : consumed) {
    total += v.size();
    ids.insert(v.begin(), v.end());
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kProducers * kPerProducer));
  EXPECT_EQ(ids.size(), total);  // no duplicates
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), kProducers * kPerProducer - 1);
}

TEST(RequestQueueTest, PromiseSurvivesQueuePassage) {
  // The queue carries live promises; fulfilling one after a round trip must
  // reach the future taken before admission.
  RequestQueue q(2);
  Request r = MakeRequest(11);
  std::future<Response> fut = r.promise.get_future();
  ASSERT_TRUE(q.Push(std::move(r)));
  auto popped = q.Pop();
  ASSERT_TRUE(popped.has_value());
  Response resp;
  resp.prediction = 3;
  resp.served = true;
  popped->promise.set_value(resp);
  EXPECT_EQ(fut.get().prediction, 3);
}

}  // namespace
}  // namespace nai::serve
