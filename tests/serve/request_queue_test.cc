// RequestQueue contract: bounded capacity with non-blocking backpressure,
// FIFO order, close semantics (pushes fail, pops drain), and MPMC safety —
// the contention tests run under TSan in scripts/check.sh.

#include "src/serve/request_queue.h"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace nai::serve {
namespace {

Request MakeRequest(std::int64_t id) {
  Request r;
  r.id = id;
  r.node = static_cast<std::int32_t>(id);
  return r;
}

TEST(RequestQueueTest, ZeroCapacityThrows) {
  EXPECT_THROW(RequestQueue(0), std::invalid_argument);
}

TEST(RequestQueueTest, TryPushBackpressureAtCapacity) {
  RequestQueue q(2);
  EXPECT_TRUE(q.TryPush(MakeRequest(0)));
  EXPECT_TRUE(q.TryPush(MakeRequest(1)));
  EXPECT_EQ(q.size(), 2u);
  // Full: admission control says no, without blocking.
  EXPECT_FALSE(q.TryPush(MakeRequest(2)));
  EXPECT_EQ(q.size(), 2u);

  auto popped = q.TryPop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_TRUE(q.TryPush(MakeRequest(3)));
}

TEST(RequestQueueTest, FifoOrder) {
  RequestQueue q(8);
  for (std::int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.TryPush(MakeRequest(i)));
  }
  for (std::int64_t i = 0; i < 5; ++i) {
    auto r = q.Pop();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->id, i);
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(RequestQueueTest, CloseFailsPushesButDrainsPops) {
  RequestQueue q(4);
  ASSERT_TRUE(q.TryPush(MakeRequest(1)));
  ASSERT_TRUE(q.TryPush(MakeRequest(2)));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.TryPush(MakeRequest(3)));
  EXPECT_FALSE(q.Push(MakeRequest(4)));
  // Everything admitted before the close still comes out...
  EXPECT_EQ(q.Pop()->id, 1);
  EXPECT_EQ(q.Pop()->id, 2);
  // ...and a drained closed queue reports shutdown, not blocking.
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(RequestQueueTest, CloseWakesBlockedPop) {
  RequestQueue q(2);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.Pop().has_value());  // blocks until Close
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(RequestQueueTest, CloseWakesBlockedPush) {
  RequestQueue q(1);
  ASSERT_TRUE(q.TryPush(MakeRequest(0)));
  std::atomic<bool> accepted{true};
  std::thread producer([&] { accepted.store(q.Push(MakeRequest(1))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  producer.join();
  EXPECT_FALSE(accepted.load());
}

TEST(RequestQueueTest, WaitForItemTimesOut) {
  RequestQueue q(2);
  const auto deadline =
      ServeClock::now() + std::chrono::milliseconds(10);
  EXPECT_FALSE(q.WaitForItem(deadline));
  ASSERT_TRUE(q.TryPush(MakeRequest(7)));
  EXPECT_TRUE(q.WaitForItem(ServeClock::now() +
                            std::chrono::milliseconds(10)));
}

TEST(RequestQueueTest, BlockingPushDeliversThroughBackpressure) {
  // A capacity-1 queue forces every producer push to wait for the consumer:
  // the full producer/consumer handshake, single-threaded on each side.
  RequestQueue q(1);
  constexpr std::int64_t kCount = 200;
  std::thread producer([&] {
    for (std::int64_t i = 0; i < kCount; ++i) {
      ASSERT_TRUE(q.Push(MakeRequest(i)));
    }
  });
  std::vector<std::int64_t> seen;
  for (std::int64_t i = 0; i < kCount; ++i) {
    auto r = q.Pop();
    ASSERT_TRUE(r.has_value());
    seen.push_back(r->id);
  }
  producer.join();
  for (std::int64_t i = 0; i < kCount; ++i) EXPECT_EQ(seen[i], i);
}

TEST(RequestQueueTest, MpmcEveryRequestPoppedExactlyOnce) {
  // The TSan centerpiece: several producers and consumers hammer one small
  // queue; every id must come out exactly once, across all consumers.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::int64_t kPerProducer = 250;
  RequestQueue q(8);

  std::vector<std::vector<std::int64_t>> consumed(kConsumers);
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      while (true) {
        auto r = q.Pop();
        if (!r.has_value()) return;  // closed and drained
        consumed[c].push_back(r->id);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::int64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(MakeRequest(p * kPerProducer + i)));
      }
    });
  }
  for (std::size_t t = kConsumers; t < threads.size(); ++t) {
    threads[t].join();  // producers first
  }
  q.Close();
  for (int c = 0; c < kConsumers; ++c) threads[c].join();

  std::set<std::int64_t> ids;
  std::size_t total = 0;
  for (const auto& v : consumed) {
    total += v.size();
    ids.insert(v.begin(), v.end());
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kProducers * kPerProducer));
  EXPECT_EQ(ids.size(), total);  // no duplicates
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), kProducers * kPerProducer - 1);
}

TEST(RequestQueueTest, PromiseSurvivesQueuePassage) {
  // The queue carries live promises; fulfilling one after a round trip must
  // reach the future taken before admission.
  RequestQueue q(2);
  Request r = MakeRequest(11);
  std::future<Response> fut = r.promise.get_future();
  ASSERT_TRUE(q.Push(std::move(r)));
  auto popped = q.Pop();
  ASSERT_TRUE(popped.has_value());
  Response resp;
  resp.prediction = 3;
  resp.served = true;
  popped->promise.set_value(resp);
  EXPECT_EQ(fut.get().prediction, 3);
}

TEST(RequestQueueTest, CloseThenDrainRacedWithStealingLosesNothing) {
  // The shutdown/steal race of the serving front-end: while producers are
  // still pushing, Close() lands concurrently with pump-style Pop() drains
  // AND thief-style TryPopBatch() bulk grabs. Contract: every request that
  // was admitted (its push returned true) is popped by exactly one
  // consumer — no loss, no duplication — and everything settles once the
  // queue reports drained. Runs under TSan in scripts/check.sh.
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 400;
  constexpr int kPoppers = 2;
  constexpr int kThieves = 2;
  RequestQueue q(64);

  std::array<std::array<std::atomic<int>, kProducers * kPerProducer>, 1>
      popped_count{};
  std::atomic<std::int64_t> admitted{0};
  std::atomic<std::int64_t> drained{0};
  std::atomic<bool> producers_done{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Request r = MakeRequest(p * kPerProducer + i);
        // Spin on TryPush: a full queue retries, a closed queue gives up
        // (requests refused at admission are simply never counted).
        while (!q.TryPush(std::move(r))) {
          if (q.closed()) return;
          std::this_thread::yield();
          r = MakeRequest(p * kPerProducer + i);
        }
        admitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < kPoppers; ++c) {
    threads.emplace_back([&] {
      while (true) {
        std::optional<Request> r = q.Pop();
        if (!r.has_value()) return;  // closed and drained
        popped_count[0][static_cast<std::size_t>(r->id)].fetch_add(
            1, std::memory_order_relaxed);
        drained.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int t = 0; t < kThieves; ++t) {
    threads.emplace_back([&] {
      while (!q.drained()) {
        std::vector<Request> batch = q.TryPopBatch(8);
        if (batch.empty()) {
          std::this_thread::yield();
          continue;
        }
        for (const Request& r : batch) {
          popped_count[0][static_cast<std::size_t>(r.id)].fetch_add(
              1, std::memory_order_relaxed);
          drained.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Let the race develop, then close mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.Close();
  for (std::thread& t : threads) t.join();

  EXPECT_TRUE(q.drained());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(drained.load(), admitted.load());  // no admitted request lost
  for (std::size_t id = 0; id < popped_count[0].size(); ++id) {
    EXPECT_LE(popped_count[0][id].load(), 1) << "request " << id
                                             << " popped twice";
  }
  // The close landed mid-stream: with 5ms of runway and a 64-slot queue at
  // least something must have been admitted, or the race never happened.
  EXPECT_GT(admitted.load(), 0);
}

}  // namespace
}  // namespace nai::serve
