// ServingEngine contract: QoS-config routing must be bit-exact against
// direct Infer calls (the serving stack may batch and interleave however it
// likes, but never change an answer), deadline misses and drops are
// accounted per class, shutdown is graceful for in-flight requests, and the
// stats snapshot is internally consistent. Runs under TSan in
// scripts/check.sh (client threads + shard pumps + shard pools).

#include "src/serve/serving_engine.h"

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/sharded_inference.h"
#include "src/graph/shard.h"
#include "tests/core/core_fixtures.h"

namespace nai::serve {
namespace {

using nai::testing::MakeSmallWorld;
using nai::testing::SmallWorld;

constexpr int kDepth = 3;

/// One trained world shared by every test (engines only borrow from it).
SmallWorld& World() {
  static SmallWorld w = MakeSmallWorld(kDepth);
  return w;
}

std::unique_ptr<core::ShardedNaiEngine> MakeSharded(int num_shards,
                                                    int halo_hops = kDepth) {
  SmallWorld& w = World();
  auto engine = std::make_unique<core::ShardedNaiEngine>(
      w.data.graph, graph::MakeShards(w.data.graph, num_shards, halo_hops),
      w.data.features, w.config.gamma, *w.classifiers, w.stationary.get(),
      nullptr);
  engine->AttachQuantizedClassifiers(w.quantized.get());
  return engine;
}

/// Speed-first: NAPd with a shallow cap; accuracy-first: fixed full depth
/// (NAP off), so the two classes provably produce different exit depths.
QosPolicyTable MakePolicies(double speed_deadline_ms = 1000.0,
                            double accuracy_deadline_ms = 1000.0) {
  QosPolicyTable table;
  QosPolicy& speed = table.For(QosClass::kSpeedFirst);
  speed.config.nap = core::NapKind::kDistance;
  speed.config.relative_distance = true;
  speed.config.threshold = 0.3f;
  speed.config.t_max = 2;
  speed.default_deadline_ms = speed_deadline_ms;
  QosPolicy& accuracy = table.For(QosClass::kAccuracyFirst);
  accuracy.config.nap = core::NapKind::kNone;
  accuracy.config.t_max = 0;  // full depth k
  accuracy.default_deadline_ms = accuracy_deadline_ms;
  return table;
}

TEST(ServingEngineTest, PoliciesValidatedAgainstHaloAtConstruction) {
  // halo_hops = 1 cannot support the accuracy class's full-depth BFS; the
  // front-end must refuse at construction, not on the first deep request.
  const std::unique_ptr<core::ShardedNaiEngine> engine = MakeSharded(2, /*halo_hops=*/1);
  EXPECT_THROW(ServingEngine(*engine, MakePolicies()), std::invalid_argument);
}

TEST(ServingEngineTest, SingleClassBitExactVsDirectInfer) {
  SmallWorld& w = World();
  const QosPolicyTable policies = MakePolicies();
  for (const QosClass qos :
       {QosClass::kSpeedFirst, QosClass::kAccuracyFirst}) {
    const std::unique_ptr<core::ShardedNaiEngine> engine = MakeSharded(2);
    const core::InferenceResult ref =
        engine->Infer(w.all_nodes, policies.For(qos).config);

    ServingEngine server(*engine, policies);
    std::vector<std::future<Response>> futures;
    futures.reserve(w.all_nodes.size());
    for (const std::int32_t node : w.all_nodes) {
      futures.push_back(server.Submit(node, qos));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const Response r = futures[i].get();
      EXPECT_TRUE(r.served);
      EXPECT_EQ(r.qos, qos);
      EXPECT_EQ(r.prediction, ref.predictions[i]) << "node " << i;
      EXPECT_EQ(r.exit_depth, ref.exit_depths[i]) << "node " << i;
    }
  }
}

TEST(ServingEngineTest, MixedClassesServedConcurrentlyAndBitExact) {
  SmallWorld& w = World();
  const QosPolicyTable policies = MakePolicies();
  const std::unique_ptr<core::ShardedNaiEngine> engine = MakeSharded(2);
  const core::InferenceResult ref_speed =
      engine->Infer(w.all_nodes, policies.For(QosClass::kSpeedFirst).config);
  const core::InferenceResult ref_accuracy = engine->Infer(
      w.all_nodes, policies.For(QosClass::kAccuracyFirst).config);

  ServingEngine server(*engine, policies);
  std::vector<std::future<Response>> futures;
  std::vector<QosClass> classes;
  for (std::size_t i = 0; i < w.all_nodes.size(); ++i) {
    classes.push_back(i % 2 == 0 ? QosClass::kSpeedFirst
                                 : QosClass::kAccuracyFirst);
    futures.push_back(server.Submit(w.all_nodes[i], classes.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Response r = futures[i].get();
    const core::InferenceResult& ref =
        classes[i] == QosClass::kSpeedFirst ? ref_speed : ref_accuracy;
    EXPECT_TRUE(r.served);
    EXPECT_EQ(r.prediction, ref.predictions[i]);
    EXPECT_EQ(r.exit_depth, ref.exit_depths[i]);
  }

  const ServingStatsSnapshot stats = server.Stats();
  const auto speed_idx = static_cast<std::size_t>(QosClass::kSpeedFirst);
  const auto acc_idx = static_cast<std::size_t>(QosClass::kAccuracyFirst);
  EXPECT_EQ(stats.per_class[speed_idx].count,
            static_cast<std::int64_t>((w.all_nodes.size() + 1) / 2));
  EXPECT_EQ(stats.per_class[acc_idx].count,
            static_cast<std::int64_t>(w.all_nodes.size() / 2));
  EXPECT_EQ(stats.completed,
            static_cast<std::int64_t>(w.all_nodes.size()));
}

TEST(ServingEngineTest, DeadlineMissesAccountedPerClass) {
  SmallWorld& w = World();
  // A deadline that has effectively passed at admission: every speed-first
  // request must complete (drop_expired is off) but be flagged missed.
  const QosPolicyTable policies =
      MakePolicies(/*speed_deadline_ms=*/1e-6, /*accuracy_deadline_ms=*/1e9);
  const std::unique_ptr<core::ShardedNaiEngine> engine = MakeSharded(2);
  ServingEngine server(*engine, policies);

  constexpr std::size_t kSpeed = 20;
  constexpr std::size_t kAccuracy = 10;
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < kSpeed; ++i) {
    futures.push_back(
        server.Submit(w.all_nodes[i], QosClass::kSpeedFirst));
  }
  for (std::size_t i = 0; i < kAccuracy; ++i) {
    futures.push_back(
        server.Submit(w.all_nodes[kSpeed + i], QosClass::kAccuracyFirst));
  }
  std::size_t missed = 0;
  for (auto& f : futures) {
    const Response r = f.get();
    EXPECT_TRUE(r.served);  // still answered, just late
    if (r.deadline_missed) ++missed;
  }
  EXPECT_EQ(missed, kSpeed);

  const ServingStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.deadline_misses, static_cast<std::int64_t>(kSpeed));
  EXPECT_EQ(stats.per_class_misses[static_cast<std::size_t>(
                QosClass::kSpeedFirst)],
            static_cast<std::int64_t>(kSpeed));
  EXPECT_EQ(stats.per_class_misses[static_cast<std::size_t>(
                QosClass::kAccuracyFirst)],
            0);
  EXPECT_EQ(stats.dropped, 0);
}

TEST(ServingEngineTest, DropExpiredShedsInsteadOfServing) {
  SmallWorld& w = World();
  const QosPolicyTable policies =
      MakePolicies(/*speed_deadline_ms=*/1e-6, /*accuracy_deadline_ms=*/1e9);
  const std::unique_ptr<core::ShardedNaiEngine> engine = MakeSharded(2);
  ServingOptions options;
  options.drop_expired = true;
  ServingEngine server(*engine, policies, options);

  constexpr std::size_t kCount = 25;
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < kCount; ++i) {
    futures.push_back(server.Submit(w.all_nodes[i], QosClass::kSpeedFirst));
  }
  for (auto& f : futures) {
    const Response r = f.get();
    EXPECT_FALSE(r.served);
    EXPECT_TRUE(r.deadline_missed);
    EXPECT_EQ(r.prediction, -1);
  }
  const ServingStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.dropped, static_cast<std::int64_t>(kCount));
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.deadline_misses, static_cast<std::int64_t>(kCount));
}

TEST(ServingEngineTest, GracefulShutdownServesEverythingInFlight) {
  SmallWorld& w = World();
  const QosPolicyTable policies = MakePolicies();
  const std::unique_ptr<core::ShardedNaiEngine> engine = MakeSharded(2);
  const core::InferenceResult ref =
      engine->Infer(w.all_nodes, policies.For(QosClass::kSpeedFirst).config);

  auto server = std::make_unique<ServingEngine>(*engine, policies);
  constexpr std::size_t kCount = 100;
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < kCount; ++i) {
    futures.push_back(server->Submit(w.all_nodes[i], QosClass::kSpeedFirst));
  }
  // Shut down with the queues still full: every admitted request must be
  // served before the pumps exit.
  server->Shutdown();
  for (std::size_t i = 0; i < kCount; ++i) {
    const Response r = futures[i].get();
    EXPECT_TRUE(r.served);
    EXPECT_EQ(r.prediction, ref.predictions[i]);
  }
  EXPECT_EQ(server->Stats().completed, static_cast<std::int64_t>(kCount));
  EXPECT_EQ(server->Stats().queue_depth, 0u);
  server.reset();  // double shutdown via destructor must be a no-op
}

TEST(ServingEngineTest, SubmissionAfterShutdownIsRejected) {
  SmallWorld& w = World();
  const std::unique_ptr<core::ShardedNaiEngine> engine = MakeSharded(2);
  ServingEngine server(*engine, MakePolicies());
  server.Shutdown();

  std::future<Response> fut =
      server.Submit(w.all_nodes[0], QosClass::kSpeedFirst);
  const Response r = fut.get();  // immediately ready
  EXPECT_FALSE(r.served);
  EXPECT_FALSE(
      server.TrySubmit(w.all_nodes[1], QosClass::kAccuracyFirst).has_value());
  std::atomic<int> callbacks{0};
  EXPECT_FALSE(server.SubmitWithCallback(
      w.all_nodes[2], QosClass::kSpeedFirst,
      [&](const Response& resp) {
        EXPECT_FALSE(resp.served);
        callbacks.fetch_add(1);
      }));
  EXPECT_EQ(callbacks.load(), 1);
  EXPECT_EQ(server.Stats().rejected, 3);
}

TEST(ServingEngineTest, CallbackCompletionMatchesDirectInfer) {
  SmallWorld& w = World();
  const QosPolicyTable policies = MakePolicies();
  const std::unique_ptr<core::ShardedNaiEngine> engine = MakeSharded(2);
  const core::InferenceResult ref =
      engine->Infer(w.all_nodes, policies.For(QosClass::kSpeedFirst).config);
  ServingEngine server(*engine, policies);

  constexpr std::size_t kCount = 32;
  std::vector<std::promise<Response>> done(kCount);
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < kCount; ++i) {
    futures.push_back(done[i].get_future());
    ASSERT_TRUE(server.SubmitWithCallback(
        w.all_nodes[i], QosClass::kSpeedFirst,
        [&done, i](const Response& r) { done[i].set_value(r); }));
  }
  for (std::size_t i = 0; i < kCount; ++i) {
    const Response r = futures[i].get();
    EXPECT_TRUE(r.served);
    EXPECT_EQ(r.prediction, ref.predictions[i]);
  }
}

TEST(ServingEngineTest, OutOfRangeNodeThrowsAtAdmission) {
  const std::unique_ptr<core::ShardedNaiEngine> engine = MakeSharded(2);
  ServingEngine server(*engine, MakePolicies());
  EXPECT_THROW(server.Submit(-1, QosClass::kSpeedFirst), std::out_of_range);
  EXPECT_THROW(
      server.Submit(static_cast<std::int32_t>(World().all_nodes.size()),
                    QosClass::kSpeedFirst),
      std::out_of_range);
}

TEST(ServingEngineTest, StatsSnapshotInternallyConsistent) {
  SmallWorld& w = World();
  const std::unique_ptr<core::ShardedNaiEngine> engine = MakeSharded(2);
  ServingEngine server(*engine, MakePolicies());
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < w.all_nodes.size(); ++i) {
    futures.push_back(server.Submit(
        w.all_nodes[i], i % 3 == 0 ? QosClass::kAccuracyFirst
                                   : QosClass::kSpeedFirst));
  }
  for (auto& f : futures) f.get();
  const ServingStatsSnapshot stats = server.Stats();

  EXPECT_EQ(stats.submitted,
            static_cast<std::int64_t>(w.all_nodes.size()));
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_LE(stats.latency.p50_ms, stats.latency.p95_ms);
  EXPECT_LE(stats.latency.p95_ms, stats.latency.p99_ms);
  EXPECT_LE(stats.latency.p99_ms, stats.latency.max_ms);
  EXPECT_GT(stats.latency.mean_ms, 0.0);

  // The batch-size histogram is the engine-call log: counts sum to
  // num_batches, sizes sum to every completed request.
  std::int64_t batches = 0;
  std::int64_t requests = 0;
  for (std::size_t s = 0; s < stats.batch_size_hist.size(); ++s) {
    batches += stats.batch_size_hist[s];
    requests += static_cast<std::int64_t>(s + 1) * stats.batch_size_hist[s];
  }
  EXPECT_EQ(batches, stats.num_batches);
  EXPECT_EQ(requests, stats.completed);
  // Engine counters followed the same requests.
  EXPECT_EQ(stats.engine_stats.num_nodes, stats.completed);
  EXPECT_GT(stats.engine_stats.total_macs(), 0);
}

TEST(ServingEngineTest, DegenerateOptionsThrowFromConstructor) {
  // A bad queue capacity or batcher config must throw on the caller's
  // thread, never abort a pump thread mid-spawn.
  const std::unique_ptr<core::ShardedNaiEngine> engine = MakeSharded(2);
  ServingOptions zero_queue;
  zero_queue.queue_capacity = 0;
  EXPECT_THROW(ServingEngine(*engine, MakePolicies(), zero_queue),
               std::invalid_argument);
  ServingOptions zero_batch;
  zero_batch.batcher.max_batch = 0;
  EXPECT_THROW(ServingEngine(*engine, MakePolicies(), zero_batch),
               std::invalid_argument);
  ServingOptions negative_wait;
  negative_wait.batcher.max_wait_us = -1;
  EXPECT_THROW(ServingEngine(*engine, MakePolicies(), negative_wait),
               std::invalid_argument);
}

TEST(ServingEngineTest, DefaultQosPolicyTableShapesAndServes) {
  // The structure-only fallback table: speed-first caps the depth at
  // min(2, k) with the permissive threshold, accuracy-first runs the full
  // bank under a stricter one, throughput-first is the speed shape with the
  // INT8 classifier and a nonzero accuracy budget, and the result serves
  // bit-exactly.
  const QosPolicyTable k1 = DefaultQosPolicyTable(1);
  EXPECT_EQ(k1.For(QosClass::kSpeedFirst).config.t_max, 1);
  EXPECT_EQ(k1.For(QosClass::kAccuracyFirst).config.t_min, 1);

  SmallWorld& w = World();
  const std::unique_ptr<core::ShardedNaiEngine> engine = MakeSharded(2);
  const QosPolicyTable table = DefaultQosPolicyTable(engine->depth());
  EXPECT_EQ(table.For(QosClass::kSpeedFirst).config.t_max, 2);
  EXPECT_EQ(table.For(QosClass::kAccuracyFirst).config.t_max, 0);  // = k
  EXPECT_LT(table.For(QosClass::kAccuracyFirst).config.threshold,
            table.For(QosClass::kSpeedFirst).config.threshold);
  EXPECT_LT(table.For(QosClass::kSpeedFirst).default_deadline_ms,
            table.For(QosClass::kAccuracyFirst).default_deadline_ms);
  const QosPolicy& throughput = table.For(QosClass::kThroughputFirst);
  EXPECT_TRUE(throughput.config.int8_classifier);
  EXPECT_EQ(throughput.config.t_max,
            table.For(QosClass::kSpeedFirst).config.t_max);
  EXPECT_GT(throughput.accuracy_delta_budget, 0.0);
  EXPECT_EQ(table.For(QosClass::kSpeedFirst).accuracy_delta_budget, 0.0);
  EXPECT_EQ(table.For(QosClass::kAccuracyFirst).accuracy_delta_budget, 0.0);

  const core::InferenceResult ref =
      engine->Infer(w.all_nodes, table.For(QosClass::kSpeedFirst).config);
  ServingEngine server(*engine, table);
  std::vector<std::future<Response>> futures;
  for (const std::int32_t node : w.all_nodes) {
    futures.push_back(server.Submit(node, QosClass::kSpeedFirst));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get().prediction, ref.predictions[i]);
  }
}

TEST(ServingEngineTest, Int8PolicyRejectedWithoutQuantizedStack) {
  // A table carrying the INT8 throughput class must be refused at
  // front-end construction when the engine has no quantized bank attached
  // — not discovered on the first throughput-first request.
  SmallWorld& w = World();
  core::ShardedNaiEngine bare(
      w.data.graph, graph::MakeShards(w.data.graph, 2, kDepth),
      w.data.features, w.config.gamma, *w.classifiers, w.stationary.get(),
      nullptr);
  EXPECT_THROW(ServingEngine(bare, DefaultQosPolicyTable(kDepth)),
               std::invalid_argument);
  // Float-only tables keep working on the same bare engine.
  ServingEngine server(bare, MakePolicies());
  EXPECT_TRUE(server.Submit(w.all_nodes[0], QosClass::kSpeedFirst)
                  .get()
                  .served);
}

TEST(ServingEngineTest, ThroughputFirstCoBatchedBitExactAcrossClasses) {
  // All three classes interleaved through one front-end: every answer must
  // equal the direct InferMixed-style reference of its class's config, and
  // the per-class stats must account each stream separately.
  SmallWorld& w = World();
  QosPolicyTable policies = MakePolicies();
  QosPolicy& throughput = policies.For(QosClass::kThroughputFirst);
  throughput.config = policies.For(QosClass::kSpeedFirst).config;
  throughput.config.int8_classifier = true;
  throughput.default_deadline_ms = 1000.0;
  throughput.accuracy_delta_budget = 0.05;

  const std::unique_ptr<core::ShardedNaiEngine> engine = MakeSharded(2);
  const core::InferenceResult ref_speed =
      engine->Infer(w.all_nodes, policies.For(QosClass::kSpeedFirst).config);
  const core::InferenceResult ref_accuracy = engine->Infer(
      w.all_nodes, policies.For(QosClass::kAccuracyFirst).config);
  const core::InferenceResult ref_throughput =
      engine->Infer(w.all_nodes, throughput.config);

  ServingEngine server(*engine, policies);
  const QosClass cycle[] = {QosClass::kSpeedFirst, QosClass::kThroughputFirst,
                            QosClass::kAccuracyFirst};
  std::vector<std::future<Response>> futures;
  for (std::size_t i = 0; i < w.all_nodes.size(); ++i) {
    futures.push_back(server.Submit(w.all_nodes[i], cycle[i % 3]));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Response r = futures[i].get();
    const core::InferenceResult& ref = i % 3 == 0   ? ref_speed
                                       : i % 3 == 1 ? ref_throughput
                                                    : ref_accuracy;
    EXPECT_TRUE(r.served);
    EXPECT_EQ(r.qos, cycle[i % 3]);
    EXPECT_EQ(r.prediction, ref.predictions[i]) << "node " << i;
    EXPECT_EQ(r.exit_depth, ref.exit_depths[i]) << "node " << i;
  }
  const ServingStatsSnapshot stats = server.Stats();
  const std::size_t n = w.all_nodes.size();
  EXPECT_EQ(stats.per_class[static_cast<std::size_t>(
                QosClass::kThroughputFirst)]
                .count,
            static_cast<std::int64_t>(n / 3 + (n % 3 >= 2 ? 1 : 0)));
  EXPECT_EQ(stats.completed, static_cast<std::int64_t>(n));
}

TEST(ServingEngineTest, ThroughputFirstStaysWithinAccuracyDeltaBudget) {
  // The serving exactness gate's per-class contract: the INT8 class may
  // disagree with its float twin (same config, int8_classifier cleared) on
  // at most accuracy_delta_budget of predictions; float classes on none.
  SmallWorld& w = World();
  QosPolicyTable policies = MakePolicies();
  QosPolicy& throughput = policies.For(QosClass::kThroughputFirst);
  throughput.config = policies.For(QosClass::kSpeedFirst).config;
  throughput.config.int8_classifier = true;
  throughput.default_deadline_ms = 1000.0;
  throughput.accuracy_delta_budget = 0.05;

  const std::unique_ptr<core::ShardedNaiEngine> engine = MakeSharded(2);
  core::InferenceConfig float_twin = throughput.config;
  float_twin.int8_classifier = false;
  const core::InferenceResult twin = engine->Infer(w.all_nodes, float_twin);

  ServingEngine server(*engine, policies);
  std::vector<std::future<Response>> futures;
  for (const std::int32_t node : w.all_nodes) {
    futures.push_back(server.Submit(node, QosClass::kThroughputFirst));
  }
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Response r = futures[i].get();
    EXPECT_TRUE(r.served);
    if (r.prediction != twin.predictions[i]) ++flipped;
  }
  EXPECT_LE(static_cast<double>(flipped),
            throughput.accuracy_delta_budget *
                static_cast<double>(w.all_nodes.size()))
      << flipped << " of " << w.all_nodes.size()
      << " predictions differ from the float twin";
}

TEST(ServingEngineTest, SingleShardEngineIsServableToo) {
  // The front-end must not require real partitioning: one shard = one
  // queue + one pump over the whole graph.
  SmallWorld& w = World();
  const QosPolicyTable policies = MakePolicies();
  const std::unique_ptr<core::ShardedNaiEngine> engine = MakeSharded(1);
  const core::InferenceResult ref = engine->Infer(
      w.all_nodes, policies.For(QosClass::kAccuracyFirst).config);
  ServingEngine server(*engine, policies);
  std::vector<std::future<Response>> futures;
  for (const std::int32_t node : w.all_nodes) {
    futures.push_back(server.Submit(node, QosClass::kAccuracyFirst));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get().prediction, ref.predictions[i]);
  }
}

}  // namespace
}  // namespace nai::serve
