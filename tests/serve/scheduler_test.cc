// Adaptive-scheduler suite: priority bypass ordering and its aging bound
// at the queue, the admission controller's window rule and shed
// accounting, and end-to-end work stealing under a shard-skewed load —
// which must stay bit-identical to direct Infer with stealing on or off.
// Runs under TSan in scripts/check.sh (thieves, owner pumps and client
// threads all contend here).

#include "src/serve/scheduler.h"

#include <chrono>
#include <future>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/sharded_inference.h"
#include "src/graph/shard.h"
#include "src/serve/serving_engine.h"
#include "tests/core/core_fixtures.h"

namespace nai::serve {
namespace {

using nai::testing::MakeSmallWorld;
using nai::testing::SmallWorld;

constexpr int kDepth = 3;

SmallWorld& World() {
  static SmallWorld w = MakeSmallWorld(kDepth);
  return w;
}

core::ShardedNaiEngine MakeSharded(int num_shards, int halo_hops = kDepth) {
  SmallWorld& w = World();
  return core::ShardedNaiEngine(
      w.data.graph, graph::MakeShards(w.data.graph, num_shards, halo_hops),
      w.data.features, w.config.gamma, *w.classifiers, w.stationary.get(),
      nullptr);
}

QosPolicyTable MakePolicies(double speed_deadline_ms = 1000.0,
                            double accuracy_deadline_ms = 1000.0) {
  QosPolicyTable table;
  QosPolicy& speed = table.For(QosClass::kSpeedFirst);
  speed.config.nap = core::NapKind::kDistance;
  speed.config.relative_distance = true;
  speed.config.threshold = 0.3f;
  speed.config.t_max = 2;
  speed.default_deadline_ms = speed_deadline_ms;
  QosPolicy& accuracy = table.For(QosClass::kAccuracyFirst);
  accuracy.config.nap = core::NapKind::kNone;
  accuracy.config.t_max = 0;  // full depth k
  accuracy.default_deadline_ms = accuracy_deadline_ms;
  return table;
}

Request MakeQueued(std::int64_t id, QosClass qos,
                   ServeClock::time_point admitted) {
  Request r;
  r.id = id;
  r.node = static_cast<std::int32_t>(id);
  r.qos = qos;
  r.admitted = admitted;
  return r;
}

// --- Queue discipline ------------------------------------------------------

TEST(SchedulerQueueTest, SpeedFirstBypassesQueuedAccuracyWork) {
  // Large aging bound = pure priority: speed-first requests admitted later
  // still pop before every queued accuracy-first request.
  RequestQueue q(16, QueuePolicy{true, /*aging_us=*/60'000'000});
  const ServeClock::time_point now = ServeClock::now();
  ASSERT_TRUE(q.TryPush(MakeQueued(0, QosClass::kAccuracyFirst, now)));
  ASSERT_TRUE(q.TryPush(MakeQueued(1, QosClass::kAccuracyFirst, now)));
  ASSERT_TRUE(q.TryPush(MakeQueued(2, QosClass::kSpeedFirst, now)));
  ASSERT_TRUE(q.TryPush(MakeQueued(3, QosClass::kSpeedFirst, now)));
  std::vector<std::int64_t> order;
  for (int i = 0; i < 4; ++i) order.push_back(q.Pop()->id);
  EXPECT_EQ(order, (std::vector<std::int64_t>{2, 3, 0, 1}));
}

TEST(SchedulerQueueTest, PriorityOffIsGlobalFifo) {
  RequestQueue q(16, QueuePolicy{false, 0});
  const ServeClock::time_point now = ServeClock::now();
  ASSERT_TRUE(q.TryPush(MakeQueued(0, QosClass::kAccuracyFirst, now)));
  ASSERT_TRUE(q.TryPush(MakeQueued(1, QosClass::kSpeedFirst, now)));
  ASSERT_TRUE(q.TryPush(MakeQueued(2, QosClass::kAccuracyFirst, now)));
  ASSERT_TRUE(q.TryPush(MakeQueued(3, QosClass::kSpeedFirst, now)));
  for (std::int64_t want = 0; want < 4; ++want) {
    EXPECT_EQ(q.Pop()->id, want);
  }
}

TEST(SchedulerQueueTest, ZeroAgingDegeneratesToFifo) {
  // aging_us = 0: the accuracy head is always "aged", so seniority wins
  // every contest and the discipline is plain arrival order.
  RequestQueue q(16, QueuePolicy{true, 0});
  const ServeClock::time_point now = ServeClock::now();
  ASSERT_TRUE(q.TryPush(MakeQueued(0, QosClass::kAccuracyFirst, now)));
  ASSERT_TRUE(q.TryPush(MakeQueued(1, QosClass::kSpeedFirst, now)));
  ASSERT_TRUE(q.TryPush(MakeQueued(2, QosClass::kSpeedFirst, now)));
  EXPECT_EQ(q.Pop()->id, 0);
  EXPECT_EQ(q.Pop()->id, 1);
}

TEST(SchedulerQueueTest, AgedAccuracyHeadCannotBeStarved) {
  // An accuracy-first request that has already waited past the aging
  // bound outranks fresh speed-first arrivals — the no-starvation bound.
  RequestQueue q(16, QueuePolicy{true, /*aging_us=*/1000});
  const ServeClock::time_point now = ServeClock::now();
  ASSERT_TRUE(q.TryPush(MakeQueued(0, QosClass::kAccuracyFirst,
                                   now - std::chrono::milliseconds(10))));
  ASSERT_TRUE(q.TryPush(MakeQueued(1, QosClass::kSpeedFirst, now)));
  EXPECT_EQ(q.Pop()->id, 0);  // aged head wins despite lower class
  EXPECT_EQ(q.Pop()->id, 1);

  // Fresh accuracy head (age < bound): speed bypasses it.
  ASSERT_TRUE(q.TryPush(MakeQueued(2, QosClass::kAccuracyFirst,
                                   ServeClock::now())));
  ASSERT_TRUE(q.TryPush(MakeQueued(3, QosClass::kSpeedFirst,
                                   ServeClock::now())));
  EXPECT_EQ(q.Pop()->id, 3);
  EXPECT_EQ(q.Pop()->id, 2);
}

TEST(SchedulerQueueTest, TryPopBatchDrainsInPolicyOrder) {
  RequestQueue q(16, QueuePolicy{true, /*aging_us=*/60'000'000});
  const ServeClock::time_point now = ServeClock::now();
  ASSERT_TRUE(q.TryPush(MakeQueued(0, QosClass::kAccuracyFirst, now)));
  ASSERT_TRUE(q.TryPush(MakeQueued(1, QosClass::kSpeedFirst, now)));
  ASSERT_TRUE(q.TryPush(MakeQueued(2, QosClass::kSpeedFirst, now)));
  std::vector<Request> batch = q.TryPopBatch(2);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].id, 1);
  EXPECT_EQ(batch[1].id, 2);
  batch = q.TryPopBatch(8);  // more than queued: returns what exists
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 0);
  EXPECT_TRUE(q.TryPopBatch(4).empty());
}

TEST(SchedulerQueueTest, NegativeAgingThrows) {
  EXPECT_THROW(RequestQueue(4, QueuePolicy{true, -1}),
               std::invalid_argument);
}

// --- Admission controller --------------------------------------------------

TEST(AdmissionControllerTest, AdaptWaitUsFollowsTheFillTimeRule) {
  // Unknown rate: keep the configured base window (clamped to the bounds).
  EXPECT_EQ(AdmissionController::AdaptWaitUs(0.0, 64, 200, 0, 2000), 200);
  EXPECT_EQ(AdmissionController::AdaptWaitUs(0.0, 64, 9999, 0, 2000), 2000);
  // Arrivals sparser than the longest permissible window: holding a batch
  // open buys nothing, collapse to the minimum.
  EXPECT_EQ(AdmissionController::AdaptWaitUs(10.0, 64, 200, 50, 2000), 50);
  // Mid rate: the expected batch-fill time, clamped into the bounds.
  // 10k q/s -> 100us gaps; 8-batch fill = 700us.
  EXPECT_EQ(AdmissionController::AdaptWaitUs(10'000.0, 8, 200, 0, 2000),
            700);
  EXPECT_EQ(AdmissionController::AdaptWaitUs(1'000.0, 64, 200, 0, 2000),
            2000);  // fill time 63ms clamps to the upper bound
  // Saturating rate: the batch fills almost instantly, window irrelevant
  // but still well-formed.
  EXPECT_EQ(AdmissionController::AdaptWaitUs(1e9, 64, 200, 25, 2000), 25);
}

TEST(AdmissionControllerTest, NeverShedsBeforeServiceEwmaForms) {
  SchedulerOptions opts;
  AdmissionController c(1, opts, 64, 200);
  EXPECT_TRUE(c.Admit(0, /*queue_depth=*/100000, /*budget_ms=*/0.001));
}

TEST(AdmissionControllerTest, ShedsWhenPredictedWaitExceedsBudget) {
  SchedulerOptions opts;
  opts.ewma_alpha = 1.0;  // take each sample verbatim: deterministic EWMA
  AdmissionController c(1, opts, 64, 200);
  // 10 requests in 10ms -> 1ms per request.
  c.RecordBatch(0, 10, 10.0, /*applied_wait_us=*/200, SchedClock::now());
  // Budget 2ms admits at most 2 queued ahead.
  EXPECT_TRUE(c.Admit(0, 1, 2.0));
  EXPECT_FALSE(c.Admit(0, 2, 2.0));
  EXPECT_FALSE(c.Admit(0, 50, 2.0));
  // A roomy budget admits deep queues.
  EXPECT_TRUE(c.Admit(0, 50, 1000.0));
  const SchedulerShardSnapshot snap = c.Snapshot(0);
  EXPECT_GT(snap.service_qps, 0.0);
  EXPECT_GT(snap.admit_limit, 0);
}

TEST(AdmissionControllerTest, EqualTimestampArrivalsDoNotResetTheEwma) {
  // Regression: a coarse monotone clock hands equal stamps to back-to-back
  // arrivals. The zero gap must *seed* the EWMA (an infinite-rate
  // observation) that later gaps blend into — the old `ewma_gap_us <= 0`
  // seeding test kept the EWMA at 0 and let the next real gap overwrite
  // history instead of blending.
  SchedulerOptions opts;
  opts.ewma_alpha = 0.5;  // deterministic halves
  AdmissionController c(1, opts, 8, 200);
  const SchedClock::time_point now = SchedClock::now();
  c.RecordArrival(0, now);
  c.RecordArrival(0, now);  // injected equal stamp: gap 0 seeds
  c.RecordArrival(0, now + std::chrono::microseconds(100));
  // Blend, not overwrite: 0.5 * 100 + 0.5 * 0 = 50us gap -> 20k q/s. The
  // buggy re-seed would have reported 100us -> 10k q/s.
  EXPECT_NEAR(c.Snapshot(0).arrival_qps, 20000.0, 1.0);
}

TEST(AdmissionControllerTest, ZeroGapAfterSeedingBlendsIntoTheEwma) {
  // The mirror case: a zero gap arriving *after* the EWMA formed must pull
  // it down by the blend weight, not be mistaken for an unseeded state.
  SchedulerOptions opts;
  opts.ewma_alpha = 0.5;
  AdmissionController c(1, opts, 8, 200);
  const SchedClock::time_point now = SchedClock::now();
  c.RecordArrival(0, now);
  c.RecordArrival(0, now + std::chrono::microseconds(100));  // seeds 100us
  const SchedClock::time_point burst = now + std::chrono::microseconds(100);
  c.RecordArrival(0, burst);  // equal stamp: 0.5 * 0 + 0.5 * 100 = 50us
  EXPECT_NEAR(c.Snapshot(0).arrival_qps, 20000.0, 1.0);
}

TEST(AdmissionControllerTest, TraceRecordsAdaptationSteps) {
  SchedulerOptions opts;
  opts.ewma_alpha = 0.5;
  AdmissionController c(2, opts, 8, 200);
  const SchedClock::time_point now = SchedClock::now();
  c.RecordArrival(1, now);
  c.RecordArrival(1, now + std::chrono::microseconds(100));
  c.RecordBatch(1, 4, 2.0, /*applied_wait_us=*/200,
                now + std::chrono::microseconds(200));
  const std::vector<SchedulerTraceEvent> trace = c.Trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].shard, 1u);
  EXPECT_GT(trace[0].arrival_qps, 0.0);
  EXPECT_GT(trace[0].service_qps, 0.0);
  // 100us EWMA gaps with an 8-batch -> 700us window.
  EXPECT_EQ(trace[0].batch_wait_us, c.WaitUs(1));
  // The event records the window the batch *ran* with, verbatim — here the
  // base window it formed under, not the newly derived one.
  EXPECT_EQ(trace[0].applied_wait_us, 200);
  // The untouched shard keeps the base window and no samples.
  const SchedulerShardSnapshot idle = c.Snapshot(0);
  EXPECT_EQ(idle.arrival_qps, 0.0);
  EXPECT_EQ(idle.batch_wait_us, 200);
}

TEST(AdmissionControllerTest, DegenerateOptionsThrow) {
  SchedulerOptions bad_alpha;
  bad_alpha.ewma_alpha = 0.0;
  EXPECT_THROW(AdmissionController(1, bad_alpha, 8, 200),
               std::invalid_argument);
  bad_alpha.ewma_alpha = 1.5;
  EXPECT_THROW(AdmissionController(1, bad_alpha, 8, 200),
               std::invalid_argument);
  SchedulerOptions bad_aging;
  bad_aging.priority_aging_us = -1;
  EXPECT_THROW(AdmissionController(1, bad_aging, 8, 200),
               std::invalid_argument);
  SchedulerOptions bad_poll;
  bad_poll.steal_poll_us = 0;
  EXPECT_THROW(AdmissionController(1, bad_poll, 8, 200),
               std::invalid_argument);
  SchedulerOptions bad_bounds;
  bad_bounds.min_wait_us = 500;
  bad_bounds.max_wait_us_bound = 100;
  EXPECT_THROW(AdmissionController(1, bad_bounds, 8, 200),
               std::invalid_argument);
}

// --- End-to-end scheduling -------------------------------------------------

/// Submits every node owned by the last shard (a fully skewed load), half
/// speed-first, and checks the responses bit-match direct Infer.
void RunSkewedLoad(ServingEngine& server,
                   const core::InferenceResult& ref_speed,
                   const core::InferenceResult& ref_accuracy,
                   const std::vector<std::int32_t>& skewed_nodes) {
  std::vector<std::future<Response>> futures;
  std::vector<QosClass> classes;
  futures.reserve(skewed_nodes.size());
  for (std::size_t i = 0; i < skewed_nodes.size(); ++i) {
    classes.push_back(i % 2 == 0 ? QosClass::kSpeedFirst
                                 : QosClass::kAccuracyFirst);
    futures.push_back(server.Submit(skewed_nodes[i], classes.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Response r = futures[i].get();
    const core::InferenceResult& ref =
        classes[i] == QosClass::kSpeedFirst ? ref_speed : ref_accuracy;
    const std::int32_t node = skewed_nodes[i];
    ASSERT_TRUE(r.served);
    EXPECT_EQ(r.prediction, ref.predictions[node]) << "node " << node;
    EXPECT_EQ(r.exit_depth, ref.exit_depths[node]) << "node " << node;
  }
}

TEST(SchedulerServingTest, SkewedLoadStealsAndStaysBitExact) {
  // All traffic targets one shard; the other pumps are idle and must
  // steal. Stolen requests split between the thief's engine (speed-first
  // fits the halo for interior nodes) and the owner fallback
  // (accuracy-first runs at T_max = halo_hops, never eligible) — and
  // every answer must still be bit-identical to direct Infer.
  SmallWorld& w = World();
  const QosPolicyTable policies = MakePolicies();
  core::ShardedNaiEngine engine = MakeSharded(2);
  const core::InferenceResult ref_speed =
      engine.Infer(w.all_nodes, policies.For(QosClass::kSpeedFirst).config);
  const core::InferenceResult ref_accuracy = engine.Infer(
      w.all_nodes, policies.For(QosClass::kAccuracyFirst).config);

  std::vector<std::int32_t> skewed;
  for (const std::int32_t v : w.all_nodes) {
    if (engine.sharded_graph().owner[v] == 1) skewed.push_back(v);
  }
  ASSERT_GT(skewed.size(), 50u);

  ServingOptions options;
  options.batcher.max_batch = 2;  // many small batches: a long backlog
  options.batcher.max_wait_us = 0;
  options.scheduler.stealing = true;
  options.scheduler.steal_min_backlog = 1;
  options.scheduler.steal_poll_us = 50;
  // Cache off: the repeated waves below re-offer the same nodes, and a
  // warm cache would answer them inline — no backlog, nothing to steal.
  options.cache.enabled = false;
  ServingEngine server(engine, policies, options);

  // Whether the idle pump's poll lands while the backlog exists is up to
  // the OS scheduler (this box may be single-core), so offer the skewed
  // wave repeatedly — every wave is exactness-checked — until a steal has
  // been observed. Fifty waves of ~100 tiny batches without a single
  // steal would mean stealing is actually broken.
  std::int64_t waves = 0;
  while (waves < 50) {
    RunSkewedLoad(server, ref_speed, ref_accuracy, skewed);
    ++waves;
    if (server.Stats().stolen_batches > 0) break;
  }
  server.Shutdown();

  const ServingStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.completed,
            static_cast<std::int64_t>(skewed.size()) * waves);
  EXPECT_GT(stats.stolen_batches, 0);
  EXPECT_GT(stats.stolen_requests, 0);
  EXPECT_EQ(stats.scheduler[0].batches_stolen_by, stats.stolen_batches);
  EXPECT_EQ(stats.scheduler[1].batches_stolen_from, stats.stolen_batches);
  EXPECT_LE(stats.steal_fallback_requests, stats.stolen_requests);
}

TEST(SchedulerServingTest, StealingDisabledServesSameAnswers) {
  // The A/B the bench sweeps: everything off must produce the same bits
  // (and, obviously, no steals).
  SmallWorld& w = World();
  const QosPolicyTable policies = MakePolicies();
  core::ShardedNaiEngine engine = MakeSharded(2);
  const core::InferenceResult ref_speed =
      engine.Infer(w.all_nodes, policies.For(QosClass::kSpeedFirst).config);
  const core::InferenceResult ref_accuracy = engine.Infer(
      w.all_nodes, policies.For(QosClass::kAccuracyFirst).config);

  std::vector<std::int32_t> skewed;
  for (const std::int32_t v : w.all_nodes) {
    if (engine.sharded_graph().owner[v] == 1) skewed.push_back(v);
  }
  ServingOptions options;
  options.scheduler.priority = false;
  options.scheduler.stealing = false;
  options.scheduler.adaptive = false;
  ServingEngine server(engine, policies, options);
  RunSkewedLoad(server, ref_speed, ref_accuracy, skewed);
  server.Shutdown();
  const ServingStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.stolen_batches, 0);
  EXPECT_EQ(stats.stolen_requests, 0);
  EXPECT_EQ(stats.shed_adaptive, 0);
}

TEST(SchedulerServingTest, AdaptiveShedsAreAccounted) {
  // Warm the service EWMA with a served batch, then flood TrySubmit with
  // a microscopic budget: once anything is queued ahead, the controller
  // must shed (predicted wait > budget) and count it as shed_adaptive.
  SmallWorld& w = World();
  const QosPolicyTable policies = MakePolicies();
  core::ShardedNaiEngine engine = MakeSharded(1);
  ServingOptions options;
  options.batcher.max_batch = 1;  // serve one at a time: backlog persists
  options.batcher.max_wait_us = 0;
  options.scheduler.stealing = false;
  // Cache off: the flood repeats warm nodes, and hits would bypass the
  // admission controller this test exists to exercise.
  options.cache.enabled = false;
  ServingEngine server(engine, policies, options);

  // Phase 1: a few served requests to form the EWMA.
  for (int i = 0; i < 8; ++i) {
    server.Submit(w.all_nodes[i], QosClass::kSpeedFirst).get();
  }
  ASSERT_GT(server.Stats().scheduler[0].service_qps, 0.0);

  // Phase 2: flood faster than the engine can drain.
  std::vector<std::future<Response>> admitted;
  for (std::size_t i = 0; i < 400; ++i) {
    auto f = server.TrySubmit(w.all_nodes[i % w.all_nodes.size()],
                              QosClass::kSpeedFirst, /*deadline_ms=*/1e-3);
    if (f.has_value()) admitted.push_back(std::move(*f));
  }
  for (auto& f : admitted) f.get();
  server.Shutdown();

  const ServingStatsSnapshot stats = server.Stats();
  EXPECT_GT(stats.shed_adaptive, 0);
  EXPECT_EQ(stats.scheduler[0].adaptive_sheds, stats.shed_adaptive);
  // Every adaptive shed is also a rejection, and nothing shed was counted
  // submitted.
  EXPECT_GE(stats.rejected, stats.shed_adaptive);
  EXPECT_EQ(stats.submitted,
            static_cast<std::int64_t>(admitted.size()) + 8);
  EXPECT_GT(stats.scheduler[0].admit_limit, 0);
}

TEST(SchedulerServingTest, AdaptationTraceIsExposed) {
  SmallWorld& w = World();
  const QosPolicyTable policies = MakePolicies();
  core::ShardedNaiEngine engine = MakeSharded(2);
  ServingOptions options;
  options.scheduler.stealing = false;
  ServingEngine server(engine, policies, options);
  std::vector<std::future<Response>> futures;
  for (const std::int32_t node : w.all_nodes) {
    futures.push_back(server.Submit(node, QosClass::kSpeedFirst));
  }
  for (auto& f : futures) f.get();
  const ServingStatsSnapshot stats = server.Stats();
  ASSERT_FALSE(stats.adaptation_trace.empty());
  EXPECT_EQ(stats.adaptation_trace.size(),
            static_cast<std::size_t>(
                std::min<std::int64_t>(stats.num_batches,
                                       AdmissionController::kTraceCapacity)));
  double last_t = -1.0;
  for (const SchedulerTraceEvent& event : stats.adaptation_trace) {
    EXPECT_GE(event.t_ms, last_t);  // chronological
    last_t = event.t_ms;
    EXPECT_LT(event.shard, 2u);
    EXPECT_GE(event.batch_wait_us, options.scheduler.min_wait_us);
    EXPECT_LE(event.batch_wait_us, options.scheduler.max_wait_us_bound);
  }
}

}  // namespace
}  // namespace nai::serve
