// ApplyDeltas contract of the serving front-end: after a swap every query —
// any shard count, either QoS class, cache on or off — answers
// bit-identically to a from-scratch engine on the merged graph; epochs are
// stamped into responses and the stats snapshot; the steal-eligibility halo
// data is rebuilt when a delta changes shard halos; and queries racing a
// swap stay safe (runs under TSan in scripts/check.sh).

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/sharded_inference.h"
#include "src/graph/delta.h"
#include "src/graph/generators.h"
#include "src/graph/shard.h"
#include "src/serve/serving_engine.h"
#include "tests/core/core_fixtures.h"

namespace nai::serve {
namespace {

using nai::testing::MakeSmallWorld;
using nai::testing::SmallWorld;

constexpr int kDepth = 3;

SmallWorld& World() {
  static SmallWorld w = MakeSmallWorld(kDepth);
  return w;
}

std::shared_ptr<const graph::GraphSnapshot> BaseSnapshot() {
  SmallWorld& w = World();
  return graph::MakeSnapshot(w.data.graph, w.data.features, w.config.gamma);
}

QosPolicyTable MakePolicies() {
  QosPolicyTable table;
  QosPolicy& speed = table.For(QosClass::kSpeedFirst);
  speed.config.nap = core::NapKind::kDistance;
  speed.config.relative_distance = true;
  speed.config.threshold = 0.3f;
  speed.config.t_max = 2;
  speed.default_deadline_ms = 1000.0;
  QosPolicy& accuracy = table.For(QosClass::kAccuracyFirst);
  accuracy.config.nap = core::NapKind::kNone;
  accuracy.config.t_max = 0;  // full depth k
  accuracy.default_deadline_ms = 1000.0;
  return table;
}

graph::GraphDelta ChurnDelta(const graph::GraphSnapshot& base) {
  const std::size_t f = base.features().cols();
  const std::int64_t n = base.graph().num_nodes();
  graph::GraphDelta delta;
  const std::int32_t a = delta.AddNode(std::vector<float>(f, 0.6f), n);
  const std::int32_t b = delta.AddNode(std::vector<float>(f, -0.2f), n);
  delta.AddEdge(a, 7);
  delta.AddEdge(b, 120);
  delta.AddEdge(a, b);
  delta.AddEdge(15, 301);
  delta.UpdateFeatures(64, std::vector<float>(f, 2.0f));
  return delta;
}

// The PR's acceptance gate: after ApplyDeltas + swap, every query matches a
// from-scratch engine on the merged graph — per shard count, per QoS class,
// cache on and off.
TEST(SnapshotSwapTest, ApplyDeltasBitExactAcrossShardsQosAndCache) {
  SmallWorld& w = World();
  auto base = BaseSnapshot();
  const graph::GraphDelta delta = ChurnDelta(*base);
  const QosPolicyTable policies = MakePolicies();

  const auto merged = graph::MergeFromScratch(*base, {delta});
  core::StationaryState merged_stationary(merged->graph(), merged->features(),
                                          w.config.gamma);
  core::NaiEngine reference(merged->graph(), merged->features(), w.config.gamma,
                            *w.classifiers, &merged_stationary, nullptr);
  std::vector<std::int32_t> all_merged(merged->num_nodes());
  for (std::size_t i = 0; i < all_merged.size(); ++i) {
    all_merged[i] = static_cast<std::int32_t>(i);
  }

  for (const int shards : {1, 2, 4}) {
    for (const bool cache_on : {false, true}) {
      core::ShardedNaiEngine engine(
          base, graph::MakeShards(base->adj(), shards, kDepth),
          *w.classifiers, nullptr);
      ServingOptions options;
      options.cache.enabled = cache_on;
      ServingEngine server(engine, policies, options);

      // Warm the pre-swap state (and, when enabled, the cache) so the swap
      // has something to invalidate.
      for (std::int32_t v = 0; v < 50; ++v) {
        ASSERT_TRUE(server.Submit(v, QosClass::kSpeedFirst).get().served);
      }

      const DeltaApplyReport applied = server.ApplyDeltas(delta).get();
      EXPECT_EQ(applied.version, 1u);
      EXPECT_EQ(applied.build.new_nodes, 2);

      for (const QosClass qos :
           {QosClass::kSpeedFirst, QosClass::kAccuracyFirst}) {
        const core::InferenceResult want =
            reference.Infer(all_merged, policies.For(qos).config);
        std::vector<std::future<Response>> futures;
        futures.reserve(all_merged.size());
        for (const std::int32_t v : all_merged) {
          futures.push_back(server.Submit(v, qos));
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
          const Response r = futures[i].get();
          ASSERT_TRUE(r.served);
          EXPECT_EQ(r.prediction, want.predictions[i])
              << "shards=" << shards << " cache=" << cache_on << " node "
              << i;
          EXPECT_EQ(r.exit_depth, want.exit_depths[i])
              << "shards=" << shards << " cache=" << cache_on << " node "
              << i;
          // Post-swap answers — engine-served or cache-replayed — all carry
          // the new graph version.
          EXPECT_EQ(r.epoch, 1u);
        }
      }
      server.Shutdown();
      const ServingStatsSnapshot stats = server.Stats();
      EXPECT_EQ(stats.epoch, 1u);
      EXPECT_EQ(stats.snapshot_swaps, 1);
    }
  }
}

TEST(SnapshotSwapTest, ApplyDeltasOnBorrowedEngineThrows) {
  SmallWorld& w = World();
  core::ShardedNaiEngine engine(
      w.data.graph, graph::MakeShards(w.data.graph, 2, kDepth),
      w.data.features, w.config.gamma, *w.classifiers, w.stationary.get(),
      nullptr);
  ServingEngine server(engine, MakePolicies());
  EXPECT_THROW(server.ApplyDeltas(graph::GraphDelta{}), std::logic_error);
}

TEST(SnapshotSwapTest, InvalidDeltaSurfacesThroughFutureAndKeepsServing) {
  SmallWorld& w = World();
  auto base = BaseSnapshot();
  core::ShardedNaiEngine engine(base,
                                graph::MakeShards(base->adj(), 2, kDepth),
                                *w.classifiers, nullptr);
  ServingEngine server(engine, MakePolicies());
  graph::GraphDelta bad;
  bad.AddEdge(0, static_cast<std::int32_t>(base->num_nodes()));
  EXPECT_THROW(server.ApplyDeltas(bad).get(), std::invalid_argument);
  // Serving state unchanged: still epoch 0, still answering.
  EXPECT_EQ(server.Stats().epoch, 0u);
  EXPECT_TRUE(server.Submit(3, QosClass::kSpeedFirst).get().served);
}

// Satellite 1: the serving epoch is stamped into the completion path and
// exposed in the stats snapshot, so staleness is measurable.
TEST(SnapshotSwapTest, EpochStampedInResponsesAndStats) {
  SmallWorld& w = World();
  auto base = BaseSnapshot();
  core::ShardedNaiEngine engine(base,
                                graph::MakeShards(base->adj(), 2, kDepth),
                                *w.classifiers, nullptr);
  ServingEngine server(engine, MakePolicies());

  EXPECT_EQ(server.Submit(11, QosClass::kSpeedFirst).get().epoch, 0u);
  EXPECT_EQ(server.Stats().epoch, 0u);
  EXPECT_EQ(server.Stats().snapshot_swaps, 0);

  server.ApplyDeltas(ChurnDelta(*base)).get();
  EXPECT_EQ(server.Submit(11, QosClass::kSpeedFirst).get().epoch, 1u);
  const ServingStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.snapshot_swaps, 1);
  EXPECT_GE(stats.stale_served, 0);
}

// Satellite 2: the halo-depth BFS behind CanServeFromShard is rebuilt when
// a swap changes shard halos. On a 10-path split [0..4 | 5..9] with a
// 2-hop halo, node 2 is outside shard 1's halo until the inserted edge
// {7, 2} pulls it to halo depth 1 — steal-eligible for a 1-hop config.
TEST(SnapshotSwapTest, HaloDepthsRecomputedAfterSwapChangesHalos) {
  graph::Graph path = graph::PathGraph(10);
  tensor::Matrix feats(10, World().config.feature_dim);
  for (std::size_t i = 0; i < feats.rows() * feats.cols(); ++i) {
    feats.data()[i] = 0.01f * static_cast<float>(i);
  }
  auto base = graph::MakeSnapshot(std::move(path), std::move(feats),
                                  World().config.gamma);
  std::vector<std::int32_t> owner = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  core::ShardedNaiEngine engine(
      base, graph::MakeShards(base->adj(), owner, /*halo=*/2),
      *World().classifiers, nullptr, /*use_stationary=*/false);

  core::InferenceConfig cfg;
  cfg.t_max = 1;
  EXPECT_TRUE(engine.CanServeFromShard(1, 4, cfg));   // depth 1 in halo
  EXPECT_FALSE(engine.CanServeFromShard(1, 3, cfg));  // depth 2: row inexact
  EXPECT_FALSE(engine.CanServeFromShard(1, 2, cfg));  // outside the halo

  const auto pinned = engine.PinState();
  graph::GraphDelta delta;
  delta.AddEdge(7, 2);
  graph::SnapshotBuilder builder(base);
  engine.SwapSnapshot(builder.Apply(delta));

  // New halo: 2 is adjacent to owned node 7 -> depth 1, eligible; 1 and 3
  // land at depth 2 (still too shallow for an exact 1-hop BFS).
  EXPECT_TRUE(engine.CanServeFromShard(1, 2, cfg));
  EXPECT_FALSE(engine.CanServeFromShard(1, 1, cfg));
  EXPECT_FALSE(engine.CanServeFromShard(1, 3, cfg));
  // The pinned pre-swap state still answers with the old halo — the state
  // overload is what keeps an in-flight steal check consistent.
  EXPECT_FALSE(engine.CanServeFromShard(*pinned, 1, 2, cfg));
}

// Queries racing ApplyDeltas: client threads hammer Submit while several
// swaps land. Every response must be served and stamped with some epoch the
// engine actually passed through; stats stay consistent. (The interesting
// checking happens under TSan.)
TEST(SnapshotSwapTest, ConcurrentQueriesAcrossSwapsStaySafe) {
  SmallWorld& w = World();
  auto base = BaseSnapshot();
  core::ShardedNaiEngine engine(base,
                                graph::MakeShards(base->adj(), 2, kDepth),
                                *w.classifiers, nullptr);
  ServingOptions options;
  options.scheduler.stealing = true;
  ServingEngine server(engine, MakePolicies(), options);

  constexpr int kSwaps = 3;
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> served{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::int32_t v = 37 * (c + 1);
      while (!stop.load(std::memory_order_acquire)) {
        const Response r =
            server
                .Submit(v % static_cast<std::int32_t>(
                                w.data.graph.num_nodes()),
                        c % 2 == 0 ? QosClass::kSpeedFirst
                                   : QosClass::kAccuracyFirst)
                .get();
        ASSERT_TRUE(r.served);
        ASSERT_LE(r.epoch, static_cast<std::uint64_t>(kSwaps));
        served.fetch_add(1, std::memory_order_relaxed);
        v += 13;
      }
    });
  }

  std::shared_ptr<const graph::GraphSnapshot> current = base;
  for (int d = 0; d < kSwaps; ++d) {
    const DeltaApplyReport applied =
        server.ApplyDeltas(ChurnDelta(*engine.PinState()->snapshot)).get();
    EXPECT_EQ(applied.version, static_cast<std::uint64_t>(d + 1));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();

  server.Shutdown();
  const ServingStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.epoch, static_cast<std::uint64_t>(kSwaps));
  EXPECT_EQ(stats.snapshot_swaps, kSwaps);
  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(stats.rejected, 0);
}

}  // namespace
}  // namespace nai::serve
