// ResultCache contract: LRU eviction order, exact O(1) epoch invalidation
// (bump logically empties; in-flight fills for an older epoch are dropped),
// config-pointer keying — and, through the ServingEngine, the extended
// bit-exactness guarantee: a cache hit replays exactly the bits a cold
// Infer produces at the same epoch, stolen batches fill the owner shard's
// cache, and the hit path stays correct while clients, pumps and epoch
// bumps race. Runs under TSan in scripts/check.sh (the client hit path
// races the pump fill path by design).

#include "src/serve/result_cache.h"

#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/sharded_inference.h"
#include "src/graph/shard.h"
#include "src/serve/serving_engine.h"
#include "tests/core/core_fixtures.h"

namespace nai::serve {
namespace {

using nai::testing::MakeSmallWorld;
using nai::testing::SmallWorld;

constexpr int kDepth = 3;

SmallWorld& World() {
  static SmallWorld w = MakeSmallWorld(kDepth);
  return w;
}

core::ShardedNaiEngine MakeSharded(int num_shards, int halo_hops = kDepth) {
  SmallWorld& w = World();
  return core::ShardedNaiEngine(
      w.data.graph, graph::MakeShards(w.data.graph, num_shards, halo_hops),
      w.data.features, w.config.gamma, *w.classifiers, w.stationary.get(),
      nullptr);
}

QosPolicyTable MakePolicies() {
  QosPolicyTable table;
  QosPolicy& speed = table.For(QosClass::kSpeedFirst);
  speed.config.nap = core::NapKind::kDistance;
  speed.config.relative_distance = true;
  speed.config.threshold = 0.3f;
  speed.config.t_max = 2;
  speed.default_deadline_ms = 1000.0;
  QosPolicy& accuracy = table.For(QosClass::kAccuracyFirst);
  accuracy.config.nap = core::NapKind::kNone;
  accuracy.config.t_max = 0;  // full depth k
  accuracy.default_deadline_ms = 1000.0;
  return table;
}

// ---------------------------------------------------------------------------
// Unit level: the cache data structure itself.
// ---------------------------------------------------------------------------

TEST(ResultCacheTest, ZeroCapacityThrows) {
  EXPECT_THROW(ResultCache(0), std::invalid_argument);
}

TEST(ResultCacheTest, MissFillHitRoundTrip) {
  ResultCache cache(4);
  const core::InferenceConfig config;
  EXPECT_FALSE(cache.Lookup(7, &config).has_value());
  cache.Insert(7, &config, {3, 2}, cache.epoch());
  const std::optional<CachedResult> hit = cache.Lookup(7, &config);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->prediction, 3);
  EXPECT_EQ(hit->exit_depth, 2);
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.fills, 1);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_ratio, 0.5);
}

TEST(ResultCacheTest, ConfigPointerIdentityKeysDistinctEntries) {
  // Two configs with identical fields but different addresses are distinct
  // keys — the same conservative identity InferMixed groups by.
  ResultCache cache(4);
  const core::InferenceConfig a;
  const core::InferenceConfig b;
  cache.Insert(7, &a, {1, 1}, cache.epoch());
  EXPECT_FALSE(cache.Lookup(7, &b).has_value());
  cache.Insert(7, &b, {2, 3}, cache.epoch());
  EXPECT_EQ(cache.Lookup(7, &a)->prediction, 1);
  EXPECT_EQ(cache.Lookup(7, &b)->prediction, 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheTest, CapacityEvictsInLruOrder) {
  ResultCache cache(3);
  const core::InferenceConfig config;
  cache.Insert(1, &config, {1, 0}, 0);
  cache.Insert(2, &config, {2, 0}, 0);
  cache.Insert(3, &config, {3, 0}, 0);
  // Touch node 1: node 2 becomes the LRU entry.
  ASSERT_TRUE(cache.Lookup(1, &config).has_value());
  cache.Insert(4, &config, {4, 0}, 0);  // at capacity: evicts node 2
  EXPECT_FALSE(cache.Lookup(2, &config).has_value());
  EXPECT_TRUE(cache.Lookup(1, &config).has_value());
  EXPECT_TRUE(cache.Lookup(3, &config).has_value());
  EXPECT_TRUE(cache.Lookup(4, &config).has_value());
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.size, 3u);
  // Refreshing a resident key must not evict or grow.
  cache.Insert(4, &config, {40, 1}, 0);
  EXPECT_EQ(cache.Stats().evictions, 1);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Lookup(4, &config)->prediction, 40);
}

TEST(ResultCacheTest, BumpEpochLogicallyEmptiesWithoutTouchingEntries) {
  ResultCache cache(4);
  const core::InferenceConfig config;
  cache.Insert(1, &config, {1, 0}, 0);
  cache.Insert(2, &config, {2, 0}, 0);
  cache.BumpEpoch();
  EXPECT_EQ(cache.epoch(), 1u);
  // The bump itself is O(1): entries are still resident...
  EXPECT_EQ(cache.size(), 2u);
  // ...but logically gone: a lookup misses and lazily reclaims the slot.
  EXPECT_FALSE(cache.Lookup(1, &config).has_value());
  EXPECT_EQ(cache.size(), 1u);
  // A current-epoch refill under the same key serves again.
  cache.Insert(2, &config, {20, 1}, cache.epoch());
  EXPECT_EQ(cache.Lookup(2, &config)->prediction, 20);
}

TEST(ResultCacheTest, InFlightFillForAnOlderEpochIsDropped) {
  // The mid-flight contract: a miss captures the epoch, computes, then
  // fills. If the epoch moved while it computed, the fill must be dropped
  // — caching it would serve a logically invalidated answer forever.
  ResultCache cache(4);
  const core::InferenceConfig config;
  const std::uint64_t before = cache.epoch();
  cache.BumpEpoch();  // lands while the "engine call" is in flight
  cache.Insert(9, &config, {5, 1}, before);
  EXPECT_FALSE(cache.Lookup(9, &config).has_value());
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.stale_fills_dropped, 1);
  EXPECT_EQ(stats.fills, 0);
  EXPECT_EQ(stats.size, 0u);
}

// ---------------------------------------------------------------------------
// Engine level: the hit path through the serving front-end.
// ---------------------------------------------------------------------------

TEST(ResultCacheServingTest, WarmHitsReplayColdBitsExactly) {
  SmallWorld& w = World();
  const QosPolicyTable policies = MakePolicies();
  core::ShardedNaiEngine engine = MakeSharded(2);
  const core::InferenceResult ref_speed =
      engine.Infer(w.all_nodes, policies.For(QosClass::kSpeedFirst).config);
  const core::InferenceResult ref_accuracy = engine.Infer(
      w.all_nodes, policies.For(QosClass::kAccuracyFirst).config);

  ServingEngine server(engine, policies);
  const std::int64_t n = static_cast<std::int64_t>(w.all_nodes.size());
  // Wave 1 (cold): every request misses and fills at batch completion.
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<std::future<Response>> futures;
    std::vector<QosClass> classes;
    for (std::size_t i = 0; i < w.all_nodes.size(); ++i) {
      classes.push_back(i % 2 == 0 ? QosClass::kSpeedFirst
                                   : QosClass::kAccuracyFirst);
      futures.push_back(server.Submit(w.all_nodes[i], classes.back()));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const Response r = futures[i].get();
      const core::InferenceResult& ref =
          classes[i] == QosClass::kSpeedFirst ? ref_speed : ref_accuracy;
      EXPECT_TRUE(r.served);
      EXPECT_EQ(r.prediction, ref.predictions[i])
          << "wave " << wave << " node " << i;
      EXPECT_EQ(r.exit_depth, ref.exit_depths[i])
          << "wave " << wave << " node " << i;
    }
  }

  // Wave 2 was fully warm: every one of its responses came from the cache.
  const ServingStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.cache_hits, n);
  EXPECT_EQ(stats.completed, 2 * n);
  EXPECT_EQ(stats.submitted, 2 * n);
  EXPECT_DOUBLE_EQ(stats.cache_hit_ratio, 0.5);
  for (std::size_t c = 0; c < kNumQosClasses; ++c) {
    // The hit/miss split partitions each class's completions, and the
    // all-time counts stay separate from the percentile window sizes.
    EXPECT_EQ(stats.per_class_hit[c].count + stats.per_class_miss[c].count,
              stats.per_class[c].count);
    EXPECT_EQ(stats.per_class_hit[c].count, stats.per_class[c].count / 2);
    EXPECT_EQ(stats.per_class[c].window, stats.per_class[c].count);
  }
  // Per-shard counters roll up: fills happened only in owning shards.
  std::int64_t fills = 0;
  for (const ResultCacheStats& cs : stats.caches) fills += cs.fills;
  EXPECT_EQ(fills, n);
}

TEST(ResultCacheServingTest, ThroughputClassKeysSeparatelyAndWarmsUp) {
  // The INT8 throughput class shares the speed class's traversal shape but
  // is a distinct QosPolicy object, so config-pointer keying must keep the
  // two populations apart: warming a node in float must not let the INT8
  // class cross-hit (or vice versa), while a repeat within the class hits
  // and replays the cold INT8 bits exactly.
  SmallWorld& w = World();
  QosPolicyTable policies = MakePolicies();
  QosPolicy& throughput = policies.For(QosClass::kThroughputFirst);
  throughput.config = policies.For(QosClass::kSpeedFirst).config;
  throughput.config.int8_classifier = true;
  throughput.default_deadline_ms = 1000.0;
  throughput.accuracy_delta_budget = 0.05;

  core::ShardedNaiEngine engine = MakeSharded(2);
  engine.AttachQuantizedClassifiers(World().quantized.get());
  const core::InferenceResult ref_int8 =
      engine.Infer(w.all_nodes, throughput.config);

  ServingEngine server(engine, policies);
  const std::int64_t n = static_cast<std::int64_t>(w.all_nodes.size());
  // Wave 1: warm every node in the float speed class.
  {
    std::vector<std::future<Response>> futures;
    for (const std::int32_t node : w.all_nodes) {
      futures.push_back(server.Submit(node, QosClass::kSpeedFirst));
    }
    for (auto& f : futures) EXPECT_TRUE(f.get().served);
  }
  EXPECT_EQ(server.Stats().cache_hits, 0);

  // Waves 2+3: the same nodes as throughput-first. Wave 2 must miss every
  // lookup (no float->int8 cross-hit); wave 3 is fully warm within the
  // class and replays wave 2's bits.
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<std::future<Response>> futures;
    for (const std::int32_t node : w.all_nodes) {
      futures.push_back(server.Submit(node, QosClass::kThroughputFirst));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const Response r = futures[i].get();
      EXPECT_TRUE(r.served);
      EXPECT_EQ(r.prediction, ref_int8.predictions[i])
          << "wave " << wave << " node " << i;
      EXPECT_EQ(r.exit_depth, ref_int8.exit_depths[i])
          << "wave " << wave << " node " << i;
    }
  }
  const ServingStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.cache_hits, n);  // wave 3 only
  EXPECT_EQ(stats.completed, 3 * n);
  const std::size_t tp = static_cast<std::size_t>(QosClass::kThroughputFirst);
  EXPECT_EQ(stats.per_class[tp].count, 2 * n);
  EXPECT_EQ(stats.per_class_hit[tp].count, n);
  EXPECT_EQ(stats.per_class_miss[tp].count, n);
}

TEST(ResultCacheServingTest, EpochBumpForcesRecomputeAndRefill) {
  SmallWorld& w = World();
  const QosPolicyTable policies = MakePolicies();
  core::ShardedNaiEngine engine = MakeSharded(2);
  const core::InferenceResult ref =
      engine.Infer(w.all_nodes, policies.For(QosClass::kSpeedFirst).config);

  ServingEngine server(engine, policies);
  auto offer_all = [&] {
    std::vector<std::future<Response>> futures;
    for (const std::int32_t node : w.all_nodes) {
      futures.push_back(server.Submit(node, QosClass::kSpeedFirst));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const Response r = futures[i].get();
      EXPECT_EQ(r.prediction, ref.predictions[i]) << "node " << i;
    }
  };
  const std::int64_t n = static_cast<std::int64_t>(w.all_nodes.size());
  offer_all();  // cold: fills
  offer_all();  // warm: hits
  ASSERT_EQ(server.Stats().cache_hits, n);

  server.BumpEpoch();
  offer_all();  // logically empty again: recompute + refill, same bits
  offer_all();  // warm at the new epoch
  const ServingStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.cache_hits, 2 * n);
  for (const ResultCacheStats& cs : stats.caches) {
    if (cs.fills > 0) {
      EXPECT_EQ(cs.epoch, 1u);
    }
  }
}

TEST(ResultCacheServingTest, DisabledCacheNeverHits) {
  SmallWorld& w = World();
  const QosPolicyTable policies = MakePolicies();
  core::ShardedNaiEngine engine = MakeSharded(2);
  ServingOptions options;
  options.cache.enabled = false;
  ServingEngine server(engine, policies, options);
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<std::future<Response>> futures;
    for (std::size_t i = 0; i < 32; ++i) {
      futures.push_back(server.Submit(w.all_nodes[i], QosClass::kSpeedFirst));
    }
    for (auto& f : futures) EXPECT_TRUE(f.get().served);
  }
  const ServingStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_EQ(stats.cache_misses, 0);
  for (const ResultCacheStats& cs : stats.caches) EXPECT_EQ(cs.fills, 0);
}

TEST(ResultCacheServingTest, DegenerateCapacityThrowsAtConstruction) {
  core::ShardedNaiEngine engine = MakeSharded(2);
  ServingOptions options;
  options.cache.capacity = 0;  // enabled + zero capacity is degenerate
  EXPECT_THROW(ServingEngine(engine, MakePolicies(), options),
               std::invalid_argument);
}

TEST(ResultCacheServingTest, StolenBatchesFillTheOwnerShardsCache) {
  // All traffic targets shard 1's nodes; shard 0's idle pump steals. The
  // fills of a stolen batch must land in the *owner* shard's cache — where
  // future lookups for those nodes route — never the thief's.
  SmallWorld& w = World();
  const QosPolicyTable policies = MakePolicies();
  core::ShardedNaiEngine engine = MakeSharded(2);
  const core::InferenceResult ref_speed =
      engine.Infer(w.all_nodes, policies.For(QosClass::kSpeedFirst).config);

  std::vector<std::int32_t> skewed;
  std::vector<std::size_t> skewed_pos;  // index into all_nodes / ref
  for (std::size_t i = 0; i < w.all_nodes.size(); ++i) {
    if (engine.sharded_graph().owner[w.all_nodes[i]] == 1) {
      skewed.push_back(w.all_nodes[i]);
      skewed_pos.push_back(i);
    }
  }
  ASSERT_GT(skewed.size(), 50u);

  ServingOptions options;
  options.batcher.max_batch = 2;  // many small batches: a long backlog
  options.batcher.max_wait_us = 0;
  options.scheduler.stealing = true;
  options.scheduler.steal_min_backlog = 1;
  options.scheduler.steal_poll_us = 50;
  ServingEngine server(engine, policies, options);

  auto offer_wave = [&] {
    std::vector<std::future<Response>> futures;
    for (const std::int32_t node : skewed) {
      futures.push_back(server.Submit(node, QosClass::kSpeedFirst));
    }
    for (std::size_t j = 0; j < futures.size(); ++j) {
      const Response r = futures[j].get();
      EXPECT_TRUE(r.served);
      EXPECT_EQ(r.prediction, ref_speed.predictions[skewed_pos[j]]);
    }
  };

  // Whether a steal lands is up to the OS scheduler, so re-offer the wave
  // until one does — bumping the epoch in between so each wave misses and
  // queues again (a warm wave would be answered inline, nothing to steal).
  int waves = 0;
  while (waves < 50) {
    offer_wave();
    ++waves;
    if (server.Stats().stolen_batches > 0) break;
    server.BumpEpoch();
  }
  ServingStatsSnapshot stats = server.Stats();
  EXPECT_GT(stats.stolen_batches, 0) << "no steal in " << waves << " waves";
  // Owner-fill invariant: only shard-1 traffic existed, so only shard 1's
  // cache may hold fills — stolen batches included.
  EXPECT_GT(stats.caches[1].fills, 0);
  EXPECT_EQ(stats.caches[0].fills, 0);

  // And those stolen-batch fills are hittable where lookups route: a
  // repeat wave at the unchanged epoch is answered entirely from shard 1's
  // cache, bit-exactly.
  const std::int64_t hits_before = stats.cache_hits;
  offer_wave();
  stats = server.Stats();
  EXPECT_EQ(stats.cache_hits - hits_before,
            static_cast<std::int64_t>(skewed.size()));
  EXPECT_EQ(stats.caches[0].hits, 0);
}

TEST(ResultCacheServingTest, ConcurrentEpochBumpsStayCorrect) {
  // The churn race TSan watches: client threads probe and submit, pump
  // threads fill, and a mutator thread bumps the epoch mid-flight. Every
  // response — cold, warm, or recomputed — must still carry the reference
  // bits, and fills computed under a superseded epoch must be dropped, not
  // resurrected (the per-request correctness check IS the assertion; the
  // drop counter is timing-dependent).
  SmallWorld& w = World();
  const QosPolicyTable policies = MakePolicies();
  core::ShardedNaiEngine engine = MakeSharded(2);
  const core::InferenceResult ref =
      engine.Infer(w.all_nodes, policies.For(QosClass::kSpeedFirst).config);

  ServingEngine server(engine, policies);
  std::thread bumper([&server] {
    for (int b = 0; b < 200; ++b) {
      server.BumpEpoch();
      std::this_thread::yield();
    }
  });
  for (int wave = 0; wave < 4; ++wave) {
    std::vector<std::future<Response>> futures;
    for (const std::int32_t node : w.all_nodes) {
      futures.push_back(server.Submit(node, QosClass::kSpeedFirst));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const Response r = futures[i].get();
      EXPECT_TRUE(r.served);
      EXPECT_EQ(r.prediction, ref.predictions[i])
          << "wave " << wave << " node " << i;
      EXPECT_EQ(r.exit_depth, ref.exit_depths[i])
          << "wave " << wave << " node " << i;
    }
  }
  bumper.join();
  const ServingStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.completed,
            4 * static_cast<std::int64_t>(w.all_nodes.size()));
  EXPECT_EQ(stats.cache_hits + stats.cache_misses,
            stats.completed);  // every submission probed exactly once
}

}  // namespace
}  // namespace nai::serve
