// DynamicBatcher boundaries: max_batch caps a batch even with a deep
// backlog, max_wait_us holds an incomplete batch open for stragglers (and
// only that long), and a closed drained queue yields the empty
// end-of-stream batch. Timing-sensitive cases only assert directions that
// generous margins make robust (a straggler inside a huge window joins;
// expiry returns *something* rather than blocking forever).

#include "src/serve/batcher.h"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace nai::serve {
namespace {

Request MakeRequest(std::int64_t id) {
  Request r;
  r.id = id;
  return r;
}

TEST(BatcherTest, RejectsDegenerateConfigs) {
  RequestQueue q(4);
  EXPECT_THROW(DynamicBatcher(q, BatcherConfig{0, 100}),
               std::invalid_argument);
  EXPECT_THROW(DynamicBatcher(q, BatcherConfig{4, -1}),
               std::invalid_argument);
}

TEST(BatcherTest, MaxBatchCapsABacklog) {
  RequestQueue q(16);
  for (std::int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.TryPush(MakeRequest(i)));
  }
  DynamicBatcher batcher(q, BatcherConfig{4, 0});
  // A waiting backlog splits into max_batch chunks in FIFO order; the
  // zero wait window never pauses between them.
  std::vector<std::size_t> sizes;
  std::vector<std::int64_t> order;
  for (int b = 0; b < 3; ++b) {
    std::vector<Request> batch = batcher.NextBatch();
    sizes.push_back(batch.size());
    for (const Request& r : batch) order.push_back(r.id);
  }
  EXPECT_EQ(sizes, (std::vector<std::size_t>{4, 4, 2}));
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(BatcherTest, ZeroWaitServesWhatIsAvailable) {
  RequestQueue q(8);
  ASSERT_TRUE(q.TryPush(MakeRequest(0)));
  DynamicBatcher batcher(q, BatcherConfig{8, 0});
  EXPECT_EQ(batcher.NextBatch().size(), 1u);
}

TEST(BatcherTest, LastWindowUsReportsTheWindowActuallyApplied) {
  // Pins the mid-window-retune semantics: the window is read once when a
  // batch's first request is popped, so a set_max_wait_us during or after
  // that batch is invisible to it — last_window_us() reports the window
  // the batch really coalesced under, which is what the adaptation trace
  // stamps as applied_wait_us.
  RequestQueue q(8);
  DynamicBatcher batcher(q, BatcherConfig{8, 150});
  EXPECT_EQ(batcher.last_window_us(), -1);  // no batch formed yet

  ASSERT_TRUE(q.TryPush(MakeRequest(0)));
  EXPECT_EQ(batcher.NextBatch().size(), 1u);
  EXPECT_EQ(batcher.last_window_us(), 150);  // the configured base window

  // Retune between batches: the next batch opens under the new window and
  // reports it.
  batcher.set_max_wait_us(0);
  ASSERT_TRUE(q.TryPush(MakeRequest(1)));
  EXPECT_EQ(batcher.NextBatch().size(), 1u);
  EXPECT_EQ(batcher.last_window_us(), 0);

  // A retune *after* window-open does not rewrite what the previous batch
  // ran with.
  batcher.set_max_wait_us(5000);
  EXPECT_EQ(batcher.last_window_us(), 0);
}

TEST(BatcherTest, WindowWaitsForStragglers) {
  // The straggler lands well inside a generous window, so it must join the
  // first request's batch instead of forming its own.
  RequestQueue q(8);
  ASSERT_TRUE(q.TryPush(MakeRequest(0)));
  DynamicBatcher batcher(q, BatcherConfig{8, 2'000'000});  // 2 s window
  std::thread straggler([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(q.TryPush(MakeRequest(1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(q.TryPush(MakeRequest(2)));
  });
  // Fill the batch early so the window closes on max_batch, not time: push
  // the remaining five while the straggler sleeps.
  for (std::int64_t i = 3; i < 8; ++i) {
    ASSERT_TRUE(q.TryPush(MakeRequest(i)));
  }
  std::vector<Request> batch = batcher.NextBatch();
  straggler.join();
  EXPECT_EQ(batch.size(), 8u);  // closed by max_batch, stragglers included
}

TEST(BatcherTest, WindowExpiresWithoutStragglers) {
  RequestQueue q(8);
  ASSERT_TRUE(q.TryPush(MakeRequest(0)));
  DynamicBatcher batcher(q, BatcherConfig{8, 5'000});  // 5 ms window
  const auto start = ServeClock::now();
  std::vector<Request> batch = batcher.NextBatch();
  const auto elapsed = ServeClock::now() - start;
  EXPECT_EQ(batch.size(), 1u);
  // Directional bound only: the window is 5 ms; well under a second proves
  // it expired rather than blocking on the empty queue.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
}

TEST(BatcherTest, BlockedFirstPopWokenByArrival) {
  RequestQueue q(8);
  DynamicBatcher batcher(q, BatcherConfig{4, 0});
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(q.TryPush(MakeRequest(42)));
  });
  std::vector<Request> batch = batcher.NextBatch();  // blocks until arrival
  producer.join();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 42);
}

TEST(BatcherTest, ClosedAndDrainedYieldsEmptyBatch) {
  RequestQueue q(4);
  ASSERT_TRUE(q.TryPush(MakeRequest(0)));
  q.Close();
  DynamicBatcher batcher(q, BatcherConfig{4, 1'000});
  EXPECT_EQ(batcher.NextBatch().size(), 1u);  // drains the leftover
  EXPECT_TRUE(batcher.NextBatch().empty());   // end-of-stream signal
}

TEST(BatcherTest, CloseDuringWindowReturnsPartialBatch) {
  RequestQueue q(4);
  ASSERT_TRUE(q.TryPush(MakeRequest(0)));
  DynamicBatcher batcher(q, BatcherConfig{4, 2'000'000});  // 2 s window
  std::thread closer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Close();
  });
  const auto start = ServeClock::now();
  std::vector<Request> batch = batcher.NextBatch();
  closer.join();
  EXPECT_EQ(batch.size(), 1u);
  // The close must cut the window short — far below the 2 s budget.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                ServeClock::now() - start)
                .count(),
            1000);
}

}  // namespace
}  // namespace nai::serve
