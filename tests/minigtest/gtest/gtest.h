// Minimal header-only GoogleTest-compatible shim for offline builds.
//
// Implements the subset of the GoogleTest API used by this repository:
//   TEST / TEST_F / TEST_P (+ TestWithParam, INSTANTIATE_TEST_SUITE_P,
//   testing::Values), ASSERT_* / EXPECT_* comparisons incl. EXPECT_NEAR,
//   EXPECT_FLOAT_EQ / EXPECT_DOUBLE_EQ, EXPECT_THROW family, streamed
//   failure messages, fixtures with SetUp/TearDown, GTEST_SKIP, and
//   RUN_ALL_TESTS with per-test reporting and a nonzero exit on failure.
//
// The real GoogleTest is preferred when available; CMake selects this shim
// only when find_package(GTest) fails (or -DNAI_FORCE_MINIGTEST=ON).
#ifndef NAI_TESTS_MINIGTEST_GTEST_GTEST_H_
#define NAI_TESTS_MINIGTEST_GTEST_GTEST_H_

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace testing {

class Message {
 public:
  template <typename T>
  Message& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  // Accept ostream manipulators (std::endl etc.), which the template above
  // cannot deduce.
  Message& operator<<(std::ostream& (*manip)(std::ostream&)) {
    stream_ << manip;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

namespace internal {

struct TestCase {
  std::string suite;
  std::string name;
  std::function<void()> run;
  void (*suite_up)() = nullptr;
  void (*suite_down)() = nullptr;
};

struct State {
  std::vector<TestCase> tests;
  int failures_in_current_test = 0;
  bool fatal_failure_in_current_test = false;
  bool current_test_skipped = false;
  std::string filter = "*";
};

inline State& GetState() {
  static State state;
  return state;
}

inline void RegisterTest(std::string suite, std::string name,
                         std::function<void()> run,
                         void (*suite_up)() = nullptr,
                         void (*suite_down)() = nullptr) {
  GetState().tests.push_back({std::move(suite), std::move(name),
                              std::move(run), suite_up, suite_down});
}

template <typename T>
std::string PrintValue(const T& value) {
  if constexpr (requires(std::ostream& os, const T& v) { os << v; }) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else {
    return "(value of unprintable type)";
  }
}

inline std::string PrintValue(std::nullptr_t) { return "nullptr"; }
inline std::string PrintValue(bool value) { return value ? "true" : "false"; }

// Reports one failure when assigned a Message.  ASSERT_* macros `return`
// the (void) result of the assignment; EXPECT_* macros discard it.
class FailureSink {
 public:
  FailureSink(const char* file, int line, std::string summary,
              bool fatal = false)
      : file_(file), line_(line), summary_(std::move(summary)),
        fatal_(fatal) {}

  void operator=(const Message& message) const {
    ++GetState().failures_in_current_test;
    if (fatal_) GetState().fatal_failure_in_current_test = true;
    std::cout << file_ << ":" << line_ << ": Failure\n" << summary_;
    const std::string extra = message.str();
    if (!extra.empty()) std::cout << "\n" << extra;
    std::cout << "\n";
  }

 private:
  const char* file_;
  int line_;
  std::string summary_;
  bool fatal_;
};

class SkipSink {
 public:
  void operator=(const Message& message) const {
    GetState().current_test_skipped = true;
    const std::string extra = message.str();
    if (!extra.empty()) std::cout << "Skipped: " << extra << "\n";
  }
};

template <typename A, typename B>
std::string CmpSummary(const char* op, const char* lhs_expr,
                       const char* rhs_expr, const A& lhs, const B& rhs) {
  std::ostringstream os;
  os << "Expected: (" << lhs_expr << ") " << op << " (" << rhs_expr
     << "), actual: " << PrintValue(lhs) << " vs " << PrintValue(rhs);
  return os.str();
}

// Approximates GoogleTest's 4-ULP float comparison with a combined
// absolute + relative tolerance.
template <typename T>
bool AlmostEqual(T a, T b) {
  if (a == b) return true;
  if (std::isnan(a) || std::isnan(b)) return false;
  if (std::isinf(a) || std::isinf(b)) return false;  // unequal inf vs finite
  const T eps = std::numeric_limits<T>::epsilon();
  const T diff = std::fabs(a - b);
  const T scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= T(4) * eps * std::max(scale, T(1));
}

// Glob match supporting '*' and '?', plus ':'-separated alternatives and a
// trailing negative section introduced by '-'.
inline bool GlobMatch(const std::string& pattern, const std::string& text) {
  std::size_t p = 0, t = 0, star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p, ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

inline bool FilterAccepts(const std::string& full_name) {
  const std::string& filter = GetState().filter;
  std::string positive = filter, negative;
  const std::size_t dash = filter.find('-');
  if (dash != std::string::npos) {
    positive = filter.substr(0, dash);
    negative = filter.substr(dash + 1);
  }
  if (positive.empty()) positive = "*";
  auto any_section = [&full_name](const std::string& sections) {
    std::size_t begin = 0;
    while (begin <= sections.size()) {
      const std::size_t end = sections.find(':', begin);
      const std::string one =
          sections.substr(begin, end == std::string::npos ? end : end - begin);
      if (!one.empty() && GlobMatch(one, full_name)) return true;
      if (end == std::string::npos) break;
      begin = end + 1;
    }
    return false;
  };
  return any_section(positive) &&
         !(dash != std::string::npos && any_section(negative));
}

}  // namespace internal

class Test {
 public:
  virtual ~Test() = default;
  static void SetUpTestSuite() {}
  static void TearDownTestSuite() {}

 protected:
  virtual void SetUp() {}
  virtual void TearDown() {}
  virtual void TestBody() = 0;

 public:
  void RunTest() {
    SetUp();
    // GoogleTest semantics: a fatal failure (or skip) inside SetUp skips
    // the test body but still tears down — and an exception escaping the
    // body must not skip TearDown either.
    if (!internal::GetState().fatal_failure_in_current_test &&
        !internal::GetState().current_test_skipped) {
      try {
        TestBody();
      } catch (const std::exception& e) {
        ++internal::GetState().failures_in_current_test;
        std::cout << "unexpected exception: " << e.what() << "\n";
      } catch (...) {
        ++internal::GetState().failures_in_current_test;
        std::cout << "unexpected non-std exception\n";
      }
    }
    TearDown();
  }
};

template <typename T>
class TestWithParam : public Test {
 public:
  using ParamType = T;
  static void SetParam(const T* param) { current_param_ = param; }
  const T& GetParam() const { return *current_param_; }

 private:
  static inline const T* current_param_ = nullptr;
};

template <typename... Ts>
auto Values(Ts... values) {
  using T = std::common_type_t<Ts...>;
  return std::vector<T>{static_cast<T>(values)...};
}

namespace internal {

// TEST_P bodies register here; INSTANTIATE_TEST_SUITE_P cross-joins with
// them at RUN_ALL_TESTS registration time, so macro order never matters.
struct ParamTest {
  std::string suite;
  std::string name;
  std::function<void(const void*)> run;
};

struct ParamInstantiation {
  std::string suite;
  std::string prefix;
  std::size_t count = 0;
  std::function<const void*(std::size_t)> get;
};

inline std::vector<ParamTest>& ParamTests() {
  static std::vector<ParamTest> tests;
  return tests;
}

inline std::vector<ParamInstantiation>& ParamInstantiations() {
  static std::vector<ParamInstantiation> instantiations;
  return instantiations;
}

inline void ExpandParamTests() {
  for (const auto& inst : ParamInstantiations()) {
    for (const auto& test : ParamTests()) {
      if (test.suite != inst.suite) continue;
      for (std::size_t i = 0; i < inst.count; ++i) {
        RegisterTest(inst.prefix + "/" + inst.suite,
                     test.name + "/" + std::to_string(i),
                     [&test, &inst, i] { test.run(inst.get(i)); });
      }
    }
  }
}

struct Registrar {
  Registrar(const char* suite, const char* name, std::function<void()> run,
            void (*suite_up)() = nullptr, void (*suite_down)() = nullptr) {
    RegisterTest(suite, name, std::move(run), suite_up, suite_down);
  }
};

struct ParamRegistrar {
  ParamRegistrar(const char* suite, const char* name,
                 std::function<void(const void*)> run) {
    ParamTests().push_back({suite, name, std::move(run)});
  }
};

template <typename Values>
struct InstantiationRegistrar {
  InstantiationRegistrar(const char* prefix, const char* suite,
                         Values values) {
    auto stored = std::make_shared<Values>(std::move(values));
    ParamInstantiations().push_back(
        {suite, prefix, stored->size(),
         [stored](std::size_t i) -> const void* { return &(*stored)[i]; }});
  }
};

}  // namespace internal

inline void InitGoogleTest(int* argc, char** argv) {
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    const std::string flag = "--gtest_filter=";
    if (arg.rfind(flag, 0) == 0) {
      internal::GetState().filter = arg.substr(flag.size());
    }
  }
}
inline void InitGoogleTest() {}

}  // namespace testing

inline int RUN_ALL_TESTS() {
  auto& state = ::testing::internal::GetState();
  ::testing::internal::ExpandParamTests();
  int ran = 0, failed = 0, skipped = 0;
  std::vector<std::string> failed_names;
  // Per-suite static setup: run SetUpTestSuite on first encounter, and
  // collect TearDownTestSuite calls for after the loop (reverse order).
  std::vector<std::string> suites_up;
  std::vector<void (*)()> suite_downs;
  for (const auto& test : state.tests) {
    const std::string full_name = test.suite + "." + test.name;
    if (!::testing::internal::FilterAccepts(full_name)) continue;
    if (std::find(suites_up.begin(), suites_up.end(), test.suite) ==
        suites_up.end()) {
      suites_up.push_back(test.suite);
      if (test.suite_up != nullptr) test.suite_up();
      if (test.suite_down != nullptr) suite_downs.push_back(test.suite_down);
    }
    std::cout << "[ RUN      ] " << full_name << std::endl;
    state.failures_in_current_test = 0;
    state.fatal_failure_in_current_test = false;
    state.current_test_skipped = false;
    ++ran;
    try {
      test.run();
    } catch (const std::exception& e) {
      ++state.failures_in_current_test;
      std::cout << "unexpected exception: " << e.what() << "\n";
    } catch (...) {
      ++state.failures_in_current_test;
      std::cout << "unexpected non-std exception\n";
    }
    if (state.failures_in_current_test > 0) {
      ++failed;
      failed_names.push_back(full_name);
      std::cout << "[  FAILED  ] " << full_name << std::endl;
    } else if (state.current_test_skipped) {
      ++skipped;
      std::cout << "[  SKIPPED ] " << full_name << std::endl;
    } else {
      std::cout << "[       OK ] " << full_name << std::endl;
    }
  }
  for (auto it = suite_downs.rbegin(); it != suite_downs.rend(); ++it) (*it)();
  std::cout << "[==========] " << ran << " test(s) ran." << std::endl;
  if (skipped > 0)
    std::cout << "[  SKIPPED ] " << skipped << " test(s)." << std::endl;
  if (failed > 0) {
    std::cout << "[  FAILED  ] " << failed << " test(s):" << std::endl;
    for (const auto& name : failed_names)
      std::cout << "[  FAILED  ] " << name << std::endl;
  } else {
    std::cout << "[  PASSED  ] " << ran << " test(s)." << std::endl;
  }
  return failed == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Test-definition macros
// ---------------------------------------------------------------------------

#define NAI_GTEST_CLASS_NAME_(suite, name) suite##_##name##_Test

#define TEST(suite, name)                                                   \
  class NAI_GTEST_CLASS_NAME_(suite, name) : public ::testing::Test {      \
    void TestBody() override;                                               \
  };                                                                        \
  static ::testing::internal::Registrar nai_gtest_reg_##suite##_##name(     \
      #suite, #name, [] {                                                   \
        NAI_GTEST_CLASS_NAME_(suite, name) instance;                        \
        instance.RunTest();                                                 \
      });                                                                   \
  void NAI_GTEST_CLASS_NAME_(suite, name)::TestBody()

#define TEST_F(fixture, name)                                               \
  class NAI_GTEST_CLASS_NAME_(fixture, name) : public fixture {             \
    void TestBody() override;                                               \
                                                                            \
   public:                                                                  \
    /* Trampolines: the fixture may declare these protected. */             \
    static void NaiSuiteUp() { SetUpTestSuite(); }                          \
    static void NaiSuiteDown() { TearDownTestSuite(); }                     \
  };                                                                        \
  static ::testing::internal::Registrar nai_gtest_reg_##fixture##_##name(   \
      #fixture, #name,                                                      \
      [] {                                                                  \
        NAI_GTEST_CLASS_NAME_(fixture, name) instance;                      \
        instance.RunTest();                                                 \
      },                                                                    \
      &NAI_GTEST_CLASS_NAME_(fixture, name)::NaiSuiteUp,                    \
      &NAI_GTEST_CLASS_NAME_(fixture, name)::NaiSuiteDown);                 \
  void NAI_GTEST_CLASS_NAME_(fixture, name)::TestBody()

#define TEST_P(fixture, name)                                               \
  class NAI_GTEST_CLASS_NAME_(fixture, name) : public fixture {             \
    void TestBody() override;                                               \
  };                                                                        \
  static ::testing::internal::ParamRegistrar                                \
      nai_gtest_preg_##fixture##_##name(                                    \
          #fixture, #name, [](const void* param) {                          \
            fixture::SetParam(                                              \
                static_cast<const fixture::ParamType*>(param));             \
            NAI_GTEST_CLASS_NAME_(fixture, name) instance;                  \
            instance.RunTest();                                             \
          });                                                               \
  void NAI_GTEST_CLASS_NAME_(fixture, name)::TestBody()

// The optional 4th argument (test-name generator) is accepted and ignored;
// the shim always names instances by index.
#define INSTANTIATE_TEST_SUITE_P(prefix, fixture, generator, ...)           \
  static ::testing::internal::InstantiationRegistrar<                       \
      decltype(generator)>                                                  \
      nai_gtest_ireg_##prefix##_##fixture(#prefix, #fixture, generator)

// ---------------------------------------------------------------------------
// Assertion macros.  The `if (ok) ; else sink = Message() << ...` shape
// supports streamed messages; ASSERT_* additionally returns on failure.
// ---------------------------------------------------------------------------

#define NAI_GTEST_EXPECT_(ok, summary)                                      \
  if (ok)                                                                   \
    ;                                                                       \
  else                                                                      \
    ::testing::internal::FailureSink(__FILE__, __LINE__, summary) =         \
        ::testing::Message()

#define NAI_GTEST_ASSERT_(ok, summary)                                      \
  if (ok)                                                                   \
    ;                                                                       \
  else                                                                      \
    return ::testing::internal::FailureSink(__FILE__, __LINE__, summary,    \
                                            /*fatal=*/true) =               \
               ::testing::Message()

// Summary-based variants: `expr` yields "" on success and the failure
// summary otherwise, so side-effecting arguments are evaluated exactly once
// (inside the lambda that builds the summary).
#define NAI_GTEST_EXPECT_SUMMARY_(expr)                                     \
  if (const std::string nai_gtest_s = (expr); nai_gtest_s.empty())          \
    ;                                                                       \
  else                                                                      \
    ::testing::internal::FailureSink(__FILE__, __LINE__, nai_gtest_s) =     \
        ::testing::Message()

#define NAI_GTEST_ASSERT_SUMMARY_(expr)                                     \
  if (const std::string nai_gtest_s = (expr); nai_gtest_s.empty())          \
    ;                                                                       \
  else                                                                      \
    return ::testing::internal::FailureSink(__FILE__, __LINE__,             \
                                            nai_gtest_s,                    \
                                            /*fatal=*/true) =               \
               ::testing::Message()

#define NAI_GTEST_CMP_(kind, op, opname, a, b)                              \
  NAI_GTEST_##kind##_SUMMARY_([&]() -> std::string {                        \
    const auto& nai_a = (a);                                                \
    const auto& nai_b = (b);                                                \
    if (nai_a op nai_b) return std::string();                               \
    return ::testing::internal::CmpSummary(opname, #a, #b, nai_a, nai_b);   \
  }())

#define EXPECT_EQ(a, b) NAI_GTEST_CMP_(EXPECT, ==, "==", a, b)
#define EXPECT_NE(a, b) NAI_GTEST_CMP_(EXPECT, !=, "!=", a, b)
#define EXPECT_LT(a, b) NAI_GTEST_CMP_(EXPECT, <, "<", a, b)
#define EXPECT_LE(a, b) NAI_GTEST_CMP_(EXPECT, <=, "<=", a, b)
#define EXPECT_GT(a, b) NAI_GTEST_CMP_(EXPECT, >, ">", a, b)
#define EXPECT_GE(a, b) NAI_GTEST_CMP_(EXPECT, >=, ">=", a, b)
#define ASSERT_EQ(a, b) NAI_GTEST_CMP_(ASSERT, ==, "==", a, b)
#define ASSERT_NE(a, b) NAI_GTEST_CMP_(ASSERT, !=, "!=", a, b)
#define ASSERT_LT(a, b) NAI_GTEST_CMP_(ASSERT, <, "<", a, b)
#define ASSERT_LE(a, b) NAI_GTEST_CMP_(ASSERT, <=, "<=", a, b)
#define ASSERT_GT(a, b) NAI_GTEST_CMP_(ASSERT, >, ">", a, b)
#define ASSERT_GE(a, b) NAI_GTEST_CMP_(ASSERT, >=, ">=", a, b)

#define EXPECT_TRUE(cond)                                                   \
  NAI_GTEST_EXPECT_((cond), "Expected: " #cond " is true")
#define EXPECT_FALSE(cond)                                                  \
  NAI_GTEST_EXPECT_(!(cond), "Expected: " #cond " is false")
#define ASSERT_TRUE(cond)                                                   \
  NAI_GTEST_ASSERT_((cond), "Expected: " #cond " is true")
#define ASSERT_FALSE(cond)                                                  \
  NAI_GTEST_ASSERT_(!(cond), "Expected: " #cond " is false")

#define NAI_GTEST_NEAR_(kind, a, b, tol)                                    \
  NAI_GTEST_##kind##_SUMMARY_([&]() -> std::string {                        \
    const auto nai_a = (a);                                                 \
    const auto nai_b = (b);                                                 \
    if (std::fabs(nai_a - nai_b) <= (tol)) return std::string();            \
    return ::testing::internal::CmpSummary("within " #tol " of", #a, #b,    \
                                           nai_a, nai_b);                   \
  }())
#define EXPECT_NEAR(a, b, tol) NAI_GTEST_NEAR_(EXPECT, a, b, tol)
#define ASSERT_NEAR(a, b, tol) NAI_GTEST_NEAR_(ASSERT, a, b, tol)

#define NAI_GTEST_ALMOST_(kind, type, a, b)                                 \
  NAI_GTEST_##kind##_SUMMARY_([&]() -> std::string {                        \
    const type nai_a = (a);                                                 \
    const type nai_b = (b);                                                 \
    if (::testing::internal::AlmostEqual<type>(nai_a, nai_b))               \
      return std::string();                                                 \
    return ::testing::internal::CmpSummary("~=", #a, #b, nai_a, nai_b);     \
  }())
#define EXPECT_FLOAT_EQ(a, b) NAI_GTEST_ALMOST_(EXPECT, float, a, b)
#define EXPECT_DOUBLE_EQ(a, b) NAI_GTEST_ALMOST_(EXPECT, double, a, b)
#define ASSERT_FLOAT_EQ(a, b) NAI_GTEST_ALMOST_(ASSERT, float, a, b)
#define ASSERT_DOUBLE_EQ(a, b) NAI_GTEST_ALMOST_(ASSERT, double, a, b)

#define NAI_GTEST_THROW_BODY_(kind, stmt, ok_expr, summary)                 \
  {                                                                         \
    bool nai_gtest_threw_expected = false;                                  \
    bool nai_gtest_threw_other = false;                                     \
    try {                                                                   \
      stmt;                                                                 \
    } catch (ok_expr) {                                                     \
      nai_gtest_threw_expected = true;                                      \
    } catch (...) {                                                         \
      nai_gtest_threw_other = true;                                         \
    }                                                                       \
    (void)nai_gtest_threw_other;                                            \
    NAI_GTEST_##kind##_(nai_gtest_threw_expected, summary);                 \
  }

#define EXPECT_THROW(stmt, ex)                                              \
  NAI_GTEST_THROW_BODY_(EXPECT, stmt, const ex&,                            \
                        "Expected: " #stmt " throws " #ex)
#define ASSERT_THROW(stmt, ex)                                              \
  NAI_GTEST_THROW_BODY_(ASSERT, stmt, const ex&,                            \
                        "Expected: " #stmt " throws " #ex)
#define EXPECT_ANY_THROW(stmt)                                              \
  {                                                                         \
    bool nai_gtest_threw = false;                                           \
    try {                                                                   \
      stmt;                                                                 \
    } catch (...) {                                                         \
      nai_gtest_threw = true;                                               \
    }                                                                       \
    NAI_GTEST_EXPECT_(nai_gtest_threw, "Expected: " #stmt " throws");       \
  }

#define EXPECT_NO_THROW(stmt)                                               \
  {                                                                         \
    bool nai_gtest_no_throw = true;                                         \
    try {                                                                   \
      stmt;                                                                 \
    } catch (...) {                                                         \
      nai_gtest_no_throw = false;                                           \
    }                                                                       \
    NAI_GTEST_EXPECT_(nai_gtest_no_throw,                                   \
                      "Expected: " #stmt " does not throw");                \
  }

#define ADD_FAILURE()                                                       \
  ::testing::internal::FailureSink(__FILE__, __LINE__, "Failure") =         \
      ::testing::Message()
#define FAIL()                                                              \
  return ::testing::internal::FailureSink(__FILE__, __LINE__, "Failure") =  \
             ::testing::Message()
#define SUCCEED() ::testing::Message()
#define GTEST_SKIP()                                                        \
  return ::testing::internal::SkipSink() = ::testing::Message()

#endif  // NAI_TESTS_MINIGTEST_GTEST_GTEST_H_
