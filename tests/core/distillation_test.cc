#include "src/core/distillation.h"

#include "gtest/gtest.h"
#include "src/nn/loss.h"
#include "tests/core/core_fixtures.h"

namespace nai::core {
namespace {

using nai::testing::MakeSmallWorld;
using nai::testing::SmallWorld;

float HeadAccuracy(SmallWorld& w, int l) {
  const tensor::Matrix logits = w.classifiers->Logits(l, w.all_feats);
  return nn::Accuracy(logits, w.data.labels);
}

TEST(DistillationTest, TrainBaseFitsTeacher) {
  auto w = MakeSmallWorld(3, models::ModelKind::kSgc, 400, 0);
  DistillConfig cfg;
  cfg.base_epochs = 80;
  InceptionDistillation distiller(*w.classifiers, cfg);
  const float loss =
      distiller.TrainBase(w.all_feats, w.data.labels, w.all_nodes);
  EXPECT_LT(loss, 1.0f);
  EXPECT_GT(HeadAccuracy(w, 3), 0.6f);
}

TEST(DistillationTest, SingleScaleLiftsShallowHeads) {
  auto w = MakeSmallWorld(3, models::ModelKind::kSgc, 400, 0);
  DistillConfig cfg;
  cfg.base_epochs = 80;
  cfg.single_epochs = 80;
  cfg.lambda_single = 0.5f;
  InceptionDistillation distiller(*w.classifiers, cfg);
  distiller.TrainBase(w.all_feats, w.data.labels, w.all_nodes);
  const float before = HeadAccuracy(w, 1);  // untrained head: ~chance
  distiller.SingleScale(w.all_feats, w.data.labels, w.all_nodes);
  const float after = HeadAccuracy(w, 1);
  EXPECT_GT(after, before + 0.2f);
  EXPECT_GT(after, 0.5f);
}

TEST(DistillationTest, MultiScaleDoesNotDegradeStudents) {
  auto w = MakeSmallWorld(3, models::ModelKind::kSgc, 400, 0);
  DistillConfig cfg;
  cfg.base_epochs = 80;
  cfg.single_epochs = 60;
  cfg.multi_epochs = 40;
  cfg.ensemble_size = 2;
  InceptionDistillation distiller(*w.classifiers, cfg);
  distiller.TrainBase(w.all_feats, w.data.labels, w.all_nodes);
  distiller.SingleScale(w.all_feats, w.data.labels, w.all_nodes);
  const float before = HeadAccuracy(w, 1);
  distiller.MultiScale(w.all_feats, w.data.labels, w.all_nodes);
  const float after = HeadAccuracy(w, 1);
  // Joint teacher/student updates jitter accuracy by a point or two; the
  // guard is against real degradation, not noise.
  EXPECT_GE(after, before - 0.08f);
  EXPECT_GT(after, 0.5f);
}

TEST(DistillationTest, TrainAllRespectsAblationFlags) {
  // With both stages disabled, every head still gets plain CE training
  // (the "w/o ID" configuration must produce a usable bank).
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 300, 0);
  DistillConfig cfg;
  cfg.base_epochs = 60;
  cfg.enable_single = false;
  cfg.enable_multi = false;
  InceptionDistillation distiller(*w.classifiers, cfg);
  distiller.TrainAll(w.all_feats, w.data.labels, w.all_nodes);
  EXPECT_GT(HeadAccuracy(w, 1), 0.5f);
  EXPECT_GT(HeadAccuracy(w, 2), 0.5f);
}

TEST(DistillationTest, LabeledSubsetOnlyHardLoss) {
  // Training with a small labeled subset must still work (the KD terms see
  // every training row).
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 300, 0);
  std::vector<std::int32_t> labeled(w.all_nodes.begin(),
                                    w.all_nodes.begin() + 60);
  DistillConfig cfg;
  cfg.base_epochs = 80;
  cfg.single_epochs = 60;
  cfg.enable_multi = false;
  InceptionDistillation distiller(*w.classifiers, cfg);
  distiller.TrainAll(w.all_feats, w.data.labels, labeled);
  EXPECT_GT(HeadAccuracy(w, 1), 0.45f);
}

TEST(DistillationTest, WorksForAllModelFamilies) {
  for (const auto kind :
       {models::ModelKind::kSign, models::ModelKind::kS2gc,
        models::ModelKind::kGamlp}) {
    auto w = MakeSmallWorld(2, kind, 250, 0);
    DistillConfig cfg;
    cfg.base_epochs = 50;
    cfg.single_epochs = 40;
    cfg.multi_epochs = 20;
    cfg.ensemble_size = 2;
    InceptionDistillation distiller(*w.classifiers, cfg);
    distiller.TrainAll(w.all_feats, w.data.labels, w.all_nodes);
    EXPECT_GT(HeadAccuracy(w, 1), 0.45f)
        << models::ModelKindName(kind);
  }
}

}  // namespace
}  // namespace nai::core

namespace nai::core {
namespace {

TEST(DistillationTest, DepthOneDegeneratesGracefully) {
  // k = 1: there are no student classifiers; base training must still
  // produce a usable single-head bank and both distillation stages must be
  // no-ops rather than crashes.
  auto w = nai::testing::MakeSmallWorld(1, models::ModelKind::kSgc, 200, 0);
  DistillConfig cfg;
  cfg.base_epochs = 50;
  cfg.ensemble_size = 3;  // clamped to k internally
  InceptionDistillation distiller(*w.classifiers, cfg);
  distiller.TrainAll(w.all_feats, w.data.labels, w.all_nodes);
  EXPECT_GT(HeadAccuracy(w, 1), 0.5f);
}

TEST(DistillationTest, ZeroEpochsLeavesHeadsUntouched) {
  // A fully disabled schedule must not move a single parameter.
  auto w = nai::testing::MakeSmallWorld(2, models::ModelKind::kSgc, 150, 0);
  const tensor::Matrix before = w.classifiers->Logits(2, w.all_feats);
  DistillConfig cfg;
  cfg.base_epochs = 0;
  cfg.single_epochs = 0;
  cfg.multi_epochs = 0;
  cfg.enable_single = false;
  cfg.enable_multi = false;
  InceptionDistillation distiller(*w.classifiers, cfg);
  distiller.TrainAll(w.all_feats, w.data.labels, w.all_nodes);
  const tensor::Matrix after = w.classifiers->Logits(2, w.all_feats);
  EXPECT_EQ(before.CountDifferences(after, 0.0f), 0u);
}

TEST(DistillationTest, EnsembleLargerThanDepthClamped) {
  auto w = nai::testing::MakeSmallWorld(2, models::ModelKind::kSgc, 200, 0);
  DistillConfig cfg;
  cfg.base_epochs = 40;
  cfg.single_epochs = 20;
  cfg.multi_epochs = 20;
  cfg.ensemble_size = 99;  // > k
  InceptionDistillation distiller(*w.classifiers, cfg);
  distiller.TrainAll(w.all_feats, w.data.labels, w.all_nodes);
  EXPECT_GT(HeadAccuracy(w, 1), 0.45f);
}

}  // namespace
}  // namespace nai::core
