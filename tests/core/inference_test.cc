#include "src/core/inference.h"

#include <numeric>
#include <stdexcept>

#include "gtest/gtest.h"
#include "src/tensor/ops.h"
#include "tests/core/core_fixtures.h"

namespace nai::core {
namespace {

using nai::testing::MakeSmallWorld;
using nai::testing::SmallWorld;

std::vector<std::int32_t> TransductivePredictions(SmallWorld& w, int depth) {
  const tensor::Matrix logits = w.classifiers->Logits(depth, w.all_feats);
  return tensor::ArgmaxRows(logits);
}

TEST(InferenceTest, VanillaMatchesTransductive) {
  // The batched online propagation must reproduce exactly the full-graph
  // (transductive) propagation for every node: this validates the layered
  // supporting-set machinery end to end.
  auto w = MakeSmallWorld(3);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kNone;
  cfg.batch_size = 64;
  const InferenceResult result = engine.Infer(w.all_nodes, cfg);
  EXPECT_EQ(result.predictions, TransductivePredictions(w, 3));
}

TEST(InferenceTest, VanillaMatchesTransductiveAllFamilies) {
  for (const auto kind :
       {models::ModelKind::kSign, models::ModelKind::kS2gc,
        models::ModelKind::kGamlp}) {
    auto w = MakeSmallWorld(2, kind, 250);
    NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                     *w.classifiers, w.stationary.get(), nullptr);
    InferenceConfig cfg;
    cfg.nap = NapKind::kNone;
    cfg.batch_size = 50;
    const InferenceResult result = engine.Infer(w.all_nodes, cfg);
    EXPECT_EQ(result.predictions, TransductivePredictions(w, 2))
        << models::ModelKindName(kind);
  }
}

TEST(InferenceTest, BatchSizeDoesNotChangePredictions) {
  auto w = MakeSmallWorld(3);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.3f;
  cfg.batch_size = 17;
  const auto small = engine.Infer(w.all_nodes, cfg);
  cfg.batch_size = 400;
  const auto large = engine.Infer(w.all_nodes, cfg);
  EXPECT_EQ(small.predictions, large.predictions);
}

TEST(InferenceTest, HugeThresholdExitsAtTmin) {
  auto w = MakeSmallWorld(4);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 1e9f;
  cfg.t_min = 2;
  cfg.t_max = 4;
  const auto result = engine.Infer(w.all_nodes, cfg);
  EXPECT_EQ(result.stats.exits_at_depth[0], 0);  // nothing below t_min
  EXPECT_EQ(result.stats.exits_at_depth[1],
            static_cast<std::int64_t>(w.all_nodes.size()));
}

TEST(InferenceTest, ZeroThresholdGoesToTmax) {
  auto w = MakeSmallWorld(4);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.0f;
  cfg.t_max = 3;
  const auto result = engine.Infer(w.all_nodes, cfg);
  EXPECT_EQ(result.stats.exits_at_depth[2],
            static_cast<std::int64_t>(w.all_nodes.size()));
  // And the predictions match the fixed-depth-3 transductive classifier.
  EXPECT_EQ(result.predictions, TransductivePredictions(w, 3));
}

TEST(InferenceTest, ExitsSumToNodeCount) {
  auto w = MakeSmallWorld(4);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.5f;
  const auto result = engine.Infer(w.all_nodes, cfg);
  const std::int64_t total =
      std::accumulate(result.stats.exits_at_depth.begin(),
                      result.stats.exits_at_depth.end(), std::int64_t{0});
  EXPECT_EQ(total, static_cast<std::int64_t>(w.all_nodes.size()));
  for (const auto p : result.predictions) EXPECT_GE(p, 0);
}

TEST(InferenceTest, ShrinkTogglePreservesPredictions) {
  auto w = MakeSmallWorld(4);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.4f;
  cfg.shrink_active_support = true;
  const auto with_shrink = engine.Infer(w.all_nodes, cfg);
  cfg.shrink_active_support = false;
  const auto without = engine.Infer(w.all_nodes, cfg);
  EXPECT_EQ(with_shrink.predictions, without.predictions);
  // Shrinking never increases propagation work.
  EXPECT_LE(with_shrink.stats.propagation_macs,
            without.stats.propagation_macs);
}

TEST(InferenceTest, NapReducesPropagationWork) {
  auto w = MakeSmallWorld(4);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig vanilla;
  vanilla.nap = NapKind::kNone;
  const auto base = engine.Infer(w.all_nodes, vanilla);

  InferenceConfig napd;
  napd.nap = NapKind::kDistance;
  napd.threshold = 1e9f;  // exit everything at depth 1
  napd.t_max = 2;
  const auto fast = engine.Infer(w.all_nodes, napd);
  EXPECT_LT(fast.stats.propagation_macs, base.stats.propagation_macs);
  EXPECT_LT(fast.stats.total_macs(), base.stats.total_macs());
}

TEST(InferenceTest, GateBasedInferenceRuns) {
  auto w = MakeSmallWorld(3);
  GateStack gates(3, w.config.feature_dim, 77);
  const tensor::Matrix stationary = w.stationary->RowsForNodes(w.all_nodes);
  GateTrainConfig gcfg;
  gcfg.epochs = 20;
  gates.Train(w.stack, stationary, *w.classifiers, w.all_nodes,
              w.data.labels, gcfg);

  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), &gates);
  InferenceConfig cfg;
  cfg.nap = NapKind::kGate;
  const auto result = engine.Infer(w.all_nodes, cfg);
  EXPECT_EQ(result.predictions.size(), w.all_nodes.size());
  const std::int64_t total =
      std::accumulate(result.stats.exits_at_depth.begin(),
                      result.stats.exits_at_depth.end(), std::int64_t{0});
  EXPECT_EQ(total, static_cast<std::int64_t>(w.all_nodes.size()));
  EXPECT_GT(result.stats.nap_macs, 0);
}

TEST(InferenceTest, StatsCategoriesPopulated) {
  auto w = MakeSmallWorld(3);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.3f;
  const auto r = engine.Infer(w.all_nodes, cfg);
  EXPECT_GT(r.stats.propagation_macs, 0);
  EXPECT_GT(r.stats.stationary_macs, 0);
  EXPECT_GT(r.stats.nap_macs, 0);
  EXPECT_GT(r.stats.classification_macs, 0);
  EXPECT_EQ(r.stats.total_macs(),
            r.stats.propagation_macs + r.stats.nap_macs +
                r.stats.stationary_macs + r.stats.classification_macs);
  EXPECT_GE(r.stats.average_depth(), 1.0);
  EXPECT_LE(r.stats.average_depth(), 3.0);
}

TEST(InferenceTest, SubsetOfNodesOnly) {
  auto w = MakeSmallWorld(3);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  const std::vector<std::int32_t> subset = {5, 17, 200, 399};
  InferenceConfig cfg;
  cfg.nap = NapKind::kNone;
  const auto r = engine.Infer(subset, cfg);
  ASSERT_EQ(r.predictions.size(), 4u);
  const auto full = TransductivePredictions(w, 3);
  for (std::size_t i = 0; i < subset.size(); ++i) {
    EXPECT_EQ(r.predictions[i], full[subset[i]]);
  }
}

TEST(InferenceTest, TminOneTmaxOne) {
  auto w = MakeSmallWorld(3);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.t_max = 1;
  const auto r = engine.Infer(w.all_nodes, cfg);
  EXPECT_EQ(r.stats.exits_at_depth[0],
            static_cast<std::int64_t>(w.all_nodes.size()));
  EXPECT_EQ(r.predictions, TransductivePredictions(w, 1));
}

TEST(InferenceTest, InferMixedMatchesPerConfigInferCalls) {
  // The per-query-config entry point groups queries by config identity;
  // each group must answer bit-identically to a direct Infer of that
  // group's node list, scattered back into caller order, with the groups'
  // counters merged.
  auto w = MakeSmallWorld(3, models::ModelKind::kSgc, 200);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig speed;
  speed.nap = NapKind::kDistance;
  speed.relative_distance = true;
  speed.threshold = 0.3f;
  speed.t_max = 2;
  InferenceConfig full;
  full.nap = NapKind::kNone;
  full.t_max = 0;

  std::vector<ConfiguredQuery> queries;
  std::vector<std::int32_t> speed_nodes;
  std::vector<std::int32_t> full_nodes;
  for (std::int32_t v = 0; v < 100; ++v) {
    const bool is_speed = v % 2 == 0;
    queries.push_back({v, is_speed ? &speed : &full});
    (is_speed ? speed_nodes : full_nodes).push_back(v);
  }
  const auto mixed = engine.InferMixed(queries);
  const auto ref_speed = engine.Infer(speed_nodes, speed);
  const auto ref_full = engine.Infer(full_nodes, full);

  ASSERT_EQ(mixed.predictions.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const bool is_speed = i % 2 == 0;
    const auto& ref = is_speed ? ref_speed : ref_full;
    const std::size_t j = i / 2;
    EXPECT_EQ(mixed.predictions[i], ref.predictions[j]) << "query " << i;
    EXPECT_EQ(mixed.exit_depths[i], ref.exit_depths[j]) << "query " << i;
  }
  EXPECT_EQ(mixed.stats.num_nodes, static_cast<std::int64_t>(queries.size()));
  EXPECT_EQ(mixed.stats.propagation_macs,
            ref_speed.stats.propagation_macs +
                ref_full.stats.propagation_macs);
  EXPECT_EQ(mixed.stats.classification_macs,
            ref_speed.stats.classification_macs +
                ref_full.stats.classification_macs);
  // The merged exit histogram covers the deeper group's depth range.
  ASSERT_EQ(mixed.stats.exits_at_depth.size(),
            ref_full.stats.exits_at_depth.size());
}

TEST(InferenceTest, InferMixedSingleConfigEqualsInfer) {
  auto w = MakeSmallWorld(3, models::ModelKind::kSgc, 200);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.4f;
  std::vector<ConfiguredQuery> queries;
  for (const std::int32_t v : w.all_nodes) queries.push_back({v, &cfg});
  const auto mixed = engine.InferMixed(queries);
  const auto ref = engine.Infer(w.all_nodes, cfg);
  EXPECT_EQ(mixed.predictions, ref.predictions);
  EXPECT_EQ(mixed.exit_depths, ref.exit_depths);
  EXPECT_EQ(mixed.stats.propagation_macs, ref.stats.propagation_macs);
  EXPECT_EQ(mixed.stats.exits_at_depth, ref.stats.exits_at_depth);
}

TEST(InferenceTest, InferMixedNullConfigThrows) {
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 120);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  EXPECT_THROW(engine.InferMixed({{0, nullptr}}), std::invalid_argument);
}

TEST(InferenceTest, QueryOrderPermutesResultsConsistently) {
  // The engine must report predictions aligned with the query order, so a
  // permuted query returns the same per-node answers.
  auto w = MakeSmallWorld(3, models::ModelKind::kSgc, 200);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.4f;
  const std::vector<std::int32_t> fwd = {3, 40, 77, 150, 199};
  const std::vector<std::int32_t> rev = {199, 150, 77, 40, 3};
  const auto a = engine.Infer(fwd, cfg);
  const auto b = engine.Infer(rev, cfg);
  ASSERT_EQ(a.predictions.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.predictions[i], b.predictions[4 - i]) << "node " << fwd[i];
    EXPECT_EQ(a.exit_depths[i], b.exit_depths[4 - i]) << "node " << fwd[i];
  }
}

}  // namespace
}  // namespace nai::core
