#include "src/core/nap_distance.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/tensor/ops.h"
#include "src/core/stationary.h"
#include "src/graph/generators.h"
#include "src/graph/normalize.h"
#include "src/models/scalable_gnn.h"
#include "tests/test_util.h"

namespace nai::core {
namespace {

TEST(NapDistanceTest, DistancesMatchManual) {
  tensor::Matrix a{{0.0f, 0.0f}, {1.0f, 2.0f}};
  tensor::Matrix b{{3.0f, 4.0f}, {1.0f, 2.0f}};
  const auto d = NapDistance::Distances(a, b);
  EXPECT_NEAR(d[0], 5.0f, 1e-6f);
  EXPECT_NEAR(d[1], 0.0f, 1e-6f);
}

TEST(NapDistanceTest, ThresholdSplitsExits) {
  tensor::Matrix a{{0.0f}, {0.0f}, {0.0f}};
  tensor::Matrix b{{1.0f}, {3.0f}, {5.0f}};
  const NapDistance nap(4.0f);
  const auto exits = nap.ShouldExit(a, b);
  EXPECT_TRUE(exits[0]);
  EXPECT_TRUE(exits[1]);
  EXPECT_FALSE(exits[2]);
}

TEST(NapDistanceTest, ZeroThresholdNeverExits) {
  tensor::Matrix a{{0.0f}, {1.0f}};
  tensor::Matrix b{{0.5f}, {1.5f}};
  const auto exits = NapDistance(0.0f).ShouldExit(a, b);
  EXPECT_FALSE(exits[0]);
  EXPECT_FALSE(exits[1]);
}

TEST(NapDistanceTest, LargerThresholdExitsEarlier) {
  // On a real graph: average personalized depth is non-increasing in T_s.
  graph::GeneratorConfig cfg;
  cfg.num_nodes = 300;
  cfg.num_edges = 1500;
  cfg.feature_dim = 6;
  cfg.seed = 21;
  const graph::SyntheticDataset ds = graph::GenerateDataset(cfg);
  const graph::Csr adj = graph::NormalizedAdjacency(ds.graph, 0.5f);
  const int k = 5;
  const auto stack = models::PropagateStack(adj, ds.features, k);
  const StationaryState state(ds.graph, ds.features, 0.5f);
  std::vector<std::int32_t> all;
  for (std::int32_t i = 0; i < 300; ++i) all.push_back(i);
  const tensor::Matrix inf = state.RowsForNodes(all);

  auto average_exit_depth = [&](float ts) {
    double total = 0.0;
    for (std::int32_t v = 0; v < 300; ++v) {
      int depth = k;
      for (int l = 1; l < k; ++l) {
        float d2 = 0.0f;
        for (std::size_t j = 0; j < 6; ++j) {
          const float diff = stack[l].at(v, j) - inf.at(v, j);
          d2 += diff * diff;
        }
        if (std::sqrt(d2) < ts) {
          depth = l;
          break;
        }
      }
      total += depth;
    }
    return total / 300.0;
  };

  const double coarse = average_exit_depth(10.0f);
  const double mid = average_exit_depth(1.0f);
  const double fine = average_exit_depth(0.01f);
  EXPECT_LE(coarse, mid);
  EXPECT_LE(mid, fine);
  EXPECT_LT(coarse, fine);  // strictly different at the extremes
}

TEST(NapDistanceTest, DistanceIsSymmetric) {
  const tensor::Matrix a{{1.0f, 2.0f}, {-3.0f, 0.5f}};
  const tensor::Matrix b{{0.0f, 1.0f}, {2.0f, 2.5f}};
  const auto ab = NapDistance::Distances(a, b);
  const auto ba = NapDistance::Distances(b, a);
  ASSERT_EQ(ab.size(), ba.size());
  for (std::size_t i = 0; i < ab.size(); ++i) {
    EXPECT_FLOAT_EQ(ab[i], ba[i]);
  }
}

TEST(DepthUpperBoundTest, InfiniteWhenLambdaDegenerate) {
  EXPECT_TRUE(std::isinf(DepthUpperBound(0.1f, 3, 100, 50, 1.0)));
  EXPECT_TRUE(std::isinf(DepthUpperBound(0.1f, 3, 100, 50, 0.0)));
  EXPECT_TRUE(std::isinf(DepthUpperBound(0.0f, 3, 100, 50, 0.9)));
}

TEST(DepthUpperBoundTest, DecreasesWithDegree) {
  // First term of Eq. 10: higher degree => smaller upper bound.
  const double lo = DepthUpperBound(0.1f, 1, 1000, 500, 0.9);
  const double hi = DepthUpperBound(0.1f, 100, 1000, 500, 0.9);
  EXPECT_GT(lo, hi);
}

TEST(DepthUpperBoundTest, IncreasesWithGraphSize) {
  const double small = DepthUpperBound(0.1f, 5, 1000, 500, 0.9);
  const double large = DepthUpperBound(0.1f, 5, 100000, 50000, 0.9);
  EXPECT_GT(large, small);
}

TEST(DepthUpperBoundTest, DecreasesWithThreshold) {
  const double strict = DepthUpperBound(0.01f, 5, 1000, 500, 0.9);
  const double loose = DepthUpperBound(1.0f, 5, 1000, 500, 0.9);
  EXPECT_GT(strict, loose);
}

TEST(DepthUpperBoundTest, StrongerConnectivityLowersBound) {
  // Smaller λ2 (faster mixing) => smaller depth bound.
  const double fast_mixing = DepthUpperBound(0.1f, 5, 1000, 500, 0.5);
  const double slow_mixing = DepthUpperBound(0.1f, 5, 1000, 500, 0.95);
  EXPECT_LT(fast_mixing, slow_mixing);
}

TEST(DepthUpperBoundTest, BoundsMeasuredExitDepths) {
  // Empirical check of Eq. 10 (first term) on a generated graph: measured
  // personalized depth must not exceed the bound (within +1 slack for the
  // discrete argmin).
  graph::GeneratorConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_edges = 1200;
  cfg.feature_dim = 4;
  cfg.seed = 31;
  const graph::SyntheticDataset ds = graph::GenerateDataset(cfg);
  const float gamma = 0.5f;
  const graph::Csr adj = graph::NormalizedAdjacency(ds.graph, gamma);
  const int k = 8;
  const auto stack = models::PropagateStack(adj, ds.features, k);
  const StationaryState state(ds.graph, ds.features, gamma);
  std::vector<std::int32_t> all;
  for (std::int32_t i = 0; i < 200; ++i) all.push_back(i);
  const tensor::Matrix inf = state.RowsForNodes(all);
  const double lambda2 =
      graph::EstimateSecondEigenvalue(adj, 80, 5);

  // Normalize features so the bound's unit-norm premise approximately
  // holds; compare shapes rather than exact values.
  const float ts = 0.5f;
  int violations = 0;
  for (std::int32_t v = 0; v < 200; ++v) {
    int measured = k;
    for (int l = 1; l <= k; ++l) {
      const auto d = tensor::RowL2Distance(stack[l].RowCopy(v),
                                           inf.RowCopy(v));
      if (d[0] < ts) {
        measured = l;
        break;
      }
    }
    const double bound =
        DepthUpperBound(ts / 40.0f, ds.graph.degree(v),
                        ds.graph.num_edges(), ds.graph.num_nodes(), lambda2);
    // The bound uses normalized-feature constants; scale slack is absorbed
    // in the ts/40 calibration. Count hard violations only.
    if (measured > bound + 1.0) ++violations;
  }
  EXPECT_LT(violations, 20);  // <10% of nodes
}

}  // namespace
}  // namespace nai::core
