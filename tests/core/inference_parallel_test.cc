// Determinism suite for the runtime-backed engine: NaiEngine::Infer must be
// bit-exact across kernel thread counts {1, 2, 8} and with inter-batch
// parallelism on or off, for NAPd, NAPg and the vanilla fixed-depth path.
// Stats merging must agree too: the exit histogram and every MAC counter
// are integers and order-independent; only wall-times may differ.

#include "src/core/inference.h"

#include <numeric>

#include "gtest/gtest.h"
#include "src/runtime/thread_pool.h"
#include "tests/core/core_fixtures.h"

namespace nai::core {
namespace {

using nai::testing::MakeSmallWorld;
using nai::testing::SmallWorld;

void ExpectSameResult(const InferenceResult& got, const InferenceResult& want,
                      const char* label) {
  EXPECT_EQ(got.predictions, want.predictions) << label;
  EXPECT_EQ(got.exit_depths, want.exit_depths) << label;
  EXPECT_EQ(got.stats.num_nodes, want.stats.num_nodes) << label;
  EXPECT_EQ(got.stats.exits_at_depth, want.stats.exits_at_depth) << label;
  EXPECT_EQ(got.stats.propagation_macs, want.stats.propagation_macs) << label;
  EXPECT_EQ(got.stats.nap_macs, want.stats.nap_macs) << label;
  EXPECT_EQ(got.stats.stationary_macs, want.stats.stationary_macs) << label;
  EXPECT_EQ(got.stats.classification_macs, want.stats.classification_macs)
      << label;
}

/// Reference run fully serial (1 thread, sequential batches), then the same
/// query re-run under every thread count x batch-parallelism combination.
void CheckDeterminism(SmallWorld& w, const GateStack* gates,
                      InferenceConfig cfg) {
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), gates);
  cfg.batch_size = 37;  // ~11 batches over the 400-node world
  cfg.inter_batch_parallelism = 1;
  runtime::ThreadPool::SetDefaultThreads(1);
  const InferenceResult reference = engine.Infer(w.all_nodes, cfg);

  for (const int threads : {1, 2, 8}) {
    runtime::ThreadPool::SetDefaultThreads(threads);
    for (const int ibp : {1, 4}) {
      cfg.inter_batch_parallelism = ibp;
      const InferenceResult run = engine.Infer(w.all_nodes, cfg);
      const std::string label =
          "threads=" + std::to_string(threads) + " ibp=" + std::to_string(ibp);
      ExpectSameResult(run, reference, label.c_str());
    }
  }
  runtime::ThreadPool::SetDefaultThreads(0);
}

TEST(InferenceParallelTest, NapDistanceBitExact) {
  auto w = MakeSmallWorld(3);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.3f;
  CheckDeterminism(w, nullptr, cfg);
}

TEST(InferenceParallelTest, NapGateBitExact) {
  auto w = MakeSmallWorld(3);
  GateStack gates(3, w.config.feature_dim, 77);
  const tensor::Matrix stationary = w.stationary->RowsForNodes(w.all_nodes);
  GateTrainConfig gcfg;
  gcfg.epochs = 20;
  gates.Train(w.stack, stationary, *w.classifiers, w.all_nodes, w.data.labels,
              gcfg);
  InferenceConfig cfg;
  cfg.nap = NapKind::kGate;
  CheckDeterminism(w, &gates, cfg);
}

TEST(InferenceParallelTest, VanillaBitExact) {
  auto w = MakeSmallWorld(3);
  InferenceConfig cfg;
  cfg.nap = NapKind::kNone;
  CheckDeterminism(w, nullptr, cfg);
}

TEST(InferenceParallelTest, GamlpAttentionHeadBitExact) {
  // GAMLP's head runs VectorAttention inside classify; concurrent shards
  // must not share scratch (regression: inference-mode Forward used to
  // write member matrices).
  auto w = MakeSmallWorld(2, models::ModelKind::kGamlp, 250);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.3f;
  CheckDeterminism(w, nullptr, cfg);
}

TEST(InferenceParallelTest, AutoShardCountCoversAllNodes) {
  // inter_batch_parallelism = 0 = one shard per pool thread; with more
  // shards than batches the engine must clamp and still classify everything.
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 120);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  runtime::ThreadPool::SetDefaultThreads(8);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.3f;
  cfg.batch_size = 100;  // 2 batches, 8 pool threads
  cfg.inter_batch_parallelism = 0;
  const InferenceResult run = engine.Infer(w.all_nodes, cfg);
  const std::int64_t exited =
      std::accumulate(run.stats.exits_at_depth.begin(),
                      run.stats.exits_at_depth.end(), std::int64_t{0});
  EXPECT_EQ(exited, static_cast<std::int64_t>(w.all_nodes.size()));
  for (const std::int32_t d : run.exit_depths) EXPECT_GE(d, 1);
  EXPECT_GT(run.stats.wall_time_ms, 0.0);  // elapsed, not summed per shard
  runtime::ThreadPool::SetDefaultThreads(0);
}

TEST(InferenceParallelTest, StatsAccumulateMergesHistogram) {
  InferenceStats a, b;
  a.exits_at_depth = {1, 2};
  a.propagation_macs = 10;
  a.fp_time_ms = 1.5;
  b.exits_at_depth = {4, 5, 6};
  b.propagation_macs = 32;
  b.nap_macs = 7;
  b.fp_time_ms = 2.5;
  a.Accumulate(b);
  EXPECT_EQ(a.exits_at_depth, (std::vector<std::int64_t>{5, 7, 6}));
  EXPECT_EQ(a.propagation_macs, 42);
  EXPECT_EQ(a.nap_macs, 7);
  EXPECT_DOUBLE_EQ(a.fp_time_ms, 4.0);
}

}  // namespace
}  // namespace nai::core
