#include "src/core/complexity.h"

#include "gtest/gtest.h"

namespace nai::core {
namespace {

ComplexityParams BaseParams() {
  ComplexityParams p;
  p.n = 1000;
  p.m = 10000;
  p.f = 64;
  p.p = 2;
  p.k = 5.0;
  p.q = 2.0;
  return p;
}

TEST(ComplexityTest, SgcFormulas) {
  const ComplexityParams p = BaseParams();
  EXPECT_EQ(VanillaMacs(models::ModelKind::kSgc, p),
            5 * 10000 * 64 + 1000 * 64 * 64);
  EXPECT_EQ(NaiMacs(models::ModelKind::kSgc, p, true),
            2 * 10000 * 64 + 1000 * 64 * 64 + 1000 * 64);
  EXPECT_EQ(NaiMacs(models::ModelKind::kSgc, p, false),
            2 * 10000 * 64 + 1000 * 64 * 64 +
                static_cast<std::int64_t>(1000) * 1000 * 64);
}

TEST(ComplexityTest, SignScalesClassificationWithDepth) {
  const ComplexityParams p = BaseParams();
  const std::int64_t vanilla = VanillaMacs(models::ModelKind::kSign, p);
  const std::int64_t nai = NaiMacs(models::ModelKind::kSign, p, true);
  // Vanilla: k * P * n * f^2; NAI: q * P * n * f^2 — NAI strictly smaller
  // in both the propagation and the classification term when q < k.
  EXPECT_LT(nai, vanilla);
  EXPECT_EQ(vanilla, 5 * 10000 * 64 + 5 * 2 * 1000 * 64 * 64);
}

TEST(ComplexityTest, S2gcHasAveragingTerm) {
  const ComplexityParams p = BaseParams();
  EXPECT_EQ(VanillaMacs(models::ModelKind::kS2gc, p),
            5 * 10000 * 64 + 5 * 1000 * 64 + 1000 * 64 * 64);
}

TEST(ComplexityTest, GamlpClassificationIndependentOfDepth) {
  ComplexityParams p = BaseParams();
  const std::int64_t at_k5 = VanillaMacs(models::ModelKind::kGamlp, p);
  p.k = 10.0;
  const std::int64_t at_k10 = VanillaMacs(models::ModelKind::kGamlp, p);
  // Only the propagation term grows with k.
  EXPECT_EQ(at_k10 - at_k5, 5 * 10000 * 64);
}

TEST(ComplexityTest, NaiBeatsVanillaWhenQSmall) {
  for (const auto kind :
       {models::ModelKind::kSgc, models::ModelKind::kSign,
        models::ModelKind::kS2gc, models::ModelKind::kGamlp}) {
    ComplexityParams p = BaseParams();
    p.q = 1.2;
    EXPECT_LT(NaiMacs(kind, p, true), VanillaMacs(kind, p))
        << models::ModelKindName(kind);
  }
}

TEST(ComplexityTest, QuadraticStationaryCanDominate) {
  // With the paper's O(n^2 f) stationary term, NAI exceeds vanilla on
  // small m; the rank-one implementation cuts that overhead from n^2 f to
  // n f (a factor of n).
  ComplexityParams p = BaseParams();
  p.m = 100;  // tiny edge count
  EXPECT_GT(NaiMacs(models::ModelKind::kSgc, p, false),
            VanillaMacs(models::ModelKind::kSgc, p));
  const std::int64_t paper = NaiMacs(models::ModelKind::kSgc, p, false);
  const std::int64_t rank_one = NaiMacs(models::ModelKind::kSgc, p, true);
  EXPECT_EQ(paper - rank_one, p.n * p.n * p.f - p.n * p.f);
}

TEST(ComplexityTest, FormulaStringsNonEmpty) {
  for (const auto kind :
       {models::ModelKind::kSgc, models::ModelKind::kSign,
        models::ModelKind::kS2gc, models::ModelKind::kGamlp}) {
    EXPECT_FALSE(VanillaFormula(kind).empty());
    EXPECT_FALSE(NaiFormula(kind).empty());
  }
}

TEST(ComplexityTest, NaiEqualsVanillaWhenQEqualsKForSgc) {
  // With q = k the NAI propagation term matches vanilla; the only extra is
  // the (rank-one) stationary term n*f.
  ComplexityParams p = BaseParams();
  p.q = p.k;
  EXPECT_EQ(NaiMacs(models::ModelKind::kSgc, p, true) -
                VanillaMacs(models::ModelKind::kSgc, p),
            p.n * p.f);
}

TEST(ComplexityTest, MacsScaleLinearlyInFeatureTouchedEdges) {
  // Doubling m doubles only the propagation term, for every family.
  for (const auto kind :
       {models::ModelKind::kSgc, models::ModelKind::kSign,
        models::ModelKind::kS2gc, models::ModelKind::kGamlp}) {
    ComplexityParams p = BaseParams();
    const std::int64_t base = VanillaMacs(kind, p);
    p.m *= 2;
    const std::int64_t doubled = VanillaMacs(kind, p);
    EXPECT_EQ(doubled - base,
              static_cast<std::int64_t>(p.k) * (p.m / 2) * p.f)
        << models::ModelKindName(kind);
  }
}

}  // namespace
}  // namespace nai::core
