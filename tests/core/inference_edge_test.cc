// Edge-case and property tests for the inference engine: isolated nodes,
// single-node batches, determinism, and a parameterized sweep over the
// (T_min, T_max) window.

#include <numeric>

#include "gtest/gtest.h"
#include "src/core/inference.h"
#include "src/tensor/ops.h"
#include "tests/core/core_fixtures.h"
#include "tests/test_util.h"

namespace nai::core {
namespace {

using nai::testing::MakeSmallWorld;

TEST(InferenceEdgeTest, IsolatedNodeIsClassified) {
  // A graph with an isolated node: its supporting set is just itself (the
  // self-loop), every hop is an identity-ish update, and the engine must
  // still classify it.
  graph::Graph g = graph::Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3},
                                               {3, 4}});  // node 5 isolated
  tensor::Matrix x = nai::testing::RandomMatrix(6, 8, 3);
  models::ModelConfig cfg;
  cfg.kind = models::ModelKind::kSgc;
  cfg.depth = 3;
  cfg.feature_dim = 8;
  cfg.num_classes = 2;
  cfg.hidden_dims = {4};
  cfg.dropout = 0.0f;
  ClassifierStack classifiers(cfg, 5);
  StationaryState stationary(g, x, 0.5f);
  NaiEngine engine(g, x, 0.5f, classifiers, &stationary, nullptr);

  InferenceConfig icfg;
  icfg.nap = NapKind::kDistance;
  icfg.threshold = 0.5f;
  const auto r = engine.Infer({5}, icfg);
  ASSERT_EQ(r.predictions.size(), 1u);
  EXPECT_GE(r.predictions[0], 0);
  EXPECT_LT(r.predictions[0], 2);
}

TEST(InferenceEdgeTest, TMaxZeroMeansUseClassifierDepth) {
  // InferenceConfig documents t_max = 0 as "use k" (the classifier bank's
  // depth). An explicit t_max = k run must be indistinguishable.
  auto w = MakeSmallWorld(3);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig zero;
  zero.nap = NapKind::kDistance;
  zero.relative_distance = true;
  zero.threshold = 0.5f;
  zero.t_max = 0;
  const auto implicit_k = engine.Infer(w.all_nodes, zero);

  InferenceConfig explicit_cfg = zero;
  explicit_cfg.t_max = 3;
  const auto explicit_k = engine.Infer(w.all_nodes, explicit_cfg);

  EXPECT_EQ(implicit_k.stats.exits_at_depth.size(), 3u);
  EXPECT_EQ(implicit_k.predictions, explicit_k.predictions);
  EXPECT_EQ(implicit_k.exit_depths, explicit_k.exit_depths);
  EXPECT_EQ(implicit_k.stats.propagation_macs,
            explicit_k.stats.propagation_macs);
}

TEST(InferenceEdgeTest, BatchSizeLargerThanNodeCount) {
  // A batch size far beyond the query count must behave exactly like one
  // batch holding every node.
  auto w = MakeSmallWorld(3, models::ModelKind::kSgc, 150);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.3f;
  cfg.batch_size = 100000;  // >> 150 nodes
  const auto huge = engine.Infer(w.all_nodes, cfg);
  cfg.batch_size = w.all_nodes.size();
  const auto exact = engine.Infer(w.all_nodes, cfg);
  ASSERT_EQ(huge.predictions.size(), w.all_nodes.size());
  EXPECT_EQ(huge.predictions, exact.predictions);
  EXPECT_EQ(huge.stats.propagation_macs, exact.stats.propagation_macs);
}

TEST(InferenceEdgeTest, EdgelessGraphClassifiesEveryNode) {
  // A graph with no edges at all: every supporting set degenerates to the
  // node itself and propagation must still terminate and classify.
  const std::int64_t n = 12;
  graph::Graph g = graph::Graph::FromEdges(n, {});
  tensor::Matrix x = nai::testing::RandomMatrix(n, 8, 17);
  models::ModelConfig cfg;
  cfg.kind = models::ModelKind::kSgc;
  cfg.depth = 2;
  cfg.feature_dim = 8;
  cfg.num_classes = 3;
  cfg.hidden_dims = {4};
  cfg.dropout = 0.0f;
  ClassifierStack classifiers(cfg, 5);
  StationaryState stationary(g, x, 0.5f);
  NaiEngine engine(g, x, 0.5f, classifiers, &stationary, nullptr);

  InferenceConfig icfg;
  icfg.nap = NapKind::kDistance;
  icfg.threshold = 0.5f;
  std::vector<std::int32_t> nodes(n);
  std::iota(nodes.begin(), nodes.end(), 0);
  const auto r = engine.Infer(nodes, icfg);
  ASSERT_EQ(r.predictions.size(), nodes.size());
  for (const std::int32_t pred : r.predictions) {
    EXPECT_GE(pred, 0);
    EXPECT_LT(pred, 3);
  }
  EXPECT_EQ(r.stats.num_nodes, n);
}

TEST(InferenceEdgeTest, EmptyNodeList) {
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 100);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  const auto r = engine.Infer({}, cfg);
  EXPECT_TRUE(r.predictions.empty());
  EXPECT_EQ(r.stats.num_nodes, 0);
}

TEST(InferenceEdgeTest, EmptyNodeListWithParallelBatches) {
  // Zero queries with inter-batch parallelism on: the shard planner sees
  // zero batches and must not dispatch anything (degenerate-split serving
  // paths hit this when a tiny graph leaves the test set empty).
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 100);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.inter_batch_parallelism = 4;
  const auto r = engine.Infer({}, cfg);
  EXPECT_TRUE(r.predictions.empty());
  EXPECT_TRUE(r.exit_depths.empty());
  EXPECT_EQ(r.stats.num_nodes, 0);
  EXPECT_EQ(r.stats.exits_at_depth.size(), 2u);  // t_max slots, all zero
  EXPECT_EQ(r.stats.propagation_macs, 0);
}

TEST(InferenceEdgeTest, SingleNodeBatches) {
  auto w = MakeSmallWorld(3, models::ModelKind::kSgc, 150);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.3f;
  cfg.batch_size = 1;  // every node alone
  const std::vector<std::int32_t> nodes = {0, 50, 149};
  const auto singles = engine.Infer(nodes, cfg);
  cfg.batch_size = 3;
  const auto together = engine.Infer(nodes, cfg);
  EXPECT_EQ(singles.predictions, together.predictions);
}

TEST(InferenceEdgeTest, RepeatedRunsDeterministic) {
  auto w = MakeSmallWorld(3);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.4f;
  const auto a = engine.Infer(w.all_nodes, cfg);
  const auto b = engine.Infer(w.all_nodes, cfg);
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_EQ(a.stats.propagation_macs, b.stats.propagation_macs);
  EXPECT_EQ(a.stats.exits_at_depth, b.stats.exits_at_depth);
}

// Property sweep over the depth window: exits land inside [T_min, T_max],
// sum to the node count, and propagation work is monotone in T_max when
// nothing exits early (threshold 0).
class DepthWindow : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DepthWindow, ExitsRespectWindow) {
  const auto [t_min, t_max] = GetParam();
  auto w = MakeSmallWorld(4);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.5f;
  cfg.relative_distance = true;
  cfg.t_min = t_min;
  cfg.t_max = t_max;
  const auto r = engine.Infer(w.all_nodes, cfg);

  std::int64_t total = 0;
  for (int l = 1; l <= static_cast<int>(r.stats.exits_at_depth.size()); ++l) {
    const std::int64_t count = r.stats.exits_at_depth[l - 1];
    total += count;
    if (l < t_min || l > t_max) {
      EXPECT_EQ(count, 0) << "exit outside window at depth " << l;
    }
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(w.all_nodes.size()));
  EXPECT_GE(r.stats.average_depth(), static_cast<double>(t_min));
  EXPECT_LE(r.stats.average_depth(), static_cast<double>(t_max));
}

INSTANTIATE_TEST_SUITE_P(
    Windows, DepthWindow,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(1, 2),
                      std::make_tuple(2, 3), std::make_tuple(1, 4),
                      std::make_tuple(3, 4), std::make_tuple(4, 4)));

// Monotonicity: with no early exits, deeper T_max costs strictly more
// propagation.
TEST(InferenceEdgeTest, PropagationMonotoneInDepth) {
  auto w = MakeSmallWorld(4);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  std::int64_t prev = 0;
  for (int t_max = 1; t_max <= 4; ++t_max) {
    InferenceConfig cfg;
    cfg.nap = NapKind::kNone;
    cfg.t_max = t_max;
    const auto r = engine.Infer(w.all_nodes, cfg);
    EXPECT_GT(r.stats.propagation_macs, prev);
    prev = r.stats.propagation_macs;
  }
}

// Threshold monotonicity: larger T_s never increases the average depth.
TEST(InferenceEdgeTest, ThresholdMonotone) {
  auto w = MakeSmallWorld(4);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  double prev_depth = 1e9;
  for (const float ts : {0.01f, 0.2f, 0.5f, 1.0f, 10.0f}) {
    InferenceConfig cfg;
    cfg.nap = NapKind::kDistance;
    cfg.relative_distance = true;
    cfg.threshold = ts;
    const auto r = engine.Infer(w.all_nodes, cfg);
    EXPECT_LE(r.stats.average_depth(), prev_depth + 1e-9);
    prev_depth = r.stats.average_depth();
  }
}

}  // namespace
}  // namespace nai::core

namespace nai::core {
namespace {

TEST(InferenceTraceTest, ExitDepthsConsistentWithHistogram) {
  auto w = nai::testing::MakeSmallWorld(4);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.relative_distance = true;
  cfg.threshold = 0.5f;
  const auto r = engine.Infer(w.all_nodes, cfg);
  ASSERT_EQ(r.exit_depths.size(), w.all_nodes.size());
  std::vector<std::int64_t> histogram(r.stats.exits_at_depth.size(), 0);
  for (const std::int32_t d : r.exit_depths) {
    ASSERT_GE(d, 1);
    ASSERT_LE(d, 4);
    ++histogram[d - 1];
  }
  EXPECT_EQ(histogram, r.stats.exits_at_depth);
}

TEST(InferenceTraceTest, FixedDepthTraceIsUniform) {
  auto w = nai::testing::MakeSmallWorld(3);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kNone;
  cfg.t_max = 2;
  const auto r = engine.Infer(w.all_nodes, cfg);
  for (const std::int32_t d : r.exit_depths) EXPECT_EQ(d, 2);
}

}  // namespace
}  // namespace nai::core

namespace nai::core {
namespace {

TEST(InferenceEdgeTest, DepthOnePipeline) {
  auto w = nai::testing::MakeSmallWorld(1, models::ModelKind::kSgc, 150);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;  // no decision hops exist at k = 1
  const auto r = engine.Infer(w.all_nodes, cfg);
  EXPECT_EQ(r.stats.exits_at_depth.size(), 1u);
  EXPECT_EQ(r.stats.exits_at_depth[0],
            static_cast<std::int64_t>(w.all_nodes.size()));
}

}  // namespace
}  // namespace nai::core
