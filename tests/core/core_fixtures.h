#ifndef NAI_TESTS_CORE_CORE_FIXTURES_H_
#define NAI_TESTS_CORE_CORE_FIXTURES_H_

#include <memory>
#include <vector>

#include "src/core/classifier_stack.h"
#include "src/core/distillation.h"
#include "src/core/stationary.h"
#include "src/graph/generators.h"
#include "src/graph/normalize.h"
#include "src/models/scalable_gnn.h"

namespace nai::testing {

/// A small transductive fixture: generated graph, propagated stack over the
/// whole graph, stationary state, and a CE-trained classifier bank. Enough
/// for unit-testing the NAI components without the full harness.
struct SmallWorld {
  graph::SyntheticDataset data;
  models::ModelConfig config;
  graph::Csr norm_adj;
  std::vector<tensor::Matrix> stack;
  std::unique_ptr<core::StationaryState> stationary;
  std::unique_ptr<core::ClassifierStack> classifiers;
  /// INT8 twin of the bank, quantized after training — what engines under
  /// test serve int8_classifier / kThroughputFirst configs with.
  std::unique_ptr<core::QuantizedClassifierStack> quantized;
  std::vector<std::int32_t> all_nodes;
  core::GatheredStack all_feats;
};

inline SmallWorld MakeSmallWorld(int depth = 3,
                                 models::ModelKind kind = models::ModelKind::kSgc,
                                 std::int64_t num_nodes = 400,
                                 int train_epochs = 60) {
  SmallWorld w;
  graph::GeneratorConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.num_edges = num_nodes * 5;
  cfg.num_classes = 4;
  cfg.feature_dim = 12;
  cfg.homophily = 0.85f;
  cfg.feature_noise = 2.0f;
  cfg.seed = 123;
  w.data = graph::GenerateDataset(cfg);

  w.config.kind = kind;
  w.config.depth = depth;
  w.config.gamma = 0.5f;
  w.config.feature_dim = cfg.feature_dim;
  w.config.num_classes = cfg.num_classes;
  w.config.hidden_dims = {16};
  w.config.dropout = 0.0f;

  w.norm_adj = graph::NormalizedAdjacency(w.data.graph, w.config.gamma);
  w.stack = models::PropagateStack(w.norm_adj, w.data.features, depth);
  w.stationary = std::make_unique<core::StationaryState>(
      w.data.graph, w.data.features, w.config.gamma);
  w.classifiers = std::make_unique<core::ClassifierStack>(w.config, 9);

  for (std::int64_t i = 0; i < num_nodes; ++i) {
    w.all_nodes.push_back(static_cast<std::int32_t>(i));
  }
  w.all_feats.mats = w.stack;

  core::DistillConfig dcfg;
  dcfg.base_epochs = train_epochs;
  dcfg.single_epochs = 0;
  dcfg.multi_epochs = 0;
  dcfg.enable_single = false;
  dcfg.enable_multi = false;
  core::InceptionDistillation distiller(*w.classifiers, dcfg);
  distiller.TrainAll(w.all_feats, w.data.labels, w.all_nodes);
  w.quantized =
      std::make_unique<core::QuantizedClassifierStack>(*w.classifiers);
  return w;
}

}  // namespace nai::testing

#endif  // NAI_TESTS_CORE_CORE_FIXTURES_H_
