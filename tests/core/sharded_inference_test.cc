// Bit-exactness suite for the sharded serving engine: ShardedNaiEngine must
// reproduce the unsharded NaiEngine exactly — predictions, exit depths, the
// exit histogram and every MAC counter — across shard counts {1, 2, 4} for
// NAPd, NAPg and the vanilla fixed-depth path, mirroring
// tests/core/inference_parallel_test.cc.
//
// Workload note: predictions, exit depths and the nap/stationary/
// classification counters are per-node quantities, equal for ANY query
// order. propagation_macs counts the shared supporting-set work per batch,
// so full-stats equality is asserted on a partition-aligned workload
// (ascending queries over a contiguous partition with the batch size
// dividing every shard's owned count — shard batches then equal unsharded
// batches); the scrambled-order tests pin the documented contract instead:
// sharded propagation MACs == the unsharded engine run on the same routed
// per-shard sub-lists.

#include "src/core/sharded_inference.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "gtest/gtest.h"
#include "src/graph/shard.h"
#include "src/tensor/random.h"
#include "tests/core/core_fixtures.h"

namespace nai::core {
namespace {

using nai::testing::MakeSmallWorld;
using nai::testing::SmallWorld;

constexpr int kDepth = 3;

NaiEngine MakePlainEngine(SmallWorld& w, const GateStack* gates) {
  return NaiEngine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), gates);
}

ShardedNaiEngine MakeSharded(SmallWorld& w, const GateStack* gates,
                             int num_shards, int halo_hops = kDepth,
                             int total_threads = 0) {
  return ShardedNaiEngine(
      w.data.graph, graph::MakeShards(w.data.graph, num_shards, halo_hops),
      w.data.features, w.config.gamma, *w.classifiers, w.stationary.get(),
      gates, total_threads);
}

void ExpectSamePerNode(const InferenceResult& got, const InferenceResult& want,
                       const std::string& label) {
  EXPECT_EQ(got.predictions, want.predictions) << label;
  EXPECT_EQ(got.exit_depths, want.exit_depths) << label;
  EXPECT_EQ(got.stats.num_nodes, want.stats.num_nodes) << label;
  EXPECT_EQ(got.stats.exits_at_depth, want.stats.exits_at_depth) << label;
  EXPECT_EQ(got.stats.nap_macs, want.stats.nap_macs) << label;
  EXPECT_EQ(got.stats.stationary_macs, want.stats.stationary_macs) << label;
  EXPECT_EQ(got.stats.classification_macs, want.stats.classification_macs)
      << label;
}

void ExpectSameResult(const InferenceResult& got, const InferenceResult& want,
                      const std::string& label) {
  ExpectSamePerNode(got, want, label);
  EXPECT_EQ(got.stats.propagation_macs, want.stats.propagation_macs) << label;
}

/// Aligned-workload equality: ascending queries over the contiguous default
/// partition with batch_size dividing every shard's owned count, so shard
/// batches coincide with unsharded batches and the FULL stats block must
/// match bit-for-bit for shard counts {1, 2, 4}.
void CheckShardedBitExact(SmallWorld& w, const GateStack* gates,
                          InferenceConfig cfg) {
  cfg.batch_size = 20;  // divides 400/1, 400/2 and 400/4 owned nodes
  NaiEngine plain = MakePlainEngine(w, gates);
  const InferenceResult reference = plain.Infer(w.all_nodes, cfg);

  for (const int shards : {1, 2, 4}) {
    ShardedNaiEngine sharded = MakeSharded(w, gates, shards);
    const InferenceResult run = sharded.Infer(w.all_nodes, cfg);
    ExpectSameResult(run, reference, "shards=" + std::to_string(shards));
  }
}

TEST(ShardedInferenceTest, NapDistanceBitExact) {
  auto w = MakeSmallWorld(kDepth);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.3f;
  CheckShardedBitExact(w, nullptr, cfg);
}

TEST(ShardedInferenceTest, NapGateBitExact) {
  auto w = MakeSmallWorld(kDepth);
  GateStack gates(kDepth, w.config.feature_dim, 77);
  const tensor::Matrix stationary = w.stationary->RowsForNodes(w.all_nodes);
  GateTrainConfig gcfg;
  gcfg.epochs = 20;
  gates.Train(w.stack, stationary, *w.classifiers, w.all_nodes, w.data.labels,
              gcfg);
  InferenceConfig cfg;
  cfg.nap = NapKind::kGate;
  CheckShardedBitExact(w, &gates, cfg);
}

TEST(ShardedInferenceTest, VanillaBitExact) {
  auto w = MakeSmallWorld(kDepth);
  InferenceConfig cfg;
  cfg.nap = NapKind::kNone;
  CheckShardedBitExact(w, nullptr, cfg);
}

TEST(ShardedInferenceTest, PoolSizeAndInterBatchParallelismInvariant) {
  // The shard pools' sizes and per-shard inter-batch parallelism must not
  // change a single bit of the result.
  auto w = MakeSmallWorld(kDepth);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.3f;
  cfg.batch_size = 20;
  NaiEngine plain = MakePlainEngine(w, nullptr);
  const InferenceResult reference = plain.Infer(w.all_nodes, cfg);
  for (const int total_threads : {1, 5}) {
    ShardedNaiEngine sharded =
        MakeSharded(w, nullptr, 2, kDepth, total_threads);
    for (const int ibp : {1, 4}) {
      cfg.inter_batch_parallelism = ibp;
      const InferenceResult run = sharded.Infer(w.all_nodes, cfg);
      ExpectSameResult(run, reference,
                       "threads=" + std::to_string(total_threads) +
                           " ibp=" + std::to_string(ibp));
    }
  }
}

/// Scrambled-order contract: per-node quantities equal the unsharded run of
/// the same list; propagation MACs equal the unsharded engine run on the
/// routed per-shard sub-lists (batch decompositions then agree).
void CheckScrambledContract(SmallWorld& w, ShardedNaiEngine& sharded,
                            const std::vector<std::int32_t>& queries,
                            InferenceConfig cfg) {
  NaiEngine plain = MakePlainEngine(w, nullptr);
  const InferenceResult reference = plain.Infer(queries, cfg);
  const InferenceResult run = sharded.Infer(queries, cfg);
  ExpectSamePerNode(run, reference, "scrambled");

  const graph::ShardedGraph& sg = sharded.sharded_graph();
  std::int64_t routed_propagation = 0;
  for (std::size_t s = 0; s < sg.num_shards(); ++s) {
    std::vector<std::int32_t> sub;
    for (const std::int32_t v : queries) {
      if (sg.owner[v] == static_cast<std::int32_t>(s)) sub.push_back(v);
    }
    if (sub.empty()) continue;
    routed_propagation += plain.Infer(sub, cfg).stats.propagation_macs;
  }
  EXPECT_EQ(run.stats.propagation_macs, routed_propagation);
}

TEST(ShardedInferenceTest, ScrambledQueryOrderMatchesPerNode) {
  auto w = MakeSmallWorld(kDepth);
  std::vector<std::int32_t> queries = w.all_nodes;
  tensor::Rng rng(2024);
  rng.Shuffle(queries);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.3f;
  cfg.batch_size = 37;
  ShardedNaiEngine sharded = MakeSharded(w, nullptr, 4);
  CheckScrambledContract(w, sharded, queries, cfg);
}

TEST(ShardedInferenceTest, UnevenShardCountAndCustomOwnerRoute) {
  // 400 nodes over 3 shards (134/133/133) plus a round-robin custom owner:
  // routing must stay exact whatever the partition shape.
  auto w = MakeSmallWorld(kDepth);
  std::vector<std::int32_t> queries = w.all_nodes;
  tensor::Rng rng(7);
  rng.Shuffle(queries);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.3f;
  cfg.batch_size = 37;

  ShardedNaiEngine uneven = MakeSharded(w, nullptr, 3);
  CheckScrambledContract(w, uneven, queries, cfg);

  std::vector<std::int32_t> owner(w.all_nodes.size());
  for (std::size_t v = 0; v < owner.size(); ++v) {
    owner[v] = static_cast<std::int32_t>(v % 2);
  }
  ShardedNaiEngine round_robin(
      w.data.graph, graph::MakeShards(w.data.graph, owner, kDepth),
      w.data.features, w.config.gamma, *w.classifiers, w.stationary.get(),
      nullptr);
  CheckScrambledContract(w, round_robin, queries, cfg);
}

TEST(ShardedInferenceTest, EmptyShardGetsNoEngineButServingStaysExact) {
  // A custom owner vector with a gap (ids 0 and 2 only): shard 1 owns
  // nothing, is skipped at construction, and the remaining shards still
  // serve every query bit-exactly.
  auto w = MakeSmallWorld(kDepth);
  std::vector<std::int32_t> owner(w.all_nodes.size());
  for (std::size_t v = 0; v < owner.size(); ++v) {
    owner[v] = (v % 2 == 0) ? 0 : 2;
  }
  ShardedNaiEngine sharded(
      w.data.graph, graph::MakeShards(w.data.graph, owner, kDepth),
      w.data.features, w.config.gamma, *w.classifiers, w.stationary.get(),
      nullptr);
  ASSERT_EQ(sharded.num_shards(), 3u);

  std::vector<std::int32_t> queries = w.all_nodes;
  tensor::Rng rng(13);
  rng.Shuffle(queries);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.3f;
  cfg.batch_size = 37;
  CheckScrambledContract(w, sharded, queries, cfg);
}

TEST(ShardedInferenceTest, StatsSetExactlyOnceAcrossShards) {
  // num_nodes and wall_time_ms describe the whole run: the merge must not
  // sum the per-shard values (num_nodes would double) nor drop them (zero).
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 120);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.threshold = 0.3f;
  cfg.batch_size = 25;
  ShardedNaiEngine sharded = MakeSharded(w, nullptr, 3, 2);
  const InferenceResult run = sharded.Infer(w.all_nodes, cfg);
  EXPECT_EQ(run.stats.num_nodes, 120);
  EXPECT_GT(run.stats.wall_time_ms, 0.0);
  const std::int64_t exited =
      std::accumulate(run.stats.exits_at_depth.begin(),
                      run.stats.exits_at_depth.end(), std::int64_t{0});
  EXPECT_EQ(exited, 120);
  for (const std::int32_t d : run.exit_depths) EXPECT_GE(d, 1);
}

TEST(ShardedInferenceTest, AccumulateExcludesNumNodesAndWallTime) {
  InferenceStats a, b;
  a.num_nodes = 5;
  a.wall_time_ms = 1.5;
  a.propagation_macs = 10;
  b.num_nodes = 7;
  b.wall_time_ms = 2.5;
  b.propagation_macs = 32;
  a.Accumulate(b);
  EXPECT_EQ(a.num_nodes, 5);          // untouched, set once by the caller
  EXPECT_DOUBLE_EQ(a.wall_time_ms, 1.5);  // ditto
  EXPECT_EQ(a.propagation_macs, 42);
}

TEST(ShardedInferenceTest, EmptyQueryList) {
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 120);
  ShardedNaiEngine sharded = MakeSharded(w, nullptr, 2, 2);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  const InferenceResult r = sharded.Infer({}, cfg);
  EXPECT_TRUE(r.predictions.empty());
  EXPECT_TRUE(r.exit_depths.empty());
  EXPECT_EQ(r.stats.num_nodes, 0);
  EXPECT_EQ(r.stats.exits_at_depth.size(), 2u);  // t_max slots, all zero
  EXPECT_EQ(r.stats.propagation_macs, 0);
}

TEST(ShardedInferenceTest, HaloTooShallowThrows) {
  auto w = MakeSmallWorld(kDepth);
  ShardedNaiEngine sharded = MakeSharded(w, nullptr, 2, /*halo_hops=*/1);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;  // default t_max = 0 resolves to k = 3 > 1
  EXPECT_THROW(sharded.Infer(w.all_nodes, cfg), std::invalid_argument);

  // A T_max within the halo must serve fine and match the plain engine.
  cfg.t_max = 1;
  cfg.batch_size = 20;
  NaiEngine plain = MakePlainEngine(w, nullptr);
  ExpectSameResult(sharded.Infer(w.all_nodes, cfg),
                   plain.Infer(w.all_nodes, cfg), "t_max=1 halo=1");
}

TEST(ShardedInferenceTest, QueryOutOfRangeThrows) {
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 120);
  ShardedNaiEngine sharded = MakeSharded(w, nullptr, 2, 2);
  InferenceConfig cfg;
  EXPECT_THROW(sharded.Infer({-1}, cfg), std::out_of_range);
  EXPECT_THROW(sharded.Infer({120}, cfg), std::out_of_range);
}

TEST(ShardedInferenceTest, InferMixedRoutesAndGroupsBitExact) {
  // Routed per-query-config serving: every (shard, config) group must
  // answer exactly like the unsharded engine's per-config runs on the same
  // nodes, scattered back into caller order.
  auto w = MakeSmallWorld(kDepth);
  InferenceConfig speed;
  speed.nap = NapKind::kDistance;
  speed.relative_distance = true;
  speed.threshold = 0.3f;
  speed.t_max = 2;
  InferenceConfig full;
  full.nap = NapKind::kNone;
  full.t_max = 0;

  std::vector<ConfiguredQuery> queries;
  std::vector<std::int32_t> speed_nodes;
  std::vector<std::int32_t> full_nodes;
  for (const std::int32_t v : w.all_nodes) {
    const bool is_speed = v % 3 != 0;
    queries.push_back({v, is_speed ? &speed : &full});
    (is_speed ? speed_nodes : full_nodes).push_back(v);
  }
  NaiEngine plain = MakePlainEngine(w, nullptr);
  const InferenceResult ref_speed = plain.Infer(speed_nodes, speed);
  const InferenceResult ref_full = plain.Infer(full_nodes, full);

  for (const int shards : {1, 2, 4}) {
    ShardedNaiEngine sharded = MakeSharded(w, nullptr, shards);
    const InferenceResult mixed = sharded.InferMixed(queries);
    ASSERT_EQ(mixed.predictions.size(), queries.size());
    std::size_t si = 0, fi = 0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const bool is_speed = w.all_nodes[i] % 3 != 0;
      const InferenceResult& ref = is_speed ? ref_speed : ref_full;
      const std::size_t j = is_speed ? si++ : fi++;
      EXPECT_EQ(mixed.predictions[i], ref.predictions[j])
          << "shards=" << shards << " query " << i;
      EXPECT_EQ(mixed.exit_depths[i], ref.exit_depths[j])
          << "shards=" << shards << " query " << i;
    }
    EXPECT_EQ(mixed.stats.num_nodes,
              static_cast<std::int64_t>(queries.size()));
  }
}

TEST(ShardedInferenceTest, InferMixedValidatesEveryConfig) {
  auto w = MakeSmallWorld(kDepth);
  ShardedNaiEngine sharded = MakeSharded(w, nullptr, 2, /*halo_hops=*/1);
  InferenceConfig shallow;
  shallow.nap = NapKind::kDistance;
  shallow.t_max = 1;
  InferenceConfig deep;
  deep.nap = NapKind::kDistance;
  deep.t_max = 0;  // resolves to k = 3 > halo 1
  // One offending config anywhere in the list rejects the whole call
  // before any shard runs.
  EXPECT_THROW(sharded.InferMixed({{0, &shallow}, {1, &deep}}),
               std::invalid_argument);
  EXPECT_THROW(sharded.InferMixed({{0, &shallow}, {1, nullptr}}),
               std::invalid_argument);
  const InferenceResult ok = sharded.InferMixed({{0, &shallow}});
  EXPECT_EQ(ok.predictions.size(), 1u);
}

TEST(ShardedInferenceTest, MismatchedShardingRejected) {
  auto w = MakeSmallWorld(2, models::ModelKind::kSgc, 120);
  auto other = MakeSmallWorld(2, models::ModelKind::kSgc, 60);
  EXPECT_THROW(
      ShardedNaiEngine(w.data.graph,
                       graph::MakeShards(other.data.graph, 2, 2),
                       w.data.features, w.config.gamma, *w.classifiers,
                       w.stationary.get(), nullptr),
      std::invalid_argument);
}

/// Hop distances from shard s's owned set over the FULL graph — the
/// independent reference for the steal-eligibility rule (the engine
/// computes the same thing by BFS over the induced shard subgraph).
std::vector<int> GlobalHaloDepths(const graph::Graph& g,
                                  const graph::GraphShard& shard) {
  std::vector<int> depth(g.num_nodes(), -1);
  std::vector<std::int32_t> frontier;
  for (const std::int32_t v : shard.owned) {
    depth[v] = 0;
    frontier.push_back(v);
  }
  int level = 0;
  while (!frontier.empty()) {
    ++level;
    std::vector<std::int32_t> next;
    for (const std::int32_t u : frontier) {
      for (const std::int32_t* it = g.neighbors_begin(u);
           it != g.neighbors_end(u); ++it) {
        if (depth[*it] < 0) {
          depth[*it] = level;
          next.push_back(*it);
        }
      }
    }
    frontier = std::move(next);
  }
  return depth;
}

TEST(ShardedInferenceTest, CanServeFromShardMatchesGlobalHaloDepths) {
  // The steal-path eligibility rule, checked against full-graph BFS
  // distances: shard s may serve v iff v sits deep enough inside s's halo
  // that the whole supporting BFS stays on complete adjacency rows.
  auto w = MakeSmallWorld(kDepth);
  ShardedNaiEngine sharded = MakeSharded(w, nullptr, 2, kDepth);
  const graph::ShardedGraph& sg = sharded.sharded_graph();
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.t_max = 2;
  for (std::size_t s = 0; s < sg.num_shards(); ++s) {
    const std::vector<int> depth = GlobalHaloDepths(w.data.graph,
                                                    sg.shards[s]);
    for (const std::int32_t v : w.all_nodes) {
      const bool in_shard = sg.shards[s].contains(v);
      const bool want =
          static_cast<std::size_t>(sg.owner[v]) == s ||
          (in_shard && depth[v] >= 0 && depth[v] + 2 <= sg.halo_hops);
      EXPECT_EQ(sharded.CanServeFromShard(s, v, cfg), want)
          << "shard " << s << " node " << v;
    }
  }
  EXPECT_THROW(sharded.CanServeFromShard(0, -1, cfg), std::out_of_range);
  EXPECT_THROW(sharded.CanServeFromShard(
                   0, static_cast<std::int32_t>(w.all_nodes.size()), cfg),
               std::out_of_range);
  // A shard index outside the partition can serve nothing.
  EXPECT_FALSE(sharded.CanServeFromShard(7, w.all_nodes[0], cfg));
}

TEST(ShardedInferenceTest, StealEligibleNodesServeBitExactFromThief) {
  // The property work stealing rests on: every steal-eligible (thief,
  // node) pair answers bit-identically from the thief's engine and from
  // the routed owner path — predictions and exit depths alike.
  auto w = MakeSmallWorld(kDepth);
  ShardedNaiEngine sharded = MakeSharded(w, nullptr, 4, kDepth);
  const graph::ShardedGraph& sg = sharded.sharded_graph();
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.relative_distance = true;
  cfg.threshold = 0.3f;
  cfg.t_max = 2;
  const InferenceResult ref = sharded.Infer(w.all_nodes, cfg);

  std::size_t eligible = 0;
  for (std::size_t s = 0; s < sg.num_shards(); ++s) {
    std::vector<std::int32_t> locals;
    std::vector<std::int32_t> globals;
    for (const std::int32_t v : w.all_nodes) {
      if (static_cast<std::size_t>(sg.owner[v]) == s) continue;
      if (!sharded.CanServeFromShard(s, v, cfg)) continue;
      locals.push_back(sg.shards[s].global_to_local[v]);
      globals.push_back(v);
    }
    if (locals.empty()) continue;
    eligible += locals.size();
    const InferenceResult stolen = sharded.shard_engine(s).Infer(locals, cfg);
    for (std::size_t i = 0; i < globals.size(); ++i) {
      EXPECT_EQ(stolen.predictions[i], ref.predictions[globals[i]])
          << "thief " << s << " node " << globals[i];
      EXPECT_EQ(stolen.exit_depths[i], ref.exit_depths[globals[i]])
          << "thief " << s << " node " << globals[i];
    }
  }
  // The small world is dense enough that some cross-shard nodes qualify;
  // a silently empty sweep would make this test vacuous.
  EXPECT_GT(eligible, 0u);
}

std::shared_ptr<const graph::GraphSnapshot> SnapshotOf(SmallWorld& w) {
  return graph::MakeSnapshot(w.data.graph, w.data.features, w.config.gamma);
}

graph::GraphDelta SmallDelta(const graph::GraphSnapshot& base) {
  const std::size_t f = base.features().cols();
  const std::int64_t n = base.graph().num_nodes();
  graph::GraphDelta delta;
  const std::int32_t a = delta.AddNode(std::vector<float>(f, 0.4f), n);
  const std::int32_t b = delta.AddNode(std::vector<float>(f, -0.7f), n);
  delta.AddEdge(a, 10);
  delta.AddEdge(a, 55);
  delta.AddEdge(b, a);
  delta.AddEdge(3, 200);
  delta.UpdateFeatures(42, std::vector<float>(f, 1.25f));
  return delta;
}

TEST(ShardedInferenceTest, SnapshotConstructorMatchesBorrowedView) {
  auto w = MakeSmallWorld(kDepth);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.relative_distance = true;
  cfg.threshold = 0.3f;
  cfg.batch_size = 20;
  ShardedNaiEngine borrowed = MakeSharded(w, nullptr, 2);
  const InferenceResult want = borrowed.Infer(w.all_nodes, cfg);

  auto snapshot = SnapshotOf(w);
  ShardedNaiEngine snapped(snapshot,
                           graph::MakeShards(snapshot->adj(), 2, kDepth),
                           *w.classifiers, nullptr);
  EXPECT_EQ(snapped.version(), 0u);
  ExpectSameResult(snapped.Infer(w.all_nodes, cfg), want, "snapshot ctor");
}

TEST(ShardedInferenceTest, SwapSnapshotMatchesFromScratchMergedEngine) {
  // The tentpole contract: after a swap, every query answers bit-identically
  // to a fresh engine built from scratch on the merged graph.
  auto w = MakeSmallWorld(kDepth);
  auto base = SnapshotOf(w);
  const graph::GraphDelta delta = SmallDelta(*base);
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.relative_distance = true;
  cfg.threshold = 0.3f;

  const auto merged = graph::MergeFromScratch(*base, {delta});
  StationaryState merged_stationary(merged->graph(), merged->features(),
                                    w.config.gamma);
  std::vector<std::int32_t> all_merged(merged->num_nodes());
  std::iota(all_merged.begin(), all_merged.end(), 0);

  for (const int shards : {1, 2, 4}) {
    ShardedNaiEngine live(base, graph::MakeShards(base->adj(), shards, kDepth),
                          *w.classifiers, nullptr);
    graph::SnapshotBuilder builder(base);
    live.SwapSnapshot(builder.Apply(delta));
    EXPECT_EQ(live.version(), 1u);

    // The reference partitions the merged graph with the live engine's own
    // post-swap owner map: per-node quantities are partition-independent,
    // but propagation MACs depend on the batch decomposition, so FULL stats
    // equality needs identical routing.
    ShardedNaiEngine reference(
        merged->graph(),
        graph::MakeShards(merged->adj(), live.PinState()->sharded.owner,
                          kDepth),
        merged->features(), w.config.gamma, *w.classifiers, &merged_stationary,
        nullptr);
    ExpectSameResult(live.Infer(all_merged, cfg),
                     reference.Infer(all_merged, cfg),
                     "post-swap shards=" + std::to_string(shards));
  }
}

TEST(ShardedInferenceTest, SwapKeepsPinnedStateUsableAndOwnersStable) {
  auto w = MakeSmallWorld(kDepth);
  auto base = SnapshotOf(w);
  ShardedNaiEngine live(base, graph::MakeShards(base->adj(), 2, kDepth),
                        *w.classifiers, nullptr);
  InferenceConfig cfg;
  cfg.t_max = 2;
  const auto pinned = live.PinState();
  const std::vector<std::int32_t> old_owner = pinned->sharded.owner;
  const InferenceResult before = live.Infer(w.all_nodes, cfg);

  graph::SnapshotBuilder builder(base);
  live.SwapSnapshot(builder.Apply(SmallDelta(*base)));

  // The pinned pre-swap state still carries its engines and old sharding —
  // readers that pinned it mid-batch finish on the version they started on.
  EXPECT_EQ(pinned->version, 0u);
  EXPECT_EQ(pinned->sharded.owner.size(), old_owner.size());
  ASSERT_FALSE(pinned->engines.empty());
  EXPECT_NE(pinned->engines[0], nullptr);

  // Existing owners never move; new nodes got assigned to a real shard.
  const auto now = live.PinState();
  ASSERT_GT(now->sharded.owner.size(), old_owner.size());
  for (std::size_t v = 0; v < old_owner.size(); ++v) {
    EXPECT_EQ(now->sharded.owner[v], old_owner[v]) << "node " << v;
  }
  for (std::size_t v = old_owner.size(); v < now->sharded.owner.size(); ++v) {
    EXPECT_GE(now->sharded.owner[v], 0);
    EXPECT_LT(static_cast<std::size_t>(now->sharded.owner[v]),
              live.num_shards());
  }
  // Old nodes answer identically before and after (per-node quantities on
  // the same features; the delta did not touch their supporting sets is not
  // guaranteed — so only check the engine still serves them).
  const InferenceResult after = live.Infer(w.all_nodes, cfg);
  EXPECT_EQ(after.predictions.size(), before.predictions.size());
}

TEST(ShardedInferenceTest, SwapValidationThrows) {
  auto w = MakeSmallWorld(kDepth);
  // Borrowed-view engines serve a frozen graph.
  ShardedNaiEngine borrowed = MakeSharded(w, nullptr, 2);
  auto base = SnapshotOf(w);
  EXPECT_THROW(borrowed.SwapSnapshot(base), std::logic_error);

  ShardedNaiEngine live(base, graph::MakeShards(base->adj(), 2, kDepth),
                        *w.classifiers, nullptr);
  EXPECT_THROW(live.SwapSnapshot(nullptr), std::invalid_argument);
  // A shrinking snapshot (fewer nodes than currently served) is rejected.
  graph::GeneratorConfig small;
  small.num_nodes = 10;
  small.num_edges = 20;
  small.feature_dim = w.config.feature_dim;
  auto tiny = graph::GenerateDataset(small);
  EXPECT_THROW(live.SwapSnapshot(graph::MakeSnapshot(
                   std::move(tiny.graph), std::move(tiny.features),
                   w.config.gamma)),
               std::invalid_argument);
}

TEST(ShardedInferenceTest, NewNodesRoutableAfterSwap) {
  auto w = MakeSmallWorld(kDepth);
  auto base = SnapshotOf(w);
  ShardedNaiEngine live(base, graph::MakeShards(base->adj(), 2, kDepth),
                        *w.classifiers, nullptr);
  const std::int64_t n = base->num_nodes();
  graph::SnapshotBuilder builder(base);
  const auto merged = graph::MergeFromScratch(*base, {SmallDelta(*base)});
  live.SwapSnapshot(builder.Apply(SmallDelta(*base)));

  InferenceConfig cfg;
  cfg.t_max = 2;
  const std::vector<std::int32_t> fresh = {static_cast<std::int32_t>(n),
                                           static_cast<std::int32_t>(n + 1)};
  const InferenceResult got = live.Infer(fresh, cfg);
  StationaryState merged_stationary(merged->graph(), merged->features(),
                                    w.config.gamma);
  NaiEngine reference(merged->graph(), merged->features(), w.config.gamma,
                      *w.classifiers, &merged_stationary, nullptr);
  const InferenceResult want = reference.Infer(fresh, cfg);
  EXPECT_EQ(got.predictions, want.predictions);
  EXPECT_EQ(got.exit_depths, want.exit_depths);
}

}  // namespace
}  // namespace nai::core
