#include "src/core/classifier_stack.h"

#include "gtest/gtest.h"
#include "src/tensor/ops.h"
#include "tests/core/core_fixtures.h"
#include "tests/test_util.h"

namespace nai::core {
namespace {

using nai::testing::MakeSmallWorld;
using nai::testing::RandomMatrix;

TEST(GatheredStackTest, GatherAndViews) {
  std::vector<tensor::Matrix> stack;
  stack.push_back(RandomMatrix(10, 4, 1));
  stack.push_back(RandomMatrix(10, 4, 2));
  stack.push_back(RandomMatrix(10, 4, 3));
  const GatheredStack g = GatherStack(stack, {3, 7});
  EXPECT_EQ(g.num_rows(), 2u);
  EXPECT_EQ(g.mats.size(), 3u);
  EXPECT_FLOAT_EQ(g.mats[1].at(0, 2), stack[1].at(3, 2));
  EXPECT_FLOAT_EQ(g.mats[2].at(1, 0), stack[2].at(7, 0));

  const models::FeatureViews v = g.ViewsUpTo(1);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], &g.mats[0]);
}

TEST(ClassifierStackTest, OneHeadPerDepth) {
  models::ModelConfig cfg;
  cfg.kind = models::ModelKind::kSgc;
  cfg.depth = 4;
  cfg.feature_dim = 8;
  cfg.num_classes = 3;
  ClassifierStack stack(cfg, 7);
  EXPECT_EQ(stack.depth(), 4);
  for (int l = 1; l <= 4; ++l) {
    EXPECT_EQ(stack.head(l).expected_views(), static_cast<std::size_t>(l + 1));
    EXPECT_EQ(stack.head(l).num_classes(), 3u);
  }
}

TEST(ClassifierStackTest, LogitsShapes) {
  auto w = MakeSmallWorld(3);
  for (int l = 1; l <= 3; ++l) {
    const tensor::Matrix logits = w.classifiers->Logits(l, w.all_feats);
    EXPECT_EQ(logits.rows(), w.all_nodes.size());
    EXPECT_EQ(logits.cols(), 4u);
  }
}

TEST(ClassifierStackTest, HeadParametersDistinct) {
  auto w = MakeSmallWorld(2);
  const auto p1 = w.classifiers->HeadParameters(1);
  const auto p2 = w.classifiers->HeadParameters(2);
  EXPECT_FALSE(p1.empty());
  for (const auto* a : p1) {
    for (const auto* b : p2) EXPECT_NE(a, b);
  }
}

TEST(ClassifierStackTest, TrainedHeadsBeatChance) {
  auto w = MakeSmallWorld(3);
  // All heads were CE-trained by the fixture; each should beat 4-class
  // chance comfortably on the (transductive) training data.
  for (int l = 1; l <= 3; ++l) {
    const tensor::Matrix logits = w.classifiers->Logits(l, w.all_feats);
    const auto pred = tensor::ArgmaxRows(logits);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < pred.size(); ++i) {
      if (pred[i] == w.data.labels[i]) ++correct;
    }
    EXPECT_GT(static_cast<double>(correct) / pred.size(), 0.5)
        << "head at depth " << l;
  }
}

TEST(ClassifierStackTest, SameSeedSameInitialization) {
  models::ModelConfig cfg;
  cfg.kind = models::ModelKind::kSgc;
  cfg.depth = 2;
  cfg.feature_dim = 6;
  cfg.num_classes = 3;
  cfg.hidden_dims = {4};
  cfg.dropout = 0.0f;
  ClassifierStack a(cfg, 42);
  ClassifierStack b(cfg, 42);
  std::vector<tensor::Matrix> stack;
  for (int t = 0; t <= 2; ++t) stack.push_back(RandomMatrix(5, 6, 90 + t));
  GatheredStack feats;
  feats.mats = stack;
  for (int l = 1; l <= 2; ++l) {
    EXPECT_EQ(a.Logits(l, feats).CountDifferences(b.Logits(l, feats), 0.0f),
              0u)
        << "depth " << l;
  }
}

TEST(GatheredStackTest, GatherEmptyRowSet) {
  std::vector<tensor::Matrix> stack;
  stack.push_back(RandomMatrix(10, 4, 5));
  const GatheredStack g = GatherStack(stack, {});
  EXPECT_EQ(g.num_rows(), 0u);
  EXPECT_EQ(g.mats.size(), 1u);
}

}  // namespace
}  // namespace nai::core
