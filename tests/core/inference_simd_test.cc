// SIMD regression suite for the engines: NaiEngine::Infer and
// ShardedNaiEngine::InferMixed must be bit-exact across dispatch levels
// (NAI_SIMD=scalar vs the host's best vector path) crossed with kernel
// thread counts — the end-to-end guarantee on top of the kernel-level
// parity suite, covering the real call graph (SpMM propagation, NAP
// distance checks, classifier matmuls, and the INT8 classifier whose
// integer arithmetic is exact at every level).

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/inference.h"
#include "src/core/sharded_inference.h"
#include "src/graph/shard.h"
#include "src/runtime/thread_pool.h"
#include "src/tensor/simd.h"
#include "tests/core/core_fixtures.h"

namespace nai::core {
namespace {

using nai::testing::MakeSmallWorld;
using nai::testing::SmallWorld;

struct DispatchGuard {
  ~DispatchGuard() {
    tensor::simd::SetActiveLevelForTesting(
        tensor::simd::BestSupportedLevel());
    runtime::ThreadPool::SetDefaultThreads(0);
  }
};

void ExpectSameResult(const InferenceResult& got, const InferenceResult& want,
                      const std::string& label) {
  EXPECT_EQ(got.predictions, want.predictions) << label;
  EXPECT_EQ(got.exit_depths, want.exit_depths) << label;
  EXPECT_EQ(got.stats.exits_at_depth, want.stats.exits_at_depth) << label;
  EXPECT_EQ(got.stats.propagation_macs, want.stats.propagation_macs) << label;
  EXPECT_EQ(got.stats.nap_macs, want.stats.nap_macs) << label;
  EXPECT_EQ(got.stats.classification_macs, want.stats.classification_macs)
      << label;
}

TEST(InferenceSimdTest, InferBitExactAcrossLevelsAndThreads) {
  DispatchGuard guard;
  auto w = MakeSmallWorld(3);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  engine.AttachQuantizedClassifiers(w.quantized.get());

  for (const bool int8 : {false, true}) {
    InferenceConfig cfg;
    cfg.nap = NapKind::kDistance;
    cfg.relative_distance = true;
    cfg.threshold = 0.3f;
    cfg.batch_size = 37;
    cfg.int8_classifier = int8;

    tensor::simd::SetActiveLevelForTesting(tensor::simd::Level::kScalar);
    runtime::ThreadPool::SetDefaultThreads(1);
    const InferenceResult reference = engine.Infer(w.all_nodes, cfg);

    for (const tensor::simd::Level level : tensor::simd::SupportedLevels()) {
      tensor::simd::SetActiveLevelForTesting(level);
      for (const int threads : {1, 8}) {
        runtime::ThreadPool::SetDefaultThreads(threads);
        const InferenceResult run = engine.Infer(w.all_nodes, cfg);
        ExpectSameResult(run, reference,
                         std::string("int8=") + (int8 ? "1" : "0") +
                             " level=" + tensor::simd::LevelName(level) +
                             " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(InferenceSimdTest, ShardedInferMixedBitExactAcrossLevelsAndThreads) {
  DispatchGuard guard;
  auto w = MakeSmallWorld(3);
  ShardedNaiEngine engine(
      w.data.graph, graph::MakeShards(w.data.graph, 2, /*halo_hops=*/3),
      w.data.features, w.config.gamma, *w.classifiers, w.stationary.get(),
      nullptr);
  engine.AttachQuantizedClassifiers(w.quantized.get());

  // Three interleaved config groups — speed-ish float, full-depth float,
  // and the INT8 speed shape — the co-batching shape the serving tier
  // submits.
  InferenceConfig speed;
  speed.nap = NapKind::kDistance;
  speed.relative_distance = true;
  speed.threshold = 0.3f;
  speed.t_max = 2;
  InferenceConfig accuracy;
  accuracy.nap = NapKind::kNone;
  accuracy.t_max = 0;  // full depth
  InferenceConfig throughput = speed;
  throughput.int8_classifier = true;
  const InferenceConfig* configs[] = {&speed, &accuracy, &throughput};

  std::vector<ConfiguredQuery> queries;
  for (std::size_t i = 0; i < w.all_nodes.size(); ++i) {
    queries.push_back({w.all_nodes[i], configs[i % 3]});
  }

  tensor::simd::SetActiveLevelForTesting(tensor::simd::Level::kScalar);
  runtime::ThreadPool::SetDefaultThreads(1);
  const InferenceResult reference = engine.InferMixed(queries);

  for (const tensor::simd::Level level : tensor::simd::SupportedLevels()) {
    tensor::simd::SetActiveLevelForTesting(level);
    for (const int threads : {1, 8}) {
      runtime::ThreadPool::SetDefaultThreads(threads);
      const InferenceResult run = engine.InferMixed(queries);
      ExpectSameResult(run, reference,
                       std::string("level=") +
                           tensor::simd::LevelName(level) +
                           " threads=" + std::to_string(threads));
    }
  }
}

TEST(InferenceSimdTest, Int8ClassifierRequiresAttachedStack) {
  auto w = MakeSmallWorld(2);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  InferenceConfig cfg;
  cfg.int8_classifier = true;
  EXPECT_THROW(engine.Infer(w.all_nodes, cfg), std::invalid_argument);
  engine.AttachQuantizedClassifiers(w.quantized.get());
  const InferenceResult run = engine.Infer(w.all_nodes, cfg);
  EXPECT_EQ(run.predictions.size(), w.all_nodes.size());
}

TEST(InferenceSimdTest, Int8PredictionsWithinAccuracyDeltaOfFloat) {
  // The quantization contract the serving tier budgets against: on the
  // small world, INT8 classification flips only a small fraction of
  // predictions relative to the same config served in float.
  auto w = MakeSmallWorld(3);
  NaiEngine engine(w.data.graph, w.data.features, w.config.gamma,
                   *w.classifiers, w.stationary.get(), nullptr);
  engine.AttachQuantizedClassifiers(w.quantized.get());
  InferenceConfig cfg;
  cfg.nap = NapKind::kDistance;
  cfg.relative_distance = true;
  cfg.threshold = 0.25f;
  const InferenceResult fp32 = engine.Infer(w.all_nodes, cfg);
  cfg.int8_classifier = true;
  const InferenceResult int8 = engine.Infer(w.all_nodes, cfg);
  ASSERT_EQ(fp32.predictions.size(), int8.predictions.size());
  // Exit depths are NAP decisions — float-path quantities, untouched by
  // the classifier's precision.
  EXPECT_EQ(int8.exit_depths, fp32.exit_depths);
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < fp32.predictions.size(); ++i) {
    if (fp32.predictions[i] != int8.predictions[i]) ++flipped;
  }
  EXPECT_LE(static_cast<double>(flipped),
            0.05 * static_cast<double>(fp32.predictions.size()))
      << flipped << " of " << fp32.predictions.size() << " flipped";
}

}  // namespace
}  // namespace nai::core
