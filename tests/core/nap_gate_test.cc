#include "src/core/nap_gate.h"

#include "gtest/gtest.h"
#include "src/tensor/ops.h"
#include "src/core/classifier_stack.h"
#include "src/nn/loss.h"
#include "tests/core/core_fixtures.h"
#include "tests/test_util.h"

namespace nai::core {
namespace {

using nai::testing::MakeSmallWorld;
using nai::testing::RandomMatrix;

TEST(GateStackTest, SameSeedSameDecisions) {
  GateStack a(4, 6, 99);
  GateStack b(4, 6, 99);
  const tensor::Matrix x = RandomMatrix(8, 6, 50);
  const tensor::Matrix xi = RandomMatrix(8, 6, 51);
  for (int l = 1; l <= 3; ++l) {
    EXPECT_EQ(a.Preference(l, x, xi).CountDifferences(b.Preference(l, x, xi),
                                                      0.0f),
              0u)
        << "gate " << l;
  }
}

TEST(GateStackTest, ConstructionShapes) {
  GateStack gates(5, 12, 1);
  EXPECT_EQ(gates.max_depth(), 5);
  EXPECT_EQ(gates.num_gates(), 4);
  EXPECT_EQ(gates.gate_weight(1).value.rows(), 24u);
  EXPECT_EQ(gates.gate_weight(1).value.cols(), 2u);
}

TEST(GateStackTest, PreferenceIsDistribution) {
  GateStack gates(3, 8, 2);
  const tensor::Matrix x = RandomMatrix(6, 8, 3);
  const tensor::Matrix xi = RandomMatrix(6, 8, 4);
  const tensor::Matrix e = gates.Preference(1, x, xi);
  EXPECT_EQ(e.rows(), 6u);
  EXPECT_EQ(e.cols(), 2u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(e.at(i, 0) + e.at(i, 1), 1.0f, 1e-5f);
  }
}

TEST(GateStackTest, ShouldExitMatchesPreference) {
  GateStack gates(3, 8, 5);
  const tensor::Matrix x = RandomMatrix(10, 8, 6);
  const tensor::Matrix xi = RandomMatrix(10, 8, 7);
  const tensor::Matrix e = gates.Preference(2, x, xi);
  const auto exits = gates.ShouldExit(2, x, xi);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(exits[i], e.at(i, 0) > e.at(i, 1));
  }
}

TEST(GateStackTest, DecisionBiasForcesExit) {
  GateStack gates(3, 8, 8);
  const tensor::Matrix x = RandomMatrix(10, 8, 9);
  const tensor::Matrix xi = RandomMatrix(10, 8, 10);
  const auto all_exit = gates.ShouldExit(1, x, xi, 10.0f);
  const auto none_exit = gates.ShouldExit(1, x, xi, -10.0f);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(all_exit[i]);
    EXPECT_FALSE(none_exit[i]);
  }
}

TEST(GateStackTest, PenaltyExactForm) {
  GateStack gates(4, 4, 11);
  // Node selected at depth 1 => large penalty at depths 2 and 3.
  std::vector<std::vector<float>> masks = {{1.0f}, {0.0f}, {0.0f}};
  const float mu = 1000.0f, phi = 1000.0f;
  EXPECT_NEAR(gates.Penalty(masks, 0, 2, mu, phi), 1000.0f, 1.0f);
  EXPECT_NEAR(gates.Penalty(masks, 0, 3, mu, phi), 1000.0f, 1.0f);
  // Never selected => penalty ~ 0.
  std::vector<std::vector<float>> clean = {{0.0f}, {0.0f}, {0.0f}};
  EXPECT_NEAR(gates.Penalty(clean, 0, 3, mu, phi), 0.0f, 1.0f);
  // Depth 1 has no previous gates.
  EXPECT_FLOAT_EQ(gates.Penalty(masks, 0, 1, mu, phi), 0.0f);
}

TEST(GateStackTest, TrainingReducesLoss) {
  auto w = MakeSmallWorld(3);
  GateStack gates(3, w.config.feature_dim, 21);
  const tensor::Matrix stationary =
      w.stationary->RowsForNodes(w.all_nodes);

  GateTrainConfig cfg;
  cfg.epochs = 2;
  cfg.learning_rate = 5e-3f;
  const float early = gates.Train(w.stack, stationary, *w.classifiers,
                                  w.all_nodes, w.data.labels, cfg);
  cfg.epochs = 60;
  GateStack gates2(3, w.config.feature_dim, 21);
  const float late = gates2.Train(w.stack, stationary, *w.classifiers,
                                  w.all_nodes, w.data.labels, cfg);
  // The classifiers are already strong, so the gate loss starts small and
  // the Gumbel noise makes per-epoch loss stochastic; training must stay in
  // the same small-loss regime (no divergence) rather than strictly shrink.
  EXPECT_LT(late, early * 1.5f + 0.05f);
  EXPECT_LT(late, 1.0f);
}

TEST(GateStackTest, TrainedGatesBeatChanceAccuracy) {
  // After training, routing nodes through their gate-chosen classifiers
  // should score clearly above chance (4 classes => 0.25).
  auto w = MakeSmallWorld(3);
  GateStack gates(3, w.config.feature_dim, 31);
  const tensor::Matrix stationary = w.stationary->RowsForNodes(w.all_nodes);
  GateTrainConfig cfg;
  cfg.epochs = 50;
  gates.Train(w.stack, stationary, *w.classifiers, w.all_nodes,
              w.data.labels, cfg);

  // Simulate the routing: per node take the first gate that says stop.
  std::size_t correct = 0;
  std::vector<tensor::Matrix> logits_at(w.config.depth + 1);
  for (int l = 1; l <= w.config.depth; ++l) {
    logits_at[l] = w.classifiers->Logits(l, w.all_feats);
  }
  std::vector<std::vector<bool>> exits(w.config.depth);
  for (int l = 1; l < w.config.depth; ++l) {
    exits[l] = gates.ShouldExit(l, w.stack[l], stationary);
  }
  for (std::size_t i = 0; i < w.all_nodes.size(); ++i) {
    int depth = w.config.depth;
    for (int l = 1; l < w.config.depth; ++l) {
      if (exits[l][i]) {
        depth = l;
        break;
      }
    }
    const auto pred = tensor::ArgmaxRows(logits_at[depth].RowCopy(i));
    if (pred[0] == w.data.labels[i]) ++correct;
  }
  const double acc =
      static_cast<double>(correct) / static_cast<double>(w.all_nodes.size());
  EXPECT_GT(acc, 0.5);
}

TEST(GateStackTest, DecisionMacs) {
  GateStack gates(4, 10, 41);
  EXPECT_EQ(gates.DecisionMacs(7), 7 * 20 * 2);
}

}  // namespace
}  // namespace nai::core
