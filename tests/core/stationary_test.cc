#include "src/core/stationary.h"
#include <cmath>

#include "gtest/gtest.h"
#include "src/tensor/ops.h"
#include "src/graph/generators.h"
#include "src/graph/normalize.h"
#include "src/models/scalable_gnn.h"
#include "tests/test_util.h"

namespace nai::core {
namespace {

using nai::testing::RandomMatrix;

class StationaryGamma : public ::testing::TestWithParam<float> {};

TEST_P(StationaryGamma, RankOneMatchesDenseReference) {
  const float gamma = GetParam();
  graph::GeneratorConfig cfg;
  cfg.num_nodes = 80;
  cfg.num_edges = 300;
  cfg.feature_dim = 5;
  cfg.seed = 3;
  const graph::SyntheticDataset ds = graph::GenerateDataset(cfg);
  const StationaryState state(ds.graph, ds.features, gamma);

  std::vector<std::int32_t> all;
  for (std::int32_t i = 0; i < ds.graph.num_nodes(); ++i) all.push_back(i);
  const tensor::Matrix fast = state.RowsForNodes(all);
  const tensor::Matrix dense =
      StationaryStateDense(ds.graph, ds.features, gamma);
  nai::testing::ExpectMatrixNear(fast, dense, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Gammas, StationaryGamma,
                         ::testing::Values(0.0f, 0.5f, 1.0f));

TEST(StationaryTest, PropagationConvergesToStationary) {
  // On a connected graph, Â^t X -> X^(∞) as t grows (Eq. 6). Use a small
  // connected graph and many hops.
  const graph::Graph g = graph::CompleteGraph(3);
  // Make it irregular by attaching a path: nodes 3, 4.
  const graph::Graph graph = graph::Graph::FromEdges(
      5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}});
  (void)g;
  const tensor::Matrix x = RandomMatrix(5, 3, 7);
  const float gamma = 0.5f;
  const graph::Csr adj = graph::NormalizedAdjacency(graph, gamma);
  const auto stack = models::PropagateStack(adj, x, 200);
  const StationaryState state(graph, x, gamma);
  std::vector<std::int32_t> all = {0, 1, 2, 3, 4};
  const tensor::Matrix inf = state.RowsForNodes(all);
  nai::testing::ExpectMatrixNear(stack.back(), inf, 1e-2f);
}

TEST(StationaryTest, DistanceToStationaryShrinksWithDepth) {
  graph::GeneratorConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_edges = 900;
  cfg.feature_dim = 6;
  cfg.seed = 9;
  const graph::SyntheticDataset ds = graph::GenerateDataset(cfg);
  const float gamma = 0.5f;
  const graph::Csr adj = graph::NormalizedAdjacency(ds.graph, gamma);
  const auto stack = models::PropagateStack(adj, ds.features, 6);
  const StationaryState state(ds.graph, ds.features, gamma);
  std::vector<std::int32_t> all;
  for (std::int32_t i = 0; i < 200; ++i) all.push_back(i);
  const tensor::Matrix inf = state.RowsForNodes(all);

  double prev = 1e300;
  for (int t = 0; t <= 6; t += 2) {
    const auto d = tensor::RowL2Distance(stack[t], inf);
    double total = 0.0;
    for (const float v : d) total += v;
    EXPECT_LT(total, prev);
    prev = total;
  }
}

TEST(StationaryTest, HighDegreeNodesCloserToStationaryRelatively) {
  // The paper's motivation: hubs smooth faster. Because ||X^(∞)_i|| itself
  // grows like sqrt(d_i+1) under symmetric normalization, the scale-free
  // comparison divides by the stationary norm (NapDistance relative mode).
  graph::GeneratorConfig cfg;
  cfg.num_nodes = 500;
  cfg.num_edges = 3000;
  cfg.power_law_exponent = 2.0f;
  cfg.feature_dim = 8;
  cfg.seed = 11;
  const graph::SyntheticDataset ds = graph::GenerateDataset(cfg);
  const graph::Csr adj = graph::NormalizedAdjacency(ds.graph, 0.5f);
  const auto stack = models::PropagateStack(adj, ds.features, 2);
  const StationaryState state(ds.graph, ds.features, 0.5f);
  std::vector<std::int32_t> all;
  for (std::int32_t i = 0; i < 500; ++i) all.push_back(i);
  const tensor::Matrix inf = state.RowsForNodes(all);
  auto dist = tensor::RowL2Distance(stack[2], inf);
  for (std::size_t i = 0; i < dist.size(); ++i) {
    dist[i] /= std::sqrt(inf.RowSquaredNorm(i)) + 1e-12f;
  }

  // Compare mean distance of top-decile degree vs bottom-decile degree.
  std::vector<std::int32_t> order = all;
  std::sort(order.begin(), order.end(), [&](auto a, auto b) {
    return ds.graph.degree(a) < ds.graph.degree(b);
  });
  double low = 0.0, high = 0.0;
  const std::size_t decile = 50;
  for (std::size_t i = 0; i < decile; ++i) {
    low += dist[order[i]];
    high += dist[order[order.size() - 1 - i]];
  }
  EXPECT_LT(high, low);
}

TEST(StationaryTest, RowsForDegreesHandlesUnseenNodes) {
  const graph::Graph g = graph::CycleGraph(10);
  const tensor::Matrix x = RandomMatrix(10, 4, 13);
  const StationaryState state(g, x, 0.5f);
  // A hypothetical unseen node of degree 4 (d+1 = 5).
  const tensor::Matrix rows = state.RowsForDegrees({5.0f});
  EXPECT_EQ(rows.rows(), 1u);
  EXPECT_EQ(rows.cols(), 4u);
  // Scaling law: degree-weight scales like (d+1)^gamma.
  const tensor::Matrix rows2 = state.RowsForDegrees({20.0f});
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(rows2.at(0, j) / rows.at(0, j), std::sqrt(20.0f / 5.0f),
                1e-4f);
  }
}

TEST(StationaryTest, PooledVectorShape) {
  const graph::Graph g = graph::StarGraph(5);
  const tensor::Matrix x = RandomMatrix(6, 7, 17);
  const StationaryState state(g, x, 0.5f);
  EXPECT_EQ(state.pooled().rows(), 1u);
  EXPECT_EQ(state.pooled().cols(), 7u);
  EXPECT_FLOAT_EQ(state.gamma(), 0.5f);
}

TEST(StationaryTest, FromPooledReconstructsIdenticalState) {
  const graph::Graph g = graph::GridGraph(4, 4);
  const tensor::Matrix x = RandomMatrix(16, 5, 19);
  const StationaryState original(g, x, 0.5f);
  const StationaryState rebuilt =
      StationaryState::FromPooled(g, original.pooled(), 0.5f);
  std::vector<std::int32_t> all;
  for (std::int32_t i = 0; i < 16; ++i) all.push_back(i);
  EXPECT_EQ(original.RowsForNodes(all).CountDifferences(
                rebuilt.RowsForNodes(all), 0.0f),
            0u);
}

}  // namespace
}  // namespace nai::core
