#include "src/tensor/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace nai::tensor {

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> rows) {
  rows_ = rows.size();
  cols_ = rows.size() == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    assert(r.size() == cols_ && "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

Matrix Matrix::RowCopy(std::size_t r) const {
  Matrix out(1, cols_);
  std::copy(row(r), row(r) + cols_, out.data());
  return out;
}

Matrix Matrix::GatherRows(const std::vector<std::int32_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] >= 0 && static_cast<std::size_t>(indices[i]) < rows_);
    std::copy(row(indices[i]), row(indices[i]) + cols_, out.row(i));
  }
  return out;
}

void Matrix::SetRow(std::size_t r, const float* src) {
  std::copy(src, src + cols_, row(r));
}

float Matrix::RowSquaredNorm(std::size_t r) const {
  const float* p = row(r);
  float acc = 0.0f;
  for (std::size_t c = 0; c < cols_; ++c) acc += p[c] * p[c];
  return acc;
}

std::size_t Matrix::CountDifferences(const Matrix& other, float tol) const {
  if (!SameShape(other)) return size();
  std::size_t diff = 0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) ++diff;
  }
  return diff;
}

std::string Matrix::ShapeString() const {
  std::ostringstream os;
  os << "[" << rows_ << " x " << cols_ << "]";
  return os.str();
}

}  // namespace nai::tensor
