#ifndef NAI_TENSOR_OPS_H_
#define NAI_TENSOR_OPS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/runtime/exec_context.h"
#include "src/tensor/matrix.h"

namespace nai::tensor {

/// out = a * b. Shapes: (m x k) * (k x n) -> (m x n).
/// Rows of `out` are computed in parallel on the context's thread pool;
/// results are bit-exact for any thread count.
Matrix MatMul(const Matrix& a, const Matrix& b,
              const runtime::ExecContext& ctx = {});

/// out = a * b^T. Shapes: (m x k) * (n x k)^T -> (m x n).
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b,
                        const runtime::ExecContext& ctx = {});

/// out = a^T * b. Shapes: (k x m)^T * (k x n) -> (m x n).
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);

/// dst += src (elementwise). Shapes must match.
void AddInPlace(Matrix& dst, const Matrix& src);

/// dst += alpha * src (elementwise). Shapes must match.
void Axpy(Matrix& dst, float alpha, const Matrix& src);

/// dst *= alpha.
void ScaleInPlace(Matrix& dst, float alpha);

/// Returns a - b.
Matrix Subtract(const Matrix& a, const Matrix& b);

/// Adds row-vector `bias` (1 x cols) to every row of `m`.
void AddRowBias(Matrix& m, const Matrix& bias);

/// ReLU in place.
void ReluInPlace(Matrix& m);

/// Given pre-activation `z` and upstream gradient `grad`, zeroes gradient
/// entries where z <= 0 (ReLU backward), in place on `grad`.
void ReluBackwardInPlace(const Matrix& z, Matrix& grad);

/// Sigmoid in place.
void SigmoidInPlace(Matrix& m);

/// Row-wise softmax with optional temperature: softmax(m[i] / temperature).
Matrix SoftmaxRows(const Matrix& m, float temperature = 1.0f,
                   const runtime::ExecContext& ctx = {});

/// Row-wise log-softmax (numerically stable).
Matrix LogSoftmaxRows(const Matrix& m, const runtime::ExecContext& ctx = {});

/// Argmax of each row.
std::vector<std::int32_t> ArgmaxRows(const Matrix& m);

/// Concatenates matrices horizontally (same row count).
Matrix ConcatCols(const std::vector<const Matrix*>& parts);

/// Elementwise mean of equally-shaped matrices.
Matrix Mean(const std::vector<const Matrix*>& parts);

/// Per-row L2 distance between equally-shaped a and b:
/// out[i] = ||a[i] - b[i]||_2.
std::vector<float> RowL2Distance(const Matrix& a, const Matrix& b,
                                 const runtime::ExecContext& ctx = {});

/// Per-row L2 norms.
std::vector<float> RowL2Norms(const Matrix& m);

/// Normalizes each row to unit L2 norm (rows with norm < eps are left as-is).
void NormalizeRowsInPlace(Matrix& m, float eps = 1e-12f);

/// Sum over rows -> 1 x cols.
Matrix ColumnSums(const Matrix& m);

/// Frobenius norm.
float FrobeniusNorm(const Matrix& m);

/// Dropout forward: zeroes each entry with probability `rate` and rescales
/// survivors by 1/(1-rate). `mask` receives the kept/rescale multipliers so
/// the caller can replay the same mask in the backward pass. `rate` = 0 is a
/// no-op. Uses the caller's uniform sampler for determinism.
void DropoutInPlace(Matrix& m, float rate, Matrix& mask,
                    const std::function<float()>& uniform01);

}  // namespace nai::tensor

#endif  // NAI_TENSOR_OPS_H_
