#ifndef NAI_TENSOR_SIMD_H_
#define NAI_TENSOR_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace nai::tensor::simd {

/// The vector instruction sets the kernel layer can dispatch to. kScalar is
/// always compiled and is the bit-exactness reference: every vector kernel
/// must produce byte-identical float results (fixed per-element summation
/// order, mul-then-add — never fused — arithmetic) and exact int8/int32
/// integer results.
enum class Level {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// Stable lowercase name ("scalar" / "avx2" / "neon") — also the accepted
/// NAI_SIMD spellings.
const char* LevelName(Level level);

/// Strict parse of an NAI_SIMD token: exactly "scalar", "avx2" or "neon"
/// (case-sensitive, no surrounding whitespace). Anything else — including
/// "AVX2", "avx2 " or "best" — is rejected with nullopt, mirroring the
/// whole-token rejection of NAI_THREADS / NAI_SCALE.
std::optional<Level> ParseLevel(std::string_view token);

/// True when kernels for `level` were compiled into this binary (a build
/// for x86-64 carries scalar + AVX2; an ARM build scalar + NEON).
bool LevelCompiled(Level level);

/// True when `level` is compiled in *and* the running CPU executes it
/// (runtime CPUID/feature detection; kScalar is always supported).
bool LevelSupported(Level level);

/// The fastest supported level on this host (what NAI_SIMD-less startup
/// selects).
Level BestSupportedLevel();

/// Every supported level, kScalar first — the sweep axis of the kernel
/// parity suite.
std::vector<Level> SupportedLevels();

/// The level all dispatched kernels currently run at. Resolved once on
/// first use: NAI_SIMD overrides auto-detection when it names a *supported*
/// level; an unset, invalid or unsupported value falls back to
/// BestSupportedLevel() (never an error — serving must come up on any
/// host).
Level ActiveLevel();

/// Re-resolution of `value` exactly as first-use startup would resolve the
/// NAI_SIMD environment variable (nullptr = unset). Exposed for property
/// tests; does not change the active level.
Level ResolveLevel(const char* value);

/// Pins the active level for the current process — the parity suite's
/// lever for exercising each path on one host. Throws
/// std::invalid_argument when `level` is not supported here.
void SetActiveLevelForTesting(Level level);

/// The dispatched kernels of one level. All pointers are non-null for
/// every compiled level; matrices are dense row-major with contiguous rows
/// (leading dimension == column count), no alignment requirement. The
/// float contracts fix the per-element operation sequence, which is what
/// makes every level bit-exact to kScalar. One carve-out: when an element
/// combines two distinct NaNs (e.g. a propagated NaN accumulator added to
/// a fresh inf*0 indefinite), IEEE 754 leaves the surviving payload/sign
/// unspecified and even the scalar reference's choice is a codegen
/// artifact, so the contract there is NaN-for-NaN positional agreement
/// only. Every value that is not such a NaN — including signed zeros,
/// denormals, infinities and single-source NaNs — is bit-identical:
///   * axpy:            dst[j] += w * src[j], j ascending.
///   * matmul_rows:     rows [r0,r1) of out(m,n) += a(m,k) * b(k,n); for
///                      each output element, products accumulate over p
///                      ascending and every a[i][p] == 0.0f contributes
///                      nothing (the scalar zero-skip — it also skips
///                      0 * NaN, so it is part of the numeric contract).
///   * matmul_tb_rows:  rows [r0,r1) of out(m,n) = a(m,k) * b(n,k)^T; each
///                      element is a fresh dot product over p ascending
///                      with no zero-skip.
///   * gemm_s8:         acc[j] += x[p] * w[p*n + j] (int32) over p
///                      ascending, skipping x[p] == 0; integer arithmetic,
///                      so exact at every level.
struct KernelSet {
  void (*axpy)(float w, const float* src, float* dst, std::size_t n);
  void (*matmul_rows)(const float* a, const float* b, float* out,
                      std::size_t r0, std::size_t r1, std::size_t k,
                      std::size_t n);
  void (*matmul_tb_rows)(const float* a, const float* b, float* out,
                         std::size_t r0, std::size_t r1, std::size_t k,
                         std::size_t n);
  void (*gemm_s8)(const std::int8_t* x, const std::int8_t* w,
                  std::int32_t* acc, std::size_t k, std::size_t n);
};

/// Kernel table of one level. Throws std::invalid_argument for a level not
/// compiled into this binary.
const KernelSet& Kernels(Level level);

/// Kernel table of ActiveLevel() — what the tensor/graph entry points
/// fetch once per op call.
const KernelSet& ActiveKernels();

}  // namespace nai::tensor::simd

#endif  // NAI_TENSOR_SIMD_H_
