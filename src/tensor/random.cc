#include "src/tensor/random.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace nai::tensor {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four xoshiro words from splitmix64, per the reference
  // implementation's recommendation, so that seed=0 is safe.
  for (auto& word : s_) word = SplitMix64(seed);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

float Rng::NextFloat() {
  // 24 high-quality bits -> [0, 1).
  return static_cast<float>(NextUint64() >> 40) * 0x1.0p-24f;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

float Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller with guards against log(0).
  float u1 = NextFloat();
  while (u1 <= 1e-12f) u1 = NextFloat();
  const float u2 = NextFloat();
  const float radius = std::sqrt(-2.0f * std::log(u1));
  const float angle = 2.0f * std::numbers::pi_v<float> * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

float Rng::NextGumbel() {
  float u = NextFloat();
  while (u <= 1e-12f) u = NextFloat();
  return -std::log(-std::log(u));
}

void Rng::Shuffle(std::vector<std::int32_t>& values) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = NextBounded(i);
    std::swap(values[i - 1], values[j]);
  }
}

void FillGaussian(Matrix& m, float stddev, Rng& rng) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = stddev * rng.NextGaussian();
  }
}

void FillGlorot(Matrix& m, Rng& rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(m.rows() + m.cols()));
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = limit * (2.0f * rng.NextFloat() - 1.0f);
  }
}

std::vector<std::int32_t> SampleWithoutReplacement(std::int64_t population,
                                                   std::int64_t count,
                                                   Rng& rng) {
  assert(count <= population);
  std::vector<std::int32_t> all(population);
  for (std::int64_t i = 0; i < population; ++i) {
    all[i] = static_cast<std::int32_t>(i);
  }
  // Partial Fisher-Yates: only the first `count` positions need to be final.
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t j =
        i + static_cast<std::int64_t>(rng.NextBounded(population - i));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

}  // namespace nai::tensor
