#ifndef NAI_TENSOR_RANDOM_H_
#define NAI_TENSOR_RANDOM_H_

#include <cstdint>
#include <vector>

#include "src/tensor/matrix.h"

namespace nai::tensor {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
///
/// Every stochastic component of the library (weight init, graph generation,
/// Gumbel noise, dropout masks) draws from an explicitly seeded Rng so runs
/// are exactly reproducible. We intentionally avoid <random> distribution
/// objects because their output is not specified across standard-library
/// implementations; all sampling algorithms here are self-contained.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit integer.
  std::uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform float in [0, 1).
  float NextFloat();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal via Box-Muller.
  float NextGaussian();

  /// Gumbel(0, 1) sample: -log(-log(U)).
  float NextGumbel();

  /// Fisher-Yates shuffle of `values`.
  void Shuffle(std::vector<std::int32_t>& values);

 private:
  std::uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  float cached_gaussian_ = 0.0f;
};

/// Fills `m` with N(0, stddev) entries.
void FillGaussian(Matrix& m, float stddev, Rng& rng);

/// Fills `m` with Glorot/Xavier-uniform entries for a (fan_in, fan_out)
/// weight matrix: U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out))).
void FillGlorot(Matrix& m, Rng& rng);

/// Returns `count` distinct indices sampled without replacement from
/// [0, population). Requires count <= population.
std::vector<std::int32_t> SampleWithoutReplacement(std::int64_t population,
                                                   std::int64_t count,
                                                   Rng& rng);

}  // namespace nai::tensor

#endif  // NAI_TENSOR_RANDOM_H_
