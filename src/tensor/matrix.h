#ifndef NAI_TENSOR_MATRIX_H_
#define NAI_TENSOR_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace nai::tensor {

/// Dense row-major float matrix. This is the workhorse value type of the
/// library: node-feature matrices, classifier weights, logits and soft labels
/// are all `Matrix`. Rows index nodes (or output units), columns index
/// feature dimensions.
///
/// The class is a passive data holder plus cheap accessors; all heavy
/// numerical kernels live in ops.h so they can be tested and benchmarked
/// independently.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a zero-initialized matrix of shape `rows x cols`.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Creates a matrix from a nested initializer list; all inner lists must
  /// have equal length. Intended for tests and small fixtures.
  Matrix(std::initializer_list<std::initializer_list<float>> rows);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Pointer to the start of row `r`.
  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  float& operator()(std::size_t r, std::size_t c) { return at(r, c); }
  float operator()(std::size_t r, std::size_t c) const { return at(r, c); }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Resizes to `rows x cols`, zero-initializing all elements.
  void Resize(std::size_t rows, std::size_t cols);

  /// Returns a copy of row `r` as a 1 x cols matrix.
  Matrix RowCopy(std::size_t r) const;

  /// Returns a new matrix containing the given rows, in order.
  Matrix GatherRows(const std::vector<std::int32_t>& indices) const;

  /// Writes `src` (1 x cols or cols-length row) into row `r`.
  void SetRow(std::size_t r, const float* src);

  /// Squared L2 norm of row `r`.
  float RowSquaredNorm(std::size_t r) const;

  /// Total number of float elements that differ from `other` by more than
  /// `tol` (absolute). Shape mismatch counts as `size()` differences.
  std::size_t CountDifferences(const Matrix& other, float tol) const;

  /// Human-readable shape, e.g. "[128 x 64]". Used in error messages.
  std::string ShapeString() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace nai::tensor

#endif  // NAI_TENSOR_MATRIX_H_
