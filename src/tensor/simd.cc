#include "src/tensor/simd.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

// Compile-time availability of each vector path. AVX2 kernels are built as
// per-function `target("avx2")` specializations, so the translation unit
// itself stays at the baseline ISA and the binary still runs on CPUs
// without AVX2 (runtime detection picks the path). This file is compiled
// with -ffp-contract=off (see CMakeLists.txt): the bit-exactness contract
// requires separate multiply and add roundings, and on targets where fused
// multiply-add exists at the baseline ISA (AArch64) the compiler would
// otherwise be free to contract them.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define NAI_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#else
#define NAI_SIMD_HAVE_AVX2 0
#endif

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define NAI_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#else
#define NAI_SIMD_HAVE_NEON 0
#endif

namespace nai::tensor::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These are the exact loops the tensor and graph
// entry points ran before dispatch existed; NAI_SIMD=scalar therefore
// reproduces historical outputs byte for byte.
// ---------------------------------------------------------------------------

void AxpyScalar(float w, const float* src, float* dst, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) dst[j] += w * src[j];
}

void MatMulRowsScalar(const float* a, const float* b, float* out,
                      std::size_t r0, std::size_t r1, std::size_t k,
                      std::size_t n) {
  for (std::size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void MatMulTbRowsScalar(const float* a, const float* b, float* out,
                        std::size_t r0, std::size_t r1, std::size_t k,
                        std::size_t n) {
  for (std::size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] = acc;
    }
  }
}

void GemmS8Scalar(const std::int8_t* x, const std::int8_t* w,
                  std::int32_t* acc, std::size_t k, std::size_t n) {
  for (std::size_t p = 0; p < k; ++p) {
    const std::int32_t xv = x[p];
    if (xv == 0) continue;
    const std::int8_t* wr = w + p * n;
    for (std::size_t j = 0; j < n; ++j) {
      acc[j] += xv * static_cast<std::int32_t>(wr[j]);
    }
  }
}

/// Column tail of the blocked MatMul paths: identical to the scalar kernel
/// restricted to columns [j0, n). Kept at the baseline ISA so the vector
/// kernels' remainder columns round exactly like the reference.
inline void MatMulRowTail(const float* arow, const float* b, float* orow,
                          std::size_t k, std::size_t n, std::size_t j0) {
  for (std::size_t p = 0; p < k; ++p) {
    const float av = arow[p];
    if (av == 0.0f) continue;
    const float* brow = b + p * n;
    for (std::size_t j = j0; j < n; ++j) orow[j] += av * brow[j];
  }
}

constexpr KernelSet kScalarKernels = {AxpyScalar, MatMulRowsScalar,
                                      MatMulTbRowsScalar, GemmS8Scalar};

// ---------------------------------------------------------------------------
// AVX2 kernels. Vectorization is over the output-column dimension only, so
// each output element still accumulates its products over p in ascending
// order; multiplies and adds are separate intrinsics (target("avx2") does
// not enable FMA, so the compiler cannot fuse them either). Both together
// make every float result bit-identical to the scalar reference.
// ---------------------------------------------------------------------------

#if NAI_SIMD_HAVE_AVX2

__attribute__((target("avx2"))) void AxpyAvx2(float w, const float* src,
                                              float* dst, std::size_t n) {
  const __m256 vw = _mm256_set1_ps(w);
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    __m256 d0 = _mm256_loadu_ps(dst + j);
    __m256 d1 = _mm256_loadu_ps(dst + j + 8);
    d0 = _mm256_add_ps(d0, _mm256_mul_ps(vw, _mm256_loadu_ps(src + j)));
    d1 = _mm256_add_ps(d1, _mm256_mul_ps(vw, _mm256_loadu_ps(src + j + 8)));
    _mm256_storeu_ps(dst + j, d0);
    _mm256_storeu_ps(dst + j + 8, d1);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 d = _mm256_loadu_ps(dst + j);
    d = _mm256_add_ps(d, _mm256_mul_ps(vw, _mm256_loadu_ps(src + j)));
    _mm256_storeu_ps(dst + j, d);
  }
  for (; j < n; ++j) dst[j] += w * src[j];
}

/// Register-blocked MatMul: 4 output rows x 8 columns held in registers
/// across the whole p sweep (each b row-slice load is reused by all four
/// rows), with the scalar zero-skip applied per (row, p) exactly as the
/// reference does.
__attribute__((target("avx2"))) void MatMulRowsAvx2(const float* a,
                                                    const float* b, float* out,
                                                    std::size_t r0,
                                                    std::size_t r1,
                                                    std::size_t k,
                                                    std::size_t n) {
  std::size_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* o0 = out + i * n;
    float* o1 = o0 + n;
    float* o2 = o1 + n;
    float* o3 = o2 + n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256 c0 = _mm256_loadu_ps(o0 + j);
      __m256 c1 = _mm256_loadu_ps(o1 + j);
      __m256 c2 = _mm256_loadu_ps(o2 + j);
      __m256 c3 = _mm256_loadu_ps(o3 + j);
      for (std::size_t p = 0; p < k; ++p) {
        const __m256 bv = _mm256_loadu_ps(b + p * n + j);
        const float v0 = a0[p];
        const float v1 = a1[p];
        const float v2 = a2[p];
        const float v3 = a3[p];
        if (v0 != 0.0f) {
          c0 = _mm256_add_ps(c0, _mm256_mul_ps(_mm256_set1_ps(v0), bv));
        }
        if (v1 != 0.0f) {
          c1 = _mm256_add_ps(c1, _mm256_mul_ps(_mm256_set1_ps(v1), bv));
        }
        if (v2 != 0.0f) {
          c2 = _mm256_add_ps(c2, _mm256_mul_ps(_mm256_set1_ps(v2), bv));
        }
        if (v3 != 0.0f) {
          c3 = _mm256_add_ps(c3, _mm256_mul_ps(_mm256_set1_ps(v3), bv));
        }
      }
      _mm256_storeu_ps(o0 + j, c0);
      _mm256_storeu_ps(o1 + j, c1);
      _mm256_storeu_ps(o2 + j, c2);
      _mm256_storeu_ps(o3 + j, c3);
    }
    if (j < n) {
      MatMulRowTail(a0, b, o0, k, n, j);
      MatMulRowTail(a1, b, o1, k, n, j);
      MatMulRowTail(a2, b, o2, k, n, j);
      MatMulRowTail(a3, b, o3, k, n, j);
    }
  }
  for (; i < r1; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256 c = _mm256_loadu_ps(orow + j);
      for (std::size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        c = _mm256_add_ps(
            c, _mm256_mul_ps(_mm256_set1_ps(av), _mm256_loadu_ps(b + p * n + j)));
      }
      _mm256_storeu_ps(orow + j, c);
    }
    if (j < n) MatMulRowTail(arow, b, orow, k, n, j);
  }
}

/// Cache-tiled A * B^T: each 8-column tile of b is packed once into a
/// k x 8 interleaved scratch (amortized over all rows of the range), then
/// every output element accumulates broadcast(a[p]) * pack[p] over p
/// ascending — the same mul-then-add sequence as the scalar dot product.
__attribute__((target("avx2"))) void MatMulTbRowsAvx2(
    const float* a, const float* b, float* out, std::size_t r0, std::size_t r1,
    std::size_t k, std::size_t n) {
  if (r0 >= r1) return;
  const std::size_t n8 = n - n % 8;
  std::vector<float> pack(k * 8);
  for (std::size_t j0 = 0; j0 < n8; j0 += 8) {
    for (std::size_t jj = 0; jj < 8; ++jj) {
      const float* brow = b + (j0 + jj) * k;
      for (std::size_t p = 0; p < k; ++p) pack[p * 8 + jj] = brow[p];
    }
    for (std::size_t i = r0; i < r1; ++i) {
      const float* arow = a + i * k;
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k; ++p) {
        acc = _mm256_add_ps(acc,
                            _mm256_mul_ps(_mm256_set1_ps(arow[p]),
                                          _mm256_loadu_ps(pack.data() + p * 8)));
      }
      _mm256_storeu_ps(out + i * n + j0, acc);
    }
  }
  for (std::size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    for (std::size_t j = n8; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] = acc;
    }
  }
}

/// int8 x int8 -> int32 row update, 8 accumulators per register. Integer
/// arithmetic is associative, so this is exact (not just bit-exact-by-
/// construction like the float paths).
__attribute__((target("avx2"))) void GemmS8Avx2(const std::int8_t* x,
                                                const std::int8_t* w,
                                                std::int32_t* acc,
                                                std::size_t k, std::size_t n) {
  const std::size_t n8 = n - n % 8;
  for (std::size_t j = 0; j < n8; j += 8) {
    __m256i c = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j));
    for (std::size_t p = 0; p < k; ++p) {
      const std::int32_t xv = x[p];
      if (xv == 0) continue;
      const __m128i w8 =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(w + p * n + j));
      const __m256i wv = _mm256_cvtepi8_epi32(w8);
      c = _mm256_add_epi32(c, _mm256_mullo_epi32(_mm256_set1_epi32(xv), wv));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + j), c);
  }
  if (n8 < n) {
    for (std::size_t p = 0; p < k; ++p) {
      const std::int32_t xv = x[p];
      if (xv == 0) continue;
      const std::int8_t* wr = w + p * n;
      for (std::size_t j = n8; j < n; ++j) {
        acc[j] += xv * static_cast<std::int32_t>(wr[j]);
      }
    }
  }
}

const KernelSet kAvx2Kernels = {AxpyAvx2, MatMulRowsAvx2, MatMulTbRowsAvx2,
                                GemmS8Avx2};

#endif  // NAI_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// NEON kernels (4-wide). Same construction as AVX2: column-dimension
// vectorization, explicit vmulq + vaddq (never vfma), scalar column tails.
// ---------------------------------------------------------------------------

#if NAI_SIMD_HAVE_NEON

void AxpyNeon(float w, const float* src, float* dst, std::size_t n) {
  const float32x4_t vw = vdupq_n_f32(w);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    float32x4_t d0 = vld1q_f32(dst + j);
    float32x4_t d1 = vld1q_f32(dst + j + 4);
    d0 = vaddq_f32(d0, vmulq_f32(vw, vld1q_f32(src + j)));
    d1 = vaddq_f32(d1, vmulq_f32(vw, vld1q_f32(src + j + 4)));
    vst1q_f32(dst + j, d0);
    vst1q_f32(dst + j + 4, d1);
  }
  for (; j + 4 <= n; j += 4) {
    float32x4_t d = vld1q_f32(dst + j);
    d = vaddq_f32(d, vmulq_f32(vw, vld1q_f32(src + j)));
    vst1q_f32(dst + j, d);
  }
  for (; j < n; ++j) dst[j] += w * src[j];
}

void MatMulRowsNeon(const float* a, const float* b, float* out, std::size_t r0,
                    std::size_t r1, std::size_t k, std::size_t n) {
  for (std::size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      float32x4_t c = vld1q_f32(orow + j);
      for (std::size_t p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.0f) continue;
        c = vaddq_f32(c, vmulq_f32(vdupq_n_f32(av), vld1q_f32(b + p * n + j)));
      }
      vst1q_f32(orow + j, c);
    }
    if (j < n) MatMulRowTail(arow, b, orow, k, n, j);
  }
}

void MatMulTbRowsNeon(const float* a, const float* b, float* out,
                      std::size_t r0, std::size_t r1, std::size_t k,
                      std::size_t n) {
  if (r0 >= r1) return;
  const std::size_t n4 = n - n % 4;
  std::vector<float> pack(k * 4);
  for (std::size_t j0 = 0; j0 < n4; j0 += 4) {
    for (std::size_t jj = 0; jj < 4; ++jj) {
      const float* brow = b + (j0 + jj) * k;
      for (std::size_t p = 0; p < k; ++p) pack[p * 4 + jj] = brow[p];
    }
    for (std::size_t i = r0; i < r1; ++i) {
      const float* arow = a + i * k;
      float32x4_t acc = vdupq_n_f32(0.0f);
      for (std::size_t p = 0; p < k; ++p) {
        acc = vaddq_f32(
            acc, vmulq_f32(vdupq_n_f32(arow[p]), vld1q_f32(pack.data() + p * 4)));
      }
      vst1q_f32(out + i * n + j0, acc);
    }
  }
  for (std::size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* orow = out + i * n;
    for (std::size_t j = n4; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] = acc;
    }
  }
}

void GemmS8Neon(const std::int8_t* x, const std::int8_t* w, std::int32_t* acc,
                std::size_t k, std::size_t n) {
  const std::size_t n8 = n - n % 8;
  for (std::size_t j = 0; j < n8; j += 8) {
    int32x4_t c0 = vld1q_s32(acc + j);
    int32x4_t c1 = vld1q_s32(acc + j + 4);
    for (std::size_t p = 0; p < k; ++p) {
      const std::int8_t xv = x[p];
      if (xv == 0) continue;
      const int8x8_t w8 = vld1_s8(w + p * n + j);
      const int16x8_t prod = vmull_s8(vdup_n_s8(xv), w8);
      c0 = vaddw_s16(c0, vget_low_s16(prod));
      c1 = vaddw_s16(c1, vget_high_s16(prod));
    }
    vst1q_s32(acc + j, c0);
    vst1q_s32(acc + j + 4, c1);
  }
  if (n8 < n) {
    for (std::size_t p = 0; p < k; ++p) {
      const std::int32_t xv = x[p];
      if (xv == 0) continue;
      const std::int8_t* wr = w + p * n;
      for (std::size_t j = n8; j < n; ++j) {
        acc[j] += xv * static_cast<std::int32_t>(wr[j]);
      }
    }
  }
}

const KernelSet kNeonKernels = {AxpyNeon, MatMulRowsNeon, MatMulTbRowsNeon,
                                GemmS8Neon};

#endif  // NAI_SIMD_HAVE_NEON

/// The process-wide active level: -1 until first resolution. A benign
/// double-resolution race is fine (both writers store the same value);
/// SetActiveLevelForTesting overwrites it from the test's thread before
/// the kernels under test run.
std::atomic<int> g_active{-1};

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "unknown";
}

std::optional<Level> ParseLevel(std::string_view token) {
  if (token == "scalar") return Level::kScalar;
  if (token == "avx2") return Level::kAvx2;
  if (token == "neon") return Level::kNeon;
  return std::nullopt;
}

bool LevelCompiled(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
      return NAI_SIMD_HAVE_AVX2 != 0;
    case Level::kNeon:
      return NAI_SIMD_HAVE_NEON != 0;
  }
  return false;
}

bool LevelSupported(Level level) {
  if (!LevelCompiled(level)) return false;
#if NAI_SIMD_HAVE_AVX2
  if (level == Level::kAvx2) return __builtin_cpu_supports("avx2") != 0;
#endif
  // Scalar always runs; a binary compiled with NEON enabled implies the
  // target executes it (NEON is baseline on AArch64).
  return true;
}

Level BestSupportedLevel() {
  if (LevelSupported(Level::kAvx2)) return Level::kAvx2;
  if (LevelSupported(Level::kNeon)) return Level::kNeon;
  return Level::kScalar;
}

std::vector<Level> SupportedLevels() {
  std::vector<Level> out;
  for (const Level level : {Level::kScalar, Level::kAvx2, Level::kNeon}) {
    if (LevelSupported(level)) out.push_back(level);
  }
  return out;
}

Level ResolveLevel(const char* value) {
  if (value != nullptr) {
    const std::optional<Level> parsed = ParseLevel(value);
    if (parsed.has_value() && LevelSupported(*parsed)) return *parsed;
  }
  return BestSupportedLevel();
}

Level ActiveLevel() {
  int v = g_active.load(std::memory_order_acquire);
  if (v < 0) {
    v = static_cast<int>(ResolveLevel(std::getenv("NAI_SIMD")));
    g_active.store(v, std::memory_order_release);
  }
  return static_cast<Level>(v);
}

void SetActiveLevelForTesting(Level level) {
  if (!LevelSupported(level)) {
    throw std::invalid_argument(
        std::string("simd::SetActiveLevelForTesting: level not supported on "
                    "this host: ") +
        LevelName(level));
  }
  g_active.store(static_cast<int>(level), std::memory_order_release);
}

const KernelSet& Kernels(Level level) {
  switch (level) {
    case Level::kScalar:
      return kScalarKernels;
    case Level::kAvx2:
#if NAI_SIMD_HAVE_AVX2
      return kAvx2Kernels;
#else
      break;
#endif
    case Level::kNeon:
#if NAI_SIMD_HAVE_NEON
      return kNeonKernels;
#else
      break;
#endif
  }
  throw std::invalid_argument(
      std::string("simd::Kernels: level not compiled into this binary: ") +
      LevelName(level));
}

const KernelSet& ActiveKernels() { return Kernels(ActiveLevel()); }

}  // namespace nai::tensor::simd
