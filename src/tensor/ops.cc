#include "src/tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/tensor/simd.h"

namespace nai::tensor {

Matrix MatMul(const Matrix& a, const Matrix& b,
              const runtime::ExecContext& ctx) {
  assert(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix out(m, n);
  // ikj accumulation dispatched per row range (simd::KernelSet fixes the
  // per-element summation order, so every level is bit-exact). Grain: one
  // output row costs k*n MACs, so wide products fan out even with few rows.
  const simd::KernelSet& ks = simd::ActiveKernels();
  ctx.ParallelFor(0, m, k * n, [&](std::size_t r0, std::size_t r1) {
    ks.matmul_rows(a.data(), b.data(), out.data(), r0, r1, k, n);
  });
  return out;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b,
                        const runtime::ExecContext& ctx) {
  assert(a.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix out(m, n);
  const simd::KernelSet& ks = simd::ActiveKernels();
  ctx.ParallelFor(0, m, k * n, [&](std::size_t r0, std::size_t r1) {
    ks.matmul_tb_rows(a.data(), b.data(), out.data(), r0, r1, k, n);
  });
  return out;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  Matrix out(m, n);
  // Serial over k to keep writes race-free; parallelize over output rows by
  // accumulating into thread-local strips would cost memory; the matrices
  // here (gradient accumulations, f x c) are small, so a single pass is fine.
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out.row(i);
      for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

void AddInPlace(Matrix& dst, const Matrix& src) {
  assert(dst.SameShape(src));
  float* d = dst.data();
  const float* s = src.data();
  for (std::size_t i = 0; i < dst.size(); ++i) d[i] += s[i];
}

void Axpy(Matrix& dst, float alpha, const Matrix& src) {
  assert(dst.SameShape(src));
  float* d = dst.data();
  const float* s = src.data();
  for (std::size_t i = 0; i < dst.size(); ++i) d[i] += alpha * s[i];
}

void ScaleInPlace(Matrix& dst, float alpha) {
  float* d = dst.data();
  for (std::size_t i = 0; i < dst.size(); ++i) d[i] *= alpha;
}

Matrix Subtract(const Matrix& a, const Matrix& b) {
  assert(a.SameShape(b));
  Matrix out(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::size_t i = 0; i < a.size(); ++i) po[i] = pa[i] - pb[i];
  return out;
}

void AddRowBias(Matrix& m, const Matrix& bias) {
  assert(bias.rows() == 1 && bias.cols() == m.cols());
  const float* b = bias.data();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* row = m.row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) row[j] += b[j];
  }
}

void ReluInPlace(Matrix& m) {
  float* d = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) d[i] = std::max(0.0f, d[i]);
}

void ReluBackwardInPlace(const Matrix& z, Matrix& grad) {
  assert(z.SameShape(grad));
  const float* zp = z.data();
  float* gp = grad.data();
  for (std::size_t i = 0; i < z.size(); ++i) {
    if (zp[i] <= 0.0f) gp[i] = 0.0f;
  }
}

void SigmoidInPlace(Matrix& m) {
  float* d = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    d[i] = 1.0f / (1.0f + std::exp(-d[i]));
  }
}

Matrix SoftmaxRows(const Matrix& m, float temperature,
                   const runtime::ExecContext& ctx) {
  assert(temperature > 0.0f);
  Matrix out(m.rows(), m.cols());
  // exp() dominates; weight the per-row cost well above `cols` plain flops.
  ctx.ParallelFor(0, m.rows(), m.cols() * 8, [&](std::size_t r0,
                                                 std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const float* in = m.row(i);
      float* o = out.row(i);
      float maxv = -std::numeric_limits<float>::infinity();
      for (std::size_t j = 0; j < m.cols(); ++j) {
        maxv = std::max(maxv, in[j] / temperature);
      }
      float sum = 0.0f;
      for (std::size_t j = 0; j < m.cols(); ++j) {
        o[j] = std::exp(in[j] / temperature - maxv);
        sum += o[j];
      }
      const float inv = 1.0f / sum;
      for (std::size_t j = 0; j < m.cols(); ++j) o[j] *= inv;
    }
  });
  return out;
}

Matrix LogSoftmaxRows(const Matrix& m, const runtime::ExecContext& ctx) {
  Matrix out(m.rows(), m.cols());
  ctx.ParallelFor(0, m.rows(), m.cols() * 8, [&](std::size_t r0,
                                                 std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const float* in = m.row(i);
      float* o = out.row(i);
      float maxv = -std::numeric_limits<float>::infinity();
      for (std::size_t j = 0; j < m.cols(); ++j) maxv = std::max(maxv, in[j]);
      float sum = 0.0f;
      for (std::size_t j = 0; j < m.cols(); ++j) sum += std::exp(in[j] - maxv);
      const float lse = maxv + std::log(sum);
      for (std::size_t j = 0; j < m.cols(); ++j) o[j] = in[j] - lse;
    }
  });
  return out;
}

std::vector<std::int32_t> ArgmaxRows(const Matrix& m) {
  std::vector<std::int32_t> out(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.row(i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < m.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<std::int32_t>(best);
  }
  return out;
}

Matrix ConcatCols(const std::vector<const Matrix*>& parts) {
  assert(!parts.empty());
  const std::size_t rows = parts[0]->rows();
  std::size_t total_cols = 0;
  for (const Matrix* p : parts) {
    assert(p->rows() == rows);
    total_cols += p->cols();
  }
  Matrix out(rows, total_cols);
  for (std::size_t i = 0; i < rows; ++i) {
    float* orow = out.row(i);
    std::size_t offset = 0;
    for (const Matrix* p : parts) {
      std::copy(p->row(i), p->row(i) + p->cols(), orow + offset);
      offset += p->cols();
    }
  }
  return out;
}

Matrix Mean(const std::vector<const Matrix*>& parts) {
  assert(!parts.empty());
  Matrix out(parts[0]->rows(), parts[0]->cols());
  for (const Matrix* p : parts) AddInPlace(out, *p);
  ScaleInPlace(out, 1.0f / static_cast<float>(parts.size()));
  return out;
}

std::vector<float> RowL2Distance(const Matrix& a, const Matrix& b,
                                 const runtime::ExecContext& ctx) {
  assert(a.SameShape(b));
  std::vector<float> out(a.rows());
  ctx.ParallelFor(0, a.rows(), a.cols() * 3, [&](std::size_t r0,
                                                 std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      const float* pa = a.row(i);
      const float* pb = b.row(i);
      float acc = 0.0f;
      for (std::size_t j = 0; j < a.cols(); ++j) {
        const float d = pa[j] - pb[j];
        acc += d * d;
      }
      out[i] = std::sqrt(acc);
    }
  });
  return out;
}

std::vector<float> RowL2Norms(const Matrix& m) {
  std::vector<float> out(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    out[i] = std::sqrt(m.RowSquaredNorm(i));
  }
  return out;
}

void NormalizeRowsInPlace(Matrix& m, float eps) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float norm = std::sqrt(m.RowSquaredNorm(i));
    if (norm < eps) continue;
    float* row = m.row(i);
    const float inv = 1.0f / norm;
    for (std::size_t j = 0; j < m.cols(); ++j) row[j] *= inv;
  }
}

Matrix ColumnSums(const Matrix& m) {
  Matrix out(1, m.cols());
  float* o = out.data();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) o[j] += row[j];
  }
  return out;
}

float FrobeniusNorm(const Matrix& m) {
  double acc = 0.0;
  const float* d = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    acc += static_cast<double>(d[i]) * d[i];
  }
  return static_cast<float>(std::sqrt(acc));
}

void DropoutInPlace(Matrix& m, float rate, Matrix& mask,
                    const std::function<float()>& uniform01) {
  mask.Resize(m.rows(), m.cols());
  if (rate <= 0.0f) {
    mask.Fill(1.0f);
    return;
  }
  assert(rate < 1.0f);
  const float keep_scale = 1.0f / (1.0f - rate);
  float* d = m.data();
  float* mk = mask.data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (uniform01() < rate) {
      mk[i] = 0.0f;
      d[i] = 0.0f;
    } else {
      mk[i] = keep_scale;
      d[i] *= keep_scale;
    }
  }
}

}  // namespace nai::tensor
