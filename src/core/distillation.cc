#include "src/core/distillation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/nn/adam.h"
#include "src/nn/loss.h"
#include "src/tensor/ops.h"

namespace nai::core {

namespace {

/// Cross-entropy restricted to the `positions` rows of `logits` (the V_l
/// subset); gradient rows outside `positions` are zero. Loss is averaged
/// over |positions| (Eq. 16).
nn::LossResult MaskedSoftmaxCrossEntropy(
    const tensor::Matrix& logits, const std::vector<std::int32_t>& labels,
    const std::vector<std::int32_t>& positions) {
  assert(!positions.empty());
  nn::LossResult out;
  out.grad_logits.Resize(logits.rows(), logits.cols());
  const tensor::Matrix probs = tensor::SoftmaxRows(logits);
  const tensor::Matrix log_probs = tensor::LogSoftmaxRows(logits);
  const float inv_n = 1.0f / static_cast<float>(positions.size());
  double loss = 0.0;
  for (const std::int32_t i : positions) {
    const std::int32_t y = labels[i];
    loss -= log_probs.at(i, y);
    float* g = out.grad_logits.row(i);
    const float* p = probs.row(i);
    for (std::size_t j = 0; j < logits.cols(); ++j) g[j] = p[j] * inv_n;
    g[y] -= inv_n;
  }
  out.loss = static_cast<float>(loss * inv_n);
  return out;
}

}  // namespace

InceptionDistillation::InceptionDistillation(ClassifierStack& classifiers,
                                             const DistillConfig& config)
    : classifiers_(classifiers), config_(config) {}

float InceptionDistillation::TrainHeadPlain(
    int l, const GatheredStack& train_feats,
    const std::vector<std::int32_t>& labels,
    const std::vector<std::int32_t>& labeled) {
  tensor::Rng rng(config_.seed + static_cast<std::uint64_t>(l) * 1315423911u);
  nn::Adam adam({.learning_rate = config_.learning_rate,
                 .weight_decay = config_.weight_decay});
  adam.Register(classifiers_.HeadParameters(l));
  float final_loss = 0.0f;
  for (int epoch = 0; epoch < config_.base_epochs; ++epoch) {
    adam.ZeroGrad();
    const tensor::Matrix logits =
        classifiers_.LogitsTrain(l, train_feats, rng);
    const nn::LossResult loss =
        MaskedSoftmaxCrossEntropy(logits, labels, labeled);
    classifiers_.head(l).Backward(loss.grad_logits);
    adam.Step();
    final_loss = loss.loss;
  }
  return final_loss;
}

float InceptionDistillation::TrainBase(
    const GatheredStack& train_feats, const std::vector<std::int32_t>& labels,
    const std::vector<std::int32_t>& labeled) {
  return TrainHeadPlain(classifiers_.depth(), train_feats, labels, labeled);
}

void InceptionDistillation::SingleScale(
    const GatheredStack& train_feats, const std::vector<std::int32_t>& labels,
    const std::vector<std::int32_t>& labeled) {
  const int k = classifiers_.depth();
  const float T = config_.temperature_single;
  const float lambda = config_.lambda_single;

  // Teacher soft targets p̃^(k) = softmax(z^(k)/T), fixed during this stage
  // (Eq. 14; the teacher was trained in step 2).
  const tensor::Matrix teacher_logits =
      classifiers_.Logits(k, train_feats);
  const tensor::Matrix teacher_soft = tensor::SoftmaxRows(teacher_logits, T);

  for (int l = 1; l <= k - 1; ++l) {
    tensor::Rng rng(config_.seed + 7777u * static_cast<std::uint64_t>(l));
    nn::Adam adam({.learning_rate = config_.learning_rate,
                   .weight_decay = config_.weight_decay});
    adam.Register(classifiers_.HeadParameters(l));
    for (int epoch = 0; epoch < config_.single_epochs; ++epoch) {
      adam.ZeroGrad();
      const tensor::Matrix logits =
          classifiers_.LogitsTrain(l, train_feats, rng);
      // L_single = (1-λ) L_c + λ T² L_d  (Eq. 17)
      const nn::LossResult ce =
          MaskedSoftmaxCrossEntropy(logits, labels, labeled);
      const nn::LossResult kd =
          nn::SoftTargetCrossEntropy(logits, teacher_soft, T);
      tensor::Matrix grad = ce.grad_logits;
      tensor::ScaleInPlace(grad, 1.0f - lambda);
      tensor::Axpy(grad, lambda * T * T, kd.grad_logits);
      classifiers_.head(l).Backward(grad);
      adam.Step();
    }
  }
}

void InceptionDistillation::MultiScale(
    const GatheredStack& train_feats, const std::vector<std::int32_t>& labels,
    const std::vector<std::int32_t>& labeled) {
  const int k = classifiers_.depth();
  const int r = std::min(config_.ensemble_size, k);
  const float T = config_.temperature_multi;
  const float lambda = config_.lambda_multi;
  const std::size_t c = classifiers_.config().num_classes;
  tensor::Rng rng(config_.seed * 31 + 5);

  // Ensemble teacher members: the r deepest classifiers (Eq. 18).
  std::vector<int> members;
  for (int l = k - r + 1; l <= k; ++l) members.push_back(l);

  nn::VectorAttention attention(members.size(), c, rng);

  // One optimizer over everything that trains jointly: all student heads,
  // the ensemble members (which overlap the students for l < k), and the
  // attention reference vectors (the "trainable regularization" of Eq. 19).
  nn::Adam adam({.learning_rate = config_.learning_rate,
                 .weight_decay = config_.weight_decay});
  {
    std::vector<nn::Parameter*> params;
    for (int l = 1; l <= k; ++l) {
      auto head_params = classifiers_.HeadParameters(l);
      params.insert(params.end(), head_params.begin(), head_params.end());
    }
    attention.CollectParameters(params);
    adam.Register(params);
  }

  const std::size_t n = train_feats.num_rows();
  for (int epoch = 0; epoch < config_.multi_epochs; ++epoch) {
    adam.ZeroGrad();

    // ---- Teacher path: forward members, build z̄, backprop L_t. ----------
    // Member forwards use train mode so L_t's gradient reaches them; this
    // happens *before* the student forwards overwrite the heads' caches.
    std::vector<tensor::Matrix> member_probs(members.size());
    models::FeatureViews prob_views;
    for (std::size_t mi = 0; mi < members.size(); ++mi) {
      const tensor::Matrix logits =
          classifiers_.LogitsTrain(members[mi], train_feats, rng);
      member_probs[mi] = tensor::SoftmaxRows(logits);
    }
    for (const auto& p : member_probs) prob_views.push_back(&p);

    const tensor::Matrix mixed = attention.Forward(prob_views, /*train=*/true);
    const tensor::Matrix ensemble = tensor::SoftmaxRows(mixed);  // z̄ (Eq. 18)

    // L_t = CE(z̄, y) over V_l (Eq. 20). Combined softmax+CE gradient,
    // masked to labeled rows.
    tensor::Matrix grad_mixed(n, c);
    {
      const float inv_l = 1.0f / static_cast<float>(labeled.size());
      for (const std::int32_t i : labeled) {
        const float* z = ensemble.row(i);
        float* g = grad_mixed.row(i);
        for (std::size_t j = 0; j < c; ++j) g[j] = z[j] * inv_l;
        g[labels[i]] -= inv_l;
      }
    }
    std::vector<tensor::Matrix> grad_views;
    attention.Backward(grad_mixed, &grad_views);
    for (std::size_t mi = 0; mi < members.size(); ++mi) {
      // Through ỹ = softmax(z): dz = ỹ ⊙ (dỹ − (dỹ·ỹ)).
      tensor::Matrix grad_logits(n, c);
      for (std::size_t i = 0; i < n; ++i) {
        const float* y = member_probs[mi].row(i);
        const float* dy = grad_views[mi].row(i);
        float mix = 0.0f;
        for (std::size_t j = 0; j < c; ++j) mix += dy[j] * y[j];
        float* g = grad_logits.row(i);
        for (std::size_t j = 0; j < c; ++j) g[j] = y[j] * (dy[j] - mix);
      }
      classifiers_.head(members[mi]).Backward(grad_logits);
    }

    // Teacher soft targets for the students: p̄ = softmax(z̄ / T) (Eq. 21),
    // detached — student losses do not push the teacher around directly.
    const tensor::Matrix teacher_soft = tensor::SoftmaxRows(ensemble, T);

    // ---- Student path: L_multi = L_t + (1-λ) L_c + λ T² L_e (Eq. 19). ----
    for (int l = 1; l <= k - 1; ++l) {
      const tensor::Matrix logits =
          classifiers_.LogitsTrain(l, train_feats, rng);
      const nn::LossResult ce =
          MaskedSoftmaxCrossEntropy(logits, labels, labeled);
      const nn::LossResult kd =
          nn::SoftTargetCrossEntropy(logits, teacher_soft, T);
      tensor::Matrix grad = ce.grad_logits;
      tensor::ScaleInPlace(grad, 1.0f - lambda);
      tensor::Axpy(grad, lambda * T * T, kd.grad_logits);
      classifiers_.head(l).Backward(grad);
    }
    adam.Step();
  }
}

void InceptionDistillation::TrainAll(
    const GatheredStack& train_feats, const std::vector<std::int32_t>& labels,
    const std::vector<std::int32_t>& labeled) {
  TrainBase(train_feats, labels, labeled);
  if (config_.enable_single) {
    SingleScale(train_feats, labels, labeled);
  } else {
    // Without Single-Scale Distillation the shallow classifiers still need
    // to be trained; plain CE is the "w/o SS" / "w/o ID" starting point.
    for (int l = 1; l <= classifiers_.depth() - 1; ++l) {
      TrainHeadPlain(l, train_feats, labels, labeled);
    }
  }
  if (config_.enable_multi) {
    MultiScale(train_feats, labels, labeled);
  }
}

}  // namespace nai::core
