#ifndef NAI_CORE_SHARDED_INFERENCE_H_
#define NAI_CORE_SHARDED_INFERENCE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/inference.h"
#include "src/graph/delta.h"
#include "src/graph/shard.h"
#include "src/runtime/thread_pool.h"
#include "src/storage/store.h"

namespace nai::core {

/// Serves Algorithm-1 inference from a partitioned graph: one NaiEngine per
/// shard, each with a dedicated thread pool (an equal slice of the total),
/// queries routed to their owning shard and all shards running concurrently.
///
/// Each shard engine sees only its shard's nodes — an induced subgraph with
/// a halo of every node within ShardedGraph::halo_hops hops of an owned
/// node — so its supporting-set BFS never leaves the shard. Three
/// constructions make the merged result match the unsharded engine exactly:
///   * shard adjacencies are submatrices of the *full graph's* normalized
///     adjacency, so edge weights use global degrees;
///   * shard node lists are sorted by global id, so each row's neighbors
///     accumulate in the same order as in the full graph;
///   * shard stationary views reuse the full graph's pooled vector and the
///     shard-local degrees of owned nodes (equal to global degrees when
///     halo_hops >= 1).
///
/// Shard feature access goes through storage::SlicedFeatureStore over the
/// state's base feature store, so shards never gather private feature
/// copies — over an mmap-backed snapshot the whole sharded engine's feature
/// working set is pages of the one shared file. The degenerate
/// graph::IdentityShards partition short-circuits further: its single shard
/// engine is built straight on the snapshot (no induced submatrix at all),
/// which is the out-of-core serving configuration.
///
/// Determinism contract (bit-exact, any shard count, any thread count):
/// predictions, exit depths, the exit histogram and the nap/stationary/
/// classification MAC counters all equal the unsharded engine's on the same
/// query list — they are per-node quantities. propagation_macs counts the
/// *shared* supporting-set work of each batch and is therefore a function
/// of the batch decomposition: each shard batches its routed sub-list with
/// config.batch_size, so it equals the unsharded engine run on those same
/// batches — exactly equal to the unsharded run of the original list
/// whenever batch boundaries align with shard boundaries (one shard,
/// batch_size 1, or a partition-aligned query order).
///
/// Per-shard stats are merged in shard order via InferenceStats::Accumulate;
/// num_nodes and wall_time_ms are set exactly once by this class (the
/// per-shard values describe sub-runs and are never summed).
///
/// Evolving graphs: everything derived from one graph version — the
/// sharding, halo depths, per-shard feature/stationary views and the shard
/// engines themselves — lives in one immutable ShardState behind a
/// shared_ptr. A snapshot-backed engine (snapshot constructor) accepts
/// SwapSnapshot(new_snapshot): the replacement state is built off the
/// serving path and published atomically, so readers that pinned the old
/// state finish their batch on the graph version they started with while
/// new batches see the new one. Serving never pauses; the old state is
/// reclaimed when its last pinned reader drops it. Thread pools persist
/// across swaps (they carry no graph state).
class ShardedNaiEngine {
 public:
  /// Everything derived from one graph version. Immutable after
  /// construction and shared by pin; the engine's own entry points pin it
  /// once per call, and the serving front-end pins one state per batch so
  /// a batch's steal check and engine call agree on the version.
  struct ShardState {
    /// The snapshot this state was built from; null for engines built on
    /// borrowed graph views (the compatibility constructor).
    std::shared_ptr<const graph::GraphSnapshot> snapshot;
    /// Graph version served by this state (snapshot->version, 0 for
    /// borrowed-view engines).
    std::uint64_t version = 0;
    graph::ShardedGraph sharded;
    /// halo_depth[s][local] = hop distance of shard s's local node from
    /// the shard's owned set (0 = owned, halo_hops = outermost ring) — the
    /// steal-path eligibility data of CanServeFromShard, rebuilt with the
    /// state because a delta can change shard halos.
    std::vector<std::vector<std::int32_t>> halo_depth;
    /// Full-graph feature store the shard slices read through: the
    /// snapshot's store, or an adapter over the borrowed matrix.
    std::shared_ptr<const storage::FeatureStore> base_features;
    /// Per-shard row-remapped views of base_features and per-shard
    /// stationary views; referenced by the shard engines, so they live
    /// here (declaration order matters).
    std::vector<std::shared_ptr<const storage::FeatureStore>> shard_features;
    std::vector<std::unique_ptr<StationaryState>> shard_stationary;
    std::vector<std::unique_ptr<NaiEngine>> engines;
  };

  /// `full_graph` must be the graph `sharded` was built from; `features`,
  /// `classifiers`, `stationary` and `gates` are full-graph-scoped, exactly
  /// as for NaiEngine (this class derives per-shard views internally).
  /// `total_threads` is divided evenly across shard pools (minimum one
  /// thread each); <= 0 uses the default pool's size.
  /// Throws nai::ValidationError when `sharded` does not match
  /// `full_graph` or has no shards. Engines built this way serve a frozen
  /// graph: SwapSnapshot throws on them.
  ShardedNaiEngine(const graph::Graph& full_graph, graph::ShardedGraph sharded,
                   const tensor::Matrix& features, float gamma,
                   ClassifierStack& classifiers,
                   const StationaryState* stationary, const GateStack* gates,
                   int total_threads = 0);

  /// Snapshot-backed variant: the graph, features, normalized adjacency and
  /// pooled stationary vector all come from — and are kept alive by — the
  /// snapshot handle (any storage backend), which is what makes
  /// SwapSnapshot legal later. `sharded` must partition the snapshot's
  /// graph (same halo discipline as above); `use_stationary` = false skips
  /// the stationary views (NapKind::kNone-only serving). Results are
  /// bit-identical to the borrowed-view constructor on the same graph.
  ShardedNaiEngine(std::shared_ptr<const graph::GraphSnapshot> snapshot,
                   graph::ShardedGraph sharded, ClassifierStack& classifiers,
                   const GateStack* gates, bool use_stationary = true,
                   int total_threads = 0);

  /// Atomically retargets a snapshot-backed engine at `snapshot` (which
  /// must extend the current graph: node count can only grow, and existing
  /// owners never move). New nodes are assigned to the shard owning the
  /// majority of their already-assigned neighbors (ties to the lowest
  /// shard id; isolated nodes round-robin by id), the halos, per-shard
  /// views and shard engines are rebuilt off the serving path, and the new
  /// state is published in one pointer swap. In-flight readers keep the
  /// state they pinned; there is no pause. Safe to call concurrently with
  /// Infer/InferMixed; concurrent SwapSnapshot calls serialize. Throws
  /// nai::ValidationError for borrowed-view engines and on a null or
  /// shrinking snapshot.
  void SwapSnapshot(std::shared_ptr<const graph::GraphSnapshot> snapshot);

  /// Pins the current state: the returned handle stays valid (and its
  /// graph version fixed) for as long as the caller holds it, regardless
  /// of concurrent swaps. The serving front-end pins one state per batch.
  std::shared_ptr<const ShardState> PinState() const;

  /// The graph version currently being served (0 until the first swap for
  /// borrowed-view engines).
  std::uint64_t version() const { return PinState()->version; }

  /// Classifies `nodes` (global ids). Thread-compatible but not
  /// thread-safe, like NaiEngine::Infer. Pins one state for the whole
  /// call. Throws nai::ValidationError when the effective T_max exceeds
  /// halo_hops (the shards cannot support a deeper BFS) and
  /// std::out_of_range for query ids outside the graph.
  InferenceResult Infer(const std::vector<std::int32_t>& nodes,
                        const InferenceConfig& config);

  /// Per-query-config counterpart of Infer (see NaiEngine::InferMixed):
  /// routes each query to its owning shard, where queries sharing a config
  /// are co-batched. Same determinism contract as Infer per config group;
  /// same thread-compatibility and throws, applied to every distinct
  /// config.
  InferenceResult InferMixed(const std::vector<ConfiguredQuery>& queries);

  /// Attaches (nullptr: detaches) the INT8 classifier bank configs with
  /// `int8_classifier` resolve to, on every current shard engine and —
  /// because the attachment is carried through BuildState — every engine a
  /// later SwapSnapshot builds. The stack is full-graph-scoped and
  /// borrowed; it must outlive the engine. Call during setup, before
  /// serving traffic arrives (the per-engine attach is not synchronized
  /// against in-flight Infer calls on the same shard).
  void AttachQuantizedClassifiers(QuantizedClassifierStack* quantized);
  const QuantizedClassifierStack* quantized_classifiers() const {
    return quantized_;
  }

  /// Checks that this engine's shards can serve `config`: its effective
  /// T_max must not exceed halo_hops (the shard BFS would leave the shard).
  /// Throws nai::ValidationError otherwise. Infer/InferMixed call this on
  /// every config; the serving front-end calls it once per QoS policy at
  /// construction, because it bypasses the routed entry points and pumps
  /// the shard engines directly.
  void ValidateConfig(const InferenceConfig& config) const;

  /// True when shard `s` can serve global node `v` under `config` with
  /// results bit-identical to routing through v's owner — the steal-path
  /// check of the serving scheduler. Trivially true when s owns v.
  /// Otherwise v must sit deep enough inside s's halo that the whole
  /// T-hop supporting BFS (T = effective T_max, at least 1 so v's own
  /// degree-dependent quantities are exact) stays inside the shard *and*
  /// every adjacency row it aggregates is complete:
  ///   halo_depth(v) + max(1, T) <= halo_hops,
  /// where halo_depth(v) is v's hop distance from s's owned set (0 for
  /// owned nodes). Rows of nodes strictly inside the halo are exact
  /// submatrix rows of the global normalized adjacency in global-id
  /// order, which is what makes the thief's answer bit-identical (see the
  /// class determinism contract). False for shards that own no nodes
  /// (they have no engine) and for nodes outside the shard; throws
  /// std::out_of_range for nodes outside the graph. The `state` overload
  /// evaluates against a pinned state so a steal check and the engine
  /// call it gates agree on the graph version.
  bool CanServeFromShard(std::size_t s, std::int32_t v,
                         const InferenceConfig& config) const;
  bool CanServeFromShard(const ShardState& state, std::size_t s,
                         std::int32_t v, const InferenceConfig& config) const;

  /// The classifier bank's depth k — the deepest T_max any config can
  /// resolve to (InferenceConfig::effective_t_max).
  int depth() const { return classifiers_->depth(); }

  std::size_t num_shards() const { return num_shards_; }
  int halo_hops() const { return halo_hops_; }
  int threads_per_shard() const { return threads_per_shard_; }
  /// The current state's sharding. The reference stays valid until the
  /// next SwapSnapshot; callers that must stay consistent across swaps pin
  /// the state instead.
  const graph::ShardedGraph& sharded_graph() const {
    return CurrentState().sharded;
  }
  /// `s` must own at least one node: shards a custom owner vector left
  /// empty can never be queried and get no engine (or pool, or thread
  /// slice). Same lifetime caveat as sharded_graph() — pin the state for
  /// churn-safe access.
  NaiEngine& shard_engine(std::size_t s) { return *CurrentState().engines[s]; }

 private:
  /// The current state by reference; kept alive by the engine's own handle
  /// until the next swap (callers needing longer pin it).
  const ShardState& CurrentState() const;
  /// Builds a complete state for `sharded` over the given graph artifacts.
  /// `snapshot` may be null (borrowed-view constructor). Creates any
  /// missing shard pools as a side effect.
  std::shared_ptr<const ShardState> BuildState(
      std::shared_ptr<const graph::GraphSnapshot> snapshot,
      graph::ShardedGraph sharded,
      std::shared_ptr<const storage::FeatureStore> features,
      graph::CsrView global_norm, const tensor::Matrix* pooled);

  ClassifierStack* classifiers_;
  QuantizedClassifierStack* quantized_ = nullptr;
  const GateStack* gates_;
  float gamma_;
  bool use_stationary_;
  std::size_t num_shards_;
  int halo_hops_;
  int threads_per_shard_;
  /// One pool per owning shard, created on first need and persistent
  /// across swaps: engines of successive states share their shard's pool,
  /// so a swap never tears down worker threads. Only mutated under
  /// swap_mu_ (or in the constructor); never shrunk.
  std::vector<std::unique_ptr<runtime::ThreadPool>> pools_;
  /// Serializes SwapSnapshot callers (state builds happen outside
  /// state_mu_ so readers never wait on a rebuild).
  std::mutex swap_mu_;
  mutable std::mutex state_mu_;
  std::shared_ptr<const ShardState> state_;
};

}  // namespace nai::core

#endif  // NAI_CORE_SHARDED_INFERENCE_H_
