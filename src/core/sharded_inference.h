#ifndef NAI_CORE_SHARDED_INFERENCE_H_
#define NAI_CORE_SHARDED_INFERENCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/inference.h"
#include "src/graph/shard.h"
#include "src/runtime/thread_pool.h"

namespace nai::core {

/// Serves Algorithm-1 inference from a partitioned graph: one NaiEngine per
/// shard, each with a dedicated thread pool (an equal slice of the total),
/// queries routed to their owning shard and all shards running concurrently.
///
/// Each shard engine sees only its shard's nodes — an induced subgraph with
/// a halo of every node within ShardedGraph::halo_hops hops of an owned
/// node — so its supporting-set BFS never leaves the shard. Three
/// constructions make the merged result match the unsharded engine exactly:
///   * shard adjacencies are submatrices of the *full graph's* normalized
///     adjacency, so edge weights use global degrees;
///   * shard node lists are sorted by global id, so each row's neighbors
///     accumulate in the same order as in the full graph;
///   * shard stationary views reuse the full graph's pooled vector and the
///     shard-local degrees of owned nodes (equal to global degrees when
///     halo_hops >= 1).
///
/// Determinism contract (bit-exact, any shard count, any thread count):
/// predictions, exit depths, the exit histogram and the nap/stationary/
/// classification MAC counters all equal the unsharded engine's on the same
/// query list — they are per-node quantities. propagation_macs counts the
/// *shared* supporting-set work of each batch and is therefore a function
/// of the batch decomposition: each shard batches its routed sub-list with
/// config.batch_size, so it equals the unsharded engine run on those same
/// batches — exactly equal to the unsharded run of the original list
/// whenever batch boundaries align with shard boundaries (one shard,
/// batch_size 1, or a partition-aligned query order).
///
/// Per-shard stats are merged in shard order via InferenceStats::Accumulate;
/// num_nodes and wall_time_ms are set exactly once by this class (the
/// per-shard values describe sub-runs and are never summed).
class ShardedNaiEngine {
 public:
  /// `full_graph` must be the graph `sharded` was built from; `features`,
  /// `classifiers`, `stationary` and `gates` are full-graph-scoped, exactly
  /// as for NaiEngine (this class gathers per-shard views internally).
  /// `total_threads` is divided evenly across shard pools (minimum one
  /// thread each); <= 0 uses the default pool's size.
  /// Throws std::invalid_argument when `sharded` does not match
  /// `full_graph` or has no shards.
  ShardedNaiEngine(const graph::Graph& full_graph, graph::ShardedGraph sharded,
                   const tensor::Matrix& features, float gamma,
                   ClassifierStack& classifiers,
                   const StationaryState* stationary, const GateStack* gates,
                   int total_threads = 0);

  /// Classifies `nodes` (global ids). Thread-compatible but not
  /// thread-safe, like NaiEngine::Infer. Throws std::invalid_argument when
  /// the effective T_max exceeds halo_hops (the shards cannot support a
  /// deeper BFS) and std::out_of_range for query ids outside the graph.
  InferenceResult Infer(const std::vector<std::int32_t>& nodes,
                        const InferenceConfig& config);

  /// Per-query-config counterpart of Infer (see NaiEngine::InferMixed):
  /// routes each query to its owning shard, where queries sharing a config
  /// are co-batched. Same determinism contract as Infer per config group;
  /// same thread-compatibility and throws, applied to every distinct
  /// config.
  InferenceResult InferMixed(const std::vector<ConfiguredQuery>& queries);

  /// Checks that this engine's shards can serve `config`: its effective
  /// T_max must not exceed halo_hops (the shard BFS would leave the shard).
  /// Throws std::invalid_argument otherwise. Infer/InferMixed call this on
  /// every config; the serving front-end calls it once per QoS policy at
  /// construction, because it bypasses the routed entry points and pumps
  /// shard_engine(s) directly.
  void ValidateConfig(const InferenceConfig& config) const;

  /// True when shard `s` can serve global node `v` under `config` with
  /// results bit-identical to routing through v's owner — the steal-path
  /// check of the serving scheduler. Trivially true when s owns v.
  /// Otherwise v must sit deep enough inside s's halo that the whole
  /// T-hop supporting BFS (T = effective T_max, at least 1 so v's own
  /// degree-dependent quantities are exact) stays inside the shard *and*
  /// every adjacency row it aggregates is complete:
  ///   halo_depth(v) + max(1, T) <= halo_hops,
  /// where halo_depth(v) is v's hop distance from s's owned set (0 for
  /// owned nodes). Rows of nodes strictly inside the halo are exact
  /// submatrix rows of the global normalized adjacency in global-id
  /// order, which is what makes the thief's answer bit-identical (see the
  /// class determinism contract). False for shards that own no nodes
  /// (they have no engine) and for nodes outside the shard; throws
  /// std::out_of_range for nodes outside the graph.
  bool CanServeFromShard(std::size_t s, std::int32_t v,
                         const InferenceConfig& config) const;

  /// The classifier bank's depth k — the deepest T_max any config can
  /// resolve to (InferenceConfig::effective_t_max).
  int depth() const { return classifiers_->depth(); }

  std::size_t num_shards() const { return sharded_.num_shards(); }
  int halo_hops() const { return sharded_.halo_hops; }
  int threads_per_shard() const { return threads_per_shard_; }
  const graph::ShardedGraph& sharded_graph() const { return sharded_; }
  /// `s` must own at least one node: shards a custom owner vector left
  /// empty can never be queried and get no engine (or pool, or thread
  /// slice).
  NaiEngine& shard_engine(std::size_t s) { return *engines_[s]; }

 private:
  graph::ShardedGraph sharded_;
  ClassifierStack* classifiers_;
  int threads_per_shard_;
  /// halo_depth_[s][local] = hop distance of shard s's local node from the
  /// shard's owned set (0 = owned, halo_hops = outermost halo ring).
  /// Computed once at construction by BFS over the shard subgraph — the
  /// steal-path eligibility data of CanServeFromShard.
  std::vector<std::vector<std::int32_t>> halo_depth_;
  /// Per-shard gathered feature rows and stationary views; referenced by
  /// the shard engines, so they live here (declaration order matters).
  std::vector<tensor::Matrix> shard_features_;
  std::vector<std::unique_ptr<StationaryState>> shard_stationary_;
  std::vector<std::unique_ptr<runtime::ThreadPool>> pools_;
  std::vector<std::unique_ptr<NaiEngine>> engines_;
};

}  // namespace nai::core

#endif  // NAI_CORE_SHARDED_INFERENCE_H_
