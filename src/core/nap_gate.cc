#include "src/core/nap_gate.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/core/classifier_stack.h"
#include "src/nn/gumbel.h"
#include "src/nn/loss.h"
#include "src/tensor/ops.h"

namespace nai::core {

GateStack::GateStack(int max_depth, std::size_t feature_dim,
                     std::uint64_t seed)
    : max_depth_(max_depth), feature_dim_(feature_dim) {
  assert(max_depth >= 2 && "gates only make sense with k >= 2");
  tensor::Rng rng(seed);
  weights_.resize(max_depth - 1);
  biases_.resize(max_depth - 1);
  for (int g = 0; g < max_depth - 1; ++g) {
    weights_[g].Resize(2 * feature_dim, 2);
    biases_[g].Resize(1, 2);
    tensor::FillGlorot(weights_[g].value, rng);
  }
}

tensor::Matrix GateStack::Preference(int depth, const tensor::Matrix& x_l,
                                     const tensor::Matrix& x_inf) const {
  assert(depth >= 1 && depth < max_depth_);
  assert(x_l.SameShape(x_inf));
  assert(x_l.cols() == feature_dim_);
  const tensor::Matrix concat = tensor::ConcatCols({&x_l, &x_inf});
  tensor::Matrix logits = tensor::MatMul(concat, weights_[depth - 1].value);
  tensor::AddRowBias(logits, biases_[depth - 1].value);
  return tensor::SoftmaxRows(logits);
}

std::vector<bool> GateStack::ShouldExit(int depth, const tensor::Matrix& x_l,
                                        const tensor::Matrix& x_inf,
                                        float decision_bias) const {
  const tensor::Matrix e = Preference(depth, x_l, x_inf);
  std::vector<bool> exit(e.rows());
  for (std::size_t i = 0; i < e.rows(); ++i) {
    exit[i] = e.at(i, 0) + decision_bias > e.at(i, 1);
  }
  return exit;
}

float GateStack::Penalty(const std::vector<std::vector<float>>& masks_prev,
                         std::size_t node, int depth, float mu,
                         float phi) const {
  float theta = 0.0f;
  for (int j = 0; j < depth - 1; ++j) {
    theta += mu / (1.0f + std::exp(-phi * (masks_prev[j][node] - 0.5f)));
  }
  return theta;
}

float GateStack::Train(const std::vector<tensor::Matrix>& stack,
                       const tensor::Matrix& stationary,
                       ClassifierStack& classifiers,
                       const std::vector<std::int32_t>& rows,
                       const std::vector<std::int32_t>& labels,
                       const GateTrainConfig& config) {
  const int k = max_depth_;
  assert(static_cast<int>(stack.size()) == k + 1);
  assert(classifiers.depth() == k);
  const std::size_t n = rows.size();
  assert(labels.size() == n);
  tensor::Rng rng(config.seed);

  // Gather the per-depth features and the frozen class probabilities once;
  // the classifiers do not change during gate training (paper §III-A-2).
  const GatheredStack gathered = GatherStack(stack, rows);
  assert(stationary.rows() == n);
  std::vector<tensor::Matrix> class_probs(k + 1);  // index by depth 1..k
  for (int l = 1; l <= k; ++l) {
    class_probs[l] = tensor::SoftmaxRows(classifiers.Logits(l, gathered));
  }
  const std::size_t c = class_probs[1].cols();

  nn::Adam adam({.learning_rate = config.learning_rate,
                 .weight_decay = config.weight_decay});
  {
    std::vector<nn::Parameter*> params;
    for (auto& w : weights_) params.push_back(&w);
    for (auto& b : biases_) params.push_back(&b);
    adam.Register(params);
  }

  float final_loss = 0.0f;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    adam.ZeroGrad();

    // ---- Forward: all gates, exact penalty-based masking. ----------------
    std::vector<tensor::Matrix> concats(k - 1);
    std::vector<nn::GumbelSample> samples(k - 1);
    std::vector<tensor::Matrix> prefs(k - 1);
    std::vector<std::vector<float>> hard(k - 1,
                                         std::vector<float>(n, 0.0f));
    for (int l = 1; l <= k - 1; ++l) {
      concats[l - 1] =
          tensor::ConcatCols({&gathered.mats[l], &stationary});
      tensor::Matrix logits =
          tensor::MatMul(concats[l - 1], weights_[l - 1].value);
      tensor::AddRowBias(logits, biases_[l - 1].value);
      prefs[l - 1] = tensor::SoftmaxRows(logits);
      // Gumbel-softmax sampling of the categorical e (Eq. 11) uses the
      // log-probabilities — sampling on raw probabilities in [0,1] would
      // drown the preference in the O(1)-scale Gumbel noise and keep the
      // gates undecided forever. The exclusivity penalty (footnote 1)
      // shifts the "stop" column.
      tensor::Matrix adjusted(n, 2);
      constexpr float kLogEps = 1e-12f;
      for (std::size_t i = 0; i < n; ++i) {
        adjusted.at(i, 0) =
            std::log(prefs[l - 1].at(i, 0) + kLogEps) -
            Penalty(hard, i, l, config.penalty_mu, config.penalty_phi);
        adjusted.at(i, 1) = std::log(prefs[l - 1].at(i, 1) + kLogEps);
      }
      samples[l - 1] = nn::GumbelSoftmax(adjusted, config.gumbel_tau, rng);
      for (std::size_t i = 0; i < n; ++i) {
        hard[l - 1][i] = samples[l - 1].hard.at(i, 0);
      }
    }

    // Hard selections: sel_l = first gate that fired; sel_k = none fired.
    // The penalty already guarantees at most one fires; recompute the
    // product form anyway so the invariant is enforced structurally.
    tensor::Matrix y_hat(n, c);
    std::vector<std::vector<float>> sel(k + 1, std::vector<float>(n, 0.0f));
    for (std::size_t i = 0; i < n; ++i) {
      float cont = 1.0f;
      for (int l = 1; l <= k - 1; ++l) {
        sel[l][i] = hard[l - 1][i] * cont;
        cont *= (1.0f - hard[l - 1][i]);
      }
      sel[k][i] = cont;
      float* yrow = y_hat.row(i);
      for (int l = 1; l <= k; ++l) {
        if (sel[l][i] == 0.0f) continue;
        const float* prow = class_probs[l].row(i);
        for (std::size_t j = 0; j < c; ++j) yrow[j] += sel[l][i] * prow[j];
      }
    }

    const nn::LossResult loss =
        nn::CrossEntropyOnProbabilities(y_hat, labels);
    final_loss = loss.loss;

    // ---- Backward (straight-through): soft product form. -----------------
    // dL/dsel_l[i] = grad_yhat[i] . P_l[i]
    std::vector<std::vector<float>> dsel(k + 1, std::vector<float>(n, 0.0f));
    for (int l = 1; l <= k; ++l) {
      for (std::size_t i = 0; i < n; ++i) {
        const float* g = loss.grad_logits.row(i);
        const float* p = class_probs[l].row(i);
        float dot = 0.0f;
        for (std::size_t j = 0; j < c; ++j) dot += g[j] * p[j];
        dsel[l][i] = dot;
      }
    }
    // Soft mask values s_l and continue products c̃_l.
    // sel_l = s_l * Π_{j<l}(1-s_j);  sel_k = Π_{j<k}(1-s_j)
    for (int l = 1; l <= k - 1; ++l) {
      tensor::Matrix grad_soft(n, 2);
      for (std::size_t i = 0; i < n; ++i) {
        float c_before = 1.0f;
        for (int j = 1; j < l; ++j) {
          c_before *= (1.0f - samples[j - 1].soft.at(i, 0));
        }
        float d = dsel[l][i] * c_before;
        // Later selections shrink when s_l grows:
        // ∂sel_j/∂s_l = −s_j · Π_{t<j, t≠l}(1−s_t). Track that product
        // directly (c_excl) instead of dividing by (1−s_l).
        float c_excl = c_before;
        for (int j = l + 1; j <= k - 1; ++j) {
          const float s_j = samples[j - 1].soft.at(i, 0);
          d -= dsel[j][i] * s_j * c_excl;
          c_excl *= (1.0f - s_j);
        }
        d -= dsel[k][i] * c_excl;
        grad_soft.at(i, 0) = d;
      }
      // Through the Gumbel-softmax relaxation to the adjusted preferences
      // (the log-probabilities; the penalty's gradient vanishes because
      // its sigmoid is saturated).
      tensor::Matrix grad_adj = nn::GumbelSoftmaxBackward(
          samples[l - 1].soft, grad_soft, config.gumbel_tau);
      // log-softmax backward: d a_k = d(log e)_k − e_k · Σ_j d(log e)_j.
      tensor::Matrix grad_logits(n, 2);
      for (std::size_t i = 0; i < n; ++i) {
        const float* e = prefs[l - 1].row(i);
        const float* dle = grad_adj.row(i);
        const float total = dle[0] + dle[1];
        grad_logits.at(i, 0) = dle[0] - e[0] * total;
        grad_logits.at(i, 1) = dle[1] - e[1] * total;
      }
      tensor::AddInPlace(
          weights_[l - 1].grad,
          tensor::MatMulTransposeA(concats[l - 1], grad_logits));
      tensor::AddInPlace(biases_[l - 1].grad,
                         tensor::ColumnSums(grad_logits));
    }
    adam.Step();
  }
  return final_loss;
}

std::int64_t GateStack::DecisionMacs(std::int64_t rows) const {
  return rows * static_cast<std::int64_t>(2 * feature_dim_) * 2;
}

}  // namespace nai::core
