#include "src/core/stationary.h"

#include <cassert>
#include <cmath>

#include "src/graph/normalize.h"

namespace nai::core {

StationaryState::StationaryState(const graph::Graph& graph,
                                 const tensor::Matrix& features, float gamma)
    : StationaryState(graph.adjacency().view(),
                      graph::PooledStationaryVector(graph, features, gamma),
                      gamma) {}

StationaryState StationaryState::FromPooled(const graph::Graph& graph,
                                            tensor::Matrix pooled,
                                            float gamma) {
  return StationaryState(graph.adjacency().view(), std::move(pooled), gamma);
}

StationaryState StationaryState::FromPooled(graph::CsrView adj,
                                            tensor::Matrix pooled,
                                            float gamma) {
  return StationaryState(adj, std::move(pooled), gamma);
}

tensor::Matrix StationaryState::RowsForDegrees(
    const std::vector<float>& degrees_with_loops) const {
  tensor::Matrix out(degrees_with_loops.size(), pooled_.cols());
  const float* g = pooled_.data();
  for (std::size_t i = 0; i < degrees_with_loops.size(); ++i) {
    const float ui = std::pow(degrees_with_loops[i], gamma_);
    float* row = out.row(i);
    for (std::size_t f = 0; f < pooled_.cols(); ++f) row[f] = ui * g[f];
  }
  return out;
}

tensor::Matrix StationaryState::RowsForNodes(
    const std::vector<std::int32_t>& nodes) const {
  std::vector<float> degrees(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    degrees[i] = static_cast<float>(adj_.RowNnz(nodes[i]) + 1);
  }
  return RowsForDegrees(degrees);
}

tensor::Matrix StationaryStateDense(const graph::Graph& graph,
                                    const tensor::Matrix& features,
                                    float gamma) {
  const std::int64_t n = graph.num_nodes();
  const double denom = static_cast<double>(2 * graph.num_edges() + n);
  tensor::Matrix out(n, features.cols());
  for (std::int64_t i = 0; i < n; ++i) {
    const double ui = std::pow(static_cast<double>(graph.degree(i) + 1),
                               static_cast<double>(gamma));
    float* orow = out.row(i);
    for (std::int64_t j = 0; j < n; ++j) {
      const double aij =
          ui *
          std::pow(static_cast<double>(graph.degree(j) + 1),
                   1.0 - static_cast<double>(gamma)) /
          denom;
      const float* frow = features.row(j);
      for (std::size_t f = 0; f < features.cols(); ++f) {
        orow[f] += static_cast<float>(aij) * frow[f];
      }
    }
  }
  return out;
}

}  // namespace nai::core
