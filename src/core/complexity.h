#ifndef NAI_CORE_COMPLEXITY_H_
#define NAI_CORE_COMPLEXITY_H_

#include <cstdint>
#include <string>

#include "src/models/scalable_gnn.h"

namespace nai::core {

/// Symbolic parameters of the paper's Table I complexity model.
struct ComplexityParams {
  std::int64_t n = 0;  ///< nodes classified
  std::int64_t m = 0;  ///< edges touched by propagation
  std::int64_t f = 0;  ///< feature dimension
  std::int64_t p = 1;  ///< classifier layer count P
  double k = 0.0;      ///< fixed propagation depth (vanilla)
  double q = 0.0;      ///< average personalized depth (NAI)
};

/// Analytic inference MACs of the vanilla Scalable GNN (Table I, row 1).
std::int64_t VanillaMacs(models::ModelKind kind, const ComplexityParams& p);

/// Analytic inference MACs with NAI deployed (Table I, row 2).
/// `rank_one_stationary` replaces the paper's O(n²f) stationary-state term
/// with the O(nf) cost of the rank-one factorization this library actually
/// executes (see StationaryState); pass false to reproduce the table
/// verbatim.
std::int64_t NaiMacs(models::ModelKind kind, const ComplexityParams& p,
                     bool rank_one_stationary = true);

/// Human-readable formula strings for the two rows (for the Table I bench).
std::string VanillaFormula(models::ModelKind kind);
std::string NaiFormula(models::ModelKind kind);

}  // namespace nai::core

#endif  // NAI_CORE_COMPLEXITY_H_
