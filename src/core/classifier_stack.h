#ifndef NAI_CORE_CLASSIFIER_STACK_H_
#define NAI_CORE_CLASSIFIER_STACK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/models/scalable_gnn.h"
#include "src/tensor/matrix.h"
#include "src/tensor/random.h"

namespace nai::core {

/// A feature stack gathered down to a row subset: element t holds X^(t)
/// restricted to the chosen rows. Provides the per-depth view slices the
/// classifier heads consume.
struct GatheredStack {
  std::vector<tensor::Matrix> mats;

  /// Views {X^(0), ..., X^(upto)} (upto inclusive).
  models::FeatureViews ViewsUpTo(int upto) const;

  std::size_t num_rows() const { return mats.empty() ? 0 : mats[0].rows(); }
};

/// Gathers rows `rows` from every matrix of `stack`.
GatheredStack GatherStack(const std::vector<tensor::Matrix>& stack,
                          const std::vector<std::int32_t>& rows);

/// The per-depth classifier bank f^(1), ..., f^(k) of the NAI framework
/// (paper Fig. 2): one head per propagation depth, all of the same family
/// (SGC/SIGN/S2GC/GAMLP) and same architecture as the teacher f^(k).
class ClassifierStack {
 public:
  ClassifierStack(const models::ModelConfig& config, std::uint64_t seed);

  int depth() const { return config_.depth; }
  const models::ModelConfig& config() const { return config_; }

  /// Head for depth l, 1 <= l <= depth().
  models::DepthHead& head(int l) { return *heads_[l - 1]; }
  const models::DepthHead& head(int l) const { return *heads_[l - 1]; }

  /// Logits of f^(l) on a gathered stack (train=false, inference mode).
  tensor::Matrix Logits(int l, const GatheredStack& gathered);

  /// Logits in training mode (dropout + cached intermediates).
  tensor::Matrix LogitsTrain(int l, const GatheredStack& gathered,
                             tensor::Rng& rng);

  /// Parameters of head l only.
  std::vector<nn::Parameter*> HeadParameters(int l);

 private:
  models::ModelConfig config_;
  std::vector<std::unique_ptr<models::DepthHead>> heads_;
};

}  // namespace nai::core

#endif  // NAI_CORE_CLASSIFIER_STACK_H_
