#ifndef NAI_CORE_CLASSIFIER_STACK_H_
#define NAI_CORE_CLASSIFIER_STACK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/models/scalable_gnn.h"
#include "src/nn/quantized.h"
#include "src/tensor/matrix.h"
#include "src/tensor/random.h"

namespace nai::core {

/// A feature stack gathered down to a row subset: element t holds X^(t)
/// restricted to the chosen rows. Provides the per-depth view slices the
/// classifier heads consume.
struct GatheredStack {
  std::vector<tensor::Matrix> mats;

  /// Views {X^(0), ..., X^(upto)} (upto inclusive).
  models::FeatureViews ViewsUpTo(int upto) const;

  std::size_t num_rows() const { return mats.empty() ? 0 : mats[0].rows(); }
};

/// Gathers rows `rows` from every matrix of `stack`.
GatheredStack GatherStack(const std::vector<tensor::Matrix>& stack,
                          const std::vector<std::int32_t>& rows);

/// The per-depth classifier bank f^(1), ..., f^(k) of the NAI framework
/// (paper Fig. 2): one head per propagation depth, all of the same family
/// (SGC/SIGN/S2GC/GAMLP) and same architecture as the teacher f^(k).
class ClassifierStack {
 public:
  ClassifierStack(const models::ModelConfig& config, std::uint64_t seed);

  int depth() const { return config_.depth; }
  const models::ModelConfig& config() const { return config_; }

  /// Head for depth l, 1 <= l <= depth().
  models::DepthHead& head(int l) { return *heads_[l - 1]; }
  const models::DepthHead& head(int l) const { return *heads_[l - 1]; }

  /// Logits of f^(l) on a gathered stack (train=false, inference mode).
  tensor::Matrix Logits(int l, const GatheredStack& gathered);

  /// Logits in training mode (dropout + cached intermediates).
  tensor::Matrix LogitsTrain(int l, const GatheredStack& gathered,
                             tensor::Rng& rng);

  /// Parameters of head l only.
  std::vector<nn::Parameter*> HeadParameters(int l);

 private:
  models::ModelConfig config_;
  std::vector<std::unique_ptr<models::DepthHead>> heads_;
};

/// The INT8 companion of a ClassifierStack: one nn::QuantizedMlp per depth
/// head, built post-training from the float weights. Logits() shares the
/// float heads' family-specific stack reduction (DepthHead::Reduce) and
/// substitutes the INT8 MLP for the final arithmetic — exactly the paper's
/// Quantization baseline, promoted to an engine-attachable stack so the
/// serving tier kThroughputFirst can run it per-config on the hot path
/// (InferenceConfig::int8_classifier). Borrows `source`, which must
/// outlive this object; quantization happens once, in the constructor.
///
/// Thread-safety matches ClassifierStack::Logits in inference mode:
/// concurrent Logits calls are safe (shard engines share one stack).
class QuantizedClassifierStack {
 public:
  explicit QuantizedClassifierStack(ClassifierStack& source);

  int depth() const { return source_->depth(); }

  /// INT8 logits of f^(l) on a gathered stack: float Reduce, INT8 MLP.
  tensor::Matrix Logits(int l, const GatheredStack& gathered);

  /// Same MAC count as the float head (the arithmetic is narrower, not
  /// smaller) — keeps cost accounting comparable across QoS classes.
  std::int64_t ForwardMacs(int l, std::int64_t rows) const {
    return source_->head(l).ForwardMacs(rows);
  }

  const nn::QuantizedMlp& mlp(int l) const { return mlps_[l - 1]; }

 private:
  ClassifierStack* source_;
  std::vector<nn::QuantizedMlp> mlps_;  // mlps_[l-1] serves depth l
};

}  // namespace nai::core

#endif  // NAI_CORE_CLASSIFIER_STACK_H_
