#ifndef NAI_CORE_STATIONARY_H_
#define NAI_CORE_STATIONARY_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/matrix.h"

namespace nai::core {

/// The stationary feature state X^(∞) of infinite propagation (Eqs. 6-7):
///
///   X^(∞)_i = sum_j Â^(∞)_{i,j} X_j,
///   Â^(∞)_{i,j} = (d_i+1)^γ (d_j+1)^(1-γ) / (2m + n)
///
/// Â^(∞) is the outer product u v^T with u_i = (d_i+1)^γ and
/// v_j = (d_j+1)^(1-γ) / (2m+n), so the whole state is rank one:
/// X^(∞)_i = u_i · g with a single pooled vector g = v^T X. This class
/// precomputes g once from the reference graph and then serves per-node
/// stationary rows in O(f) — the optimization that makes the paper's
/// stationary-state comparison affordable at inference time.
class StationaryState {
 public:
  /// Precomputes the pooled vector from `graph` (degrees and scale) and
  /// `features` (n x f). γ is the convolution coefficient of Eq. 1.
  StationaryState(const graph::Graph& graph, const tensor::Matrix& features,
                  float gamma);

  /// Reconstructs a state from a previously computed pooled vector (e.g. a
  /// checkpoint); `graph` supplies the degrees for RowsForNodes.
  static StationaryState FromPooled(const graph::Graph& graph,
                                    tensor::Matrix pooled, float gamma);

  /// View-based variant: `adj` is the raw symmetric adjacency (any storage
  /// backend); only its row extents are read, for degrees.
  static StationaryState FromPooled(graph::CsrView adj, tensor::Matrix pooled,
                                    float gamma);

  /// X^(∞) rows for nodes with the given degrees-with-self-loop (d_i + 1).
  /// Works for unseen nodes too: only their degree is needed.
  tensor::Matrix RowsForDegrees(const std::vector<float>& degrees_with_loops) const;

  /// X^(∞) rows for the given global node ids of the reference graph.
  tensor::Matrix RowsForNodes(const std::vector<std::int32_t>& nodes) const;

  /// The pooled vector g (1 x f).
  const tensor::Matrix& pooled() const { return pooled_; }

  float gamma() const { return gamma_; }

 private:
  StationaryState(graph::CsrView adj, tensor::Matrix pooled, float gamma)
      : adj_(adj), pooled_(std::move(pooled)), gamma_(gamma) {}

  graph::CsrView adj_;     // raw adjacency; degrees = RowNnz
  tensor::Matrix pooled_;  // 1 x f
  float gamma_;
};

/// Reference implementation of Eq. 6-7 by explicit materialization of
/// Â^(∞) (O(n^2 f)); tests verify StationaryState against it.
tensor::Matrix StationaryStateDense(const graph::Graph& graph,
                                    const tensor::Matrix& features,
                                    float gamma);

}  // namespace nai::core

#endif  // NAI_CORE_STATIONARY_H_
