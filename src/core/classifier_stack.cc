#include "src/core/classifier_stack.h"

#include <cassert>

namespace nai::core {

models::FeatureViews GatheredStack::ViewsUpTo(int upto) const {
  assert(upto >= 0 && static_cast<std::size_t>(upto) < mats.size());
  models::FeatureViews views;
  views.reserve(upto + 1);
  for (int t = 0; t <= upto; ++t) views.push_back(&mats[t]);
  return views;
}

GatheredStack GatherStack(const std::vector<tensor::Matrix>& stack,
                          const std::vector<std::int32_t>& rows) {
  GatheredStack out;
  out.mats.reserve(stack.size());
  for (const auto& m : stack) out.mats.push_back(m.GatherRows(rows));
  return out;
}

ClassifierStack::ClassifierStack(const models::ModelConfig& config,
                                 std::uint64_t seed)
    : config_(config) {
  tensor::Rng rng(seed);
  heads_.reserve(config.depth);
  for (int l = 1; l <= config.depth; ++l) {
    heads_.push_back(models::MakeHead(config, l, rng));
  }
}

tensor::Matrix ClassifierStack::Logits(int l, const GatheredStack& gathered) {
  assert(l >= 1 && l <= depth());
  return heads_[l - 1]->Forward(gathered.ViewsUpTo(l), /*train=*/false,
                                nullptr);
}

tensor::Matrix ClassifierStack::LogitsTrain(int l,
                                            const GatheredStack& gathered,
                                            tensor::Rng& rng) {
  assert(l >= 1 && l <= depth());
  return heads_[l - 1]->Forward(gathered.ViewsUpTo(l), /*train=*/true, &rng);
}

std::vector<nn::Parameter*> ClassifierStack::HeadParameters(int l) {
  std::vector<nn::Parameter*> params;
  heads_[l - 1]->CollectParameters(params);
  return params;
}

QuantizedClassifierStack::QuantizedClassifierStack(ClassifierStack& source)
    : source_(&source) {
  mlps_.reserve(source.depth());
  for (int l = 1; l <= source.depth(); ++l) {
    mlps_.emplace_back(source.head(l).classifier_mlp());
  }
}

tensor::Matrix QuantizedClassifierStack::Logits(int l,
                                                const GatheredStack& gathered) {
  assert(l >= 1 && l <= depth());
  const tensor::Matrix reduced =
      source_->head(l).Reduce(gathered.ViewsUpTo(l));
  return mlps_[l - 1].Forward(reduced);
}

}  // namespace nai::core
