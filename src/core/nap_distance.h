#ifndef NAI_CORE_NAP_DISTANCE_H_
#define NAI_CORE_NAP_DISTANCE_H_

#include <cstdint>
#include <vector>

#include "src/tensor/matrix.h"

namespace nai::core {

/// Distance-based Node-Adaptive Propagation (NAPd, paper §III-A-1).
///
/// Measures the smoothing status of each node explicitly as the L2 distance
/// between its propagated feature at the current depth and its stationary
/// feature (Eq. 8):
///
///   Δ^(l)_i = || X^(l)_i − X^(∞)_i ||₂
///
/// A node exits propagation at the first depth where Δ^(l)_i < T_s (Eq. 9);
/// the global threshold T_s is the knob trading latency for accuracy.
/// `relative` mode divides each node's distance by the norm of its
/// stationary feature: under symmetric normalization ||X^(∞)_i|| grows like
/// sqrt(d_i+1), so the absolute distance of high-degree nodes is inflated
/// by their stationary magnitude even though they converge *faster*.
/// Relative distance is the scale-free smoothness measure (the criterion
/// NDLS [38] effectively uses) and is what the experiment harness deploys;
/// plain Eq. 8 remains the default for paper fidelity.
class NapDistance {
 public:
  explicit NapDistance(float threshold, bool relative = false)
      : threshold_(threshold), relative_(relative) {}

  /// Per-row absolute distances Δ between `propagated` and `stationary`
  /// (equal shapes; row i is node i of the current active set) — Eq. 8.
  static std::vector<float> Distances(const tensor::Matrix& propagated,
                                      const tensor::Matrix& stationary);

  /// Distances under this instance's mode (absolute or relative).
  std::vector<float> ComputeDistances(const tensor::Matrix& propagated,
                                      const tensor::Matrix& stationary) const;

  /// Exit decisions for the active rows: true where Δ < T_s.
  std::vector<bool> ShouldExit(const tensor::Matrix& propagated,
                               const tensor::Matrix& stationary) const;

  float threshold() const { return threshold_; }
  void set_threshold(float t) { threshold_ = t; }
  bool relative() const { return relative_; }

 private:
  float threshold_;
  bool relative_;
};

/// The union upper bound on the personalized propagation depth (Eq. 10),
/// first term: L(v_i, T_s) <= log_{λ2}( T_s * sqrt((d_i+1)/(2m+n)) ).
/// Returns +inf-like large value when λ2 >= 1 or the bound degenerates.
/// Used for diagnostics and tested against measured exit depths.
double DepthUpperBound(float threshold, std::int64_t degree,
                       std::int64_t num_edges, std::int64_t num_nodes,
                       double lambda2);

}  // namespace nai::core

#endif  // NAI_CORE_NAP_DISTANCE_H_
