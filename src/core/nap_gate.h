#ifndef NAI_CORE_NAP_GATE_H_
#define NAI_CORE_NAP_GATE_H_

#include <cstdint>
#include <vector>

#include "src/nn/adam.h"
#include "src/nn/parameter.h"
#include "src/tensor/matrix.h"
#include "src/tensor/random.h"

namespace nai::core {

class ClassifierStack;  // classifier_stack.h

/// Configuration for training the gate stack (paper §III-A-2, Fig. 3).
struct GateTrainConfig {
  int epochs = 60;
  float learning_rate = 1e-2f;
  float weight_decay = 0.0f;
  float gumbel_tau = 1.0f;     ///< Gumbel-softmax temperature
  float penalty_mu = 1000.0f;  ///< µ of footnote 1
  float penalty_phi = 1000.0f; ///< φ of footnote 1
  std::uint64_t seed = 7;
};

/// Gate-based Node-Adaptive Propagation (NAPg).
///
/// One lightweight gate per depth l = 1..k-1 decides whether a node's
/// propagation should stop at l. Gate l consumes the concatenation
/// [X^(l)_i || X̂^(l)_i] (Eq. 11) where X̂ is the stationary feature X^(∞)_i
/// until the node is selected (Eq. 12 — a node that was never selected by a
/// previous gate carries X̂ = X^(∞) unchanged, and a node that *was*
/// selected is forced unselected at all later depths by the penalty term).
/// Consequently the live decision input is always [X^(l) || X^(∞)], and
/// exited nodes simply leave the active set.
///
/// Training is end-to-end across all gates simultaneously with the
/// classifiers frozen: the straight-through Gumbel-softmax gives hard
/// selections in the forward pass and soft gradients in the backward pass.
/// The mutual-exclusivity penalty θ (footnote 1) is implemented exactly for
/// the forward/inference path; its gradient vanishes by construction
/// (sigmoid saturated at ±φ/2), so the backward pass uses the equivalent
/// first-selection product form sel_l = m_l · Π_{j<l}(1 − m_j).
class GateStack {
 public:
  /// Gates for depths 1..max_depth-1 over features of width `feature_dim`.
  GateStack(int max_depth, std::size_t feature_dim, std::uint64_t seed);

  int max_depth() const { return max_depth_; }
  int num_gates() const { return max_depth_ - 1; }

  /// Raw gate preference e^(l) = softmax([x || x_inf] W^(l)) (Eq. 11) for a
  /// batch of rows; column 0 is "stop here", column 1 is "continue".
  tensor::Matrix Preference(int depth, const tensor::Matrix& x_l,
                            const tensor::Matrix& x_inf) const;

  /// Deterministic inference decision (Eq. 13): exit where the stop
  /// preference exceeds the continue preference. `decision_bias` (an
  /// extension knob, 0 by default) shifts the stop logit to trade accuracy
  /// for latency without retraining.
  std::vector<bool> ShouldExit(int depth, const tensor::Matrix& x_l,
                               const tensor::Matrix& x_inf,
                               float decision_bias = 0.0f) const;

  /// The penalty term θ^(l)_i of footnote 1, computed exactly from the
  /// previous depths' stop decisions (mask_prev[j][i] = m^(j)_{i,1}).
  /// Exposed for tests and for the reference forward pass.
  float Penalty(const std::vector<std::vector<float>>& masks_prev,
                std::size_t node, int depth, float mu, float phi) const;

  /// End-to-end gate training (Fig. 3). `stack` is the propagated feature
  /// stack X^(0..k) of the training graph; `stationary` the matching
  /// stationary rows; `rows` the node rows used for training with
  /// `labels[i]` the label of rows[i]. `classifiers` provides the frozen
  /// per-depth heads. Returns the final training loss.
  float Train(const std::vector<tensor::Matrix>& stack,
              const tensor::Matrix& stationary,
              ClassifierStack& classifiers,
              const std::vector<std::int32_t>& rows,
              const std::vector<std::int32_t>& labels,
              const GateTrainConfig& config);

  /// MAC-equivalents of one gate decision over `rows` rows (2f x 2 GEMM).
  std::int64_t DecisionMacs(std::int64_t rows) const;

  nn::Parameter& gate_weight(int depth) { return weights_[depth - 1]; }
  nn::Parameter& gate_bias(int depth) { return biases_[depth - 1]; }

 private:
  int max_depth_;
  std::size_t feature_dim_;
  std::vector<nn::Parameter> weights_;  // per gate: (2f x 2)
  std::vector<nn::Parameter> biases_;   // per gate: (1 x 2)
};

}  // namespace nai::core

#endif  // NAI_CORE_NAP_GATE_H_
