#include "src/core/sharded_inference.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/graph/normalize.h"
#include "src/runtime/error.h"
#include "src/storage/feature_adapters.h"

namespace nai::core {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Hop distance of every shard node from the shard's owned set, by BFS over
/// the shard subgraph. A shortest path from the owned set to a node at halo
/// depth d <= halo_hops runs entirely through the halo, so the induced
/// subgraph preserves the global distances — this is exactly the
/// steal-eligibility data CanServeFromShard needs.
std::vector<std::int32_t> HaloDepths(const graph::GraphShard& shard) {
  if (shard.num_halo() == 0) {
    // Every node is owned (depth 0). IdentityShards shards take this path —
    // they carry no materialized subgraph to BFS over.
    return std::vector<std::int32_t>(shard.nodes.size(), 0);
  }
  std::vector<std::int32_t> depth(shard.nodes.size(), -1);
  std::vector<std::int32_t> frontier;
  for (const std::int32_t global : shard.owned) {
    const std::int32_t local = shard.global_to_local[global];
    depth[local] = 0;
    frontier.push_back(local);
  }
  std::int32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    std::vector<std::int32_t> next;
    for (const std::int32_t u : frontier) {
      for (const std::int32_t* it = shard.graph.neighbors_begin(u);
           it != shard.graph.neighbors_end(u); ++it) {
        if (depth[*it] < 0) {
          depth[*it] = level;
          next.push_back(*it);
        }
      }
    }
    frontier = std::move(next);
  }
  return depth;
}

/// An IdentityShards shard: owns everything, no halo, no materialized
/// subgraph. Its engine is built straight on the snapshot instead of an
/// induced submatrix — the out-of-core fast path.
bool IsIdentityShard(const graph::GraphShard& shard) {
  return shard.num_owned() > 0 && shard.num_halo() == 0 &&
         shard.graph.num_nodes() == 0;
}

}  // namespace

std::shared_ptr<const ShardedNaiEngine::ShardState>
ShardedNaiEngine::BuildState(
    std::shared_ptr<const graph::GraphSnapshot> snapshot,
    graph::ShardedGraph sharded,
    std::shared_ptr<const storage::FeatureStore> features,
    graph::CsrView global_norm, const tensor::Matrix* pooled) {
  auto state = std::make_shared<ShardState>();
  state->snapshot = std::move(snapshot);
  state->version = state->snapshot != nullptr ? state->snapshot->version : 0;
  state->sharded = std::move(sharded);
  state->base_features = std::move(features);
  const std::size_t num_shards = state->sharded.num_shards();

  state->halo_depth.reserve(num_shards);
  state->shard_features.reserve(num_shards);
  state->shard_stationary.reserve(num_shards);
  state->engines.reserve(num_shards);
  for (const graph::GraphShard& shard : state->sharded.shards) {
    state->halo_depth.push_back(HaloDepths(shard));
    if (shard.num_owned() == 0 || IsIdentityShard(shard)) {
      // Empty shards get no views; identity shards serve straight from the
      // snapshot's stores and need no per-shard slice or stationary view.
      state->shard_features.push_back(nullptr);
      state->shard_stationary.push_back(nullptr);
      continue;
    }
    state->shard_features.push_back(
        std::make_shared<storage::SlicedFeatureStore>(state->base_features,
                                                      shard.nodes));
    // Shard-local stationary view: same pooled vector, degrees from the
    // shard graph. Owned nodes (the only ones ever queried) keep their full
    // neighbor list whenever halo_hops >= 1, so their rows are identical to
    // the full-graph state.
    state->shard_stationary.push_back(
        pooled == nullptr
            ? nullptr
            : std::make_unique<StationaryState>(StationaryState::FromPooled(
                  shard.graph, *pooled, gamma_)));
  }
  for (std::size_t s = 0; s < num_shards; ++s) {
    const graph::GraphShard& shard = state->sharded.shards[s];
    if (shard.num_owned() == 0) {
      state->engines.push_back(nullptr);
      continue;
    }
    // Pools persist across swaps; a shard that gains its first owned node
    // (round-robin assignment of an isolated insert) gets one on demand.
    if (pools_[s] == nullptr) {
      pools_[s] = std::make_unique<runtime::ThreadPool>(threads_per_shard_);
    }
    runtime::ExecContext ctx;
    ctx.pool = pools_[s].get();
    if (IsIdentityShard(shard)) {
      // Global and local ids coincide, so the snapshot-backed engine serves
      // the shard's routed queries directly, reading adjacency and features
      // through the snapshot's (possibly memory-mapped) stores.
      state->engines.push_back(std::make_unique<NaiEngine>(
          state->snapshot, *classifiers_, gates_, pooled != nullptr, ctx));
    } else {
      state->engines.push_back(std::make_unique<NaiEngine>(
          graph::InducedSubmatrix(global_norm, shard.nodes,
                                  shard.global_to_local),
          state->shard_features[s], *classifiers_,
          state->shard_stationary[s].get(), gates_, ctx));
    }
    // Carry the INT8 classifier bank across swaps: the quantized stack is
    // full-graph-scoped (it holds no propagated state), so successive
    // states' engines all share the one attachment.
    state->engines.back()->AttachQuantizedClassifiers(quantized_);
  }
  return state;
}

ShardedNaiEngine::ShardedNaiEngine(const graph::Graph& full_graph,
                                   graph::ShardedGraph sharded,
                                   const tensor::Matrix& features, float gamma,
                                   ClassifierStack& classifiers,
                                   const StationaryState* stationary,
                                   const GateStack* gates, int total_threads)
    : classifiers_(&classifiers),
      gates_(gates),
      gamma_(gamma),
      use_stationary_(stationary != nullptr),
      num_shards_(sharded.num_shards()),
      halo_hops_(sharded.halo_hops) {
  if (num_shards_ == 0) {
    throw ValidationError("ShardedNaiEngine: no shards");
  }
  if (static_cast<std::int64_t>(sharded.owner.size()) !=
      full_graph.num_nodes()) {
    throw ValidationError(
        "ShardedNaiEngine: sharding covers " +
        std::to_string(sharded.owner.size()) + " nodes but the graph has " +
        std::to_string(full_graph.num_nodes()));
  }

  // Custom owner vectors may leave shards empty; those can never receive a
  // query, so they get no pool, engine, or thread slice.
  int active_shards = 0;
  for (const graph::GraphShard& shard : sharded.shards) {
    if (shard.num_owned() > 0) ++active_shards;
  }
  const int total = total_threads > 0
                        ? total_threads
                        : runtime::ThreadPool::Default().num_threads();
  threads_per_shard_ = std::max(1, total / std::max(1, active_shards));
  pools_.resize(num_shards_);

  // Shard adjacencies are cut from the full graph's normalized adjacency so
  // halo-boundary edges keep their global-degree weights.
  const graph::Csr global_norm = graph::NormalizedAdjacency(full_graph, gamma);
  state_ = BuildState(
      nullptr, std::move(sharded),
      std::make_shared<storage::BorrowedFeatureStore>(&features),
      global_norm.view(),
      stationary != nullptr ? &stationary->pooled() : nullptr);
}

ShardedNaiEngine::ShardedNaiEngine(
    std::shared_ptr<const graph::GraphSnapshot> snapshot,
    graph::ShardedGraph sharded, ClassifierStack& classifiers,
    const GateStack* gates, bool use_stationary, int total_threads)
    : classifiers_(&classifiers),
      gates_(gates),
      gamma_(snapshot != nullptr ? snapshot->gamma : 0.5f),
      use_stationary_(use_stationary),
      num_shards_(sharded.num_shards()),
      halo_hops_(sharded.halo_hops) {
  if (snapshot == nullptr) {
    throw ValidationError("ShardedNaiEngine: null snapshot");
  }
  if (num_shards_ == 0) {
    throw ValidationError("ShardedNaiEngine: no shards");
  }
  if (static_cast<std::int64_t>(sharded.owner.size()) !=
      snapshot->num_nodes()) {
    throw ValidationError(
        "ShardedNaiEngine: sharding covers " +
        std::to_string(sharded.owner.size()) +
        " nodes but the snapshot graph has " +
        std::to_string(snapshot->num_nodes()));
  }

  int active_shards = 0;
  for (const graph::GraphShard& shard : sharded.shards) {
    if (shard.num_owned() > 0) ++active_shards;
  }
  const int total = total_threads > 0
                        ? total_threads
                        : runtime::ThreadPool::Default().num_threads();
  threads_per_shard_ = std::max(1, total / std::max(1, active_shards));
  pools_.resize(num_shards_);

  const graph::GraphSnapshot& snap = *snapshot;
  state_ = BuildState(
      snapshot, std::move(sharded), snap.feature_store, snap.norm_adj(),
      use_stationary_ ? snap.feature_store->stationary_pooled() : nullptr);
}

std::shared_ptr<const ShardedNaiEngine::ShardState>
ShardedNaiEngine::PinState() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state_;
}

const ShardedNaiEngine::ShardState& ShardedNaiEngine::CurrentState() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return *state_;
}

void ShardedNaiEngine::SwapSnapshot(
    std::shared_ptr<const graph::GraphSnapshot> snapshot) {
  if (snapshot == nullptr) {
    throw ValidationError("ShardedNaiEngine::SwapSnapshot: null snapshot");
  }
  std::lock_guard<std::mutex> swap_lock(swap_mu_);
  const std::shared_ptr<const ShardState> old = PinState();
  if (old->snapshot == nullptr) {
    throw ValidationError(
        "ShardedNaiEngine::SwapSnapshot: engine was built on borrowed graph "
        "views, not a snapshot handle");
  }
  const std::int64_t n_old = static_cast<std::int64_t>(old->sharded.owner.size());
  const std::int64_t n_new = snapshot->num_nodes();
  if (n_new < n_old) {
    throw ValidationError(
        "ShardedNaiEngine::SwapSnapshot: snapshot has " +
        std::to_string(n_new) + " nodes, fewer than the " +
        std::to_string(n_old) + " currently served (graphs only grow)");
  }

  graph::ShardedGraph sharded;
  if (num_shards_ == 1 && IsIdentityShard(old->sharded.shards[0])) {
    // Identity partitions stay identity: no owner votes to take and no
    // subgraph to materialize, whatever the graph grew to.
    sharded = graph::IdentityShards(n_new, halo_hops_);
  } else {
    // Extend the owner assignment: existing owners never move (routing and
    // cache keys stay stable), new nodes go to the shard owning most of
    // their already-assigned neighbors — processed in id order, so edges
    // among new nodes count too. Ties take the lowest shard id; isolated
    // nodes round-robin by id.
    std::vector<std::int32_t> owner = old->sharded.owner;
    owner.resize(n_new);
    const graph::CsrView adj = snapshot->adj();
    std::vector<std::int32_t> votes(num_shards_, 0);
    for (std::int64_t v = n_old; v < n_new; ++v) {
      std::fill(votes.begin(), votes.end(), 0);
      bool any = false;
      for (std::int64_t p = adj.row_ptr[v]; p < adj.row_ptr[v + 1]; ++p) {
        const std::int32_t u = adj.col_idx[p];
        if (u < v) {
          ++votes[owner[u]];
          any = true;
        }
      }
      std::int32_t best = static_cast<std::int32_t>(v % num_shards_);
      if (any) {
        best = 0;
        for (std::size_t s = 1; s < num_shards_; ++s) {
          if (votes[s] > votes[best]) best = static_cast<std::int32_t>(s);
        }
      }
      owner[v] = best;
    }
    sharded = graph::MakeShards(adj, std::move(owner), halo_hops_);
  }
  if (sharded.num_shards() != num_shards_) {
    // MakeShards sizes the shard list by max(owner) + 1; a trailing shard
    // that owned nothing at construction would shrink the list here and
    // desynchronize every per-shard index. Refuse rather than misroute.
    throw ValidationError(
        "ShardedNaiEngine::SwapSnapshot: trailing empty shards are not "
        "supported across swaps");
  }

  const graph::GraphSnapshot& snap = *snapshot;
  std::shared_ptr<const ShardState> next = BuildState(
      snapshot, std::move(sharded), snap.feature_store, snap.norm_adj(),
      use_stationary_ ? snap.feature_store->stationary_pooled() : nullptr);

  std::lock_guard<std::mutex> state_lock(state_mu_);
  state_ = std::move(next);
}

void ShardedNaiEngine::ValidateConfig(const InferenceConfig& config) const {
  // The depth the shard engines will resolve for themselves — validated
  // against the halo via the shared InferenceConfig rule.
  const int t_max = config.effective_t_max(classifiers_->depth());
  if (t_max > halo_hops_) {
    throw ValidationError(
        "ShardedNaiEngine: T_max " + std::to_string(t_max) +
        " exceeds the shard halo of " + std::to_string(halo_hops_) +
        " hops; rebuild the shards with halo_hops >= T_max");
  }
  if (config.int8_classifier && quantized_ == nullptr) {
    throw ValidationError(
        "ShardedNaiEngine: config requests the int8 classifier but no "
        "QuantizedClassifierStack is attached "
        "(AttachQuantizedClassifiers)");
  }
}

void ShardedNaiEngine::AttachQuantizedClassifiers(
    QuantizedClassifierStack* quantized) {
  // Under swap_mu_ so a concurrent SwapSnapshot's BuildState sees either
  // the old or the new attachment consistently with the state it publishes.
  std::lock_guard<std::mutex> lock(swap_mu_);
  quantized_ = quantized;
  const std::shared_ptr<const ShardState> state = PinState();
  for (const std::unique_ptr<NaiEngine>& engine : state->engines) {
    if (engine != nullptr) engine->AttachQuantizedClassifiers(quantized);
  }
}

bool ShardedNaiEngine::CanServeFromShard(std::size_t s, std::int32_t v,
                                         const InferenceConfig& config) const {
  const std::shared_ptr<const ShardState> state = PinState();
  return CanServeFromShard(*state, s, v, config);
}

bool ShardedNaiEngine::CanServeFromShard(const ShardState& state,
                                         std::size_t s, std::int32_t v,
                                         const InferenceConfig& config) const {
  if (v < 0 || static_cast<std::size_t>(v) >= state.sharded.owner.size()) {
    throw std::out_of_range("ShardedNaiEngine: query node " +
                            std::to_string(v) + " outside [0, " +
                            std::to_string(state.sharded.owner.size()) + ")");
  }
  if (s >= state.sharded.num_shards() || state.engines[s] == nullptr) {
    return false;
  }
  if (static_cast<std::size_t>(state.sharded.owner[v]) == s) return true;
  const std::int32_t local = state.sharded.shards[s].global_to_local[v];
  if (local < 0) return false;
  // T-hop BFS membership needs depth(v) + T <= halo_hops; the rows it
  // aggregates (nodes within T-1 of v) then sit strictly inside the halo,
  // where every row is complete. T >= 1 keeps v itself off the outermost
  // ring, whose local degrees (stationary view) undercount the global ones.
  const std::int64_t needed = std::max(
      1, config.effective_t_max(classifiers_->depth()));
  return static_cast<std::int64_t>(state.halo_depth[s][local]) + needed <=
         static_cast<std::int64_t>(state.sharded.halo_hops);
}

InferenceResult ShardedNaiEngine::Infer(const std::vector<std::int32_t>& nodes,
                                        const InferenceConfig& config) {
  const auto run_start = Clock::now();
  ValidateConfig(config);
  const int t_max = config.effective_t_max(classifiers_->depth());

  // One state for the whole call: every batch of this run sees the graph
  // version pinned here, even if a swap lands mid-call.
  const std::shared_ptr<const ShardState> state = PinState();
  const std::size_t num_shards = state->sharded.num_shards();
  const std::int64_t n = static_cast<std::int64_t>(state->sharded.owner.size());

  // Route every query to its owning shard, remembering its slot in the
  // caller's order. Relative order within a shard is preserved, so each
  // shard's batches are a deterministic function of the query list alone.
  std::vector<std::vector<std::int32_t>> shard_queries(num_shards);
  std::vector<std::vector<std::size_t>> shard_slots(num_shards);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::int32_t v = nodes[i];
    if (v < 0 || static_cast<std::int64_t>(v) >= n) {
      throw std::out_of_range("ShardedNaiEngine: query node " +
                              std::to_string(v) + " outside [0, " +
                              std::to_string(n) + ")");
    }
    const std::int32_t s = state->sharded.owner[v];
    shard_queries[s].push_back(state->sharded.shards[s].global_to_local[v]);
    shard_slots[s].push_back(i);
  }

  InferenceResult result;
  result.predictions.resize(nodes.size());
  result.exit_depths.resize(nodes.size());
  result.stats.num_nodes = static_cast<std::int64_t>(nodes.size());
  result.stats.exits_at_depth.assign(t_max, 0);

  // One task per non-empty shard, run concurrently on plain threads (shard
  // pools are distinct, so a pool-dispatched loop would inline the nested
  // kernels instead — see runtime::RunConcurrently): each task pins its
  // engine's dedicated pool, so shard kernels fan out on disjoint workers.
  // Writes go to the caller-order slots of this shard's queries only
  // (disjoint), and the join inside RunConcurrently orders them before the
  // merge; a shard failure is rethrown on the calling thread.
  std::vector<InferenceStats> shard_stats(num_shards);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (shard_queries[s].empty()) continue;
    tasks.push_back([s, &state, &config, &shard_queries, &shard_slots, &result,
                     &shard_stats] {
      InferenceResult local =
          state->engines[s]->Infer(shard_queries[s], config);
      const std::vector<std::size_t>& slots = shard_slots[s];
      for (std::size_t j = 0; j < slots.size(); ++j) {
        result.predictions[slots[j]] = local.predictions[j];
        result.exit_depths[slots[j]] = local.exit_depths[j];
      }
      shard_stats[s] = std::move(local.stats);
    });
  }
  runtime::RunConcurrently(tasks);

  // Deterministic merge in shard order. Accumulate excludes num_nodes and
  // wall_time_ms by design: both describe the whole run and are set exactly
  // once here, never summed over shards.
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (!shard_queries[s].empty()) result.stats.Accumulate(shard_stats[s]);
  }
  result.stats.wall_time_ms = MsSince(run_start);
  return result;
}

InferenceResult ShardedNaiEngine::InferMixed(
    const std::vector<ConfiguredQuery>& queries) {
  const auto run_start = Clock::now();
  // Every distinct config must survive the halo check before any shard
  // starts serving (the linear scan mirrors NaiEngine::InferMixed).
  std::vector<const InferenceConfig*> seen;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const InferenceConfig* c = queries[i].config;
    if (c == nullptr) {
      throw ValidationError("ShardedNaiEngine::InferMixed: query " +
                            std::to_string(i) + " has no config");
    }
    if (std::find(seen.begin(), seen.end(), c) == seen.end()) {
      ValidateConfig(*c);
      seen.push_back(c);
    }
  }

  const std::shared_ptr<const ShardState> state = PinState();
  const std::size_t num_shards = state->sharded.num_shards();
  const std::int64_t n = static_cast<std::int64_t>(state->sharded.owner.size());

  // Route by owning shard exactly as Infer does, but carry each query's
  // config along (shard-local node ids, caller-order slots).
  std::vector<std::vector<ConfiguredQuery>> shard_queries(num_shards);
  std::vector<std::vector<std::size_t>> shard_slots(num_shards);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::int32_t v = queries[i].node;
    if (v < 0 || static_cast<std::int64_t>(v) >= n) {
      throw std::out_of_range("ShardedNaiEngine: query node " +
                              std::to_string(v) + " outside [0, " +
                              std::to_string(n) + ")");
    }
    const std::int32_t s = state->sharded.owner[v];
    shard_queries[s].push_back(
        {state->sharded.shards[s].global_to_local[v], queries[i].config});
    shard_slots[s].push_back(i);
  }

  InferenceResult result;
  result.predictions.resize(queries.size());
  result.exit_depths.resize(queries.size());
  result.stats.num_nodes = static_cast<std::int64_t>(queries.size());

  std::vector<InferenceStats> shard_stats(num_shards);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (shard_queries[s].empty()) continue;
    tasks.push_back([s, &state, &shard_queries, &shard_slots, &result,
                     &shard_stats] {
      InferenceResult local = state->engines[s]->InferMixed(shard_queries[s]);
      const std::vector<std::size_t>& slots = shard_slots[s];
      for (std::size_t j = 0; j < slots.size(); ++j) {
        result.predictions[slots[j]] = local.predictions[j];
        result.exit_depths[slots[j]] = local.exit_depths[j];
      }
      shard_stats[s] = std::move(local.stats);
    });
  }
  runtime::RunConcurrently(tasks);

  for (std::size_t s = 0; s < num_shards; ++s) {
    if (!shard_queries[s].empty()) result.stats.Accumulate(shard_stats[s]);
  }
  result.stats.wall_time_ms = MsSince(run_start);
  return result;
}

}  // namespace nai::core
