#include "src/core/sharded_inference.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/graph/normalize.h"

namespace nai::core {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

ShardedNaiEngine::ShardedNaiEngine(const graph::Graph& full_graph,
                                   graph::ShardedGraph sharded,
                                   const tensor::Matrix& features, float gamma,
                                   ClassifierStack& classifiers,
                                   const StationaryState* stationary,
                                   const GateStack* gates, int total_threads)
    : sharded_(std::move(sharded)), classifiers_(&classifiers) {
  const std::size_t num_shards = sharded_.num_shards();
  if (num_shards == 0) {
    throw std::invalid_argument("ShardedNaiEngine: no shards");
  }
  if (static_cast<std::int64_t>(sharded_.owner.size()) !=
      full_graph.num_nodes()) {
    throw std::invalid_argument(
        "ShardedNaiEngine: sharding covers " +
        std::to_string(sharded_.owner.size()) + " nodes but the graph has " +
        std::to_string(full_graph.num_nodes()));
  }

  // Custom owner vectors may leave shards empty; those can never receive a
  // query, so they get no pool, engine, or thread slice.
  int active_shards = 0;
  for (const graph::GraphShard& shard : sharded_.shards) {
    if (shard.num_owned() > 0) ++active_shards;
  }
  const int total = total_threads > 0
                        ? total_threads
                        : runtime::ThreadPool::Default().num_threads();
  threads_per_shard_ = std::max(1, total / std::max(1, active_shards));

  // Shard adjacencies are cut from the full graph's normalized adjacency so
  // halo-boundary edges keep their global-degree weights.
  const graph::Csr global_norm = graph::NormalizedAdjacency(full_graph, gamma);

  shard_features_.reserve(num_shards);
  shard_stationary_.reserve(num_shards);
  halo_depth_.reserve(num_shards);
  pools_.reserve(num_shards);
  engines_.reserve(num_shards);
  for (const graph::GraphShard& shard : sharded_.shards) {
    // Hop distance of every shard node from the owned set, by BFS over the
    // shard subgraph. A shortest path from the owned set to a node at halo
    // depth d <= halo_hops runs entirely through the halo, so the induced
    // subgraph preserves the global distances — this is exactly the
    // steal-eligibility data CanServeFromShard needs.
    std::vector<std::int32_t> depth(shard.nodes.size(), -1);
    std::vector<std::int32_t> frontier;
    for (const std::int32_t global : shard.owned) {
      const std::int32_t local = shard.global_to_local[global];
      depth[local] = 0;
      frontier.push_back(local);
    }
    std::int32_t level = 0;
    while (!frontier.empty()) {
      ++level;
      std::vector<std::int32_t> next;
      for (const std::int32_t u : frontier) {
        for (const std::int32_t* it = shard.graph.neighbors_begin(u);
             it != shard.graph.neighbors_end(u); ++it) {
          if (depth[*it] < 0) {
            depth[*it] = level;
            next.push_back(*it);
          }
        }
      }
      frontier = std::move(next);
    }
    halo_depth_.push_back(std::move(depth));

    if (shard.num_owned() == 0) {
      shard_features_.emplace_back();
      shard_stationary_.push_back(nullptr);
      continue;
    }
    shard_features_.push_back(features.GatherRows(shard.nodes));
    // Shard-local stationary view: same pooled vector, degrees from the
    // shard graph. Owned nodes (the only ones ever queried) keep their full
    // neighbor list whenever halo_hops >= 1, so their rows are identical to
    // the full-graph state.
    shard_stationary_.push_back(
        stationary == nullptr
            ? nullptr
            : std::make_unique<StationaryState>(StationaryState::FromPooled(
                  shard.graph, stationary->pooled(), stationary->gamma())));
  }
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (sharded_.shards[s].num_owned() == 0) {
      pools_.push_back(nullptr);
      engines_.push_back(nullptr);
      continue;
    }
    pools_.push_back(
        std::make_unique<runtime::ThreadPool>(threads_per_shard_));
    runtime::ExecContext ctx;
    ctx.pool = pools_.back().get();
    engines_.push_back(std::make_unique<NaiEngine>(
        graph::InducedSubmatrix(global_norm, sharded_.shards[s].nodes,
                                sharded_.shards[s].global_to_local),
        shard_features_[s], *classifiers_, shard_stationary_[s].get(), gates,
        ctx));
  }
}

void ShardedNaiEngine::ValidateConfig(const InferenceConfig& config) const {
  // The depth the shard engines will resolve for themselves — validated
  // against the halo via the shared InferenceConfig rule.
  const int t_max = config.effective_t_max(classifiers_->depth());
  if (t_max > sharded_.halo_hops) {
    throw std::invalid_argument(
        "ShardedNaiEngine: T_max " + std::to_string(t_max) +
        " exceeds the shard halo of " + std::to_string(sharded_.halo_hops) +
        " hops; rebuild the shards with halo_hops >= T_max");
  }
}

bool ShardedNaiEngine::CanServeFromShard(std::size_t s, std::int32_t v,
                                         const InferenceConfig& config) const {
  if (v < 0 ||
      static_cast<std::size_t>(v) >= sharded_.owner.size()) {
    throw std::out_of_range("ShardedNaiEngine: query node " +
                            std::to_string(v) + " outside [0, " +
                            std::to_string(sharded_.owner.size()) + ")");
  }
  if (s >= sharded_.num_shards() || engines_[s] == nullptr) return false;
  if (static_cast<std::size_t>(sharded_.owner[v]) == s) return true;
  const std::int32_t local = sharded_.shards[s].global_to_local[v];
  if (local < 0) return false;
  // T-hop BFS membership needs depth(v) + T <= halo_hops; the rows it
  // aggregates (nodes within T-1 of v) then sit strictly inside the halo,
  // where every row is complete. T >= 1 keeps v itself off the outermost
  // ring, whose local degrees (stationary view) undercount the global ones.
  const std::int64_t needed = std::max(
      1, config.effective_t_max(classifiers_->depth()));
  return static_cast<std::int64_t>(halo_depth_[s][local]) + needed <=
         static_cast<std::int64_t>(sharded_.halo_hops);
}

InferenceResult ShardedNaiEngine::Infer(const std::vector<std::int32_t>& nodes,
                                        const InferenceConfig& config) {
  const auto run_start = Clock::now();
  ValidateConfig(config);
  const int t_max = config.effective_t_max(classifiers_->depth());

  const std::size_t num_shards = sharded_.num_shards();
  const std::int64_t n = static_cast<std::int64_t>(sharded_.owner.size());

  // Route every query to its owning shard, remembering its slot in the
  // caller's order. Relative order within a shard is preserved, so each
  // shard's batches are a deterministic function of the query list alone.
  std::vector<std::vector<std::int32_t>> shard_queries(num_shards);
  std::vector<std::vector<std::size_t>> shard_slots(num_shards);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::int32_t v = nodes[i];
    if (v < 0 || static_cast<std::int64_t>(v) >= n) {
      throw std::out_of_range("ShardedNaiEngine: query node " +
                              std::to_string(v) + " outside [0, " +
                              std::to_string(n) + ")");
    }
    const std::int32_t s = sharded_.owner[v];
    shard_queries[s].push_back(sharded_.shards[s].global_to_local[v]);
    shard_slots[s].push_back(i);
  }

  InferenceResult result;
  result.predictions.resize(nodes.size());
  result.exit_depths.resize(nodes.size());
  result.stats.num_nodes = static_cast<std::int64_t>(nodes.size());
  result.stats.exits_at_depth.assign(t_max, 0);

  // One task per non-empty shard, run concurrently on plain threads (shard
  // pools are distinct, so a pool-dispatched loop would inline the nested
  // kernels instead — see runtime::RunConcurrently): each task pins its
  // engine's dedicated pool, so shard kernels fan out on disjoint workers.
  // Writes go to the caller-order slots of this shard's queries only
  // (disjoint), and the join inside RunConcurrently orders them before the
  // merge; a shard failure is rethrown on the calling thread.
  std::vector<InferenceStats> shard_stats(num_shards);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (shard_queries[s].empty()) continue;
    tasks.push_back([this, s, &config, &shard_queries, &shard_slots, &result,
                     &shard_stats] {
      InferenceResult local = engines_[s]->Infer(shard_queries[s], config);
      const std::vector<std::size_t>& slots = shard_slots[s];
      for (std::size_t j = 0; j < slots.size(); ++j) {
        result.predictions[slots[j]] = local.predictions[j];
        result.exit_depths[slots[j]] = local.exit_depths[j];
      }
      shard_stats[s] = std::move(local.stats);
    });
  }
  runtime::RunConcurrently(tasks);

  // Deterministic merge in shard order. Accumulate excludes num_nodes and
  // wall_time_ms by design: both describe the whole run and are set exactly
  // once here, never summed over shards.
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (!shard_queries[s].empty()) result.stats.Accumulate(shard_stats[s]);
  }
  result.stats.wall_time_ms = MsSince(run_start);
  return result;
}

InferenceResult ShardedNaiEngine::InferMixed(
    const std::vector<ConfiguredQuery>& queries) {
  const auto run_start = Clock::now();
  // Every distinct config must survive the halo check before any shard
  // starts serving (the linear scan mirrors NaiEngine::InferMixed).
  std::vector<const InferenceConfig*> seen;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const InferenceConfig* c = queries[i].config;
    if (c == nullptr) {
      throw std::invalid_argument("ShardedNaiEngine::InferMixed: query " +
                                  std::to_string(i) + " has no config");
    }
    if (std::find(seen.begin(), seen.end(), c) == seen.end()) {
      ValidateConfig(*c);
      seen.push_back(c);
    }
  }

  const std::size_t num_shards = sharded_.num_shards();
  const std::int64_t n = static_cast<std::int64_t>(sharded_.owner.size());

  // Route by owning shard exactly as Infer does, but carry each query's
  // config along (shard-local node ids, caller-order slots).
  std::vector<std::vector<ConfiguredQuery>> shard_queries(num_shards);
  std::vector<std::vector<std::size_t>> shard_slots(num_shards);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::int32_t v = queries[i].node;
    if (v < 0 || static_cast<std::int64_t>(v) >= n) {
      throw std::out_of_range("ShardedNaiEngine: query node " +
                              std::to_string(v) + " outside [0, " +
                              std::to_string(n) + ")");
    }
    const std::int32_t s = sharded_.owner[v];
    shard_queries[s].push_back(
        {sharded_.shards[s].global_to_local[v], queries[i].config});
    shard_slots[s].push_back(i);
  }

  InferenceResult result;
  result.predictions.resize(queries.size());
  result.exit_depths.resize(queries.size());
  result.stats.num_nodes = static_cast<std::int64_t>(queries.size());

  std::vector<InferenceStats> shard_stats(num_shards);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (shard_queries[s].empty()) continue;
    tasks.push_back([this, s, &shard_queries, &shard_slots, &result,
                     &shard_stats] {
      InferenceResult local = engines_[s]->InferMixed(shard_queries[s]);
      const std::vector<std::size_t>& slots = shard_slots[s];
      for (std::size_t j = 0; j < slots.size(); ++j) {
        result.predictions[slots[j]] = local.predictions[j];
        result.exit_depths[slots[j]] = local.exit_depths[j];
      }
      shard_stats[s] = std::move(local.stats);
    });
  }
  runtime::RunConcurrently(tasks);

  for (std::size_t s = 0; s < num_shards; ++s) {
    if (!shard_queries[s].empty()) result.stats.Accumulate(shard_stats[s]);
  }
  result.stats.wall_time_ms = MsSince(run_start);
  return result;
}

}  // namespace nai::core
