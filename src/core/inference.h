#ifndef NAI_CORE_INFERENCE_H_
#define NAI_CORE_INFERENCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/classifier_stack.h"
#include "src/core/nap_distance.h"
#include "src/core/nap_gate.h"
#include "src/core/stationary.h"
#include "src/graph/delta.h"
#include "src/graph/graph.h"
#include "src/graph/normalize.h"
#include "src/graph/sampler.h"
#include "src/runtime/exec_context.h"
#include "src/storage/store.h"
#include "src/tensor/matrix.h"

namespace nai::core {

/// Which Node-Adaptive Propagation module terminates propagation.
enum class NapKind {
  kNone,      ///< fixed-depth propagation to t_max ("NAI w/o NAP" / vanilla)
  kDistance,  ///< NAPd: explicit distance to the stationary state (Eq. 8-9)
  kGate,      ///< NAPg: learned gates (Eq. 11-13)
};

/// Inference-time hyper-parameters (Algorithm 1).
struct InferenceConfig {
  NapKind nap = NapKind::kDistance;
  float threshold = 0.1f;   ///< T_s for NAPd
  /// Scale-free NAPd distances (see NapDistance); false = plain Eq. 8.
  bool relative_distance = false;
  float gate_bias = 0.0f;   ///< optional stop-logit bias for NAPg (0 = paper)
  int t_min = 1;            ///< minimum propagation depth T_min
  int t_max = 0;            ///< maximum propagation depth T_max (0 = use k)
  std::size_t batch_size = 500;
  /// Re-derive the supporting set from the still-active nodes after each
  /// exit round (saves propagation work; disable to ablate).
  bool shrink_active_support = true;
  /// Maximum number of independent batches executed concurrently on the
  /// engine's thread pool: 1 (or negative) runs batches sequentially (the
  /// default), 0 means one shard per pool thread, n > 1 caps the shards at
  /// n. Results are bit-identical to the sequential run for every value
  /// (see NaiEngine::Infer).
  int inter_batch_parallelism = 1;
  /// Classify exited nodes with the engine's attached INT8 classifier bank
  /// (QuantizedClassifierStack) instead of the float heads — the arithmetic
  /// of the serving tier kThroughputFirst. Propagation and NAP decisions
  /// stay in float, so exit depths are unchanged; only the classifier MLP
  /// runs INT8. Engines reject configs with this set when no quantized
  /// stack is attached (nai::ValidationError).
  bool int8_classifier = false;

  /// The depth the engine actually propagates to for a classifier bank of
  /// depth `k` (t_max = 0 means "use k"; larger values clamp to k). The one
  /// resolution rule shared by NaiEngine and ShardedNaiEngine — the latter's
  /// halo-sufficiency check must validate exactly the depth the shard
  /// engines will BFS with.
  int effective_t_max(int k) const {
    return t_max <= 0 || t_max > k ? k : t_max;
  }
};

/// Cost and behaviour counters for one inference run. MACs are
/// multiply-accumulate counts of what the engine actually executed.
struct InferenceStats {
  std::int64_t num_nodes = 0;
  std::int64_t propagation_macs = 0;    ///< online SpMM work
  std::int64_t nap_macs = 0;            ///< distance or gate decisions
  std::int64_t stationary_macs = 0;     ///< X^(∞) rows (rank-1 form)
  std::int64_t classification_macs = 0; ///< classifier forward passes
  /// Per-stage timers are *busy* times summed over batches (and over
  /// concurrent shards when inter_batch_parallelism > 1), so their sum can
  /// exceed the run's elapsed time; use wall_time_ms for latency.
  double fp_time_ms = 0.0;              ///< propagation + NAP decisions
  double sample_time_ms = 0.0;          ///< supporting-node sampling
  double stationary_time_ms = 0.0;
  double classify_time_ms = 0.0;
  /// Elapsed wall-clock of the whole Infer call (never summed per shard).
  double wall_time_ms = 0.0;
  /// exits_at_depth[l-1] = nodes predicted by f^(l) (Table VI rows).
  std::vector<std::int64_t> exits_at_depth;

  std::int64_t total_macs() const {
    return propagation_macs + nap_macs + stationary_macs +
           classification_macs;
  }
  std::int64_t fp_macs() const { return propagation_macs + nap_macs; }
  double total_time_ms() const {
    return fp_time_ms + sample_time_ms + stationary_time_ms +
           classify_time_ms;
  }
  double average_depth() const;

  /// Adds `other`'s counters, stage timers and per-depth exit histogram
  /// into this one (num_nodes and wall_time_ms excluded — they describe
  /// the whole run, not a shard). Used to merge per-shard stats
  /// deterministically after parallel batch execution; all integer
  /// counters are order-independent.
  void Accumulate(const InferenceStats& other);
};

/// One query bound to the inference configuration it must be served with —
/// the unit of work of the streaming front-end (src/serve/), where QoS
/// classes resolve to per-request configs. `config` is borrowed and must
/// outlive the InferMixed call; queries sharing a config pointer are
/// co-batched.
struct ConfiguredQuery {
  std::int32_t node = 0;
  const InferenceConfig* config = nullptr;
};

struct InferenceResult {
  std::vector<std::int32_t> predictions;  ///< aligned with the query nodes
  /// Personalized propagation depth L(v_i) actually used per query node
  /// (aligned with `predictions`) — the per-node view of Table VI.
  std::vector<std::int32_t> exit_depths;
  InferenceStats stats;
};

/// Everything optional about engine construction, gathered so the one
/// blessed entry point (NaiEngine::FromSnapshot) stays a two-argument call
/// in the common case. Defaults serve NAPd/NAPnone float inference on the
/// calling thread's default pool.
struct EngineOptions {
  /// Trained NAPg gates; required only for NapKind::kGate configs. Borrowed.
  const GateStack* gates = nullptr;
  /// Build the stationary view from the snapshot's pooled vector. Disable
  /// only for NapKind::kNone-only serving (skips an O(n)-free rank-1 setup).
  bool use_stationary = true;
  /// INT8 classifier bank for `int8_classifier` configs. Borrowed.
  QuantizedClassifierStack* quantized = nullptr;
  runtime::ExecContext ctx = {};
};

/// The NAI online-propagation inference engine (Algorithm 1).
///
/// The blessed way to build one is `NaiEngine::FromSnapshot`: the engine
/// holds the graph through a shared GraphSnapshot handle and reads
/// adjacency and features through the storage interfaces
/// (storage::GraphStore / storage::FeatureStore), so serving is identical —
/// bit-exact — whether the snapshot is backed by in-memory pooled vectors
/// or a memory-mapped file. The classifier bank, gates and quantized stack
/// are borrowed and must outlive the engine.
///
/// Batches are processed independently: supporting nodes are sampled to
/// T_max hops, features are propagated hop by hop over the induced
/// subgraph, and after every hop in [T_min, T_max) the NAP module retires
/// nodes whose features are smooth enough, which shrinks the remaining
/// propagation frontier.
///
/// Threading: kernels run on the pool of the engine's ExecContext, and
/// `InferenceConfig::inter_batch_parallelism` additionally executes the
/// independent batches concurrently (each shard gets its own sampler and
/// local stats; predictions/exit_depths are written to pre-sized slots and
/// stats merged in shard order, so results are bit-exact and
/// order-independent for every thread count).
class NaiEngine {
 public:
  /// The consolidated construction entry point: serve the graph held by
  /// `snapshot` (any storage backend) with the given classifier bank.
  /// Everything else — gates, stationary view, INT8 bank, exec context —
  /// rides in `options`. Throws nai::ValidationError on a null snapshot or
  /// when `use_stationary` is set but the snapshot's store carries no
  /// pooled stationary vector.
  static NaiEngine FromSnapshot(
      std::shared_ptr<const graph::GraphSnapshot> snapshot,
      ClassifierStack& classifiers, EngineOptions options = {});

  /// Deprecated: prefer FromSnapshot (wrap the graph with
  /// graph::MakeSnapshot). Borrows the graph and features; computes the
  /// normalized adjacency at construction.
  NaiEngine(const graph::Graph& full_graph, const tensor::Matrix& features,
            float gamma, ClassifierStack& classifiers,
            const StationaryState* stationary, const GateStack* gates,
            runtime::ExecContext ctx = {});

  /// Deprecated: prefer FromSnapshot. Takes the normalized adjacency
  /// directly instead of computing it from a graph. This is how
  /// ShardedNaiEngine builds its per-shard engines: the shard's adjacency
  /// is a submatrix of the *full graph's* normalized adjacency, so edge
  /// weights reflect global degrees (re-normalizing the induced subgraph
  /// would distort halo-boundary weights and break bit-exactness with the
  /// unsharded engine). `features` rows and `stationary` node ids are in
  /// the adjacency's id space.
  NaiEngine(graph::Csr norm_adj, const tensor::Matrix& features,
            ClassifierStack& classifiers, const StationaryState* stationary,
            const GateStack* gates, runtime::ExecContext ctx = {});

  /// Store-fed variant of the adjacency constructor: feature rows come
  /// through a FeatureStore the engine shares ownership of. This is the
  /// sharded engine's per-shard path — a storage::SlicedFeatureStore over
  /// the snapshot's (possibly memory-mapped) feature store, so shards never
  /// gather private feature copies.
  NaiEngine(graph::Csr norm_adj,
            std::shared_ptr<const storage::FeatureStore> features,
            ClassifierStack& classifiers, const StationaryState* stationary,
            const GateStack* gates, runtime::ExecContext ctx = {});

  /// Deprecated: prefer FromSnapshot (this is its implementation; the
  /// positional flags predate EngineOptions).
  NaiEngine(std::shared_ptr<const graph::GraphSnapshot> snapshot,
            ClassifierStack& classifiers, const GateStack* gates,
            bool use_stationary = true, runtime::ExecContext ctx = {});

  /// Re-points a snapshot-backed engine at a newer snapshot: rebuilds the
  /// stationary view and sampler against the new graph and releases the old
  /// handle. Not thread-safe — the caller must ensure no Infer is in
  /// flight (the sharded engine instead builds fresh per-shard engines and
  /// swaps them atomically; this entry serves the unsharded API). Throws
  /// nai::ValidationError on an engine built from borrowed views or on a
  /// null snapshot.
  void SwapSnapshot(std::shared_ptr<const graph::GraphSnapshot> snapshot);

  /// The snapshot this engine serves from; nullptr for engines built on
  /// borrowed graph views (the pre-snapshot constructors).
  const std::shared_ptr<const graph::GraphSnapshot>& snapshot() const {
    return snapshot_;
  }

  /// Attaches (or detaches, with nullptr) the INT8 classifier bank that
  /// configs with `int8_classifier` resolve to. Borrowed; must outlive the
  /// engine or the next attach. Not thread-safe — attach before serving,
  /// like the rest of engine setup.
  void AttachQuantizedClassifiers(QuantizedClassifierStack* quantized) {
    quantized_ = quantized;
  }
  const QuantizedClassifierStack* quantized_classifiers() const {
    return quantized_;
  }

  /// Classifies `nodes` (global ids in the full graph). Thread-compatible
  /// but not thread-safe (shared sampler scratch). Throws
  /// nai::ValidationError when `config.int8_classifier` is set with no
  /// quantized stack attached.
  InferenceResult Infer(const std::vector<std::int32_t>& nodes,
                        const InferenceConfig& config);

  /// Per-query-config entry point: classifies queries that each carry their
  /// own InferenceConfig. Queries are grouped by config pointer (stable:
  /// first-appearance group order, caller order within a group) and every
  /// group runs through Infer, so each group's predictions/exit depths are
  /// bit-identical to a direct Infer call on that group's node list.
  /// Results are scattered back into caller order; stats are the groups'
  /// merged via InferenceStats::Accumulate (num_nodes / wall_time_ms set
  /// once for the whole call). Throws nai::ValidationError on a null
  /// config pointer.
  InferenceResult InferMixed(const std::vector<ConfiguredQuery>& queries);

  /// View of the normalized adjacency the engine propagates over (points
  /// into the snapshot's store or the engine's owned copy).
  graph::CsrView norm_adj() const { return norm_adj_; }

  const runtime::ExecContext& exec_context() const { return ctx_; }

 private:
  void InferBatch(const std::vector<std::int32_t>& batch,
                  const InferenceConfig& config, int t_max,
                  graph::SupportSampler& sampler,
                  std::vector<std::int32_t>& out_predictions,
                  std::vector<std::int32_t>& out_depths,
                  InferenceStats& stats);

  /// Set when snapshot-backed: the handle that keeps every borrowed view
  /// below alive; null for the borrowed-view constructors.
  std::shared_ptr<const graph::GraphSnapshot> snapshot_;
  /// The stationary view a snapshot-backed engine derives from the
  /// snapshot's pooled vector (null otherwise; `stationary_` points here).
  std::unique_ptr<StationaryState> owned_stationary_;
  /// Feature access always goes through a FeatureStore. Exactly one of:
  /// the snapshot's store (kept alive by snapshot_), a shared store
  /// (shared_features_), or an owned adapter over a borrowed matrix
  /// (owned_features_, for the deprecated matrix constructors).
  std::shared_ptr<const storage::FeatureStore> shared_features_;
  std::unique_ptr<const storage::FeatureStore> owned_features_;
  const storage::FeatureStore* features_;
  ClassifierStack* classifiers_;
  QuantizedClassifierStack* quantized_ = nullptr;
  const StationaryState* stationary_;
  const GateStack* gates_;
  runtime::ExecContext ctx_;
  /// Owned storage for the borrowed-view constructors; snapshot-backed
  /// engines leave it empty and point norm_adj_ into the snapshot's store.
  graph::Csr owned_norm_adj_;
  graph::CsrView norm_adj_;
  graph::SupportSampler sampler_;
};

}  // namespace nai::core

#endif  // NAI_CORE_INFERENCE_H_
