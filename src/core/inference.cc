#include "src/core/inference.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <string>
#include <utility>

#include "src/runtime/error.h"
#include "src/storage/feature_adapters.h"
#include "src/tensor/ops.h"

namespace nai::core {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Local ids within `radius` hops of the seed locals, walking the *global*
/// adjacency through the support mapping, ascending. `visited` is
/// caller-provided scratch sized |support|, all false on entry and restored
/// to all false on exit.
std::vector<std::int32_t> RadiusBfs(
    graph::CsrView global, const std::vector<std::int32_t>& nodes,
    const std::vector<std::int32_t>& global_to_local,
    const std::vector<std::int32_t>& seeds, int radius,
    std::vector<char>& visited) {
  std::vector<std::int32_t> reached;
  reached.reserve(seeds.size() * 4);
  for (const std::int32_t s : seeds) {
    if (!visited[s]) {
      visited[s] = 1;
      reached.push_back(s);
    }
  }
  std::size_t frontier_begin = 0;
  for (int hop = 0; hop < radius; ++hop) {
    const std::size_t frontier_end = reached.size();
    for (std::size_t i = frontier_begin; i < frontier_end; ++i) {
      const std::int32_t g = nodes[reached[i]];
      for (std::int64_t p = global.row_ptr[g]; p < global.row_ptr[g + 1];
           ++p) {
        const std::int32_t u = global_to_local[global.col_idx[p]];
        if (u >= 0 && !visited[u]) {
          visited[u] = 1;
          reached.push_back(u);
        }
      }
    }
    frontier_begin = frontier_end;
  }
  for (const std::int32_t v : reached) visited[v] = 0;
  std::sort(reached.begin(), reached.end());
  return reached;
}

/// Sum of global-row nnz over a list of local rows.
std::int64_t RowListNnz(graph::CsrView global,
                        const std::vector<std::int32_t>& nodes,
                        const std::vector<std::int32_t>& local_rows) {
  std::int64_t nnz = 0;
  for (const std::int32_t r : local_rows) nnz += global.RowNnz(nodes[r]);
  return nnz;
}

const graph::GraphSnapshot& RequireSnapshot(
    const std::shared_ptr<const graph::GraphSnapshot>& snapshot) {
  if (snapshot == nullptr) {
    throw ValidationError("NaiEngine: null snapshot");
  }
  return *snapshot;
}

/// Stationary view over the snapshot's pooled vector, whatever backend the
/// snapshot's stores have.
std::unique_ptr<StationaryState> BuildStationary(
    const graph::GraphSnapshot& snapshot) {
  const tensor::Matrix* pooled = snapshot.feature_store->stationary_pooled();
  if (pooled == nullptr) {
    throw ValidationError(
        "NaiEngine: snapshot's feature store carries no pooled stationary "
        "vector; pass EngineOptions{.use_stationary = false} for "
        "NapKind::kNone-only serving");
  }
  return std::make_unique<StationaryState>(
      StationaryState::FromPooled(snapshot.adj(), *pooled, snapshot.gamma));
}

}  // namespace

double InferenceStats::average_depth() const {
  std::int64_t weighted = 0;
  std::int64_t total = 0;
  for (std::size_t l = 0; l < exits_at_depth.size(); ++l) {
    weighted += static_cast<std::int64_t>(l + 1) * exits_at_depth[l];
    total += exits_at_depth[l];
  }
  return total == 0 ? 0.0
                    : static_cast<double>(weighted) / static_cast<double>(total);
}

void InferenceStats::Accumulate(const InferenceStats& other) {
  propagation_macs += other.propagation_macs;
  nap_macs += other.nap_macs;
  stationary_macs += other.stationary_macs;
  classification_macs += other.classification_macs;
  fp_time_ms += other.fp_time_ms;
  sample_time_ms += other.sample_time_ms;
  stationary_time_ms += other.stationary_time_ms;
  classify_time_ms += other.classify_time_ms;
  if (exits_at_depth.size() < other.exits_at_depth.size()) {
    exits_at_depth.resize(other.exits_at_depth.size(), 0);
  }
  for (std::size_t l = 0; l < other.exits_at_depth.size(); ++l) {
    exits_at_depth[l] += other.exits_at_depth[l];
  }
}

NaiEngine NaiEngine::FromSnapshot(
    std::shared_ptr<const graph::GraphSnapshot> snapshot,
    ClassifierStack& classifiers, EngineOptions options) {
  NaiEngine engine(std::move(snapshot), classifiers, options.gates,
                   options.use_stationary, options.ctx);
  engine.AttachQuantizedClassifiers(options.quantized);
  return engine;
}

NaiEngine::NaiEngine(const graph::Graph& full_graph,
                     const tensor::Matrix& features, float gamma,
                     ClassifierStack& classifiers,
                     const StationaryState* stationary, const GateStack* gates,
                     runtime::ExecContext ctx)
    : owned_features_(
          std::make_unique<storage::BorrowedFeatureStore>(&features)),
      features_(owned_features_.get()),
      classifiers_(&classifiers),
      stationary_(stationary),
      gates_(gates),
      ctx_(ctx),
      owned_norm_adj_(graph::NormalizedAdjacency(full_graph, gamma)),
      norm_adj_(owned_norm_adj_.view()),
      sampler_(norm_adj_) {}

NaiEngine::NaiEngine(graph::Csr norm_adj, const tensor::Matrix& features,
                     ClassifierStack& classifiers,
                     const StationaryState* stationary, const GateStack* gates,
                     runtime::ExecContext ctx)
    : owned_features_(
          std::make_unique<storage::BorrowedFeatureStore>(&features)),
      features_(owned_features_.get()),
      classifiers_(&classifiers),
      stationary_(stationary),
      gates_(gates),
      ctx_(ctx),
      owned_norm_adj_(std::move(norm_adj)),
      norm_adj_(owned_norm_adj_.view()),
      sampler_(norm_adj_) {}

NaiEngine::NaiEngine(graph::Csr norm_adj,
                     std::shared_ptr<const storage::FeatureStore> features,
                     ClassifierStack& classifiers,
                     const StationaryState* stationary, const GateStack* gates,
                     runtime::ExecContext ctx)
    : shared_features_(std::move(features)),
      features_(shared_features_.get()),
      classifiers_(&classifiers),
      stationary_(stationary),
      gates_(gates),
      ctx_(ctx),
      owned_norm_adj_(std::move(norm_adj)),
      norm_adj_(owned_norm_adj_.view()),
      sampler_(norm_adj_) {
  if (features_ == nullptr) {
    throw ValidationError("NaiEngine: null feature store");
  }
}

NaiEngine::NaiEngine(std::shared_ptr<const graph::GraphSnapshot> snapshot,
                     ClassifierStack& classifiers, const GateStack* gates,
                     bool use_stationary, runtime::ExecContext ctx)
    : snapshot_((RequireSnapshot(snapshot), std::move(snapshot))),
      owned_stationary_(use_stationary ? BuildStationary(*snapshot_)
                                       : nullptr),
      features_(snapshot_->feature_store.get()),
      classifiers_(&classifiers),
      stationary_(owned_stationary_.get()),
      gates_(gates),
      ctx_(ctx),
      norm_adj_(snapshot_->norm_adj()),
      sampler_(norm_adj_) {}

void NaiEngine::SwapSnapshot(
    std::shared_ptr<const graph::GraphSnapshot> snapshot) {
  if (snapshot_ == nullptr) {
    throw ValidationError(
        "NaiEngine::SwapSnapshot: engine was built on borrowed graph views, "
        "not a snapshot handle");
  }
  if (snapshot == nullptr) {
    throw ValidationError("NaiEngine::SwapSnapshot: null snapshot");
  }
  const bool use_stationary = owned_stationary_ != nullptr;
  snapshot_ = std::move(snapshot);
  owned_stationary_ =
      use_stationary ? BuildStationary(*snapshot_) : nullptr;
  stationary_ = owned_stationary_.get();
  features_ = snapshot_->feature_store.get();
  norm_adj_ = snapshot_->norm_adj();
  sampler_ = graph::SupportSampler(norm_adj_);
}

InferenceResult NaiEngine::Infer(const std::vector<std::int32_t>& nodes,
                                 const InferenceConfig& config) {
  const auto run_start = Clock::now();
  const int k = classifiers_->depth();
  const int t_max = config.effective_t_max(k);
  assert(t_max >= 1);
  if (config.int8_classifier && quantized_ == nullptr) {
    throw ValidationError(
        "NaiEngine::Infer: config requests the int8 classifier but no "
        "QuantizedClassifierStack is attached");
  }
  if (config.nap == NapKind::kDistance) {
    assert(stationary_ != nullptr && "NAPd requires a stationary state");
  }
  if (config.nap == NapKind::kGate) {
    assert(gates_ != nullptr && stationary_ != nullptr &&
           "NAPg requires trained gates and a stationary state");
  }

  InferenceResult result;
  result.predictions.resize(nodes.size());
  result.exit_depths.resize(nodes.size());
  result.stats.num_nodes = static_cast<std::int64_t>(nodes.size());
  result.stats.exits_at_depth.assign(t_max, 0);

  const std::size_t bs = std::max<std::size_t>(1, config.batch_size);
  const std::size_t num_batches = (nodes.size() + bs - 1) / bs;

  // Pin the whole run — including kernels deep in the classifier forward
  // pass that only see default ExecContexts — to this engine's pool.
  runtime::ThreadPool& pool = ctx_.pool_or_default();
  runtime::ScopedDefaultPool scoped_pool(pool);
  std::size_t shards = config.inter_batch_parallelism == 0
                           ? static_cast<std::size_t>(pool.num_threads())
                           : static_cast<std::size_t>(std::max(
                                 config.inter_batch_parallelism, 1));
  shards = std::min(shards, num_batches);

  // Shared batch protocol of the sequential and parallel paths: every
  // batch writes its predictions/exit depths into disjoint pre-sized slots
  // of the result, so the outcome is bit-identical regardless of how batch
  // ranges are scheduled.
  auto run_batches = [&](std::size_t first_batch, std::size_t last_batch,
                         graph::SupportSampler& sampler,
                         InferenceStats& stats) {
    std::vector<std::int32_t> batch_pred;
    std::vector<std::int32_t> batch_depth;
    for (std::size_t b = first_batch; b < last_batch; ++b) {
      const std::size_t begin = b * bs;
      const std::size_t end = std::min(nodes.size(), begin + bs);
      const std::vector<std::int32_t> batch(nodes.begin() + begin,
                                            nodes.begin() + end);
      batch_pred.assign(batch.size(), -1);
      batch_depth.assign(batch.size(), -1);
      InferBatch(batch, config, t_max, sampler, batch_pred, batch_depth,
                 stats);
      std::copy(batch_pred.begin(), batch_pred.end(),
                result.predictions.begin() + begin);
      std::copy(batch_depth.begin(), batch_depth.end(),
                result.exit_depths.begin() + begin);
    }
  };

  if (shards <= 1) {
    run_batches(0, num_batches, sampler_, result.stats);
  } else {
    // Contiguous shards of batches, one sampler and one local stats block
    // per shard; shard stats are merged in shard order afterwards.
    const std::size_t batches_per_shard = (num_batches + shards - 1) / shards;
    std::vector<InferenceStats> shard_stats(shards);
    for (InferenceStats& st : shard_stats) st.exits_at_depth.assign(t_max, 0);

    // Grain >= kMinChunkWork forces one shard per dispatched chunk.
    pool.ParallelFor(0, shards, runtime::ThreadPool::kMinChunkWork,
                     [&](std::size_t s0, std::size_t s1) {
      for (std::size_t s = s0; s < s1; ++s) {
        graph::SupportSampler sampler(norm_adj_);
        const std::size_t first = s * batches_per_shard;
        run_batches(first, std::min(num_batches, first + batches_per_shard),
                    sampler, shard_stats[s]);
      }
    });
    for (const InferenceStats& st : shard_stats) result.stats.Accumulate(st);
  }
  result.stats.wall_time_ms = MsSince(run_start);
  return result;
}

InferenceResult NaiEngine::InferMixed(
    const std::vector<ConfiguredQuery>& queries) {
  const auto run_start = Clock::now();
  // Stable grouping by config identity: groups in first-appearance order,
  // caller order preserved within each group. The linear scan is fine — the
  // serving front-end resolves QoS classes to a handful of shared configs.
  std::vector<const InferenceConfig*> group_configs;
  std::vector<std::vector<std::int32_t>> group_nodes;
  std::vector<std::vector<std::size_t>> group_slots;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const ConfiguredQuery& q = queries[i];
    if (q.config == nullptr) {
      throw ValidationError("NaiEngine::InferMixed: query " +
                            std::to_string(i) + " has no config");
    }
    std::size_t g = 0;
    while (g < group_configs.size() && group_configs[g] != q.config) ++g;
    if (g == group_configs.size()) {
      group_configs.push_back(q.config);
      group_nodes.emplace_back();
      group_slots.emplace_back();
    }
    group_nodes[g].push_back(q.node);
    group_slots[g].push_back(i);
  }

  InferenceResult result;
  result.predictions.resize(queries.size());
  result.exit_depths.resize(queries.size());
  result.stats.num_nodes = static_cast<std::int64_t>(queries.size());
  for (std::size_t g = 0; g < group_configs.size(); ++g) {
    InferenceResult local = Infer(group_nodes[g], *group_configs[g]);
    const std::vector<std::size_t>& slots = group_slots[g];
    for (std::size_t j = 0; j < slots.size(); ++j) {
      result.predictions[slots[j]] = local.predictions[j];
      result.exit_depths[slots[j]] = local.exit_depths[j];
    }
    // Accumulate excludes num_nodes and wall_time_ms by design; both
    // describe this whole call and are set exactly once here.
    result.stats.Accumulate(local.stats);
  }
  result.stats.wall_time_ms = MsSince(run_start);
  return result;
}

void NaiEngine::InferBatch(const std::vector<std::int32_t>& batch,
                           const InferenceConfig& config, int t_max,
                           graph::SupportSampler& sampler,
                           std::vector<std::int32_t>& out_predictions,
                           std::vector<std::int32_t>& out_depths,
                           InferenceStats& stats) {
  const std::size_t f = features_->dim();
  const std::size_t B = batch.size();
  const int t_min = std::clamp(config.t_min, 1, t_max);
  const bool use_nap = config.nap != NapKind::kNone;

  // Line 3: sample supporting nodes out to T_max hops. The mapped variant
  // skips the induced-submatrix build; propagation reads the global
  // adjacency through the support mapping.
  auto t0 = Clock::now();
  graph::BatchSupport support = sampler.SampleMapped(batch, t_max);
  const std::vector<std::int32_t>& g2l = sampler.global_to_local();
  tensor::Matrix cur = features_->GatherRows(support.nodes);
  // Cumulative touched-edge counts per local prefix, for MAC accounting.
  std::vector<std::int64_t> prefix_nnz(support.nodes.size() + 1, 0);
  for (std::size_t r = 0; r < support.nodes.size(); ++r) {
    prefix_nnz[r + 1] = prefix_nnz[r] + norm_adj_.RowNnz(support.nodes[r]);
  }
  stats.sample_time_ms += MsSince(t0);

  // Line 2: stationary state X^(∞) for the batch (rank-1 form).
  tensor::Matrix x_inf;
  if (use_nap) {
    t0 = Clock::now();
    x_inf = stationary_->RowsForNodes(batch);
    stats.stationary_time_ms += MsSince(t0);
    stats.stationary_macs += static_cast<std::int64_t>(B) * f;
  }

  // Per-depth history of the batch rows only (the classifier heads of
  // SIGN/S2GC/GAMLP consume the whole slice X^(0..l)).
  std::vector<tensor::Matrix> batch_stack;
  batch_stack.reserve(t_max + 1);
  std::vector<std::int32_t> batch_locals(B);
  for (std::size_t i = 0; i < B; ++i) {
    batch_locals[i] = static_cast<std::int32_t>(i);
  }
  batch_stack.push_back(cur.GatherRows(batch_locals));

  std::vector<std::int32_t> active = batch_locals;
  tensor::Matrix next(support.nodes.size(), f);
  std::vector<char> bfs_visited(support.nodes.size(), 0);
  std::vector<std::int32_t> rows_to_compute;
  bool use_row_list = false;

  auto classify = [&](int depth, const std::vector<std::int32_t>& locals) {
    if (locals.empty()) return;
    auto tc = Clock::now();
    GatheredStack gathered;
    gathered.mats.reserve(depth + 1);
    for (int t = 0; t <= depth; ++t) {
      gathered.mats.push_back(batch_stack[t].GatherRows(locals));
    }
    const tensor::Matrix logits = config.int8_classifier
                                      ? quantized_->Logits(depth, gathered)
                                      : classifiers_->Logits(depth, gathered);
    const std::vector<std::int32_t> pred = tensor::ArgmaxRows(logits);
    for (std::size_t i = 0; i < locals.size(); ++i) {
      out_predictions[locals[i]] = pred[i];
      out_depths[locals[i]] = depth;
    }
    stats.classification_macs +=
        classifiers_->head(depth).ForwardMacs(locals.size());
    stats.classify_time_ms += MsSince(tc);
    stats.exits_at_depth[depth - 1] += static_cast<std::int64_t>(locals.size());
  };

  for (int l = 1; l <= t_max; ++l) {
    // Line 5: propagate one hop, but only for nodes that can still matter:
    // everything within (t_max - l) hops of the active batch nodes.
    auto tf = Clock::now();
    if (use_row_list) {
      graph::SpMMMappedRows(norm_adj_, support.nodes, g2l, cur,
                            rows_to_compute, next, ctx_);
      stats.propagation_macs +=
          RowListNnz(norm_adj_, support.nodes, rows_to_compute) *
          static_cast<std::int64_t>(f);
    } else {
      const std::int64_t limit = support.layer_counts[t_max - l];
      graph::SpMMMappedPrefix(norm_adj_, support.nodes, g2l, cur, limit,
                              next, ctx_);
      stats.propagation_macs +=
          prefix_nnz[limit] * static_cast<std::int64_t>(f);
    }
    std::swap(cur, next);
    stats.fp_time_ms += MsSince(tf);
    batch_stack.push_back(cur.GatherRows(batch_locals));

    if (l == t_max) {
      // Lines 16-17: everything still active is predicted by f^(T_max).
      classify(t_max, active);
      break;
    }
    if (l < t_min || !use_nap) continue;

    // Lines 9-13: evaluate the exit criterion on the active nodes.
    auto tn = Clock::now();
    const tensor::Matrix x_l_active = cur.GatherRows(active);
    const tensor::Matrix x_inf_active = x_inf.GatherRows(active);
    std::vector<bool> exit_now;
    if (config.nap == NapKind::kDistance) {
      exit_now = NapDistance(config.threshold, config.relative_distance)
                     .ShouldExit(x_l_active, x_inf_active);
      stats.nap_macs +=
          static_cast<std::int64_t>(active.size()) * static_cast<std::int64_t>(f);
    } else {
      exit_now = gates_->ShouldExit(l, x_l_active, x_inf_active,
                                    config.gate_bias);
      stats.nap_macs += gates_->DecisionMacs(active.size());
    }
    stats.fp_time_ms += MsSince(tn);

    std::vector<std::int32_t> exited, remaining;
    for (std::size_t i = 0; i < active.size(); ++i) {
      (exit_now[i] ? exited : remaining).push_back(active[i]);
    }
    classify(l, exited);
    active = std::move(remaining);
    if (active.empty()) break;

    if (config.shrink_active_support && !exited.empty()) {
      // The supporting set for the remaining hops only needs to cover the
      // still-active nodes' (t_max - l - 1)-hop neighborhoods.
      rows_to_compute = RadiusBfs(norm_adj_, support.nodes, g2l, active,
                                  t_max - l - 1, bfs_visited);
      use_row_list = true;
    }
  }
}

}  // namespace nai::core
