#include "src/core/nap_distance.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "src/tensor/ops.h"

namespace nai::core {

std::vector<float> NapDistance::Distances(const tensor::Matrix& propagated,
                                          const tensor::Matrix& stationary) {
  return tensor::RowL2Distance(propagated, stationary);
}

std::vector<float> NapDistance::ComputeDistances(
    const tensor::Matrix& propagated, const tensor::Matrix& stationary) const {
  std::vector<float> d = Distances(propagated, stationary);
  if (relative_) {
    constexpr float kEps = 1e-12f;
    for (std::size_t i = 0; i < d.size(); ++i) {
      d[i] /= std::sqrt(stationary.RowSquaredNorm(i)) + kEps;
    }
  }
  return d;
}

std::vector<bool> NapDistance::ShouldExit(
    const tensor::Matrix& propagated, const tensor::Matrix& stationary) const {
  const std::vector<float> d = ComputeDistances(propagated, stationary);
  std::vector<bool> exit(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) exit[i] = d[i] < threshold_;
  return exit;
}

double DepthUpperBound(float threshold, std::int64_t degree,
                       std::int64_t num_edges, std::int64_t num_nodes,
                       double lambda2) {
  if (lambda2 <= 0.0 || lambda2 >= 1.0 || threshold <= 0.0f) {
    return std::numeric_limits<double>::infinity();
  }
  const double arg =
      static_cast<double>(threshold) *
      std::sqrt(static_cast<double>(degree + 1) /
                static_cast<double>(2 * num_edges + num_nodes));
  if (arg >= 1.0) return 0.0;  // already within threshold at depth 0
  // log base λ2 of arg; both in (0,1) so the result is positive.
  return std::log(arg) / std::log(lambda2);
}

}  // namespace nai::core
