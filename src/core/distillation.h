#ifndef NAI_CORE_DISTILLATION_H_
#define NAI_CORE_DISTILLATION_H_

#include <cstdint>
#include <vector>

#include "src/core/classifier_stack.h"
#include "src/nn/attention.h"
#include "src/tensor/matrix.h"

namespace nai::core {

/// Hyper-parameters of classifier training + Inception Distillation
/// (paper §III-C; the T/λ values mirror Tables III-IV).
struct DistillConfig {
  int base_epochs = 150;    ///< CE training of the teacher f^(k) (step 2)
  int single_epochs = 100;  ///< Single-Scale Distillation (step 3)
  int multi_epochs = 100;   ///< Multi-Scale Distillation (step 4)
  float learning_rate = 1e-2f;
  float weight_decay = 0.0f;
  float temperature_single = 1.2f;  ///< T for Eq. 14
  float lambda_single = 0.5f;       ///< λ for Eq. 17
  float temperature_multi = 1.5f;   ///< T for Eq. 21
  float lambda_multi = 0.5f;        ///< λ for Eq. 19
  int ensemble_size = 3;            ///< r, teachers voting in Eq. 18
  bool enable_single = true;        ///< ablation: "NAI w/o SS"
  bool enable_multi = true;         ///< ablation: "NAI w/o MS"
  std::uint64_t seed = 99;
};

/// Trains the per-depth classifier bank with Inception Distillation
/// (paper Fig. 2, right): first the deepest classifier f^(k) on hard labels,
/// then Single-Scale Distillation of f^(k) into each shallower classifier
/// (Eqs. 14-17), then Multi-Scale Distillation from a trainable
/// self-attention ensemble of the r deepest classifiers (Eqs. 18-21).
///
/// All methods operate on a feature stack already gathered to the training
/// rows: `labels[i]` is the label of row i; `labeled` lists the rows of V_l
/// (hard supervision); every row participates as V_train in the KD terms.
class InceptionDistillation {
 public:
  InceptionDistillation(ClassifierStack& classifiers,
                        const DistillConfig& config);

  /// Step 2: trains f^(k) with cross-entropy on the labeled rows.
  /// Returns the final training loss.
  float TrainBase(const GatheredStack& train_feats,
                  const std::vector<std::int32_t>& labels,
                  const std::vector<std::int32_t>& labeled);

  /// Trains head `l` with plain cross-entropy (no distillation). Used for
  /// the "NAI w/o ID" ablation and as the fallback when both stages are
  /// disabled.
  float TrainHeadPlain(int l, const GatheredStack& train_feats,
                       const std::vector<std::int32_t>& labels,
                       const std::vector<std::int32_t>& labeled);

  /// Step 3: Single-Scale Distillation of f^(k) into f^(1..k-1).
  void SingleScale(const GatheredStack& train_feats,
                   const std::vector<std::int32_t>& labels,
                   const std::vector<std::int32_t>& labeled);

  /// Step 4: Multi-Scale Distillation from the r-member ensemble teacher.
  /// Students, attention vectors s^(l), and the ensemble update jointly.
  void MultiScale(const GatheredStack& train_feats,
                  const std::vector<std::int32_t>& labels,
                  const std::vector<std::int32_t>& labeled);

  /// Runs the full pipeline: base training, then the enabled stages; when
  /// both stages are disabled every shallow head is trained with plain CE
  /// so the bank is still usable (the "w/o ID" configuration).
  void TrainAll(const GatheredStack& train_feats,
                const std::vector<std::int32_t>& labels,
                const std::vector<std::int32_t>& labeled);

  const DistillConfig& config() const { return config_; }

 private:
  ClassifierStack& classifiers_;
  DistillConfig config_;
};

}  // namespace nai::core

#endif  // NAI_CORE_DISTILLATION_H_
