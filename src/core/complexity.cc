#include "src/core/complexity.h"

#include <cmath>

namespace nai::core {

namespace {

std::int64_t Round(double x) { return static_cast<std::int64_t>(std::llround(x)); }

}  // namespace

std::int64_t VanillaMacs(models::ModelKind kind, const ComplexityParams& p) {
  const double n = static_cast<double>(p.n);
  const double m = static_cast<double>(p.m);
  const double f = static_cast<double>(p.f);
  const double pl = static_cast<double>(p.p);
  switch (kind) {
    case models::ModelKind::kSgc:
      return Round(p.k * m * f + n * f * f);
    case models::ModelKind::kSign:
      return Round(p.k * m * f + p.k * pl * n * f * f);
    case models::ModelKind::kS2gc:
      return Round(p.k * m * f + p.k * n * f + n * f * f);
    case models::ModelKind::kGamlp:
      return Round(p.k * m * f + pl * n * f * f);
  }
  return 0;
}

std::int64_t NaiMacs(models::ModelKind kind, const ComplexityParams& p,
                     bool rank_one_stationary) {
  const double n = static_cast<double>(p.n);
  const double m = static_cast<double>(p.m);
  const double f = static_cast<double>(p.f);
  const double pl = static_cast<double>(p.p);
  const double stationary = rank_one_stationary ? n * f : n * n * f;
  switch (kind) {
    case models::ModelKind::kSgc:
      return Round(p.q * m * f + n * f * f + stationary);
    case models::ModelKind::kSign:
      return Round(p.q * m * f + p.q * pl * n * f * f + stationary);
    case models::ModelKind::kS2gc:
      return Round(p.q * m * f + p.q * n * f + n * f * f + stationary);
    case models::ModelKind::kGamlp:
      return Round(p.q * m * f + pl * n * f * f + stationary);
  }
  return 0;
}

std::string VanillaFormula(models::ModelKind kind) {
  switch (kind) {
    case models::ModelKind::kSgc:
      return "O(kmf + nf^2)";
    case models::ModelKind::kSign:
      return "O(kmf + kPnf^2)";
    case models::ModelKind::kS2gc:
      return "O(kmf + knf + nf^2)";
    case models::ModelKind::kGamlp:
      return "O(kmf + Pnf^2)";
  }
  return "";
}

std::string NaiFormula(models::ModelKind kind) {
  switch (kind) {
    case models::ModelKind::kSgc:
      return "O(qmf + nf^2 + n^2 f)";
    case models::ModelKind::kSign:
      return "O(qmf + qPnf^2 + n^2 f)";
    case models::ModelKind::kS2gc:
      return "O(qmf + qnf + nf^2 + n^2 f)";
    case models::ModelKind::kGamlp:
      return "O(qmf + Pnf^2 + n^2 f)";
  }
  return "";
}

}  // namespace nai::core
