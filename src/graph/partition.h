#ifndef NAI_GRAPH_PARTITION_H_
#define NAI_GRAPH_PARTITION_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace nai::graph {

/// Inductive node split (paper §II-A): V is partitioned into V_train
/// (containing the labeled subset V_l and unlabeled V_u) and V_test.
/// Models train on G_train — the subgraph induced on V_train — and are
/// evaluated on V_test inside the full graph G, where test nodes and the
/// edges touching them are unseen during training.
struct InductiveSplit {
  /// Global ids of training nodes (V_train = V_l ∪ V_u).
  std::vector<std::int32_t> train_nodes;
  /// Global ids of the labeled subset V_l ⊆ V_train.
  std::vector<std::int32_t> labeled_nodes;
  /// Global ids of test nodes (unseen at training time).
  std::vector<std::int32_t> test_nodes;
  /// Global ids of the validation subset V_val ⊆ V_train \ V_l, used for
  /// hyper-parameter selection as in the paper's protocol.
  std::vector<std::int32_t> val_nodes;

  /// G_train: induced on train_nodes; node i of this graph is
  /// train_nodes[i] globally.
  Graph train_graph;

  /// Positions of labeled/validation nodes inside train_nodes (local ids of
  /// train_graph). Same length/order as labeled_nodes / val_nodes.
  std::vector<std::int32_t> labeled_local;
  std::vector<std::int32_t> val_local;
};

/// Randomly partitions `graph` into the inductive setting.
///   train_fraction: |V_train| / |V|  (rest is V_test)
///   labeled_fraction: |V_l| / |V_train|
///   val_fraction: |V_val| / |V_train| (drawn from the unlabeled part)
///
/// Requirements, enforced with std::invalid_argument (not assert, so
/// release builds cannot read past the shuffled node buffers on bad
/// input): the graph is non-empty, train_fraction and labeled_fraction lie
/// in (0, 1], val_fraction >= 0, and labeled_fraction + val_fraction <= 1.
/// train_fraction = 1 keeps every node in V_train (V_test empty); on tiny
/// graphs the train and labeled sets are at least one node each and the
/// validation set never overflows the unlabeled remainder.
InductiveSplit MakeInductiveSplit(const Graph& graph, double train_fraction,
                                  double labeled_fraction,
                                  double val_fraction, std::uint64_t seed);

}  // namespace nai::graph

#endif  // NAI_GRAPH_PARTITION_H_
