#include "src/graph/sampler.h"

#include <cassert>
#include <string>

#include "src/runtime/error.h"

namespace nai::graph {

SupportSampler::SupportSampler(CsrView norm_adj)
    : adj_(norm_adj), global_to_local_(norm_adj.rows, -1) {}

BatchSupport SupportSampler::Collect(const std::vector<std::int32_t>& batch,
                                     int depth) {
  if (depth < 0) {
    throw ValidationError("SupportSampler: depth must be >= 0, got " +
                          std::to_string(depth));
  }
  // Lazily reset the mapping of the previous mapped batch.
  for (const std::int32_t v : mapped_nodes_) global_to_local_[v] = -1;
  mapped_nodes_.clear();

  BatchSupport out;
  out.nodes.reserve(batch.size() * 4);
  out.layer_counts.reserve(depth + 1);

  for (const std::int32_t v : batch) {
    if (v < 0 || v >= adj_.rows) {
      // Roll back the partial mapping before throwing so the sampler stays
      // usable after a rejected batch.
      for (const std::int32_t u : out.nodes) global_to_local_[u] = -1;
      throw ValidationError("SupportSampler: batch node " + std::to_string(v) +
                            " out of range [0, " + std::to_string(adj_.rows) +
                            ")");
    }
    // Duplicates are legal (a Zipf-skewed serving batch can carry the same
    // node twice): each occurrence gets its own support row, so batch
    // element i always lands on row i, and the mapping points at the last
    // occurrence. Duplicate rows propagate identical values (same global
    // row, same neighbor accumulation order), so results stay bit-exact no
    // matter which occurrence neighbors resolve to.
    global_to_local_[v] = static_cast<std::int32_t>(out.nodes.size());
    out.nodes.push_back(v);
  }
  out.layer_counts.push_back(static_cast<std::int64_t>(out.nodes.size()));

  std::size_t frontier_begin = 0;
  for (int hop = 1; hop <= depth; ++hop) {
    const std::size_t frontier_end = out.nodes.size();
    for (std::size_t i = frontier_begin; i < frontier_end; ++i) {
      const std::int32_t v = out.nodes[i];
      for (std::int64_t p = adj_.row_ptr[v]; p < adj_.row_ptr[v + 1]; ++p) {
        const std::int32_t u = adj_.col_idx[p];
        if (global_to_local_[u] == -1) {
          global_to_local_[u] = static_cast<std::int32_t>(out.nodes.size());
          out.nodes.push_back(u);
        }
      }
    }
    frontier_begin = frontier_end;
    out.layer_counts.push_back(static_cast<std::int64_t>(out.nodes.size()));
  }
  return out;
}

BatchSupport SupportSampler::Sample(const std::vector<std::int32_t>& batch,
                                    int depth) {
  BatchSupport out = Collect(batch, depth);
  out.sub_adj = InducedSubmatrix(adj_, out.nodes, global_to_local_);
  // Eagerly reset: the mapping is not exposed on this path.
  for (const std::int32_t v : out.nodes) global_to_local_[v] = -1;
  return out;
}

BatchSupport SupportSampler::SampleMapped(
    const std::vector<std::int32_t>& batch, int depth) {
  BatchSupport out = Collect(batch, depth);
  // Keep the mapping live for SpMMMapped*; remember what to reset later.
  mapped_nodes_ = out.nodes;
  return out;
}

}  // namespace nai::graph
