#include "src/graph/shard.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "src/runtime/error.h"

namespace nai::graph {

namespace {

/// Builds one shard from its owned set: halo BFS over the full adjacency,
/// sorted node list, id maps, induced subgraph. `visited` is caller scratch
/// sized num_nodes, all zero on entry and restored to all zero on exit.
GraphShard BuildShard(CsrView adj, std::vector<std::int32_t> owned,
                      int halo_hops, std::vector<char>& visited) {
  GraphShard shard;
  shard.owned = std::move(owned);

  std::vector<std::int32_t> reached = shard.owned;
  for (const std::int32_t v : reached) visited[v] = 1;
  std::size_t frontier_begin = 0;
  for (int hop = 0; hop < halo_hops; ++hop) {
    const std::size_t frontier_end = reached.size();
    for (std::size_t i = frontier_begin; i < frontier_end; ++i) {
      const std::int32_t v = reached[i];
      for (std::int64_t p = adj.row_ptr[v]; p < adj.row_ptr[v + 1]; ++p) {
        const std::int32_t u = adj.col_idx[p];
        if (!visited[u]) {
          visited[u] = 1;
          reached.push_back(u);
        }
      }
    }
    frontier_begin = frontier_end;
  }
  for (const std::int32_t v : reached) visited[v] = 0;

  std::sort(reached.begin(), reached.end());
  shard.nodes = std::move(reached);
  shard.global_to_local.assign(adj.rows, -1);
  for (std::size_t i = 0; i < shard.nodes.size(); ++i) {
    shard.global_to_local[shard.nodes[i]] = static_cast<std::int32_t>(i);
  }
  shard.graph =
      Graph::FromCsr(InducedSubmatrix(adj, shard.nodes, shard.global_to_local));
  return shard;
}

ShardedGraph BuildSharded(CsrView adj, std::vector<std::int32_t> owner,
                          std::int32_t num_shards, int halo_hops) {
  ShardedGraph sharded;
  sharded.halo_hops = halo_hops;
  sharded.owner = std::move(owner);

  std::vector<std::vector<std::int32_t>> owned(num_shards);
  for (std::int64_t v = 0; v < adj.rows; ++v) {
    owned[sharded.owner[v]].push_back(static_cast<std::int32_t>(v));
  }

  std::vector<char> visited(adj.rows, 0);
  sharded.shards.reserve(num_shards);
  for (std::int32_t s = 0; s < num_shards; ++s) {
    sharded.shards.push_back(
        BuildShard(adj, std::move(owned[s]), halo_hops, visited));
  }
  return sharded;
}

void ValidateHalo(int halo_hops) {
  if (halo_hops < 0) {
    throw ValidationError("MakeShards: halo_hops must be >= 0, got " +
                          std::to_string(halo_hops));
  }
}

}  // namespace

ShardedGraph MakeShards(CsrView adj, int num_shards, int halo_hops) {
  ValidateHalo(halo_hops);
  const std::int64_t n = adj.rows;
  if (n == 0) {
    throw ValidationError("MakeShards: graph has no nodes");
  }
  if (num_shards < 1 || static_cast<std::int64_t>(num_shards) > n) {
    throw ValidationError(
        "MakeShards: num_shards must be in [1, num_nodes], got " +
        std::to_string(num_shards) + " for " + std::to_string(n) + " nodes");
  }

  // Balanced contiguous ranges: the first (n % num_shards) shards own one
  // node more. Contiguity keeps owner lookup trivial and the routed order
  // of an ascending query list identical to its original order.
  std::vector<std::int32_t> owner(n);
  const std::int64_t base = n / num_shards;
  const std::int64_t extra = n % num_shards;
  std::int64_t v = 0;
  for (std::int32_t s = 0; s < num_shards; ++s) {
    const std::int64_t size = base + (s < extra ? 1 : 0);
    for (std::int64_t i = 0; i < size; ++i) {
      owner[v++] = s;
    }
  }
  return BuildSharded(adj, std::move(owner), num_shards, halo_hops);
}

ShardedGraph MakeShards(CsrView adj, std::vector<std::int32_t> owner,
                        int halo_hops) {
  ValidateHalo(halo_hops);
  const std::int64_t n = adj.rows;
  if (n == 0) {
    throw ValidationError("MakeShards: graph has no nodes");
  }
  if (static_cast<std::int64_t>(owner.size()) != n) {
    throw ValidationError("MakeShards: owner vector size " +
                          std::to_string(owner.size()) +
                          " does not match node count " + std::to_string(n));
  }
  std::int32_t max_owner = 0;
  for (const std::int32_t s : owner) {
    if (s < 0) {
      throw ValidationError("MakeShards: negative shard id in owner");
    }
    max_owner = std::max(max_owner, s);
  }
  return BuildSharded(adj, std::move(owner), max_owner + 1, halo_hops);
}

ShardedGraph IdentityShards(std::int64_t num_nodes, int halo_hops) {
  ValidateHalo(halo_hops);
  if (num_nodes < 1) {
    throw ValidationError("IdentityShards: num_nodes must be >= 1, got " +
                          std::to_string(num_nodes));
  }
  ShardedGraph sharded;
  sharded.halo_hops = halo_hops;
  sharded.owner.assign(num_nodes, 0);
  GraphShard shard;
  shard.owned.resize(num_nodes);
  std::iota(shard.owned.begin(), shard.owned.end(), 0);
  shard.nodes = shard.owned;
  shard.global_to_local = shard.owned;  // identity mapping
  // shard.graph intentionally left empty: the single shard is the whole
  // graph, and consumers (ShardedNaiEngine's snapshot fast path) read the
  // global adjacency instead of a copy.
  sharded.shards.push_back(std::move(shard));
  return sharded;
}

}  // namespace nai::graph
