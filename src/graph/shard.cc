#include "src/graph/shard.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace nai::graph {

namespace {

/// Builds one shard from its owned set: halo BFS over the full adjacency,
/// sorted node list, id maps, induced subgraph. `visited` is caller scratch
/// sized num_nodes, all zero on entry and restored to all zero on exit.
GraphShard BuildShard(const Graph& graph, std::vector<std::int32_t> owned,
                      int halo_hops, std::vector<char>& visited) {
  GraphShard shard;
  shard.owned = std::move(owned);

  std::vector<std::int32_t> reached = shard.owned;
  for (const std::int32_t v : reached) visited[v] = 1;
  std::size_t frontier_begin = 0;
  for (int hop = 0; hop < halo_hops; ++hop) {
    const std::size_t frontier_end = reached.size();
    for (std::size_t i = frontier_begin; i < frontier_end; ++i) {
      const std::int32_t v = reached[i];
      for (const auto* it = graph.neighbors_begin(v);
           it != graph.neighbors_end(v); ++it) {
        if (!visited[*it]) {
          visited[*it] = 1;
          reached.push_back(*it);
        }
      }
    }
    frontier_begin = frontier_end;
  }
  for (const std::int32_t v : reached) visited[v] = 0;

  std::sort(reached.begin(), reached.end());
  shard.nodes = std::move(reached);
  shard.global_to_local.assign(graph.num_nodes(), -1);
  for (std::size_t i = 0; i < shard.nodes.size(); ++i) {
    shard.global_to_local[shard.nodes[i]] = static_cast<std::int32_t>(i);
  }
  shard.graph = graph.InducedSubgraph(shard.nodes);
  return shard;
}

ShardedGraph BuildSharded(const Graph& graph,
                          std::vector<std::int32_t> owner,
                          std::int32_t num_shards, int halo_hops) {
  ShardedGraph sharded;
  sharded.halo_hops = halo_hops;
  sharded.owner = std::move(owner);

  std::vector<std::vector<std::int32_t>> owned(num_shards);
  for (std::int64_t v = 0; v < graph.num_nodes(); ++v) {
    owned[sharded.owner[v]].push_back(static_cast<std::int32_t>(v));
  }

  std::vector<char> visited(graph.num_nodes(), 0);
  sharded.shards.reserve(num_shards);
  for (std::int32_t s = 0; s < num_shards; ++s) {
    sharded.shards.push_back(
        BuildShard(graph, std::move(owned[s]), halo_hops, visited));
  }
  return sharded;
}

void ValidateHalo(int halo_hops) {
  if (halo_hops < 0) {
    throw std::invalid_argument("MakeShards: halo_hops must be >= 0, got " +
                                std::to_string(halo_hops));
  }
}

}  // namespace

ShardedGraph MakeShards(const Graph& graph, int num_shards, int halo_hops) {
  ValidateHalo(halo_hops);
  const std::int64_t n = graph.num_nodes();
  if (n == 0) {
    throw std::invalid_argument("MakeShards: graph has no nodes");
  }
  if (num_shards < 1 || static_cast<std::int64_t>(num_shards) > n) {
    throw std::invalid_argument(
        "MakeShards: num_shards must be in [1, num_nodes], got " +
        std::to_string(num_shards) + " for " + std::to_string(n) + " nodes");
  }

  // Balanced contiguous ranges: the first (n % num_shards) shards own one
  // node more. Contiguity keeps owner lookup trivial and the routed order
  // of an ascending query list identical to its original order.
  std::vector<std::int32_t> owner(n);
  const std::int64_t base = n / num_shards;
  const std::int64_t extra = n % num_shards;
  std::int64_t v = 0;
  for (std::int32_t s = 0; s < num_shards; ++s) {
    const std::int64_t size = base + (s < extra ? 1 : 0);
    for (std::int64_t i = 0; i < size; ++i) {
      owner[v++] = s;
    }
  }
  return BuildSharded(graph, std::move(owner), num_shards, halo_hops);
}

ShardedGraph MakeShards(const Graph& graph, std::vector<std::int32_t> owner,
                        int halo_hops) {
  ValidateHalo(halo_hops);
  const std::int64_t n = graph.num_nodes();
  if (n == 0) {
    throw std::invalid_argument("MakeShards: graph has no nodes");
  }
  if (static_cast<std::int64_t>(owner.size()) != n) {
    throw std::invalid_argument(
        "MakeShards: owner vector size " + std::to_string(owner.size()) +
        " does not match node count " + std::to_string(n));
  }
  std::int32_t max_owner = 0;
  for (const std::int32_t s : owner) {
    if (s < 0) {
      throw std::invalid_argument("MakeShards: negative shard id in owner");
    }
    max_owner = std::max(max_owner, s);
  }
  return BuildSharded(graph, std::move(owner), max_owner + 1, halo_hops);
}

}  // namespace nai::graph
