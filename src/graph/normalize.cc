#include "src/graph/normalize.h"

#include <cassert>
#include <cmath>

#include "src/tensor/ops.h"
#include "src/tensor/random.h"

namespace nai::graph {

void NormalizedDegreeScalers(CsrView adjacency, std::vector<float>& left,
                             std::vector<float>& right, float gamma) {
  const std::int64_t n = adjacency.rows;
  left.resize(n);
  right.resize(n);
  for (std::int64_t v = 0; v < n; ++v) {
    const float dt = static_cast<float>(adjacency.RowNnz(v) + 1);
    left[v] = std::pow(dt, gamma - 1.0f);
    right[v] = std::pow(dt, -gamma);
  }
}

void WriteNormalizedRow(CsrView adjacency, std::int64_t v,
                        const std::vector<float>& left,
                        const std::vector<float>& right, std::int32_t* col_out,
                        float* val_out) {
  std::int64_t q = 0;
  bool self_written = false;
  for (std::int64_t p = adjacency.row_ptr[v]; p < adjacency.row_ptr[v + 1];
       ++p) {
    const std::int32_t u = adjacency.col_idx[p];
    if (!self_written && u > v) {
      col_out[q] = static_cast<std::int32_t>(v);
      val_out[q] = left[v] * right[v];
      ++q;
      self_written = true;
    }
    col_out[q] = u;
    val_out[q] = left[v] * right[u];
    ++q;
  }
  if (!self_written) {
    col_out[q] = static_cast<std::int32_t>(v);
    val_out[q] = left[v] * right[v];
    ++q;
  }
  assert(q == adjacency.RowNnz(v) + 1);
}

Csr NormalizedAdjacency(const Graph& graph, float gamma) {
  assert(gamma >= 0.0f && gamma <= 1.0f);
  const Csr& adj = graph.adjacency();
  const std::int64_t n = graph.num_nodes();

  std::vector<float> left, right;  // d̃^(γ-1) and d̃^(-γ)
  NormalizedDegreeScalers(adj, left, right, gamma);

  Csr out;
  out.rows = n;
  out.cols = n;
  out.row_ptr.assign(n + 1, 0);
  // Each row gains exactly one self-loop entry.
  for (std::int64_t v = 0; v < n; ++v) {
    out.row_ptr[v + 1] = out.row_ptr[v] + adj.RowNnz(v) + 1;
  }
  out.col_idx.resize(out.row_ptr.back());
  out.values.resize(out.row_ptr.back());
  for (std::int64_t v = 0; v < n; ++v) {
    WriteNormalizedRow(adj, v, left, right, out.col_idx.data() + out.row_ptr[v],
                       out.values.data() + out.row_ptr[v]);
  }
  return out;
}

tensor::Matrix PooledStationaryVector(const Graph& graph,
                                      const tensor::Matrix& features,
                                      float gamma) {
  const std::int64_t n = graph.num_nodes();
  assert(static_cast<std::int64_t>(features.rows()) == n);
  const double denom = static_cast<double>(2 * graph.num_edges() + n);
  tensor::Matrix pooled(1, features.cols());
  float* g = pooled.data();
  for (std::int64_t j = 0; j < n; ++j) {
    const float vj = static_cast<float>(
        std::pow(static_cast<double>(graph.degree(j) + 1), 1.0 - gamma) /
        denom);
    const float* row = features.row(j);
    for (std::size_t f = 0; f < features.cols(); ++f) g[f] += vj * row[f];
  }
  return pooled;
}

std::vector<float> DegreesWithSelfLoops(const Graph& graph) {
  std::vector<float> out(graph.num_nodes());
  for (std::int64_t v = 0; v < graph.num_nodes(); ++v) {
    out[v] = static_cast<float>(graph.degree(v) + 1);
  }
  return out;
}

float EstimateSecondEigenvalue(const Csr& norm_adj, int iterations,
                               std::uint64_t seed) {
  const std::int64_t n = norm_adj.rows;
  if (n < 2) return 0.0f;

  // Dominant eigenvector first (power iteration), then deflate.
  tensor::Rng rng(seed);
  tensor::Matrix v1(n, 1);
  tensor::FillGaussian(v1, 1.0f, rng);
  for (int it = 0; it < iterations; ++it) {
    v1 = SpMM(norm_adj, v1);
    tensor::NormalizeRowsInPlace(v1, 0.0f);  // no-op guard
    const float norm = tensor::FrobeniusNorm(v1);
    if (norm > 0.0f) tensor::ScaleInPlace(v1, 1.0f / norm);
  }

  tensor::Matrix v2(n, 1);
  tensor::FillGaussian(v2, 1.0f, rng);
  float lambda2 = 0.0f;
  for (int it = 0; it < iterations; ++it) {
    // Deflate: v2 <- v2 - (v1·v2) v1.
    float dot = 0.0f;
    for (std::int64_t i = 0; i < n; ++i) dot += v1.at(i, 0) * v2.at(i, 0);
    for (std::int64_t i = 0; i < n; ++i) v2.at(i, 0) -= dot * v1.at(i, 0);
    v2 = SpMM(norm_adj, v2);
    lambda2 = tensor::FrobeniusNorm(v2);
    if (lambda2 > 0.0f) tensor::ScaleInPlace(v2, 1.0f / lambda2);
  }
  return lambda2;
}

}  // namespace nai::graph
