#ifndef NAI_GRAPH_NORMALIZE_H_
#define NAI_GRAPH_NORMALIZE_H_

#include "src/graph/csr.h"
#include "src/graph/graph.h"

namespace nai::graph {

/// Builds the normalized adjacency with self-loops used by every Scalable
/// GNN in the paper (Eq. 1):
///
///   Â = D̃^(γ-1) Ã D̃^(-γ),   Ã = A + I,   D̃ = diag(d_i + 1)
///
/// γ = 0.5 gives the symmetric normalization D̃^(-1/2) Ã D̃^(-1/2) (GCN/SGC,
/// the paper's experimental setting); γ = 1 the transition matrix Ã D̃^(-1);
/// γ = 0 the reverse transition matrix D̃^(-1) Ã.
Csr NormalizedAdjacency(const Graph& graph, float gamma);

/// Degrees-with-self-loop vector d̃_i = d_i + 1 as floats.
std::vector<float> DegreesWithSelfLoops(const Graph& graph);

/// Estimates the second largest eigenvalue magnitude of Â by power
/// iteration on the component orthogonal to the dominant eigenvector.
/// Used by the personalized-depth upper-bound diagnostics (Eq. 10).
/// `iterations` power steps; deterministic given `seed`.
float EstimateSecondEigenvalue(const Csr& norm_adj, int iterations,
                               std::uint64_t seed);

}  // namespace nai::graph

#endif  // NAI_GRAPH_NORMALIZE_H_
