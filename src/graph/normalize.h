#ifndef NAI_GRAPH_NORMALIZE_H_
#define NAI_GRAPH_NORMALIZE_H_

#include "src/graph/csr.h"
#include "src/graph/graph.h"
#include "src/tensor/matrix.h"

namespace nai::graph {

/// Builds the normalized adjacency with self-loops used by every Scalable
/// GNN in the paper (Eq. 1):
///
///   Â = D̃^(γ-1) Ã D̃^(-γ),   Ã = A + I,   D̃ = diag(d_i + 1)
///
/// γ = 0.5 gives the symmetric normalization D̃^(-1/2) Ã D̃^(-1/2) (GCN/SGC,
/// the paper's experimental setting); γ = 1 the transition matrix Ã D̃^(-1);
/// γ = 0 the reverse transition matrix D̃^(-1) Ã.
Csr NormalizedAdjacency(const Graph& graph, float gamma);

/// The two degree scalers of Eq. 1, evaluated per node: left[v] =
/// (d_v+1)^(γ-1), right[v] = (d_v+1)^(-γ). One formula shared by the
/// full-matrix build and the incremental per-row rebuild of the snapshot
/// layer — identical inputs produce bit-identical entries, which is what
/// lets SnapshotBuilder copy untouched rows verbatim.
void NormalizedDegreeScalers(CsrView adjacency, std::vector<float>& left,
                             std::vector<float>& right, float gamma);
inline void NormalizedDegreeScalers(const Csr& adjacency,
                                    std::vector<float>& left,
                                    std::vector<float>& right, float gamma) {
  NormalizedDegreeScalers(adjacency.view(), left, right, gamma);
}

/// Writes the normalized row of node `v` — its sorted neighbors plus the
/// self-loop entry inserted in sorted position — into col_out/val_out
/// (adjacency.RowNnz(v) + 1 entries). `adjacency` is the *unnormalized*
/// symmetric adjacency; left/right come from NormalizedDegreeScalers.
/// This is the single row writer behind NormalizedAdjacency; the
/// incremental SnapshotBuilder calls it for exactly the rows a delta
/// dirtied.
void WriteNormalizedRow(CsrView adjacency, std::int64_t v,
                        const std::vector<float>& left,
                        const std::vector<float>& right, std::int32_t* col_out,
                        float* val_out);
inline void WriteNormalizedRow(const Csr& adjacency, std::int64_t v,
                               const std::vector<float>& left,
                               const std::vector<float>& right,
                               std::int32_t* col_out, float* val_out) {
  WriteNormalizedRow(adjacency.view(), v, left, right, col_out, val_out);
}

/// The pooled stationary vector g = v^T X of the rank-1 stationary state
/// (Eqs. 6-7): g = Σ_j (d_j+1)^(1-γ) / (2m+n) · X_j, returned as 1 x f.
/// The summation order is fixed (ascending node id), so rebuilding on a
/// merged graph is bit-identical to a from-scratch build —
/// core::StationaryState delegates here and SnapshotBuilder recomputes it
/// per snapshot.
tensor::Matrix PooledStationaryVector(const Graph& graph,
                                      const tensor::Matrix& features,
                                      float gamma);

/// Degrees-with-self-loop vector d̃_i = d_i + 1 as floats.
std::vector<float> DegreesWithSelfLoops(const Graph& graph);

/// Estimates the second largest eigenvalue magnitude of Â by power
/// iteration on the component orthogonal to the dominant eigenvector.
/// Used by the personalized-depth upper-bound diagnostics (Eq. 10).
/// `iterations` power steps; deterministic given `seed`.
float EstimateSecondEigenvalue(const Csr& norm_adj, int iterations,
                               std::uint64_t seed);

}  // namespace nai::graph

#endif  // NAI_GRAPH_NORMALIZE_H_
