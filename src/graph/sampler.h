#ifndef NAI_GRAPH_SAMPLER_H_
#define NAI_GRAPH_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/graph/csr.h"

namespace nai::graph {

/// Supporting-node set of one inference batch (Algorithm 1, line 3).
///
/// Local node ids are ordered by BFS discovery layer, so "all nodes within
/// t hops of the batch" is exactly the local-id prefix [0, layer_counts[t]).
/// The batch itself is the prefix [0, layer_counts[0]).
///
/// This prefix property is what makes the online propagation cheap: to
/// obtain X^(l) on the nodes still needed after hop l, only the prefix
/// [0, layer_counts[depth - l]) must be recomputed, and every in-neighbor it
/// references lies inside the next-larger prefix.
struct BatchSupport {
  /// local id -> global id, BFS-layer order (batch first).
  std::vector<std::int32_t> nodes;
  /// layer_counts[t] = number of local nodes within t hops, t = 0..depth.
  std::vector<std::int64_t> layer_counts;
  /// Induced normalized adjacency over `nodes`, local ids.
  Csr sub_adj;

  std::int64_t batch_size() const { return layer_counts.empty() ? 0 : layer_counts[0]; }
  std::int64_t num_supporting() const {
    return static_cast<std::int64_t>(nodes.size());
  }
};

/// Extracts k-hop supporting-node sets for inference batches against a fixed
/// (already normalized) adjacency. Reusable scratch buffers make repeated
/// batch sampling allocation-light. Reads the adjacency through a CsrView,
/// so the same BFS runs over in-memory and memory-mapped storage.
class SupportSampler {
 public:
  /// The buffers behind `norm_adj` must outlive the sampler.
  explicit SupportSampler(CsrView norm_adj);
  explicit SupportSampler(const Csr& norm_adj)
      : SupportSampler(norm_adj.view()) {}

  /// BFS out to `depth` hops from `batch` (global ids; duplicates are legal
  /// — each occurrence gets its own support row, so batch element i is
  /// always support row i) and builds the induced submatrix. depth >= 0.
  /// Throws nai::ValidationError on out-of-range batch ids or negative
  /// depth (release-mode safe).
  BatchSupport Sample(const std::vector<std::int32_t>& batch, int depth);

  /// Like Sample but skips the induced-submatrix materialization (the
  /// returned support has an empty sub_adj). The sampler's global->local
  /// mapping stays populated for this batch until the next Sample /
  /// SampleMapped call, so callers can run SpMMMapped* against the global
  /// matrix — the fast path the inference engine uses.
  BatchSupport SampleMapped(const std::vector<std::int32_t>& batch,
                            int depth);

  /// Mapping of the most recent SampleMapped batch (-1 = not in support).
  const std::vector<std::int32_t>& global_to_local() const {
    return global_to_local_;
  }

 private:
  BatchSupport Collect(const std::vector<std::int32_t>& batch, int depth);

  CsrView adj_;
  std::vector<std::int32_t> global_to_local_;  // -1 when not in current batch
  std::vector<std::int32_t> mapped_nodes_;     // to reset lazily
};

}  // namespace nai::graph

#endif  // NAI_GRAPH_SAMPLER_H_
