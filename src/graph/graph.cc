#include "src/graph/graph.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <stdexcept>
#include <utility>

namespace nai::graph {

Graph Graph::FromEdges(
    std::int64_t num_nodes,
    const std::vector<std::pair<std::int32_t, std::int32_t>>& edges) {
  std::vector<Triplet> triplets;
  triplets.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    assert(u >= 0 && u < num_nodes && v >= 0 && v < num_nodes);
    if (u == v) continue;  // drop self-loops
    triplets.push_back({u, v, 1.0f});
    triplets.push_back({v, u, 1.0f});
  }
  Graph g;
  g.adjacency_ = CsrFromTriplets(num_nodes, num_nodes, std::move(triplets));
  // CsrFromTriplets sums duplicates; clamp values back to 1 so the adjacency
  // stays unweighted even when the input listed an edge twice.
  for (float& v : g.adjacency_.values) v = 1.0f;
  return g;
}

Graph Graph::FromCsr(Csr adjacency) {
  if (adjacency.rows != adjacency.cols) {
    throw std::invalid_argument("Graph::FromCsr: adjacency must be square");
  }
  if (static_cast<std::int64_t>(adjacency.row_ptr.size()) !=
      adjacency.rows + 1) {
    throw std::invalid_argument("Graph::FromCsr: malformed row_ptr");
  }
#ifndef NDEBUG
  for (std::int64_t v = 0; v < adjacency.rows; ++v) {
    for (std::int64_t p = adjacency.row_ptr[v]; p < adjacency.row_ptr[v + 1];
         ++p) {
      assert(adjacency.col_idx[p] != v);  // no self-loops
      assert(p == adjacency.row_ptr[v] ||
             adjacency.col_idx[p - 1] < adjacency.col_idx[p]);  // sorted rows
    }
  }
#endif
  Graph g;
  g.adjacency_ = std::move(adjacency);
  return g;
}

bool Graph::HasEdge(std::int32_t u, std::int32_t v) const {
  const auto* begin = neighbors_begin(u);
  const auto* end = neighbors_end(u);
  return std::binary_search(begin, end, v);
}

Graph Graph::InducedSubgraph(const std::vector<std::int32_t>& ids) const {
  std::vector<std::int32_t> global_to_local(num_nodes(), -1);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    global_to_local[ids[i]] = static_cast<std::int32_t>(i);
  }
  Graph g;
  g.adjacency_ = InducedSubmatrix(adjacency_, ids, global_to_local);
  return g;
}

std::vector<std::int32_t> Graph::ConnectedComponents() const {
  const std::int64_t n = num_nodes();
  std::vector<std::int32_t> component(n, -1);
  std::int32_t next_label = 0;
  std::queue<std::int32_t> queue;
  for (std::int32_t start = 0; start < n; ++start) {
    if (component[start] >= 0) continue;
    component[start] = next_label;
    queue.push(start);
    while (!queue.empty()) {
      const std::int32_t v = queue.front();
      queue.pop();
      for (const auto* it = neighbors_begin(v); it != neighbors_end(v); ++it) {
        if (component[*it] < 0) {
          component[*it] = next_label;
          queue.push(*it);
        }
      }
    }
    ++next_label;
  }
  return component;
}

}  // namespace nai::graph
