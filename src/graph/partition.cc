#include "src/graph/partition.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/tensor/random.h"

namespace nai::graph {

namespace {

/// Validation is negated ("!(x > 0)") so NaN fractions fail every check.
/// These used to be asserts, which NDEBUG builds compile out — an invalid
/// labeled_fraction + val_fraction would then silently slice past the end
/// of the shuffled train buffer.
void ValidateFractions(std::int64_t num_nodes, double train_fraction,
                       double labeled_fraction, double val_fraction) {
  if (num_nodes <= 0) {
    throw std::invalid_argument("MakeInductiveSplit: graph has no nodes");
  }
  if (!(train_fraction > 0.0) || !(train_fraction <= 1.0)) {
    throw std::invalid_argument(
        "MakeInductiveSplit: train_fraction must be in (0, 1], got " +
        std::to_string(train_fraction));
  }
  if (!(labeled_fraction > 0.0) || !(labeled_fraction <= 1.0)) {
    throw std::invalid_argument(
        "MakeInductiveSplit: labeled_fraction must be in (0, 1], got " +
        std::to_string(labeled_fraction));
  }
  if (!(val_fraction >= 0.0) ||
      !(labeled_fraction + val_fraction <= 1.0)) {
    throw std::invalid_argument(
        "MakeInductiveSplit: need val_fraction >= 0 and labeled_fraction + "
        "val_fraction <= 1, got labeled " +
        std::to_string(labeled_fraction) + " + val " +
        std::to_string(val_fraction));
  }
}

}  // namespace

InductiveSplit MakeInductiveSplit(const Graph& graph, double train_fraction,
                                  double labeled_fraction,
                                  double val_fraction, std::uint64_t seed) {
  const std::int64_t n = graph.num_nodes();
  ValidateFractions(n, train_fraction, labeled_fraction, val_fraction);

  std::vector<std::int32_t> perm(n);
  for (std::int64_t i = 0; i < n; ++i) perm[i] = static_cast<std::int32_t>(i);
  tensor::Rng rng(seed);
  rng.Shuffle(perm);

  // The max(1, ...) floors guarantee non-empty train/labeled sets on tiny
  // graphs; the clamps keep labeled + val within n_train even when the
  // floors or floating-point rounding push the raw counts past it.
  const std::int64_t n_train = std::min<std::int64_t>(
      n,
      std::max<std::int64_t>(1, static_cast<std::int64_t>(n * train_fraction)));
  const std::int64_t n_labeled = std::min<std::int64_t>(
      n_train, std::max<std::int64_t>(
                   1, static_cast<std::int64_t>(n_train * labeled_fraction)));
  const std::int64_t n_val = std::min<std::int64_t>(
      n_train - n_labeled,
      static_cast<std::int64_t>(n_train * val_fraction));

  InductiveSplit split;
  split.train_nodes.assign(perm.begin(), perm.begin() + n_train);
  split.test_nodes.assign(perm.begin() + n_train, perm.end());
  // Sorting keeps train-local ids monotone in global id, which makes the
  // induced adjacency rows naturally sorted and debugging saner.
  std::sort(split.train_nodes.begin(), split.train_nodes.end());
  std::sort(split.test_nodes.begin(), split.test_nodes.end());

  // Labeled / validation subsets drawn from the shuffled train order so they
  // are random w.r.t. global id.
  std::vector<std::int32_t> train_shuffled = split.train_nodes;
  rng.Shuffle(train_shuffled);
  split.labeled_nodes.assign(train_shuffled.begin(),
                             train_shuffled.begin() + n_labeled);
  split.val_nodes.assign(train_shuffled.begin() + n_labeled,
                         train_shuffled.begin() + n_labeled + n_val);
  std::sort(split.labeled_nodes.begin(), split.labeled_nodes.end());
  std::sort(split.val_nodes.begin(), split.val_nodes.end());

  split.train_graph = graph.InducedSubgraph(split.train_nodes);

  // Global -> train-local lookup for the labeled/val positions.
  std::vector<std::int32_t> global_to_local(n, -1);
  for (std::size_t i = 0; i < split.train_nodes.size(); ++i) {
    global_to_local[split.train_nodes[i]] = static_cast<std::int32_t>(i);
  }
  split.labeled_local.reserve(split.labeled_nodes.size());
  for (const std::int32_t g : split.labeled_nodes) {
    split.labeled_local.push_back(global_to_local[g]);
  }
  split.val_local.reserve(split.val_nodes.size());
  for (const std::int32_t g : split.val_nodes) {
    split.val_local.push_back(global_to_local[g]);
  }
  return split;
}

}  // namespace nai::graph
