#include "src/graph/partition.h"

#include <algorithm>
#include <cassert>

#include "src/tensor/random.h"

namespace nai::graph {

InductiveSplit MakeInductiveSplit(const Graph& graph, double train_fraction,
                                  double labeled_fraction,
                                  double val_fraction, std::uint64_t seed) {
  assert(train_fraction > 0.0 && train_fraction < 1.0);
  assert(labeled_fraction > 0.0 && labeled_fraction <= 1.0);
  assert(val_fraction >= 0.0 && labeled_fraction + val_fraction <= 1.0);

  const std::int64_t n = graph.num_nodes();
  std::vector<std::int32_t> perm(n);
  for (std::int64_t i = 0; i < n; ++i) perm[i] = static_cast<std::int32_t>(i);
  tensor::Rng rng(seed);
  rng.Shuffle(perm);

  const std::int64_t n_train =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(n * train_fraction));
  const std::int64_t n_labeled = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(n_train * labeled_fraction));
  const std::int64_t n_val =
      static_cast<std::int64_t>(n_train * val_fraction);
  assert(n_labeled + n_val <= n_train);

  InductiveSplit split;
  split.train_nodes.assign(perm.begin(), perm.begin() + n_train);
  split.test_nodes.assign(perm.begin() + n_train, perm.end());
  // Sorting keeps train-local ids monotone in global id, which makes the
  // induced adjacency rows naturally sorted and debugging saner.
  std::sort(split.train_nodes.begin(), split.train_nodes.end());
  std::sort(split.test_nodes.begin(), split.test_nodes.end());

  // Labeled / validation subsets drawn from the shuffled train order so they
  // are random w.r.t. global id.
  std::vector<std::int32_t> train_shuffled = split.train_nodes;
  rng.Shuffle(train_shuffled);
  split.labeled_nodes.assign(train_shuffled.begin(),
                             train_shuffled.begin() + n_labeled);
  split.val_nodes.assign(train_shuffled.begin() + n_labeled,
                         train_shuffled.begin() + n_labeled + n_val);
  std::sort(split.labeled_nodes.begin(), split.labeled_nodes.end());
  std::sort(split.val_nodes.begin(), split.val_nodes.end());

  split.train_graph = graph.InducedSubgraph(split.train_nodes);

  // Global -> train-local lookup for the labeled/val positions.
  std::vector<std::int32_t> global_to_local(n, -1);
  for (std::size_t i = 0; i < split.train_nodes.size(); ++i) {
    global_to_local[split.train_nodes[i]] = static_cast<std::int32_t>(i);
  }
  split.labeled_local.reserve(split.labeled_nodes.size());
  for (const std::int32_t g : split.labeled_nodes) {
    split.labeled_local.push_back(global_to_local[g]);
  }
  split.val_local.reserve(split.val_nodes.size());
  for (const std::int32_t g : split.val_nodes) {
    split.val_local.push_back(global_to_local[g]);
  }
  return split;
}

}  // namespace nai::graph
