#ifndef NAI_GRAPH_DELTA_H_
#define NAI_GRAPH_DELTA_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/graph.h"
#include "src/storage/mem_store.h"
#include "src/storage/store.h"
#include "src/tensor/matrix.h"

namespace nai::graph {

/// One batch of graph mutations — the unit the ingestion path applies
/// atomically. Three kinds of entries, matching what the paper's streaming
/// workloads (fraud edges, new accounts, profile refreshes) produce:
///
///   * edge inserts between existing or newly inserted nodes;
///   * node inserts, each carrying its feature row (new nodes take ids
///     n, n+1, ... in insertion order, where n is the base snapshot size);
///   * feature updates replacing an existing node's feature row.
///
/// A delta is data, not behaviour: SnapshotBuilder::Apply validates and
/// merges it. Self-loops, duplicate edges and edges already present in the
/// base graph are dropped silently (the graph is simple); out-of-range ids
/// and feature-width mismatches throw at Apply time.
struct GraphDelta {
  /// Undirected edges; endpoints may reference new nodes (>= base n).
  std::vector<std::pair<std::int32_t, std::int32_t>> edge_inserts;
  /// One feature row per inserted node, each of the snapshot's width.
  std::vector<std::vector<float>> node_inserts;
  /// (node id, replacement feature row) pairs; later entries win.
  std::vector<std::pair<std::int32_t, std::vector<float>>> feature_updates;

  void AddEdge(std::int32_t u, std::int32_t v) { edge_inserts.push_back({u, v}); }
  /// Returns the id the new node will take after Apply.
  std::int32_t AddNode(std::vector<float> features, std::int64_t base_nodes) {
    node_inserts.push_back(std::move(features));
    return static_cast<std::int32_t>(base_nodes + node_inserts.size() - 1);
  }
  void UpdateFeatures(std::int32_t node, std::vector<float> features) {
    feature_updates.push_back({node, std::move(features)});
  }

  bool empty() const {
    return edge_inserts.empty() && node_inserts.empty() &&
           feature_updates.empty();
  }
};

/// What one SnapshotBuilder::Apply actually did — the incremental-work
/// accounting the churn bench reports.
struct SnapshotBuildStats {
  std::int64_t new_nodes = 0;
  std::int64_t new_edges = 0;        ///< kept edge inserts (after dedup)
  std::int64_t feature_updates = 0;  ///< applied feature-row replacements
  /// Normalized-adjacency rows rebuilt vs copied verbatim from the base
  /// snapshot. recomputed + copied == merged node count; copied rows are
  /// byte-identical to the base, which is the incremental win.
  std::int64_t norm_rows_recomputed = 0;
  std::int64_t norm_rows_copied = 0;
  /// Nodes whose `stale_horizon`-hop in-neighborhood touches the delta —
  /// exactly the nodes whose Algorithm-1 answer may change, i.e. the
  /// staleness frontier a cached pre-swap answer can be wrong on.
  std::int64_t stale_nodes = 0;
  double build_ms = 0.0;
};

/// One immutable, epoch-versioned view of the evolving graph: everything
/// the inference engines derive from the graph at construction time, built
/// once and shared by shared_ptr. Engines hold a snapshot handle and swap
/// to a newer one between batches; readers that pinned an older version
/// keep it alive until their batch completes — serving never pauses.
///
/// Since the storage refactor, a snapshot holds *stores*, not concrete
/// containers: a GraphStore (raw + normalized adjacency) and a FeatureStore
/// (feature rows + pooled stationary vector), which either in-memory pooled
/// vectors (storage::MemStore) or a memory-mapped file
/// (storage::MmapStore) implement. All serving-path consumers read through
/// CsrView / FeatureStore, so results are bit-identical across backends.
/// The derived artifacts (normalized adjacency, pooled stationary vector)
/// are part of the snapshot precisely so a swap is a pointer exchange, not
/// a recomputation on the serving path.
struct GraphSnapshot {
  /// Monotonic version, +1 per applied delta batch. The serving epoch a
  /// response is stamped with.
  std::uint64_t version = 0;
  float gamma = 0.5f;  ///< Eq. 1 coefficient the artifacts were built with
  std::shared_ptr<const storage::GraphStore> graph_store;
  std::shared_ptr<const storage::FeatureStore> feature_store;

  std::int64_t num_nodes() const { return graph_store->num_nodes(); }
  std::int64_t num_edges() const { return graph_store->num_edges(); }
  std::size_t feature_dim() const { return feature_store->dim(); }
  /// Raw symmetric adjacency (values null — unweighted).
  CsrView adj() const { return graph_store->adj(); }
  /// Normalized adjacency Â (weighted).
  CsrView norm_adj() const { return graph_store->norm_adj(); }
  storage::StoreBackend backend() const { return graph_store->backend(); }

  /// The concrete in-memory store, or nullptr for other backends. The
  /// incremental SnapshotBuilder and a few tests need the pooled
  /// containers; serving code must stay on the view accessors above.
  const storage::MemStore* mem() const {
    return dynamic_cast<const storage::MemStore*>(graph_store.get());
  }
  /// Concrete containers of a mem-backed snapshot. Throw
  /// nai::ValidationError when the snapshot is backed by another store.
  const Graph& graph() const { return RequireMem().graph(); }
  const tensor::Matrix& features() const { return RequireMem().features(); }
  const Csr& norm_csr() const { return RequireMem().norm_csr(); }
  const tensor::Matrix& stationary_pooled() const {
    return RequireMem().stationary();
  }

 private:
  const storage::MemStore& RequireMem() const;
};

/// Builds version-0 snapshot from scratch — the serving bootstrap
/// (mem-backed).
std::shared_ptr<const GraphSnapshot> MakeSnapshot(Graph graph,
                                                  tensor::Matrix features,
                                                  float gamma);

/// Wraps existing stores (e.g. an opened storage::MmapStore, passed as both
/// arguments) into a snapshot. Throws nai::ValidationError when the stores
/// disagree on node count or either is null.
std::shared_ptr<const GraphSnapshot> MakeSnapshotFromStore(
    std::shared_ptr<const storage::GraphStore> graph_store,
    std::shared_ptr<const storage::FeatureStore> feature_store,
    std::uint64_t version = 0);

/// Merges delta batches into successive immutable snapshots, incrementally:
/// adjacency rows untouched by a delta are copied by span, normalized
/// adjacency rows are rebuilt only where a degree in the row changed (the
/// row's node or one of its neighbors gained an edge) and copied verbatim
/// everywhere else, and the pooled stationary vector is re-reduced with the
/// canonical summation order. The result is bit-identical to a from-scratch
/// build on the merged graph (MergeFromScratch; tests enforce it), which is
/// what preserves the engine's end-to-end bit-exactness contract across
/// swaps.
///
/// The base snapshot is read through its store views, so a builder can
/// ingest deltas against any backend — including an mmap store — and
/// always emits a mem-backed merged snapshot (the mutable frontier lives
/// in RAM; the mapped file stays immutable).
///
/// Not thread-safe: one builder, one ingestion thread. `stale_horizon` is
/// the hop radius used for SnapshotBuildStats::stale_nodes (pass the
/// classifier bank depth k — the deepest supporting BFS any query runs).
class SnapshotBuilder {
 public:
  /// Throws nai::ValidationError on a null base.
  explicit SnapshotBuilder(std::shared_ptr<const GraphSnapshot> base,
                          int stale_horizon = 0);

  /// Validates and merges `delta` into a new snapshot (version + 1),
  /// advancing the builder's base so Apply calls chain. Throws
  /// nai::ValidationError on out-of-range endpoints or feature-width
  /// mismatches; the base snapshot is untouched on throw.
  std::shared_ptr<const GraphSnapshot> Apply(const GraphDelta& delta);

  /// Accounting of the most recent Apply.
  const SnapshotBuildStats& last_stats() const { return stats_; }

  const std::shared_ptr<const GraphSnapshot>& base() const { return base_; }

 private:
  std::shared_ptr<const GraphSnapshot> base_;
  int stale_horizon_;
  SnapshotBuildStats stats_;
};

/// Reference merge: rebuilds the fully merged snapshot from scratch (edge
/// list -> Graph::FromEdges -> NormalizedAdjacency -> pooled), with no
/// incremental shortcuts. O(n + m) per call — this is the bit-exactness
/// oracle the delta tests and the churn bench compare SnapshotBuilder
/// against, not a serving path.
std::shared_ptr<const GraphSnapshot> MergeFromScratch(
    const GraphSnapshot& base, const std::vector<GraphDelta>& deltas);

}  // namespace nai::graph

#endif  // NAI_GRAPH_DELTA_H_
