#ifndef NAI_GRAPH_GENERATORS_H_
#define NAI_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/matrix.h"

namespace nai::graph {

/// A generated node-classification dataset: graph + features + labels.
struct SyntheticDataset {
  Graph graph;
  tensor::Matrix features;            // n x f
  std::vector<std::int32_t> labels;   // n, values in [0, num_classes)
  std::int32_t num_classes = 0;
};

/// Configuration of the degree-heterogeneous homophilous generator.
///
/// The generator is a Chung-Lu style model with planted classes:
///  * node weights w_i follow a truncated power law with exponent
///    `power_law_exponent` (heavier tail -> more degree heterogeneity, which
///    is what makes node-adaptive depth matter);
///  * each of `num_edges` edges picks its first endpoint proportional to w,
///    and its second endpoint proportional to w restricted to the same class
///    with probability `homophily`, otherwise unrestricted;
///  * features are Gaussian class centroids plus isotropic noise:
///    x_i = class_separation * mu_{y_i} + feature_noise * eps_i.
///
/// Homophily plus feature noise is exactly the regime in which feature
/// propagation (neighborhood averaging) denoises and deeper propagation
/// helps sparsely connected nodes — the regime the paper's datasets live in.
struct GeneratorConfig {
  std::int64_t num_nodes = 1000;
  std::int64_t num_edges = 5000;
  std::int32_t num_classes = 7;
  std::int32_t feature_dim = 32;
  float power_law_exponent = 2.2f;   // P(w) ~ w^-alpha, alpha in (2, 3]
  float max_weight_ratio = 100.0f;   // w_max / w_min truncation
  float homophily = 0.8f;            // P(edge endpoint is same-class)
  float class_separation = 1.0f;
  float feature_noise = 2.5f;
  /// Fraction of observed labels replaced by a uniformly random other
  /// class. Edges and features follow the *true* labels; only the observed
  /// label is corrupted. This sets an intrinsic accuracy ceiling of about
  /// (1 - label_noise), mimicking the irreducible error of the paper's
  /// real datasets (Flickr tops out near 50%, Ogbn-arxiv near 70%).
  float label_noise = 0.0f;
  std::uint64_t seed = 42;
};

/// Generates a dataset according to `config`. Deterministic given the seed.
SyntheticDataset GenerateDataset(const GeneratorConfig& config);

/// Configuration of the out-of-core scaled generator (GenerateScaled).
///
/// The graph is a ring (node i — i+1 mod n, so every node is servable and
/// the graph is connected) plus deterministic forward chords: node u draws
/// a truncated-Pareto chord count c_u ~ w^-alpha (the degree heterogeneity
/// that makes node-adaptive depth matter at scale) and c_u distinct offsets
/// in [2, n/2), each adding the undirected edge {u, (u+offset) mod n}.
/// Offsets below n/2 can never collide across nodes (the reverse offset
/// n-o would exceed n/2), so edges are unique by construction and two
/// passes over the same per-node hash streams reproduce the exact edge
/// set — which is what lets the generator stream CSR arrays straight into
/// the on-disk layout without ever materializing the graph in RAM.
struct ScaledGraphConfig {
  std::int64_t num_nodes = 1'000'000;  ///< >= 8
  std::int32_t feature_dim = 32;
  float gamma = 0.5f;                ///< Eq. 1 normalization exponent
  float power_law_exponent = 2.2f;   ///< chord-count tail, alpha > 1
  std::int32_t min_chords = 1;
  std::int32_t max_chords = 256;     ///< truncation (also capped by n/2 - 2)
  std::uint64_t seed = 42;
};

/// Streams a ScaledGraphConfig graph — adjacency, normalized adjacency,
/// uniform [-1, 1) features and the pooled stationary vector — directly
/// into the storage::MmapStore on-disk layout at `path`. Only O(n) scalar
/// arrays (degrees, cursors, degree scalers) live in RAM; every O(m) and
/// O(n·dim) array is written in place in the mapped file, so multi-million-
/// node stores build in a few hundred MB of heap. Returns the undirected
/// edge count m. Deterministic given the seed; throws nai::ValidationError
/// on invalid configs and nai::IoError on file errors.
std::int64_t GenerateScaled(const ScaledGraphConfig& config,
                            const std::string& path);

/// Deterministic toy graphs for tests.
Graph PathGraph(std::int64_t n);
Graph CycleGraph(std::int64_t n);
Graph StarGraph(std::int64_t leaves);     // node 0 is the hub
Graph CompleteGraph(std::int64_t n);
Graph GridGraph(std::int64_t rows, std::int64_t cols);

}  // namespace nai::graph

#endif  // NAI_GRAPH_GENERATORS_H_
