#ifndef NAI_GRAPH_CSR_H_
#define NAI_GRAPH_CSR_H_

#include <cstdint>
#include <vector>

#include "src/runtime/exec_context.h"
#include "src/tensor/matrix.h"

namespace nai::graph {

/// Non-owning view of a CSR matrix — the access type every consumer of
/// graph storage reads through, so the same inference kernels run over
/// pooled in-memory vectors (Csr) and memory-mapped file sections
/// (storage::MmapStore) without copies or virtual dispatch in the inner
/// loops. `values` may be nullptr for unweighted matrices (raw adjacency,
/// where every stored entry is implicitly 1.0).
struct CsrView {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  const std::int64_t* row_ptr = nullptr;  ///< rows + 1 entries
  const std::int32_t* col_idx = nullptr;  ///< nnz() entries
  const float* values = nullptr;          ///< nnz() entries, or nullptr

  std::int64_t nnz() const { return rows == 0 ? 0 : row_ptr[rows]; }

  /// Number of stored entries in row `r`.
  std::int64_t RowNnz(std::int64_t r) const {
    return row_ptr[r + 1] - row_ptr[r];
  }

  bool empty() const { return rows == 0; }
};

/// Compressed sparse row matrix with float values. Row pointers are 64-bit
/// so graphs with >2^31 edges are representable; column indices are 32-bit
/// node ids (the paper's largest graph has 2.4M nodes).
///
/// Invariants (checked by Validate()):
///   * row_ptr.size() == rows + 1, row_ptr.front() == 0,
///     row_ptr.back() == col_idx.size() == values.size()
///   * row_ptr is non-decreasing
///   * column indices are in [0, cols) and strictly increasing within a row
struct Csr {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::int64_t> row_ptr;
  std::vector<std::int32_t> col_idx;
  std::vector<float> values;

  std::int64_t nnz() const { return static_cast<std::int64_t>(col_idx.size()); }

  /// Number of stored entries in row `r`.
  std::int64_t RowNnz(std::int64_t r) const {
    return row_ptr[r + 1] - row_ptr[r];
  }

  /// Non-owning view over this matrix's buffers. Stays valid across moves
  /// of the Csr (vector storage is heap-stable) but not across mutation.
  CsrView view() const {
    return CsrView{rows, cols, row_ptr.data(), col_idx.data(),
                   values.empty() ? nullptr : values.data()};
  }

  /// Returns true iff all structural invariants hold.
  bool Validate() const;
};

/// One (row, col, value) triple used when assembling a Csr.
struct Triplet {
  std::int32_t row = 0;
  std::int32_t col = 0;
  float value = 0.0f;
};

/// Builds a CSR from unordered triplets. Duplicate (row, col) entries are
/// summed. O(nnz log nnz).
Csr CsrFromTriplets(std::int64_t rows, std::int64_t cols,
                    std::vector<Triplet> triplets);

/// Sparse-dense multiply: out = csr * dense.
/// Shapes: (rows x cols) * (cols x f) -> (rows x f). Parallel over rows on
/// the context's pool; bit-exact for any thread count.
tensor::Matrix SpMM(const Csr& csr, const tensor::Matrix& dense,
                    const runtime::ExecContext& ctx = {});

/// Computes `out` rows [0, limit) of csr * dense, leaving other rows of
/// `out` untouched. `out` must already be (csr.rows x dense.cols).
/// Used by the layered batch propagation where only a prefix of local node
/// ids needs fresh values at each hop.
void SpMMPrefix(const Csr& csr, const tensor::Matrix& dense,
                std::int64_t limit, tensor::Matrix& out,
                const runtime::ExecContext& ctx = {});

/// Like SpMMPrefix but only recomputes the rows listed in `rows_to_compute`
/// (all < csr.rows). Rows not listed keep their previous contents.
void SpMMRows(const Csr& csr, const tensor::Matrix& dense,
              const std::vector<std::int32_t>& rows_to_compute,
              tensor::Matrix& out, const runtime::ExecContext& ctx = {});

/// Batch propagation against the *global* matrix through a local-id
/// mapping, avoiding the cost of materializing an induced submatrix per
/// batch. Computes, for each local row r in [0, limit):
///
///   out[r] = sum over entries (u, w) of global row nodes[r]:
///              w * dense_local[global_to_local[u]]
///
/// Every neighbor of a computed row must be present in the mapping
/// (global_to_local[u] >= 0) — the BFS prefix property guarantees this for
/// rows within depth-1 hops of the batch.
void SpMMMappedPrefix(CsrView global, const std::vector<std::int32_t>& nodes,
                      const std::vector<std::int32_t>& global_to_local,
                      const tensor::Matrix& dense_local, std::int64_t limit,
                      tensor::Matrix& out,
                      const runtime::ExecContext& ctx = {});
inline void SpMMMappedPrefix(const Csr& global,
                             const std::vector<std::int32_t>& nodes,
                             const std::vector<std::int32_t>& global_to_local,
                             const tensor::Matrix& dense_local,
                             std::int64_t limit, tensor::Matrix& out,
                             const runtime::ExecContext& ctx = {}) {
  SpMMMappedPrefix(global.view(), nodes, global_to_local, dense_local, limit,
                   out, ctx);
}

/// Row-list variant of SpMMMappedPrefix: recomputes only the listed local
/// rows.
void SpMMMappedRows(CsrView global, const std::vector<std::int32_t>& nodes,
                    const std::vector<std::int32_t>& global_to_local,
                    const tensor::Matrix& dense_local,
                    const std::vector<std::int32_t>& rows_to_compute,
                    tensor::Matrix& out, const runtime::ExecContext& ctx = {});
inline void SpMMMappedRows(const Csr& global,
                           const std::vector<std::int32_t>& nodes,
                           const std::vector<std::int32_t>& global_to_local,
                           const tensor::Matrix& dense_local,
                           const std::vector<std::int32_t>& rows_to_compute,
                           tensor::Matrix& out,
                           const runtime::ExecContext& ctx = {}) {
  SpMMMappedRows(global.view(), nodes, global_to_local, dense_local,
                 rows_to_compute, out, ctx);
}

/// Transpose. O(nnz).
Csr Transpose(const Csr& csr);

/// Extracts the induced submatrix csr[ids, ids] with local indices matching
/// the order of `ids`. `global_to_local` must map every global id in `ids`
/// to its position and everything else to -1 (caller-provided scratch to
/// avoid rebuilding a hash map per batch). A view with null `values` is
/// treated as all-1.0 (unweighted adjacency).
Csr InducedSubmatrix(CsrView csr, const std::vector<std::int32_t>& ids,
                     const std::vector<std::int32_t>& global_to_local);
inline Csr InducedSubmatrix(const Csr& csr,
                            const std::vector<std::int32_t>& ids,
                            const std::vector<std::int32_t>& global_to_local) {
  return InducedSubmatrix(csr.view(), ids, global_to_local);
}

/// Dense copy (tests only; quadratic memory).
tensor::Matrix ToDense(const Csr& csr);

}  // namespace nai::graph

#endif  // NAI_GRAPH_CSR_H_
