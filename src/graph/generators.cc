#include "src/graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "src/tensor/random.h"

namespace nai::graph {

namespace {

/// Samples an index from a cumulative weight table by binary search.
std::int32_t SampleFromCdf(const std::vector<double>& cdf, double u) {
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u * cdf.back());
  return static_cast<std::int32_t>(std::min<std::ptrdiff_t>(
      std::distance(cdf.begin(), it), static_cast<std::ptrdiff_t>(cdf.size()) - 1));
}

}  // namespace

SyntheticDataset GenerateDataset(const GeneratorConfig& config) {
  assert(config.num_nodes > 1);
  assert(config.num_classes >= 2);
  assert(config.power_law_exponent > 1.0f);
  tensor::Rng rng(config.seed);

  const std::int64_t n = config.num_nodes;
  const std::int32_t c = config.num_classes;

  // --- Class assignment (balanced, shuffled). -----------------------------
  std::vector<std::int32_t> labels(n);
  for (std::int64_t i = 0; i < n; ++i) {
    labels[i] = static_cast<std::int32_t>(i % c);
  }
  {
    std::vector<std::int32_t> perm(n);
    for (std::int64_t i = 0; i < n; ++i) perm[i] = static_cast<std::int32_t>(i);
    rng.Shuffle(perm);
    std::vector<std::int32_t> shuffled(n);
    for (std::int64_t i = 0; i < n; ++i) shuffled[perm[i]] = labels[i];
    labels = std::move(shuffled);
  }

  // --- Power-law node weights (inverse-CDF of truncated Pareto). ----------
  std::vector<double> weights(n);
  const double alpha = config.power_law_exponent;
  const double wmin = 1.0;
  const double wmax = static_cast<double>(config.max_weight_ratio);
  const double a = 1.0 - alpha;
  for (std::int64_t i = 0; i < n; ++i) {
    const double u = rng.NextDouble();
    // Inverse CDF of p(w) ~ w^-alpha on [wmin, wmax].
    const double wa = std::pow(wmin, a);
    const double wb = std::pow(wmax, a);
    weights[i] = std::pow(wa + u * (wb - wa), 1.0 / a);
  }

  // --- Cumulative tables: global and per class. ---------------------------
  std::vector<double> cdf_all(n);
  std::vector<std::vector<std::int32_t>> class_members(c);
  for (std::int64_t i = 0; i < n; ++i) {
    cdf_all[i] = weights[i] + (i > 0 ? cdf_all[i - 1] : 0.0);
    class_members[labels[i]].push_back(static_cast<std::int32_t>(i));
  }
  std::vector<std::vector<double>> cdf_class(c);
  for (std::int32_t k = 0; k < c; ++k) {
    cdf_class[k].resize(class_members[k].size());
    double acc = 0.0;
    for (std::size_t j = 0; j < class_members[k].size(); ++j) {
      acc += weights[class_members[k][j]];
      cdf_class[k][j] = acc;
    }
  }

  // --- Edge sampling with homophily. ---------------------------------------
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  edges.reserve(config.num_edges);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(config.num_edges * 2);
  const std::int64_t max_attempts = config.num_edges * 20;
  std::int64_t attempts = 0;
  while (static_cast<std::int64_t>(edges.size()) < config.num_edges &&
         attempts < max_attempts) {
    ++attempts;
    const std::int32_t u = SampleFromCdf(cdf_all, rng.NextDouble());
    std::int32_t v;
    if (rng.NextFloat() < config.homophily) {
      const std::int32_t k = labels[u];
      v = class_members[k][SampleFromCdf(cdf_class[k], rng.NextDouble())];
    } else {
      v = SampleFromCdf(cdf_all, rng.NextDouble());
    }
    if (u == v) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(u, v)) << 32) |
        static_cast<std::uint32_t>(std::max(u, v));
    if (!seen.insert(key).second) continue;
    edges.emplace_back(u, v);
  }

  SyntheticDataset out;
  out.graph = Graph::FromEdges(n, edges);
  out.labels = std::move(labels);
  out.num_classes = c;

  // --- Features: class centroid + noise. -----------------------------------
  tensor::Matrix centroids(c, config.feature_dim);
  tensor::FillGaussian(centroids, config.class_separation, rng);
  out.features.Resize(n, config.feature_dim);
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = out.features.row(i);
    const float* mu = centroids.row(out.labels[i]);
    for (std::int32_t j = 0; j < config.feature_dim; ++j) {
      row[j] = mu[j] + config.feature_noise * rng.NextGaussian();
    }
  }

  // --- Observed-label corruption (after edges and features, which follow
  // the true labels): sets the irreducible-error ceiling. ------------------
  if (config.label_noise > 0.0f) {
    for (std::int64_t i = 0; i < n; ++i) {
      if (rng.NextFloat() < config.label_noise) {
        const std::int32_t offset =
            1 + static_cast<std::int32_t>(rng.NextBounded(c - 1));
        out.labels[i] = (out.labels[i] + offset) % c;
      }
    }
  }
  return out;
}

Graph PathGraph(std::int64_t n) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::FromEdges(n, edges);
}

Graph CycleGraph(std::int64_t n) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  if (n > 2) edges.emplace_back(static_cast<std::int32_t>(n - 1), 0);
  return Graph::FromEdges(n, edges);
}

Graph StarGraph(std::int64_t leaves) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t i = 1; i <= leaves; ++i) edges.emplace_back(0, i);
  return Graph::FromEdges(leaves + 1, edges);
}

Graph CompleteGraph(std::int64_t n) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return Graph::FromEdges(n, edges);
}

Graph GridGraph(std::int64_t rows, std::int64_t cols) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  auto id = [cols](std::int64_t r, std::int64_t c) {
    return static_cast<std::int32_t>(r * cols + c);
  };
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph::FromEdges(rows * cols, edges);
}

}  // namespace nai::graph
