#include "src/graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "src/graph/normalize.h"
#include "src/runtime/error.h"
#include "src/storage/mmap_store.h"
#include "src/tensor/random.h"

namespace nai::graph {

namespace {

/// Samples an index from a cumulative weight table by binary search.
std::int32_t SampleFromCdf(const std::vector<double>& cdf, double u) {
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u * cdf.back());
  return static_cast<std::int32_t>(std::min<std::ptrdiff_t>(
      std::distance(cdf.begin(), it), static_cast<std::ptrdiff_t>(cdf.size()) - 1));
}

/// Counter-free splitmix64: one independent, reproducible stream per
/// (seed, node) pair, so the degree pass and the fill pass of the scaled
/// generator regenerate identical chord sets without storing them.
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t Next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  double NextDouble() {  // uniform in [0, 1)
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }
};

std::uint64_t NodeStream(std::uint64_t seed, std::int64_t node,
                         std::uint64_t salt) {
  SplitMix64 mix{seed ^ (static_cast<std::uint64_t>(node) * 0xd6e8feb86659fd93ULL) ^
                 salt};
  return mix.Next();
}

/// The forward chords of node u: c_u distinct offsets in [2, n/2), where
/// c_u follows a truncated Pareto with exponent `alpha`. Deterministic in
/// (config.seed, u) — both generator passes call this with the same inputs.
void ChordsFor(const ScaledGraphConfig& config, std::int64_t u,
               std::vector<std::int64_t>& offsets) {
  offsets.clear();
  const std::int64_t n = config.num_nodes;
  const std::int64_t max_offset = n / 2;  // exclusive; offsets start at 2
  const std::int64_t range = max_offset - 2;
  if (range <= 0) return;
  SplitMix64 rng{NodeStream(config.seed, u, 0x5ca1ab1eULL)};
  const double alpha = static_cast<double>(config.power_law_exponent);
  const double x = rng.NextDouble();
  // Inverse CDF of the Pareto tail P(c >= k) ~ k^-(alpha-1), truncated.
  double draw = static_cast<double>(config.min_chords) *
                std::pow(1.0 - x, -1.0 / (alpha - 1.0));
  const double cap = static_cast<double>(
      std::min<std::int64_t>(config.max_chords, range));
  std::int64_t count = static_cast<std::int64_t>(std::min(draw, cap));
  offsets.reserve(static_cast<std::size_t>(count));
  // Distinct offsets by bounded rejection; the stream is deterministic, so
  // both passes retry identically.
  std::int64_t attempts = 0;
  const std::int64_t max_attempts = count * 16 + 16;
  while (static_cast<std::int64_t>(offsets.size()) < count &&
         attempts++ < max_attempts) {
    const std::int64_t offset =
        2 + static_cast<std::int64_t>(rng.NextDouble() *
                                      static_cast<double>(range));
    if (std::find(offsets.begin(), offsets.end(), offset) == offsets.end()) {
      offsets.push_back(offset);
    }
  }
}

}  // namespace

SyntheticDataset GenerateDataset(const GeneratorConfig& config) {
  assert(config.num_nodes > 1);
  assert(config.num_classes >= 2);
  assert(config.power_law_exponent > 1.0f);
  tensor::Rng rng(config.seed);

  const std::int64_t n = config.num_nodes;
  const std::int32_t c = config.num_classes;

  // --- Class assignment (balanced, shuffled). -----------------------------
  std::vector<std::int32_t> labels(n);
  for (std::int64_t i = 0; i < n; ++i) {
    labels[i] = static_cast<std::int32_t>(i % c);
  }
  {
    std::vector<std::int32_t> perm(n);
    for (std::int64_t i = 0; i < n; ++i) perm[i] = static_cast<std::int32_t>(i);
    rng.Shuffle(perm);
    std::vector<std::int32_t> shuffled(n);
    for (std::int64_t i = 0; i < n; ++i) shuffled[perm[i]] = labels[i];
    labels = std::move(shuffled);
  }

  // --- Power-law node weights (inverse-CDF of truncated Pareto). ----------
  std::vector<double> weights(n);
  const double alpha = config.power_law_exponent;
  const double wmin = 1.0;
  const double wmax = static_cast<double>(config.max_weight_ratio);
  const double a = 1.0 - alpha;
  for (std::int64_t i = 0; i < n; ++i) {
    const double u = rng.NextDouble();
    // Inverse CDF of p(w) ~ w^-alpha on [wmin, wmax].
    const double wa = std::pow(wmin, a);
    const double wb = std::pow(wmax, a);
    weights[i] = std::pow(wa + u * (wb - wa), 1.0 / a);
  }

  // --- Cumulative tables: global and per class. ---------------------------
  std::vector<double> cdf_all(n);
  std::vector<std::vector<std::int32_t>> class_members(c);
  for (std::int64_t i = 0; i < n; ++i) {
    cdf_all[i] = weights[i] + (i > 0 ? cdf_all[i - 1] : 0.0);
    class_members[labels[i]].push_back(static_cast<std::int32_t>(i));
  }
  std::vector<std::vector<double>> cdf_class(c);
  for (std::int32_t k = 0; k < c; ++k) {
    cdf_class[k].resize(class_members[k].size());
    double acc = 0.0;
    for (std::size_t j = 0; j < class_members[k].size(); ++j) {
      acc += weights[class_members[k][j]];
      cdf_class[k][j] = acc;
    }
  }

  // --- Edge sampling with homophily. ---------------------------------------
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  edges.reserve(config.num_edges);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(config.num_edges * 2);
  const std::int64_t max_attempts = config.num_edges * 20;
  std::int64_t attempts = 0;
  while (static_cast<std::int64_t>(edges.size()) < config.num_edges &&
         attempts < max_attempts) {
    ++attempts;
    const std::int32_t u = SampleFromCdf(cdf_all, rng.NextDouble());
    std::int32_t v;
    if (rng.NextFloat() < config.homophily) {
      const std::int32_t k = labels[u];
      v = class_members[k][SampleFromCdf(cdf_class[k], rng.NextDouble())];
    } else {
      v = SampleFromCdf(cdf_all, rng.NextDouble());
    }
    if (u == v) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(u, v)) << 32) |
        static_cast<std::uint32_t>(std::max(u, v));
    if (!seen.insert(key).second) continue;
    edges.emplace_back(u, v);
  }

  SyntheticDataset out;
  out.graph = Graph::FromEdges(n, edges);
  out.labels = std::move(labels);
  out.num_classes = c;

  // --- Features: class centroid + noise. -----------------------------------
  tensor::Matrix centroids(c, config.feature_dim);
  tensor::FillGaussian(centroids, config.class_separation, rng);
  out.features.Resize(n, config.feature_dim);
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = out.features.row(i);
    const float* mu = centroids.row(out.labels[i]);
    for (std::int32_t j = 0; j < config.feature_dim; ++j) {
      row[j] = mu[j] + config.feature_noise * rng.NextGaussian();
    }
  }

  // --- Observed-label corruption (after edges and features, which follow
  // the true labels): sets the irreducible-error ceiling. ------------------
  if (config.label_noise > 0.0f) {
    for (std::int64_t i = 0; i < n; ++i) {
      if (rng.NextFloat() < config.label_noise) {
        const std::int32_t offset =
            1 + static_cast<std::int32_t>(rng.NextBounded(c - 1));
        out.labels[i] = (out.labels[i] + offset) % c;
      }
    }
  }
  return out;
}

std::int64_t GenerateScaled(const ScaledGraphConfig& config,
                            const std::string& path) {
  const std::int64_t n = config.num_nodes;
  if (n < 8) {
    throw ValidationError("GenerateScaled: num_nodes must be >= 8");
  }
  if (config.feature_dim <= 0) {
    throw ValidationError("GenerateScaled: feature_dim must be positive");
  }
  if (!(config.gamma >= 0.0f && config.gamma <= 1.0f)) {
    throw ValidationError("GenerateScaled: gamma must be in [0, 1]");
  }
  if (!(config.power_law_exponent > 1.0f)) {
    throw ValidationError("GenerateScaled: power_law_exponent must be > 1");
  }
  if (config.min_chords < 0 || config.max_chords < config.min_chords) {
    throw ValidationError(
        "GenerateScaled: need 0 <= min_chords <= max_chords");
  }

  // Pass 1 — degrees only (the single O(n) array that decides the layout).
  // Every node has its two ring neighbors; chords add one endpoint each.
  std::vector<std::int64_t> degree(n, 2);
  std::vector<std::int64_t> offsets;
  for (std::int64_t u = 0; u < n; ++u) {
    ChordsFor(config, u, offsets);
    degree[u] += static_cast<std::int64_t>(offsets.size());
    for (const std::int64_t o : offsets) ++degree[(u + o) % n];
  }
  std::int64_t adj_nnz = 0;
  for (const std::int64_t d : degree) adj_nnz += d;

  storage::MmapStoreWriter writer(path, n, adj_nnz, config.feature_dim,
                                  config.gamma);

  // Row pointers (adjacency and normalized, which gains one self-loop per
  // row) as prefix sums over the degree array.
  std::int64_t* adj_row_ptr = writer.adj_row_ptr();
  std::int64_t* norm_row_ptr = writer.norm_row_ptr();
  adj_row_ptr[0] = 0;
  norm_row_ptr[0] = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    adj_row_ptr[v + 1] = adj_row_ptr[v] + degree[v];
    norm_row_ptr[v + 1] = norm_row_ptr[v] + degree[v] + 1;
  }

  // Pass 2 — scatter columns through per-row cursors, regenerating the
  // identical chord streams, then sort each row in place in the map.
  std::int32_t* adj_col_idx = writer.adj_col_idx();
  {
    std::vector<std::int64_t> cursor(adj_row_ptr, adj_row_ptr + n);
    for (std::int64_t u = 0; u < n; ++u) {
      adj_col_idx[cursor[u]++] = static_cast<std::int32_t>((u + 1) % n);
      adj_col_idx[cursor[u]++] = static_cast<std::int32_t>((u + n - 1) % n);
      ChordsFor(config, u, offsets);
      for (const std::int64_t o : offsets) {
        const std::int64_t v = (u + o) % n;
        adj_col_idx[cursor[u]++] = static_cast<std::int32_t>(v);
        adj_col_idx[cursor[v]++] = static_cast<std::int32_t>(u);
      }
    }
  }
  for (std::int64_t v = 0; v < n; ++v) {
    std::sort(adj_col_idx + adj_row_ptr[v], adj_col_idx + adj_row_ptr[v + 1]);
  }

  // Normalized adjacency: the exact row writer the in-memory build uses,
  // over a view straight into the file pages.
  CsrView adj_view;
  adj_view.rows = n;
  adj_view.cols = n;
  adj_view.row_ptr = adj_row_ptr;
  adj_view.col_idx = adj_col_idx;
  adj_view.values = nullptr;
  std::vector<float> left, right;
  NormalizedDegreeScalers(adj_view, left, right, config.gamma);
  std::int32_t* norm_col_idx = writer.norm_col_idx();
  float* norm_values = writer.norm_values();
  for (std::int64_t v = 0; v < n; ++v) {
    WriteNormalizedRow(adj_view, v, left, right,
                       norm_col_idx + norm_row_ptr[v],
                       norm_values + norm_row_ptr[v]);
  }

  // Features (uniform [-1, 1), one hash stream per node) written straight
  // into the file, with the pooled stationary vector accumulated in the
  // same ascending-node order as PooledStationaryVector — bit-identical to
  // what a from-RAM build would store.
  const std::int64_t dim = config.feature_dim;
  float* features = writer.features();
  float* stationary = writer.stationary();
  std::fill(stationary, stationary + dim, 0.0f);
  const double denom = static_cast<double>(adj_nnz + n);  // 2m + n
  for (std::int64_t j = 0; j < n; ++j) {
    SplitMix64 rng{NodeStream(config.seed, j, 0xfea70125ULL)};
    float* row = features + j * dim;
    for (std::int64_t f = 0; f < dim; ++f) {
      row[f] = static_cast<float>(rng.NextDouble()) * 2.0f - 1.0f;
    }
    const float vj = static_cast<float>(
        std::pow(static_cast<double>(degree[j] + 1), 1.0 - config.gamma) /
        denom);
    for (std::int64_t f = 0; f < dim; ++f) stationary[f] += vj * row[f];
  }

  writer.Finalize();
  return adj_nnz / 2;
}

Graph PathGraph(std::int64_t n) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::FromEdges(n, edges);
}

Graph CycleGraph(std::int64_t n) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  if (n > 2) edges.emplace_back(static_cast<std::int32_t>(n - 1), 0);
  return Graph::FromEdges(n, edges);
}

Graph StarGraph(std::int64_t leaves) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t i = 1; i <= leaves; ++i) edges.emplace_back(0, i);
  return Graph::FromEdges(leaves + 1, edges);
}

Graph CompleteGraph(std::int64_t n) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return Graph::FromEdges(n, edges);
}

Graph GridGraph(std::int64_t rows, std::int64_t cols) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  auto id = [cols](std::int64_t r, std::int64_t c) {
    return static_cast<std::int32_t>(r * cols + c);
  };
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph::FromEdges(rows * cols, edges);
}

}  // namespace nai::graph
