#include "src/graph/delta.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>

#include "src/graph/normalize.h"
#include "src/runtime/error.h"

namespace nai::graph {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// True iff {u, v} is an edge of the adjacency view (sorted rows).
bool ViewHasEdge(CsrView adj, std::int32_t u, std::int32_t v) {
  const std::int32_t* begin = adj.col_idx + adj.row_ptr[u];
  const std::int32_t* end = adj.col_idx + adj.row_ptr[u + 1];
  return std::binary_search(begin, end, v);
}

std::shared_ptr<const GraphSnapshot> WrapMemStore(
    std::uint64_t version, float gamma,
    std::shared_ptr<const storage::MemStore> store) {
  auto snap = std::make_shared<GraphSnapshot>();
  snap->version = version;
  snap->gamma = gamma;
  snap->graph_store = store;
  snap->feature_store = std::move(store);
  return snap;
}

std::shared_ptr<const GraphSnapshot> FinishSnapshot(std::uint64_t version,
                                                    Graph graph,
                                                    tensor::Matrix features,
                                                    float gamma) {
  return WrapMemStore(version, gamma,
                      std::make_shared<storage::MemStore>(
                          std::move(graph), std::move(features), gamma));
}

}  // namespace

const storage::MemStore& GraphSnapshot::RequireMem() const {
  const storage::MemStore* store = mem();
  if (store == nullptr) {
    throw ValidationError(
        "GraphSnapshot: concrete container access requires the mem backend; "
        "this snapshot is backed by '" +
        std::string(storage::BackendName(backend())) +
        "' — read through adj()/norm_adj()/feature_store instead");
  }
  return *store;
}

std::shared_ptr<const GraphSnapshot> MakeSnapshot(Graph graph,
                                                  tensor::Matrix features,
                                                  float gamma) {
  if (static_cast<std::int64_t>(features.rows()) != graph.num_nodes()) {
    throw ValidationError(
        "MakeSnapshot: features have " + std::to_string(features.rows()) +
        " rows but the graph has " + std::to_string(graph.num_nodes()) +
        " nodes");
  }
  return FinishSnapshot(0, std::move(graph), std::move(features), gamma);
}

std::shared_ptr<const GraphSnapshot> MakeSnapshotFromStore(
    std::shared_ptr<const storage::GraphStore> graph_store,
    std::shared_ptr<const storage::FeatureStore> feature_store,
    std::uint64_t version) {
  if (graph_store == nullptr || feature_store == nullptr) {
    throw ValidationError("MakeSnapshotFromStore: null store");
  }
  if (feature_store->num_rows() != graph_store->num_nodes()) {
    throw ValidationError("MakeSnapshotFromStore: feature store has " +
                          std::to_string(feature_store->num_rows()) +
                          " rows but the graph store has " +
                          std::to_string(graph_store->num_nodes()) + " nodes");
  }
  auto snap = std::make_shared<GraphSnapshot>();
  snap->version = version;
  snap->gamma = graph_store->gamma();
  snap->graph_store = std::move(graph_store);
  snap->feature_store = std::move(feature_store);
  return snap;
}

SnapshotBuilder::SnapshotBuilder(std::shared_ptr<const GraphSnapshot> base,
                                 int stale_horizon)
    : base_(std::move(base)), stale_horizon_(std::max(0, stale_horizon)) {
  if (base_ == nullptr) {
    throw ValidationError("SnapshotBuilder: null base snapshot");
  }
}

std::shared_ptr<const GraphSnapshot> SnapshotBuilder::Apply(
    const GraphDelta& delta) {
  const auto start = Clock::now();
  const GraphSnapshot& base = *base_;
  const CsrView old_adj = base.adj();
  const CsrView old_norm = base.norm_adj();
  const storage::FeatureStore& old_features = *base.feature_store;
  const std::int64_t n_old = base.num_nodes();
  const std::size_t f = base.feature_dim();
  const std::int64_t n_new =
      n_old + static_cast<std::int64_t>(delta.node_inserts.size());

  // ---- Validation (nothing is mutated until everything passed). ----
  for (const std::vector<float>& row : delta.node_inserts) {
    if (row.size() != f) {
      throw ValidationError(
          "SnapshotBuilder: node insert has " + std::to_string(row.size()) +
          " features, snapshot width is " + std::to_string(f));
    }
  }
  for (const auto& [u, v] : delta.edge_inserts) {
    if (u < 0 || v < 0 || u >= n_new || v >= n_new) {
      throw ValidationError(
          "SnapshotBuilder: edge (" + std::to_string(u) + ", " +
          std::to_string(v) + ") outside the merged id range [0, " +
          std::to_string(n_new) + ")");
    }
  }
  for (const auto& [node, row] : delta.feature_updates) {
    if (node < 0 || node >= n_new) {
      throw ValidationError(
          "SnapshotBuilder: feature update for node " + std::to_string(node) +
          " outside the merged id range [0, " + std::to_string(n_new) + ")");
    }
    if (row.size() != f) {
      throw ValidationError(
          "SnapshotBuilder: feature update for node " + std::to_string(node) +
          " has " + std::to_string(row.size()) + " features, snapshot width is " +
          std::to_string(f));
    }
  }

  // ---- Edge dedup: simple graph, so self-loops, duplicates within the
  // delta, and edges already present in the base are dropped. ----
  std::vector<std::pair<std::int32_t, std::int32_t>> kept;
  kept.reserve(delta.edge_inserts.size());
  for (auto [u, v] : delta.edge_inserts) {
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    kept.push_back({u, v});
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  kept.erase(std::remove_if(kept.begin(), kept.end(),
                            [&](const auto& e) {
                              return e.first < n_old && e.second < n_old &&
                                     ViewHasEdge(old_adj, e.first, e.second);
                            }),
             kept.end());

  // Per-node adjacency additions (sorted below; `touched` = rows whose
  // neighbor list — and therefore degree — changes).
  std::vector<std::vector<std::int32_t>> adds(n_new);
  for (const auto& [u, v] : kept) {
    adds[u].push_back(v);
    adds[v].push_back(u);
  }
  for (auto& a : adds) std::sort(a.begin(), a.end());

  // ---- Merged adjacency: untouched rows copied by span, touched rows
  // merge-sorted with their additions, new-node rows are their additions. ----
  Csr adj;
  adj.rows = n_new;
  adj.cols = n_new;
  adj.row_ptr.assign(n_new + 1, 0);
  for (std::int64_t v = 0; v < n_new; ++v) {
    const std::int64_t old_nnz = v < n_old ? old_adj.RowNnz(v) : 0;
    adj.row_ptr[v + 1] =
        adj.row_ptr[v] + old_nnz + static_cast<std::int64_t>(adds[v].size());
  }
  adj.col_idx.resize(adj.row_ptr.back());
  adj.values.assign(adj.row_ptr.back(), 1.0f);
  for (std::int64_t v = 0; v < n_new; ++v) {
    std::int32_t* out = adj.col_idx.data() + adj.row_ptr[v];
    if (v < n_old) {
      const std::int32_t* old_begin = old_adj.col_idx + old_adj.row_ptr[v];
      const std::int32_t* old_end = old_adj.col_idx + old_adj.row_ptr[v + 1];
      if (adds[v].empty()) {
        std::copy(old_begin, old_end, out);
      } else {
        std::merge(old_begin, old_end, adds[v].begin(), adds[v].end(), out);
      }
    } else {
      std::copy(adds[v].begin(), adds[v].end(), out);
    }
  }
  Graph merged = Graph::FromCsr(std::move(adj));

  // ---- Merged features: base block, inserted rows, then updates. ----
  tensor::Matrix features(n_new, f);
  for (std::int64_t v = 0; v < n_old; ++v) {
    if (f > 0) features.SetRow(static_cast<std::size_t>(v), old_features.row(v));
  }
  for (std::size_t i = 0; i < delta.node_inserts.size(); ++i) {
    features.SetRow(static_cast<std::size_t>(n_old) + i,
                    delta.node_inserts[i].data());
  }
  for (const auto& [node, row] : delta.feature_updates) {
    features.SetRow(static_cast<std::size_t>(node), row.data());
  }

  // ---- Normalized adjacency, incrementally. A base row is dirty iff its
  // own degree changed (touched) or any neighbor's did (the row's entry for
  // that neighbor carries the neighbor's degree scaler); new rows always.
  // Everything else is copied verbatim — bit-identical by the shared
  // WriteNormalizedRow formula. ----
  std::vector<float> left, right;
  NormalizedDegreeScalers(merged.adjacency(), left, right, base.gamma);
  std::vector<char> dirty(n_new, 0);
  for (std::int64_t v = 0; v < n_new; ++v) {
    if (v >= n_old || !adds[v].empty()) {
      dirty[v] = 1;
      for (const std::int32_t* it = merged.neighbors_begin(
               static_cast<std::int32_t>(v));
           it != merged.neighbors_end(static_cast<std::int32_t>(v)); ++it) {
        dirty[*it] = 1;
      }
    }
  }

  Csr norm;
  norm.rows = n_new;
  norm.cols = n_new;
  norm.row_ptr.assign(n_new + 1, 0);
  for (std::int64_t v = 0; v < n_new; ++v) {
    norm.row_ptr[v + 1] = norm.row_ptr[v] + merged.adjacency().RowNnz(v) + 1;
  }
  norm.col_idx.resize(norm.row_ptr.back());
  norm.values.resize(norm.row_ptr.back());
  std::int64_t recomputed = 0;
  for (std::int64_t v = 0; v < n_new; ++v) {
    if (dirty[v]) {
      WriteNormalizedRow(merged.adjacency(), v, left, right,
                         norm.col_idx.data() + norm.row_ptr[v],
                         norm.values.data() + norm.row_ptr[v]);
      ++recomputed;
    } else {
      const std::int64_t len = norm.row_ptr[v + 1] - norm.row_ptr[v];
      std::memcpy(norm.col_idx.data() + norm.row_ptr[v],
                  old_norm.col_idx + old_norm.row_ptr[v],
                  static_cast<std::size_t>(len) * sizeof(std::int32_t));
      std::memcpy(norm.values.data() + norm.row_ptr[v],
                  old_norm.values + old_norm.row_ptr[v],
                  static_cast<std::size_t>(len) * sizeof(float));
    }
  }

  // ---- Staleness frontier: BFS from every delta-touched node out to the
  // stale horizon (symmetric graph, so out- and in-neighborhoods agree). ----
  std::vector<char> stale(n_new, 0);
  std::vector<std::int32_t> frontier;
  auto seed = [&](std::int64_t v) {
    if (!stale[v]) {
      stale[v] = 1;
      frontier.push_back(static_cast<std::int32_t>(v));
    }
  };
  for (const auto& [u, v] : kept) {
    seed(u);
    seed(v);
  }
  for (std::int64_t v = n_old; v < n_new; ++v) seed(v);
  for (const auto& [node, row] : delta.feature_updates) seed(node);
  std::int64_t stale_count = static_cast<std::int64_t>(frontier.size());
  for (int hop = 0; hop < stale_horizon_ && !frontier.empty(); ++hop) {
    std::vector<std::int32_t> next;
    for (const std::int32_t u : frontier) {
      for (const std::int32_t* it = merged.neighbors_begin(u);
           it != merged.neighbors_end(u); ++it) {
        if (!stale[*it]) {
          stale[*it] = 1;
          next.push_back(*it);
          ++stale_count;
        }
      }
    }
    frontier = std::move(next);
  }

  // ---- Pooled stationary vector: re-reduced from scratch in the canonical
  // node order — bit-identical to a cold build, and still only O(n f). ----
  tensor::Matrix pooled = PooledStationaryVector(merged, features, base.gamma);

  auto snap = WrapMemStore(
      base.version + 1, base.gamma,
      std::make_shared<storage::MemStore>(std::move(merged),
                                          std::move(features), base.gamma,
                                          std::move(norm), std::move(pooled)));

  stats_ = SnapshotBuildStats{};
  stats_.new_nodes = static_cast<std::int64_t>(delta.node_inserts.size());
  stats_.new_edges = static_cast<std::int64_t>(kept.size());
  stats_.feature_updates =
      static_cast<std::int64_t>(delta.feature_updates.size());
  stats_.norm_rows_recomputed = recomputed;
  stats_.norm_rows_copied = n_new - recomputed;
  stats_.stale_nodes = stale_count;
  stats_.build_ms = MsSince(start);

  base_ = snap;
  return snap;
}

std::shared_ptr<const GraphSnapshot> MergeFromScratch(
    const GraphSnapshot& base, const std::vector<GraphDelta>& deltas) {
  std::int64_t n = base.num_nodes();
  const std::size_t f = base.feature_dim();
  const CsrView base_adj = base.adj();
  const storage::FeatureStore& base_features = *base.feature_store;

  // Full edge list: base edges (u < v once each) plus every delta insert.
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  edges.reserve(static_cast<std::size_t>(base.num_edges()));
  for (std::int32_t u = 0; u < n; ++u) {
    for (std::int64_t p = base_adj.row_ptr[u]; p < base_adj.row_ptr[u + 1];
         ++p) {
      if (base_adj.col_idx[p] > u) edges.push_back({u, base_adj.col_idx[p]});
    }
  }

  std::vector<std::vector<float>> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (std::int64_t v = 0; v < n; ++v) {
    rows.emplace_back(base_features.row(v), base_features.row(v) + f);
  }
  for (const GraphDelta& delta : deltas) {
    for (const std::vector<float>& row : delta.node_inserts) {
      rows.push_back(row);
      ++n;
    }
    for (const auto& [u, v] : delta.edge_inserts) edges.push_back({u, v});
    for (const auto& [node, row] : delta.feature_updates) rows[node] = row;
  }

  Graph merged = Graph::FromEdges(n, edges);
  tensor::Matrix features(n, f);
  for (std::int64_t v = 0; v < n; ++v) features.SetRow(v, rows[v].data());
  auto snap =
      FinishSnapshot(base.version + deltas.size(), std::move(merged),
                     std::move(features), base.gamma);
  return snap;
}

}  // namespace nai::graph
