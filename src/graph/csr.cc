#include "src/graph/csr.h"

#include <algorithm>
#include <cassert>

#include "src/tensor/simd.h"

namespace nai::graph {

bool Csr::Validate() const {
  if (rows < 0 || cols < 0) return false;
  if (row_ptr.size() != static_cast<std::size_t>(rows) + 1) return false;
  if (row_ptr.empty() || row_ptr.front() != 0) return false;
  if (row_ptr.back() != nnz()) return false;
  if (values.size() != col_idx.size()) return false;
  for (std::int64_t r = 0; r < rows; ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) return false;
    for (std::int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      if (col_idx[p] < 0 || col_idx[p] >= cols) return false;
      if (p > row_ptr[r] && col_idx[p] <= col_idx[p - 1]) return false;
    }
  }
  return true;
}

Csr CsrFromTriplets(std::int64_t rows, std::int64_t cols,
                    std::vector<Triplet> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  Csr out;
  out.rows = rows;
  out.cols = cols;
  out.row_ptr.assign(rows + 1, 0);
  out.col_idx.reserve(triplets.size());
  out.values.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size();) {
    const Triplet& t = triplets[i];
    assert(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols);
    float sum = 0.0f;
    std::size_t j = i;
    while (j < triplets.size() && triplets[j].row == t.row &&
           triplets[j].col == t.col) {
      sum += triplets[j].value;
      ++j;
    }
    out.col_idx.push_back(t.col);
    out.values.push_back(sum);
    ++out.row_ptr[t.row + 1];
    i = j;
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    out.row_ptr[r + 1] += out.row_ptr[r];
  }
  return out;
}

namespace {

/// Approximate scalar-op cost of one SpMM output row: average stored
/// entries per row times the dense width. A heuristic for chunk sizing
/// only — correctness never depends on it.
std::size_t SpMMGrain(const Csr& csr, std::size_t f) {
  const std::int64_t avg =
      csr.rows > 0 ? csr.nnz() / csr.rows + 1 : 1;
  return static_cast<std::size_t>(avg) * std::max<std::size_t>(1, f);
}

std::size_t SpMMGrain(CsrView csr, std::size_t f) {
  const std::int64_t avg =
      csr.rows > 0 ? csr.nnz() / csr.rows + 1 : 1;
  return static_cast<std::size_t>(avg) * std::max<std::size_t>(1, f);
}

void SpMMRowRange(const Csr& csr, const tensor::Matrix& dense,
                  std::int64_t r0, std::int64_t r1, tensor::Matrix& out) {
  const std::size_t f = dense.cols();
  const tensor::simd::KernelSet& ks = tensor::simd::ActiveKernels();
  for (std::int64_t r = r0; r < r1; ++r) {
    float* orow = out.row(r);
    std::fill(orow, orow + f, 0.0f);
    for (std::int64_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p) {
      ks.axpy(csr.values[p], dense.row(csr.col_idx[p]), orow, f);
    }
  }
}

}  // namespace

tensor::Matrix SpMM(const Csr& csr, const tensor::Matrix& dense,
                    const runtime::ExecContext& ctx) {
  assert(static_cast<std::int64_t>(dense.rows()) == csr.cols);
  tensor::Matrix out(csr.rows, dense.cols());
  ctx.ParallelFor(0, csr.rows, SpMMGrain(csr, dense.cols()),
                  [&](std::size_t r0, std::size_t r1) {
    SpMMRowRange(csr, dense, static_cast<std::int64_t>(r0),
                 static_cast<std::int64_t>(r1), out);
  });
  return out;
}

void SpMMPrefix(const Csr& csr, const tensor::Matrix& dense,
                std::int64_t limit, tensor::Matrix& out,
                const runtime::ExecContext& ctx) {
  assert(static_cast<std::int64_t>(dense.rows()) == csr.cols);
  assert(static_cast<std::int64_t>(out.rows()) == csr.rows);
  assert(out.cols() == dense.cols());
  assert(limit <= csr.rows);
  ctx.ParallelFor(0, limit, SpMMGrain(csr, dense.cols()),
                  [&](std::size_t r0, std::size_t r1) {
    SpMMRowRange(csr, dense, static_cast<std::int64_t>(r0),
                 static_cast<std::int64_t>(r1), out);
  });
}

void SpMMRows(const Csr& csr, const tensor::Matrix& dense,
              const std::vector<std::int32_t>& rows_to_compute,
              tensor::Matrix& out, const runtime::ExecContext& ctx) {
  assert(static_cast<std::int64_t>(dense.rows()) == csr.cols);
  const std::size_t f = dense.cols();
  const tensor::simd::KernelSet& ks = tensor::simd::ActiveKernels();
  ctx.ParallelFor(0, rows_to_compute.size(), SpMMGrain(csr, f),
                  [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const std::int64_t r = rows_to_compute[i];
      float* orow = out.row(r);
      std::fill(orow, orow + f, 0.0f);
      for (std::int64_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p) {
        ks.axpy(csr.values[p], dense.row(csr.col_idx[p]), orow, f);
      }
    }
  });
}

namespace {

void SpMMMappedRow(CsrView global, const std::vector<std::int32_t>& nodes,
                   const std::vector<std::int32_t>& global_to_local,
                   const tensor::Matrix& dense_local, std::int64_t r,
                   const tensor::simd::KernelSet& ks, tensor::Matrix& out) {
  const std::size_t f = dense_local.cols();
  float* orow = out.row(r);
  std::fill(orow, orow + f, 0.0f);
  const std::int32_t g = nodes[r];
  for (std::int64_t p = global.row_ptr[g]; p < global.row_ptr[g + 1]; ++p) {
    const std::int32_t local = global_to_local[global.col_idx[p]];
    assert(local >= 0 && "neighbor outside the supporting set");
    ks.axpy(global.values[p], dense_local.row(local), orow, f);
  }
}

}  // namespace

void SpMMMappedPrefix(CsrView global, const std::vector<std::int32_t>& nodes,
                      const std::vector<std::int32_t>& global_to_local,
                      const tensor::Matrix& dense_local, std::int64_t limit,
                      tensor::Matrix& out, const runtime::ExecContext& ctx) {
  assert(limit <= static_cast<std::int64_t>(nodes.size()));
  assert(out.rows() == dense_local.rows());
  assert(global.values != nullptr && "mapped SpMM needs a weighted matrix");
  const tensor::simd::KernelSet& ks = tensor::simd::ActiveKernels();
  ctx.ParallelFor(0, limit, SpMMGrain(global, dense_local.cols()),
                  [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      SpMMMappedRow(global, nodes, global_to_local, dense_local,
                    static_cast<std::int64_t>(r), ks, out);
    }
  });
}

void SpMMMappedRows(CsrView global, const std::vector<std::int32_t>& nodes,
                    const std::vector<std::int32_t>& global_to_local,
                    const tensor::Matrix& dense_local,
                    const std::vector<std::int32_t>& rows_to_compute,
                    tensor::Matrix& out, const runtime::ExecContext& ctx) {
  assert(global.values != nullptr && "mapped SpMM needs a weighted matrix");
  const tensor::simd::KernelSet& ks = tensor::simd::ActiveKernels();
  ctx.ParallelFor(
      0, rows_to_compute.size(), SpMMGrain(global, dense_local.cols()),
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          SpMMMappedRow(global, nodes, global_to_local, dense_local,
                        rows_to_compute[i], ks, out);
        }
      });
}

Csr Transpose(const Csr& csr) {
  Csr out;
  out.rows = csr.cols;
  out.cols = csr.rows;
  out.row_ptr.assign(out.rows + 1, 0);
  out.col_idx.resize(csr.nnz());
  out.values.resize(csr.nnz());
  for (std::int64_t p = 0; p < csr.nnz(); ++p) {
    ++out.row_ptr[csr.col_idx[p] + 1];
  }
  for (std::int64_t r = 0; r < out.rows; ++r) {
    out.row_ptr[r + 1] += out.row_ptr[r];
  }
  std::vector<std::int64_t> cursor(out.row_ptr.begin(), out.row_ptr.end() - 1);
  for (std::int64_t r = 0; r < csr.rows; ++r) {
    for (std::int64_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p) {
      const std::int64_t q = cursor[csr.col_idx[p]]++;
      out.col_idx[q] = static_cast<std::int32_t>(r);
      out.values[q] = csr.values[p];
    }
  }
  return out;
}

Csr InducedSubmatrix(CsrView csr, const std::vector<std::int32_t>& ids,
                     const std::vector<std::int32_t>& global_to_local) {
  Csr out;
  out.rows = static_cast<std::int64_t>(ids.size());
  out.cols = out.rows;
  out.row_ptr.assign(out.rows + 1, 0);
  // First pass: count surviving entries per row.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::int32_t g = ids[i];
    for (std::int64_t p = csr.row_ptr[g]; p < csr.row_ptr[g + 1]; ++p) {
      if (global_to_local[csr.col_idx[p]] >= 0) ++out.row_ptr[i + 1];
    }
  }
  for (std::int64_t r = 0; r < out.rows; ++r) {
    out.row_ptr[r + 1] += out.row_ptr[r];
  }
  out.col_idx.resize(out.row_ptr.back());
  out.values.resize(out.row_ptr.back());
  // Second pass: fill. Local ids preserve the global column order only if
  // `ids` is monotone, so rows are sorted explicitly afterwards.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::int32_t g = ids[i];
    std::int64_t q = out.row_ptr[i];
    for (std::int64_t p = csr.row_ptr[g]; p < csr.row_ptr[g + 1]; ++p) {
      const std::int32_t local = global_to_local[csr.col_idx[p]];
      if (local >= 0) {
        out.col_idx[q] = local;
        out.values[q] = csr.values == nullptr ? 1.0f : csr.values[p];
        ++q;
      }
    }
    // Sort the row's (col, value) pairs by local column id.
    std::vector<std::pair<std::int32_t, float>> entries;
    entries.reserve(q - out.row_ptr[i]);
    for (std::int64_t t = out.row_ptr[i]; t < q; ++t) {
      entries.emplace_back(out.col_idx[t], out.values[t]);
    }
    std::sort(entries.begin(), entries.end());
    for (std::int64_t t = out.row_ptr[i]; t < q; ++t) {
      out.col_idx[t] = entries[t - out.row_ptr[i]].first;
      out.values[t] = entries[t - out.row_ptr[i]].second;
    }
  }
  return out;
}

tensor::Matrix ToDense(const Csr& csr) {
  tensor::Matrix out(csr.rows, csr.cols);
  for (std::int64_t r = 0; r < csr.rows; ++r) {
    for (std::int64_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p) {
      out.at(r, csr.col_idx[p]) += csr.values[p];
    }
  }
  return out;
}

}  // namespace nai::graph
