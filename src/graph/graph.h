#ifndef NAI_GRAPH_GRAPH_H_
#define NAI_GRAPH_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/graph/csr.h"

namespace nai::graph {

/// Undirected simple graph stored as a symmetric CSR adjacency (no
/// self-loops, each undirected edge appears in both endpoint rows).
///
/// `num_edges()` counts undirected edges (m in the paper); the CSR holds
/// 2m directed entries.
class Graph {
 public:
  Graph() = default;

  /// Builds from an undirected edge list. Duplicate edges and self-loops are
  /// dropped. Endpoints must be in [0, num_nodes).
  static Graph FromEdges(
      std::int64_t num_nodes,
      const std::vector<std::pair<std::int32_t, std::int32_t>>& edges);

  /// Adopts an already-built symmetric adjacency — the zero-copy entry the
  /// incremental SnapshotBuilder uses after merging a delta batch row by
  /// row. `adjacency` must be a valid square CSR with sorted, duplicate-free
  /// rows, no self-loops, and symmetric entries (u in row v iff v in row u);
  /// throws std::invalid_argument on shape violations (the per-row
  /// invariants are the caller's contract, checked in debug builds only).
  static Graph FromCsr(Csr adjacency);

  std::int64_t num_nodes() const { return adjacency_.rows; }
  std::int64_t num_edges() const { return adjacency_.nnz() / 2; }

  /// Degree of node v (self-loops excluded by construction).
  std::int64_t degree(std::int32_t v) const { return adjacency_.RowNnz(v); }

  /// Neighbor ids of v (sorted).
  const std::int32_t* neighbors_begin(std::int32_t v) const {
    return adjacency_.col_idx.data() + adjacency_.row_ptr[v];
  }
  const std::int32_t* neighbors_end(std::int32_t v) const {
    return adjacency_.col_idx.data() + adjacency_.row_ptr[v + 1];
  }

  /// Unweighted symmetric adjacency (values all 1.0).
  const Csr& adjacency() const { return adjacency_; }

  /// True iff {u, v} is an edge. O(log deg(u)).
  bool HasEdge(std::int32_t u, std::int32_t v) const;

  /// Induced subgraph on `ids` (order defines new node ids). Also returns
  /// nothing else: label/feature gathering is the caller's job.
  Graph InducedSubgraph(const std::vector<std::int32_t>& ids) const;

  /// Connected-component label per node (0-based, BFS order).
  std::vector<std::int32_t> ConnectedComponents() const;

 private:
  Csr adjacency_;
};

}  // namespace nai::graph

#endif  // NAI_GRAPH_GRAPH_H_
