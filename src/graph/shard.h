#ifndef NAI_GRAPH_SHARD_H_
#define NAI_GRAPH_SHARD_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace nai::graph {

/// One serving shard of a partitioned graph: the nodes it owns, plus a halo
/// of every node within `ShardedGraph::halo_hops` hops of an owned node.
///
/// The halo is what makes shards self-sufficient for inference: the
/// supporting-set BFS of Algorithm 1 walks at most T_max hops from a query
/// node, so as long as T_max <= halo_hops and queries are routed to their
/// owning shard, the BFS never needs a node outside the shard.
///
/// Local ids are positions in `nodes`, which is sorted by global id. Because
/// the ordering is monotone, the induced adjacency keeps each row's
/// neighbors in the same relative order as the full graph — the property
/// that makes sharded propagation bit-identical to unsharded (float
/// accumulation order per row is preserved).
struct GraphShard {
  /// Global ids owned by this shard (sorted). Queries route here.
  std::vector<std::int32_t> owned;
  /// Global ids present in the shard: owned plus halo (sorted).
  std::vector<std::int32_t> nodes;
  /// global id -> local id in `nodes`; -1 when absent. Sized to the full
  /// graph's node count.
  std::vector<std::int32_t> global_to_local;
  /// Subgraph induced on `nodes` (local node i is nodes[i] globally).
  /// Note: halo-boundary nodes lose their out-of-shard edges here, so their
  /// *local* degree undercounts the global one; owned nodes keep all
  /// neighbors whenever halo_hops >= 1. Shards built by IdentityShards
  /// leave this empty (the shard IS the full graph — consumers use the
  /// global adjacency instead of a materialized copy).
  Graph graph;

  std::int64_t num_owned() const {
    return static_cast<std::int64_t>(owned.size());
  }
  std::int64_t num_halo() const {
    return static_cast<std::int64_t>(nodes.size() - owned.size());
  }
  bool contains(std::int32_t global_id) const {
    return global_to_local[global_id] >= 0;
  }
};

/// A disjoint partition of a graph's nodes into shards with overlapping
/// halos. Owned sets partition V; `owner[v]` names v's shard.
struct ShardedGraph {
  int halo_hops = 0;
  /// owner[v] = shard owning global node v (size = num_nodes of the source).
  std::vector<std::int32_t> owner;
  std::vector<GraphShard> shards;

  std::size_t num_shards() const { return shards.size(); }
};

/// Partitions the graph behind `adj` (raw symmetric adjacency, any storage
/// backend; values ignored) into `num_shards` balanced contiguous ranges of
/// node ids (sizes differ by at most one) and builds each shard's
/// halo_hops-hop halo by BFS over the full adjacency.
///
/// Throws nai::ValidationError when num_shards < 1, num_shards exceeds the
/// node count, halo_hops < 0, or the graph is empty.
ShardedGraph MakeShards(CsrView adj, int num_shards, int halo_hops);
inline ShardedGraph MakeShards(const Graph& graph, int num_shards,
                               int halo_hops) {
  return MakeShards(graph.adjacency().view(), num_shards, halo_hops);
}

/// Same, but with an explicit owner assignment (e.g. by connected component
/// or a min-cut partitioner): owner[v] in [0, num_shards) with
/// num_shards = max(owner) + 1. Empty shards are permitted. Throws
/// nai::ValidationError when owner's size mismatches the graph or an entry
/// is negative.
ShardedGraph MakeShards(CsrView adj, std::vector<std::int32_t> owner,
                        int halo_hops);
inline ShardedGraph MakeShards(const Graph& graph,
                               std::vector<std::int32_t> owner,
                               int halo_hops) {
  return MakeShards(graph.adjacency().view(), std::move(owner), halo_hops);
}

/// The degenerate single-shard partition: one shard owning every node, no
/// halo, and — unlike MakeShards with num_shards = 1 — no materialized
/// shard subgraph or adjacency copy. This is the out-of-core serving
/// configuration: the shard engine reads the global (possibly memory-
/// mapped) adjacency directly, so a multi-GB store is never duplicated
/// into per-shard pooled vectors. Throws nai::ValidationError when
/// num_nodes < 1 or halo_hops < 0.
ShardedGraph IdentityShards(std::int64_t num_nodes, int halo_hops);

}  // namespace nai::graph

#endif  // NAI_GRAPH_SHARD_H_
