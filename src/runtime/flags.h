#ifndef NAI_RUNTIME_FLAGS_H_
#define NAI_RUNTIME_FLAGS_H_

#include <cstdlib>
#include <cstring>

#include "src/runtime/thread_pool.h"

namespace nai::runtime {

/// Consumes one `--name N` / `--name=N` integer flag shared by the bench
/// and example binaries, removing it from argv (so wrapped argument parsers
/// like google-benchmark never see it). Returns the parsed value, or 0 when
/// the flag is absent or its value is missing, unparseable, or
/// non-positive — the flag is removed either way.
inline long ConsumeIntFlag(int& argc, char** argv, const char* name) {
  const std::size_t name_len = std::strlen(name);
  long parsed = 0;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    bool consume = false;
    if (std::strncmp(arg, name, name_len) == 0) {
      if (arg[name_len] == '\0') {
        consume = true;
        // Take the next token as the value only when it isn't another flag,
        // so `--threads --benchmark_filter=...` doesn't swallow the filter.
        if (i + 1 < argc && argv[i + 1][0] != '-') value = argv[++i];
      } else if (arg[name_len] == '=') {
        consume = true;
        value = arg + name_len + 1;
      }
    }
    if (consume) {  // flag (and its value, if any) removed either way
      if (value != nullptr) {
        char* end = nullptr;
        const long v = std::strtol(value, &end, 10);
        if (end != value && *end == '\0' && v > 0) parsed = v;
      }
      continue;
    }
    argv[w++] = argv[i];
  }
  argv[w] = nullptr;  // keep the argv[argc] == NULL invariant for wrappees
  argc = w;
  return parsed;
}

/// Consumes a `--threads N` / `--threads=N` argument: resizes the default
/// pool accordingly. Invalid or absent values leave the NAI_THREADS /
/// hardware default in place. Returns the resulting default-pool thread
/// count.
inline int ApplyThreadsFlag(int& argc, char** argv) {
  const long requested = ConsumeIntFlag(argc, argv, "--threads");
  if (requested > 0) ThreadPool::SetDefaultThreads(static_cast<int>(requested));
  return ThreadPool::Default().num_threads();
}

/// Consumes a `--shards N` / `--shards=N` argument: how many serving-graph
/// shards to partition into (see core::ShardedNaiEngine). Returns 1 —
/// unsharded — when absent or invalid. Purely a parse: the caller decides
/// what to build from it.
inline int ShardsFlag(int& argc, char** argv) {
  const long requested = ConsumeIntFlag(argc, argv, "--shards");
  return requested > 0 ? static_cast<int>(requested) : 1;
}

}  // namespace nai::runtime

#endif  // NAI_RUNTIME_FLAGS_H_
