#ifndef NAI_RUNTIME_FLAGS_H_
#define NAI_RUNTIME_FLAGS_H_

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/runtime/thread_pool.h"

namespace nai::runtime {

/// Consumes one `--name V` / `--name=V` flag shared by the bench and
/// example binaries, removing every occurrence from argv (so wrapped
/// argument parsers like google-benchmark never see it). Returns the last
/// occurrence's value — a pointer into argv, stable for the program's
/// lifetime — or nullptr when the flag is absent or has no value. A
/// separate value token starting with '-' is not consumed, so
/// `--threads --benchmark_filter=...` doesn't swallow the filter. This is
/// the one argv scan; the typed flag helpers below parse on top of it.
inline const char* ConsumeStringFlag(int& argc, char** argv,
                                     const char* name) {
  const std::size_t name_len = std::strlen(name);
  const char* parsed = nullptr;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    bool consume = false;
    if (std::strncmp(arg, name, name_len) == 0) {
      if (arg[name_len] == '\0') {
        consume = true;
        if (i + 1 < argc && argv[i + 1][0] != '-') value = argv[++i];
      } else if (arg[name_len] == '=') {
        consume = true;
        value = arg + name_len + 1;
      }
    }
    if (consume) {  // flag (and its value, if any) removed either way
      if (value != nullptr) parsed = value;
      continue;
    }
    argv[w++] = argv[i];
  }
  argv[w] = nullptr;  // keep the argv[argc] == NULL invariant for wrappees
  argc = w;
  return parsed;
}

/// Integer variant: returns the parsed value of the last occurrence, or 0
/// when the flag is absent or its value is missing, unparseable, or
/// non-positive — the flag is removed either way.
inline long ConsumeIntFlag(int& argc, char** argv, const char* name) {
  const char* value = ConsumeStringFlag(argc, argv, name);
  if (value == nullptr) return 0;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  return end != value && *end == '\0' && v > 0 ? v : 0;
}

/// Consumes a `--threads N` / `--threads=N` argument: resizes the default
/// pool accordingly. Invalid or absent values leave the NAI_THREADS /
/// hardware default in place. Returns the resulting default-pool thread
/// count.
inline int ApplyThreadsFlag(int& argc, char** argv) {
  const long requested = ConsumeIntFlag(argc, argv, "--threads");
  if (requested > 0) ThreadPool::SetDefaultThreads(static_cast<int>(requested));
  return ThreadPool::Default().num_threads();
}

/// Consumes a `--shards N` / `--shards=N` argument: how many serving-graph
/// shards to partition into (see core::ShardedNaiEngine). Returns 1 —
/// unsharded — when absent or invalid. Purely a parse: the caller decides
/// what to build from it.
inline int ShardsFlag(int& argc, char** argv) {
  const long requested = ConsumeIntFlag(argc, argv, "--shards");
  return requested > 0 ? static_cast<int>(requested) : 1;
}

/// Consumes a `--qos V` argument: the percentage of serving traffic
/// submitted speed-first (the rest is accuracy-first). Accepts the class
/// names "speed" (100), "accuracy" (0), "mix" (50), or an integer in
/// [0, 100]. Returns `def` when absent or invalid. Purely a parse.
inline int QosMixFlag(int& argc, char** argv, int def = 50) {
  const char* value = ConsumeStringFlag(argc, argv, "--qos");
  if (value == nullptr) return def;
  if (std::strcmp(value, "speed") == 0) return 100;
  if (std::strcmp(value, "accuracy") == 0) return 0;
  if (std::strcmp(value, "mix") == 0) return 50;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end != value && *end == '\0' && v >= 0 && v <= 100) {
    return static_cast<int>(v);
  }
  return def;
}

/// Consumes an `--arrival-rate N` argument: the open-loop offered load in
/// queries/second for the serving load generator. Returns 0 — closed-loop
/// — when absent or invalid. Purely a parse.
inline long ArrivalRateFlag(int& argc, char** argv) {
  return ConsumeIntFlag(argc, argv, "--arrival-rate");
}

/// Consumes a `--zipf A` argument: the Zipf skew exponent alpha for the
/// serving load generator (eval::ServingLoadConfig::zipf_alpha; draws node
/// j with probability proportional to (j+1)^-alpha). Returns 0.0 —
/// unskewed, one request per node — when absent, or when the value is
/// missing, unparseable, non-finite or negative. Purely a parse.
inline double ZipfFlag(int& argc, char** argv) {
  const char* value = ConsumeStringFlag(argc, argv, "--zipf");
  if (value == nullptr) return 0.0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0') return 0.0;
  if (!(v > 0.0) || !std::isfinite(v)) return 0.0;
  return v;
}

/// Consumes an `--update-rate N` argument: delta batches per second the
/// update-churn load generator feeds through ServingEngine::ApplyDeltas
/// (eval::ServingLoadConfig::updates_per_sec). Returns 0 — no pacing /
/// caller default — when absent or invalid. Purely a parse.
inline long UpdateRateFlag(int& argc, char** argv) {
  return ConsumeIntFlag(argc, argv, "--update-rate");
}

/// Consumes a `--store mem|mmap` argument and, when present, exports it as
/// NAI_STORE so every storage::DefaultBackend() call in the process — the
/// harness engine factories included — resolves to the requested backend.
/// The flag wins over a pre-existing NAI_STORE value. Returns the value the
/// environment ended up with ("mem" when neither flag nor variable is set).
/// Validation happens at the first DefaultBackend() call, which throws
/// nai::ValidationError on an unknown name.
inline const char* ApplyStoreFlag(int& argc, char** argv) {
  const char* value = ConsumeStringFlag(argc, argv, "--store");
  if (value != nullptr) {
    ::setenv("NAI_STORE", value, /*overwrite=*/1);
    return value;
  }
  const char* env = std::getenv("NAI_STORE");
  return env != nullptr && env[0] != '\0' ? env : "mem";
}

}  // namespace nai::runtime

#endif  // NAI_RUNTIME_FLAGS_H_
