#ifndef NAI_RUNTIME_FLAGS_H_
#define NAI_RUNTIME_FLAGS_H_

#include <cstdlib>
#include <cstring>

#include "src/runtime/thread_pool.h"

namespace nai::runtime {

/// Consumes a `--threads N` / `--threads=N` argument shared by every bench
/// and example binary: resizes the default pool accordingly and removes the
/// flag from argv (so wrapped argument parsers like google-benchmark never
/// see it). Invalid or absent values leave the NAI_THREADS / hardware
/// default in place. Returns the resulting default-pool thread count.
inline int ApplyThreadsFlag(int& argc, char** argv) {
  int requested = 0;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    bool consume = false;
    if (std::strncmp(arg, "--threads", 9) == 0) {
      if (arg[9] == '\0') {
        consume = true;
        // Take the next token as the value only when it isn't another flag,
        // so `--threads --benchmark_filter=...` doesn't swallow the filter.
        if (i + 1 < argc && argv[i + 1][0] != '-') value = argv[++i];
      } else if (arg[9] == '=') {
        consume = true;
        value = arg + 10;
      }
    }
    if (consume) {  // flag (and its value, if any) removed either way
      if (value != nullptr) {
        char* end = nullptr;
        const long v = std::strtol(value, &end, 10);
        if (end != value && *end == '\0' && v > 0) {
          requested = static_cast<int>(v);
        }
      }
      continue;
    }
    argv[w++] = argv[i];
  }
  argv[w] = nullptr;  // keep the argv[argc] == NULL invariant for wrappees
  argc = w;
  if (requested > 0) ThreadPool::SetDefaultThreads(requested);
  return ThreadPool::Default().num_threads();
}

}  // namespace nai::runtime

#endif  // NAI_RUNTIME_FLAGS_H_
