#ifndef NAI_RUNTIME_THREAD_POOL_H_
#define NAI_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nai::runtime {

/// A persistent worker pool for data-parallel loops.
///
/// Workers are spawned once and reused across every ParallelFor call, so the
/// per-call cost is a wakeup instead of thread creation/join. Work is split
/// into contiguous index chunks sized by a *cost-based* grain: callers report
/// the approximate scalar-op cost of one index and the pool sizes chunks so
/// each carries at least kMinChunkWork scalar ops. This is what lets a wide
/// 1000-row MatMul fan out while a 1000-row elementwise op stays inline.
///
/// Determinism: chunks are dealt to whichever worker asks first, but every
/// index is executed exactly once and callers are expected to write only to
/// the output slots of their index range — under that contract results are
/// bit-exact for any thread count.
///
/// Nesting: a ParallelFor issued from inside a worker (including the calling
/// thread while it participates in an outer loop) runs inline over the whole
/// range. Inter-batch parallelism therefore composes with kernel parallelism
/// without deadlock.
class ThreadPool {
 public:
  /// Minimum scalar-op cost of one dispatched chunk; below this, dispatch
  /// overhead (a wakeup, ~µs) exceeds the work itself.
  static constexpr std::size_t kMinChunkWork = 32768;

  /// `num_threads` <= 0 resolves via NAI_THREADS, then hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `fn(i0, i1)` over contiguous subranges covering [begin, end)
  /// exactly once. `grain` is the approximate scalar-op cost of ONE index
  /// (e.g. k*n for a MatMul output row); it sets the chunk size. The calling
  /// thread participates. Serializes concurrent top-level calls; nested
  /// calls from workers run inline.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  /// The lazily-initialized process-wide pool (NAI_THREADS or hardware
  /// concurrency threads). All tensor/graph kernels run here unless an
  /// ExecContext routes them elsewhere or a ScopedDefaultPool overrides the
  /// resolution on the current thread.
  static ThreadPool& Default();

  /// Replaces the default pool with one of `num_threads` threads (<= 0 =
  /// auto). Must not race in-flight ParallelFors on the old default pool —
  /// call at startup or between runs (the --threads flag path).
  static void SetDefaultThreads(int num_threads);

  /// Strictly parsed NAI_THREADS override: returns 0 (ignored) for unset,
  /// garbage, or non-positive values, else the value clamped to [1, 256].
  static int EnvThreads();

  /// Items per chunk for a per-index cost of `grain` scalar ops.
  static std::size_t ChunkFor(std::size_t grain);

  /// How many workers a (items, grain) job fans out to on a pool of
  /// `threads` threads. Exposed for tests pinning the splitting heuristic
  /// (the old row-count-only rule left wide-matrix MatMuls single-threaded).
  static std::size_t PlannedWorkers(std::size_t items, std::size_t grain,
                                    int threads);

 private:
  void WorkerLoop();
  void RunChunks(const std::function<void(std::size_t, std::size_t)>& fn,
                 std::size_t end, std::size_t chunk);

  int num_threads_;
  std::vector<std::thread> workers_;  // num_threads_ - 1 of them

  std::mutex mu_;  // guards the job fields and both condition variables
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  bool shutdown_ = false;
  std::uint64_t job_id_ = 0;
  const std::function<void(std::size_t, std::size_t)>* job_fn_ = nullptr;
  std::size_t job_end_ = 0;
  std::size_t job_chunk_ = 1;
  int job_unfinished_ = 0;
  std::atomic<std::size_t> job_next_{0};
  std::atomic<int> job_slots_{0};  // worker participation slots left

  std::mutex submit_mu_;  // one top-level ParallelFor at a time
};

/// RAII thread-local override: while alive, ThreadPool::Default() — and
/// therefore every default-constructed ExecContext used on this thread —
/// resolves to the given pool. This is how NaiEngine routes *all* kernels
/// of a run onto its ExecContext's pool, including GEMMs deep inside the
/// nn layer that only ever see default contexts.
class ScopedDefaultPool {
 public:
  explicit ScopedDefaultPool(ThreadPool& pool);
  ~ScopedDefaultPool();
  ScopedDefaultPool(const ScopedDefaultPool&) = delete;
  ScopedDefaultPool& operator=(const ScopedDefaultPool&) = delete;

 private:
  ThreadPool* prev_;
};

/// Pool-backed loop over [begin, end) on the default pool. The drop-in
/// replacement for the old spawn-per-call tensor::ParallelFor.
inline void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                        const std::function<void(std::size_t, std::size_t)>& fn) {
  ThreadPool::Default().ParallelFor(begin, end, grain, fn);
}

/// Runs each task on its own plain thread and joins them all before
/// returning; the first task exception (lowest index) is rethrown on the
/// caller after every task has finished.
///
/// This is the coarse fan-out primitive for work that must land on
/// *different pools* — e.g. one serving shard per task, each pinning its
/// own pool — where ParallelFor cannot help: a loop dispatched on one pool
/// would run the tasks' nested ParallelFors inline instead of on their
/// shards' pools. Thread spawn cost (~tens of µs) only suits callers whose
/// tasks run for milliseconds; per-row work belongs on a ThreadPool.
void RunConcurrently(const std::vector<std::function<void()>>& tasks);

}  // namespace nai::runtime

#endif  // NAI_RUNTIME_THREAD_POOL_H_
