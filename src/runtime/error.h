#ifndef NAI_RUNTIME_ERROR_H_
#define NAI_RUNTIME_ERROR_H_

#include <stdexcept>

namespace nai {

/// The library's two-exception taxonomy. Both derive from the standard
/// types previously thrown ad hoc across graph/, io/ and core/, so callers
/// (and tests) catching std::invalid_argument / std::runtime_error keep
/// working; new code should catch these instead.
///
/// ValidationError: the caller handed us bad data — out-of-range ids,
/// mismatched shapes, malformed configurations. Always checked, including
/// in release (NDEBUG) builds: input validation must never compile away.
class ValidationError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// IoError: the outside world failed us — short reads, bad magic, version
/// or checksum mismatches, unmappable files.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace nai

#endif  // NAI_RUNTIME_ERROR_H_
