#ifndef NAI_RUNTIME_EXEC_CONTEXT_H_
#define NAI_RUNTIME_EXEC_CONTEXT_H_

#include "src/runtime/thread_pool.h"

namespace nai::runtime {

/// The execution handle layers pass down instead of ad-hoc thread counts.
///
/// A default-constructed context routes to the process-wide default pool
/// (NAI_THREADS / hardware concurrency); deployments that want isolated
/// resources (e.g. one pool per serving shard) point `pool` at their own.
/// Copyable and cheap: it owns nothing.
struct ExecContext {
  ThreadPool* pool = nullptr;  ///< nullptr = ThreadPool::Default()

  ThreadPool& pool_or_default() const {
    return pool != nullptr ? *pool : ThreadPool::Default();
  }

  int num_threads() const { return pool_or_default().num_threads(); }

  /// Pool-backed loop over [begin, end); see ThreadPool::ParallelFor.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& fn) const {
    pool_or_default().ParallelFor(begin, end, grain, fn);
  }
};

}  // namespace nai::runtime

#endif  // NAI_RUNTIME_EXEC_CONTEXT_H_
