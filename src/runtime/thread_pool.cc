#include "src/runtime/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <memory>

namespace nai::runtime {

namespace {

/// Set while a thread is executing chunks of some pool's job (workers
/// permanently, the submitting thread for the duration of its loop). Nested
/// ParallelFors test this and run inline.
thread_local const ThreadPool* tls_in_pool = nullptr;

/// Per-thread ScopedDefaultPool override of ThreadPool::Default().
thread_local ThreadPool* tls_default_override = nullptr;

int ResolveThreads(int num_threads) {
  if (num_threads > 0) return std::min(num_threads, 256);
  const int env = ThreadPool::EnvThreads();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min(hw, 256u));
}

std::mutex g_default_mu;
std::unique_ptr<ThreadPool> g_default_owner;
std::atomic<ThreadPool*> g_default{nullptr};

}  // namespace

int ThreadPool::EnvThreads() {
  const char* env = std::getenv("NAI_THREADS");
  if (env == nullptr) return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  // Same discipline as NAI_SCALE: unparseable input is ignored outright
  // rather than clamped, and so are non-positive counts. Stricter than
  // strtod-based NAI_SCALE in one way: a thread count with trailing junk
  // ("6abc") is rejected whole.
  if (end == env || *end != '\0' || v <= 0) return 0;
  return static_cast<int>(std::min<long>(v, 256));
}

std::size_t ThreadPool::ChunkFor(std::size_t grain) {
  return std::max<std::size_t>(1, kMinChunkWork / std::max<std::size_t>(1, grain));
}

std::size_t ThreadPool::PlannedWorkers(std::size_t items, std::size_t grain,
                                       int threads) {
  if (items == 0 || threads <= 1) return items == 0 ? 0 : 1;
  const std::size_t chunk = ChunkFor(grain);
  const std::size_t chunks = (items + chunk - 1) / chunk;
  return std::min<std::size_t>(static_cast<std::size_t>(threads), chunks);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(ResolveThreads(num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  tls_in_pool = this;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_start_.wait(lock, [&] { return shutdown_ || job_id_ != seen; });
    if (shutdown_) return;
    seen = job_id_;
    // Participation is capped at the job's chunk count: a worker without a
    // slot goes straight back to waiting, and the submitter never waits on
    // it — small jobs on big pools don't pay a full wakeup barrier.
    if (job_slots_.fetch_sub(1, std::memory_order_acq_rel) <= 0) continue;
    const auto* fn = job_fn_;
    const std::size_t end = job_end_;
    const std::size_t chunk = job_chunk_;
    lock.unlock();
    RunChunks(*fn, end, chunk);
    lock.lock();
    if (--job_unfinished_ == 0) cv_done_.notify_one();
  }
}

void ThreadPool::RunChunks(
    const std::function<void(std::size_t, std::size_t)>& fn, std::size_t end,
    std::size_t chunk) {
  const ThreadPool* prev = tls_in_pool;
  tls_in_pool = this;
  for (;;) {
    const std::size_t i = job_next_.fetch_add(chunk, std::memory_order_relaxed);
    if (i >= end) break;
    fn(i, std::min(end, i + chunk));
  }
  tls_in_pool = prev;
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t chunk = ChunkFor(grain);
  // Inline when there is nothing to share, the job is below one chunk of
  // work, or we are already inside a pool (nested call).
  if (num_threads_ <= 1 || end - begin <= chunk || tls_in_pool != nullptr) {
    fn(begin, end);
    return;
  }
  std::lock_guard<std::mutex> submit(submit_mu_);
  const std::size_t chunks = (end - begin + chunk - 1) / chunk;
  // The submitting thread takes one chunk stream itself; helpers beyond
  // chunks-1 would only wake to find no work.
  const int helpers = static_cast<int>(
      std::min(workers_.size(), static_cast<std::size_t>(chunks - 1)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_end_ = end;
    job_chunk_ = chunk;
    job_next_.store(begin, std::memory_order_relaxed);
    job_unfinished_ = helpers;
    job_slots_.store(helpers, std::memory_order_relaxed);
    ++job_id_;
  }
  cv_start_.notify_all();
  RunChunks(fn, end, chunk);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return job_unfinished_ == 0; });
  job_fn_ = nullptr;
}

ThreadPool& ThreadPool::Default() {
  if (tls_default_override != nullptr) return *tls_default_override;
  ThreadPool* pool = g_default.load(std::memory_order_acquire);
  if (pool != nullptr) return *pool;
  std::lock_guard<std::mutex> lock(g_default_mu);
  pool = g_default.load(std::memory_order_relaxed);
  if (pool == nullptr) {
    g_default_owner = std::make_unique<ThreadPool>(0);
    pool = g_default_owner.get();
    g_default.store(pool, std::memory_order_release);
  }
  return *pool;
}

void ThreadPool::SetDefaultThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(g_default_mu);
  ThreadPool* cur = g_default.load(std::memory_order_relaxed);
  const int want = ResolveThreads(num_threads);
  if (cur != nullptr && cur->num_threads() == want) return;
  // Joins the old pool's workers before replacing it; callers must not have
  // ParallelFors in flight (documented in the header).
  g_default.store(nullptr, std::memory_order_release);
  g_default_owner = std::make_unique<ThreadPool>(want);
  g_default.store(g_default_owner.get(), std::memory_order_release);
}

ScopedDefaultPool::ScopedDefaultPool(ThreadPool& pool)
    : prev_(tls_default_override) {
  tls_default_override = &pool;
}

ScopedDefaultPool::~ScopedDefaultPool() { tls_default_override = prev_; }

void RunConcurrently(const std::vector<std::function<void()>>& tasks) {
  std::vector<std::exception_ptr> errors(tasks.size());
  std::vector<std::thread> threads;
  threads.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    threads.emplace_back([&tasks, &errors, i] {
      try {
        tasks[i]();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace nai::runtime
