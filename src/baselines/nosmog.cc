#include "src/baselines/nosmog.h"

#include <cassert>

#include "src/graph/normalize.h"
#include "src/nn/adam.h"
#include "src/nn/loss.h"
#include "src/tensor/ops.h"
#include "src/tensor/random.h"

namespace nai::baselines {

Nosmog::Nosmog(std::size_t feature_dim, std::size_t num_classes,
               const NosmogConfig& config)
    : config_(config), rng_(config.seed) {
  mlp_ = nn::Mlp(feature_dim + config.position_dim, config.hidden_dims,
                 num_classes, config.dropout, rng_);
}

void Nosmog::Train(const graph::Graph& train_graph,
                   const tensor::Matrix& features,
                   const tensor::Matrix& teacher_logits,
                   const std::vector<std::int32_t>& labels,
                   const std::vector<std::int32_t>& labeled) {
  assert(static_cast<std::int64_t>(features.rows()) ==
         train_graph.num_nodes());

  // Structural embedding: random Gaussian code smoothed over the graph.
  train_positions_.Resize(train_graph.num_nodes(), config_.position_dim);
  tensor::FillGaussian(train_positions_, 1.0f, rng_);
  const graph::Csr adj = graph::NormalizedAdjacency(train_graph, 1.0f);
  for (int it = 0; it < config_.walk_smoothing; ++it) {
    train_positions_ = graph::SpMM(adj, train_positions_);
  }
  tensor::NormalizeRowsInPlace(train_positions_);

  const tensor::Matrix input =
      tensor::ConcatCols({&features, &train_positions_});
  const float T = config_.temperature;
  const tensor::Matrix teacher_soft = tensor::SoftmaxRows(teacher_logits, T);

  nn::Adam adam({.learning_rate = config_.learning_rate,
                 .weight_decay = config_.weight_decay});
  {
    std::vector<nn::Parameter*> params;
    mlp_.CollectParameters(params);
    adam.Register(params);
  }

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    adam.ZeroGrad();
    // Gaussian input perturbation as the adversarial-augmentation stand-in.
    tensor::Matrix noisy = input;
    if (config_.feature_noise > 0.0f) {
      float* d = noisy.data();
      for (std::size_t i = 0; i < noisy.size(); ++i) {
        d[i] += config_.feature_noise * rng_.NextGaussian();
      }
    }
    const tensor::Matrix logits = mlp_.Forward(noisy, /*train=*/true, &rng_);
    const nn::LossResult kd =
        nn::SoftTargetCrossEntropy(logits, teacher_soft, T);
    tensor::Matrix grad = kd.grad_logits;
    tensor::ScaleInPlace(grad, config_.lambda * T * T);
    const tensor::Matrix probs = tensor::SoftmaxRows(logits);
    const float w =
        (1.0f - config_.lambda) / static_cast<float>(labeled.size());
    for (const std::int32_t i : labeled) {
      float* g = grad.row(i);
      const float* p = probs.row(i);
      for (std::size_t j = 0; j < logits.cols(); ++j) g[j] += w * p[j];
      g[labels[i]] -= w;
    }
    mlp_.Backward(grad);
    adam.Step();
  }
}

NosmogResult Nosmog::Infer(const graph::Graph& full_graph,
                           const tensor::Matrix& full_features,
                           const std::vector<std::int32_t>& train_nodes,
                           const std::vector<std::int32_t>& query_nodes) {
  NosmogResult out;
  const std::size_t pd = config_.position_dim;

  // Scatter the trained position features to global ids once (setup cost,
  // not counted: a deployment would store them this way).
  std::vector<std::int32_t> global_to_train(full_graph.num_nodes(), -1);
  for (std::size_t i = 0; i < train_nodes.size(); ++i) {
    global_to_train[train_nodes[i]] = static_cast<std::int32_t>(i);
  }

  eval::Timer fp_timer;
  // Online position aggregation for the queried (unseen) nodes: mean of the
  // known neighbors' position features — one sparse matmul worth of work.
  tensor::Matrix positions(query_nodes.size(), pd);
  std::int64_t agg_macs = 0;
  for (std::size_t qi = 0; qi < query_nodes.size(); ++qi) {
    const std::int32_t v = query_nodes[qi];
    float* prow = positions.row(qi);
    if (global_to_train[v] >= 0) {
      const float* src = train_positions_.row(global_to_train[v]);
      for (std::size_t j = 0; j < pd; ++j) prow[j] = src[j];
      continue;
    }
    std::int64_t known = 0;
    for (const auto* it = full_graph.neighbors_begin(v);
         it != full_graph.neighbors_end(v); ++it) {
      const std::int32_t t = global_to_train[*it];
      if (t < 0) continue;
      const float* src = train_positions_.row(t);
      for (std::size_t j = 0; j < pd; ++j) prow[j] += src[j];
      ++known;
    }
    agg_macs += known * static_cast<std::int64_t>(pd);
    if (known > 0) {
      const float inv = 1.0f / static_cast<float>(known);
      for (std::size_t j = 0; j < pd; ++j) prow[j] *= inv;
    }
  }
  out.cost.fp_time_ms = fp_timer.ElapsedMs();
  out.cost.fp_macs = agg_macs;

  eval::Timer total_timer;
  const tensor::Matrix feats = full_features.GatherRows(query_nodes);
  const tensor::Matrix input = tensor::ConcatCols({&feats, &positions});
  const tensor::Matrix logits = mlp_.Forward(input, /*train=*/false);
  out.predictions = tensor::ArgmaxRows(logits);
  out.cost.total_time_ms = out.cost.fp_time_ms + total_timer.ElapsedMs();
  out.cost.total_macs =
      out.cost.fp_macs + mlp_.ForwardMacs(query_nodes.size());
  return out;
}

}  // namespace nai::baselines
