#include "src/baselines/glnn.h"

#include <cassert>

#include "src/nn/adam.h"
#include "src/nn/loss.h"
#include "src/tensor/ops.h"

namespace nai::baselines {

Glnn::Glnn(std::size_t feature_dim, std::size_t num_classes,
           const GlnnConfig& config)
    : config_(config), rng_(config.seed) {
  mlp_ = nn::Mlp(feature_dim, config.hidden_dims, num_classes,
                 config.dropout, rng_);
}

void Glnn::Train(const tensor::Matrix& features,
                 const tensor::Matrix& teacher_logits,
                 const std::vector<std::int32_t>& labels,
                 const std::vector<std::int32_t>& labeled) {
  assert(features.rows() == teacher_logits.rows());
  assert(features.rows() == labels.size());
  const float T = config_.temperature;
  const tensor::Matrix teacher_soft =
      tensor::SoftmaxRows(teacher_logits, T);

  nn::Adam adam({.learning_rate = config_.learning_rate,
                 .weight_decay = config_.weight_decay});
  {
    std::vector<nn::Parameter*> params;
    mlp_.CollectParameters(params);
    adam.Register(params);
  }

  // Hard-label CE restricted to V_l, soft KD over all training rows — the
  // same mixture as Eq. 17, with the GNN teacher's soft targets.
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    adam.ZeroGrad();
    const tensor::Matrix logits = mlp_.Forward(features, /*train=*/true,
                                               &rng_);
    const nn::LossResult kd =
        nn::SoftTargetCrossEntropy(logits, teacher_soft, T);
    tensor::Matrix grad = kd.grad_logits;
    tensor::ScaleInPlace(grad, config_.lambda * T * T);
    // Masked hard-label term.
    const tensor::Matrix probs = tensor::SoftmaxRows(logits);
    const float w = (1.0f - config_.lambda) /
                    static_cast<float>(labeled.size());
    for (const std::int32_t i : labeled) {
      float* g = grad.row(i);
      const float* p = probs.row(i);
      for (std::size_t j = 0; j < logits.cols(); ++j) g[j] += w * p[j];
      g[labels[i]] -= w;
    }
    mlp_.Backward(grad);
    adam.Step();
  }
}

GlnnResult Glnn::Infer(const tensor::Matrix& features) {
  GlnnResult out;
  eval::Timer timer;
  const tensor::Matrix logits = mlp_.Forward(features, /*train=*/false);
  out.predictions = tensor::ArgmaxRows(logits);
  out.cost.total_time_ms = timer.ElapsedMs();
  out.cost.total_macs = mlp_.ForwardMacs(features.rows());
  // No feature propagation at all: FP MACs and FP time are zero.
  return out;
}

}  // namespace nai::baselines
