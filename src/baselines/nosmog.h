#ifndef NAI_BASELINES_NOSMOG_H_
#define NAI_BASELINES_NOSMOG_H_

#include <cstdint>
#include <vector>

#include "src/eval/metrics.h"
#include "src/graph/graph.h"
#include "src/nn/mlp.h"
#include "src/tensor/matrix.h"

namespace nai::baselines {

/// NOSMOG (Tian et al., ICLR 2023): GLNN plus explicit structural position
/// features, so the MLP student is no longer blind to topology. Following
/// the paper's re-implementation note (footnote 3), position features for
/// unseen nodes are aggregated from their neighbors by sparse matrix
/// multiplication at inference time.
///
/// Substitution (documented in DESIGN.md): DeepWalk embeddings are replaced
/// by a smoothed random-projection structural embedding — `walk_smoothing`
/// rounds of neighbor averaging of a random Gaussian code over the training
/// graph. Like DeepWalk it embeds co-occurrence structure, and it exercises
/// the identical inference code path (online 1-hop aggregation for unseen
/// nodes). Adversarial feature augmentation is approximated by Gaussian
/// input noise during training.
struct NosmogConfig {
  std::vector<std::size_t> hidden_dims;
  std::size_t position_dim = 16;
  int walk_smoothing = 4;
  float feature_noise = 0.05f;  ///< adversarial-augmentation stand-in
  float dropout = 0.1f;
  int epochs = 200;
  float learning_rate = 1e-2f;
  float weight_decay = 0.0f;
  float temperature = 1.0f;
  float lambda = 0.5f;
  std::uint64_t seed = 13;
};

struct NosmogResult {
  std::vector<std::int32_t> predictions;
  eval::CostCounters cost;
};

class Nosmog {
 public:
  Nosmog(std::size_t feature_dim, std::size_t num_classes,
         const NosmogConfig& config);

  /// Trains on the training graph: builds position features on
  /// `train_graph`, distills from `teacher_logits` (rows = train-graph
  /// local nodes).
  void Train(const graph::Graph& train_graph, const tensor::Matrix& features,
             const tensor::Matrix& teacher_logits,
             const std::vector<std::int32_t>& labels,
             const std::vector<std::int32_t>& labeled);

  /// Classifies nodes of the full graph. Position features of unseen nodes
  /// are aggregated online from training neighbors (the FP cost of NOSMOG).
  /// `train_nodes[i]` is the global id of train-graph local node i.
  NosmogResult Infer(const graph::Graph& full_graph,
                     const tensor::Matrix& full_features,
                     const std::vector<std::int32_t>& train_nodes,
                     const std::vector<std::int32_t>& query_nodes);

  const tensor::Matrix& train_positions() const { return train_positions_; }

 private:
  NosmogConfig config_;
  nn::Mlp mlp_;
  tensor::Rng rng_;
  tensor::Matrix train_positions_;  // train-local rows x position_dim
};

}  // namespace nai::baselines

#endif  // NAI_BASELINES_NOSMOG_H_
