#ifndef NAI_BASELINES_GLNN_H_
#define NAI_BASELINES_GLNN_H_

#include <cstdint>
#include <vector>

#include "src/eval/metrics.h"
#include "src/nn/mlp.h"
#include "src/tensor/matrix.h"

namespace nai::baselines {

/// GLNN (Zhang et al., ICLR 2022): distill a GNN teacher into a plain MLP
/// that reads only raw node features, eliminating all neighbor fetching at
/// inference. The paper widens the student's hidden layer (4x/8x the
/// teacher) to partially recover capacity.
struct GlnnConfig {
  std::vector<std::size_t> hidden_dims;  ///< already widened
  float dropout = 0.1f;
  int epochs = 200;
  float learning_rate = 1e-2f;
  float weight_decay = 0.0f;
  float temperature = 1.0f;  ///< KD temperature
  float lambda = 0.5f;       ///< KD weight vs hard labels
  std::uint64_t seed = 11;
};

struct GlnnResult {
  std::vector<std::int32_t> predictions;
  eval::CostCounters cost;
};

class Glnn {
 public:
  Glnn(std::size_t feature_dim, std::size_t num_classes,
       const GlnnConfig& config);

  /// Distills from teacher logits over the training rows. `features` are
  /// the raw (un-propagated) features of the training rows; `labels` their
  /// labels; `labeled` the V_l row positions.
  void Train(const tensor::Matrix& features,
             const tensor::Matrix& teacher_logits,
             const std::vector<std::int32_t>& labels,
             const std::vector<std::int32_t>& labeled);

  /// Classifies raw feature rows; counts MACs and time. FP cost is zero by
  /// construction (no propagation).
  GlnnResult Infer(const tensor::Matrix& features) ;

  nn::Mlp& mlp() { return mlp_; }

 private:
  GlnnConfig config_;
  nn::Mlp mlp_;
  tensor::Rng rng_;
};

}  // namespace nai::baselines

#endif  // NAI_BASELINES_GLNN_H_
