#include "src/baselines/quantization.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/graph/normalize.h"
#include "src/graph/sampler.h"
#include "src/runtime/thread_pool.h"
#include "src/tensor/ops.h"

namespace nai::baselines {

QuantizedInferResult QuantizedScalableInfer(
    const graph::Graph& full_graph, const tensor::Matrix& features,
    float gamma, int depth, models::DepthHead& head, const QuantizedMlp& qmlp,
    const std::vector<std::int32_t>& nodes, std::size_t batch_size) {
  QuantizedInferResult out;
  out.predictions.resize(nodes.size());

  const graph::Csr norm_adj = graph::NormalizedAdjacency(full_graph, gamma);
  graph::SupportSampler sampler(norm_adj);
  const std::size_t f = features.cols();

  const std::size_t bs = std::max<std::size_t>(1, batch_size);
  for (std::size_t begin = 0; begin < nodes.size(); begin += bs) {
    const std::size_t end = std::min(nodes.size(), begin + bs);
    const std::vector<std::int32_t> batch(nodes.begin() + begin,
                                          nodes.begin() + end);

    eval::Timer sample_timer;
    graph::BatchSupport support = sampler.SampleMapped(batch, depth);
    const std::vector<std::int32_t>& g2l = sampler.global_to_local();
    tensor::Matrix cur = features.GatherRows(support.nodes);
    std::vector<std::int64_t> prefix_nnz(support.nodes.size() + 1, 0);
    for (std::size_t r = 0; r < support.nodes.size(); ++r) {
      prefix_nnz[r + 1] = prefix_nnz[r] + norm_adj.RowNnz(support.nodes[r]);
    }
    const double sample_ms = sample_timer.ElapsedMs();

    std::vector<std::int32_t> batch_locals(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch_locals[i] = static_cast<std::int32_t>(i);
    }
    std::vector<tensor::Matrix> batch_stack;
    batch_stack.push_back(cur.GatherRows(batch_locals));

    // Fixed-depth propagation, exactly the vanilla path.
    eval::Timer fp_timer;
    tensor::Matrix next(support.nodes.size(), f);
    std::int64_t fp_macs = 0;
    for (int l = 1; l <= depth; ++l) {
      const std::int64_t limit = support.layer_counts[depth - l];
      graph::SpMMMappedPrefix(norm_adj, support.nodes, g2l, cur, limit,
                              next);
      fp_macs += prefix_nnz[limit] * static_cast<std::int64_t>(f);
      std::swap(cur, next);
      batch_stack.push_back(cur.GatherRows(batch_locals));
    }
    const double fp_ms = fp_timer.ElapsedMs();
    out.cost.fp_time_ms += fp_ms;
    out.cost.fp_macs += fp_macs;

    eval::Timer cls_timer;
    models::FeatureViews views;
    for (const auto& m : batch_stack) views.push_back(&m);
    const tensor::Matrix reduced = head.Reduce(views);
    const tensor::Matrix logits = qmlp.Forward(reduced);
    const std::vector<std::int32_t> pred = tensor::ArgmaxRows(logits);
    std::copy(pred.begin(), pred.end(), out.predictions.begin() + begin);
    out.cost.total_time_ms += sample_ms + fp_ms + cls_timer.ElapsedMs();
    out.cost.total_macs += fp_macs + qmlp.ForwardMacs(batch.size());
  }
  return out;
}

}  // namespace nai::baselines
