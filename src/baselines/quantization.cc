#include "src/baselines/quantization.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/graph/normalize.h"
#include "src/graph/sampler.h"
#include "src/runtime/thread_pool.h"
#include "src/tensor/ops.h"

namespace nai::baselines {

namespace {

float AbsMax(const float* data, std::size_t n) {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(data[i]));
  return m;
}

std::int8_t QuantizeValue(float v, float inv_scale) {
  const int q = static_cast<int>(std::lround(v * inv_scale));
  return static_cast<std::int8_t>(std::clamp(q, -127, 127));
}

}  // namespace

QuantizedLinear::QuantizedLinear(const nn::Linear& source)
    : in_dim_(source.in_dim()),
      out_dim_(source.out_dim()),
      bias_(source.bias().value) {
  const tensor::Matrix& w = source.weight().value;
  const float absmax = AbsMax(w.data(), w.size());
  weight_scale_ = absmax > 0.0f ? absmax / 127.0f : 1.0f;
  const float inv = 1.0f / weight_scale_;
  weight_.resize(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    weight_[i] = QuantizeValue(w.data()[i], inv);
  }
}

tensor::Matrix QuantizedLinear::Forward(const tensor::Matrix& x) const {
  assert(x.cols() == in_dim_);
  const std::size_t rows = x.rows();

  // Dynamic per-batch activation quantization (absmax, symmetric).
  const float act_absmax = AbsMax(x.data(), x.size());
  const float act_scale = act_absmax > 0.0f ? act_absmax / 127.0f : 1.0f;
  const float inv_act = 1.0f / act_scale;
  std::vector<std::int8_t> xq(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    xq[i] = QuantizeValue(x.data()[i], inv_act);
  }

  tensor::Matrix out(rows, out_dim_);
  const float dequant = act_scale * weight_scale_;
  // Grain: one output row is an in_dim x out_dim int8 dot-product sweep.
  runtime::ParallelFor(0, rows, in_dim_ * out_dim_,
                       [&](std::size_t r0, std::size_t r1) {
    std::vector<std::int32_t> acc(out_dim_);
    for (std::size_t i = r0; i < r1; ++i) {
      std::fill(acc.begin(), acc.end(), 0);
      const std::int8_t* xr = xq.data() + i * in_dim_;
      for (std::size_t p = 0; p < in_dim_; ++p) {
        const std::int32_t xv = xr[p];
        if (xv == 0) continue;
        const std::int8_t* wr = weight_.data() + p * out_dim_;
        for (std::size_t j = 0; j < out_dim_; ++j) {
          acc[j] += xv * static_cast<std::int32_t>(wr[j]);
        }
      }
      float* orow = out.row(i);
      const float* b = bias_.data();
      for (std::size_t j = 0; j < out_dim_; ++j) {
        orow[j] = static_cast<float>(acc[j]) * dequant + b[j];
      }
    }
  });
  return out;
}

QuantizedMlp::QuantizedMlp(const nn::Mlp& source) {
  layers_.reserve(source.num_layers());
  for (std::size_t i = 0; i < source.num_layers(); ++i) {
    layers_.emplace_back(source.layer(i));
  }
}

tensor::Matrix QuantizedMlp::Forward(const tensor::Matrix& x) const {
  tensor::Matrix h = layers_[0].Forward(x);
  for (std::size_t l = 1; l < layers_.size(); ++l) {
    tensor::ReluInPlace(h);
    h = layers_[l].Forward(h);
  }
  return h;
}

std::int64_t QuantizedMlp::ForwardMacs(std::int64_t rows) const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l.ForwardMacs(rows);
  return total;
}

QuantizedInferResult QuantizedScalableInfer(
    const graph::Graph& full_graph, const tensor::Matrix& features,
    float gamma, int depth, models::DepthHead& head, const QuantizedMlp& qmlp,
    const std::vector<std::int32_t>& nodes, std::size_t batch_size) {
  QuantizedInferResult out;
  out.predictions.resize(nodes.size());

  const graph::Csr norm_adj = graph::NormalizedAdjacency(full_graph, gamma);
  graph::SupportSampler sampler(norm_adj);
  const std::size_t f = features.cols();

  const std::size_t bs = std::max<std::size_t>(1, batch_size);
  for (std::size_t begin = 0; begin < nodes.size(); begin += bs) {
    const std::size_t end = std::min(nodes.size(), begin + bs);
    const std::vector<std::int32_t> batch(nodes.begin() + begin,
                                          nodes.begin() + end);

    eval::Timer sample_timer;
    graph::BatchSupport support = sampler.SampleMapped(batch, depth);
    const std::vector<std::int32_t>& g2l = sampler.global_to_local();
    tensor::Matrix cur = features.GatherRows(support.nodes);
    std::vector<std::int64_t> prefix_nnz(support.nodes.size() + 1, 0);
    for (std::size_t r = 0; r < support.nodes.size(); ++r) {
      prefix_nnz[r + 1] = prefix_nnz[r] + norm_adj.RowNnz(support.nodes[r]);
    }
    const double sample_ms = sample_timer.ElapsedMs();

    std::vector<std::int32_t> batch_locals(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch_locals[i] = static_cast<std::int32_t>(i);
    }
    std::vector<tensor::Matrix> batch_stack;
    batch_stack.push_back(cur.GatherRows(batch_locals));

    // Fixed-depth propagation, exactly the vanilla path.
    eval::Timer fp_timer;
    tensor::Matrix next(support.nodes.size(), f);
    std::int64_t fp_macs = 0;
    for (int l = 1; l <= depth; ++l) {
      const std::int64_t limit = support.layer_counts[depth - l];
      graph::SpMMMappedPrefix(norm_adj, support.nodes, g2l, cur, limit,
                              next);
      fp_macs += prefix_nnz[limit] * static_cast<std::int64_t>(f);
      std::swap(cur, next);
      batch_stack.push_back(cur.GatherRows(batch_locals));
    }
    const double fp_ms = fp_timer.ElapsedMs();
    out.cost.fp_time_ms += fp_ms;
    out.cost.fp_macs += fp_macs;

    eval::Timer cls_timer;
    models::FeatureViews views;
    for (const auto& m : batch_stack) views.push_back(&m);
    const tensor::Matrix reduced = head.Reduce(views);
    const tensor::Matrix logits = qmlp.Forward(reduced);
    const std::vector<std::int32_t> pred = tensor::ArgmaxRows(logits);
    std::copy(pred.begin(), pred.end(), out.predictions.begin() + begin);
    out.cost.total_time_ms += sample_ms + fp_ms + cls_timer.ElapsedMs();
    out.cost.total_macs += fp_macs + qmlp.ForwardMacs(batch.size());
  }
  return out;
}

}  // namespace nai::baselines
