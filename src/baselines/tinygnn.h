#ifndef NAI_BASELINES_TINYGNN_H_
#define NAI_BASELINES_TINYGNN_H_

#include <cstdint>
#include <vector>

#include "src/eval/metrics.h"
#include "src/graph/graph.h"
#include "src/nn/mlp.h"
#include "src/nn/parameter.h"
#include "src/tensor/matrix.h"

namespace nai::baselines {

/// TinyGNN (Yan et al., KDD 2020): a single-layer GNN student distilled
/// from a deep teacher. The Peer-Aware Module is a dot-product
/// self-attention over the 1-hop neighborhood (self included):
///
///   q_i = x_i W_q,  k_j = x_j W_k,  v_j = x_j W_v
///   α_ij = softmax_j(q_i · k_j / sqrt(d)),   h_i = Σ_j α_ij v_j
///   logits_i = MLP([x_i || h_i])
///
/// The three projections over every supporting node are what makes TinyGNN
/// MAC-heavy on high-dimensional features (the paper's Flickr observation)
/// even though it only touches 1 hop.
struct TinyGnnConfig {
  std::size_t attention_dim = 64;
  std::vector<std::size_t> hidden_dims;
  float dropout = 0.1f;
  int epochs = 150;
  float learning_rate = 1e-2f;
  float weight_decay = 0.0f;
  float temperature = 1.0f;
  float lambda = 0.5f;
  std::uint64_t seed = 17;
};

struct TinyGnnResult {
  std::vector<std::int32_t> predictions;
  eval::CostCounters cost;
};

class TinyGnn {
 public:
  TinyGnn(std::size_t feature_dim, std::size_t num_classes,
          const TinyGnnConfig& config);

  /// Distillation training on the training graph (teacher logits per
  /// train-local row).
  void Train(const graph::Graph& train_graph, const tensor::Matrix& features,
             const tensor::Matrix& teacher_logits,
             const std::vector<std::int32_t>& labels,
             const std::vector<std::int32_t>& labeled);

  /// Classifies `query_nodes` in the full graph, fetching 1-hop peers
  /// online. Counts the projection/attention work as FP cost.
  TinyGnnResult Infer(const graph::Graph& full_graph,
                      const tensor::Matrix& full_features,
                      const std::vector<std::int32_t>& query_nodes);

 private:
  /// Peer-aware attention outputs h for `targets` given the feature source.
  /// When `train` is true, caches everything needed for AttentionBackward.
  tensor::Matrix AttentionForward(const graph::Graph& graph,
                                  const tensor::Matrix& features,
                                  const std::vector<std::int32_t>& targets,
                                  bool train, std::int64_t* macs);

  void AttentionBackward(const tensor::Matrix& grad_h);

  std::size_t feature_dim_;
  TinyGnnConfig config_;
  nn::Parameter wq_, wk_, wv_;  // f x d
  nn::Mlp mlp_;                 // input: f + d
  tensor::Rng rng_;

  // Training caches (train graph attention).
  struct Cache {
    tensor::Matrix features;  // source features (n x f)
    tensor::Matrix q, k, v;   // n x d
    std::vector<std::int32_t> targets;
    std::vector<std::vector<std::int32_t>> peers;   // per target
    std::vector<std::vector<float>> alphas;         // per target
  };
  Cache cache_;
};

}  // namespace nai::baselines

#endif  // NAI_BASELINES_TINYGNN_H_
