#include "src/baselines/tinygnn.h"

#include <cassert>
#include <cmath>

#include "src/nn/adam.h"
#include "src/nn/loss.h"
#include "src/tensor/ops.h"
#include "src/tensor/random.h"

namespace nai::baselines {

TinyGnn::TinyGnn(std::size_t feature_dim, std::size_t num_classes,
                 const TinyGnnConfig& config)
    : feature_dim_(feature_dim), config_(config), rng_(config.seed) {
  wq_.Resize(feature_dim, config.attention_dim);
  wk_.Resize(feature_dim, config.attention_dim);
  wv_.Resize(feature_dim, config.attention_dim);
  tensor::FillGlorot(wq_.value, rng_);
  tensor::FillGlorot(wk_.value, rng_);
  tensor::FillGlorot(wv_.value, rng_);
  mlp_ = nn::Mlp(feature_dim + config.attention_dim, config.hidden_dims,
                 num_classes, config.dropout, rng_);
}

tensor::Matrix TinyGnn::AttentionForward(
    const graph::Graph& graph, const tensor::Matrix& features,
    const std::vector<std::int32_t>& targets, bool train,
    std::int64_t* macs) {
  const std::size_t d = config_.attention_dim;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  // Projections over all source nodes. (At inference the caller passes a
  // gathered feature matrix covering exactly the supporting set.)
  const tensor::Matrix q = tensor::MatMul(features, wq_.value);
  const tensor::Matrix k = tensor::MatMul(features, wk_.value);
  const tensor::Matrix v = tensor::MatMul(features, wv_.value);
  if (macs != nullptr) {
    *macs += 3 * static_cast<std::int64_t>(features.rows()) *
             static_cast<std::int64_t>(feature_dim_) *
             static_cast<std::int64_t>(d);
  }

  tensor::Matrix h(targets.size(), d);
  std::vector<std::vector<std::int32_t>> peers(targets.size());
  std::vector<std::vector<float>> alphas(targets.size());
  std::int64_t edge_work = 0;
  for (std::size_t ti = 0; ti < targets.size(); ++ti) {
    const std::int32_t i = targets[ti];
    // Peers: self + 1-hop neighbors.
    std::vector<std::int32_t>& peer = peers[ti];
    peer.push_back(i);
    for (const auto* it = graph.neighbors_begin(i);
         it != graph.neighbors_end(i); ++it) {
      peer.push_back(*it);
    }
    std::vector<float>& alpha = alphas[ti];
    alpha.resize(peer.size());
    const float* qi = q.row(i);
    float max_s = -1e30f;
    for (std::size_t pj = 0; pj < peer.size(); ++pj) {
      const float* kj = k.row(peer[pj]);
      float s = 0.0f;
      for (std::size_t t = 0; t < d; ++t) s += qi[t] * kj[t];
      alpha[pj] = s * scale;
      max_s = std::max(max_s, alpha[pj]);
    }
    float sum = 0.0f;
    for (float& a : alpha) {
      a = std::exp(a - max_s);
      sum += a;
    }
    float* hrow = h.row(ti);
    for (std::size_t pj = 0; pj < peer.size(); ++pj) {
      alpha[pj] /= sum;
      const float* vj = v.row(peer[pj]);
      for (std::size_t t = 0; t < d; ++t) hrow[t] += alpha[pj] * vj[t];
    }
    edge_work += static_cast<std::int64_t>(peer.size());
  }
  if (macs != nullptr) *macs += 2 * edge_work * static_cast<std::int64_t>(d);

  if (train) {
    cache_.features = features;
    cache_.q = q;
    cache_.k = k;
    cache_.v = v;
    cache_.targets = targets;
    cache_.peers = std::move(peers);
    cache_.alphas = std::move(alphas);
  }
  return h;
}

void TinyGnn::AttentionBackward(const tensor::Matrix& grad_h) {
  const std::size_t d = config_.attention_dim;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const std::size_t n = cache_.features.rows();
  tensor::Matrix dq(n, d), dk(n, d), dv(n, d);

  for (std::size_t ti = 0; ti < cache_.targets.size(); ++ti) {
    const std::int32_t i = cache_.targets[ti];
    const auto& peer = cache_.peers[ti];
    const auto& alpha = cache_.alphas[ti];
    const float* gh = grad_h.row(ti);

    // dα_ij = gh · v_j ; dv_j += α_ij gh
    std::vector<float> dalpha(peer.size());
    for (std::size_t pj = 0; pj < peer.size(); ++pj) {
      const float* vj = cache_.v.row(peer[pj]);
      float dot = 0.0f;
      float* dvj = dv.row(peer[pj]);
      for (std::size_t t = 0; t < d; ++t) {
        dot += gh[t] * vj[t];
        dvj[t] += alpha[pj] * gh[t];
      }
      dalpha[pj] = dot;
    }
    // softmax backward: ds_ij = α_ij (dα_ij − Σ_k dα_ik α_ik)
    float mix = 0.0f;
    for (std::size_t pj = 0; pj < peer.size(); ++pj) {
      mix += dalpha[pj] * alpha[pj];
    }
    const float* qi = cache_.q.row(i);
    float* dqi = dq.row(i);
    for (std::size_t pj = 0; pj < peer.size(); ++pj) {
      const float ds = alpha[pj] * (dalpha[pj] - mix) * scale;
      const float* kj = cache_.k.row(peer[pj]);
      float* dkj = dk.row(peer[pj]);
      for (std::size_t t = 0; t < d; ++t) {
        dqi[t] += ds * kj[t];
        dkj[t] += ds * qi[t];
      }
    }
  }
  tensor::AddInPlace(wq_.grad, tensor::MatMulTransposeA(cache_.features, dq));
  tensor::AddInPlace(wk_.grad, tensor::MatMulTransposeA(cache_.features, dk));
  tensor::AddInPlace(wv_.grad, tensor::MatMulTransposeA(cache_.features, dv));
}

void TinyGnn::Train(const graph::Graph& train_graph,
                    const tensor::Matrix& features,
                    const tensor::Matrix& teacher_logits,
                    const std::vector<std::int32_t>& labels,
                    const std::vector<std::int32_t>& labeled) {
  const std::size_t n = train_graph.num_nodes();
  assert(features.rows() == n);
  std::vector<std::int32_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<std::int32_t>(i);

  const float T = config_.temperature;
  const tensor::Matrix teacher_soft = tensor::SoftmaxRows(teacher_logits, T);

  nn::Adam adam({.learning_rate = config_.learning_rate,
                 .weight_decay = config_.weight_decay});
  {
    std::vector<nn::Parameter*> params{&wq_, &wk_, &wv_};
    mlp_.CollectParameters(params);
    adam.Register(params);
  }

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    adam.ZeroGrad();
    const tensor::Matrix h =
        AttentionForward(train_graph, features, all, /*train=*/true, nullptr);
    const tensor::Matrix input = tensor::ConcatCols({&features, &h});
    const tensor::Matrix logits = mlp_.Forward(input, /*train=*/true, &rng_);

    const nn::LossResult kd =
        nn::SoftTargetCrossEntropy(logits, teacher_soft, T);
    tensor::Matrix grad = kd.grad_logits;
    tensor::ScaleInPlace(grad, config_.lambda * T * T);
    const tensor::Matrix probs = tensor::SoftmaxRows(logits);
    const float w =
        (1.0f - config_.lambda) / static_cast<float>(labeled.size());
    for (const std::int32_t i : labeled) {
      float* g = grad.row(i);
      const float* p = probs.row(i);
      for (std::size_t j = 0; j < logits.cols(); ++j) g[j] += w * p[j];
      g[labels[i]] -= w;
    }

    const tensor::Matrix grad_input = mlp_.Backward(grad);
    // Split the input gradient: columns [f, f+d) feed the attention module.
    tensor::Matrix grad_h(n, config_.attention_dim);
    for (std::size_t i = 0; i < n; ++i) {
      const float* gi = grad_input.row(i) + feature_dim_;
      float* go = grad_h.row(i);
      for (std::size_t t = 0; t < config_.attention_dim; ++t) go[t] = gi[t];
    }
    AttentionBackward(grad_h);
    adam.Step();
  }
}

TinyGnnResult TinyGnn::Infer(const graph::Graph& full_graph,
                             const tensor::Matrix& full_features,
                             const std::vector<std::int32_t>& query_nodes) {
  TinyGnnResult out;
  eval::Timer fp_timer;
  std::int64_t fp_macs = 0;
  // The attention forward projects every row of the feature matrix it is
  // given; passing the full matrix here mirrors deployments that keep all
  // projections resident, but for a fair online-inference cost we restrict
  // the projection to the supporting set: queries + their 1-hop peers.
  std::vector<std::int32_t> support;
  std::vector<std::int32_t> mark(full_graph.num_nodes(), -1);
  for (const std::int32_t v : query_nodes) {
    if (mark[v] < 0) {
      mark[v] = static_cast<std::int32_t>(support.size());
      support.push_back(v);
    }
    for (const auto* it = full_graph.neighbors_begin(v);
         it != full_graph.neighbors_end(v); ++it) {
      if (mark[*it] < 0) {
        mark[*it] = static_cast<std::int32_t>(support.size());
        support.push_back(*it);
      }
    }
  }
  const tensor::Matrix support_feats = full_features.GatherRows(support);
  // Build the local 1-hop graph over the supporting set.
  std::vector<std::pair<std::int32_t, std::int32_t>> local_edges;
  for (const std::int32_t v : query_nodes) {
    for (const auto* it = full_graph.neighbors_begin(v);
         it != full_graph.neighbors_end(v); ++it) {
      local_edges.emplace_back(mark[v], mark[*it]);
    }
  }
  const graph::Graph local =
      graph::Graph::FromEdges(support.size(), local_edges);
  std::vector<std::int32_t> local_targets(query_nodes.size());
  for (std::size_t i = 0; i < query_nodes.size(); ++i) {
    local_targets[i] = mark[query_nodes[i]];
  }
  const tensor::Matrix h = AttentionForward(local, support_feats,
                                            local_targets, /*train=*/false,
                                            &fp_macs);
  out.cost.fp_time_ms = fp_timer.ElapsedMs();
  out.cost.fp_macs = fp_macs;

  eval::Timer cls_timer;
  const tensor::Matrix query_feats = full_features.GatherRows(query_nodes);
  const tensor::Matrix input = tensor::ConcatCols({&query_feats, &h});
  const tensor::Matrix logits = mlp_.Forward(input, /*train=*/false);
  out.predictions = tensor::ArgmaxRows(logits);
  out.cost.total_time_ms = out.cost.fp_time_ms + cls_timer.ElapsedMs();
  out.cost.total_macs = fp_macs + mlp_.ForwardMacs(query_nodes.size());
  return out;
}

}  // namespace nai::baselines
