#ifndef NAI_BASELINES_QUANTIZATION_H_
#define NAI_BASELINES_QUANTIZATION_H_

#include <cstdint>
#include <vector>

#include "src/core/classifier_stack.h"
#include "src/eval/metrics.h"
#include "src/graph/graph.h"
#include "src/nn/quantized.h"
#include "src/tensor/matrix.h"

namespace nai::baselines {

/// The INT8 arithmetic itself lives in nn::Quantized* since its promotion
/// to the serving stack's kThroughputFirst QoS tier; the baseline keeps
/// these aliases (and the offline end-to-end driver below) so the paper's
/// FP32->INT8 comparison — only the classifier arithmetic changes, the
/// propagation stays in float, which is why its acceleration is limited —
/// reads unchanged.
using QuantizedLinear = nn::QuantizedLinear;
using QuantizedMlp = nn::QuantizedMlp;

struct QuantizedInferResult {
  std::vector<std::int32_t> predictions;
  eval::CostCounters cost;
};

/// The Quantization baseline end to end: full fixed-depth online
/// propagation (identical to the vanilla Scalable GNN) followed by the
/// INT8 classifier. The family-specific stack reduction of `head` runs in
/// float; only its MLP is replaced by `qmlp`.
QuantizedInferResult QuantizedScalableInfer(
    const graph::Graph& full_graph, const tensor::Matrix& features,
    float gamma, int depth, models::DepthHead& head, const QuantizedMlp& qmlp,
    const std::vector<std::int32_t>& nodes, std::size_t batch_size);

}  // namespace nai::baselines

#endif  // NAI_BASELINES_QUANTIZATION_H_
