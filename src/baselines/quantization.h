#ifndef NAI_BASELINES_QUANTIZATION_H_
#define NAI_BASELINES_QUANTIZATION_H_

#include <cstdint>
#include <vector>

#include "src/core/classifier_stack.h"
#include "src/eval/metrics.h"
#include "src/graph/graph.h"
#include "src/nn/linear.h"
#include "src/nn/mlp.h"
#include "src/tensor/matrix.h"

namespace nai::baselines {

/// Post-training symmetric per-tensor INT8 quantization of one Linear
/// layer. Activations are quantized dynamically per batch (absmax), the
/// INT8 x INT8 products accumulate in INT32, and the output is dequantized
/// back to float. This mirrors the FP32->INT8 baseline of the paper's
/// Quantization comparison: only the classifier arithmetic changes, the
/// propagation stays in float — which is why its acceleration is limited.
class QuantizedLinear {
 public:
  explicit QuantizedLinear(const nn::Linear& source);

  tensor::Matrix Forward(const tensor::Matrix& x) const;

  std::int64_t ForwardMacs(std::int64_t rows) const {
    return rows * static_cast<std::int64_t>(in_dim_) *
           static_cast<std::int64_t>(out_dim_);
  }

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }
  float weight_scale() const { return weight_scale_; }

 private:
  std::size_t in_dim_ = 0;
  std::size_t out_dim_ = 0;
  std::vector<std::int8_t> weight_;  // row-major in x out
  float weight_scale_ = 1.0f;
  tensor::Matrix bias_;  // kept float
};

/// INT8 copy of a float MLP (ReLU between layers, no dropout at inference).
class QuantizedMlp {
 public:
  explicit QuantizedMlp(const nn::Mlp& source);

  tensor::Matrix Forward(const tensor::Matrix& x) const;
  std::int64_t ForwardMacs(std::int64_t rows) const;

 private:
  std::vector<QuantizedLinear> layers_;
};

struct QuantizedInferResult {
  std::vector<std::int32_t> predictions;
  eval::CostCounters cost;
};

/// The Quantization baseline end to end: full fixed-depth online
/// propagation (identical to the vanilla Scalable GNN) followed by the
/// INT8 classifier. The family-specific stack reduction of `head` runs in
/// float; only its MLP is replaced by `qmlp`.
QuantizedInferResult QuantizedScalableInfer(
    const graph::Graph& full_graph, const tensor::Matrix& features,
    float gamma, int depth, models::DepthHead& head, const QuantizedMlp& qmlp,
    const std::vector<std::int32_t>& nodes, std::size_t batch_size);

}  // namespace nai::baselines

#endif  // NAI_BASELINES_QUANTIZATION_H_
