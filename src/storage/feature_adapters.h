#ifndef NAI_STORAGE_FEATURE_ADAPTERS_H_
#define NAI_STORAGE_FEATURE_ADAPTERS_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/storage/store.h"
#include "src/tensor/matrix.h"

namespace nai::storage {

/// Non-owning FeatureStore over a caller-owned dense matrix (and optional
/// pooled stationary vector). Bridges the legacy borrowed-matrix engine
/// constructors onto the store interface; the matrix must outlive the
/// adapter.
class BorrowedFeatureStore : public FeatureStore {
 public:
  explicit BorrowedFeatureStore(const tensor::Matrix* features,
                                const tensor::Matrix* pooled = nullptr)
      : features_(features), pooled_(pooled) {}

  std::int64_t num_rows() const override {
    return static_cast<std::int64_t>(features_->rows());
  }
  std::size_t dim() const override { return features_->cols(); }
  const float* row(std::int64_t v) const override { return features_->row(v); }
  tensor::Matrix GatherRows(
      const std::vector<std::int32_t>& ids) const override {
    return features_->GatherRows(ids);
  }
  const tensor::Matrix* stationary_pooled() const override { return pooled_; }
  StoreBackend backend() const override { return StoreBackend::kMem; }
  ResidencyInfo FeatureResidency() const override {
    ResidencyInfo info;
    info.mapped_bytes = static_cast<std::int64_t>(
        (features_->size() + (pooled_ != nullptr ? pooled_->size() : 0)) *
        sizeof(float));
    info.resident_bytes = info.mapped_bytes;
    return info;
  }

 private:
  const tensor::Matrix* features_;
  const tensor::Matrix* pooled_;
};

/// Row-remapping FeatureStore: local row r reads base row nodes[r]. This is
/// how a shard serves its local feature rows without gathering a per-shard
/// copy — over an mmap base the shard's working set stays pages of the one
/// shared file, which is the point of the out-of-core path.
class SlicedFeatureStore : public FeatureStore {
 public:
  SlicedFeatureStore(std::shared_ptr<const FeatureStore> base,
                     std::vector<std::int32_t> nodes)
      : base_(std::move(base)), nodes_(std::move(nodes)) {}

  std::int64_t num_rows() const override {
    return static_cast<std::int64_t>(nodes_.size());
  }
  std::size_t dim() const override { return base_->dim(); }
  const float* row(std::int64_t v) const override {
    return base_->row(nodes_[static_cast<std::size_t>(v)]);
  }
  const tensor::Matrix* stationary_pooled() const override {
    return base_->stationary_pooled();
  }
  StoreBackend backend() const override { return base_->backend(); }
  ResidencyInfo FeatureResidency() const override {
    // The slice shares the base's pages; per-slice accounting would double
    // count, so report zero mapped bytes and let the snapshot-level store
    // report the file once.
    return ResidencyInfo{};
  }

 private:
  std::shared_ptr<const FeatureStore> base_;
  std::vector<std::int32_t> nodes_;
};

}  // namespace nai::storage

#endif  // NAI_STORAGE_FEATURE_ADAPTERS_H_
