#ifndef NAI_STORAGE_STORE_H_
#define NAI_STORAGE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/csr.h"
#include "src/tensor/matrix.h"

namespace nai::storage {

/// Which physical representation backs a store.
enum class StoreBackend {
  kMem,   ///< pooled in-memory vectors (the historical representation)
  kMmap,  ///< sections of a memory-mapped file (out-of-core)
};

/// "mem" / "mmap". Throws nai::ValidationError on anything else.
StoreBackend ParseBackend(const std::string& name);

/// Reads NAI_STORE from the environment; unset/empty means kMem.
StoreBackend DefaultBackend();

/// Lower-case name for logs, stats and JSON ("mem" / "mmap").
const char* BackendName(StoreBackend backend);

/// Working-set accounting for one store. For memory-mapped stores
/// `resident_bytes` is measured with mincore(2) and `exact` is true; for
/// in-memory stores the data is unconditionally resident, so
/// resident == mapped and `exact` is false (nothing was measured).
struct ResidencyInfo {
  std::int64_t mapped_bytes = 0;
  std::int64_t resident_bytes = 0;
  bool exact = false;

  ResidencyInfo& operator+=(const ResidencyInfo& o) {
    mapped_bytes += o.mapped_bytes;
    resident_bytes += o.resident_bytes;
    exact = exact || o.exact;
    return *this;
  }
};

/// Paging advice forwarded to madvise(2) by mapped backends; a no-op for
/// in-memory backends.
enum class AccessHint { kNormal, kRandom, kSequential, kWillNeed, kDontNeed };

/// Read-only access to one immutable graph version: the raw symmetric
/// adjacency and its normalized (self-loop, Eq. 1) counterpart, exposed as
/// CsrView so the BFS sampler and SpMM kernels run identical code over any
/// backend — no virtual dispatch inside inner loops, one virtual call per
/// view acquisition. Views stay valid for the lifetime of the store.
class GraphStore {
 public:
  virtual ~GraphStore() = default;

  virtual std::int64_t num_nodes() const = 0;
  /// Undirected edge count m (the raw adjacency stores 2m entries).
  virtual std::int64_t num_edges() const = 0;
  /// Normalization exponent γ the normalized adjacency was built with.
  virtual float gamma() const = 0;

  /// Raw symmetric adjacency; `values` is nullptr (unweighted).
  virtual graph::CsrView adj() const = 0;
  /// Normalized weighted adjacency Â = D̃^(γ-1) Ã D̃^(-γ).
  virtual graph::CsrView norm_adj() const = 0;

  virtual StoreBackend backend() const = 0;
  /// Accounts the adjacency + normalized sections only (feature bytes are
  /// reported by FeatureResidency, so the two sum without double counting
  /// even when one object backs both interfaces).
  virtual ResidencyInfo AdjacencyResidency() const = 0;
  virtual void Advise(AccessHint /*hint*/) const {}
};

/// Read-only access to node features and the pooled stationary vector of
/// the same graph version.
class FeatureStore {
 public:
  virtual ~FeatureStore() = default;

  virtual std::int64_t num_rows() const = 0;
  virtual std::size_t dim() const = 0;
  /// Feature row of node v; `dim()` floats, valid for the store lifetime.
  virtual const float* row(std::int64_t v) const = 0;

  /// Dense copy of the listed rows in order. The default implementation
  /// copies row by row — bit-identical to tensor::Matrix::GatherRows.
  virtual tensor::Matrix GatherRows(const std::vector<std::int32_t>& ids) const;

  /// Pooled stationary vector g = v^T X (1 x dim), or nullptr when the
  /// store was built without one.
  virtual const tensor::Matrix* stationary_pooled() const { return nullptr; }

  virtual StoreBackend backend() const = 0;
  /// Accounts the feature + stationary sections only.
  virtual ResidencyInfo FeatureResidency() const = 0;
  virtual void Advise(AccessHint /*hint*/) const {}
};

}  // namespace nai::storage

#endif  // NAI_STORAGE_STORE_H_
