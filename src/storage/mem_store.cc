#include "src/storage/mem_store.h"

#include "src/graph/normalize.h"

namespace nai::storage {

MemStore::MemStore(graph::Graph graph, tensor::Matrix features, float gamma)
    : graph_(std::move(graph)),
      features_(std::move(features)),
      gamma_(gamma),
      norm_adj_(graph::NormalizedAdjacency(graph_, gamma)),
      stationary_pooled_(
          graph::PooledStationaryVector(graph_, features_, gamma)) {}

MemStore::MemStore(graph::Graph graph, tensor::Matrix features, float gamma,
                   graph::Csr norm_adj, tensor::Matrix stationary_pooled)
    : graph_(std::move(graph)),
      features_(std::move(features)),
      gamma_(gamma),
      norm_adj_(std::move(norm_adj)),
      stationary_pooled_(std::move(stationary_pooled)) {}

namespace {
std::int64_t CsrBytes(const graph::Csr& c) {
  return static_cast<std::int64_t>(c.row_ptr.size() * sizeof(std::int64_t) +
                                   c.col_idx.size() * sizeof(std::int32_t) +
                                   c.values.size() * sizeof(float));
}
}  // namespace

ResidencyInfo MemStore::AdjacencyResidency() const {
  ResidencyInfo info;
  info.mapped_bytes = CsrBytes(graph_.adjacency()) + CsrBytes(norm_adj_);
  info.resident_bytes = info.mapped_bytes;  // heap memory is always resident
  info.exact = false;
  return info;
}

ResidencyInfo MemStore::FeatureResidency() const {
  ResidencyInfo info;
  info.mapped_bytes = static_cast<std::int64_t>(
      (features_.size() + stationary_pooled_.size()) * sizeof(float));
  info.resident_bytes = info.mapped_bytes;
  info.exact = false;
  return info;
}

}  // namespace nai::storage
