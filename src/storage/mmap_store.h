#ifndef NAI_STORAGE_MMAP_STORE_H_
#define NAI_STORAGE_MMAP_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/graph/csr.h"
#include "src/storage/store.h"
#include "src/tensor/matrix.h"

namespace nai::storage {

/// On-disk layout of a NAI store file (single graph version, all derived
/// artifacts). Fixed little-endian layout, 64-byte-aligned sections:
///
///   [header 128 B]  magic "NAIMMAP1", version, n, m, dim, gamma,
///                   data + header FNV-1a checksums
///   [adj_row_ptr ]  (n+1) x i64     raw symmetric adjacency (unweighted)
///   [adj_col_idx ]  2m    x i32
///   [norm_row_ptr]  (n+1) x i64     normalized adjacency (Eq. 1)
///   [norm_col_idx]  (2m+n) x i32    one self-loop entry per row
///   [norm_values ]  (2m+n) x f32
///   [features    ]  n*dim x f32     row-major node features
///   [stationary  ]  dim   x f32     pooled stationary vector g
///
/// Section offsets are derived from (n, m, dim) — the file is valid iff its
/// size matches the derived layout exactly. The header checksum is always
/// verified at open; the data checksum is optional (verifying it faults the
/// whole file resident, which defeats out-of-core residency measurement on
/// multi-GB stores).
struct MmapLayout {
  std::int64_t num_nodes = 0;
  std::int64_t adj_nnz = 0;  ///< 2m
  std::int64_t feature_dim = 0;

  std::int64_t adj_row_ptr_off = 0;
  std::int64_t adj_col_idx_off = 0;
  std::int64_t norm_row_ptr_off = 0;
  std::int64_t norm_col_idx_off = 0;
  std::int64_t norm_values_off = 0;
  std::int64_t features_off = 0;
  std::int64_t stationary_off = 0;
  std::int64_t file_size = 0;

  std::int64_t norm_nnz() const { return adj_nnz + num_nodes; }

  /// Derives all offsets from the three counts.
  static MmapLayout Make(std::int64_t num_nodes, std::int64_t adj_nnz,
                         std::int64_t feature_dim);
};

/// Streaming writer: sizes the file up front, maps it read-write and hands
/// out typed section pointers, so multi-million-node generators fill CSR
/// arrays and feature rows in place without materializing them in RAM.
/// Finalize() stamps the header (checksums included) and unmaps; the file
/// is invalid (zero magic) until then, so a crashed writer never leaves a
/// loadable half-written store behind.
class MmapStoreWriter {
 public:
  MmapStoreWriter(const std::string& path, std::int64_t num_nodes,
                  std::int64_t adj_nnz, std::int64_t feature_dim, float gamma);
  ~MmapStoreWriter();

  MmapStoreWriter(const MmapStoreWriter&) = delete;
  MmapStoreWriter& operator=(const MmapStoreWriter&) = delete;

  const MmapLayout& layout() const { return layout_; }

  std::int64_t* adj_row_ptr();
  std::int32_t* adj_col_idx();
  std::int64_t* norm_row_ptr();
  std::int32_t* norm_col_idx();
  float* norm_values();
  float* features();
  float* stationary();

  /// Computes checksums, writes the header, syncs and closes. No section
  /// pointer may be used afterwards.
  void Finalize();

 private:
  MmapLayout layout_;
  float gamma_;
  int fd_ = -1;
  unsigned char* map_ = nullptr;
  bool finalized_ = false;
};

/// Memory-mapped read-only store: one mapping backs both the GraphStore and
/// FeatureStore interfaces; CSR views point straight into the file pages.
/// Throws nai::IoError on missing/truncated/corrupt files.
class MmapStore : public GraphStore, public FeatureStore {
 public:
  struct Options {
    /// Verify the full data checksum at open. Touches every page — leave
    /// off for residency-measured out-of-core runs.
    bool verify_data = true;
  };

  // Two overloads rather than `Options options = {}`: GCC cannot use a
  // nested aggregate's default member initializers in a default argument
  // while the enclosing class is still incomplete (PR 88165).
  explicit MmapStore(const std::string& path) : MmapStore(path, Options()) {}
  MmapStore(const std::string& path, Options options);
  ~MmapStore() override;

  MmapStore(const MmapStore&) = delete;
  MmapStore& operator=(const MmapStore&) = delete;

  // GraphStore:
  std::int64_t num_nodes() const override { return layout_.num_nodes; }
  std::int64_t num_edges() const override { return layout_.adj_nnz / 2; }
  float gamma() const override { return gamma_; }
  graph::CsrView adj() const override { return adj_; }
  graph::CsrView norm_adj() const override { return norm_adj_; }

  // FeatureStore:
  std::int64_t num_rows() const override { return layout_.num_nodes; }
  std::size_t dim() const override {
    return static_cast<std::size_t>(layout_.feature_dim);
  }
  const float* row(std::int64_t v) const override {
    return features_ + v * layout_.feature_dim;
  }
  const tensor::Matrix* stationary_pooled() const override {
    return &stationary_pooled_;
  }

  StoreBackend backend() const override { return StoreBackend::kMmap; }
  ResidencyInfo AdjacencyResidency() const override;
  ResidencyInfo FeatureResidency() const override;
  void Advise(AccessHint hint) const override;

  const std::string& path() const { return path_; }

 private:
  ResidencyInfo RangeResidency(std::int64_t begin, std::int64_t end) const;

  std::string path_;
  MmapLayout layout_;
  float gamma_ = 0.5f;
  int fd_ = -1;
  unsigned char* map_ = nullptr;
  graph::CsrView adj_;
  graph::CsrView norm_adj_;
  const float* features_ = nullptr;
  tensor::Matrix stationary_pooled_;  // small, copied out of the file
};

/// Serializes any store pair into the mmap layout at `path` (the mem->mmap
/// conversion behind NAI_STORE=mmap). The feature store must carry a pooled
/// stationary vector. Throws nai::IoError on write failures.
void SaveStore(const GraphStore& graph_store, const FeatureStore& feature_store,
               const std::string& path);

}  // namespace nai::storage

#endif  // NAI_STORAGE_MMAP_STORE_H_
