#include "src/storage/mmap_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "src/runtime/error.h"

namespace nai::storage {

namespace {

constexpr char kMagic[8] = {'N', 'A', 'I', 'M', 'M', 'A', 'P', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::int64_t kHeaderSize = 128;
constexpr std::int64_t kSectionAlign = 64;

/// Fixed 128-byte file header. All fields little-endian (the library does
/// not target big-endian hosts; io/serialize.h has the same stance).
struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t flags;
  std::int64_t num_nodes;
  std::int64_t num_edges;  // undirected m; adjacency stores 2m entries
  std::int64_t feature_dim;
  float gamma;
  std::uint32_t pad0;
  std::uint64_t data_checksum;    // FNV-1a over [kHeaderSize, file_size)
  std::uint64_t header_checksum;  // FNV-1a over header with this field = 0
  unsigned char reserved[64];
};
static_assert(sizeof(FileHeader) == kHeaderSize,
              "store header must stay exactly 128 bytes");

std::uint64_t Fnv1a(const unsigned char* data, std::size_t len,
                    std::uint64_t seed = 14695981039346656037ULL) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t HeaderChecksum(FileHeader header) {
  header.header_checksum = 0;
  return Fnv1a(reinterpret_cast<const unsigned char*>(&header),
               sizeof(FileHeader));
}

std::int64_t AlignUp(std::int64_t off) {
  return (off + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

[[noreturn]] void ThrowErrno(const std::string& what, const std::string& path) {
  throw IoError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

MmapLayout MmapLayout::Make(std::int64_t num_nodes, std::int64_t adj_nnz,
                            std::int64_t feature_dim) {
  if (num_nodes < 0 || adj_nnz < 0 || feature_dim < 0) {
    throw ValidationError("MmapLayout: negative store dimensions");
  }
  MmapLayout l;
  l.num_nodes = num_nodes;
  l.adj_nnz = adj_nnz;
  l.feature_dim = feature_dim;
  std::int64_t off = kHeaderSize;
  l.adj_row_ptr_off = off = AlignUp(off);
  off += (num_nodes + 1) * static_cast<std::int64_t>(sizeof(std::int64_t));
  l.adj_col_idx_off = off = AlignUp(off);
  off += adj_nnz * static_cast<std::int64_t>(sizeof(std::int32_t));
  l.norm_row_ptr_off = off = AlignUp(off);
  off += (num_nodes + 1) * static_cast<std::int64_t>(sizeof(std::int64_t));
  l.norm_col_idx_off = off = AlignUp(off);
  off += l.norm_nnz() * static_cast<std::int64_t>(sizeof(std::int32_t));
  l.norm_values_off = off = AlignUp(off);
  off += l.norm_nnz() * static_cast<std::int64_t>(sizeof(float));
  l.features_off = off = AlignUp(off);
  off += num_nodes * feature_dim * static_cast<std::int64_t>(sizeof(float));
  l.stationary_off = off = AlignUp(off);
  off += feature_dim * static_cast<std::int64_t>(sizeof(float));
  l.file_size = off;
  return l;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

MmapStoreWriter::MmapStoreWriter(const std::string& path,
                                 std::int64_t num_nodes, std::int64_t adj_nnz,
                                 std::int64_t feature_dim, float gamma)
    : layout_(MmapLayout::Make(num_nodes, adj_nnz, feature_dim)),
      gamma_(gamma) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) ThrowErrno("MmapStoreWriter: cannot create", path);
  if (::ftruncate(fd_, layout_.file_size) != 0) {
    ::close(fd_);
    fd_ = -1;
    ThrowErrno("MmapStoreWriter: cannot size", path);
  }
  void* m = ::mmap(nullptr, static_cast<std::size_t>(layout_.file_size),
                   PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (m == MAP_FAILED) {
    ::close(fd_);
    fd_ = -1;
    ThrowErrno("MmapStoreWriter: cannot map", path);
  }
  map_ = static_cast<unsigned char*>(m);
}

MmapStoreWriter::~MmapStoreWriter() {
  if (map_ != nullptr) {
    ::munmap(map_, static_cast<std::size_t>(layout_.file_size));
  }
  if (fd_ >= 0) ::close(fd_);
}

std::int64_t* MmapStoreWriter::adj_row_ptr() {
  return reinterpret_cast<std::int64_t*>(map_ + layout_.adj_row_ptr_off);
}
std::int32_t* MmapStoreWriter::adj_col_idx() {
  return reinterpret_cast<std::int32_t*>(map_ + layout_.adj_col_idx_off);
}
std::int64_t* MmapStoreWriter::norm_row_ptr() {
  return reinterpret_cast<std::int64_t*>(map_ + layout_.norm_row_ptr_off);
}
std::int32_t* MmapStoreWriter::norm_col_idx() {
  return reinterpret_cast<std::int32_t*>(map_ + layout_.norm_col_idx_off);
}
float* MmapStoreWriter::norm_values() {
  return reinterpret_cast<float*>(map_ + layout_.norm_values_off);
}
float* MmapStoreWriter::features() {
  return reinterpret_cast<float*>(map_ + layout_.features_off);
}
float* MmapStoreWriter::stationary() {
  return reinterpret_cast<float*>(map_ + layout_.stationary_off);
}

void MmapStoreWriter::Finalize() {
  if (finalized_) return;
  FileHeader header;
  std::memset(&header, 0, sizeof(header));
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.num_nodes = layout_.num_nodes;
  header.num_edges = layout_.adj_nnz / 2;
  header.feature_dim = layout_.feature_dim;
  header.gamma = gamma_;
  header.data_checksum =
      Fnv1a(map_ + kHeaderSize,
            static_cast<std::size_t>(layout_.file_size - kHeaderSize));
  header.header_checksum = HeaderChecksum(header);
  std::memcpy(map_, &header, sizeof(header));
  if (::msync(map_, static_cast<std::size_t>(layout_.file_size), MS_SYNC) !=
      0) {
    ThrowErrno("MmapStoreWriter: msync failed", "<store>");
  }
  ::munmap(map_, static_cast<std::size_t>(layout_.file_size));
  map_ = nullptr;
  ::close(fd_);
  fd_ = -1;
  finalized_ = true;
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

MmapStore::MmapStore(const std::string& path, Options options) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) ThrowErrno("MmapStore: cannot open", path);

  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    ThrowErrno("MmapStore: cannot stat", path);
  }
  const std::int64_t file_size = static_cast<std::int64_t>(st.st_size);
  if (file_size < kHeaderSize) {
    ::close(fd_);
    fd_ = -1;
    throw IoError("MmapStore: '" + path + "' is truncated (" +
                  std::to_string(file_size) + " bytes, header needs " +
                  std::to_string(kHeaderSize) + ")");
  }

  FileHeader header;
  if (::pread(fd_, &header, sizeof(header), 0) !=
      static_cast<ssize_t>(sizeof(header))) {
    ::close(fd_);
    fd_ = -1;
    ThrowErrno("MmapStore: short header read from", path);
  }
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw IoError("MmapStore: '" + path + "' has wrong magic (not a store)");
  }
  if (header.version != kFormatVersion) {
    ::close(fd_);
    fd_ = -1;
    throw IoError("MmapStore: '" + path + "' has unsupported format version " +
                  std::to_string(header.version));
  }
  if (HeaderChecksum(header) != header.header_checksum) {
    ::close(fd_);
    fd_ = -1;
    throw IoError("MmapStore: '" + path + "' header checksum mismatch");
  }

  layout_ = MmapLayout::Make(header.num_nodes, header.num_edges * 2,
                             header.feature_dim);
  gamma_ = header.gamma;
  if (layout_.file_size != file_size) {
    ::close(fd_);
    fd_ = -1;
    throw IoError("MmapStore: '" + path + "' size mismatch (header implies " +
                  std::to_string(layout_.file_size) + " bytes, file has " +
                  std::to_string(file_size) + ")");
  }

  void* m = ::mmap(nullptr, static_cast<std::size_t>(layout_.file_size),
                   PROT_READ, MAP_SHARED, fd_, 0);
  if (m == MAP_FAILED) {
    ::close(fd_);
    fd_ = -1;
    ThrowErrno("MmapStore: cannot map", path);
  }
  map_ = static_cast<unsigned char*>(m);

  if (options.verify_data) {
    const std::uint64_t got =
        Fnv1a(map_ + kHeaderSize,
              static_cast<std::size_t>(layout_.file_size - kHeaderSize));
    if (got != header.data_checksum) {
      ::munmap(map_, static_cast<std::size_t>(layout_.file_size));
      map_ = nullptr;
      ::close(fd_);
      fd_ = -1;
      throw IoError("MmapStore: '" + path + "' data checksum mismatch");
    }
  }

  adj_ = graph::CsrView{
      layout_.num_nodes, layout_.num_nodes,
      reinterpret_cast<const std::int64_t*>(map_ + layout_.adj_row_ptr_off),
      reinterpret_cast<const std::int32_t*>(map_ + layout_.adj_col_idx_off),
      nullptr};
  norm_adj_ = graph::CsrView{
      layout_.num_nodes, layout_.num_nodes,
      reinterpret_cast<const std::int64_t*>(map_ + layout_.norm_row_ptr_off),
      reinterpret_cast<const std::int32_t*>(map_ + layout_.norm_col_idx_off),
      reinterpret_cast<const float*>(map_ + layout_.norm_values_off)};
  features_ = reinterpret_cast<const float*>(map_ + layout_.features_off);

  stationary_pooled_ =
      tensor::Matrix(1, static_cast<std::size_t>(layout_.feature_dim));
  std::memcpy(stationary_pooled_.data(), map_ + layout_.stationary_off,
              static_cast<std::size_t>(layout_.feature_dim) * sizeof(float));
}

MmapStore::~MmapStore() {
  if (map_ != nullptr) {
    ::munmap(map_, static_cast<std::size_t>(layout_.file_size));
  }
  if (fd_ >= 0) ::close(fd_);
}

ResidencyInfo MmapStore::RangeResidency(std::int64_t begin,
                                        std::int64_t end) const {
  ResidencyInfo info;
  info.mapped_bytes = end - begin;
  info.exact = true;
  if (end <= begin) return info;

  const std::int64_t page = static_cast<std::int64_t>(::sysconf(_SC_PAGESIZE));
  const std::int64_t first = begin / page * page;
  const std::int64_t last = (end + page - 1) / page * page;
  const std::size_t pages = static_cast<std::size_t>((last - first) / page);
  std::vector<unsigned char> vec(pages);
  if (::mincore(map_ + first, static_cast<std::size_t>(last - first),
                vec.data()) != 0) {
    // Treat a failed probe as "unknown, assume resident" rather than erroring
    // out of a stats path.
    info.resident_bytes = info.mapped_bytes;
    info.exact = false;
    return info;
  }
  std::int64_t resident = 0;
  for (const unsigned char v : vec) {
    if (v & 1u) resident += page;
  }
  info.resident_bytes = std::min(resident, info.mapped_bytes);
  return info;
}

ResidencyInfo MmapStore::AdjacencyResidency() const {
  return RangeResidency(layout_.adj_row_ptr_off, layout_.features_off);
}

ResidencyInfo MmapStore::FeatureResidency() const {
  return RangeResidency(layout_.features_off, layout_.file_size);
}

void MmapStore::Advise(AccessHint hint) const {
  int advice = MADV_NORMAL;
  switch (hint) {
    case AccessHint::kNormal:
      advice = MADV_NORMAL;
      break;
    case AccessHint::kRandom:
      advice = MADV_RANDOM;
      break;
    case AccessHint::kSequential:
      advice = MADV_SEQUENTIAL;
      break;
    case AccessHint::kWillNeed:
      advice = MADV_WILLNEED;
      break;
    case AccessHint::kDontNeed:
      advice = MADV_DONTNEED;
      break;
  }
  ::madvise(map_, static_cast<std::size_t>(layout_.file_size), advice);
}

// ---------------------------------------------------------------------------
// SaveStore
// ---------------------------------------------------------------------------

void SaveStore(const GraphStore& graph_store,
               const FeatureStore& feature_store, const std::string& path) {
  const graph::CsrView adj = graph_store.adj();
  const graph::CsrView norm = graph_store.norm_adj();
  const std::int64_t n = graph_store.num_nodes();
  const std::int64_t dim =
      static_cast<std::int64_t>(feature_store.dim());
  if (feature_store.num_rows() != n) {
    throw ValidationError("SaveStore: feature rows (" +
                          std::to_string(feature_store.num_rows()) +
                          ") != graph nodes (" + std::to_string(n) + ")");
  }
  if (norm.nnz() != adj.nnz() + n) {
    throw ValidationError(
        "SaveStore: normalized adjacency must carry exactly one self-loop "
        "entry per row");
  }
  const tensor::Matrix* pooled = feature_store.stationary_pooled();
  if (pooled == nullptr ||
      static_cast<std::int64_t>(pooled->cols()) != dim) {
    throw ValidationError(
        "SaveStore: feature store has no pooled stationary vector of the "
        "feature width");
  }

  MmapStoreWriter writer(path, n, adj.nnz(), dim, graph_store.gamma());
  std::memcpy(writer.adj_row_ptr(), adj.row_ptr,
              static_cast<std::size_t>(n + 1) * sizeof(std::int64_t));
  std::memcpy(writer.adj_col_idx(), adj.col_idx,
              static_cast<std::size_t>(adj.nnz()) * sizeof(std::int32_t));
  std::memcpy(writer.norm_row_ptr(), norm.row_ptr,
              static_cast<std::size_t>(n + 1) * sizeof(std::int64_t));
  std::memcpy(writer.norm_col_idx(), norm.col_idx,
              static_cast<std::size_t>(norm.nnz()) * sizeof(std::int32_t));
  std::memcpy(writer.norm_values(), norm.values,
              static_cast<std::size_t>(norm.nnz()) * sizeof(float));
  float* feat_out = writer.features();
  for (std::int64_t v = 0; v < n; ++v) {
    std::memcpy(feat_out + v * dim, feature_store.row(v),
                static_cast<std::size_t>(dim) * sizeof(float));
  }
  std::memcpy(writer.stationary(), pooled->data(),
              static_cast<std::size_t>(dim) * sizeof(float));
  writer.Finalize();
}

}  // namespace nai::storage
