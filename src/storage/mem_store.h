#ifndef NAI_STORAGE_MEM_STORE_H_
#define NAI_STORAGE_MEM_STORE_H_

#include <memory>
#include <utility>

#include "src/graph/graph.h"
#include "src/storage/store.h"
#include "src/tensor/matrix.h"

namespace nai::storage {

/// The historical pooled-vector representation behind the store interface:
/// one object implements both GraphStore and FeatureStore over owned
/// in-memory containers. The incremental snapshot layer (SnapshotBuilder)
/// mutates copies of these concrete containers, so MemStore also exposes
/// them directly — the mmap backend has no equivalent accessors and deltas
/// against it are applied by first lifting to memory.
class MemStore : public GraphStore, public FeatureStore {
 public:
  /// Build path: derives the normalized adjacency and pooled stationary
  /// vector from the graph + features (the version-0 bootstrap).
  MemStore(graph::Graph graph, tensor::Matrix features, float gamma);

  /// Adopt path: all artifacts precomputed (the incremental-merge path,
  /// where SnapshotBuilder rebuilt only dirty rows).
  MemStore(graph::Graph graph, tensor::Matrix features, float gamma,
           graph::Csr norm_adj, tensor::Matrix stationary_pooled);

  // GraphStore:
  std::int64_t num_nodes() const override { return graph_.num_nodes(); }
  std::int64_t num_edges() const override { return graph_.num_edges(); }
  float gamma() const override { return gamma_; }
  graph::CsrView adj() const override {
    // The adjacency contract is unweighted (the mmap layout stores no
    // adjacency values); null the all-ones weights so both backends hand
    // out identical views.
    graph::CsrView v = graph_.adjacency().view();
    v.values = nullptr;
    return v;
  }
  graph::CsrView norm_adj() const override { return norm_adj_.view(); }

  // FeatureStore:
  std::int64_t num_rows() const override {
    return static_cast<std::int64_t>(features_.rows());
  }
  std::size_t dim() const override { return features_.cols(); }
  const float* row(std::int64_t v) const override { return features_.row(v); }
  tensor::Matrix GatherRows(
      const std::vector<std::int32_t>& ids) const override {
    return features_.GatherRows(ids);
  }
  const tensor::Matrix* stationary_pooled() const override {
    return &stationary_pooled_;
  }

  StoreBackend backend() const override { return StoreBackend::kMem; }
  ResidencyInfo AdjacencyResidency() const override;
  ResidencyInfo FeatureResidency() const override;

  /// Concrete containers (mem backend only; see class comment).
  const graph::Graph& graph() const { return graph_; }
  const tensor::Matrix& features() const { return features_; }
  const graph::Csr& norm_csr() const { return norm_adj_; }
  const tensor::Matrix& stationary() const { return stationary_pooled_; }

 private:
  graph::Graph graph_;
  tensor::Matrix features_;
  float gamma_;
  graph::Csr norm_adj_;
  tensor::Matrix stationary_pooled_;  // 1 x dim
};

}  // namespace nai::storage

#endif  // NAI_STORAGE_MEM_STORE_H_
