#include "src/storage/store.h"

#include <cstdlib>

#include "src/runtime/error.h"

namespace nai::storage {

StoreBackend ParseBackend(const std::string& name) {
  if (name == "mem") return StoreBackend::kMem;
  if (name == "mmap") return StoreBackend::kMmap;
  throw ValidationError("unknown store backend '" + name +
                        "' (expected mem|mmap)");
}

StoreBackend DefaultBackend() {
  const char* env = std::getenv("NAI_STORE");
  if (env == nullptr || *env == '\0') return StoreBackend::kMem;
  return ParseBackend(env);
}

const char* BackendName(StoreBackend backend) {
  switch (backend) {
    case StoreBackend::kMem:
      return "mem";
    case StoreBackend::kMmap:
      return "mmap";
  }
  return "unknown";
}

tensor::Matrix FeatureStore::GatherRows(
    const std::vector<std::int32_t>& ids) const {
  tensor::Matrix out(ids.size(), dim());
  for (std::size_t i = 0; i < ids.size(); ++i) out.SetRow(i, row(ids[i]));
  return out;
}

}  // namespace nai::storage
