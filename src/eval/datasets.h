#ifndef NAI_EVAL_DATASETS_H_
#define NAI_EVAL_DATASETS_H_

#include <string>
#include <vector>

#include "src/graph/generators.h"
#include "src/graph/partition.h"
#include "src/tensor/matrix.h"

namespace nai::eval {

/// A benchmark dataset specification: generator parameters plus the
/// inductive split ratios and the paper's per-dataset propagation depth k.
struct DatasetSpec {
  std::string name;
  graph::GeneratorConfig gen;
  double train_fraction = 0.7;    ///< |V_train| / |V| (val included)
  double labeled_fraction = 0.7;  ///< |V_l| / |V_train|
  double val_fraction = 0.2;      ///< |V_val| / |V_train|
  int default_depth = 5;          ///< k (Tables III-IV)
  float default_dropout = 0.1f;
};

/// Presets mimicking the scale ratios and characteristics of the paper's
/// three datasets (Table II), shrunk to laptop scale. The substitution
/// rationale is documented in DESIGN.md §2. `scale` multiplies node and
/// edge counts (NAI_SCALE environment variable, default 1).
DatasetSpec FlickrSim(double scale = 1.0);
DatasetSpec ArxivSim(double scale = 1.0);
DatasetSpec ProductsSim(double scale = 1.0);

/// Reads the NAI_SCALE environment variable (default 1.0, clamped to
/// [0.05, 100]). All benches honor it so CI can shrink runs.
double EnvScale();

/// A dataset instantiated and split for the inductive setting, with the
/// training-side tensors pre-gathered.
struct PreparedDataset {
  std::string name;
  int default_depth = 5;
  float default_dropout = 0.1f;
  graph::SyntheticDataset data;
  graph::InductiveSplit split;
  tensor::Matrix train_features;            ///< rows = train-graph local ids
  std::vector<std::int32_t> train_labels;   ///< per train-graph local id
};

PreparedDataset Prepare(const DatasetSpec& spec);

}  // namespace nai::eval

#endif  // NAI_EVAL_DATASETS_H_
