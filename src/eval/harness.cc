#include "src/eval/harness.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <thread>
#include <utility>

#include "src/baselines/glnn.h"
#include "src/baselines/nosmog.h"
#include "src/baselines/quantization.h"
#include "src/baselines/tinygnn.h"
#include "src/graph/normalize.h"
#include "src/graph/shard.h"
#include "src/runtime/error.h"
#include "src/storage/mmap_store.h"
#include "src/storage/store.h"
#include "src/tensor/ops.h"
#include "src/tensor/random.h"

namespace nai::eval {

tensor::Matrix TrainedPipeline::TeacherLogits() {
  return classifiers->Logits(model_config.depth, train_feats);
}

TrainedPipeline TrainPipeline(const PreparedDataset& ds,
                              const PipelineConfig& config) {
  TrainedPipeline out;
  out.model_config.kind = config.kind;
  out.model_config.depth =
      config.depth > 0 ? config.depth : ds.default_depth;
  out.model_config.gamma = config.gamma;
  out.model_config.feature_dim = ds.data.features.cols();
  out.model_config.num_classes = ds.data.num_classes;
  out.model_config.hidden_dims = config.hidden_dims;
  out.model_config.dropout =
      config.dropout >= 0.0f ? config.dropout : ds.default_dropout;

  // Step 1 (Fig. 2): offline feature propagation on the training graph.
  const graph::Csr train_adj =
      graph::NormalizedAdjacency(ds.split.train_graph, config.gamma);
  out.train_stack = models::PropagateStack(train_adj, ds.train_features,
                                           out.model_config.depth);
  out.train_feats.mats = out.train_stack;

  // Steps 2-4: base training + Inception Distillation.
  out.classifiers =
      std::make_unique<core::ClassifierStack>(out.model_config, config.seed);
  core::InceptionDistillation distiller(*out.classifiers, config.distill);
  distiller.TrainAll(out.train_feats, ds.train_labels,
                     ds.split.labeled_local);

  // Stationary states: the training graph's for gate training, the full
  // inference graph's for deployment (Algorithm 1 line 2).
  out.full_stationary = std::make_unique<core::StationaryState>(
      ds.data.graph, ds.data.features, config.gamma);

  if (config.train_gates && out.model_config.depth >= 2) {
    // Calibrate the gates on the *validation nodes in the deployment
    // graph*. Two failure modes force this choice: (a) the classifiers
    // were fitted on the training rows, and (b) Single-Scale Distillation
    // explicitly teaches f^(1) to mimic the deep teacher on train-graph
    // features — so on the training stack "stop at depth 1" always looks
    // optimal and every gate collapses to it. The depth trade-off the
    // gates must learn only exists on serving-time features; validation
    // nodes propagated in the full graph expose it without touching test
    // labels (the paper's validation-based tuning protocol).
    const graph::Csr full_adj =
        graph::NormalizedAdjacency(ds.data.graph, config.gamma);
    const std::vector<tensor::Matrix> full_stack = models::PropagateStack(
        full_adj, ds.data.features, out.model_config.depth);
    const std::vector<std::int32_t>& gate_rows =
        !ds.split.val_nodes.empty() ? ds.split.val_nodes
                                    : ds.split.train_nodes;
    std::vector<std::int32_t> gate_labels(gate_rows.size());
    for (std::size_t i = 0; i < gate_rows.size(); ++i) {
      gate_labels[i] = ds.data.labels[gate_rows[i]];
    }
    out.gates = std::make_unique<core::GateStack>(
        out.model_config.depth, out.model_config.feature_dim,
        config.gate.seed);
    out.gates->Train(full_stack,
                     out.full_stationary->RowsForNodes(gate_rows),
                     *out.classifiers, gate_rows, gate_labels, config.gate);
  }
  return out;
}

core::QuantizedClassifierStack& TrainedPipeline::QuantizedClassifiers() {
  if (quantized == nullptr) {
    quantized =
        std::make_unique<core::QuantizedClassifierStack>(*classifiers);
  }
  return *quantized;
}

std::shared_ptr<const graph::GraphSnapshot> MakeStoreSnapshot(
    TrainedPipeline& pipeline, const PreparedDataset& ds) {
  std::shared_ptr<const graph::GraphSnapshot> snapshot = graph::MakeSnapshot(
      ds.data.graph, ds.data.features, pipeline.model_config.gamma);
  if (storage::DefaultBackend() != storage::StoreBackend::kMmap) {
    return snapshot;
  }
  // Spill the snapshot to the on-disk layout, reopen it mapped, and unlink
  // the path: the pages survive only as the mapping, so the run serves out
  // of core without leaving files behind even on a crash.
  char path[] = "/tmp/nai_store_XXXXXX";
  const int fd = ::mkstemp(path);
  if (fd < 0) throw IoError("MakeStoreSnapshot: mkstemp failed for " +
                            std::string(path));
  ::close(fd);
  try {
    storage::SaveStore(*snapshot->graph_store, *snapshot->feature_store, path);
    auto store = std::make_shared<storage::MmapStore>(path);
    ::unlink(path);
    return graph::MakeSnapshotFromStore(store, store, snapshot->version);
  } catch (...) {
    ::unlink(path);
    throw;
  }
}

std::unique_ptr<core::NaiEngine> MakeEngine(TrainedPipeline& pipeline,
                                            const PreparedDataset& ds,
                                            const runtime::ExecContext& ctx) {
  core::EngineOptions options;
  options.gates = pipeline.gates.get();
  options.quantized = &pipeline.QuantizedClassifiers();
  options.ctx = ctx;
  return std::make_unique<core::NaiEngine>(core::NaiEngine::FromSnapshot(
      MakeStoreSnapshot(pipeline, ds), *pipeline.classifiers, options));
}

std::unique_ptr<core::ShardedNaiEngine> MakeShardedEngine(
    TrainedPipeline& pipeline, const PreparedDataset& ds, int num_shards,
    int halo_hops, int total_threads) {
  const int halo =
      halo_hops > 0 ? halo_hops : pipeline.model_config.depth;
  auto engine = std::make_unique<core::ShardedNaiEngine>(
      ds.data.graph, graph::MakeShards(ds.data.graph, num_shards, halo),
      ds.data.features, pipeline.model_config.gamma, *pipeline.classifiers,
      pipeline.full_stationary.get(), pipeline.gates.get(), total_threads);
  engine->AttachQuantizedClassifiers(&pipeline.QuantizedClassifiers());
  return engine;
}

std::unique_ptr<core::ShardedNaiEngine> MakeSnapshotShardedEngine(
    TrainedPipeline& pipeline, const PreparedDataset& ds, int num_shards,
    int halo_hops, int total_threads) {
  const int halo =
      halo_hops > 0 ? halo_hops : pipeline.model_config.depth;
  std::shared_ptr<const graph::GraphSnapshot> snapshot =
      MakeStoreSnapshot(pipeline, ds);
  graph::ShardedGraph sharded =
      num_shards == 1 ? graph::IdentityShards(snapshot->num_nodes(), halo)
                      : graph::MakeShards(snapshot->adj(), num_shards, halo);
  auto engine = std::make_unique<core::ShardedNaiEngine>(
      std::move(snapshot), std::move(sharded), *pipeline.classifiers,
      pipeline.gates.get(), /*use_stationary=*/true, total_threads);
  engine->AttachQuantizedClassifiers(&pipeline.QuantizedClassifiers());
  return engine;
}

std::vector<graph::GraphDelta> MakeChurnDeltas(
    std::int64_t base_nodes, std::int64_t feature_dim, std::size_t num_deltas,
    std::size_t nodes_per_delta, std::size_t edges_per_delta,
    std::size_t feature_updates_per_delta, std::uint64_t seed) {
  tensor::Rng rng(seed);
  auto random_row = [&] {
    std::vector<float> row(static_cast<std::size_t>(feature_dim));
    for (float& v : row) v = rng.NextFloat() * 2.0f - 1.0f;
    return row;
  };
  std::vector<graph::GraphDelta> deltas;
  deltas.reserve(num_deltas);
  std::int64_t n = base_nodes;  // node count the next delta applies against
  for (std::size_t d = 0; d < num_deltas; ++d) {
    graph::GraphDelta delta;
    for (std::size_t i = 0; i < nodes_per_delta; ++i) {
      const std::int32_t id = delta.AddNode(random_row(), n);
      // Wire each new node to one pre-existing node so it lands inside a
      // shard's connected neighborhood (and is servable, not isolated).
      delta.AddEdge(id, static_cast<std::int32_t>(
                            rng.NextDouble() * static_cast<double>(n)));
    }
    for (std::size_t i = 0; i < edges_per_delta; ++i) {
      // Among pre-existing nodes; self-loops and duplicates of existing
      // edges are dropped by the builder, which keeps the generator simple.
      delta.AddEdge(static_cast<std::int32_t>(rng.NextDouble() *
                                              static_cast<double>(n)),
                    static_cast<std::int32_t>(rng.NextDouble() *
                                              static_cast<double>(n)));
    }
    for (std::size_t i = 0; i < feature_updates_per_delta; ++i) {
      delta.UpdateFeatures(static_cast<std::int32_t>(
                               rng.NextDouble() * static_cast<double>(n)),
                           random_row());
    }
    n += static_cast<std::int64_t>(delta.node_inserts.size());
    deltas.push_back(std::move(delta));
  }
  return deltas;
}

std::vector<NaiSetting> MakeDefaultSettings(TrainedPipeline& pipeline,
                                            const PreparedDataset& ds,
                                            core::NapKind nap) {
  const int k = pipeline.model_config.depth;

  // Distance quantiles at depth 1 over the validation nodes, computed on
  // the full graph (structure is known at deployment; labels unused).
  const graph::Csr full_adj =
      graph::NormalizedAdjacency(ds.data.graph, pipeline.model_config.gamma);
  const tensor::Matrix x1 = graph::SpMM(full_adj, ds.data.features);
  const tensor::Matrix x1_val = x1.GatherRows(ds.split.val_nodes);
  const tensor::Matrix xinf_val =
      pipeline.full_stationary->RowsForNodes(ds.split.val_nodes);
  // Quantiles of the scale-free (relative) distance, matching the deployed
  // exit criterion below.
  std::vector<float> dist = core::NapDistance(0.0f, /*relative=*/true)
                                .ComputeDistances(x1_val, xinf_val);
  std::sort(dist.begin(), dist.end());
  auto quantile = [&](double q) {
    if (dist.empty()) return 0.0f;
    const std::size_t idx = std::min(
        dist.size() - 1, static_cast<std::size_t>(q * (dist.size() - 1)));
    return dist[idx];
  };

  std::vector<NaiSetting> settings;
  {  // Speed-first: shallow T_max, permissive threshold. For the gates the
     // floor is depth 2: Inception Distillation makes f^(1) match the
     // teacher on observed labels, so CE-trained gates stop at 1 unless
     // floored — the paper's NAI1g distributions show the same depth-2
     // concentration.
    NaiSetting s;
    s.name = "NAI1";
    s.config.nap = nap;
    s.config.relative_distance = true;
    s.config.threshold = quantile(0.15);
    s.config.t_min = nap == core::NapKind::kGate ? std::min(2, k) : 1;
    s.config.t_max = std::min(2, k);
    settings.push_back(s);
  }
  {  // Balanced.
    NaiSetting s;
    s.name = "NAI2";
    s.config.nap = nap;
    s.config.relative_distance = true;
    s.config.threshold = quantile(0.15);
    s.config.t_min = std::min(2, k);
    s.config.t_max = std::min(std::max(3, k - 2), k);
    settings.push_back(s);
  }
  {  // Accuracy-first: full depth available, strict threshold.
    NaiSetting s;
    s.name = "NAI3";
    s.config.nap = nap;
    s.config.relative_distance = true;
    s.config.threshold = quantile(0.05);
    s.config.t_min = std::min(2, k);
    s.config.t_max = k;
    settings.push_back(s);
  }
  return settings;
}

serve::QosPolicyTable MakeQosPolicyTable(TrainedPipeline& pipeline,
                                         const PreparedDataset& ds,
                                         core::NapKind nap,
                                         double speed_deadline_ms,
                                         double accuracy_deadline_ms,
                                         double throughput_deadline_ms) {
  // Reuse the validation-calibrated trade-off settings: NAI^1 is the
  // speed-first operating point, NAI^3 the accuracy-first one;
  // throughput-first is NAI^1 with the INT8 classifier bank.
  const std::vector<NaiSetting> settings =
      MakeDefaultSettings(pipeline, ds, nap);
  serve::QosPolicyTable table;
  serve::QosPolicy& speed = table.For(serve::QosClass::kSpeedFirst);
  speed.config = settings.front().config;
  speed.default_deadline_ms = speed_deadline_ms;
  serve::QosPolicy& accuracy = table.For(serve::QosClass::kAccuracyFirst);
  accuracy.config = settings.back().config;
  accuracy.default_deadline_ms = accuracy_deadline_ms;
  serve::QosPolicy& throughput = table.For(serve::QosClass::kThroughputFirst);
  throughput.config = speed.config;
  throughput.config.int8_classifier = true;
  throughput.default_deadline_ms = throughput_deadline_ms;
  throughput.accuracy_delta_budget = 0.05;
  return table;
}

ServingRunReport RunServing(serve::ServingEngine& server,
                            const std::vector<std::int32_t>& nodes,
                            const ServingLoadConfig& load) {
  using Clock = std::chrono::steady_clock;
  ServingRunReport report;
  const std::size_t n = nodes.size();
  tensor::Rng rng(load.seed);

  // The request plan: one request per node in caller order, or — under
  // Zipf skew — draws *with replacement*, head-weighted by caller order
  // (inverse-CDF over the normalized (j+1)^-alpha weights). Everything
  // downstream is request-aligned through report.request_indices, which
  // is the identity in the one-per-node mode.
  std::vector<std::size_t>& idx = report.request_indices;
  if (load.zipf_alpha > 0.0 && n > 0) {
    const std::size_t m = load.num_requests > 0 ? load.num_requests : n;
    std::vector<double> cdf(n);
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      total += std::pow(static_cast<double>(j + 1), -load.zipf_alpha);
      cdf[j] = total;
    }
    idx.reserve(m);
    for (std::size_t t = 0; t < m; ++t) {
      const double u = rng.NextDouble() * total;
      std::size_t j = static_cast<std::size_t>(
          std::upper_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      if (j >= n) j = n - 1;  // u landed exactly on the total
      idx.push_back(j);
    }
  } else {
    idx.resize(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  }
  const std::size_t m = idx.size();
  report.predictions.assign(m, -1);
  report.classes.resize(m);
  for (std::size_t t = 0; t < m; ++t) {
    // One uniform draw splits the three classes; with throughput_fraction
    // at its 0 default the second branch never fires and the class stream
    // is bit-identical to the historical speed/accuracy-only draw.
    const double u = rng.NextDouble();
    report.classes[t] =
        u < load.speed_first_fraction ? serve::QosClass::kSpeedFirst
        : u < load.speed_first_fraction + load.throughput_fraction
            ? serve::QosClass::kThroughputFirst
            : serve::QosClass::kAccuracyFirst;
  }
  if (m == 0) {
    // No load to interleave with — still honor the update stream so the
    // engine ends on base + all updates.
    double update_ms = 0.0;
    for (const graph::GraphDelta& delta : load.updates) {
      update_ms += server.ApplyDeltas(delta).get().apply_ms;
      ++report.updates_applied;
    }
    report.mean_update_ms =
        report.updates_applied > 0
            ? update_ms / static_cast<double>(report.updates_applied)
            : 0.0;
    report.final_epoch = server.engine().version();
    report.stats = server.Stats();
    return report;
  }

  // Submission order: request order, or phased through one shard at a time
  // (skewed load — the steal scenario). The stable sort keeps the
  // requests' relative order within a shard, so runs stay reproducible.
  std::vector<std::size_t> order(m);
  for (std::size_t t = 0; t < m; ++t) order[t] = t;
  if (load.skew_by_shard) {
    const std::vector<std::int32_t>& owner =
        server.engine().sharded_graph().owner;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return owner[nodes[idx[a]]] < owner[nodes[idx[b]]];
                     });
  }

  const Clock::time_point start = Clock::now();

  // Update churn: one dedicated updater thread feeds the delta batches
  // through ApplyDeltas while the load runs, paced against the wall clock
  // (each apply waits for its swap before the next is due, so the applied
  // rate saturates at 1/apply_ms no matter what was asked for). Batches
  // the load outlives are applied back-to-back at the end — the engine
  // always finishes on base + all updates.
  std::atomic<bool> load_done{false};
  std::int64_t updates_applied = 0;
  double update_ms_total = 0.0;
  std::thread updater;
  if (!load.updates.empty()) {
    updater = std::thread([&] {
      const double gap_us =
          load.updates_per_sec > 0.0 ? 1e6 / load.updates_per_sec : 0.0;
      for (std::size_t d = 0; d < load.updates.size(); ++d) {
        if (gap_us > 0.0 && !load_done.load(std::memory_order_acquire)) {
          std::this_thread::sleep_until(
              start + std::chrono::microseconds(static_cast<std::int64_t>(
                          gap_us * static_cast<double>(d + 1))));
        }
        const serve::DeltaApplyReport applied =
            server.ApplyDeltas(load.updates[d]).get();
        ++updates_applied;
        update_ms_total += applied.apply_ms;
      }
    });
  }

  if (load.arrival_rate_qps > 0.0) {
    // Open loop: one generator thread paces Poisson arrivals against the
    // wall clock (sleep_until, so service time never stretches the
    // schedule) and never blocks on admission — a full queue sheds the
    // request, keeping the offered load honest under overload.
    //
    // Bursty modulation maps the Poisson "busy clock" onto the wall
    // clock: every burst_on_ms of arrivals is followed by burst_off_ms of
    // silence, so within a burst the instantaneous rate is the full
    // arrival_rate_qps.
    const bool bursty = load.burst_on_ms > 0.0 && load.burst_off_ms > 0.0;
    std::vector<std::pair<std::size_t, std::future<serve::Response>>>
        in_flight;
    in_flight.reserve(m);
    double arrival_us = 0.0;
    for (const std::size_t t : order) {
      arrival_us += -std::log(1.0 - rng.NextDouble()) * 1e6 /
                    load.arrival_rate_qps;
      double wall_us = arrival_us;
      if (bursty) {
        const double on_us = 1e3 * load.burst_on_ms;
        const double off_us = 1e3 * load.burst_off_ms;
        wall_us += std::floor(arrival_us / on_us) * off_us;
      }
      std::this_thread::sleep_until(
          start + std::chrono::microseconds(
                      static_cast<std::int64_t>(wall_us)));
      std::optional<std::future<serve::Response>> future =
          server.TrySubmit(nodes[idx[t]], report.classes[t]);
      if (future.has_value()) in_flight.emplace_back(t, std::move(*future));
    }
    for (auto& [t, future] : in_flight) {
      const serve::Response response = future.get();
      if (response.served) report.predictions[t] = response.prediction;
    }
  } else {
    // Closed loop: each client keeps exactly one request in flight.
    // Workers write disjoint slots of report.predictions (one per claimed
    // index), so no synchronization beyond the claim counter is needed.
    const int clients = std::max(1, load.closed_loop_clients);
    std::atomic<std::size_t> next{0};
    auto client = [&] {
      while (true) {
        const std::size_t slot = next.fetch_add(1);
        if (slot >= m) return;
        const std::size_t t = order[slot];
        const serve::Response response =
            server.Submit(nodes[idx[t]], report.classes[t]).get();
        if (response.served) report.predictions[t] = response.prediction;
      }
    };
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (int c = 0; c < clients; ++c) workers.emplace_back(client);
    for (std::thread& w : workers) w.join();
  }
  report.duration_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  if (updater.joinable()) {
    load_done.store(true, std::memory_order_release);
    updater.join();
    report.updates_applied = updates_applied;
    report.mean_update_ms =
        updates_applied > 0
            ? update_ms_total / static_cast<double>(updates_applied)
            : 0.0;
  }
  report.final_epoch = server.engine().version();

  std::int64_t served = 0;
  for (const std::int32_t p : report.predictions) served += p >= 0 ? 1 : 0;
  report.achieved_qps = report.duration_ms > 0.0
                            ? 1000.0 * static_cast<double>(served) /
                                  report.duration_ms
                            : 0.0;
  report.offered_qps = load.arrival_rate_qps > 0.0 ? load.arrival_rate_qps
                                                   : report.achieved_qps;
  report.stats = server.Stats();
  return report;
}

namespace {

/// Scores one engine run: NAI cost counters + accuracy row. Shared by the
/// plain and sharded paths so both report identically.
MethodResult ScoreNaiRun(core::InferenceResult result,
                         const PreparedDataset& ds,
                         const std::vector<std::int32_t>& nodes,
                         const std::string& name) {
  MethodResult out;
  out.stats = result.stats;
  out.predictions = std::move(result.predictions);
  CostCounters cost;
  cost.total_macs = out.stats.total_macs();
  cost.fp_macs = out.stats.fp_macs();
  // Wall-clock, not the sum of stage timers: with inter-batch parallelism
  // or sharding the per-shard busy times overlap and their sum would
  // overstate latency.
  cost.total_time_ms = out.stats.wall_time_ms;
  cost.fp_time_ms = out.stats.fp_time_ms;
  out.row = MakeRow(name,
                    AccuracyOnNodes(out.predictions, ds.data.labels, nodes),
                    cost, static_cast<std::int64_t>(nodes.size()));
  return out;
}

}  // namespace

MethodResult RunNai(core::NaiEngine& engine, const PreparedDataset& ds,
                    const std::vector<std::int32_t>& nodes,
                    const core::InferenceConfig& config,
                    const std::string& name) {
  return ScoreNaiRun(engine.Infer(nodes, config), ds, nodes, name);
}

MethodResult RunShardedNai(core::ShardedNaiEngine& engine,
                           const PreparedDataset& ds,
                           const std::vector<std::int32_t>& nodes,
                           const core::InferenceConfig& config,
                           const std::string& name) {
  return ScoreNaiRun(engine.Infer(nodes, config), ds, nodes, name);
}

MethodResult RunVanilla(core::NaiEngine& engine, const PreparedDataset& ds,
                        const std::vector<std::int32_t>& nodes,
                        std::size_t batch_size, const std::string& name) {
  core::InferenceConfig config;
  config.nap = core::NapKind::kNone;
  config.t_max = 0;  // full depth k
  config.batch_size = batch_size;
  return RunNai(engine, ds, nodes, config, name);
}

namespace {

MethodResult FinishBaseline(const std::string& name,
                            const PreparedDataset& ds,
                            const std::vector<std::int32_t>& nodes,
                            std::vector<std::int32_t> predictions,
                            const CostCounters& cost) {
  MethodResult out;
  out.predictions = std::move(predictions);
  out.row = MakeRow(name,
                    AccuracyOnNodes(out.predictions, ds.data.labels, nodes),
                    cost, static_cast<std::int64_t>(nodes.size()));
  return out;
}

}  // namespace

MethodResult RunGlnn(TrainedPipeline& pipeline, const PreparedDataset& ds,
                     const std::vector<std::int32_t>& nodes,
                     int hidden_multiplier) {
  baselines::GlnnConfig config;
  for (const std::size_t h : pipeline.model_config.hidden_dims) {
    config.hidden_dims.push_back(h * hidden_multiplier);
  }
  if (config.hidden_dims.empty()) config.hidden_dims.push_back(128);
  config.dropout = pipeline.model_config.dropout;
  baselines::Glnn glnn(ds.data.features.cols(), ds.data.num_classes, config);
  glnn.Train(ds.train_features, pipeline.TeacherLogits(), ds.train_labels,
             ds.split.labeled_local);
  baselines::GlnnResult r = glnn.Infer(ds.data.features.GatherRows(nodes));
  return FinishBaseline("GLNN", ds, nodes, std::move(r.predictions), r.cost);
}

MethodResult RunNosmog(TrainedPipeline& pipeline, const PreparedDataset& ds,
                       const std::vector<std::int32_t>& nodes) {
  baselines::NosmogConfig config;
  config.hidden_dims = pipeline.model_config.hidden_dims;
  if (config.hidden_dims.empty()) config.hidden_dims.push_back(64);
  config.dropout = pipeline.model_config.dropout;
  baselines::Nosmog nosmog(ds.data.features.cols(), ds.data.num_classes,
                           config);
  nosmog.Train(ds.split.train_graph, ds.train_features,
               pipeline.TeacherLogits(), ds.train_labels,
               ds.split.labeled_local);
  baselines::NosmogResult r = nosmog.Infer(ds.data.graph, ds.data.features,
                                           ds.split.train_nodes, nodes);
  return FinishBaseline("NOSMOG", ds, nodes, std::move(r.predictions),
                        r.cost);
}

MethodResult RunTinyGnn(TrainedPipeline& pipeline, const PreparedDataset& ds,
                        const std::vector<std::int32_t>& nodes) {
  baselines::TinyGnnConfig config;
  config.attention_dim = ds.data.features.cols();
  config.hidden_dims = pipeline.model_config.hidden_dims;
  if (config.hidden_dims.empty()) config.hidden_dims.push_back(64);
  config.dropout = pipeline.model_config.dropout;
  baselines::TinyGnn tiny(ds.data.features.cols(), ds.data.num_classes,
                          config);
  tiny.Train(ds.split.train_graph, ds.train_features,
             pipeline.TeacherLogits(), ds.train_labels,
             ds.split.labeled_local);
  baselines::TinyGnnResult r =
      tiny.Infer(ds.data.graph, ds.data.features, nodes);
  return FinishBaseline("TinyGNN", ds, nodes, std::move(r.predictions),
                        r.cost);
}

MethodResult RunQuantized(TrainedPipeline& pipeline, const PreparedDataset& ds,
                          const std::vector<std::int32_t>& nodes,
                          std::size_t batch_size) {
  const int k = pipeline.model_config.depth;
  models::DepthHead& head = pipeline.classifiers->head(k);
  const baselines::QuantizedMlp qmlp(head.classifier_mlp());
  baselines::QuantizedInferResult r = baselines::QuantizedScalableInfer(
      ds.data.graph, ds.data.features, pipeline.model_config.gamma, k, head,
      qmlp, nodes, batch_size);
  return FinishBaseline("Quantization", ds, nodes, std::move(r.predictions),
                        r.cost);
}

void PrintNodeDistribution(const std::string& label,
                           const core::InferenceStats& stats) {
  std::printf("%-10s [", label.c_str());
  for (std::size_t l = 0; l < stats.exits_at_depth.size(); ++l) {
    std::printf("%s%lld", l == 0 ? "" : ", ",
                static_cast<long long>(stats.exits_at_depth[l]));
  }
  std::printf("]  avg depth %.2f\n", stats.average_depth());
}

}  // namespace nai::eval
