#ifndef NAI_EVAL_HARNESS_H_
#define NAI_EVAL_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/classifier_stack.h"
#include "src/core/distillation.h"
#include "src/core/inference.h"
#include "src/core/nap_gate.h"
#include "src/core/sharded_inference.h"
#include "src/core/stationary.h"
#include "src/eval/datasets.h"
#include "src/eval/metrics.h"
#include "src/models/scalable_gnn.h"
#include "src/runtime/exec_context.h"
#include "src/serve/qos.h"
#include "src/serve/serving_engine.h"

namespace nai::eval {

/// Everything needed to train one NAI deployment on one dataset.
struct PipelineConfig {
  models::ModelKind kind = models::ModelKind::kSgc;
  int depth = 0;  ///< k; 0 = dataset default
  float gamma = 0.5f;
  std::vector<std::size_t> hidden_dims = {64};
  float dropout = -1.0f;  ///< <0 = dataset default
  core::DistillConfig distill;
  core::GateTrainConfig gate;
  bool train_gates = true;
  std::uint64_t seed = 42;
};

/// A trained NAI deployment: classifier bank, stationary states (training
/// graph for gate training, full graph for inference), optional gates, and
/// the training-graph propagated stack (kept for baseline distillation).
struct TrainedPipeline {
  models::ModelConfig model_config;
  std::unique_ptr<core::ClassifierStack> classifiers;
  std::unique_ptr<core::StationaryState> full_stationary;
  std::unique_ptr<core::GateStack> gates;
  std::vector<tensor::Matrix> train_stack;  ///< X^(0..k) on the train graph
  core::GatheredStack train_feats;          ///< same, as a GatheredStack
  /// INT8 twin of the classifier bank, quantized on first use (see
  /// QuantizedClassifiers) — what engines built by the Make*Engine
  /// factories serve kThroughputFirst / int8_classifier traffic with.
  std::unique_ptr<core::QuantizedClassifierStack> quantized;

  /// Teacher logits f^(k)(X^(k)) on the training rows (baseline distilling).
  tensor::Matrix TeacherLogits();

  /// The pipeline-owned INT8 classifier bank, quantizing the float bank on
  /// the first call. Not thread-safe (call during setup); the returned
  /// reference lives as long as the pipeline.
  core::QuantizedClassifierStack& QuantizedClassifiers();
};

/// Trains the full NAI pipeline (propagation, Inception Distillation, gate
/// training) on the dataset's training graph.
TrainedPipeline TrainPipeline(const PreparedDataset& ds,
                              const PipelineConfig& config);

/// Builds the version-0 snapshot the engine factories serve from, honoring
/// the NAI_STORE / --store backend selector (storage::DefaultBackend): mem
/// keeps the pooled in-memory store; mmap writes the snapshot to an
/// anonymous temp file in the storage::MmapStore layout, reopens it
/// mapped, and unlinks the path — the pages live only as the mapping, so
/// the whole process reads adjacency, weights and features out of core.
/// Engines built from the two backends are bit-identical (FeatureStore
/// rows are copied bit-for-bit).
std::shared_ptr<const graph::GraphSnapshot> MakeStoreSnapshot(
    TrainedPipeline& pipeline, const PreparedDataset& ds);

/// Builds the inference engine over the full graph (training + unseen
/// nodes) for a trained pipeline, via NaiEngine::FromSnapshot on a
/// MakeStoreSnapshot snapshot (so NAI_STORE / --store picks the storage
/// backend). `ctx` selects the thread pool the engine's kernels and
/// inter-batch parallelism run on (default pool — NAI_THREADS / --threads
/// — when omitted).
std::unique_ptr<core::NaiEngine> MakeEngine(
    TrainedPipeline& pipeline, const PreparedDataset& ds,
    const runtime::ExecContext& ctx = {});

/// Builds the sharded serving engine (`--shards` flag path): partitions the
/// full graph into `num_shards` balanced shards with a `halo_hops`-hop halo
/// (0 = the pipeline's depth k, the deepest T_max the engine can serve) and
/// gives each shard an equal slice of `total_threads` (<= 0 = default-pool
/// size). Results are bit-identical to MakeEngine's (see
/// core::ShardedNaiEngine).
std::unique_ptr<core::ShardedNaiEngine> MakeShardedEngine(
    TrainedPipeline& pipeline, const PreparedDataset& ds, int num_shards,
    int halo_hops = 0, int total_threads = 0);

/// Snapshot-backed counterpart of MakeShardedEngine: wraps the dataset's
/// full graph in a version-0 GraphSnapshot so the engine (and a
/// ServingEngine over it) accepts SwapSnapshot / ApplyDeltas. Results are
/// bit-identical to MakeShardedEngine's on the same graph.
std::unique_ptr<core::ShardedNaiEngine> MakeSnapshotShardedEngine(
    TrainedPipeline& pipeline, const PreparedDataset& ds, int num_shards,
    int halo_hops = 0, int total_threads = 0);

/// Deterministic update-churn generator: `num_deltas` batches against a
/// base graph of `base_nodes` nodes and `feature_dim`-wide features. Each
/// batch inserts `nodes_per_delta` new nodes (random features, each wired
/// to one existing node so it is servable), `edges_per_delta` random edges
/// among pre-existing nodes, and `feature_updates_per_delta` feature-row
/// replacements. Batches chain: delta d is valid against the base plus
/// deltas 0..d-1 — exactly what SnapshotBuilder::Apply and MergeFromScratch
/// both accept, so a bench can replay the same stream into the live engine
/// and the from-scratch oracle. Same seed, same stream.
std::vector<graph::GraphDelta> MakeChurnDeltas(
    std::int64_t base_nodes, std::int64_t feature_dim, std::size_t num_deltas,
    std::size_t nodes_per_delta, std::size_t edges_per_delta,
    std::size_t feature_updates_per_delta, std::uint64_t seed);

/// One named inference configuration (the paper's NAI^1, NAI^2, NAI^3).
struct NaiSetting {
  std::string name;
  core::InferenceConfig config;
};

/// Derives the three canonical accuracy/latency trade-off settings from the
/// distance distribution on the validation nodes: speed-first (small T_max),
/// balanced, and accuracy-first (T_max = k). Thresholds T_s are chosen as
/// quantiles of the depth-wise distance distribution, which is how a user
/// would calibrate them from a validation set.
std::vector<NaiSetting> MakeDefaultSettings(TrainedPipeline& pipeline,
                                            const PreparedDataset& ds,
                                            core::NapKind nap);

/// Builds the streaming front-end's QoS table the way a user would: from
/// the pipeline's validation-calibrated settings (MakeDefaultSettings).
/// The speed-first class gets the NAI^1 config under `speed_deadline_ms`;
/// accuracy-first gets the NAI^3 config under `accuracy_deadline_ms`;
/// throughput-first gets the NAI^1 config with the INT8 classifier under
/// `throughput_deadline_ms` and a 5% accuracy-delta budget. Engines the
/// table is deployed on must carry the pipeline's quantized bank — the
/// Make*Engine factories attach it.
serve::QosPolicyTable MakeQosPolicyTable(TrainedPipeline& pipeline,
                                         const PreparedDataset& ds,
                                         core::NapKind nap,
                                         double speed_deadline_ms = 20.0,
                                         double accuracy_deadline_ms = 200.0,
                                         double throughput_deadline_ms = 500.0);

/// How RunServing offers `nodes` to a ServingEngine.
struct ServingLoadConfig {
  /// > 0: open loop — requests arrive by a Poisson process at this rate
  /// (exponential inter-arrival gaps, non-blocking admission: a full queue
  /// sheds the request, which is the open-loop contract). 0: closed loop —
  /// `closed_loop_clients` workers each keep exactly one request in flight
  /// (blocking admission, no shedding).
  double arrival_rate_qps = 0.0;
  int closed_loop_clients = 4;
  /// Probability a request is submitted speed-first; of the remainder,
  /// `throughput_fraction` goes throughput-first and the rest go
  /// accuracy-first (one uniform draw per request:
  /// u < speed -> speed, u < speed + throughput -> throughput, else
  /// accuracy — so throughput_fraction = 0 reproduces the historical
  /// two-class stream bit-for-bit). Classes are drawn per node up front
  /// from `seed`, so the same seed targets the same mix in either loop
  /// mode.
  double speed_first_fraction = 1.0;
  /// Probability mass of the throughput-first (INT8) class; requires the
  /// served table to carry a kThroughputFirst policy the engine can
  /// validate (an attached quantized bank) when > 0.
  double throughput_fraction = 0.0;
  std::uint64_t seed = 42;

  /// Shard-skewed arrivals: submission order is stable-sorted by owning
  /// shard, so the load phases through one shard's queue at a time while
  /// the other pumps sit idle — the work-stealing scenario. Off = caller
  /// order (shard-uniform for a shuffled node list).
  bool skew_by_shard = false;
  /// On/off bursty arrivals (open loop only): Poisson arrivals at
  /// `arrival_rate_qps` during each `burst_on_ms` window, silence for the
  /// following `burst_off_ms` — the mean offered load is
  /// rate * on / (on + off), and each burst stresses the admission
  /// controller at the full peak rate. Either value <= 0 disables
  /// modulation (steady Poisson arrivals).
  double burst_on_ms = 0.0;
  double burst_off_ms = 0.0;

  /// Zipf(alpha) query skew: when > 0, requests are drawn from `nodes`
  /// *with replacement* — each draw targets nodes[j] with probability
  /// proportional to (j+1)^-alpha over caller order — instead of visiting
  /// every node exactly once. This is the hot-node scenario the result
  /// cache exists for: at alpha ~ 1 a handful of head nodes dominate the
  /// traffic. 0 (default) keeps the one-request-per-node sweep.
  double zipf_alpha = 0.0;
  /// Number of Zipf draws (only meaningful with zipf_alpha > 0);
  /// 0 = nodes.size().
  std::size_t num_requests = 0;

  /// Update churn: delta batches applied through ServingEngine::ApplyDeltas
  /// *while the load runs*, on a dedicated updater thread. Paced at
  /// `updates_per_sec` (<= 0 = back-to-back); each apply waits for its swap
  /// to complete before the next is submitted, and any batches the load
  /// outlives are applied after the last response — so the engine always
  /// ends the run on base + all updates, which is what lets a bench compare
  /// the final state against a from-scratch merge. Requires a
  /// snapshot-backed engine when non-empty (see MakeSnapshotShardedEngine).
  std::vector<graph::GraphDelta> updates;
  double updates_per_sec = 0.0;
};

/// What one serving run produced. Vectors are request-aligned:
/// `predictions[t]` answers `nodes[request_indices[t]]` (-1 when request t
/// was shed or dropped) and `classes[t]` is the class it was submitted
/// under. Without Zipf sampling there is exactly one request per node and
/// `request_indices` is the identity, so `predictions[i]` answers
/// `nodes[i]` as before.
struct ServingRunReport {
  serve::ServingStatsSnapshot stats;
  double duration_ms = 0.0;   ///< first submission -> last completion
  double offered_qps = 0.0;   ///< open loop: the Poisson rate; closed: achieved
  double achieved_qps = 0.0;  ///< served requests / duration
  std::vector<std::int32_t> predictions;
  std::vector<serve::QosClass> classes;
  std::vector<std::size_t> request_indices;  ///< request t -> index into nodes

  /// Update-churn outcome (zero / empty when the load carried no updates).
  std::int64_t updates_applied = 0;
  double mean_update_ms = 0.0;   ///< mean ApplyDeltas build+swap wall time
  std::uint64_t final_epoch = 0; ///< engine graph version after the run
};

/// Drives one load-generation pass of `nodes` through the serving engine
/// and waits for every response. The engine is not shut down — callers can
/// run several passes (the stats snapshot is cumulative across them).
ServingRunReport RunServing(serve::ServingEngine& server,
                            const std::vector<std::int32_t>& nodes,
                            const ServingLoadConfig& load);

/// Result of running one method on the test set.
struct MethodResult {
  EvalRow row;
  core::InferenceStats stats;            ///< meaningful for NAI runs only
  std::vector<std::int32_t> predictions;
};

/// Runs the NAI engine under `config` on `nodes` and scores it.
MethodResult RunNai(core::NaiEngine& engine, const PreparedDataset& ds,
                    const std::vector<std::int32_t>& nodes,
                    const core::InferenceConfig& config,
                    const std::string& name);

/// Sharded-serving counterpart of RunNai: same scoring, queries routed
/// across the engine's shards.
MethodResult RunShardedNai(core::ShardedNaiEngine& engine,
                           const PreparedDataset& ds,
                           const std::vector<std::int32_t>& nodes,
                           const core::InferenceConfig& config,
                           const std::string& name);

/// Vanilla fixed-depth Scalable GNN (no NAP, no stationary computation).
MethodResult RunVanilla(core::NaiEngine& engine, const PreparedDataset& ds,
                        const std::vector<std::int32_t>& nodes,
                        std::size_t batch_size, const std::string& name);

/// Baseline runners (train + infer). Each distills from the pipeline's
/// teacher and evaluates on `nodes` of the full graph.
MethodResult RunGlnn(TrainedPipeline& pipeline, const PreparedDataset& ds,
                     const std::vector<std::int32_t>& nodes,
                     int hidden_multiplier);
MethodResult RunNosmog(TrainedPipeline& pipeline, const PreparedDataset& ds,
                       const std::vector<std::int32_t>& nodes);
MethodResult RunTinyGnn(TrainedPipeline& pipeline, const PreparedDataset& ds,
                        const std::vector<std::int32_t>& nodes);
MethodResult RunQuantized(TrainedPipeline& pipeline, const PreparedDataset& ds,
                          const std::vector<std::int32_t>& nodes,
                          std::size_t batch_size);

/// Prints a Table-VI style node-distribution line.
void PrintNodeDistribution(const std::string& label,
                           const core::InferenceStats& stats);

}  // namespace nai::eval

#endif  // NAI_EVAL_HARNESS_H_
