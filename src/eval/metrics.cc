#include "src/eval/metrics.h"

#include <cassert>
#include <cstdio>

namespace nai::eval {

float AccuracyOnNodes(const std::vector<std::int32_t>& predictions,
                      const std::vector<std::int32_t>& labels,
                      const std::vector<std::int32_t>& nodes) {
  assert(predictions.size() == nodes.size());
  if (nodes.empty()) return 0.0f;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (predictions[i] == labels[nodes[i]]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(nodes.size());
}

EvalRow MakeRow(const std::string& method, float accuracy,
                const CostCounters& cost, std::int64_t num_nodes) {
  EvalRow row;
  row.method = method;
  row.accuracy = accuracy;
  const double n = num_nodes > 0 ? static_cast<double>(num_nodes) : 1.0;
  row.mmacs_per_node = static_cast<double>(cost.total_macs) / n / 1e6;
  row.fp_mmacs_per_node = static_cast<double>(cost.fp_macs) / n / 1e6;
  row.time_ms = cost.total_time_ms;
  row.fp_time_ms = cost.fp_time_ms;
  return row;
}

void PrintTable(const std::string& caption, const std::vector<EvalRow>& rows) {
  std::printf("\n== %s ==\n", caption.c_str());
  std::printf("%-16s %8s %12s %14s %12s %12s\n", "method", "ACC(%)",
              "mMACs/node", "FP mMACs/node", "Time(ms)", "FP Time(ms)");
  for (const EvalRow& r : rows) {
    std::printf("%-16s %8.2f %12.3f %14.3f %12.1f %12.1f\n", r.method.c_str(),
                r.accuracy * 100.0f, r.mmacs_per_node, r.fp_mmacs_per_node,
                r.time_ms, r.fp_time_ms);
  }
}

}  // namespace nai::eval
