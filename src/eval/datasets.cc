#include "src/eval/datasets.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace nai::eval {

namespace {

std::int64_t Scaled(std::int64_t base, double scale) {
  return std::max<std::int64_t>(64, static_cast<std::int64_t>(base * scale));
}

}  // namespace

double EnvScale() {
  const char* env = std::getenv("NAI_SCALE");
  if (env == nullptr) return 1.0;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  // Unparseable or non-finite (strtod accepts "nan"/"inf"): ignore the
  // variable rather than clamp garbage to the minimum scale.
  if (end == env || !std::isfinite(v)) return 1.0;
  return std::clamp(v, 0.05, 100.0);
}

DatasetSpec FlickrSim(double scale) {
  DatasetSpec spec;
  spec.name = "flickr-sim";
  spec.gen.num_nodes = Scaled(8000, scale);
  spec.gen.num_edges = Scaled(80000, scale);
  spec.gen.num_classes = 7;
  spec.gen.feature_dim = 96;
  spec.gen.power_law_exponent = 2.1f;
  spec.gen.homophily = 0.62f;  // Flickr is the noisiest of the three
  spec.gen.class_separation = 1.0f;
  spec.gen.feature_noise = 3.5f;
  spec.gen.label_noise = 0.48f;  // Flickr tops out near 50% (Table V)
  spec.gen.seed = 1001;
  // Paper split 44k/22k/22k: 75% train (of which 1/3 is validation).
  spec.train_fraction = 0.75;
  spec.labeled_fraction = 0.66;
  spec.val_fraction = 0.33;
  spec.default_depth = 7;
  spec.default_dropout = 0.3f;
  return spec;
}

DatasetSpec ArxivSim(double scale) {
  DatasetSpec spec;
  spec.name = "arxiv-sim";
  spec.gen.num_nodes = Scaled(15000, scale);
  spec.gen.num_edges = Scaled(105000, scale);
  spec.gen.num_classes = 20;
  spec.gen.feature_dim = 64;
  spec.gen.power_law_exponent = 2.3f;
  spec.gen.homophily = 0.74f;
  spec.gen.class_separation = 1.0f;
  spec.gen.feature_noise = 3.0f;
  spec.gen.label_noise = 0.28f;  // Ogbn-arxiv tops out near 70%
  spec.gen.seed = 1002;
  // Paper split 91k/30k/48k: ~72% train, validation ~25% of train.
  spec.train_fraction = 0.72;
  spec.labeled_fraction = 0.72;
  spec.val_fraction = 0.25;
  spec.default_depth = 5;
  spec.default_dropout = 0.3f;
  return spec;
}

DatasetSpec ProductsSim(double scale) {
  DatasetSpec spec;
  spec.name = "products-sim";
  spec.gen.num_nodes = Scaled(25000, scale);
  spec.gen.num_edges = Scaled(625000, scale);
  spec.gen.num_classes = 24;
  spec.gen.feature_dim = 64;
  spec.gen.power_law_exponent = 2.0f;  // heaviest-tailed, like co-purchase
  spec.gen.max_weight_ratio = 300.0f;
  spec.gen.homophily = 0.80f;
  spec.gen.class_separation = 1.0f;
  spec.gen.feature_noise = 3.0f;
  spec.gen.label_noise = 0.23f;  // Ogbn-products tops out near 75%
  spec.gen.seed = 1003;
  // Paper split 196k/39k/2213k: ~10% train, ~90% unseen test nodes.
  spec.train_fraction = 0.10;
  spec.labeled_fraction = 0.83;
  spec.val_fraction = 0.17;
  spec.default_depth = 5;
  spec.default_dropout = 0.1f;
  return spec;
}

PreparedDataset Prepare(const DatasetSpec& spec) {
  PreparedDataset out;
  out.name = spec.name;
  out.default_depth = spec.default_depth;
  out.default_dropout = spec.default_dropout;
  out.data = graph::GenerateDataset(spec.gen);
  out.split = graph::MakeInductiveSplit(out.data.graph, spec.train_fraction,
                                        spec.labeled_fraction,
                                        spec.val_fraction,
                                        spec.gen.seed ^ 0x5eedULL);
  out.train_features = out.data.features.GatherRows(out.split.train_nodes);
  out.train_labels.reserve(out.split.train_nodes.size());
  for (const std::int32_t g : out.split.train_nodes) {
    out.train_labels.push_back(out.data.labels[g]);
  }
  return out;
}

}  // namespace nai::eval
