#include "src/eval/mac_counter.h"

#include <cassert>

namespace nai::eval {

std::int64_t FixedDepthPropagationMacs(const graph::BatchSupport& support,
                                       int depth, std::int64_t feature_dim) {
  assert(depth + 1 <= static_cast<int>(support.layer_counts.size()));
  std::int64_t macs = 0;
  for (int l = 1; l <= depth; ++l) {
    const std::int64_t limit = support.layer_counts[depth - l];
    macs += support.sub_adj.row_ptr[limit] * feature_dim;
  }
  return macs;
}

double AverageDepth(const std::vector<std::int64_t>& exits_at_depth) {
  std::int64_t weighted = 0, total = 0;
  for (std::size_t l = 0; l < exits_at_depth.size(); ++l) {
    weighted += static_cast<std::int64_t>(l + 1) * exits_at_depth[l];
    total += exits_at_depth[l];
  }
  return total == 0 ? 0.0
                    : static_cast<double>(weighted) /
                          static_cast<double>(total);
}

core::ComplexityParams ParamsFromStats(const core::InferenceStats& stats,
                                       std::int64_t feature_dim,
                                       std::int64_t classifier_layers,
                                       int t_max) {
  core::ComplexityParams p;
  p.n = stats.num_nodes;
  p.f = feature_dim;
  p.p = classifier_layers;
  p.k = static_cast<double>(t_max);
  p.q = stats.average_depth();
  // propagation_macs ≈ q * m * f  =>  m ≈ propagation_macs / (q * f).
  const double qf = p.q * static_cast<double>(feature_dim);
  p.m = qf > 0.0 ? static_cast<std::int64_t>(
                       static_cast<double>(stats.propagation_macs) / qf)
                 : 0;
  return p;
}

}  // namespace nai::eval
