#ifndef NAI_EVAL_MAC_COUNTER_H_
#define NAI_EVAL_MAC_COUNTER_H_

#include <cstdint>
#include <vector>

#include "src/core/complexity.h"
#include "src/core/inference.h"
#include "src/graph/sampler.h"

namespace nai::eval {

/// Analytic MACs of fixed-depth propagation over one batch's supporting
/// structure: sum over hops l of nnz(rows within depth-l hops) * f.
/// This is the exact work SpMMPrefix performs (Table I's "kmf" with m the
/// touched-edge count).
std::int64_t FixedDepthPropagationMacs(const graph::BatchSupport& support,
                                       int depth, std::int64_t feature_dim);

/// Average personalized depth q from an exit histogram (Table I's q).
double AverageDepth(const std::vector<std::int64_t>& exits_at_depth);

/// Builds Table-I symbolic parameters from a measured inference run, so the
/// analytic formulas can be cross-checked against engine counters:
/// n = nodes classified, f = feature dim, p = classifier layers,
/// k = t_max, q = measured average depth, and m = touched edges per unit
/// depth inferred from the measured propagation MACs.
core::ComplexityParams ParamsFromStats(const core::InferenceStats& stats,
                                       std::int64_t feature_dim,
                                       std::int64_t classifier_layers,
                                       int t_max);

}  // namespace nai::eval

#endif  // NAI_EVAL_MAC_COUNTER_H_
