#ifndef NAI_EVAL_METRICS_H_
#define NAI_EVAL_METRICS_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace nai::eval {

/// Wall-clock stopwatch (steady clock, milliseconds).
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Cost counters shared by every inference method in the evaluation:
/// total and feature-processing (FP) MACs and wall time, following the
/// paper's five criteria (§IV-A). Totals, not per-node averages; the
/// harness divides by the node count when printing.
struct CostCounters {
  std::int64_t total_macs = 0;
  std::int64_t fp_macs = 0;
  double total_time_ms = 0.0;
  double fp_time_ms = 0.0;

  CostCounters& operator+=(const CostCounters& o) {
    total_macs += o.total_macs;
    fp_macs += o.fp_macs;
    total_time_ms += o.total_time_ms;
    fp_time_ms += o.fp_time_ms;
    return *this;
  }
};

/// One printed row of a comparison table (Tables V, IX, X, XI).
struct EvalRow {
  std::string method;
  float accuracy = 0.0f;       // fraction in [0,1]
  double mmacs_per_node = 0.0;
  double fp_mmacs_per_node = 0.0;
  double time_ms = 0.0;        // total inference time for the test set
  double fp_time_ms = 0.0;
};

/// Classification accuracy of predictions against labels restricted to
/// `nodes` (predictions[i] corresponds to nodes[i]).
float AccuracyOnNodes(const std::vector<std::int32_t>& predictions,
                      const std::vector<std::int32_t>& labels,
                      const std::vector<std::int32_t>& nodes);

/// Builds an EvalRow from raw counters.
EvalRow MakeRow(const std::string& method, float accuracy,
                const CostCounters& cost, std::int64_t num_nodes);

/// Prints a table of rows with a caption, paper-style.
void PrintTable(const std::string& caption, const std::vector<EvalRow>& rows);

}  // namespace nai::eval

#endif  // NAI_EVAL_METRICS_H_
