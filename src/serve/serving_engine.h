#ifndef NAI_SERVE_SERVING_ENGINE_H_
#define NAI_SERVE_SERVING_ENGINE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/sharded_inference.h"
#include "src/graph/delta.h"
#include "src/serve/batcher.h"
#include "src/serve/qos.h"
#include "src/serve/request_queue.h"
#include "src/serve/result_cache.h"
#include "src/serve/scheduler.h"

namespace nai::serve {

/// Front-end tuning knobs (the per-shard queue and batcher are replicated
/// from these for every shard that owns nodes).
struct ServingOptions {
  /// Admission-queue capacity per shard; TrySubmit sheds above it.
  std::size_t queue_capacity = 1024;
  BatcherConfig batcher;
  /// When true, requests whose deadline already passed at batch formation
  /// are completed unserved (prediction -1) instead of burning engine time
  /// on an answer nobody is waiting for.
  bool drop_expired = false;
  /// The adaptive scheduler: per-class priority with aging, cross-shard
  /// work stealing, and the admission controller (see SchedulerOptions —
  /// each mechanism can be disabled independently).
  SchedulerOptions scheduler;
  /// The per-shard, epoch-versioned prediction cache (see ResultCache).
  /// Hits bypass the queue, the batcher and the admission controller
  /// entirely; misses fill at batch completion. Disable for A/Bs or when
  /// queries never repeat.
  ResultCacheOptions cache;
};

/// Latency distribution of one request population (milliseconds,
/// admission -> completion). Percentiles are nearest-rank, computed over a
/// sliding window of the most recent kLatencyWindow samples per class so a
/// long-running deployment's stats stay O(1) in memory. `count` is the
/// exact all-time served total of the population; `window` is how many
/// samples the percentile ring currently holds (equal to `count` until the
/// population outgrows kLatencyWindow — after that the percentiles describe
/// recent traffic while `count` keeps the true total).
struct LatencySummary {
  std::int64_t count = 0;   ///< all-time completions of this population
  std::int64_t window = 0;  ///< samples behind the percentiles below
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// A point-in-time copy of the serving counters. Consistent within one
/// snapshot (taken under the stats lock); queue_depth is sampled at
/// snapshot time.
struct ServingStatsSnapshot {
  std::int64_t submitted = 0;        ///< admitted into a shard queue
  std::int64_t rejected = 0;         ///< shed at admission (full / controller / shut down)
  std::int64_t completed = 0;        ///< served through the engine
  std::int64_t dropped = 0;          ///< expired in queue (drop_expired)
  std::int64_t deadline_misses = 0;  ///< completed or dropped past deadline
  std::size_t queue_depth = 0;       ///< waiting requests across all shards

  LatencySummary latency;  ///< all served requests
  std::array<LatencySummary, kNumQosClasses> per_class;
  std::array<std::int64_t, kNumQosClasses> per_class_misses{};

  /// Result-cache view: completions split by how they were served — a hit
  /// replays a cached result inline at submit time (its latency is the
  /// lookup, microseconds), a miss goes the full queue/batch/engine path.
  /// `per_class_hit[c].count + per_class_miss[c].count == per_class[c].count`.
  std::array<LatencySummary, kNumQosClasses> per_class_hit;
  std::array<LatencySummary, kNumQosClasses> per_class_miss;
  std::int64_t cache_hits = 0;    ///< lookups answered inline, all shards
  std::int64_t cache_misses = 0;  ///< lookups that fell through, all shards
  double cache_hit_ratio = 0.0;   ///< hits / (hits + misses), 0 when none
  /// Per-shard cache counters (indexed by shard id; default-initialized for
  /// shards that own no nodes or when the cache is disabled).
  std::vector<ResultCacheStats> caches;

  /// batch_size_hist[s-1] = engine calls that served exactly s requests.
  std::vector<std::int64_t> batch_size_hist;
  std::int64_t num_batches = 0;
  double mean_batch_size = 0.0;

  /// Scheduler counters. `shed_adaptive` is the subset of `rejected` the
  /// admission controller turned away with the queue below capacity
  /// (predicted queue delay already past the request's budget).
  /// `stolen_requests` counts requests served by a pump other than their
  /// owner's; `steal_fallback_requests` is the subset the thief had to
  /// route through the owner engine because its own halo could not cover
  /// them bit-exactly.
  std::int64_t shed_adaptive = 0;
  std::int64_t stolen_batches = 0;
  std::int64_t stolen_requests = 0;
  std::int64_t steal_fallback_requests = 0;
  /// Per-shard adaptation state (indexed by shard id; default-initialized
  /// for shards that own no nodes) and the bounded adaptation trace —
  /// how the controller moved each shard's window/admission limit as the
  /// arrival process changed.
  std::vector<SchedulerShardSnapshot> scheduler;
  std::vector<SchedulerTraceEvent> adaptation_trace;

  /// Graph-churn counters. `epoch` is the graph version (snapshot version)
  /// the engine was serving when the snapshot was taken; `snapshot_swaps`
  /// counts completed ApplyDeltas swaps; `stale_served` counts completions
  /// answered under an older graph version than the engine had already
  /// moved to at completion time (batches that pinned a pre-swap state,
  /// plus cache hits replayed in the swap-to-bump window) — the staleness
  /// measure of the update-churn bench. Compare a Response::epoch against
  /// `epoch` for the per-request view.
  std::uint64_t epoch = 0;
  std::int64_t snapshot_swaps = 0;
  std::int64_t stale_served = 0;

  /// Storage-backend view of the snapshot being served (empty string for
  /// engines built on borrowed graph views). Mapped/resident bytes sum the
  /// snapshot stores' adjacency and feature sections; for the mmap backend
  /// resident_bytes is the mincore(2)-measured working set of the mapped
  /// store file (`store_residency_exact` = true), for the mem backend it
  /// equals mapped_bytes (everything is heap-resident, exact = false).
  std::string store_backend;
  std::int64_t store_mapped_bytes = 0;
  std::int64_t store_resident_bytes = 0;
  bool store_residency_exact = false;

  /// The engine counters of every served batch, merged via
  /// InferenceStats::Accumulate (num_nodes = served requests; wall_time_ms
  /// is the summed per-batch engine time, not elapsed time).
  core::InferenceStats engine_stats;
};

/// What one completed ApplyDeltas resolves to (through its future).
struct DeltaApplyReport {
  std::uint64_t version = 0;        ///< snapshot version now serving
  graph::SnapshotBuildStats build;  ///< incremental-merge accounting
  double apply_ms = 0.0;            ///< build + swap + epoch bump wall time
};

/// The streaming serving front-end: admission queues, dynamic batching,
/// QoS-class resolution and adaptive scheduling over a sharded NAI engine.
///
/// One RequestQueue + DynamicBatcher + pump thread per shard that owns
/// nodes. Submit routes a request to its owning shard's queue; the shard's
/// pump coalesces queued requests into batches (in the queue's priority
/// order when SchedulerOptions::priority is on) and serves each batch with
/// one per-query-config engine call (NaiEngine::InferMixed), so traffic
/// classes co-exist in a batch yet are each served with their own
/// InferenceConfig. Completion fulfils the request's future and invokes
/// its callback on the serving pump thread.
///
/// Scheduling (see SchedulerOptions):
///   * priority — speed-first bypasses queued accuracy-first work inside a
///     shard queue, aging-bounded so the bypassed class cannot starve;
///   * stealing — a pump whose queue stays empty for steal_poll_us scans
///     the sibling queues and steals a whole coalesced batch from the most
///     backlogged one; stolen requests covered by the thief's halo
///     (ShardedNaiEngine::CanServeFromShard) run on the thief's engine,
///     the rest on the owner's (serialized by a per-shard engine mutex);
///   * admission control — per-shard arrival/service EWMAs retune every
///     batcher's coalescing window and shed TrySubmits whose predicted
///     queue delay already exceeds their deadline budget.
///
/// Determinism: a request's prediction and exit depth are per-node
/// quantities of its resolved config — bit-identical to a direct
/// (Sharded)NaiEngine::Infer of the same node under that config, no matter
/// how requests were batched, interleaved with other traffic, bypassed by
/// a higher class, or stolen across shards.
///
/// Shutdown is graceful: queues close (new submissions are rejected), every
/// admitted request is still served, pumps drain and join. The destructor
/// calls Shutdown(). The wrapped engine must outlive this object, and
/// direct Infer calls on it must not overlap in-flight requests (the shard
/// engines' samplers are not thread-safe).
class ServingEngine {
 public:
  /// Latency samples retained per QoS class for the percentile window.
  static constexpr std::size_t kLatencyWindow = 16384;

  /// Throws std::invalid_argument when a policy's config cannot be served
  /// by the engine's shards (ShardedNaiEngine::ValidateConfig — the pumps
  /// bypass the routed entry points, so the halo check happens here, once)
  /// or when `options` is degenerate (zero queue capacity or batch size,
  /// negative wait, out-of-range scheduler knobs) — everything is
  /// validated on the caller's thread before any pump spawns.
  ServingEngine(core::ShardedNaiEngine& engine, QosPolicyTable policies,
                ServingOptions options = {});
  ~ServingEngine();
  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Blocking admission (backpressure): waits for queue space, returns the
  /// response future. A current-epoch cache hit short-circuits all of that
  /// and returns an already-ready future from the submitting thread. After
  /// Shutdown the future is immediately ready with served = false.
  /// `deadline_ms` <= 0 uses the class policy's default. Throws
  /// std::out_of_range for nodes outside the graph.
  std::future<Response> Submit(std::int32_t node, QosClass qos,
                               double deadline_ms = 0.0);

  /// Non-blocking admission: nullopt when the shard queue is full, the
  /// admission controller predicts the request would miss its deadline in
  /// the queue (shed load upstream), or the engine is shut down. A cache
  /// hit is consulted *before* admission, so a warm node can never be shed.
  std::optional<std::future<Response>> TrySubmit(std::int32_t node,
                                                 QosClass qos,
                                                 double deadline_ms = 0.0);

  /// Blocking admission with a completion callback (invoked on the pump
  /// thread after the future is fulfilled — or inline on the submitting
  /// thread for a cache hit). False when rejected; the callback still
  /// fires with the unserved response.
  bool SubmitWithCallback(std::int32_t node, QosClass qos,
                          std::function<void(const Response&)> callback,
                          double deadline_ms = 0.0);

  /// Applies one delta batch to the live graph without pausing serving:
  /// builds the next snapshot incrementally (SnapshotBuilder) on a
  /// background ingest thread, swaps it into every shard engine
  /// (ShardedNaiEngine::SwapSnapshot — batches already in flight finish on
  /// the version they pinned), then bumps the cache epoch so no pre-swap
  /// result is ever replayed. The returned future resolves once the swap
  /// and bump are visible; it carries the new version and the builder's
  /// incremental accounting (or the builder's exception on an invalid
  /// delta, in which case the serving state is unchanged). Calls
  /// serialize: a new call first waits out the previous apply. Throws
  /// std::logic_error when the wrapped engine is not snapshot-backed.
  std::future<DeltaApplyReport> ApplyDeltas(graph::GraphDelta delta);

  /// Closes admission, serves everything already queued, joins the pump
  /// threads (and any in-flight ApplyDeltas ingest thread). Idempotent.
  void Shutdown();

  /// Advances every shard cache's epoch, logically emptying them in O(1).
  /// Call after mutating the wrapped engine's graph/model state (features,
  /// classifier bank, gates) so no stale result is ever replayed; in-flight
  /// batches computed under the old epoch will not fill (see
  /// ResultCache::Insert). No-op when the cache is disabled.
  void BumpEpoch();

  ServingStatsSnapshot Stats() const;

  const QosPolicyTable& policies() const { return policies_; }
  const ServingOptions& options() const { return options_; }
  core::ShardedNaiEngine& engine() { return *engine_; }

 private:
  struct Counters;

  Request MakeRequest(std::int32_t node, QosClass qos, double deadline_ms);
  double BudgetMs(QosClass qos, double deadline_ms) const;
  std::size_t ShardFor(std::int32_t node) const;
  /// The pre-admission cache probe shared by every submit entry point:
  /// returns the inline Response for a current-epoch hit on `shard`'s
  /// cache, nullopt on miss / cache disabled / shard shut down. A hit is
  /// counted as submitted + completed (never as an arrival — it carries no
  /// information about the queue/batch process the controller models).
  std::optional<Response> TryServeFromCache(std::size_t shard,
                                            std::int32_t node, QosClass qos,
                                            double deadline_ms);
  void Complete(Request& request, Response response);
  void Reject(Request& request);
  void PumpShard(std::size_t shard);
  /// Serves `batch` on `engine_shard`'s engine (owner path: the shard the
  /// requests were queued at; steal path: the thief). Handles
  /// drop_expired, stats, cache fills and completion. `state` is the
  /// pinned engine state the whole batch runs against — the caller pins it
  /// once per batch, which is what makes a snapshot swap land atomically
  /// between batches. `applied_wait_us` is the coalescing window the batch
  /// actually formed under (-1 for stolen batches), forwarded into the
  /// adaptation trace.
  void ServeBatch(
      const std::shared_ptr<const core::ShardedNaiEngine::ShardState>& state,
      std::size_t engine_shard, std::vector<Request> batch,
      std::int64_t applied_wait_us);
  /// One steal attempt by `thief`: drains a coalesced batch from the most
  /// backlogged sibling queue and serves it (thief engine where the halo
  /// covers, owner engine otherwise). True when anything was stolen.
  bool TrySteal(std::size_t thief);

  core::ShardedNaiEngine* engine_;
  QosPolicyTable policies_;
  ServingOptions options_;

  /// Indexed by shard id; nullptr for shards that own no nodes (routing can
  /// never target them). Batchers are built in the constructor so a
  /// degenerate BatcherConfig throws to the caller, not on a pump thread.
  std::vector<std::unique_ptr<RequestQueue>> queues_;
  std::vector<std::unique_ptr<DynamicBatcher>> batchers_;
  /// Serializes calls into each shard's engine: with stealing on, the
  /// owner's pump and a thief's fallback path can otherwise race on the
  /// engine's sampler scratch. One lock per engine call, never nested.
  std::vector<std::unique_ptr<std::mutex>> engine_mu_;
  /// Per-owning-shard result caches (nullptr for non-owning shards or when
  /// ServingOptions::cache.enabled is false). Client threads probe them in
  /// the submit path; pump threads fill them at batch completion.
  std::vector<std::unique_ptr<ResultCache>> caches_;
  std::unique_ptr<AdmissionController> controller_;
  std::vector<std::thread> pumps_;

  std::mutex shutdown_mu_;
  bool shut_down_ = false;

  /// The ApplyDeltas ingest thread. At most one is alive: ApplyDeltas joins
  /// the previous one (under ingest_mu_) before spawning the next, which
  /// both bounds resources and serializes applies without a long-held lock;
  /// Shutdown joins whatever is left.
  std::mutex ingest_mu_;
  std::thread ingest_;

  std::unique_ptr<Counters> stats_;
};

}  // namespace nai::serve

#endif  // NAI_SERVE_SERVING_ENGINE_H_
