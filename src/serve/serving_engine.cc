#include "src/serve/serving_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/storage/store.h"

namespace nai::serve {

namespace {

double MsBetween(ServeClock::time_point from, ServeClock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

LatencySummary Summarize(std::vector<double> latencies) {
  LatencySummary out;
  // `count` defaults to the sample count; callers with an all-time counter
  // overwrite it (the ring forgets, the counter does not). `window` always
  // says how many samples back the percentiles.
  out.count = static_cast<std::int64_t>(latencies.size());
  out.window = static_cast<std::int64_t>(latencies.size());
  if (latencies.empty()) return out;
  std::sort(latencies.begin(), latencies.end());
  double sum = 0.0;
  for (const double v : latencies) sum += v;
  out.mean_ms = sum / static_cast<double>(latencies.size());
  // Nearest-rank percentile: the smallest value with at least q*n values
  // at or below it.
  auto rank = [&](double q) {
    const std::size_t r = static_cast<std::size_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(latencies.size()))));
    return latencies[r - 1];
  };
  out.p50_ms = rank(0.50);
  out.p95_ms = rank(0.95);
  out.p99_ms = rank(0.99);
  out.max_ms = latencies.back();
  return out;
}

}  // namespace

/// Shared counters, written by client threads (admission) and pump threads
/// (completion). One mutex is plenty: per-event work is O(1) and the
/// engine call dominates by orders of magnitude. Latency samples live in a
/// bounded per-class ring (the kLatencyWindow most recent), so memory is
/// O(1) no matter how long the deployment runs; exact totals are plain
/// counters.
struct ServingEngine::Counters {
  std::mutex mu;
  std::int64_t submitted = 0;
  std::int64_t rejected = 0;
  std::int64_t dropped = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t shed_adaptive = 0;
  std::int64_t stolen_batches = 0;
  std::int64_t stolen_requests = 0;
  std::int64_t steal_fallback_requests = 0;
  std::vector<std::int64_t> shed_adaptive_per_shard;
  std::vector<std::int64_t> stolen_from;  ///< batches taken out of shard s
  std::vector<std::int64_t> stolen_by;    ///< batches shard s's pump stole
  std::array<std::vector<double>, kNumQosClasses> latency_window;
  std::array<std::size_t, kNumQosClasses> latency_next{};  // ring cursor
  /// Hit/miss split of the same completions: a hit was replayed from the
  /// result cache at submit time, a miss went the queue/batch/engine path.
  std::array<std::vector<double>, kNumQosClasses> hit_window;
  std::array<std::size_t, kNumQosClasses> hit_next{};
  std::array<std::vector<double>, kNumQosClasses> miss_window;
  std::array<std::size_t, kNumQosClasses> miss_next{};
  std::array<std::int64_t, kNumQosClasses> completed{};
  std::array<std::int64_t, kNumQosClasses> completed_hits{};
  std::array<std::int64_t, kNumQosClasses> misses{};
  std::vector<std::int64_t> batch_size_hist;
  std::int64_t num_batches = 0;
  std::int64_t batched_requests = 0;
  std::int64_t snapshot_swaps = 0;
  std::int64_t stale_served = 0;
  core::InferenceStats engine_stats;
  std::atomic<std::int64_t> next_id{0};

  static void PushSample(std::vector<double>& window, std::size_t& next,
                         double latency_ms) {
    if (window.size() < ServingEngine::kLatencyWindow) {
      window.push_back(latency_ms);
    } else {
      window[next] = latency_ms;
      next = (next + 1) % window.size();
    }
  }

  void RecordLatency(std::size_t qos, double latency_ms, bool cache_hit) {
    ++completed[qos];
    PushSample(latency_window[qos], latency_next[qos], latency_ms);
    if (cache_hit) {
      ++completed_hits[qos];
      PushSample(hit_window[qos], hit_next[qos], latency_ms);
    } else {
      PushSample(miss_window[qos], miss_next[qos], latency_ms);
    }
  }
};

ServingEngine::ServingEngine(core::ShardedNaiEngine& engine,
                             QosPolicyTable policies, ServingOptions options)
    : engine_(&engine),
      policies_(std::move(policies)),
      options_(options),
      stats_(std::make_unique<Counters>()) {
  for (std::size_t c = 0; c < kNumQosClasses; ++c) {
    // The pumps call shard engines directly, bypassing the routed entry
    // points and their halo check — so every policy is validated here,
    // before any request can be admitted.
    engine_->ValidateConfig(policies_.policies[c].config);
  }
  // Pin the construction-time state once. A snapshot swap never changes the
  // shard *count* or moves existing owners, so the per-shard structures
  // sized here stay correct across every later SwapSnapshot.
  const std::shared_ptr<const core::ShardedNaiEngine::ShardState> state =
      engine_->PinState();
  const graph::ShardedGraph& sharded = state->sharded;
  stats_->batch_size_hist.assign(options_.batcher.max_batch, 0);
  stats_->shed_adaptive_per_shard.assign(sharded.num_shards(), 0);
  stats_->stolen_from.assign(sharded.num_shards(), 0);
  stats_->stolen_by.assign(sharded.num_shards(), 0);

  // The controller constructor validates every scheduler knob; queue and
  // batcher construction validates queue_capacity and the BatcherConfig.
  // All of it happens here, on the caller's thread — a degenerate option
  // must throw from this constructor, not abort a pump thread.
  controller_ = std::make_unique<AdmissionController>(
      sharded.num_shards(), options_.scheduler, options_.batcher.max_batch,
      options_.batcher.max_wait_us);
  const QueuePolicy queue_policy{options_.scheduler.priority,
                                 options_.scheduler.priority_aging_us};
  queues_.resize(sharded.num_shards());
  batchers_.resize(sharded.num_shards());
  engine_mu_.resize(sharded.num_shards());
  caches_.resize(sharded.num_shards());
  for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
    if (sharded.shards[s].num_owned() == 0) continue;
    queues_[s] =
        std::make_unique<RequestQueue>(options_.queue_capacity, queue_policy);
    batchers_[s] =
        std::make_unique<DynamicBatcher>(*queues_[s], options_.batcher);
    engine_mu_[s] = std::make_unique<std::mutex>();
    if (options_.cache.enabled) {
      // The ResultCache constructor rejects a zero capacity, so a
      // degenerate cache option throws here like every other knob.
      caches_[s] = std::make_unique<ResultCache>(options_.cache.capacity);
    }
  }
  for (std::size_t s = 0; s < queues_.size(); ++s) {
    if (queues_[s] == nullptr) continue;
    pumps_.emplace_back([this, s] { PumpShard(s); });
  }
}

ServingEngine::~ServingEngine() { Shutdown(); }

double ServingEngine::BudgetMs(QosClass qos, double deadline_ms) const {
  return deadline_ms > 0.0 ? deadline_ms
                           : policies_.For(qos).default_deadline_ms;
}

Request ServingEngine::MakeRequest(std::int32_t node, QosClass qos,
                                   double deadline_ms) {
  const double budget_ms = BudgetMs(qos, deadline_ms);
  Request request;
  request.id = stats_->next_id.fetch_add(1, std::memory_order_relaxed);
  request.node = node;
  request.qos = qos;
  request.admitted = ServeClock::now();
  request.deadline =
      request.admitted + std::chrono::duration_cast<ServeClock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 budget_ms));
  return request;
}

std::size_t ServingEngine::ShardFor(std::int32_t node) const {
  // Pin the current state: after an ApplyDeltas swap, newly inserted nodes
  // become routable here without any front-end reconfiguration (their owner
  // was assigned by SwapSnapshot; existing owners never move).
  const std::shared_ptr<const core::ShardedNaiEngine::ShardState> state =
      engine_->PinState();
  const std::vector<std::int32_t>& owner = state->sharded.owner;
  if (node < 0 || static_cast<std::size_t>(node) >= owner.size()) {
    throw std::out_of_range("ServingEngine: query node " +
                            std::to_string(node) + " outside [0, " +
                            std::to_string(owner.size()) + ")");
  }
  return static_cast<std::size_t>(owner[node]);
}

void ServingEngine::Complete(Request& request, Response response) {
  request.promise.set_value(response);
  if (request.callback) request.callback(response);
}

void ServingEngine::Reject(Request& request) {
  {
    std::lock_guard<std::mutex> lock(stats_->mu);
    ++stats_->rejected;
  }
  Response response;
  response.qos = request.qos;
  response.served = false;
  Complete(request, response);
}

std::optional<Response> ServingEngine::TryServeFromCache(std::size_t shard,
                                                         std::int32_t node,
                                                         QosClass qos,
                                                         double deadline_ms) {
  ResultCache* cache = caches_[shard].get();
  if (cache == nullptr) return std::nullopt;
  // The shutdown contract beats the cache: once the shard queue is closed
  // every submission is rejected, warm or not.
  if (queues_[shard]->closed()) return std::nullopt;
  const ServeClock::time_point admitted = ServeClock::now();
  const std::optional<CachedResult> cached =
      cache->Lookup(node, &policies_.For(qos).config);
  if (!cached.has_value()) return std::nullopt;
  const ServeClock::time_point done = ServeClock::now();

  Response response;
  response.prediction = cached->prediction;
  response.exit_depth = cached->exit_depth;
  response.qos = qos;
  response.served = true;
  response.queue_ms = 0.0;  // never queued — that is the point
  response.latency_ms = MsBetween(admitted, done);
  response.deadline_missed = response.latency_ms > BudgetMs(qos, deadline_ms);
  // A hit replays the epoch the entry was filled at. It can lag the engine
  // only in the swap-to-bump window of ApplyDeltas (the bump logically
  // empties the caches); such replays are the cache's share of
  // stale_served. Version is read before the stats lock (never nest the
  // engine's state mutex under it).
  response.epoch = cached->graph_epoch;
  const std::uint64_t current_version = engine_->version();
  {
    std::lock_guard<std::mutex> lock(stats_->mu);
    ++stats_->submitted;
    stats_->RecordLatency(static_cast<std::size_t>(qos), response.latency_ms,
                          /*cache_hit=*/true);
    if (response.deadline_missed) {
      ++stats_->deadline_misses;
      ++stats_->misses[static_cast<std::size_t>(qos)];
    }
    if (cached->graph_epoch < current_version) ++stats_->stale_served;
  }
  return response;
}

namespace {

std::future<Response> ReadyFuture(Response response) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  promise.set_value(std::move(response));
  return future;
}

}  // namespace

std::future<Response> ServingEngine::Submit(std::int32_t node, QosClass qos,
                                            double deadline_ms) {
  const std::size_t s = ShardFor(node);
  // A warm node never touches the queue, the batcher or the admission
  // controller: the hit completes inline on the submitting thread. Hits
  // are deliberately not RecordArrival'd — they carry no information about
  // the queueing process the controller's EWMAs model.
  if (std::optional<Response> hit =
          TryServeFromCache(s, node, qos, deadline_ms)) {
    return ReadyFuture(std::move(*hit));
  }
  Request request = MakeRequest(node, qos, deadline_ms);
  controller_->RecordArrival(s, request.admitted);
  std::future<Response> future = request.promise.get_future();
  // `submitted` is counted before the push so a concurrent Stats()
  // snapshot can never observe completed > submitted; a failed push
  // (queue closed) takes the count back and becomes a rejection. Push
  // only moves the request on success, so the caller-side object — and
  // its promise — is still ours to reject.
  {
    std::lock_guard<std::mutex> lock(stats_->mu);
    ++stats_->submitted;
  }
  if (!queues_[s]->Push(std::move(request))) {
    {
      std::lock_guard<std::mutex> lock(stats_->mu);
      --stats_->submitted;
    }
    Reject(request);
  }
  return future;
}

std::optional<std::future<Response>> ServingEngine::TrySubmit(
    std::int32_t node, QosClass qos, double deadline_ms) {
  const std::size_t s = ShardFor(node);
  // Hits bypass admission entirely — in particular they cannot be shed:
  // replaying a cached result is cheaper than the shed bookkeeping.
  if (std::optional<Response> hit =
          TryServeFromCache(s, node, qos, deadline_ms)) {
    return ReadyFuture(std::move(*hit));
  }
  Request request = MakeRequest(node, qos, deadline_ms);
  controller_->RecordArrival(s, request.admitted);
  // Adaptive shedding: if the queue ahead of this request already implies
  // a wait past its deadline budget, admitting it only manufactures a
  // deadline miss and delays everyone behind it. Admit owns the decision
  // entirely (it is a no-op yes when the controller is not adaptive).
  if (!controller_->Admit(s, queues_[s]->size(),
                          BudgetMs(qos, deadline_ms))) {
    std::lock_guard<std::mutex> lock(stats_->mu);
    ++stats_->rejected;
    ++stats_->shed_adaptive;
    ++stats_->shed_adaptive_per_shard[s];
    return std::nullopt;
  }
  std::future<Response> future = request.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(stats_->mu);
    ++stats_->submitted;
  }
  if (!queues_[s]->TryPush(std::move(request))) {
    std::lock_guard<std::mutex> lock(stats_->mu);
    --stats_->submitted;
    ++stats_->rejected;
    return std::nullopt;
  }
  return future;
}

bool ServingEngine::SubmitWithCallback(
    std::int32_t node, QosClass qos,
    std::function<void(const Response&)> callback, double deadline_ms) {
  const std::size_t s = ShardFor(node);
  if (std::optional<Response> hit =
          TryServeFromCache(s, node, qos, deadline_ms)) {
    // On a hit the callback runs inline on the submitting thread (there is
    // no pump involved), mirroring the inline-ready future of Submit.
    if (callback) callback(*hit);
    return true;
  }
  Request request = MakeRequest(node, qos, deadline_ms);
  controller_->RecordArrival(s, request.admitted);
  request.callback = std::move(callback);
  {
    std::lock_guard<std::mutex> lock(stats_->mu);
    ++stats_->submitted;
  }
  if (queues_[s]->Push(std::move(request))) return true;
  {
    std::lock_guard<std::mutex> lock(stats_->mu);
    --stats_->submitted;
  }
  Reject(request);
  return false;
}

void ServingEngine::ServeBatch(
    const std::shared_ptr<const core::ShardedNaiEngine::ShardState>& state,
    std::size_t engine_shard, std::vector<Request> batch,
    std::int64_t applied_wait_us) {
  // Everything version-dependent — the local-id mapping, the shard engine,
  // the epoch stamped into responses — comes from the one state the caller
  // pinned, so a concurrent SwapSnapshot cannot split this batch across
  // graph versions.
  const std::vector<std::int32_t>& global_to_local =
      state->sharded.shards[engine_shard].global_to_local;

  const ServeClock::time_point formed = ServeClock::now();
  std::vector<Request> serve;
  serve.reserve(batch.size());
  for (Request& request : batch) {
    if (options_.drop_expired && formed >= request.deadline) {
      Response response;
      response.qos = request.qos;
      response.served = false;
      response.deadline_missed = true;
      response.queue_ms = MsBetween(request.admitted, formed);
      response.latency_ms = response.queue_ms;
      {
        std::lock_guard<std::mutex> lock(stats_->mu);
        ++stats_->dropped;
        ++stats_->deadline_misses;
        ++stats_->misses[static_cast<std::size_t>(request.qos)];
      }
      Complete(request, response);
    } else {
      serve.push_back(std::move(request));
    }
  }
  if (serve.empty()) return;

  // One engine call for the whole (possibly QoS-mixed) batch: queries
  // sharing a policy config group together inside InferMixed, and the
  // shard engine's ExecContext pins the work to this shard's pool. The
  // per-shard mutex serializes the owner pump against thieves routing
  // their fallback requests through this engine (exactly one lock held,
  // so steal paths can never deadlock).
  std::vector<core::ConfiguredQuery> queries;
  queries.reserve(serve.size());
  for (const Request& request : serve) {
    queries.push_back({global_to_local[request.node],
                       &policies_.For(request.qos).config});
  }
  // Every batch is single-owner (it was drained from one shard's queue —
  // own pump, stolen-local or stolen-fallback), so a stolen batch's fills
  // land in the *owner* shard's cache, where future lookups for these
  // nodes route (owners never move across swaps, so the pinned state's
  // owner map is authoritative). The fill epoch is captured before the
  // engine call: if a BumpEpoch lands while the batch computes, Insert
  // drops the fills.
  ResultCache* cache =
      caches_[static_cast<std::size_t>(
                  state->sharded.owner[serve.front().node])]
          .get();
  const std::uint64_t fill_epoch = cache != nullptr ? cache->epoch() : 0;
  core::InferenceResult result;
  {
    std::lock_guard<std::mutex> lock(*engine_mu_[engine_shard]);
    result = state->engines[engine_shard]->InferMixed(queries);
  }
  const ServeClock::time_point done = ServeClock::now();
  if (cache != nullptr) {
    for (std::size_t i = 0; i < serve.size(); ++i) {
      cache->Insert(serve[i].node, &policies_.For(serve[i].qos).config,
                    {result.predictions[i], result.exit_depths[i],
                     state->version},
                    fill_epoch);
    }
  }
  controller_->RecordBatch(engine_shard, serve.size(),
                           result.stats.wall_time_ms, applied_wait_us, done);

  // Staleness accounting: if a swap landed while this batch was in flight,
  // every answer in it was computed on the pre-swap graph. Version is read
  // before the stats lock (never nest the engine's state mutex under it).
  const std::uint64_t current_version = engine_->version();
  {
    std::lock_guard<std::mutex> lock(stats_->mu);
    ++stats_->num_batches;
    stats_->batched_requests += static_cast<std::int64_t>(serve.size());
    ++stats_->batch_size_hist[serve.size() - 1];
    stats_->engine_stats.Accumulate(result.stats);
    stats_->engine_stats.num_nodes += result.stats.num_nodes;
    stats_->engine_stats.wall_time_ms += result.stats.wall_time_ms;
    if (state->version < current_version) {
      stats_->stale_served += static_cast<std::int64_t>(serve.size());
    }
  }

  for (std::size_t i = 0; i < serve.size(); ++i) {
    Request& request = serve[i];
    Response response;
    response.prediction = result.predictions[i];
    response.exit_depth = result.exit_depths[i];
    response.qos = request.qos;
    response.served = true;
    response.epoch = state->version;
    response.deadline_missed = done > request.deadline;
    response.queue_ms = MsBetween(request.admitted, formed);
    response.latency_ms = MsBetween(request.admitted, done);
    {
      std::lock_guard<std::mutex> lock(stats_->mu);
      const std::size_t c = static_cast<std::size_t>(request.qos);
      stats_->RecordLatency(c, response.latency_ms, /*cache_hit=*/false);
      if (response.deadline_missed) {
        ++stats_->deadline_misses;
        ++stats_->misses[c];
      }
    }
    Complete(request, response);
  }
}

bool ServingEngine::TrySteal(std::size_t thief) {
  // Victim: the most backlogged sibling queue, if any qualifies.
  std::size_t victim = queues_.size();
  std::size_t best = options_.scheduler.steal_min_backlog;
  for (std::size_t s = 0; s < queues_.size(); ++s) {
    if (s == thief || queues_[s] == nullptr) continue;
    const std::size_t depth = queues_[s]->size();
    if (depth >= best && depth > 0) {
      best = depth;
      victim = s;
    }
  }
  if (victim == queues_.size()) return false;

  std::vector<Request> batch =
      queues_[victim]->TryPopBatch(options_.batcher.max_batch);
  if (batch.empty()) return false;

  // One pinned state for the whole steal: the halo-eligibility checks and
  // the engine calls they gate must agree on the graph version (a swap can
  // change the halo depths the checks read).
  const std::shared_ptr<const core::ShardedNaiEngine::ShardState> state =
      engine_->PinState();
  // Split the stolen batch: requests whose supporting sets the thief's
  // halo covers run on the thief's engine (the parallelism win); the rest
  // keep their bits by routing through the owner engine, serialized with
  // the owner pump via the per-shard engine mutex.
  std::vector<Request> local;
  std::vector<Request> fallback;
  local.reserve(batch.size());
  for (Request& request : batch) {
    const core::InferenceConfig& config = policies_.For(request.qos).config;
    if (engine_->CanServeFromShard(*state, thief, request.node, config)) {
      local.push_back(std::move(request));
    } else {
      fallback.push_back(std::move(request));
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_->mu);
    ++stats_->stolen_batches;
    stats_->stolen_requests +=
        static_cast<std::int64_t>(local.size() + fallback.size());
    stats_->steal_fallback_requests +=
        static_cast<std::int64_t>(fallback.size());
    ++stats_->stolen_by[thief];
    ++stats_->stolen_from[victim];
  }
  // Stolen batches are drained directly (TryPopBatch), never coalesced —
  // no window applied, so the trace records -1.
  if (!local.empty()) ServeBatch(state, thief, std::move(local), -1);
  if (!fallback.empty()) ServeBatch(state, victim, std::move(fallback), -1);
  return true;
}

void ServingEngine::PumpShard(std::size_t shard) {
  DynamicBatcher& batcher = *batchers_[shard];
  const bool stealing = options_.scheduler.stealing;
  const bool adaptive = options_.scheduler.adaptive;
  const std::int64_t poll_us = options_.scheduler.steal_poll_us;
  // Idle pumps back off exponentially (up to 16x the base poll) so a quiet
  // deployment is not a spin loop; any work — own or stolen — resets it.
  std::int64_t idle_backoff = 1;

  while (true) {
    if (adaptive) batcher.set_max_wait_us(controller_->WaitUs(shard));
    std::vector<Request> batch =
        stealing ? batcher.NextBatch(ServeClock::now() +
                                     std::chrono::microseconds(
                                         poll_us * idle_backoff))
                 : batcher.NextBatch();
    if (!batch.empty()) {
      idle_backoff = 1;
      // Pin one engine state per batch — this is the swap point: an
      // ApplyDeltas that lands mid-batch takes effect at the next pin, so
      // each shard applies the snapshot atomically between batches.
      // The batcher remembers the window this batch actually opened with;
      // only this pump drives the batcher, so the read cannot race.
      ServeBatch(engine_->PinState(), shard, std::move(batch),
                 batcher.last_window_us());
      continue;
    }
    if (queues_[shard]->drained()) return;
    if (stealing) {
      if (TrySteal(shard)) {
        idle_backoff = 1;
      } else {
        idle_backoff = std::min<std::int64_t>(idle_backoff * 2, 16);
      }
    }
  }
}

void ServingEngine::BumpEpoch() {
  for (const std::unique_ptr<ResultCache>& cache : caches_) {
    if (cache != nullptr) cache->BumpEpoch();
  }
}

std::future<DeltaApplyReport> ServingEngine::ApplyDeltas(
    graph::GraphDelta delta) {
  if (engine_->PinState()->snapshot == nullptr) {
    throw std::logic_error(
        "ServingEngine::ApplyDeltas: the wrapped engine is not "
        "snapshot-backed (built from borrowed graph views); construct it "
        "from a GraphSnapshot to serve an evolving graph");
  }
  auto promise = std::make_shared<std::promise<DeltaApplyReport>>();
  std::future<DeltaApplyReport> future = promise->get_future();
  std::lock_guard<std::mutex> lock(ingest_mu_);
  // Joining the previous ingest thread here (not inside the new one) both
  // bounds us to one live thread and serializes applies: the builder below
  // always starts from the snapshot the previous apply published.
  if (ingest_.joinable()) ingest_.join();
  ingest_ = std::thread([this, promise, delta = std::move(delta)]() mutable {
    try {
      const ServeClock::time_point start = ServeClock::now();
      // Stale horizon = classifier depth: any node whose k-hop supporting
      // set touches the delta may change its answer, which is what the
      // builder's stale_nodes counter reports.
      graph::SnapshotBuilder builder(engine_->PinState()->snapshot,
                                     engine_->depth());
      const std::shared_ptr<const graph::GraphSnapshot> next =
          builder.Apply(delta);
      engine_->SwapSnapshot(next);
      // The bump lands *after* the swap. In between, cache hits may replay
      // pre-swap results (counted in stale_served); after it, no pre-swap
      // result — resident entry or in-flight fill — survives, so post-bump
      // hits are bit-exact against the merged graph.
      BumpEpoch();
      DeltaApplyReport report;
      report.version = next->version;
      report.build = builder.last_stats();
      report.apply_ms = MsBetween(start, ServeClock::now());
      {
        std::lock_guard<std::mutex> stats_lock(stats_->mu);
        ++stats_->snapshot_swaps;
      }
      promise->set_value(report);
    } catch (...) {
      // An invalid delta throws out of Apply before any state changed; the
      // caller sees it through the future, serving continues on the old
      // snapshot.
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

void ServingEngine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  {
    // Let an in-flight ApplyDeltas finish its swap before the drain: every
    // admitted request still completes, just possibly on the new version.
    std::lock_guard<std::mutex> lock(ingest_mu_);
    if (ingest_.joinable()) ingest_.join();
  }
  for (const std::unique_ptr<RequestQueue>& queue : queues_) {
    if (queue != nullptr) queue->Close();
  }
  for (std::thread& pump : pumps_) pump.join();
  pumps_.clear();
}

ServingStatsSnapshot ServingEngine::Stats() const {
  ServingStatsSnapshot snap;
  // Read before the stats lock — version() takes the engine's state mutex
  // and must never nest under stats_->mu.
  snap.epoch = engine_->version();
  {
    // Storage residency of the snapshot being served (same lock discipline:
    // PinState takes the engine's state mutex). The graph and feature
    // stores are usually one object reporting disjoint byte ranges, so the
    // two residency calls sum without double counting.
    const auto state = engine_->PinState();
    if (state->snapshot != nullptr) {
      const graph::GraphSnapshot& served = *state->snapshot;
      snap.store_backend = storage::BackendName(served.backend());
      storage::ResidencyInfo residency =
          served.graph_store->AdjacencyResidency();
      residency += served.feature_store->FeatureResidency();
      snap.store_mapped_bytes = residency.mapped_bytes;
      snap.store_resident_bytes = residency.resident_bytes;
      snap.store_residency_exact = residency.exact;
    }
  }
  std::array<std::vector<double>, kNumQosClasses> windows;
  std::array<std::vector<double>, kNumQosClasses> hit_windows;
  std::array<std::vector<double>, kNumQosClasses> miss_windows;
  std::array<std::int64_t, kNumQosClasses> completed{};
  std::array<std::int64_t, kNumQosClasses> completed_hits{};
  {
    std::lock_guard<std::mutex> lock(stats_->mu);
    snap.submitted = stats_->submitted;
    snap.rejected = stats_->rejected;
    snap.dropped = stats_->dropped;
    snap.deadline_misses = stats_->deadline_misses;
    snap.per_class_misses = stats_->misses;
    snap.batch_size_hist = stats_->batch_size_hist;
    snap.num_batches = stats_->num_batches;
    snap.mean_batch_size =
        stats_->num_batches == 0
            ? 0.0
            : static_cast<double>(stats_->batched_requests) /
                  static_cast<double>(stats_->num_batches);
    snap.engine_stats = stats_->engine_stats;
    snap.snapshot_swaps = stats_->snapshot_swaps;
    snap.stale_served = stats_->stale_served;
    snap.shed_adaptive = stats_->shed_adaptive;
    snap.stolen_batches = stats_->stolen_batches;
    snap.stolen_requests = stats_->stolen_requests;
    snap.steal_fallback_requests = stats_->steal_fallback_requests;
    snap.scheduler.resize(queues_.size());
    for (std::size_t s = 0; s < queues_.size(); ++s) {
      if (queues_[s] == nullptr) {
        snap.scheduler[s].shard = s;
        continue;
      }
      snap.scheduler[s] = controller_->Snapshot(s);
      snap.scheduler[s].adaptive_sheds = stats_->shed_adaptive_per_shard[s];
      snap.scheduler[s].batches_stolen_from = stats_->stolen_from[s];
      snap.scheduler[s].batches_stolen_by = stats_->stolen_by[s];
    }
    windows = stats_->latency_window;
    hit_windows = stats_->hit_window;
    miss_windows = stats_->miss_window;
    completed = stats_->completed;
    completed_hits = stats_->completed_hits;
  }
  snap.adaptation_trace = controller_->Trace();
  // Percentiles come from the bounded recent window, whose size each
  // summary reports as `window`; the `count` fields are then overwritten
  // with the exact all-time totals from the plain counters, so they keep
  // matching `completed` even after a class outgrows kLatencyWindow and
  // the ring starts forgetting.
  std::vector<double> all;
  for (std::size_t c = 0; c < kNumQosClasses; ++c) {
    snap.per_class[c] = Summarize(windows[c]);
    snap.per_class[c].count = completed[c];
    snap.per_class_hit[c] = Summarize(hit_windows[c]);
    snap.per_class_hit[c].count = completed_hits[c];
    snap.per_class_miss[c] = Summarize(miss_windows[c]);
    snap.per_class_miss[c].count = completed[c] - completed_hits[c];
    snap.completed += completed[c];
    all.insert(all.end(), windows[c].begin(), windows[c].end());
  }
  snap.latency = Summarize(std::move(all));
  snap.latency.count = snap.completed;
  for (const std::unique_ptr<RequestQueue>& queue : queues_) {
    if (queue != nullptr) snap.queue_depth += queue->size();
  }
  snap.caches.resize(caches_.size());
  for (std::size_t s = 0; s < caches_.size(); ++s) {
    if (caches_[s] == nullptr) continue;
    snap.caches[s] = caches_[s]->Stats();
    snap.cache_hits += snap.caches[s].hits;
    snap.cache_misses += snap.caches[s].misses;
  }
  const std::int64_t lookups = snap.cache_hits + snap.cache_misses;
  snap.cache_hit_ratio = lookups == 0
                             ? 0.0
                             : static_cast<double>(snap.cache_hits) /
                                   static_cast<double>(lookups);
  return snap;
}

}  // namespace nai::serve
