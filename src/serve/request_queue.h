#ifndef NAI_SERVE_REQUEST_QUEUE_H_
#define NAI_SERVE_REQUEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>

#include "src/serve/qos.h"

namespace nai::serve {

using ServeClock = std::chrono::steady_clock;

/// What a request resolves to. Delivered through the request's future (and
/// its callback, when one was attached).
struct Response {
  std::int32_t prediction = -1;  ///< -1 when the request was never served
  std::int32_t exit_depth = -1;  ///< personalized depth L(v) actually used
  QosClass qos = QosClass::kSpeedFirst;
  /// False when the request was shed instead of served: rejected at
  /// admission (queue full / engine shut down) or expired in the queue
  /// under ServingOptions::drop_expired.
  bool served = false;
  /// True when completion happened after the request's deadline (always
  /// true for expired-dropped requests).
  bool deadline_missed = false;
  double queue_ms = 0.0;    ///< admission -> batch formation
  double latency_ms = 0.0;  ///< admission -> completion
};

/// One in-flight streaming query. Owned by the queue between admission and
/// batch formation, then by the serving pump until completion. Move-only
/// (it carries the response promise).
struct Request {
  std::int64_t id = 0;
  std::int32_t node = 0;  ///< global node id
  QosClass qos = QosClass::kSpeedFirst;
  ServeClock::time_point admitted{};
  ServeClock::time_point deadline{};
  std::promise<Response> promise;
  /// Optional completion hook, invoked on the serving pump thread right
  /// after the promise is fulfilled. Must not block.
  std::function<void(const Response&)> callback;
};

/// A bounded MPMC queue of requests — the admission point of the serving
/// front-end. Producers are client threads (Submit/TrySubmit), consumers
/// are the shard pump threads (via DynamicBatcher).
///
/// Admission control: TryPush never blocks and returns false when the queue
/// is at capacity (backpressure — the caller sheds or retries), Push blocks
/// until space frees up. Close() makes every subsequent push fail while
/// pops keep draining what was admitted, which is what makes shutdown
/// graceful: nothing accepted is ever dropped on the floor.
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Non-blocking admission; false when full or closed.
  bool TryPush(Request&& request);

  /// Blocking admission; false when the queue is (or gets) closed.
  bool Push(Request&& request);

  /// Pops the oldest request, blocking until one is available or the queue
  /// is closed *and* drained (nullopt).
  std::optional<Request> Pop();

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<Request> TryPop();

  /// Blocks until an item is available or `deadline` passes. True when an
  /// item is (probably) available; false on timeout or closed-and-drained.
  bool WaitForItem(ServeClock::time_point deadline);

  /// Closes the queue: wakes every blocked producer and consumer; pushes
  /// fail from now on, pops drain the remaining items. Idempotent.
  void Close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> items_;
  bool closed_ = false;
};

}  // namespace nai::serve

#endif  // NAI_SERVE_REQUEST_QUEUE_H_
