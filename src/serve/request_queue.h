#ifndef NAI_SERVE_REQUEST_QUEUE_H_
#define NAI_SERVE_REQUEST_QUEUE_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <vector>

#include "src/serve/qos.h"

namespace nai::serve {

using ServeClock = std::chrono::steady_clock;

/// What a request resolves to. Delivered through the request's future (and
/// its callback, when one was attached).
struct Response {
  std::int32_t prediction = -1;  ///< -1 when the request was never served
  std::int32_t exit_depth = -1;  ///< personalized depth L(v) actually used
  QosClass qos = QosClass::kSpeedFirst;
  /// False when the request was shed instead of served: rejected at
  /// admission (queue full / admission controller / engine shut down) or
  /// expired in the queue under ServingOptions::drop_expired.
  bool served = false;
  /// True when completion happened after the request's deadline (always
  /// true for expired-dropped requests).
  bool deadline_missed = false;
  /// The graph epoch (snapshot version) the answer was computed under: the
  /// engine state the serving batch pinned, or — for a cache hit — the
  /// epoch the replayed entry was filled at. Compare against
  /// ServingStatsSnapshot::epoch to measure staleness under churn; 0 for
  /// engines that never swap.
  std::uint64_t epoch = 0;
  double queue_ms = 0.0;    ///< admission -> batch formation
  double latency_ms = 0.0;  ///< admission -> completion
};

/// One in-flight streaming query. Owned by the queue between admission and
/// batch formation, then by the serving pump until completion. Move-only
/// (it carries the response promise).
struct Request {
  std::int64_t id = 0;
  std::int32_t node = 0;  ///< global node id
  QosClass qos = QosClass::kSpeedFirst;
  ServeClock::time_point admitted{};
  ServeClock::time_point deadline{};
  std::promise<Response> promise;
  /// Optional completion hook, invoked on the serving pump thread right
  /// after the promise is fulfilled. Must not block.
  std::function<void(const Response&)> callback;
};

/// The pop discipline of one shard queue.
///
/// With `priority` off, pops follow global arrival order (FIFO). With it
/// on, speed-first requests bypass queued accuracy-first work — but only
/// while the oldest accuracy-first request has been waiting less than
/// `aging_us` since its admission. Once that bound is exceeded the oldest
/// request wins regardless of class, so the bypassed class's extra
/// queueing delay is capped at aging_us plus one batch: it can be
/// overtaken, never starved. `aging_us = 0` therefore degenerates to FIFO.
struct QueuePolicy {
  bool priority = false;
  std::int64_t aging_us = 5000;
};

/// A bounded MPMC queue of requests — the admission point of the serving
/// front-end. Producers are client threads (Submit/TrySubmit), consumers
/// are the shard pump threads (via DynamicBatcher) and, when work stealing
/// is on, sibling pump threads draining a backlog via TryPopBatch.
///
/// Admission control: TryPush never blocks and returns false when the queue
/// is at capacity (backpressure — the caller sheds or retries), Push blocks
/// until space frees up. Close() makes every subsequent push fail while
/// pops keep draining what was admitted, which is what makes shutdown
/// graceful: nothing accepted is ever dropped on the floor.
///
/// Ordering: within a QoS class pops are always FIFO; across classes the
/// QueuePolicy decides (see above).
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity, QueuePolicy policy = {});

  /// Non-blocking admission; false when full or closed.
  bool TryPush(Request&& request);

  /// Blocking admission; false when the queue is (or gets) closed.
  bool Push(Request&& request);

  /// Pops the next request under the queue's policy, blocking until one is
  /// available or the queue is closed *and* drained (nullopt).
  std::optional<Request> Pop();

  /// Like Pop, but gives up at `deadline`: nullopt on timeout as well as
  /// on closed-and-drained (disambiguate via drained()).
  std::optional<Request> PopUntil(ServeClock::time_point deadline);

  /// Non-blocking pop; nullopt when currently empty.
  std::optional<Request> TryPop();

  /// Non-blocking bulk pop of up to `max` requests in policy order — the
  /// work-stealing entry point: a sibling pump takes a whole coalesced
  /// batch in one lock acquisition.
  std::vector<Request> TryPopBatch(std::size_t max);

  /// Blocks until an item is available or `deadline` passes. True when an
  /// item is (probably) available; false on timeout or closed-and-drained.
  bool WaitForItem(ServeClock::time_point deadline);

  /// Closes the queue: wakes every blocked producer and consumer; pushes
  /// fail from now on, pops drain the remaining items. Idempotent.
  void Close();

  bool closed() const;
  /// Closed with nothing left to pop — the consumer's exit signal.
  bool drained() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  const QueuePolicy& policy() const { return policy_; }

 private:
  /// A queued request plus its global arrival sequence (assigned under the
  /// queue lock, so FIFO comparisons across the per-class deques are
  /// exact even when producers race).
  struct Slot {
    Request request;
    std::uint64_t seq = 0;
  };

  std::size_t TotalLocked() const;
  /// Which class deque the next pop should take from under the policy
  /// (-1 when empty). Caller holds mu_.
  int PickClassLocked(ServeClock::time_point now) const;
  Request PopPickedLocked(int cls);

  const std::size_t capacity_;
  const QueuePolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  /// One FIFO deque per QoS class, in class order (kSpeedFirst first).
  std::array<std::deque<Slot>, kNumQosClasses> items_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace nai::serve

#endif  // NAI_SERVE_REQUEST_QUEUE_H_
