#ifndef NAI_SERVE_QOS_H_
#define NAI_SERVE_QOS_H_

#include <array>
#include <cstddef>

#include "src/core/inference.h"

namespace nai::serve {

/// The traffic classes one serving graph handles concurrently. A request's
/// class resolves — through the deployment's QosPolicyTable — to the
/// InferenceConfig it is served with, so speed-first traffic takes
/// aggressive NAP thresholds and a shallow T_max while accuracy-first
/// traffic runs the full-depth configuration, on the same engine.
enum class QosClass {
  kSpeedFirst = 0,
  kAccuracyFirst = 1,
};

inline constexpr std::size_t kNumQosClasses = 2;

const char* QosClassName(QosClass qos);

/// How one QoS class is served: the inference configuration every request
/// of the class resolves to, and the latency budget a request gets when it
/// does not bring its own.
struct QosPolicy {
  core::InferenceConfig config;
  double default_deadline_ms = 50.0;
};

/// The per-deployment class -> policy map. Requests only name a QosClass;
/// the table is the single place the serving engine resolves it, so all
/// requests of a class share one InferenceConfig object and co-batch in the
/// engine's per-query-config entry point (core::ConfiguredQuery groups by
/// config identity).
struct QosPolicyTable {
  std::array<QosPolicy, kNumQosClasses> policies;

  const QosPolicy& For(QosClass qos) const {
    return policies[static_cast<std::size_t>(qos)];
  }
  QosPolicy& For(QosClass qos) {
    return policies[static_cast<std::size_t>(qos)];
  }
};

/// A structure-only default table for a depth-k classifier bank: speed-first
/// is NAPd with a permissive relative threshold and T_max = min(2, k) under
/// a tight deadline; accuracy-first is full-depth NAPd with a strict
/// threshold and a loose deadline. Deployments with a validation set should
/// prefer thresholds calibrated from its distance distribution
/// (eval::MakeQosPolicyTable).
QosPolicyTable DefaultQosPolicyTable(int k);

}  // namespace nai::serve

#endif  // NAI_SERVE_QOS_H_
