#ifndef NAI_SERVE_QOS_H_
#define NAI_SERVE_QOS_H_

#include <array>
#include <cstddef>

#include "src/core/inference.h"

namespace nai::serve {

/// The traffic classes one serving graph handles concurrently. A request's
/// class resolves — through the deployment's QosPolicyTable — to the
/// InferenceConfig it is served with, so speed-first traffic takes
/// aggressive NAP thresholds and a shallow T_max, accuracy-first traffic
/// runs the full-depth configuration, and throughput-first traffic runs
/// the INT8 classifier (InferenceConfig::int8_classifier) for maximum
/// batch rate — all on the same engine. Enum order is the request queue's
/// priority order (see serve::RequestQueue): speed-first preempts both
/// other classes, throughput-first drains last (its requests optimize for
/// batch volume, not latency; the queue's aging bound still prevents
/// starvation).
enum class QosClass {
  kSpeedFirst = 0,
  kAccuracyFirst = 1,
  kThroughputFirst = 2,
};

inline constexpr std::size_t kNumQosClasses = 3;

const char* QosClassName(QosClass qos);

/// How one QoS class is served: the inference configuration every request
/// of the class resolves to, the latency budget a request gets when it
/// does not bring its own, and the class's accuracy contract.
struct QosPolicy {
  core::InferenceConfig config;
  double default_deadline_ms = 50.0;
  /// The fraction of this class's predictions allowed to differ from the
  /// same config served with the float classifier (int8_classifier
  /// cleared) — the per-class budget the serving exactness gate enforces.
  /// 0 for float classes (their float twin is themselves, so any nonzero
  /// disagreement is a dispatch bug); a small calibrated fraction for the
  /// INT8 throughput tier, where quantization legitimately moves a few
  /// predictions near decision boundaries.
  double accuracy_delta_budget = 0.0;
};

/// The per-deployment class -> policy map. Requests only name a QosClass;
/// the table is the single place the serving engine resolves it, so all
/// requests of a class share one InferenceConfig object and co-batch in the
/// engine's per-query-config entry point (core::ConfiguredQuery groups by
/// config identity).
struct QosPolicyTable {
  std::array<QosPolicy, kNumQosClasses> policies;

  const QosPolicy& For(QosClass qos) const {
    return policies[static_cast<std::size_t>(qos)];
  }
  QosPolicy& For(QosClass qos) {
    return policies[static_cast<std::size_t>(qos)];
  }
};

/// A structure-only default table for a depth-k classifier bank: speed-first
/// is NAPd with a permissive relative threshold and T_max = min(2, k) under
/// a tight deadline; accuracy-first is full-depth NAPd with a strict
/// threshold and a loose deadline; throughput-first is the speed-first
/// shape with the INT8 classifier, a 5% accuracy-delta budget and the
/// loosest deadline (serving it requires an engine with an attached
/// core::QuantizedClassifierStack). Deployments with a validation set
/// should prefer thresholds calibrated from its distance distribution
/// (eval::MakeQosPolicyTable).
QosPolicyTable DefaultQosPolicyTable(int k);

}  // namespace nai::serve

#endif  // NAI_SERVE_QOS_H_
