#ifndef NAI_SERVE_BATCHER_H_
#define NAI_SERVE_BATCHER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/serve/request_queue.h"

namespace nai::serve {

/// Coalescing knobs of one shard's batcher.
struct BatcherConfig {
  /// Largest batch one engine call serves. Bigger batches amortize the
  /// supporting-set BFS across co-located queries; smaller ones bound the
  /// head-of-line latency a request can add to its neighbors.
  std::size_t max_batch = 64;
  /// How long to hold an incomplete batch open for stragglers, measured
  /// from the moment its *first* request is popped. 0 = serve whatever is
  /// immediately available (latency-optimal, throughput-pessimal). This is
  /// the *initial* window: the admission controller may retune it at run
  /// time through set_max_wait_us.
  std::int64_t max_wait_us = 200;
};

/// Coalesces queued requests into engine batches: blocks for the first
/// request, then keeps gathering until the batch is full or the window
/// since that first pop expires. One batcher per shard queue, driven by
/// that shard's pump thread.
///
/// The batcher drains the queue in the queue's policy order (FIFO, or
/// priority with aging) and is otherwise QoS-agnostic — a batch can mix
/// classes, and the engine's per-query-config entry point
/// (core::ConfiguredQuery) splits it by resolved config downstream.
class DynamicBatcher {
 public:
  DynamicBatcher(RequestQueue& queue, BatcherConfig config);

  /// Returns the next batch (1..max_batch requests), or an empty vector
  /// when the queue is closed and fully drained — the pump's exit signal.
  std::vector<Request> NextBatch();

  /// Like NextBatch, but gives up waiting for the *first* request at
  /// `first_deadline` (empty batch — check RequestQueue::drained() to tell
  /// a timeout from shutdown). The work-stealing pump uses this so an idle
  /// shard wakes up to scan sibling queues instead of blocking forever on
  /// its own.
  std::vector<Request> NextBatch(ServeClock::time_point first_deadline);

  /// The coalescing window currently in force. Initially
  /// config.max_wait_us; the admission controller retunes it (thread-safe,
  /// takes effect at the next batch).
  std::int64_t max_wait_us() const {
    return window_us_.load(std::memory_order_relaxed);
  }
  void set_max_wait_us(std::int64_t wait_us) {
    window_us_.store(wait_us < 0 ? 0 : wait_us, std::memory_order_relaxed);
  }

  /// The window the most recent non-empty batch *actually* coalesced under
  /// (-1 before any batch). The window is read once, when the batch's
  /// first request is popped, so a set_max_wait_us landing mid-window is
  /// invisible to the batch already open — this getter is what reports the
  /// truth to the adaptation trace (SchedulerTraceEvent::applied_wait_us)
  /// instead of the retuned value that never applied.
  std::int64_t last_window_us() const {
    return last_window_us_.load(std::memory_order_relaxed);
  }

  const BatcherConfig& config() const { return config_; }

 private:
  std::vector<Request> Gather(std::optional<Request> first);

  RequestQueue& queue_;
  BatcherConfig config_;
  std::atomic<std::int64_t> window_us_;
  std::atomic<std::int64_t> last_window_us_{-1};
};

}  // namespace nai::serve

#endif  // NAI_SERVE_BATCHER_H_
