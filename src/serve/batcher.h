#ifndef NAI_SERVE_BATCHER_H_
#define NAI_SERVE_BATCHER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/serve/request_queue.h"

namespace nai::serve {

/// Coalescing knobs of one shard's batcher.
struct BatcherConfig {
  /// Largest batch one engine call serves. Bigger batches amortize the
  /// supporting-set BFS across co-located queries; smaller ones bound the
  /// head-of-line latency a request can add to its neighbors.
  std::size_t max_batch = 64;
  /// How long to hold an incomplete batch open for stragglers, measured
  /// from the moment its *first* request is popped. 0 = serve whatever is
  /// immediately available (latency-optimal, throughput-pessimal).
  std::int64_t max_wait_us = 200;
};

/// Coalesces queued requests into engine batches: blocks for the first
/// request, then keeps gathering until the batch is full or the window
/// since that first pop expires. One batcher per shard queue, driven by
/// that shard's pump thread.
///
/// The batcher is deliberately QoS-agnostic — a batch can mix classes, and
/// the engine's per-query-config entry point (core::ConfiguredQuery)
/// splits it by resolved config downstream. Keeping the pop order FIFO
/// here means no class can starve the other at the queue.
class DynamicBatcher {
 public:
  DynamicBatcher(RequestQueue& queue, BatcherConfig config);

  /// Returns the next batch (1..max_batch requests), or an empty vector
  /// when the queue is closed and fully drained — the pump's exit signal.
  std::vector<Request> NextBatch();

  const BatcherConfig& config() const { return config_; }

 private:
  RequestQueue& queue_;
  BatcherConfig config_;
};

}  // namespace nai::serve

#endif  // NAI_SERVE_BATCHER_H_
