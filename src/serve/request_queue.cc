#include "src/serve/request_queue.h"

#include <stdexcept>
#include <utility>

namespace nai::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("RequestQueue: capacity must be positive");
  }
}

bool RequestQueue::TryPush(Request&& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(request));
  }
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::Push(Request&& request) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(request));
  }
  not_empty_.notify_one();
  return true;
}

std::optional<Request> RequestQueue::Pop() {
  std::optional<Request> out;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    out.emplace(std::move(items_.front()));
    items_.pop_front();
  }
  not_full_.notify_one();
  return out;
}

std::optional<Request> RequestQueue::TryPop() {
  std::optional<Request> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    out.emplace(std::move(items_.front()));
    items_.pop_front();
  }
  not_full_.notify_one();
  return out;
}

bool RequestQueue::WaitForItem(ServeClock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait_until(lock, deadline,
                        [this] { return closed_ || !items_.empty(); });
  return !items_.empty();
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace nai::serve
