#include "src/serve/request_queue.h"

#include <stdexcept>
#include <utility>

namespace nai::serve {

RequestQueue::RequestQueue(std::size_t capacity, QueuePolicy policy)
    : capacity_(capacity), policy_(policy) {
  if (capacity == 0) {
    throw std::invalid_argument("RequestQueue: capacity must be positive");
  }
  if (policy_.aging_us < 0) {
    throw std::invalid_argument(
        "RequestQueue: aging_us must be non-negative");
  }
}

std::size_t RequestQueue::TotalLocked() const {
  std::size_t total = 0;
  for (const std::deque<Slot>& deque : items_) total += deque.size();
  return total;
}

int RequestQueue::PickClassLocked(ServeClock::time_point now) const {
  // Class order is priority order: kSpeedFirst (0) bypasses the rest.
  int first = -1;
  for (std::size_t c = 0; c < kNumQosClasses; ++c) {
    if (!items_[c].empty()) {
      first = static_cast<int>(c);
      break;
    }
  }
  if (first < 0) return -1;
  // Oldest slot across every class — the FIFO answer, and the aged answer.
  int oldest = first;
  for (std::size_t c = first + 1; c < kNumQosClasses; ++c) {
    if (!items_[c].empty() &&
        items_[c].front().seq < items_[oldest].front().seq) {
      oldest = static_cast<int>(c);
    }
  }
  if (!policy_.priority) return oldest;
  if (oldest == first) return first;  // highest class is also the oldest
  // Bypass the oldest (lower-priority) head only while it is younger than
  // the aging bound; past it, seniority beats class.
  const auto age = now - items_[oldest].front().request.admitted;
  return age >= std::chrono::microseconds(policy_.aging_us) ? oldest : first;
}

Request RequestQueue::PopPickedLocked(int cls) {
  Request out = std::move(items_[cls].front().request);
  items_[cls].pop_front();
  return out;
}

bool RequestQueue::TryPush(Request&& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || TotalLocked() >= capacity_) return false;
    const std::size_t c = static_cast<std::size_t>(request.qos);
    items_[c].push_back(Slot{std::move(request), next_seq_++});
  }
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::Push(Request&& request) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || TotalLocked() < capacity_; });
    if (closed_) return false;
    const std::size_t c = static_cast<std::size_t>(request.qos);
    items_[c].push_back(Slot{std::move(request), next_seq_++});
  }
  not_empty_.notify_one();
  return true;
}

std::optional<Request> RequestQueue::Pop() {
  std::optional<Request> out;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || TotalLocked() > 0; });
    const int cls = PickClassLocked(ServeClock::now());
    if (cls < 0) return std::nullopt;  // closed and drained
    out.emplace(PopPickedLocked(cls));
  }
  not_full_.notify_one();
  return out;
}

std::optional<Request> RequestQueue::PopUntil(
    ServeClock::time_point deadline) {
  std::optional<Request> out;
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_until(lock, deadline,
                          [this] { return closed_ || TotalLocked() > 0; });
    const int cls = PickClassLocked(ServeClock::now());
    if (cls < 0) return std::nullopt;  // timeout, or closed and drained
    out.emplace(PopPickedLocked(cls));
  }
  not_full_.notify_one();
  return out;
}

std::optional<Request> RequestQueue::TryPop() {
  std::optional<Request> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int cls = PickClassLocked(ServeClock::now());
    if (cls < 0) return std::nullopt;
    out.emplace(PopPickedLocked(cls));
  }
  not_full_.notify_one();
  return out;
}

std::vector<Request> RequestQueue::TryPopBatch(std::size_t max) {
  std::vector<Request> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const ServeClock::time_point now = ServeClock::now();
    while (out.size() < max) {
      const int cls = PickClassLocked(now);
      if (cls < 0) break;
      out.push_back(PopPickedLocked(cls));
    }
  }
  if (!out.empty()) not_full_.notify_all();
  return out;
}

bool RequestQueue::WaitForItem(ServeClock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait_until(lock, deadline,
                        [this] { return closed_ || TotalLocked() > 0; });
  return TotalLocked() > 0;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

bool RequestQueue::drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_ && TotalLocked() == 0;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return TotalLocked();
}

}  // namespace nai::serve
