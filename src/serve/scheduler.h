#ifndef NAI_SERVE_SCHEDULER_H_
#define NAI_SERVE_SCHEDULER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace nai::serve {

using SchedClock = std::chrono::steady_clock;

/// Knobs of the adaptive serving scheduler (one per ServingEngine; the
/// queue discipline is replicated into every shard queue).
///
/// The three mechanisms are independent and individually disableable so a
/// deployment (or a bench A/B) can isolate each one:
///   * `priority` — speed-first requests bypass queued accuracy-first work
///     inside a shard queue, bounded by `priority_aging_us` so the bypassed
///     class cannot starve.
///   * `stealing` — an idle shard pump steals whole coalesced batches from
///     the most backlogged sibling queue; stolen requests whose supporting
///     sets fit inside the thief's halo are served on the thief's engine,
///     the rest fall back through the owner's engine (results stay
///     bit-identical either way).
///   * `adaptive` — the admission controller tracks per-shard arrival and
///     service rates (EWMA) and adapts the batcher's coalescing window and
///     TrySubmit shedding to them.
struct SchedulerOptions {
  bool priority = true;
  /// Longest a queued accuracy-first request may be bypassed by later
  /// speed-first arrivals, measured from its admission. Once exceeded the
  /// oldest request wins regardless of class; 0 therefore degenerates to
  /// arrival-order FIFO (no bypass at all).
  std::int64_t priority_aging_us = 5000;

  bool stealing = true;
  /// A victim queue must hold at least this many requests to be stolen
  /// from (stealing a nearly-empty queue just moves the batching window).
  std::size_t steal_min_backlog = 2;
  /// How long an idle pump waits on its own queue before scanning the
  /// sibling queues for work to steal.
  std::int64_t steal_poll_us = 250;

  bool adaptive = true;
  /// Weight of the newest sample in the arrival/service EWMAs (0, 1].
  double ewma_alpha = 0.2;
  /// Bounds of the adapted coalescing window. The controller never moves
  /// `max_wait_us` outside [min_wait_us, max_wait_us_bound].
  std::int64_t min_wait_us = 0;
  std::int64_t max_wait_us_bound = 2000;
};

/// Point-in-time adaptation state of one shard, exposed through
/// ServingStatsSnapshot::scheduler.
struct SchedulerShardSnapshot {
  std::size_t shard = 0;
  double arrival_qps = 0.0;  ///< EWMA of the observed admission attempts
  double service_qps = 0.0;  ///< EWMA of the shard engine's serving rate
  std::int64_t batch_wait_us = 0;  ///< current adapted coalescing window
  /// Queue depth above which the controller last shed a TrySubmit
  /// (-1 until the service EWMA has formed — no adaptive shedding yet).
  std::int64_t admit_limit = -1;
  std::int64_t adaptive_sheds = 0;      ///< TrySubmits shed by the controller
  std::int64_t batches_stolen_from = 0; ///< batches taken out of this queue
  std::int64_t batches_stolen_by = 0;   ///< batches this shard's pump stole
};

/// One adaptation step of the admission controller: recorded every time a
/// shard's pump completes a batch and the controller re-derives that
/// shard's window and admission limit. The bounded ring of these is the
/// "adaptation trace" — how the scheduler reacted to the arrival process
/// over time.
struct SchedulerTraceEvent {
  double t_ms = 0.0;  ///< since the controller was built
  std::size_t shard = 0;
  double arrival_qps = 0.0;
  double service_qps = 0.0;
  /// The window the controller derived at this step — what the *next*
  /// batch will coalesce under.
  std::int64_t batch_wait_us = 0;
  /// The window the recorded batch *actually* coalesced under (read at its
  /// window-open). This is what distinguishes the trace from a guess: a
  /// retune lands mid-window without affecting the batch already open, so
  /// `applied_wait_us` of the next event typically equals `batch_wait_us`
  /// of this one, not of itself. -1 when no window applied at all (stolen
  /// batches are drained directly, never coalesced).
  std::int64_t applied_wait_us = -1;
  std::int64_t admit_limit = -1;
};

/// Tracks the observed per-shard arrival rate (EWMA over inter-arrival
/// gaps) and service rate (EWMA over per-request engine time), and derives
/// from them (a) the coalescing window each shard's batcher should run
/// with and (b) whether a non-blocking admission should be shed because
/// its predicted queue delay already exceeds the request's deadline
/// budget.
///
/// Thread-safety: every method is safe to call concurrently; per-shard
/// state is guarded by a per-shard mutex (client threads record arrivals,
/// the shard's pump records batches) and the trace ring by its own.
class AdmissionController {
 public:
  /// Trace-ring capacity: old events are overwritten, Trace() returns the
  /// most recent `kTraceCapacity` in chronological order.
  static constexpr std::size_t kTraceCapacity = 256;

  /// Throws std::invalid_argument on a degenerate configuration
  /// (ewma_alpha outside (0, 1], negative bounds, min > max,
  /// non-positive steal_poll_us, negative aging).
  AdmissionController(std::size_t num_shards, const SchedulerOptions& options,
                      std::size_t max_batch, std::int64_t base_wait_us);
  ~AdmissionController();

  /// Records one admission attempt at `now` (admitted or not — the
  /// arrival process is what the shard observes, not what it accepts).
  void RecordArrival(std::size_t shard, SchedClock::time_point now);

  /// Records one completed engine batch: `served` requests in `engine_ms`.
  /// Re-derives the shard's window and appends a trace event.
  /// `applied_wait_us` is the coalescing window the batch actually ran
  /// with (DynamicBatcher::last_window_us(); -1 for stolen batches, which
  /// bypass the batcher) — stamped into the trace event verbatim.
  void RecordBatch(std::size_t shard, std::size_t served, double engine_ms,
                   std::int64_t applied_wait_us, SchedClock::time_point now);

  /// The coalescing window shard's batcher should currently run with.
  /// Equals the base window until adaptation has seen arrivals.
  std::int64_t WaitUs(std::size_t shard) const;

  /// Admission decision for a non-blocking submit: false when the
  /// predicted queue delay (`queue_depth` requests at the shard's EWMA
  /// service time each) already exceeds `budget_ms` — the request would
  /// miss its deadline before reaching the engine, so shedding it now is
  /// cheaper for everyone behind it. Always true until the service EWMA
  /// has formed (never shed blind) or when `adaptive` is off.
  bool Admit(std::size_t shard, std::size_t queue_depth, double budget_ms);

  /// Point-in-time adaptation state (steal/shed counters are tracked by
  /// the ServingEngine and merged into ServingStatsSnapshot there).
  SchedulerShardSnapshot Snapshot(std::size_t shard) const;

  /// The adaptation trace, oldest first.
  std::vector<SchedulerTraceEvent> Trace() const;

  /// The window-adaptation rule, exposed for unit tests: with arrivals
  /// every `gap = 1e6 / arrival_qps` microseconds, holding a batch open is
  /// only worth what the stragglers amortize —
  ///   * unknown rate (<= 0): keep `base_us` (clamped to the bounds);
  ///   * gap > max_us: the next request will not arrive inside any
  ///     permissible window, so do not hold batches open at all (min_us);
  ///   * otherwise: the expected time to fill a batch,
  ///     (max_batch - 1) * gap, clamped to [min_us, max_us].
  static std::int64_t AdaptWaitUs(double arrival_qps, std::size_t max_batch,
                                  std::int64_t base_us, std::int64_t min_us,
                                  std::int64_t max_us);

 private:
  struct ShardState;

  SchedulerOptions options_;
  std::size_t max_batch_;
  std::int64_t base_wait_us_;
  SchedClock::time_point start_;
  std::vector<std::unique_ptr<ShardState>> shards_;

  mutable std::mutex trace_mu_;
  std::vector<SchedulerTraceEvent> trace_;  ///< ring buffer
  std::size_t trace_next_ = 0;
};

}  // namespace nai::serve

#endif  // NAI_SERVE_SCHEDULER_H_
