#ifndef NAI_SERVE_RESULT_CACHE_H_
#define NAI_SERVE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "src/core/inference.h"

namespace nai::serve {

/// Tuning of the per-shard prediction cache (replicated from ServingOptions
/// for every shard that owns nodes).
struct ResultCacheOptions {
  bool enabled = true;
  /// Entries retained per shard cache before LRU eviction kicks in. Must be
  /// positive when `enabled` (ServingEngine validates at construction).
  std::size_t capacity = 4096;
};

/// What a cache hit replays: the two per-node outputs of Algorithm 1. Both
/// are pure functions of (node, config, graph/model epoch), which is what
/// makes replaying them bit-identical to a cold Infer at the same epoch.
struct CachedResult {
  std::int32_t prediction = -1;
  std::int32_t exit_depth = -1;
  /// The graph epoch (snapshot version) the entry was computed under —
  /// replayed into Response::epoch so a hit is attributable to the graph
  /// version that produced it.
  std::uint64_t graph_epoch = 0;
};

/// Point-in-time counters of one shard's cache.
struct ResultCacheStats {
  std::int64_t hits = 0;      ///< lookups answered from the cache
  std::int64_t misses = 0;    ///< lookups that fell through (incl. stale)
  std::int64_t fills = 0;     ///< entries written at batch completion
  std::int64_t evictions = 0; ///< LRU evictions at capacity
  /// Fill attempts whose result was computed under an older epoch and
  /// dropped — the churn guard: an in-flight miss must never resurrect a
  /// logically invalidated answer.
  std::int64_t stale_fills_dropped = 0;
  std::uint64_t epoch = 0;    ///< current epoch
  std::size_t size = 0;       ///< resident entries (stale ones included)
  double hit_ratio = 0.0;     ///< hits / (hits + misses), 0 when no lookups
};

/// An epoch-versioned LRU cache of per-node prediction results, keyed by
/// (node id, config identity). One instance per owning shard of a
/// ServingEngine — the "sharded" in sharded LRU — so the hit path of one
/// shard's traffic never contends with another's fills.
///
/// Config identity is the InferenceConfig *pointer*: the serving front-end
/// resolves every request through its QosPolicyTable, so all requests of a
/// class share one stable config object (the same identity InferMixed
/// groups by). Two configs with equal fields but different addresses are
/// distinct keys — exactly as conservative as the engine's own grouping.
///
/// Invalidation is exact and O(1): every entry is stamped with the epoch it
/// was computed under, and BumpEpoch() logically empties the cache without
/// touching entries — a lookup that lands on an older-epoch entry misses
/// (and lazily erases it); a fill whose result was computed under an older
/// epoch is dropped (see Insert). Bump the epoch whenever the graph,
/// features, classifier bank, or gates change.
///
/// The hit path is allocation-free: a hit only reads the entry and splices
/// its node to the LRU front (std::list::splice moves pointers, never
/// allocates). Thread-safety: every method is safe to call concurrently
/// (client threads look up while pump threads fill); one mutex per cache,
/// held for O(1) work.
class ResultCache {
 public:
  /// Throws std::invalid_argument when capacity is zero.
  explicit ResultCache(std::size_t capacity);

  /// Returns the cached result for (node, config) when present *and*
  /// current-epoch; nullopt otherwise. A stale entry found here is erased
  /// (lazy invalidation) and counted as a miss.
  std::optional<CachedResult> Lookup(std::int32_t node,
                                     const core::InferenceConfig* config);

  /// Inserts (or refreshes) an entry computed under `fill_epoch`. Dropped —
  /// counted in stale_fills_dropped — when the epoch has moved on since the
  /// computation started: an in-flight miss must never fill a stale epoch.
  /// Capture the epoch with epoch() *before* the engine call that computes
  /// the result. Evicts the LRU entry at capacity.
  void Insert(std::int32_t node, const core::InferenceConfig* config,
              CachedResult result, std::uint64_t fill_epoch);

  /// The current epoch — capture before computing a result to fill with.
  std::uint64_t epoch() const;

  /// Advances the epoch, logically emptying the cache in O(1): existing
  /// entries stop matching and in-flight fills for the old epoch are
  /// dropped. Entries are reclaimed lazily (stale lookups) or by LRU
  /// eviction.
  void BumpEpoch();

  ResultCacheStats Stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Key {
    std::int32_t node;
    const core::InferenceConfig* config;
    bool operator==(const Key& other) const {
      return node == other.node && config == other.config;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // Pointer identity spread with a Fibonacci multiplier; the node id
      // lands in the low bits. Good enough for a per-shard table.
      const std::uint64_t p =
          reinterpret_cast<std::uintptr_t>(k.config) * 0x9e3779b97f4a7c15ull;
      return static_cast<std::size_t>(
          p ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.node)));
    }
  };
  struct Entry {
    Key key;
    CachedResult result;
    std::uint64_t epoch;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  std::uint64_t epoch_ = 0;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t fills_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t stale_fills_dropped_ = 0;
};

}  // namespace nai::serve

#endif  // NAI_SERVE_RESULT_CACHE_H_
