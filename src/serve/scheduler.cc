#include "src/serve/scheduler.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>

namespace nai::serve {

/// Per-shard EWMA state. Arrival recording races with pump-side batch
/// recording, so everything mutable sits behind one small mutex per shard;
/// the adapted window is additionally mirrored into an atomic so the
/// batcher path reads it without taking the lock.
struct AdmissionController::ShardState {
  std::mutex mu;
  bool has_arrival = false;
  /// Whether ewma_gap_us holds a real blend yet. Seeding must be tracked
  /// explicitly: testing `ewma_gap_us <= 0.0` conflates "unseeded" with "a
  /// zero inter-arrival gap", and a coarse monotone clock hands equal
  /// stamps to back-to-back arrivals routinely — the zero gap would keep
  /// the EWMA at 0 and let the *next* real gap overwrite history instead
  /// of blending in.
  bool ewma_gap_seeded = false;
  SchedClock::time_point last_arrival{};
  double ewma_gap_us = 0.0;         ///< inter-arrival EWMA; 0 until 2 arrivals
  double ewma_service_us = 0.0;     ///< per-request engine time; 0 until a batch
  std::int64_t last_admit_limit = -1;
  std::atomic<std::int64_t> wait_us{0};
};

AdmissionController::AdmissionController(std::size_t num_shards,
                                         const SchedulerOptions& options,
                                         std::size_t max_batch,
                                         std::int64_t base_wait_us)
    : options_(options),
      max_batch_(max_batch),
      base_wait_us_(base_wait_us),
      start_(SchedClock::now()) {
  if (!(options_.ewma_alpha > 0.0) || options_.ewma_alpha > 1.0) {
    throw std::invalid_argument(
        "SchedulerOptions: ewma_alpha must be in (0, 1], got " +
        std::to_string(options_.ewma_alpha));
  }
  if (options_.priority_aging_us < 0) {
    throw std::invalid_argument(
        "SchedulerOptions: priority_aging_us must be non-negative");
  }
  if (options_.steal_poll_us <= 0) {
    throw std::invalid_argument(
        "SchedulerOptions: steal_poll_us must be positive");
  }
  if (options_.min_wait_us < 0 ||
      options_.min_wait_us > options_.max_wait_us_bound) {
    throw std::invalid_argument(
        "SchedulerOptions: need 0 <= min_wait_us <= max_wait_us_bound");
  }
  trace_.reserve(kTraceCapacity);
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<ShardState>());
    shards_[s]->wait_us.store(
        std::clamp(base_wait_us_, options_.min_wait_us,
                   options_.max_wait_us_bound),
        std::memory_order_relaxed);
  }
}

AdmissionController::~AdmissionController() = default;

std::int64_t AdmissionController::AdaptWaitUs(double arrival_qps,
                                              std::size_t max_batch,
                                              std::int64_t base_us,
                                              std::int64_t min_us,
                                              std::int64_t max_us) {
  if (!(arrival_qps > 0.0)) return std::clamp(base_us, min_us, max_us);
  const double gap_us = 1e6 / arrival_qps;
  if (gap_us > static_cast<double>(max_us)) return min_us;
  const double fill_us =
      static_cast<double>(max_batch > 0 ? max_batch - 1 : 0) * gap_us;
  return std::clamp(static_cast<std::int64_t>(std::llround(fill_us)), min_us,
                    max_us);
}

void AdmissionController::RecordArrival(std::size_t shard,
                                        SchedClock::time_point now) {
  ShardState& state = *shards_[shard];
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.has_arrival) {
    const double gap_us =
        std::chrono::duration<double, std::micro>(now - state.last_arrival)
            .count();
    if (!state.ewma_gap_seeded) {
      // First observed gap seeds the EWMA — even a zero gap: a burst of
      // equal stamps is a legitimately infinite-rate observation, and
      // later gaps blend into it instead of replacing it.
      state.ewma_gap_us = gap_us;
      state.ewma_gap_seeded = true;
    } else {
      state.ewma_gap_us = options_.ewma_alpha * gap_us +
                          (1.0 - options_.ewma_alpha) * state.ewma_gap_us;
    }
  }
  state.has_arrival = true;
  // A monotone clock can still hand equal stamps to back-to-back arrivals;
  // keeping the max preserves gap >= 0.
  state.last_arrival = std::max(state.last_arrival, now);
}

void AdmissionController::RecordBatch(std::size_t shard, std::size_t served,
                                      double engine_ms,
                                      std::int64_t applied_wait_us,
                                      SchedClock::time_point now) {
  if (served == 0) return;
  ShardState& state = *shards_[shard];
  SchedulerTraceEvent event;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    const double per_request_us =
        1e3 * engine_ms / static_cast<double>(served);
    state.ewma_service_us =
        state.ewma_service_us <= 0.0
            ? per_request_us
            : options_.ewma_alpha * per_request_us +
                  (1.0 - options_.ewma_alpha) * state.ewma_service_us;

    const double arrival_qps =
        state.ewma_gap_us > 0.0 ? 1e6 / state.ewma_gap_us : 0.0;
    state.wait_us.store(
        AdaptWaitUs(arrival_qps, max_batch_, base_wait_us_,
                    options_.min_wait_us, options_.max_wait_us_bound),
        std::memory_order_relaxed);

    event.shard = shard;
    event.arrival_qps = arrival_qps;
    event.service_qps =
        state.ewma_service_us > 0.0 ? 1e6 / state.ewma_service_us : 0.0;
    event.batch_wait_us = state.wait_us.load(std::memory_order_relaxed);
    event.applied_wait_us = applied_wait_us;
    event.admit_limit = state.last_admit_limit;
  }
  event.t_ms =
      std::chrono::duration<double, std::milli>(now - start_).count();
  std::lock_guard<std::mutex> lock(trace_mu_);
  if (trace_.size() < kTraceCapacity) {
    trace_.push_back(event);
  } else {
    trace_[trace_next_] = event;
    trace_next_ = (trace_next_ + 1) % kTraceCapacity;
  }
}

std::int64_t AdmissionController::WaitUs(std::size_t shard) const {
  return shards_[shard]->wait_us.load(std::memory_order_relaxed);
}

bool AdmissionController::Admit(std::size_t shard, std::size_t queue_depth,
                                double budget_ms) {
  if (!options_.adaptive) return true;
  ShardState& state = *shards_[shard];
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.ewma_service_us <= 0.0) return true;  // never shed blind
  // The shard serves its queue serially, so a request admitted behind
  // `queue_depth` others waits about depth * service_time before its batch
  // even forms; admitting it past that point only manufactures a miss.
  const std::int64_t limit = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(1e3 * budget_ms / state.ewma_service_us));
  state.last_admit_limit = limit;
  return static_cast<std::int64_t>(queue_depth) < limit;
}

SchedulerShardSnapshot AdmissionController::Snapshot(std::size_t shard) const {
  ShardState& state = *shards_[shard];
  SchedulerShardSnapshot snap;
  snap.shard = shard;
  std::lock_guard<std::mutex> lock(state.mu);
  snap.arrival_qps = state.ewma_gap_us > 0.0 ? 1e6 / state.ewma_gap_us : 0.0;
  snap.service_qps =
      state.ewma_service_us > 0.0 ? 1e6 / state.ewma_service_us : 0.0;
  snap.batch_wait_us = state.wait_us.load(std::memory_order_relaxed);
  snap.admit_limit = state.last_admit_limit;
  return snap;
}

std::vector<SchedulerTraceEvent> AdmissionController::Trace() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  std::vector<SchedulerTraceEvent> out;
  out.reserve(trace_.size());
  // Ring order: [trace_next_, end) is the older half once wrapped.
  for (std::size_t i = trace_next_; i < trace_.size(); ++i) {
    out.push_back(trace_[i]);
  }
  for (std::size_t i = 0; i < trace_next_; ++i) out.push_back(trace_[i]);
  return out;
}

}  // namespace nai::serve
