#include "src/serve/batcher.h"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace nai::serve {

DynamicBatcher::DynamicBatcher(RequestQueue& queue, BatcherConfig config)
    : queue_(queue), config_(config), window_us_(config.max_wait_us) {
  if (config_.max_batch == 0) {
    throw std::invalid_argument("DynamicBatcher: max_batch must be positive");
  }
  if (config_.max_wait_us < 0) {
    throw std::invalid_argument(
        "DynamicBatcher: max_wait_us must be non-negative");
  }
}

std::vector<Request> DynamicBatcher::NextBatch() {
  return Gather(queue_.Pop());  // blocks; nullopt = shutdown
}

std::vector<Request> DynamicBatcher::NextBatch(
    ServeClock::time_point first_deadline) {
  return Gather(queue_.PopUntil(first_deadline));
}

std::vector<Request> DynamicBatcher::Gather(std::optional<Request> first) {
  std::vector<Request> batch;
  if (!first.has_value()) return batch;
  batch.reserve(config_.max_batch);
  batch.push_back(std::move(*first));

  // The coalescing window opens at the first pop, not per straggler: a
  // steady trickle cannot hold a batch open forever. It is read exactly
  // once per batch — a retune mid-window affects the next batch, and
  // last_window_us_ remembers what this batch really ran with.
  const std::int64_t window_us = window_us_.load(std::memory_order_relaxed);
  last_window_us_.store(window_us, std::memory_order_relaxed);
  const ServeClock::time_point window_end =
      ServeClock::now() + std::chrono::microseconds(window_us);
  while (batch.size() < config_.max_batch) {
    std::optional<Request> next = queue_.TryPop();
    if (next.has_value()) {
      batch.push_back(std::move(*next));
      continue;
    }
    if (ServeClock::now() >= window_end) break;
    if (!queue_.WaitForItem(window_end)) break;  // timeout or closed+drained
  }
  return batch;
}

}  // namespace nai::serve
