#include "src/serve/qos.h"

#include <algorithm>

namespace nai::serve {

const char* QosClassName(QosClass qos) {
  switch (qos) {
    case QosClass::kSpeedFirst:
      return "speed-first";
    case QosClass::kAccuracyFirst:
      return "accuracy-first";
    case QosClass::kThroughputFirst:
      return "throughput-first";
  }
  return "unknown";
}

QosPolicyTable DefaultQosPolicyTable(int k) {
  QosPolicyTable table;

  // Mirrors the harness's NAI^1 shape (speed-first): shallow depth cap and
  // a permissive exit threshold retire most nodes at the first NAP check.
  QosPolicy& speed = table.For(QosClass::kSpeedFirst);
  speed.config.nap = core::NapKind::kDistance;
  speed.config.relative_distance = true;
  speed.config.threshold = 0.25f;
  speed.config.t_min = 1;
  speed.config.t_max = std::min(2, std::max(1, k));
  speed.default_deadline_ms = 20.0;

  // NAI^3 shape (accuracy-first): the full classifier bank is available and
  // only very smooth nodes exit early.
  QosPolicy& accuracy = table.For(QosClass::kAccuracyFirst);
  accuracy.config.nap = core::NapKind::kDistance;
  accuracy.config.relative_distance = true;
  accuracy.config.threshold = 0.05f;
  accuracy.config.t_min = std::min(2, std::max(1, k));
  accuracy.config.t_max = 0;  // resolve to k
  accuracy.default_deadline_ms = 200.0;

  // Throughput-first: the speed-first propagation shape with the INT8
  // classifier — cheapest arithmetic per prediction, budgeted to disagree
  // with its float twin on at most 5% of predictions.
  QosPolicy& throughput = table.For(QosClass::kThroughputFirst);
  throughput.config = speed.config;
  throughput.config.int8_classifier = true;
  throughput.default_deadline_ms = 500.0;
  throughput.accuracy_delta_budget = 0.05;

  return table;
}

}  // namespace nai::serve
