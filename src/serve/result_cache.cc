#include "src/serve/result_cache.h"

#include <stdexcept>
#include <utility>

namespace nai::serve {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("ResultCache: capacity must be positive");
  }
}

std::optional<CachedResult> ResultCache::Lookup(
    std::int32_t node, const core::InferenceConfig* config) {
  const Key key{node, config};
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (it->second->epoch != epoch_) {
    // Logically invalidated by a BumpEpoch: reclaim the slot now that we
    // have touched it anyway, and report a miss.
    lru_.erase(it->second);
    index_.erase(it);
    ++misses_;
    return std::nullopt;
  }
  // Splice moves the list node to the front without allocating — the
  // whole hit path is allocation-free.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->result;
}

void ResultCache::Insert(std::int32_t node,
                         const core::InferenceConfig* config,
                         CachedResult result, std::uint64_t fill_epoch) {
  const Key key{node, config};
  std::lock_guard<std::mutex> lock(mu_);
  if (fill_epoch != epoch_) {
    // The result was computed against state the epoch bump invalidated;
    // caching it would serve a stale answer forever after.
    ++stale_fills_dropped_;
    return;
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh (same-epoch refills are idempotent; a stale entry under this
    // key is simply overwritten with the current-epoch result).
    it->second->result = result;
    it->second->epoch = fill_epoch;
    lru_.splice(lru_.begin(), lru_, it->second);
    ++fills_;
    return;
  }
  if (lru_.size() == capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{key, result, fill_epoch});
  index_.emplace(key, lru_.begin());
  ++fills_;
}

std::uint64_t ResultCache::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

void ResultCache::BumpEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;
}

ResultCacheStats ResultCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResultCacheStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.fills = fills_;
  out.evictions = evictions_;
  out.stale_fills_dropped = stale_fills_dropped_;
  out.epoch = epoch_;
  out.size = lru_.size();
  const std::int64_t lookups = hits_ + misses_;
  out.hit_ratio = lookups == 0 ? 0.0
                               : static_cast<double>(hits_) /
                                     static_cast<double>(lookups);
  return out;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace nai::serve
