#ifndef NAI_NN_GUMBEL_H_
#define NAI_NN_GUMBEL_H_

#include "src/tensor/matrix.h"
#include "src/tensor/random.h"

namespace nai::nn {

/// One straight-through Gumbel-softmax draw (Jang et al., 2016), the GS
/// operator of the paper's Eq. (11).
struct GumbelSample {
  /// Differentiable relaxed sample: softmax((logits + gumbel_noise) / tau).
  tensor::Matrix soft;
  /// Hard one-hot arg-max of `soft`. Forward uses `hard`; gradients flow
  /// through `soft` (straight-through estimator).
  tensor::Matrix hard;
};

/// Samples row-wise from the Gumbel-softmax with temperature `tau`.
/// When `deterministic` is true the noise is skipped (used at inference,
/// where the gate is a plain argmax — Eq. (13)).
GumbelSample GumbelSoftmax(const tensor::Matrix& logits, float tau,
                           tensor::Rng& rng, bool deterministic = false);

/// Backward helper for the straight-through estimator: given dL/d(soft
/// sample) `grad_soft` and the forward's `soft` output, returns dL/d(logits):
///   dL/dz_j = (1/tau) * soft_j * (grad_j - sum_k grad_k soft_k)
tensor::Matrix GumbelSoftmaxBackward(const tensor::Matrix& soft,
                                     const tensor::Matrix& grad_soft,
                                     float tau);

}  // namespace nai::nn

#endif  // NAI_NN_GUMBEL_H_
